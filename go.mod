module mthplace

go 1.22
