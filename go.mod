module mthplace

go 1.23
