// Command experiments regenerates every table and figure of the paper's
// evaluation section:
//
//	experiments -table2            Table II  (testcase statistics)
//	experiments -table4            Table IV  (post-placement, 5 flows)
//	experiments -table5            Table V   (post-route, 4 flows)
//	experiments -fig4a             Fig. 4(a) (clustering resolution sweep)
//	experiments -fig4b             Fig. 4(b) (alpha sweep)
//	experiments -fig5              Fig. 5    (ILP runtime scaling)
//	experiments -ablation          §IV-B.4   (clustering impact)
//	experiments -profile           §IV-B.3   (runtime profile)
//	experiments -overhead          §IV-B.6   (overhead vs unconstrained)
//	experiments -all               everything above
//
// -scale shrinks every testcase proportionally (1.0 = paper-size designs);
// the output records the scale used. -only restricts to testcases whose name
// contains the given substring.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mthplace/internal/errs"
	"mthplace/internal/exp"
	"mthplace/internal/obs"
	"mthplace/internal/synth"
	"mthplace/pkg/mth"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.10, "design scale factor (1.0 = paper size)")
		seed     = flag.Int64("seed", 1, "generator seed")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none); expiry exits 124")
		jobs     = flag.Int("jobs", 0, "worker pool bound (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
		only     = flag.String("only", "", "restrict to testcases whose name contains this substring")
		solver   = flag.String("solver", "", "RAP solver backend: milp (default), rap (structure-aware Lagrangian branch and bound), or greedy")
		verbose  = flag.Bool("v", false, "log per-testcase progress to stderr")
		quiet    = flag.Bool("q", false, "quiet: warnings and errors only on stderr")
		table2   = flag.Bool("table2", false, "regenerate Table II")
		table4   = flag.Bool("table4", false, "regenerate Table IV")
		table5   = flag.Bool("table5", false, "regenerate Table V")
		fig4a    = flag.Bool("fig4a", false, "regenerate Fig. 4(a)")
		fig4b    = flag.Bool("fig4b", false, "regenerate Fig. 4(b)")
		fig5     = flag.Bool("fig5", false, "regenerate Fig. 5")
		ablation = flag.Bool("ablation", false, "clustering ablation (§IV-B.4)")
		profile  = flag.Bool("profile", false, "runtime profile (§IV-B.3)")
		overhead = flag.Bool("overhead", false, "overhead vs Flow 1 (§IV-B.6)")
		finflex  = flag.Bool("finflex", false, "customised rows vs pre-determined pattern (future work)")
		swap     = flag.Bool("swap", false, "track-height swapping study (future work)")
		all      = flag.Bool("all", false, "run everything")
	)
	flag.Parse()

	// Ctrl-C cancels the in-flight experiment at the next stage boundary.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := mth.ValidBackend(*solver); err != nil {
		fatal(err)
	}

	cfg := exp.Config{Scale: *scale, Seed: *seed}
	cfg.Flow.Jobs = *jobs
	cfg.Flow.Core.Solve.Backend = *solver
	if *verbose {
		// Per-testcase progress stays opt-in: tables land on stdout, the
		// structured progress log on stderr.
		cfg.Log = obs.NewCLILogger(os.Stderr, false, *quiet)
	}
	if *only != "" {
		var specs []synth.Spec
		for _, s := range synth.TableII() {
			if strings.Contains(s.Name(), *only) {
				specs = append(specs, s)
			}
		}
		if len(specs) == 0 {
			fatal(fmt.Errorf("no testcase matches %q", *only))
		}
		cfg.Specs = specs
	}

	any := false
	run := func(enabled bool, f func() error) {
		if !(*all || enabled) {
			return
		}
		any = true
		if err := f(); err != nil {
			if errors.Is(err, errs.ErrTimeout) {
				fmt.Fprintln(os.Stderr, "experiments: timed out after", *timeout)
				os.Exit(124)
			}
			fatal(err)
		}
	}

	run(*table2, func() error {
		r, err := exp.Table2(ctx, cfg)
		if err != nil {
			return err
		}
		r.Table().Render(os.Stdout)
		fmt.Println()
		return nil
	})
	var t4 *exp.Table4Result
	var t5 *exp.Table5Result
	run(*table4, func() error {
		r, err := exp.Table4(ctx, cfg)
		if err != nil {
			return err
		}
		t4 = r
		r.Table().Render(os.Stdout)
		fmt.Println()
		return nil
	})
	run(*table5 || *overhead, func() error {
		r, err := exp.Table5(ctx, cfg)
		if err != nil {
			return err
		}
		t5 = r
		if *table5 || *all {
			r.Table().Render(os.Stdout)
			fmt.Println()
		}
		return nil
	})
	run(*fig4a, func() error {
		r, err := exp.Fig4a(ctx, cfg, nil)
		if err != nil {
			return err
		}
		r.Table().Render(os.Stdout)
		fmt.Println()
		return nil
	})
	run(*fig4b, func() error {
		r, err := exp.Fig4b(ctx, cfg, nil)
		if err != nil {
			return err
		}
		r.Table().Render(os.Stdout)
		fmt.Println()
		return nil
	})
	run(*fig5, func() error {
		r, err := exp.Fig5(ctx, cfg)
		if err != nil {
			return err
		}
		r.Table().Render(os.Stdout)
		fmt.Println()
		return nil
	})
	run(*ablation, func() error {
		r, err := exp.Ablation(ctx, cfg)
		if err != nil {
			return err
		}
		r.Table().Render(os.Stdout)
		fmt.Println()
		return nil
	})
	run(*profile, func() error {
		r, err := exp.Profile(ctx, cfg)
		if err != nil {
			return err
		}
		r.Table().Render(os.Stdout)
		fmt.Println()
		return nil
	})
	run(*finflex, func() error {
		r, err := exp.FinFlexStudy(ctx, cfg)
		if err != nil {
			return err
		}
		r.Table().Render(os.Stdout)
		fmt.Println()
		return nil
	})
	run(*swap, func() error {
		r, err := exp.SwapStudy(ctx, cfg)
		if err != nil {
			return err
		}
		r.Table().Render(os.Stdout)
		fmt.Println()
		return nil
	})
	run(*overhead, func() error {
		if t4 == nil {
			r, err := exp.Table4(ctx, cfg)
			if err != nil {
				return err
			}
			t4 = r
		}
		if t5 == nil {
			r, err := exp.Table5(ctx, cfg)
			if err != nil {
				return err
			}
			t5 = r
		}
		exp.Overhead(t4, t5).Table().Render(os.Stdout)
		fmt.Println()
		return nil
	})

	if !any {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
