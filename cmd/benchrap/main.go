// Command benchrap compares the RAP solver backends (DESIGN.md §12) and
// writes the results to a JSON file. For each golden testcase it solves the
// same clustered model with the MILP branch-and-bound and with the
// structure-aware rap backend, checks the objectives agree at proven
// optimality, and records the wall-clock ratio. It then measures the
// incremental re-solve: warm re-solves after single-cluster perturbations
// against cold solves of the identical perturbed instance.
//
//	benchrap                    # write BENCH_rap.json in the cwd
//	benchrap -quick             # CI smoke: smallest case, one rep
//	benchrap -scale 0.05 -o /tmp/bench.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mthplace/internal/core"
	"mthplace/internal/flow"
	"mthplace/internal/milp"
	"mthplace/internal/rap"
	"mthplace/internal/synth"
)

// Report is the schema of BENCH_rap.json.
type Report struct {
	Host struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	Scale float64 `json:"scale"`
	Reps  int     `json:"reps"`
	// Solves compares the two exact backends per testcase.
	Solves []SolveCase `json:"solves"`
	// Incremental measures warm-vs-cold re-solves after perturbations.
	Incremental []IncrementalCase `json:"incremental"`
}

// SolveCase is one backend comparison: both solvers prove optimality on the
// same model, objectives must match, and speedup is milp/rap wall clock.
type SolveCase struct {
	Name      string  `json:"name"`
	Clusters  int     `json:"clusters"`
	Rows      int     `json:"rows"`
	NminR     int     `json:"nmin_r"`
	MILPMS    float64 `json:"milp_ms"`
	RAPMS     float64 `json:"rap_ms"`
	Speedup   float64 `json:"speedup"`
	Objective float64 `json:"objective"`
	RAPNodes  int     `json:"rap_nodes"`
	Optimal   bool    `json:"both_optimal"`
}

// IncrementalCase is one warm-start measurement: after a single-cluster
// cost-row perturbation, a warm re-solve from the previous duals and
// incumbent against a cold solve of the identical perturbed instance.
type IncrementalCase struct {
	Name          string  `json:"name"`
	Perturbations int     `json:"perturbations"`
	ColdMS        float64 `json:"cold_ms"`
	WarmMS        float64 `json:"warm_ms"`
	Speedup       float64 `json:"speedup"`
}

func main() {
	var (
		quick = flag.Bool("quick", false, "CI smoke: smallest testcase only, one rep")
		reps  = flag.Int("reps", 3, "repetitions per measurement (best is kept)")
		scale = flag.Float64("scale", 0.02, "testcase cell-count scale")
		out   = flag.String("o", "BENCH_rap.json", "output file")
	)
	flag.Parse()

	names := []string{"aes_300", "fpu_4000", "des3_210"}
	if *quick {
		names = names[:1]
		*reps = 1
	}

	var rep Report
	rep.Host.GoVersion = runtime.Version()
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Scale = *scale
	rep.Reps = *reps

	ctx := context.Background()
	for _, name := range names {
		m := buildModel(ctx, name, *scale)
		sc := compareBackends(ctx, name, m, *reps)
		rep.Solves = append(rep.Solves, sc)
		fmt.Printf("%-10s %4d clusters × %3d rows  milp %9.2f ms  rap %8.2f ms  speedup %6.1fx  obj %.1f\n",
			sc.Name, sc.Clusters, sc.Rows, sc.MILPMS, sc.RAPMS, sc.Speedup, sc.Objective)
		if !sc.Optimal {
			fatal(fmt.Errorf("%s: a backend failed to prove optimality", name))
		}

		ic := benchIncremental(ctx, name, m, *reps, *quick)
		rep.Incremental = append(rep.Incremental, ic)
		fmt.Printf("%-10s incremental (%d single-cluster perturbations)  cold %8.2f ms  warm %8.2f ms  speedup %6.1fx\n",
			ic.Name, ic.Perturbations, ic.ColdMS, ic.WarmMS, ic.Speedup)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (host: %d CPU)\n", *out, rep.Host.NumCPU)
}

// buildModel prepares the clustered RAP model for one golden testcase the
// same way the flow does: synth → initial placement → k-means → cost model.
func buildModel(ctx context.Context, name string, scale float64) *core.Model {
	var spec synth.Spec
	found := false
	for _, s := range synth.TableII() {
		if s.Name() == name {
			spec, found = s, true
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown testcase %s", name))
	}
	cfg := flow.DefaultConfig()
	cfg.Synth.Scale = scale
	cfg.Synth.Seed = 1
	r, err := flow.NewRunner(ctx, spec, cfg)
	if err != nil {
		fatal(err)
	}
	d := r.Base.Clone()
	cl, err := core.BuildClusters(ctx, d, cfg.Core.S, cfg.Core.KMeansIters)
	if err != nil {
		fatal(err)
	}
	m, err := core.BuildModel(ctx, d, r.Grid, cl, r.NminR, cfg.Core.Cost)
	if err != nil {
		fatal(err)
	}
	return m
}

// solveOptions is the exact-proof configuration both backends run under.
func solveOptions(backend string) core.SolveOptions {
	opt := flow.DefaultConfig().Core.Solve
	opt.Backend = backend
	opt.MILP = milp.Options{MaxNodes: 2_000_000, RelGap: 1e-6, TimeLimit: 60 * time.Second}
	opt.Degrade = core.DegradeStrict
	return opt
}

// compareBackends times both exact backends on m, keeping the best of reps.
func compareBackends(ctx context.Context, name string, m *core.Model, reps int) SolveCase {
	sc := SolveCase{Name: name, Clusters: m.Clusters.N(), Rows: m.NR, NminR: m.NminR, Optimal: true}
	var milpObj, rapObj float64
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		a, err := core.Solve(ctx, m, solveOptions(core.BackendMILP))
		if err != nil {
			fatal(fmt.Errorf("%s milp: %w", name, err))
		}
		if ms := msSince(t0); i == 0 || ms < sc.MILPMS {
			sc.MILPMS = ms
		}
		milpObj = a.Objective
		sc.Optimal = sc.Optimal && a.Stats.Optimal

		t0 = time.Now()
		b, err := core.Solve(ctx, m, solveOptions(core.BackendRAP))
		if err != nil {
			fatal(fmt.Errorf("%s rap: %w", name, err))
		}
		if ms := msSince(t0); i == 0 || ms < sc.RAPMS {
			sc.RAPMS = ms
		}
		rapObj = b.Objective
		sc.RAPNodes = b.Stats.Nodes
		sc.Optimal = sc.Optimal && b.Stats.Optimal
	}
	if diff := milpObj - rapObj; diff > 1e-6 || diff < -1e-6 {
		fatal(fmt.Errorf("%s: objective mismatch milp %.6f vs rap %.6f", name, milpObj, rapObj))
	}
	sc.Objective = rapObj
	sc.Speedup = sc.MILPMS / sc.RAPMS
	return sc
}

// rapInstance converts a dense model into the sparse arc form (all rows
// kept: the incremental benchmark measures the solver, not the pruning).
func rapInstance(m *core.Model) *rap.Instance {
	in := &rap.Instance{
		NR: m.NR, NminR: m.NminR, Cap: m.Cap, Width: m.Clusters.Width,
		Cand: make([][]rap.Arc, m.Clusters.N()),
	}
	for c := range in.Cand {
		arcs := make([]rap.Arc, m.NR)
		for r := 0; r < m.NR; r++ {
			arcs[r] = rap.Arc{Row: int32(r), Cost: m.Cost[c][r]}
		}
		in.Cand[c] = arcs
	}
	return in
}

// benchIncremental measures warm re-solves after single-cluster cost-row
// perturbations against cold solves of the identical perturbed instance.
// Each perturbation inflates one cluster's costs by 10% on a window of rows
// — enough to move the optimum occasionally, small enough that the
// inherited duals stay near-optimal (the workload incremental re-solve
// exists for). Warm and cold must agree on the objective at every step.
func benchIncremental(ctx context.Context, name string, m *core.Model, reps int, quick bool) IncrementalCase {
	nC := m.Clusters.N()
	perturbs := 8
	if quick {
		perturbs = 2
	}
	opt := rap.Options{MaxNodes: 10_000_000, RelGap: 1e-6}
	ic := IncrementalCase{Name: name, Perturbations: perturbs}

	for rep := 0; rep < reps; rep++ {
		// Live cost copy: cold instances are rebuilt from it so both sides
		// solve the identical cumulatively-perturbed problem.
		cost := make([][]float64, nC)
		for c := range cost {
			cost[c] = append([]float64(nil), m.Cost[c]...)
		}
		s, err := rap.NewSolver(rapInstance(m))
		if err != nil {
			fatal(err)
		}
		if _, err := s.Solve(ctx, opt); err != nil {
			fatal(fmt.Errorf("%s incremental prime: %w", name, err))
		}

		var warm, cold time.Duration
		for p := 0; p < perturbs; p++ {
			c := (p * 7919) % nC
			lo := (p * 13) % m.NR
			for r := lo; r < lo+4 && r < m.NR; r++ {
				cost[c][r] *= 1.05
			}
			arcs := make([]rap.Arc, m.NR)
			for r := 0; r < m.NR; r++ {
				arcs[r] = rap.Arc{Row: int32(r), Cost: cost[c][r]}
			}
			if err := s.SetClusterArcs(c, arcs); err != nil {
				fatal(err)
			}

			t0 := time.Now()
			wres, err := s.Solve(ctx, opt)
			warm += time.Since(t0)
			if err != nil {
				fatal(fmt.Errorf("%s warm re-solve %d: %w", name, p, err))
			}

			coldIn := rapInstance(m)
			for cc := range coldIn.Cand {
				for i := range coldIn.Cand[cc] {
					coldIn.Cand[cc][i].Cost = cost[cc][i]
				}
			}
			t0 = time.Now()
			cres, err := rap.Solve(ctx, coldIn, nil, opt)
			cold += time.Since(t0)
			if err != nil {
				fatal(fmt.Errorf("%s cold re-solve %d: %w", name, p, err))
			}
			if diff := wres.Obj - cres.Obj; diff > 1e-6 || diff < -1e-6 {
				fatal(fmt.Errorf("%s perturbation %d: warm objective %.6f vs cold %.6f",
					name, p, wres.Obj, cres.Obj))
			}
		}
		warmMS := float64(warm.Microseconds()) / 1000
		coldMS := float64(cold.Microseconds()) / 1000
		if rep == 0 || warmMS < ic.WarmMS {
			ic.WarmMS = warmMS
		}
		if rep == 0 || coldMS < ic.ColdMS {
			ic.ColdMS = coldMS
		}
	}
	ic.Speedup = ic.ColdMS / ic.WarmMS
	return ic
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1000
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrap:", err)
	os.Exit(1)
}
