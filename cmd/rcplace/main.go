// Command rcplace runs one of the five placement flows on one testcase and
// reports its post-placement (and optionally post-route) metrics. It can
// also dump the final placement as DEF and the cell library as LEF.
//
//	rcplace -testcase aes_360 -flow 5 -route
//	rcplace -testcase des3_210 -flow 2 -scale 0.2 -def out.def -lef out.lef
//	rcplace -testcase aes_360 -flow 5 -trace trace.json -progress
//
// The results block is machine-consumable and goes to stdout; everything
// diagnostic (the testcase preamble, progress events, file-written notes)
// goes to stderr through the structured logger, tunable with -v/-q.
// -trace records a Chrome trace_event file (open in chrome://tracing or
// https://ui.perfetto.dev) with one span per flow stage plus solver
// sub-spans; -progress streams solver events (MILP incumbents, k-means
// iteration movement) to stderr as they happen.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"mthplace/internal/fault"
	"mthplace/internal/lefdef"
	"mthplace/internal/obs"
	"mthplace/internal/viz"
	"mthplace/pkg/mth"
)

func main() {
	var (
		testcase = flag.String("testcase", "aes_360", "Table II testcase name (e.g. aes_300, nova_500)")
		flowNum  = flag.Int("flow", 5, "flow to run (1-5, Table III)")
		scale    = flag.Float64("scale", 0.10, "design scale factor (1.0 = paper size)")
		seed     = flag.Int64("seed", 1, "generator seed")
		jobs     = flag.Int("jobs", 0, "worker pool bound (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
		verify   = flag.Bool("verify", false, "audit the result with the independent invariant checkers (placement legality, fence containment, metrics recompute) and fail on any violation")
		doRoute  = flag.Bool("route", false, "route the result and report WL/power/WNS/TNS")
		defOut   = flag.String("def", "", "write the final placement to this DEF file")
		lefOut   = flag.String("lef", "", "write the cell library to this LEF file")
		svgOut   = flag.String("svg", "", "render the final placement to this SVG file")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
		progress = flag.Bool("progress", false, "stream solver progress events (stage transitions, MILP incumbents, k-means iterations) to stderr")
		verbose  = flag.Bool("v", false, "verbose diagnostics (debug level) on stderr")
		quiet    = flag.Bool("q", false, "quiet: warnings and errors only on stderr")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none); expiry exits 124")
		strict   = flag.Bool("strict", false, "fail fast instead of degrading to an anytime/greedy answer when solve budgets run out")
		solver   = flag.String("solver", "", "RAP solver backend: milp (default), rap (structure-aware Lagrangian branch and bound), or greedy")
		useSoA   = flag.Bool("soa", false, "iterate the flat structure-of-arrays representation in the hot stages; results are identical to the default")
	)
	flag.Parse()

	if err := mth.ValidBackend(*solver); err != nil {
		fatal(err)
	}

	lg := obs.NewCLILogger(os.Stderr, *verbose, *quiet)

	if err := fault.InitFromEnv(); err != nil {
		fatal(err)
	}

	spec, err := mth.FindSpec(*testcase)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcplace: unknown testcase %q; available:\n", *testcase)
		for _, s := range mth.TableII() {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name())
		}
		os.Exit(2)
	}
	if *flowNum < 1 || *flowNum > 5 {
		fatal(fmt.Errorf("flow %d out of range 1-5", *flowNum))
	}

	// Ctrl-C cancels the run at the next solver iteration boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Observability hooks ride the context: absent flags cost nothing.
	ctx = obs.WithLogger(ctx, lg)
	var tracer *obs.Tracer
	if *traceOut != "" {
		// Same span schema as the distributed fabric: records carry trace and
		// span IDs under a root span context, so a -trace file and a
		// GET /v1/jobs/{id}/trace response are interchangeable artifacts.
		tracer = obs.NewTracerFor("rcplace")
		ctx = obs.WithTracer(ctx, tracer)
		ctx = obs.WithSpanContext(ctx, obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()})
	}
	if *progress {
		ctx = obs.WithProgress(ctx, func(e obs.Event) {
			fmt.Fprintln(os.Stderr, "rcplace:", e.String())
		})
	}

	fcfg := mth.DefaultConfig()
	fcfg.Synth.Scale = *scale
	fcfg.Synth.Seed = *seed
	fcfg.Jobs = *jobs
	fcfg.Verify = *verify
	if *strict {
		fcfg.Core.Solve.Degrade = mth.DegradeStrict
	}
	fcfg.Core.Solve.Backend = *solver
	if *useSoA {
		fcfg.Rep = mth.RepSoA
	}
	runner, err := mth.NewRunner(ctx, spec, fcfg)
	if err != nil {
		fatal(err)
	}
	lg.Info("testcase prepared",
		"testcase", spec.Name(),
		"cells", len(runner.Base.Insts),
		"minority", len(runner.Base.MinorityInstances()),
		"minority_frac", fmt.Sprintf("%.3f", runner.Base.MinorityFraction()),
		"nets", len(runner.Base.Nets),
		"nminr", runner.NminR)

	res, err := runner.Run(ctx, mth.ID(*flowNum), *doRoute)
	writeTrace(tracer, *traceOut, lg) // even on failure: partial traces localize the failure
	if errors.Is(err, mth.ErrTimeout) {
		fmt.Fprintln(os.Stderr, "rcplace: timed out after", *timeout)
		os.Exit(124)
	}
	if errors.Is(err, mth.ErrCanceled) {
		fmt.Fprintln(os.Stderr, "rcplace: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	m := res.Metrics
	fmt.Printf("%v results:\n", m.Flow)
	fmt.Printf("  displacement: %d DBU\n", m.Displacement)
	fmt.Printf("  HPWL:         %d DBU\n", m.HPWL)
	if m.Solver != "" {
		fmt.Printf("  solver:       %s\n", m.Solver)
	}
	if m.SolveRung != "" {
		fmt.Printf("  solve rung:   %s\n", rungLabel(m))
	}
	fmt.Printf("  RAP time:     %v\n", m.RAPTime)
	fmt.Printf("  legal time:   %v\n", m.LegalTime)
	fmt.Printf("  total time:   %v\n", m.TotalTime)
	if m.NumClusters > 0 {
		fmt.Printf("  clusters:     %d (ILP vars %d)\n", m.NumClusters, m.ILPVars)
	}
	if m.Routed {
		fmt.Printf("  routed WL:    %d DBU (overflow %d)\n", m.RoutedWL, m.Overflow)
		fmt.Printf("  total power:  %.3f mW\n", m.PowerMW)
		fmt.Printf("  WNS:          %.3f ns\n", m.WNSps/1000)
		fmt.Printf("  TNS:          %.3f ns\n", m.TNSps/1000)
	}
	if *verify {
		// The run already failed hard on violations (Config.Verify); rerun
		// the auditors here to render the verdict for the user.
		rep := runner.VerifyResult(res)
		if rep.Ok() {
			fmt.Printf("  verify:       ok (placement, fences, metrics; %d cells audited)\n", len(res.Design.Insts))
		} else {
			fmt.Printf("  verify:       %d violation(s)\n", len(rep.Violations))
			for _, v := range rep.Violations {
				fmt.Printf("    %s\n", v)
			}
			os.Exit(1)
		}
	}

	if *defOut != "" {
		f, err := os.Create(*defOut)
		if err != nil {
			fatal(err)
		}
		if err := lefdef.WriteDEF(f, res.Design); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		lg.Info("wrote DEF", "file", *defOut)
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		title := fmt.Sprintf("%s %v (blue=6T red=7.5T yellow=fence)", spec.Name(), m.Flow)
		if err := viz.WriteSVG(f, res.Design, viz.Options{Stack: res.Stack, ShowRows: true, Title: title}); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		lg.Info("wrote SVG", "file", *svgOut)
	}
	if *lefOut != "" {
		f, err := os.Create(*lefOut)
		if err != nil {
			fatal(err)
		}
		if err := lefdef.WriteLEF(f, runner.Tech, runner.Lib.Masters()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		lg.Info("wrote LEF", "file", *lefOut)
	}
}

// writeTrace flushes the collected spans to the -trace file; nil tracer is
// a no-op.
func writeTrace(tracer *obs.Tracer, path string, lg *slog.Logger) {
	if tracer == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		lg.Warn("trace not written", "err", err)
		return
	}
	err = tracer.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		lg.Warn("trace not written", "err", err)
		return
	}
	lg.Info("wrote trace", "file", path, "events", tracer.Len())
}

// rungLabel renders the solve ladder's verdict: which rung answered, and
// for degraded runs why the ladder moved and how far from proven optimal
// the answer can be.
func rungLabel(m mth.Metrics) string {
	if !m.SolveDegraded {
		if m.SolveRung == mth.RungILP {
			return "ilp (proven optimal)"
		}
		return m.SolveRung
	}
	s := fmt.Sprintf("%s (degraded: %s", m.SolveRung, m.SolveDegradeReason)
	if m.SolveGap >= 0 {
		s += fmt.Sprintf(", gap ≤ %.2f%%", 100*m.SolveGap)
	}
	return s + ")"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rcplace:", err)
	os.Exit(1)
}
