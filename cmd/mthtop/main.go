// Command mthtop is a live terminal console for a running mthserved
// coordinator: one screen showing lane health (circuit state, queue depth,
// per-lane RED metrics, heartbeat RTT), cache effectiveness, job lifecycle
// counters, and the most interesting recent jobs with their trace IDs — so
// a slow job spotted here can be pulled straight out of the fabric with
// GET /v1/jobs/{id}/trace.
//
//	mthtop -addr http://localhost:8080
//	mthtop -addr http://localhost:8080 -once   # one plain-text frame (CI, scripts)
//
// It polls GET /stats, GET /v1/jobs and GET /metrics — nothing the server
// doesn't already expose — and depends on nothing outside the standard
// library: the /metrics integration is a small parser for the Prometheus
// text exposition format.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "coordinator base URL")
		interval = flag.Duration("interval", time.Second, "refresh cadence")
		once     = flag.Bool("once", false, "render one plain frame and exit (no ANSI, exit 1 on fetch failure)")
		rows     = flag.Int("jobs", 8, "job rows to show")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cl := newClient(*addr)
	if *once {
		frame, err := cl.fetch(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mthtop:", err)
			os.Exit(1)
		}
		render(os.Stdout, frame, *rows)
		return
	}

	// Live mode: redraw in place. The frame is composed off-screen and
	// written in one syscall so a slow terminal never shows a half frame.
	var buf bytes.Buffer
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		buf.Reset()
		buf.WriteString("\x1b[H\x1b[2J") // home + clear
		frame, err := cl.fetch(ctx)
		if err != nil {
			fmt.Fprintf(&buf, "mthtop: %s — %v (retrying every %v)\n", *addr, err, *interval)
		} else {
			render(&buf, frame, *rows)
			fmt.Fprintf(&buf, "\n%s  refresh %v  ^C to quit\n", *addr, *interval)
		}
		os.Stdout.Write(buf.Bytes())
		select {
		case <-ctx.Done():
			fmt.Println()
			return
		case <-tick.C:
		}
	}
}
