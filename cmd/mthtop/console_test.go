package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParsePromLine(t *testing.T) {
	cases := []struct {
		line   string
		name   string
		labels map[string]string
		value  float64
		ok     bool
	}{
		{`mth_jobs_started_total 42`, "mth_jobs_started_total", nil, 42, true},
		{`mth_lane_requests_total{backend="remote-0",outcome="ok"} 7`,
			"mth_lane_requests_total", map[string]string{"backend": "remote-0", "outcome": "ok"}, 7, true},
		// The three text-format escapes must round-trip.
		{`m{v="a\\b\"c\nd"} 1`, "m", map[string]string{"v": "a\\b\"c\nd"}, 1, true},
		{`mth_stage_seconds_bucket{le="+Inf",stage="solve"} 9`,
			"mth_stage_seconds_bucket", map[string]string{"le": "+Inf", "stage": "solve"}, 9, true},
		{`garbage`, "", nil, 0, false},
		{`m{unterminated="x} 1`, "", nil, 0, false},
		{`m{a="b"} notanumber`, "", nil, 0, false},
	}
	for _, c := range cases {
		s, ok := parsePromLine(c.line)
		if ok != c.ok {
			t.Errorf("%q: ok=%v, want %v", c.line, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if s.Name != c.name || s.Value != c.value {
			t.Errorf("%q: got %q=%v, want %q=%v", c.line, s.Name, s.Value, c.name, c.value)
		}
		for k, v := range c.labels {
			if s.Labels[k] != v {
				t.Errorf("%q: label %q=%q, want %q", c.line, k, s.Labels[k], v)
			}
		}
	}
}

const testMetrics = `# HELP mth_lane_requests_total Lane dispatch attempts by outcome.
# TYPE mth_lane_requests_total counter
mth_lane_requests_total{backend="remote-0",outcome="ok"} 57
mth_lane_requests_total{backend="remote-0",outcome="error"} 1
mth_lane_requests_total{backend="remote-0",outcome="rerouted"} 2
mth_lane_seconds_sum{backend="remote-0"} 0.6
mth_lane_seconds_count{backend="remote-0"} 60
mth_lane_requests_total{backend="local-0",outcome="ok"} 40
mth_lane_seconds_sum{backend="local-0"} 0.2
mth_lane_seconds_count{backend="local-0"} 40
`

func TestLaneStats(t *testing.T) {
	lanes := laneStats(parseProm(strings.NewReader(testMetrics)))
	r0 := lanes["remote-0"]
	if r0.OK != 57 || r0.Err != 1 || r0.Rerouted != 2 {
		t.Errorf("remote-0 RED = %+v, want 57/1/2", r0)
	}
	if r0.AvgMS < 9.9 || r0.AvgMS > 10.1 {
		t.Errorf("remote-0 avg = %v ms, want ~10", r0.AvgMS)
	}
	if l0 := lanes["local-0"]; l0.OK != 40 || l0.AvgMS < 4.9 || l0.AvgMS > 5.1 {
		t.Errorf("local-0 = %+v, want 40 ok, ~5ms", l0)
	}
}

// TestConsoleFrame drives the whole fetch→parse→render path against a stub
// coordinator serving the three endpoints mthtop polls.
func TestConsoleFrame(t *testing.T) {
	started := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	finished := started.Add(45 * time.Millisecond)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{
			"uptime_seconds": 3723, "queue_depth": 2, "queue_capacity": 16,
			"workers": 8, "busy_workers": 3, "worker_utilization": 0.375,
			"jobs_started": 120, "jobs_finished": 117, "jobs_inflight": 3,
			"jobs_degraded": 1, "job_retries": 4, "job_reroutes": 2,
			"lease_expirations": 1, "job_panics": 0,
			"backends": [
				{"name":"remote-0","depth":0,"capacity":8,"workers":2,"addr":"http://w0","circuit":"closed","heartbeat_rtt_ms":0.8,"dispatch_failures":1},
				{"name":"local-0","depth":1,"capacity":8,"workers":2}
			],
			"cache": {"enabled":true,"entries":37,"capacity":512,"hits":80,"misses":40}
		}`))
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"jobs":[
			{"id":"job-000117","state":"done","testcase":"aes_300","backend":"remote-0",
			 "started":"` + started.Format(time.RFC3339Nano) + `",
			 "finished":"` + finished.Format(time.RFC3339Nano) + `",
			 "reroutes":1,"trace_id":"0af7651916cd43dd8448eb211c80319c"},
			{"id":"job-000118","state":"running","testcase":"nova_500","backend":"local-0",
			 "started":"` + started.Format(time.RFC3339Nano) + `"},
			{"id":"job-000119","state":"queued","testcase":"des3_210"}
		]}`))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(testMetrics))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	f, err := newClient(srv.URL).fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	render(&b, f, 8)
	out := b.String()

	for _, want := range []string{
		"workers 3/8 busy (38%)",
		"queue 2/16",
		"inflight 3",
		"reroutes 2",
		"hit rate 66.7%",
		"remote-0",
		"closed",
		"local-0",
		"job-000117",
		"0af7651916cd43dd8448eb211c80319c", // trace ID visible → copy into /v1/jobs/{id}/trace
		"job-000118",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// Running jobs lead the table; queued ones aren't rows.
	if strings.Index(out, "job-000118") > strings.Index(out, "job-000117") {
		t.Errorf("running job should sort before finished:\n%s", out)
	}
	if strings.Contains(out, "job-000119") {
		t.Errorf("queued job should not occupy a row:\n%s", out)
	}
}

func TestRenderEmptyFabric(t *testing.T) {
	var b strings.Builder
	render(&b, frame{Now: time.Now()}, 8)
	if out := b.String(); !strings.Contains(out, "LANE") {
		t.Errorf("empty frame should still print the lane header:\n%s", out)
	}
}
