package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// frame is everything one screen needs, fetched in a single pass.
type frame struct {
	Stats statsDoc
	Jobs  []jobView
	Prom  []sample
	Now   time.Time
}

// statsDoc mirrors the GET /stats response (unknown fields ignored, so the
// console tolerates servers a version ahead or behind).
type statsDoc struct {
	UptimeSeconds    float64        `json:"uptime_seconds"`
	QueueDepth       int            `json:"queue_depth"`
	QueueCapacity    int            `json:"queue_capacity"`
	Workers          int            `json:"workers"`
	BusyWorkers      int            `json:"busy_workers"`
	Utilization      float64        `json:"worker_utilization"`
	Jobs             map[string]int `json:"jobs"`
	Started          int64          `json:"jobs_started"`
	Finished         int64          `json:"jobs_finished"`
	Inflight         int64          `json:"jobs_inflight"`
	Degraded         int64          `json:"jobs_degraded"`
	Retries          int64          `json:"job_retries"`
	Panics           int64          `json:"job_panics"`
	Reroutes         int64          `json:"job_reroutes"`
	LeaseExpirations int64          `json:"lease_expirations"`
	Backends         []backendStat  `json:"backends"`
	Cache            cacheStat      `json:"cache"`
}

type backendStat struct {
	Name             string  `json:"name"`
	Depth            int     `json:"depth"`
	Capacity         int     `json:"capacity"`
	Workers          int     `json:"workers"`
	Addr             string  `json:"addr"`
	Circuit          string  `json:"circuit"`
	HeartbeatRTTms   float64 `json:"heartbeat_rtt_ms"`
	DispatchFailures int64   `json:"dispatch_failures"`
}

type cacheStat struct {
	Enabled  bool  `json:"enabled"`
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

// jobView mirrors the GET /v1/jobs entries.
type jobView struct {
	ID       string     `json:"id"`
	State    string     `json:"state"`
	Testcase string     `json:"testcase"`
	Started  *time.Time `json:"started"`
	Finished *time.Time `json:"finished"`
	Error    string     `json:"error"`
	Attempts int        `json:"attempts"`
	Reroutes int        `json:"reroutes"`
	CacheHit bool       `json:"cache_hit"`
	Backend  string     `json:"backend"`
	TraceID  string     `json:"trace_id"`
}

// client fetches one coordinator's observability surface.
type client struct {
	base string
	http *http.Client
}

func newClient(base string) *client {
	return &client{base: strings.TrimRight(base, "/"), http: &http.Client{Timeout: 5 * time.Second}}
}

func (c *client) fetch(ctx context.Context) (frame, error) {
	f := frame{Now: time.Now()}
	if err := c.getJSON(ctx, "/stats", &f.Stats); err != nil {
		return f, err
	}
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := c.getJSON(ctx, "/v1/jobs", &list); err != nil {
		return f, err
	}
	f.Jobs = list.Jobs
	body, err := c.get(ctx, "/metrics")
	if err != nil {
		return f, err
	}
	defer body.Close()
	f.Prom = parseProm(body)
	return f, nil
}

func (c *client) getJSON(ctx context.Context, path string, out any) error {
	body, err := c.get(ctx, path)
	if err != nil {
		return err
	}
	defer body.Close()
	return json.NewDecoder(body).Decode(out)
}

func (c *client) get(ctx context.Context, path string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return resp.Body, nil
}

// sample is one series from the Prometheus text exposition.
type sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// parseProm reads the Prometheus text exposition format: one
// `name{k="v",...} value` line per series, '#' comment lines skipped.
// Label values undo the format's three escapes (\\ \" \n). Unparseable
// lines are skipped rather than failing the frame — a console should
// degrade, not die, on a metric it doesn't understand.
func parseProm(r io.Reader) []sample {
	var out []sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, ok := parsePromLine(line)
		if ok {
			out = append(out, s)
		}
	}
	return out
}

func parsePromLine(line string) (sample, bool) {
	s := sample{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, false
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, ok := parsePromLabels(rest[1:])
		if !ok {
			return s, false
		}
		s.Labels, rest = labels, tail
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, false
	}
	s.Value = v
	return s, true
}

// parsePromLabels consumes `k="v",...}` and returns the remainder after the
// closing brace.
func parsePromLabels(rest string) (map[string]string, string, bool) {
	labels := map[string]string{}
	for {
		rest = strings.TrimLeft(rest, ", ")
		if rest == "" {
			return nil, "", false
		}
		if rest[0] == '}' {
			return labels, rest[1:], true
		}
		eq := strings.Index(rest, "=\"")
		if eq < 0 {
			return nil, "", false
		}
		key := rest[:eq]
		rest = rest[eq+2:]
		var val strings.Builder
		for {
			j := strings.IndexAny(rest, `"\`)
			if j < 0 {
				return nil, "", false
			}
			val.WriteString(rest[:j])
			if rest[j] == '"' {
				rest = rest[j+1:]
				break
			}
			if j+1 >= len(rest) {
				return nil, "", false
			}
			switch rest[j+1] {
			case 'n':
				val.WriteByte('\n')
			default: // \\ and \" unescape to the char itself
				val.WriteByte(rest[j+1])
			}
			rest = rest[j+2:]
		}
		labels[key] = val.String()
	}
}

// laneRED is the per-lane request/error/duration rollup derived from the
// mth_lane_requests_total and mth_lane_seconds families.
type laneRED struct {
	OK, Err, Rerouted int64
	AvgMS             float64
}

func laneStats(samples []sample) map[string]laneRED {
	lanes := map[string]laneRED{}
	sum, count := map[string]float64{}, map[string]float64{}
	for _, s := range samples {
		b := s.Labels["backend"]
		switch s.Name {
		case "mth_lane_requests_total":
			l := lanes[b]
			switch s.Labels["outcome"] {
			case "ok":
				l.OK = int64(s.Value)
			case "error":
				l.Err = int64(s.Value)
			case "rerouted":
				l.Rerouted = int64(s.Value)
			}
			lanes[b] = l
		case "mth_lane_seconds_sum":
			sum[b] = s.Value
		case "mth_lane_seconds_count":
			count[b] = s.Value
		}
	}
	for b, n := range count {
		if n > 0 {
			l := lanes[b]
			l.AvgMS = sum[b] / n * 1000
			lanes[b] = l
		}
	}
	return lanes
}

// render draws one frame. Plain text, no ANSI: the caller owns screen
// control, so the same function serves -once output, the live loop, and
// tests.
func render(w io.Writer, f frame, rows int) {
	st := f.Stats
	fmt.Fprintf(w, "mthtop  up %s  workers %d/%d busy (%.0f%%)  queue %d/%d  inflight %d\n",
		shortDur(time.Duration(st.UptimeSeconds*float64(time.Second))),
		st.BusyWorkers, st.Workers, 100*st.Utilization, st.QueueDepth, st.QueueCapacity, st.Inflight)
	fmt.Fprintf(w, "jobs    started %d  finished %d  degraded %d  retries %d  reroutes %d  lease-exp %d  panics %d\n",
		st.Started, st.Finished, st.Degraded, st.Retries, st.Reroutes, st.LeaseExpirations, st.Panics)
	hitRate := "-"
	if t := st.Cache.Hits + st.Cache.Misses; t > 0 {
		hitRate = fmt.Sprintf("%.1f%%", 100*float64(st.Cache.Hits)/float64(t))
	}
	fmt.Fprintf(w, "cache   %d/%d entries  hits %d  misses %d  hit rate %s\n\n",
		st.Cache.Entries, st.Cache.Capacity, st.Cache.Hits, st.Cache.Misses, hitRate)

	lanes := laneStats(f.Prom)
	fmt.Fprintf(w, "%-12s %-9s %-7s %6s %6s %6s %9s %8s %9s\n",
		"LANE", "CIRCUIT", "QUEUE", "OK", "ERR", "REROUT", "AVG(ms)", "RTT(ms)", "DISPFAIL")
	for _, b := range st.Backends {
		circuit, rtt, df := "-", "-", "-"
		if b.Circuit != "" {
			circuit = b.Circuit
			rtt = fmt.Sprintf("%.1f", b.HeartbeatRTTms)
			df = strconv.FormatInt(b.DispatchFailures, 10)
		}
		red := lanes[b.Name]
		fmt.Fprintf(w, "%-12s %-9s %-7s %6d %6d %6d %9.1f %8s %9s\n",
			b.Name, circuit, fmt.Sprintf("%d/%d", b.Depth, b.Capacity),
			red.OK, red.Err, red.Rerouted, red.AvgMS, rtt, df)
	}

	jobs := selectJobs(f.Jobs, rows)
	if len(jobs) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%-12s %-10s %-10s %-12s %9s %4s  %s\n",
		"JOB", "TESTCASE", "STATE", "LANE", "MS", "RER", "TRACE")
	for _, j := range jobs {
		state := j.State
		if j.CacheHit {
			state += "*" // served from the solve cache
		}
		fmt.Fprintf(w, "%-12s %-10s %-10s %-12s %9s %4d  %s\n",
			j.ID, j.Testcase, state, orDash(j.Backend), jobMS(j, f.Now), j.Reroutes, orDash(j.TraceID))
	}
}

// selectJobs picks the rows worth a human's attention: everything still
// running (oldest first — the likeliest stragglers), then the slowest of
// the recently finished.
func selectJobs(jobs []jobView, rows int) []jobView {
	var running, done []jobView
	for _, j := range jobs {
		switch j.State {
		case "running":
			running = append(running, j)
		case "done", "failed", "canceled":
			done = append(done, j)
		}
	}
	sort.Slice(running, func(i, k int) bool { return startedBefore(running[i], running[k]) })
	sort.Slice(done, func(i, k int) bool { return jobDur(done[i]) > jobDur(done[k]) })
	out := running
	if len(out) > rows {
		out = out[:rows]
	}
	if n := rows - len(out); n > 0 {
		if len(done) > n {
			done = done[:n]
		}
		out = append(out, done...)
	}
	return out
}

func startedBefore(a, b jobView) bool {
	switch {
	case a.Started == nil:
		return false
	case b.Started == nil:
		return true
	default:
		return a.Started.Before(*b.Started)
	}
}

func jobDur(j jobView) time.Duration {
	if j.Started == nil || j.Finished == nil {
		return 0
	}
	return j.Finished.Sub(*j.Started)
}

func jobMS(j jobView, now time.Time) string {
	switch {
	case j.Started == nil:
		return "-"
	case j.Finished == nil:
		return fmt.Sprintf("%.0f+", now.Sub(*j.Started).Seconds()*1000)
	default:
		return fmt.Sprintf("%.0f", jobDur(j).Seconds()*1000)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func shortDur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%.0fs", d.Seconds())
	}
}
