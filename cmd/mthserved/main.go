// Command mthserved runs the placement service: an HTTP/JSON front end over
// the flow API with a bounded job queue, cancellation, and graceful
// shutdown. See DESIGN.md §8 and the README for the endpoint reference.
//
// Usage:
//
//	mthserved -addr :8080 -workers 2 -queue 16 -pool-jobs 8
//
// The service is layered (DESIGN.md §13): the HTTP transport accepts jobs
// under /v1/ (plus unversioned aliases and POST /v1/jobs:batch), the
// scheduler routes them across -backends execution lanes by consistent hash
// of their content-addressed instance keys, and the result store keeps a
// -cache-entries LRU solve cache so a repeated instance is answered
// bit-identically without re-solving (per-request opt-out via Cache-Control
// or the body's "cache" field).
//
// SIGINT/SIGTERM stops intake, cancels queued jobs, and drains in-flight
// jobs (up to -drain); a second signal aborts immediately.
//
// Resilience (DESIGN.md §10): transient job failures are retried up to
// -retries times with backoff; panics inside a job fail that job with a
// structured 500 and leave the daemon running. With -journal DIR the server
// keeps a crash-safe write-ahead log (jobs.jsonl) and re-runs
// accepted-but-unfinished jobs, under their original IDs, on restart.
// MTHPLACE_FAULTS (comma-separated point:kind[@hit][=delay] clauses or
// rand:seed:rate[:kinds]) injects faults at the pipeline stage boundaries
// for chaos testing.
//
// Observability (DESIGN.md §11): GET /metrics on the main address serves
// the Prometheus text exposition (job lifecycle counters, flow stage
// latency histograms, solve-rung counters). -debug-addr additionally binds
// a debug listener with net/http/pprof under /debug/pprof/ plus the same
// /metrics — keep it loopback-only in production. -v/-q tune the
// structured log level on stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mthplace/internal/fault"
	"mthplace/internal/obs"
	"mthplace/internal/server"
	"mthplace/internal/server/worker"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "debug listen address for /debug/pprof/ and /metrics (empty = disabled)")
	workers := flag.Int("workers", 2, "concurrent placement jobs (split across -backends lanes; worker mode: execution slots)")
	queue := flag.Int("queue", 16, "job queue depth beyond the workers (split across -backends lanes)")
	backends := flag.Int("backends", 1, "local execution lanes; jobs route to a lane by consistent hash of their instance keys (defaults to 0 when -remote is set)")
	workerMode := flag.Bool("worker", false, "run as an execution worker: serve the worker API (/worker/v1/) for a coordinator's -remote list instead of the job API")
	remotes := flag.String("remote", "", "comma-separated worker base URLs (http://host:port) added as remote execution lanes")
	lease := flag.Duration("lease", 0, "remote job lease duration; a worker silent this long has its jobs re-routed (0 = 15s default)")
	probeInterval := flag.Duration("probe-interval", 0, "remote worker heartbeat cadence (0 = 2s default)")
	cacheEntries := flag.Int("cache-entries", 512, "content-addressed solve-cache capacity in flow results (0 = cache off)")
	poolJobs := flag.Int("pool-jobs", 0, "shared worker-pool bound for jobs without a private -jobs setting (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 2*time.Minute, "graceful-shutdown drain budget for in-flight jobs")
	retries := flag.Int("retries", 2, "max retries for transient job failures (-1 disables)")
	journalDir := flag.String("journal", "", "job-journal directory; unfinished jobs are re-run on restart (empty = journaling off)")
	solver := flag.String("solver", "", `default RAP solver backend for jobs that name none: milp (default), rap, or greedy; per-job override via the request's "solver" field`)
	verbose := flag.Bool("v", false, "verbose diagnostics (debug level) on stderr")
	quiet := flag.Bool("q", false, "quiet: warnings and errors only")
	flag.Parse()

	lg := obs.NewCLILogger(os.Stderr, *verbose, *quiet)

	if err := fault.InitFromEnv(); err != nil {
		lg.Error("mthserved: bad MTHPLACE_FAULTS", "err", err)
		os.Exit(2)
	}

	if *workerMode {
		runWorker(lg, *addr, *workers, *poolJobs, *solver, *drain)
		return
	}

	var remoteList []string
	for _, r := range strings.Split(*remotes, ",") {
		if r = strings.TrimSpace(r); r != "" {
			remoteList = append(remoteList, r)
		}
	}
	// -backends defaults to 1, but a coordinator with remote lanes should
	// default to running nothing locally; only an explicit -backends wins.
	backendsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "backends" {
			backendsSet = true
		}
	})
	localLanes := *backends
	if len(remoteList) > 0 && !backendsSet {
		localLanes = 0
	}

	srv, err := server.New(server.Options{
		Workers:       *workers,
		QueueDepth:    *queue,
		Backends:      localLanes,
		Remotes:       remoteList,
		LeaseDuration: *lease,
		ProbeInterval: *probeInterval,
		CacheEntries:  *cacheEntries,
		PoolJobs:      *poolJobs,
		MaxRetries:    *retries,
		JournalDir:    *journalDir,
		DefaultSolver: *solver,
		Logger:        lg,
	})
	if err != nil {
		lg.Error("mthserved: startup failed", "err", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	var dbgSrv *http.Server
	if *debugAddr != "" {
		dbgSrv = &http.Server{Addr: *debugAddr, Handler: debugMux(srv)}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 2)
	go func() {
		lg.Info("mthserved: listening", "addr", *addr, "workers", *workers, "queue", *queue)
		errCh <- httpSrv.ListenAndServe()
	}()
	if dbgSrv != nil {
		go func() {
			lg.Info("mthserved: debug listener up (pprof + metrics)", "addr", *debugAddr)
			errCh <- dbgSrv.ListenAndServe()
		}()
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			lg.Error("mthserved: listener failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills us
		lg.Info("mthserved: shutting down, draining in-flight jobs")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			lg.Warn("mthserved: http shutdown", "err", err)
		}
		if dbgSrv != nil {
			if err := dbgSrv.Shutdown(drainCtx); err != nil {
				lg.Warn("mthserved: debug shutdown", "err", err)
			}
		}
		if err := srv.Shutdown(drainCtx); err != nil {
			lg.Error("mthserved: job drain failed", "err", err)
			os.Exit(1)
		}
		lg.Info("mthserved: drained cleanly")
	}
}

// runWorker serves the worker-mode API: /worker/v1/execute and
// /worker/v1/ping for a coordinator, plus /healthz and /metrics for
// operators. Shutdown is plain HTTP drain — in-flight jobs finish with
// their requests; everything else (leases, re-routes, retries) is the
// coordinator's problem, by design.
func runWorker(lg *slog.Logger, addr string, slots, poolJobs int, solver string, drain time.Duration) {
	h := worker.New(worker.Options{Slots: slots, PoolJobs: poolJobs, DefaultSolver: solver, Logger: lg})
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.Handle("GET /metrics", h.MetricsHandler())
	httpSrv := &http.Server{Addr: addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		lg.Info("mthserved: worker listening", "addr", addr, "slots", slots)
		errCh <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			lg.Error("mthserved: worker listener failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		lg.Info("mthserved: worker shutting down, finishing in-flight jobs")
		drainCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			lg.Warn("mthserved: worker shutdown", "err", err)
		}
	}
}

// debugMux serves the profiling and metrics endpoints on the debug
// listener. pprof is registered explicitly (not via the package's
// DefaultServeMux side effect) so the main API mux never exposes it.
func debugMux(srv *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", srv.MetricsHandler())
	return mux
}
