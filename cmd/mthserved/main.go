// Command mthserved runs the placement service: an HTTP/JSON front end over
// the flow API with a bounded job queue, cancellation, and graceful
// shutdown. See DESIGN.md §8 and the README for the endpoint reference.
//
// Usage:
//
//	mthserved -addr :8080 -workers 2 -queue 16 -pool-jobs 8
//
// SIGINT/SIGTERM stops intake, cancels queued jobs, and drains in-flight
// jobs (up to -drain); a second signal aborts immediately.
//
// Resilience (DESIGN.md §10): transient job failures are retried up to
// -retries times with backoff; panics inside a job fail that job with a
// structured 500 and leave the daemon running. With -journal DIR the server
// keeps a crash-safe write-ahead log (jobs.jsonl) and re-runs
// accepted-but-unfinished jobs, under their original IDs, on restart.
// MTHPLACE_FAULTS (comma-separated point:kind[@hit][=delay] clauses or
// rand:seed:rate[:kinds]) injects faults at the pipeline stage boundaries
// for chaos testing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mthplace/internal/fault"
	"mthplace/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent placement jobs")
	queue := flag.Int("queue", 16, "job queue depth beyond the workers")
	poolJobs := flag.Int("pool-jobs", 0, "shared worker-pool bound for jobs without a private -jobs setting (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 2*time.Minute, "graceful-shutdown drain budget for in-flight jobs")
	retries := flag.Int("retries", 2, "max retries for transient job failures (-1 disables)")
	journalDir := flag.String("journal", "", "job-journal directory; unfinished jobs are re-run on restart (empty = journaling off)")
	flag.Parse()

	if err := fault.InitFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "mthserved:", err)
		os.Exit(2)
	}

	srv, err := server.New(server.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		PoolJobs:   *poolJobs,
		MaxRetries: *retries,
		JournalDir: *journalDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mthserved:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "mthserved: listening on %s (%d workers, queue %d)\n",
			*addr, *workers, *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "mthserved:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills us
		fmt.Fprintln(os.Stderr, "mthserved: shutting down, draining in-flight jobs")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "mthserved: http shutdown:", err)
		}
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "mthserved: job drain:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "mthserved: drained cleanly")
	}
}
