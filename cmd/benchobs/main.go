// Command benchobs measures the cost of the observability layer (DESIGN.md
// §11) and writes the results to a JSON file. Each workload runs twice: once
// with no observability hooks on the context (the default for every library
// caller) and once with all of them attached — tracer, progress sink, and a
// debug-level logger writing to a discard buffer. The placement outputs are
// identical either way; the report is purely about wall clock.
//
//	benchobs                     # write BENCH_obs.json in the cwd
//	benchobs -reps 5 -o /tmp/bench.json
//
// The acceptance bar is OverheadPct < 2 for the disabled configuration; the
// enabled run is reported alongside it to bound what turning everything on
// costs. Because the "off" run *is* the baseline (hooks absent, every probe
// short-circuits on a nil context value), the off-vs-on delta is the entire
// cost the layer can add.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"mthplace/internal/cluster"
	"mthplace/internal/flow"
	"mthplace/internal/obs"
	"mthplace/internal/server/scheduler"
	"mthplace/internal/server/worker"
	"mthplace/internal/synth"
)

// Report is the schema of BENCH_obs.json.
type Report struct {
	Host struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	Reps      int        `json:"reps"`
	Workloads []Workload `json:"workloads"`
}

// Workload is one benchmark: best-of-reps wall clock with observability
// hooks absent (off) and fully attached (on).
type Workload struct {
	Name        string  `json:"name"`
	OffMS       float64 `json:"off_ms"`
	OnMS        float64 `json:"on_ms"`
	OverheadPct float64 `json:"overhead_pct"`
	// TraceEvents is the span/instant count the "on" run collected — a
	// sanity check that the instrumentation was actually live.
	TraceEvents int `json:"trace_events"`
}

func main() {
	var (
		reps = flag.Int("reps", 5, "measurement scale: each workload times reps*15 symmetric off/on/on/off blocks")
		out  = flag.String("o", "BENCH_obs.json", "output file")
	)
	flag.Parse()

	var rep Report
	rep.Host.GoVersion = runtime.Version()
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Reps = *reps

	for _, w := range []struct {
		name string
		fn   func(ctx context.Context) error
	}{
		{"Flow5/aes_360_s0.03", benchFlow5()},
		{"Flow2/des3_210_s0.03", benchFlow2()},
		{"KMeans2D/2000pts_k400", benchKMeans()},
		{"RemoteExec/aes_300_s0.02", benchRemote()},
	} {
		off, on, err := timeWith(*reps, w.fn,
			func(ctx context.Context) context.Context { return ctx },
			func(ctx context.Context) context.Context {
				ctx = obs.WithTracer(ctx, obs.NewTracer())
				ctx = obs.WithProgress(ctx, func(obs.Event) {})
				return obs.WithLogger(ctx, slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})))
			})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", w.name, err))
		}
		// Re-run once more to capture the event count for the report.
		tr := obs.NewTracer()
		ctx := obs.WithTracer(context.Background(), tr)
		if err := w.fn(ctx); err != nil {
			fatal(err)
		}
		wl := Workload{
			Name:        w.name,
			OffMS:       float64(off.Microseconds()) / 1000,
			OnMS:        float64(on.Microseconds()) / 1000,
			OverheadPct: 100 * (float64(on)/float64(off) - 1),
			TraceEvents: tr.Len(),
		}
		rep.Workloads = append(rep.Workloads, wl)
		fmt.Printf("%-24s off %8.2f ms   on %8.2f ms   overhead %+.2f%%   events %d\n",
			wl.Name, wl.OffMS, wl.OnMS, wl.OverheadPct, wl.TraceEvents)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (host: %d CPU)\n", *out, rep.Host.NumCPU)
}

// timeWith measures fn under each wrapper and returns representative
// per-run wall clocks. The statistic is built for a noisy small VM, where
// the effective CPU speed both drifts in multi-second epochs and takes
// tens-of-milliseconds steal bursts — the same arm measures 40% apart in
// back-to-back process runs, so neither best-of-N nor long batches give a
// stable off-vs-on delta. What does: compare only *adjacent* short
// samples, and let a median discard the pairs a burst corrupts.
//
//   - a sample is a small batch of consecutive runs (~10ms), long enough
//     to amortize timer overhead, short enough that a comparison block
//     usually sits inside one speed epoch;
//   - samples are taken in symmetric off-on-on-off blocks, whose ratio
//     (on₁+on₂)/(off₁+off₂) cancels linear speed drift across the block
//     exactly — both arms have the same mean position in time;
//   - the overhead is the median block ratio over many blocks; a steal
//     burst landing inside one sample makes that block an outlier, which
//     the median ignores.
//
// The returned off is the median off sample; on is derived from it via the
// median ratio, so OverheadPct reflects the paired statistic.
func timeWith(reps int, fn func(ctx context.Context) error, wrapOff, wrapOn func(context.Context) context.Context) (off, on time.Duration, err error) {
	// The calibration run doubles as warmup (page faults, allocator growth
	// land here, not in the first off sample).
	start := time.Now()
	if err := fn(wrapOff(context.Background())); err != nil {
		return 0, 0, err
	}
	batch := 1
	if single, target := time.Since(start), 10*time.Millisecond; single > 0 && single < target {
		batch = int(target/single) + 1
	}
	one := func(wrap func(context.Context) context.Context) (time.Duration, error) {
		ctx := wrap(context.Background())
		start := time.Now()
		for b := 0; b < batch; b++ {
			if err := fn(ctx); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(batch), nil
	}
	blocks := reps * 15
	offs := make([]time.Duration, 0, 2*blocks)
	ratios := make([]float64, 0, blocks)
	for i := 0; i < blocks; i++ {
		var block [4]time.Duration
		for j, wrap := range []func(context.Context) context.Context{wrapOff, wrapOn, wrapOn, wrapOff} {
			d, err := one(wrap)
			if err != nil {
				return 0, 0, err
			}
			block[j] = d
		}
		offs = append(offs, block[0], block[3])
		ratios = append(ratios, float64(block[1]+block[2])/float64(block[0]+block[3]))
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	sort.Float64s(ratios)
	off = offs[len(offs)/2]
	on = time.Duration(float64(off) * ratios[len(ratios)/2])
	return off, on, nil
}

// benchFlow5 runs the paper's full flow (cluster + ILP + legalize) on a
// small aes_360; this exercises every instrumented stage boundary.
func benchFlow5() func(ctx context.Context) error {
	return benchFlow("aes_360", flow.Flow5)
}

// benchFlow2 runs the fixed-rows baseline flow, whose solve stage skips
// clustering — a different span mix than Flow 5.
func benchFlow2() func(ctx context.Context) error {
	return benchFlow("des3_210", flow.Flow2)
}

func benchFlow(name string, id flow.ID) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		cfg := flow.DefaultConfig()
		cfg.Synth.Scale = 0.03
		cfg.Placer.OuterIters = 4
		cfg.Placer.SolveSweeps = 6
		r, err := flow.NewRunner(ctx, spec(name), cfg)
		if err != nil {
			return err
		}
		_, err = r.Run(ctx, id, false)
		return err
	}
}

// benchRemote measures the distributed execute path: a WireJob POSTed over
// loopback HTTP to a real worker.Handler, the way a coordinator's remote
// lane dispatches. The "off" arm sends no traceparent, so the worker runs
// untraced and returns no spans; the "on" arm propagates a W3C traceparent
// under a client span and gets the worker's span batch piggybacked on the
// WireResult — so the off-vs-on delta covers context propagation, worker
// span collection, and span serialization on the wire.
func benchRemote() func(ctx context.Context) error {
	srv := httptest.NewServer(worker.New(worker.Options{Slots: 2}))
	// The server leaks by design: a bench binary's workloads live for the
	// whole process.
	req := scheduler.JobRequest{Testcase: "aes_300", Scale: 0.02, Seed: 7, Solver: "greedy"}
	n := 0
	return func(ctx context.Context) error {
		n++
		wj := scheduler.WireJob{ID: fmt.Sprintf("bench-%06d", n), Req: req}
		traced := obs.TracerFrom(ctx) != nil
		if traced {
			ctx = obs.WithSpanContext(ctx, obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()})
			sctx, sp := obs.StartSpanCtx(ctx, "submit")
			defer sp.End()
			ctx = sctx
			wj.Traceparent = obs.SpanContextFrom(sctx).Traceparent()
		}
		body, err := json.Marshal(wj)
		if err != nil {
			return err
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+scheduler.WorkerExecutePath, bytes.NewReader(body))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := srv.Client().Do(hreq)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("execute: %s", resp.Status)
		}
		var res scheduler.WireResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return err
		}
		if res.Error != "" {
			return errors.New(res.Error)
		}
		if traced && len(res.Spans) == 0 {
			return errors.New("traced execute returned no spans")
		}
		if !traced && len(res.Spans) != 0 {
			return errors.New("untraced execute returned spans")
		}
		return nil
	}
}

func benchKMeans() func(ctx context.Context) error {
	pts := make([]cluster.Point2, 2000)
	for i := range pts {
		pts[i] = cluster.Point2{X: float64(i*131%9973) / 9973, Y: float64(i*197%9967) / 9967}
	}
	return func(ctx context.Context) error {
		cluster.KMeans2D(ctx, pts, 400, 30)
		return nil
	}
}

func spec(name string) synth.Spec {
	for _, s := range synth.TableII() {
		if s.Name() == name {
			return s
		}
	}
	fatal(fmt.Errorf("unknown spec %s", name))
	panic("unreachable")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchobs:", err)
	os.Exit(1)
}
