// Command benchobs measures the cost of the observability layer (DESIGN.md
// §11) and writes the results to a JSON file. Each workload runs twice: once
// with no observability hooks on the context (the default for every library
// caller) and once with all of them attached — tracer, progress sink, and a
// debug-level logger writing to a discard buffer. The placement outputs are
// identical either way; the report is purely about wall clock.
//
//	benchobs                     # write BENCH_obs.json in the cwd
//	benchobs -reps 5 -o /tmp/bench.json
//
// The acceptance bar is OverheadPct < 2 for the disabled configuration; the
// enabled run is reported alongside it to bound what turning everything on
// costs. Because the "off" run *is* the baseline (hooks absent, every probe
// short-circuits on a nil context value), the off-vs-on delta is the entire
// cost the layer can add.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"time"

	"mthplace/internal/cluster"
	"mthplace/internal/flow"
	"mthplace/internal/obs"
	"mthplace/internal/synth"
)

// Report is the schema of BENCH_obs.json.
type Report struct {
	Host struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	Reps      int        `json:"reps"`
	Workloads []Workload `json:"workloads"`
}

// Workload is one benchmark: best-of-reps wall clock with observability
// hooks absent (off) and fully attached (on).
type Workload struct {
	Name        string  `json:"name"`
	OffMS       float64 `json:"off_ms"`
	OnMS        float64 `json:"on_ms"`
	OverheadPct float64 `json:"overhead_pct"`
	// TraceEvents is the span/instant count the "on" run collected — a
	// sanity check that the instrumentation was actually live.
	TraceEvents int `json:"trace_events"`
}

func main() {
	var (
		reps = flag.Int("reps", 5, "repetitions per workload (best is kept)")
		out  = flag.String("o", "BENCH_obs.json", "output file")
	)
	flag.Parse()

	var rep Report
	rep.Host.GoVersion = runtime.Version()
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Reps = *reps

	for _, w := range []struct {
		name string
		fn   func(ctx context.Context) error
	}{
		{"Flow5/aes_360_s0.03", benchFlow5()},
		{"Flow2/des3_210_s0.03", benchFlow2()},
		{"KMeans2D/2000pts_k400", benchKMeans()},
	} {
		off, on, err := timeWith(*reps, w.fn,
			func(ctx context.Context) context.Context { return ctx },
			func(ctx context.Context) context.Context {
				ctx = obs.WithTracer(ctx, obs.NewTracer())
				ctx = obs.WithProgress(ctx, func(obs.Event) {})
				return obs.WithLogger(ctx, slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})))
			})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", w.name, err))
		}
		// Re-run once more to capture the event count for the report.
		tr := obs.NewTracer()
		ctx := obs.WithTracer(context.Background(), tr)
		if err := w.fn(ctx); err != nil {
			fatal(err)
		}
		wl := Workload{
			Name:        w.name,
			OffMS:       float64(off.Microseconds()) / 1000,
			OnMS:        float64(on.Microseconds()) / 1000,
			OverheadPct: 100 * (float64(on)/float64(off) - 1),
			TraceEvents: tr.Len(),
		}
		rep.Workloads = append(rep.Workloads, wl)
		fmt.Printf("%-24s off %8.2f ms   on %8.2f ms   overhead %+.2f%%   events %d\n",
			wl.Name, wl.OffMS, wl.OnMS, wl.OverheadPct, wl.TraceEvents)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (host: %d CPU)\n", *out, rep.Host.NumCPU)
}

// timeWith runs fn reps times under each wrapper, interleaving the two so
// scheduler and frequency drift hit both configurations equally, and
// returns the best wall clock of each. Best-of is the right statistic:
// scheduling noise only ever adds time, so the minimum is the cleanest
// estimate of intrinsic cost.
func timeWith(reps int, fn func(ctx context.Context) error, wrapOff, wrapOn func(context.Context) context.Context) (off, on time.Duration, err error) {
	one := func(wrap func(context.Context) context.Context, best *time.Duration) error {
		ctx := wrap(context.Background())
		start := time.Now()
		if err := fn(ctx); err != nil {
			return err
		}
		if d := time.Since(start); *best == 0 || d < *best {
			*best = d
		}
		return nil
	}
	for i := 0; i < reps; i++ {
		if err := one(wrapOff, &off); err != nil {
			return 0, 0, err
		}
		if err := one(wrapOn, &on); err != nil {
			return 0, 0, err
		}
	}
	return off, on, nil
}

// benchFlow5 runs the paper's full flow (cluster + ILP + legalize) on a
// small aes_360; this exercises every instrumented stage boundary.
func benchFlow5() func(ctx context.Context) error {
	return benchFlow("aes_360", flow.Flow5)
}

// benchFlow2 runs the fixed-rows baseline flow, whose solve stage skips
// clustering — a different span mix than Flow 5.
func benchFlow2() func(ctx context.Context) error {
	return benchFlow("des3_210", flow.Flow2)
}

func benchFlow(name string, id flow.ID) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		cfg := flow.DefaultConfig()
		cfg.Synth.Scale = 0.03
		cfg.Placer.OuterIters = 4
		cfg.Placer.SolveSweeps = 6
		r, err := flow.NewRunner(ctx, spec(name), cfg)
		if err != nil {
			return err
		}
		_, err = r.Run(ctx, id, false)
		return err
	}
}

func benchKMeans() func(ctx context.Context) error {
	pts := make([]cluster.Point2, 2000)
	for i := range pts {
		pts[i] = cluster.Point2{X: float64(i*131%9973) / 9973, Y: float64(i*197%9967) / 9967}
	}
	return func(ctx context.Context) error {
		cluster.KMeans2D(ctx, pts, 400, 30)
		return nil
	}
}

func spec(name string) synth.Spec {
	for _, s := range synth.TableII() {
		if s.Name() == name {
			return s
		}
	}
	fatal(fmt.Errorf("unknown spec %s", name))
	panic("unreachable")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchobs:", err)
	os.Exit(1)
}
