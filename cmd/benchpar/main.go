// Command benchpar measures the parallel execution layer (DESIGN.md §7) and
// writes the results to a JSON file. Each workload runs at jobs=1 and at the
// requested worker bound; because the layer is deterministic the two runs
// produce identical outputs, so the report is purely about wall clock.
//
//	benchpar                     # write BENCH_parallel.json in the cwd
//	benchpar -jobs 8 -reps 5 -o /tmp/bench.json
//
// On a host with a single CPU the parallel numbers measure the pool's
// scheduling overhead, not a speedup; the report records the host core count
// so readers can interpret the ratios.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mthplace/internal/celllib"
	"mthplace/internal/cluster"
	"mthplace/internal/core"
	"mthplace/internal/exp"
	"mthplace/internal/flow"
	"mthplace/internal/lefdef"
	"mthplace/internal/par"
	"mthplace/internal/soa"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

// Report is the schema of BENCH_parallel.json.
type Report struct {
	// Host records where the numbers were taken. Speedup ratios are only
	// meaningful when NumCPU > 1.
	Host struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	Jobs      int        `json:"jobs"`
	Reps      int        `json:"reps"`
	Workloads []Workload `json:"workloads"`
	// Scale is the million-cell suite (benchpar -scale N): one large design
	// driven through generation, SoA conversion, metric kernels, streaming
	// DEF I/O and an end-to-end greedy flow, with memory per cell recorded
	// for both representations. Absent when -scale was not requested.
	Scale *ScaleReport `json:"scale,omitempty"`
}

// ScaleReport is one large-design run of the scale suite.
type ScaleReport struct {
	Testcase string `json:"testcase"`
	Cells    int    `json:"cells"`
	Nets     int    `json:"nets"`
	// Generation and conversion.
	GenMS     float64 `json:"gen_ms"`
	ConvertMS float64 `json:"convert_ms"`
	// Heap footprint per cell: the AoS pointer graph (live-heap delta around
	// generation) vs the flat SoA arrays (exact accounting via soa.Bytes).
	AoSHeapBytesPerCell float64 `json:"aos_heap_bytes_per_cell"`
	SoABytesPerCell     float64 `json:"soa_bytes_per_cell"`
	// Metric kernels over both representations (results asserted equal).
	HPWLAoSMS float64 `json:"hpwl_aos_ms"`
	HPWLSoAMS float64 `json:"hpwl_soa_ms"`
	// Streaming DEF I/O: write via DEFWriter, re-read via ScanDEF.
	DEFBytes   int64   `json:"def_bytes"`
	DEFWriteMS float64 `json:"def_write_ms"`
	DEFScanMS  float64 `json:"def_scan_ms"`
	// End-to-end flow on the SoA path with the greedy RAP backend: prepare
	// (synthesis, mLEF, global place, uniform legalize) plus the full
	// Flow (5) run, final placement streamed back out as DEF.
	FlowSolver  string  `json:"flow_solver"`
	FlowPrepMS  float64 `json:"flow_prep_ms"`
	FlowRunMS   float64 `json:"flow_run_ms"`
	FlowHPWL    int64   `json:"flow_hpwl"`
	FlowOutMS   float64 `json:"flow_def_out_ms"`
	FlowOutSize int64   `json:"flow_def_out_bytes"`
}

// Workload is one benchmark: best-of-reps wall clock at jobs=1 and jobs=N.
type Workload struct {
	Name       string  `json:"name"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

func main() {
	var (
		jobs  = flag.Int("jobs", 0, "parallel worker bound (0 = GOMAXPROCS)")
		reps  = flag.Int("reps", 3, "repetitions per workload (best is kept)")
		out   = flag.String("o", "BENCH_parallel.json", "output file")
		scale = flag.Int("scale", 0, "also run the scale suite at this cell count (e.g. 1000000); records bytes/cell and an end-to-end greedy flow")
	)
	flag.Parse()
	if *jobs <= 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}

	var rep Report
	rep.Host.GoVersion = runtime.Version()
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Jobs = *jobs
	rep.Reps = *reps

	for _, w := range []struct {
		name string
		fn   func(ctx context.Context) error
	}{
		{"BuildModel/des3_210", benchBuildModel()},
		{"KMeans2D/2000pts_k400", benchKMeans()},
		{"Table4Matrix/2specs", benchTable4()},
	} {
		serial, err := timeAt(1, *reps, w.fn)
		if err != nil {
			fatal(fmt.Errorf("%s (serial): %w", w.name, err))
		}
		parallel, err := timeAt(*jobs, *reps, w.fn)
		if err != nil {
			fatal(fmt.Errorf("%s (parallel): %w", w.name, err))
		}
		wl := Workload{
			Name:       w.name,
			SerialMS:   float64(serial.Microseconds()) / 1000,
			ParallelMS: float64(parallel.Microseconds()) / 1000,
			Speedup:    float64(serial) / float64(parallel),
		}
		rep.Workloads = append(rep.Workloads, wl)
		fmt.Printf("%-24s serial %8.2f ms   jobs=%d %8.2f ms   speedup %.2fx\n",
			wl.Name, wl.SerialMS, *jobs, wl.ParallelMS, wl.Speedup)
	}

	if *scale > 0 {
		sr, err := runScale(*scale, *jobs)
		if err != nil {
			fatal(fmt.Errorf("scale suite: %w", err))
		}
		rep.Scale = sr
		fmt.Printf("%-24s %d cells: gen %.0f ms, convert %.0f ms, %.1f B/cell SoA vs %.1f B/cell AoS heap\n",
			"Scale/"+sr.Testcase, sr.Cells, sr.GenMS, sr.ConvertMS, sr.SoABytesPerCell, sr.AoSHeapBytesPerCell)
		fmt.Printf("%-24s DEF %d MB: write %.0f ms, scan %.0f ms; flow(%s) prep %.0f ms + run %.0f ms\n",
			"", sr.DEFBytes>>20, sr.DEFWriteMS, sr.DEFScanMS, sr.FlowSolver, sr.FlowPrepMS, sr.FlowRunMS)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (host: %d CPU)\n", *out, rep.Host.NumCPU)
}

// runScale drives one large design (nova_300 rescaled to targetCells) through
// the whole data path: generation, AoS→SoA conversion with per-cell memory
// accounting, HPWL over both representations (asserted equal), streaming DEF
// write + re-scan through a file, and an end-to-end Flow (5) run on the SoA
// path with the greedy RAP backend. Every stage is timed once — at a million
// cells the interesting number is "does it complete and in what footprint",
// not best-of-N variance.
func runScale(targetCells, jobs int) (*ScaleReport, error) {
	sp := spec("nova_300")
	sr := &ScaleReport{Testcase: sp.Name()}
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = sp.ScaleForCells(targetCells)

	// Live-heap delta around generation approximates the AoS pointer graph;
	// soa.Bytes is exact accounting of the flat arrays.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	d, err := synth.Generate(tc, lib, sp, opt)
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	sr.GenMS = msSince(start)
	runtime.GC()
	runtime.ReadMemStats(&m1)
	sr.Cells = len(d.Insts)
	sr.Nets = len(d.Nets)
	sr.AoSHeapBytesPerCell = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(sr.Cells)

	start = time.Now()
	c := soa.FromDesign(d)
	sr.ConvertMS = msSince(start)
	sr.SoABytesPerCell = float64(c.Bytes()) / float64(sr.Cells)

	start = time.Now()
	hAoS := d.TotalHPWL()
	sr.HPWLAoSMS = msSince(start)
	start = time.Now()
	hSoA := c.TotalHPWL()
	sr.HPWLSoAMS = msSince(start)
	if hAoS != hSoA {
		return nil, fmt.Errorf("HPWL diverges across representations: aos %d, soa %d", hAoS, hSoA)
	}

	// Streaming DEF out to a real file and back: the design text never
	// materialises in memory in either direction.
	tmp, err := os.CreateTemp("", "benchpar-scale-*.def")
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmp.Name())
	defer tmp.Close()
	start = time.Now()
	if err := lefdef.WriteDEF(tmp, d); err != nil {
		return nil, fmt.Errorf("write DEF: %w", err)
	}
	sr.DEFWriteMS = msSince(start)
	if st, err := tmp.Stat(); err == nil {
		sr.DEFBytes = st.Size()
	}
	if _, err := tmp.Seek(0, 0); err != nil {
		return nil, err
	}
	scanned := 0
	start = time.Now()
	err = lefdef.ScanDEF(tmp, lefdef.DEFVisitor{
		Component: func(lefdef.DEFComponent) error { scanned++; return nil },
	})
	if err != nil {
		return nil, fmt.Errorf("scan DEF: %w", err)
	}
	sr.DEFScanMS = msSince(start)
	if scanned != sr.Cells {
		return nil, fmt.Errorf("scan DEF: %d components, want %d", scanned, sr.Cells)
	}

	// Drop the standalone copies before the flow allocates its own, so the
	// peak footprint is one design, not three.
	d, c = nil, nil
	runtime.GC()

	cfg := flow.DefaultConfig()
	cfg.Synth = opt
	cfg.Rep = flow.RepSoA
	cfg.Core.Solve.Backend = core.BackendGreedy
	cfg.Placer.OuterIters = 2
	cfg.Placer.SolveSweeps = 4
	cfg.Pool = par.NewPool(jobs)
	sr.FlowSolver = core.BackendGreedy
	ctx := context.Background()
	start = time.Now()
	r, err := flow.NewRunner(ctx, sp, cfg)
	if err != nil {
		return nil, fmt.Errorf("flow prep: %w", err)
	}
	sr.FlowPrepMS = msSince(start)
	start = time.Now()
	res, err := r.Run(ctx, flow.Flow5, false)
	if err != nil {
		return nil, fmt.Errorf("flow run: %w", err)
	}
	sr.FlowRunMS = msSince(start)
	sr.FlowHPWL = res.Metrics.HPWL

	outF, err := os.CreateTemp("", "benchpar-scale-out-*.def")
	if err != nil {
		return nil, err
	}
	defer os.Remove(outF.Name())
	defer outF.Close()
	start = time.Now()
	if err := lefdef.WriteDEF(outF, res.Design); err != nil {
		return nil, fmt.Errorf("write result DEF: %w", err)
	}
	sr.FlowOutMS = msSince(start)
	if st, err := outF.Stat(); err == nil {
		sr.FlowOutSize = st.Size()
	}
	return sr, nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1000 }

// timeAt runs fn reps times on a pool bound to jobs workers (carried via the
// context, so nothing global changes) and returns the best wall clock.
func timeAt(jobs, reps int, fn func(ctx context.Context) error) (time.Duration, error) {
	ctx := par.WithPool(context.Background(), par.NewPool(jobs))
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(ctx); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// benchBuildModel prepares the clustered RAP inputs once and returns a
// closure that rebuilds the cost model.
func benchBuildModel() func(ctx context.Context) error {
	cfg := flow.DefaultConfig()
	cfg.Synth.Scale = 0.02
	cfg.Placer.OuterIters = 6
	cfg.Placer.SolveSweeps = 10
	r, err := flow.NewRunner(context.Background(), spec("des3_210"), cfg)
	if err != nil {
		fatal(err)
	}
	cl, err := core.BuildClusters(context.Background(), r.Base.Clone(), 0.2, 30)
	if err != nil {
		fatal(err)
	}
	return func(ctx context.Context) error {
		_, err := core.BuildModel(ctx, r.Base, r.Grid, cl, r.NminR, core.DefaultCostParams())
		return err
	}
}

func benchKMeans() func(ctx context.Context) error {
	pts := make([]cluster.Point2, 2000)
	for i := range pts {
		pts[i] = cluster.Point2{X: float64(i*131%9973) / 9973, Y: float64(i*197%9967) / 9967}
	}
	return func(ctx context.Context) error {
		cluster.KMeans2D(ctx, pts, 400, 30)
		return nil
	}
}

func benchTable4() func(ctx context.Context) error {
	var specs []synth.Spec
	for _, s := range synth.TableII() {
		if s.Name() == "aes_360" || s.Name() == "fpu_4500" {
			specs = append(specs, s)
		}
	}
	return func(ctx context.Context) error {
		cfg := exp.Config{Scale: 0.015, Specs: specs}
		cfg.Flow = flow.DefaultConfig()
		cfg.Flow.Placer.OuterIters = 4
		cfg.Flow.Placer.SolveSweeps = 6
		// The experiment fans out on the timed pool carried by ctx.
		cfg.Flow.Pool = par.FromContext(ctx)
		_, err := exp.Table4(ctx, cfg)
		return err
	}
}

func spec(name string) synth.Spec {
	for _, s := range synth.TableII() {
		if s.Name() == name {
			return s
		}
	}
	fatal(fmt.Errorf("unknown spec %s", name))
	panic("unreachable")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpar:", err)
	os.Exit(1)
}
