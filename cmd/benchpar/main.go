// Command benchpar measures the parallel execution layer (DESIGN.md §7) and
// writes the results to a JSON file. Each workload runs at jobs=1 and at the
// requested worker bound; because the layer is deterministic the two runs
// produce identical outputs, so the report is purely about wall clock.
//
//	benchpar                     # write BENCH_parallel.json in the cwd
//	benchpar -jobs 8 -reps 5 -o /tmp/bench.json
//
// On a host with a single CPU the parallel numbers measure the pool's
// scheduling overhead, not a speedup; the report records the host core count
// so readers can interpret the ratios.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mthplace/internal/cluster"
	"mthplace/internal/core"
	"mthplace/internal/exp"
	"mthplace/internal/flow"
	"mthplace/internal/par"
	"mthplace/internal/synth"
)

// Report is the schema of BENCH_parallel.json.
type Report struct {
	// Host records where the numbers were taken. Speedup ratios are only
	// meaningful when NumCPU > 1.
	Host struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	Jobs      int        `json:"jobs"`
	Reps      int        `json:"reps"`
	Workloads []Workload `json:"workloads"`
}

// Workload is one benchmark: best-of-reps wall clock at jobs=1 and jobs=N.
type Workload struct {
	Name       string  `json:"name"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

func main() {
	var (
		jobs = flag.Int("jobs", 0, "parallel worker bound (0 = GOMAXPROCS)")
		reps = flag.Int("reps", 3, "repetitions per workload (best is kept)")
		out  = flag.String("o", "BENCH_parallel.json", "output file")
	)
	flag.Parse()
	if *jobs <= 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}

	var rep Report
	rep.Host.GoVersion = runtime.Version()
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Jobs = *jobs
	rep.Reps = *reps

	for _, w := range []struct {
		name string
		fn   func(ctx context.Context) error
	}{
		{"BuildModel/des3_210", benchBuildModel()},
		{"KMeans2D/2000pts_k400", benchKMeans()},
		{"Table4Matrix/2specs", benchTable4()},
	} {
		serial, err := timeAt(1, *reps, w.fn)
		if err != nil {
			fatal(fmt.Errorf("%s (serial): %w", w.name, err))
		}
		parallel, err := timeAt(*jobs, *reps, w.fn)
		if err != nil {
			fatal(fmt.Errorf("%s (parallel): %w", w.name, err))
		}
		wl := Workload{
			Name:       w.name,
			SerialMS:   float64(serial.Microseconds()) / 1000,
			ParallelMS: float64(parallel.Microseconds()) / 1000,
			Speedup:    float64(serial) / float64(parallel),
		}
		rep.Workloads = append(rep.Workloads, wl)
		fmt.Printf("%-24s serial %8.2f ms   jobs=%d %8.2f ms   speedup %.2fx\n",
			wl.Name, wl.SerialMS, *jobs, wl.ParallelMS, wl.Speedup)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (host: %d CPU)\n", *out, rep.Host.NumCPU)
}

// timeAt runs fn reps times on a pool bound to jobs workers (carried via the
// context, so nothing global changes) and returns the best wall clock.
func timeAt(jobs, reps int, fn func(ctx context.Context) error) (time.Duration, error) {
	ctx := par.WithPool(context.Background(), par.NewPool(jobs))
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(ctx); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// benchBuildModel prepares the clustered RAP inputs once and returns a
// closure that rebuilds the cost model.
func benchBuildModel() func(ctx context.Context) error {
	cfg := flow.DefaultConfig()
	cfg.Synth.Scale = 0.02
	cfg.Placer.OuterIters = 6
	cfg.Placer.SolveSweeps = 10
	r, err := flow.NewRunner(context.Background(), spec("des3_210"), cfg)
	if err != nil {
		fatal(err)
	}
	cl, err := core.BuildClusters(context.Background(), r.Base.Clone(), 0.2, 30)
	if err != nil {
		fatal(err)
	}
	return func(ctx context.Context) error {
		_, err := core.BuildModel(ctx, r.Base, r.Grid, cl, r.NminR, core.DefaultCostParams())
		return err
	}
}

func benchKMeans() func(ctx context.Context) error {
	pts := make([]cluster.Point2, 2000)
	for i := range pts {
		pts[i] = cluster.Point2{X: float64(i*131%9973) / 9973, Y: float64(i*197%9967) / 9967}
	}
	return func(ctx context.Context) error {
		cluster.KMeans2D(ctx, pts, 400, 30)
		return nil
	}
}

func benchTable4() func(ctx context.Context) error {
	var specs []synth.Spec
	for _, s := range synth.TableII() {
		if s.Name() == "aes_360" || s.Name() == "fpu_4500" {
			specs = append(specs, s)
		}
	}
	return func(ctx context.Context) error {
		cfg := exp.Config{Scale: 0.015, Specs: specs}
		cfg.Flow = flow.DefaultConfig()
		cfg.Flow.Placer.OuterIters = 4
		cfg.Flow.Placer.SolveSweeps = 6
		// The experiment fans out on the timed pool carried by ctx.
		cfg.Flow.Pool = par.FromContext(ctx)
		_, err := exp.Table4(ctx, cfg)
		return err
	}
}

func spec(name string) synth.Spec {
	for _, s := range synth.TableII() {
		if s.Name() == name {
			return s
		}
	}
	fatal(fmt.Errorf("unknown spec %s", name))
	panic("unreachable")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpar:", err)
	os.Exit(1)
}
