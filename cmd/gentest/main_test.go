package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readAll maps file name → contents for every file under dir.
func readAll(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestGenerateDeterministic: the same -seed yields byte-identical LEF/DEF
// across two runs and across -jobs settings (sequential vs parallel).
func TestGenerateDeterministic(t *testing.T) {
	const (
		scale = 0.02
		seed  = int64(7)
		only  = "aes" // 5 variants: enough fan-out to exercise the pool
	)
	dirs := []struct {
		name string
		jobs int
	}{
		{"run1-seq", 1},
		{"run2-seq", 1},
		{"run3-par", 4},
	}
	snaps := make([]map[string][]byte, len(dirs))
	for i, d := range dirs {
		dir := filepath.Join(t.TempDir(), d.name)
		files, err := generateAll(dir, scale, 0, seed, only, d.jobs)
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		if len(files) < 2 {
			t.Fatalf("%s: only %d files written", d.name, len(files))
		}
		snaps[i] = readAll(t, dir)
	}
	for i := 1; i < len(snaps); i++ {
		if len(snaps[i]) != len(snaps[0]) {
			t.Fatalf("%s wrote %d files, %s wrote %d",
				dirs[i].name, len(snaps[i]), dirs[0].name, len(snaps[0]))
		}
		for name, want := range snaps[0] {
			got, ok := snaps[i][name]
			if !ok {
				t.Errorf("%s missing %s", dirs[i].name, name)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: %s differs from %s (jobs=%d vs jobs=%d)",
					dirs[i].name, name, dirs[0].name, dirs[i].jobs, dirs[0].jobs)
			}
		}
	}
}

// TestGenerateSeedSensitivity: a different seed must actually change the
// generated designs, otherwise the determinism test above proves nothing.
func TestGenerateSeedSensitivity(t *testing.T) {
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	if _, err := generateAll(dirA, 0.02, 0, 1, "aes_300", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := generateAll(dirB, 0.02, 0, 2, "aes_300", 0); err != nil {
		t.Fatal(err)
	}
	a := readAll(t, dirA)["aes_300.def"]
	b := readAll(t, dirB)["aes_300.def"]
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("missing aes_300.def")
	}
	if bytes.Equal(a, b) {
		t.Error("seeds 1 and 2 produced identical DEF")
	}
}

// TestGenerateCellsTarget: -cells overrides -scale so every testcase lands
// on the requested instance count (million-cell mode in miniature).
func TestGenerateCellsTarget(t *testing.T) {
	dir := t.TempDir()
	files, err := generateAll(dir, 0.10, 3000, 1, "aes_300", 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range files {
		if filepath.Base(f.path) == "aes_300.def" {
			found = true
			if !strings.HasPrefix(f.note, "3000 cells") {
				t.Errorf("note = %q, want 3000 cells", f.note)
			}
		}
	}
	if !found {
		t.Fatal("aes_300.def not generated")
	}
}
