// Command gentest generates the Table II testcases and writes them out as
// LEF/DEF so they can be inspected or consumed by other tools.
//
//	gentest -out testcases -scale 0.1           # all 26 testcases
//	gentest -only des3 -scale 1.0 -out tc       # just the des3 variants
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mthplace/internal/celllib"
	"mthplace/internal/lefdef"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func main() {
	var (
		out   = flag.String("out", "testcases", "output directory")
		scale = flag.Float64("scale", 0.10, "design scale factor (1.0 = paper size)")
		seed  = flag.Int64("seed", 1, "generator seed")
		only  = flag.String("only", "", "restrict to testcases whose name contains this substring")
	)
	flag.Parse()

	tc := tech.Default()
	lib := celllib.New(tc)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	// One shared LEF for the library.
	lefPath := filepath.Join(*out, "cells.lef")
	lf, err := os.Create(lefPath)
	if err != nil {
		fatal(err)
	}
	if err := lefdef.WriteLEF(lf, tc, lib.Masters()); err != nil {
		fatal(err)
	}
	if err := lf.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d masters)\n", lefPath, len(lib.Masters()))

	opt := synth.DefaultOptions()
	opt.Scale = *scale
	opt.Seed = *seed
	for _, spec := range synth.TableII() {
		if *only != "" && !strings.Contains(spec.Name(), *only) {
			continue
		}
		d, err := synth.Generate(tc, lib, spec, opt)
		if err != nil {
			fatal(err)
		}
		defPath := filepath.Join(*out, spec.Name()+".def")
		f, err := os.Create(defPath)
		if err != nil {
			fatal(err)
		}
		if err := lefdef.WriteDEF(f, d); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st := d.ComputeStats()
		fmt.Printf("wrote %s: %d cells, %.2f%% 7.5T, %d nets\n",
			defPath, st.Cells, st.MinorityPct, st.Nets)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gentest:", err)
	os.Exit(1)
}
