// Command gentest generates the Table II testcases and writes them out as
// LEF/DEF so they can be inspected or consumed by other tools. It also
// regenerates the golden regression corpus.
//
//	gentest -out testcases -scale 0.1           # all 26 testcases
//	gentest -only des3 -scale 1.0 -out tc       # just the des3 variants
//	gentest -golden                             # refresh internal/golden/testdata/golden.json
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mthplace/internal/celllib"
	"mthplace/internal/golden"
	"mthplace/internal/lefdef"
	"mthplace/internal/obs"
	"mthplace/internal/par"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func main() {
	var (
		out       = flag.String("out", "testcases", "output directory")
		scale     = flag.Float64("scale", 0.10, "design scale factor (1.0 = paper size)")
		cells     = flag.Int("cells", 0, "target instance count per testcase (overrides -scale; e.g. 1000000 for million-cell mode)")
		seed      = flag.Int64("seed", 1, "generator seed")
		only      = flag.String("only", "", "restrict to testcases whose name contains this substring")
		jobs      = flag.Int("jobs", 0, "worker pool bound (0 = GOMAXPROCS, 1 = sequential); output is byte-identical at any setting")
		doGolden  = flag.Bool("golden", false, "regenerate the golden regression corpus instead of writing LEF/DEF")
		goldenOut = flag.String("golden-out", filepath.Join("internal", "golden", "testdata", "golden.json"), "corpus path written by -golden")
		verbose   = flag.Bool("v", false, "verbose diagnostics (debug level) on stderr")
		quiet     = flag.Bool("q", false, "quiet: warnings and errors only on stderr")
	)
	flag.Parse()

	// File paths and per-file notes are diagnostics, not machine output:
	// they go to stderr through the logger so pipelines consuming stdout
	// stay clean.
	lg := obs.NewCLILogger(os.Stderr, *verbose, *quiet)

	if *doGolden {
		snap, err := golden.Compute(context.Background())
		if err != nil {
			fatal(err)
		}
		if err := snap.Save(*goldenOut); err != nil {
			fatal(err)
		}
		lg.Info("wrote golden corpus", "file", *goldenOut,
			"designs", len(snap.Designs), "scale", snap.Scale, "seed", snap.Seed)
		return
	}

	files, err := generateAll(*out, *scale, *cells, *seed, *only, *jobs)
	if err != nil {
		fatal(err)
	}
	for _, f := range files {
		lg.Info("wrote", "file", f.path, "note", f.note)
	}
}

// outFile is one file written by generateAll, with a human-readable note.
type outFile struct {
	path string
	note string
}

// generateAll writes the shared cells.lef plus one DEF per matching Table II
// spec into dir. Generation fans out over the specs on a pool bounded by
// jobs; every spec's output depends only on (spec, scale, seed), so the
// written bytes are identical at any jobs setting and across runs. cells > 0
// overrides scale per spec so every testcase lands near that instance count.
// DEF is streamed straight to the file, so memory stays bounded by the
// design, not the text — million-cell output never materialises in RAM.
func generateAll(dir string, scale float64, cells int, seed int64, only string, jobs int) ([]outFile, error) {
	tc := tech.Default()
	lib := celllib.New(tc)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	var lef bytes.Buffer
	if err := lefdef.WriteLEF(&lef, tc, lib.Masters()); err != nil {
		return nil, err
	}
	lefPath := filepath.Join(dir, "cells.lef")
	if err := os.WriteFile(lefPath, lef.Bytes(), 0o644); err != nil {
		return nil, err
	}
	files := []outFile{{lefPath, fmt.Sprintf("%d masters", len(lib.Masters()))}}

	var specs []synth.Spec
	for _, spec := range synth.TableII() {
		if only == "" || strings.Contains(spec.Name(), only) {
			specs = append(specs, spec)
		}
	}
	opt := synth.DefaultOptions()
	opt.Scale = scale
	opt.Seed = seed

	results := make([]outFile, len(specs))
	pool := par.NewPool(jobs)
	err := pool.ForErr(len(specs), func(i int) error {
		spec := specs[i]
		sopt := opt
		if cells > 0 {
			sopt.Scale = spec.ScaleForCells(cells)
		}
		d, err := synth.Generate(tc, lib, spec, sopt)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name(), err)
		}
		defPath := filepath.Join(dir, spec.Name()+".def")
		f, err := os.Create(defPath)
		if err != nil {
			return err
		}
		if err := lefdef.WriteDEF(f, d); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", spec.Name(), err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		st := d.ComputeStats()
		results[i] = outFile{defPath, fmt.Sprintf("%d cells, %.2f%% 7.5T, %d nets",
			st.Cells, st.MinorityPct, st.Nets)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return append(files, results...), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gentest:", err)
	os.Exit(1)
}
