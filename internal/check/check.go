// Package check is the placement invariant checker: a set of independent
// auditors that validate any flow output from first principles — cells on
// the site grid, every cell in a single row of a pair matching its
// track-height, no overlaps, minority cells contained in the fence regions,
// and the reported displacement/HPWL totals cross-checked against a naive
// recompute. It deliberately re-derives everything (no reuse of the
// legalizer's own verification or the netlist's cached accessors beyond pin
// positions) so a bug in a production path cannot hide in its checker.
//
// The auditors return a Report listing every violation instead of stopping
// at the first, which makes negative tests and -verify diagnostics precise.
// They are wired in three places: unit tests, flow.Runner behind
// Config.Verify, and the rcplace -verify mode.
package check

import (
	"fmt"
	"sort"
	"strings"

	"mthplace/internal/fence"
	"mthplace/internal/geom"
	"mthplace/internal/netlist"
	"mthplace/internal/rowgrid"
	"mthplace/internal/tech"
)

// Violation is one broken invariant.
type Violation struct {
	// Invariant names the broken rule (e.g. "site-grid", "row-height",
	// "overlap", "fence", "metrics-hpwl").
	Invariant string
	// Inst is the offending instance index, or -1 when not instance-bound.
	Inst int
	// Msg describes the violation.
	Msg string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Inst >= 0 {
		return fmt.Sprintf("[%s] inst %d: %s", v.Invariant, v.Inst, v.Msg)
	}
	return fmt.Sprintf("[%s] %s", v.Invariant, v.Msg)
}

// Report collects the violations found by one or more auditors.
type Report struct {
	Violations []Violation
}

// Ok reports whether no invariant was violated.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Err returns nil for a clean report, or an error summarising the first
// violations (all of them remain available in Violations).
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	const show = 5
	msgs := make([]string, 0, show+1)
	for i, v := range r.Violations {
		if i == show {
			msgs = append(msgs, fmt.Sprintf("… and %d more", len(r.Violations)-show))
			break
		}
		msgs = append(msgs, v.String())
	}
	return fmt.Errorf("check: %d violation(s): %s", len(r.Violations), strings.Join(msgs, "; "))
}

// Merge appends another report's violations.
func (r *Report) Merge(other *Report) *Report {
	r.Violations = append(r.Violations, other.Violations...)
	return r
}

func (r *Report) add(invariant string, inst int, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{invariant, inst, fmt.Sprintf(format, args...)})
}

// Stack audits the internal consistency of a restacked die: pair bottoms
// strictly increasing, each pair's span equal to its recorded height, and a
// positive row span.
func Stack(ms *rowgrid.MixedStack) *Report {
	rep := &Report{}
	if ms.X0 >= ms.X1 {
		rep.add("stack", -1, "row span [%d,%d) is empty", ms.X0, ms.X1)
	}
	if len(ms.Y) != ms.NumPairs()+1 || len(ms.PairH) != ms.NumPairs() {
		rep.add("stack", -1, "inconsistent lengths: %d heights, %d bottoms, %d pair heights",
			ms.NumPairs(), len(ms.Y), len(ms.PairH))
		return rep
	}
	for i := 0; i < ms.NumPairs(); i++ {
		if ms.PairH[i] <= 0 {
			rep.add("stack", -1, "pair %d has non-positive height %d", i, ms.PairH[i])
		}
		if ms.Y[i+1] != ms.Y[i]+ms.PairH[i] {
			rep.add("stack", -1, "pair %d: top %d ≠ bottom %d + height %d", i, ms.Y[i+1], ms.Y[i], ms.PairH[i])
		}
	}
	return rep
}

// Placement audits mixed-stack legality from first principles: every
// instance x-aligned to the site grid, inside the row span, sitting exactly
// on a single row of a pair whose track-height matches the instance's true
// (pre-mLEF) height, with no two cells overlapping in a row.
func Placement(d *netlist.Design, ms *rowgrid.MixedStack) *Report {
	rep := Stack(ms)
	// Legal single-row bottoms per track-height class.
	rowsOf := map[tech.TrackHeight]map[int64]bool{}
	for i := 0; i < ms.NumPairs(); i++ {
		h := ms.Heights[i]
		if rowsOf[h] == nil {
			rowsOf[h] = map[int64]bool{}
		}
		lo, hi := ms.RowsOfPair(i)
		rowsOf[h][lo] = true
		rowsOf[h][hi] = true
	}
	occupied := map[int64][]span{}
	for i, in := range d.Insts {
		auditCell(rep, d, i, in, ms.X0, ms.X1, occupied, func() error {
			if !rowsOf[in.TrueHeight()][in.Pos.Y] {
				return fmt.Errorf("y=%d is not a %s row bottom", in.Pos.Y, in.TrueHeight())
			}
			return nil
		})
	}
	auditOverlaps(rep, occupied)
	return rep
}

// PlacementUniform audits legality on the uniform (mLEF) pair grid — the
// Flow (1) output, where every cell has the same stand-in height.
func PlacementUniform(d *netlist.Design, g rowgrid.PairGrid) *Report {
	rep := &Report{}
	occupied := map[int64][]span{}
	for i, in := range d.Insts {
		auditCell(rep, d, i, in, g.X0, g.X1, occupied, func() error {
			off := in.Pos.Y - g.Y0
			if off < 0 || g.RowH() == 0 || off%g.RowH() != 0 || int(off/g.RowH()) >= g.NumRows() {
				return fmt.Errorf("y=%d is not a uniform row bottom", in.Pos.Y)
			}
			return nil
		})
	}
	auditOverlaps(rep, occupied)
	return rep
}

type span struct {
	lo, hi int64
	inst   int
}

// auditCell applies the per-cell invariants shared by the mixed and uniform
// auditors and records the cell's row occupancy for the overlap scan.
func auditCell(rep *Report, d *netlist.Design, i int, in *netlist.Instance, x0, x1 int64, occupied map[int64][]span, rowCheck func() error) {
	if in.Pos.X%d.Tech.SiteWidth != 0 {
		rep.add("site-grid", i, "x=%d not a multiple of site width %d", in.Pos.X, d.Tech.SiteWidth)
	}
	if in.Pos.X < x0 || in.Pos.X+in.Width() > x1 {
		rep.add("row-span", i, "footprint [%d,%d) outside row span [%d,%d)", in.Pos.X, in.Pos.X+in.Width(), x0, x1)
	}
	if err := rowCheck(); err != nil {
		rep.add("row-height", i, "%v", err)
		return // an off-row cell would poison the overlap scan
	}
	occupied[in.Pos.Y] = append(occupied[in.Pos.Y], span{in.Pos.X, in.Pos.X + in.Width(), i})
}

// auditOverlaps flags every pair of cells sharing x-extent in a row.
func auditOverlaps(rep *Report, occupied map[int64][]span) {
	ys := make([]int64, 0, len(occupied))
	for y := range occupied {
		ys = append(ys, y)
	}
	sort.Slice(ys, func(a, b int) bool { return ys[a] < ys[b] })
	for _, y := range ys {
		spans := occupied[y]
		sort.Slice(spans, func(a, b int) bool {
			if spans[a].lo != spans[b].lo {
				return spans[a].lo < spans[b].lo
			}
			return spans[a].inst < spans[b].inst
		})
		for k := 1; k < len(spans); k++ {
			if spans[k].lo < spans[k-1].hi {
				rep.add("overlap", spans[k].inst, "overlaps inst %d in row y=%d ([%d,%d) vs [%d,%d))",
					spans[k-1].inst, y, spans[k-1].lo, spans[k-1].hi, spans[k].lo, spans[k].hi)
			}
		}
	}
}

// Fences audits the §III-D fence discipline: the minority islands derived
// from the stack are contiguous pair runs that exactly cover the minority
// pairs, and every minority cell's footprint lies inside one island
// rectangle. (Majority cells cannot enter a fence without also failing the
// row-height invariant, so that side is covered by Placement.)
func Fences(d *netlist.Design, ms *rowgrid.MixedStack) *Report {
	rep := &Report{}
	regions := fence.FromStack(ms)
	covered := map[int]bool{}
	for k, pairs := range regions.Pairs {
		for j, p := range pairs {
			if j > 0 && p != pairs[j-1]+1 {
				rep.add("fence", -1, "island %d pairs %v are not contiguous", k, pairs)
				break
			}
			if ms.Heights[p] != tech.Tall7p5T {
				rep.add("fence", -1, "island %d covers pair %d of height %s", k, p, ms.Heights[p])
			}
			covered[p] = true
		}
	}
	for _, p := range ms.PairsOf(tech.Tall7p5T) {
		if !covered[p] {
			rep.add("fence", -1, "minority pair %d not covered by any island", p)
		}
	}
	for i, in := range d.Insts {
		if in.TrueHeight() != tech.Tall7p5T {
			continue
		}
		if !regions.ContainsRect(in.Rect()) {
			rep.add("fence", i, "minority footprint %v outside every fence island", in.Rect())
		}
	}
	return rep
}

// Metrics cross-checks reported placement metrics against a naive
// recompute: total HPWL as the per-net pin bounding-box half-perimeter sum
// (clock net excluded, as the flows report it) and total displacement as
// the summed Manhattan distance from the reference snapshot.
func Metrics(d *netlist.Design, ref []geom.Point, claimedDisp, claimedHPWL int64) *Report {
	rep := &Report{}
	var hpwl int64
	for ni := range d.Nets {
		if int32(ni) == d.ClockNet {
			continue
		}
		var lox, hix, loy, hiy int64
		first := true
		for _, pr := range d.Nets[ni].Pins {
			p := d.PinPos(pr)
			if first {
				lox, hix, loy, hiy = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			if p.X < lox {
				lox = p.X
			}
			if p.X > hix {
				hix = p.X
			}
			if p.Y < loy {
				loy = p.Y
			}
			if p.Y > hiy {
				hiy = p.Y
			}
		}
		if !first {
			hpwl += (hix - lox) + (hiy - loy)
		}
	}
	if hpwl != claimedHPWL {
		rep.add("metrics-hpwl", -1, "reported HPWL %d, recomputed %d", claimedHPWL, hpwl)
	}
	if ref != nil {
		if len(ref) != len(d.Insts) {
			rep.add("metrics-disp", -1, "reference snapshot has %d positions for %d instances", len(ref), len(d.Insts))
		} else {
			var disp int64
			for i, in := range d.Insts {
				disp += geom.AbsInt64(in.Pos.X-ref[i].X) + geom.AbsInt64(in.Pos.Y-ref[i].Y)
			}
			if disp != claimedDisp {
				rep.add("metrics-disp", -1, "reported displacement %d, recomputed %d", claimedDisp, disp)
			}
		}
	}
	return rep
}

// Netlist audits the design database's referential integrity (pin↔net back
// references, index ranges) via the netlist's own validator, folded into a
// Report so it composes with the geometric auditors.
func Netlist(d *netlist.Design) *Report {
	rep := &Report{}
	if err := d.Validate(); err != nil {
		rep.add("netlist", -1, "%v", err)
	}
	return rep
}
