package check_test

import (
	"context"
	"strings"
	"testing"

	"mthplace/internal/check"
	"mthplace/internal/flow"
	"mthplace/internal/netlist"
	"mthplace/internal/rowgrid"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

// prepared caches one tiny runner + Flow (5) result for all tests.
type prepared struct {
	runner *flow.Runner
	res    *flow.Result
}

var prep *prepared

func setup(t *testing.T) *prepared {
	t.Helper()
	if prep != nil {
		return prep
	}
	cfg := flow.DefaultConfig()
	cfg.Synth.Scale = 0.02
	r, err := flow.NewRunner(context.Background(), synth.TableII()[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background(), flow.Flow5, false)
	if err != nil {
		t.Fatal(err)
	}
	prep = &prepared{runner: r, res: res}
	return prep
}

// TestAllFlowsPass: every flow's output on a real testcase is audit-clean,
// and the Verify config flag accepts them end to end.
func TestAllFlowsPass(t *testing.T) {
	cfg := flow.DefaultConfig()
	cfg.Synth.Scale = 0.02
	cfg.Verify = true // failures surface as Run errors
	r, err := flow.NewRunner(context.Background(), synth.TableII()[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []flow.ID{flow.Flow1, flow.Flow2, flow.Flow3, flow.Flow4, flow.Flow5} {
		res, err := r.Run(context.Background(), id, false)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if rep := r.VerifyResult(res); !rep.Ok() {
			t.Errorf("%v: %d violations: %v", id, len(rep.Violations), rep.Err())
		}
	}
}

func hasInvariant(rep *check.Report, kind string) bool {
	for _, v := range rep.Violations {
		if v.Invariant == kind {
			return true
		}
	}
	return false
}

// pickCells returns a movable minority instance and a second movable
// instance of the same track-height class placed in a different position.
func pickCells(t *testing.T, d *netlist.Design) (minority, peer int) {
	t.Helper()
	minority, peer = -1, -1
	for i, in := range d.Insts {
		if in.Fixed || in.TrueHeight() != tech.Tall7p5T {
			continue
		}
		if minority < 0 {
			minority = i
			continue
		}
		if d.Insts[minority].Pos != in.Pos {
			peer = i
			break
		}
	}
	if minority < 0 || peer < 0 {
		t.Fatal("testcase has fewer than two movable minority cells")
	}
	return minority, peer
}

// TestPlacementRejectsCorruption corrupts one invariant at a time and
// checks the auditor reports exactly that class.
func TestPlacementRejectsCorruption(t *testing.T) {
	p := setup(t)
	ms := p.res.Stack

	cases := []struct {
		name      string
		invariant string
		corrupt   func(d *netlist.Design)
	}{
		{"off-site-grid", "site-grid", func(d *netlist.Design) {
			m, _ := pickCells(t, d)
			d.Insts[m].Pos.X++
		}},
		{"outside-row-span", "row-span", func(d *netlist.Design) {
			m, _ := pickCells(t, d)
			d.Insts[m].Pos.X = ms.X1 // footprint sticks out past the span
		}},
		{"off-row", "row-height", func(d *netlist.Design) {
			m, _ := pickCells(t, d)
			d.Insts[m].Pos.Y++
		}},
		{"wrong-height-row", "row-height", func(d *netlist.Design) {
			// A minority cell dropped onto a majority pair's bottom row.
			m, _ := pickCells(t, d)
			maj := ms.PairsOf(tech.Short6T)
			if len(maj) == 0 {
				t.Skip("no majority pairs in stack")
			}
			lo, _ := ms.RowsOfPair(maj[0])
			d.Insts[m].Pos.Y = lo
		}},
		{"overlap", "overlap", func(d *netlist.Design) {
			m, peer := pickCells(t, d)
			d.Insts[peer].Pos = d.Insts[m].Pos
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := p.res.Design.Clone()
			tc.corrupt(d)
			rep := check.Placement(d, ms)
			if rep.Ok() {
				t.Fatal("corrupted placement passed the audit")
			}
			if !hasInvariant(rep, tc.invariant) {
				t.Errorf("expected a %q violation, got %v", tc.invariant, rep.Err())
			}
		})
	}
}

// TestFencesRejectEscapee: a minority cell outside every island is flagged
// by the fence auditor (independently of the row-height class check).
func TestFencesRejectEscapee(t *testing.T) {
	p := setup(t)
	d := p.res.Design.Clone()
	ms := p.res.Stack
	m, _ := pickCells(t, d)
	maj := ms.PairsOf(tech.Short6T)
	if len(maj) == 0 {
		t.Skip("no majority pairs in stack")
	}
	lo, _ := ms.RowsOfPair(maj[0])
	d.Insts[m].Pos.Y = lo
	if rep := check.Fences(d, ms); !hasInvariant(rep, "fence") {
		t.Errorf("escaped minority cell not flagged: %v", rep.Err())
	}
	if rep := check.Fences(p.res.Design, ms); !rep.Ok() {
		t.Errorf("clean placement flagged: %v", rep.Err())
	}
}

// TestMetricsRejectDrift: claimed totals that disagree with the recompute
// are flagged, and the true totals pass.
func TestMetricsRejectDrift(t *testing.T) {
	p := setup(t)
	d := p.res.Design
	met := p.res.Metrics
	ref := p.runner.RefPos
	if rep := check.Metrics(d, ref, met.Displacement, met.HPWL); !rep.Ok() {
		t.Fatalf("true metrics flagged: %v", rep.Err())
	}
	if rep := check.Metrics(d, ref, met.Displacement, met.HPWL+1); !hasInvariant(rep, "metrics-hpwl") {
		t.Error("HPWL drift of 1 DBU not flagged")
	}
	if rep := check.Metrics(d, ref, met.Displacement-1, met.HPWL); !hasInvariant(rep, "metrics-disp") {
		t.Error("displacement drift of 1 DBU not flagged")
	}
	if rep := check.Metrics(d, ref[:len(ref)-1], met.Displacement, met.HPWL); !hasInvariant(rep, "metrics-disp") {
		t.Error("short reference snapshot not flagged")
	}
}

// TestNetlistRejectsBrokenBackref: referential-integrity damage surfaces
// through the netlist auditor.
func TestNetlistRejectsBrokenBackref(t *testing.T) {
	p := setup(t)
	d := p.res.Design.Clone()
	if rep := check.Netlist(d); !rep.Ok() {
		t.Fatalf("clean netlist flagged: %v", rep.Err())
	}
	// Point a pin at a net that has no matching back reference.
	found := false
	for _, in := range d.Insts {
		for pi, nn := range in.PinNets {
			if nn == netlist.NoNet {
				continue
			}
			in.PinNets[pi] = (nn + 1) % int32(len(d.Nets))
			found = true
			break
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no connected pin to corrupt")
	}
	if rep := check.Netlist(d); !hasInvariant(rep, "netlist") {
		t.Error("broken back reference not flagged")
	}
}

// TestStackRejectsCorruption: an inconsistent restack is caught before any
// per-cell audit.
func TestStackRejectsCorruption(t *testing.T) {
	p := setup(t)
	ms := *p.res.Stack
	ms.Y = append([]int64(nil), p.res.Stack.Y...)
	ms.Y[1]++ // pair 0's span no longer matches its height
	if rep := check.Stack(&ms); !hasInvariant(rep, "stack") {
		t.Errorf("corrupted stack not flagged: %v", rep.Err())
	}
	if rep := check.Stack(p.res.Stack); !rep.Ok() {
		t.Errorf("clean stack flagged: %v", rep.Err())
	}
}

// TestUniformAudit: Flow (1) results audit cleanly on the uniform grid and
// corruption is caught there too.
func TestUniformAudit(t *testing.T) {
	p := setup(t)
	res1, err := p.runner.Run(context.Background(), flow.Flow1, false)
	if err != nil {
		t.Fatal(err)
	}
	var g rowgrid.PairGrid = p.runner.Grid
	if rep := check.PlacementUniform(res1.Design, g); !rep.Ok() {
		t.Fatalf("Flow 1 output flagged: %v", rep.Err())
	}
	d := res1.Design.Clone()
	d.Insts[0].Pos.Y++
	if rep := check.PlacementUniform(d, g); !hasInvariant(rep, "row-height") {
		t.Error("off-row cell not flagged on the uniform grid")
	}
}

// TestReportErr: the error summary is bounded and descriptive.
func TestReportErr(t *testing.T) {
	rep := &check.Report{}
	if rep.Err() != nil {
		t.Error("empty report returned an error")
	}
	for i := 0; i < 8; i++ {
		rep.Merge(&check.Report{Violations: []check.Violation{{Invariant: "overlap", Inst: i, Msg: "x"}}})
	}
	err := rep.Err()
	if err == nil {
		t.Fatal("nil error for 8 violations")
	}
	if !strings.Contains(err.Error(), "8 violation(s)") || !strings.Contains(err.Error(), "3 more") {
		t.Errorf("unexpected summary: %v", err)
	}
}
