// Package sta is the static timing analyser used for the post-route WNS and
// TNS columns of Table V. It propagates arrival times through the
// combinational timing graph with a linear delay model:
//
//	cell delay  = intrinsic + driveRes × (wireCap + Σ sink pin caps)
//	wire delay  = wireRes × (wireCap/2 + sinkCap)        (lumped Elmore)
//
// Wire parasitics come from per-net routed lengths when a routing result is
// supplied, falling back to HPWL otherwise. Launch points are input ports
// and flip-flop clock-to-Q arcs; capture points are flip-flop D pins and
// output ports, both against an ideal clock of the design's period.
package sta

import (
	"fmt"
	"math"

	"mthplace/internal/celllib"
	"mthplace/internal/netlist"
)

// Options tune the analysis.
type Options struct {
	// NetLength optionally maps net index to routed length in DBU
	// (route.Result.NetLength); nil falls back to net HPWL.
	NetLength []int64
	// SetupPs is the flip-flop setup time (default 8 ps).
	SetupPs float64
	// ClkQExtraPs adds clock-network launch latency (default 0, ideal
	// clock).
	ClkQExtraPs float64
	// InputDelayPs is the arrival time at input ports (default 0.1·T
	// imitating upstream logic, as signoff constraints normally do).
	InputDelayFrac float64
	// WantNetDetails additionally fills Result.NetArrival / NetSlack.
	WantNetDetails bool
}

func (o Options) withDefaults() Options {
	if o.SetupPs <= 0 {
		o.SetupPs = 8
	}
	if o.InputDelayFrac <= 0 {
		o.InputDelayFrac = 0.1
	}
	return o
}

// Result of a timing run.
type Result struct {
	// WNSps is the worst negative slack in picoseconds (0 when all paths
	// meet timing; negative when violating, matching the paper's sign
	// convention where more negative is worse).
	WNSps float64
	// TNSps is the total negative slack (sum over violating endpoints).
	TNSps float64
	// ViolatingEndpoints counts endpoints with negative slack.
	ViolatingEndpoints int
	// Endpoints is the total endpoint count.
	Endpoints int
	// CriticalPathPs is the maximum endpoint arrival time.
	CriticalPathPs float64
	// NetArrival, when requested via Options.WantNetDetails, holds the
	// arrival time at each net's driver output (−Inf for never-driven
	// nets). Consumers (e.g. the height-swap optimiser) derive per-cell
	// criticality from it.
	NetArrival []float64
	// NetSlack, when requested, is the worst endpoint slack downstream-est
	// approximation: T − setup − arrival for the net itself (positive =
	// noncritical). Only meaningful for nets on register/output cones.
	NetSlack []float64
}

// Analyze runs STA on the design's current placement/routing.
func Analyze(d *netlist.Design, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if d.ClockPeriodPs <= 0 {
		return nil, fmt.Errorf("sta: design %s has no clock period", d.Name)
	}
	t := d.Tech

	// Per-net wire parasitics.
	wireLen := func(ni int32) int64 {
		if opt.NetLength != nil && int(ni) < len(opt.NetLength) {
			return opt.NetLength[ni]
		}
		return d.NetHPWL(ni)
	}

	// netLoad = wire cap + sum of sink pin caps; also record sink caps.
	nNets := len(d.Nets)
	netWireCap := make([]float64, nNets)
	netWireRes := make([]float64, nNets)
	netLoad := make([]float64, nNets)
	for ni := 0; ni < nNets; ni++ {
		l := float64(wireLen(int32(ni)))
		netWireCap[ni] = l * t.WireCapPerDBU
		netWireRes[ni] = l * t.WireResPerDBU
		load := netWireCap[ni]
		for _, ref := range d.Nets[ni].Pins {
			if ref.IsPort() {
				continue
			}
			in := d.Insts[ref.Inst]
			if in.Master.Pins[ref.Pin].Dir == celllib.Input {
				load += in.Master.InputCap(int(ref.Pin))
			}
		}
		netLoad[ni] = load
	}

	// Arrival times per net (at the driver output, after the driving cell).
	arr := make([]float64, nNets)
	for i := range arr {
		arr[i] = math.Inf(-1)
	}

	// Topological order over combinational instances: Kahn's algorithm on
	// the instance graph (combinational inputs only).
	nIns := len(d.Insts)
	indeg := make([]int, nIns)
	fanout := make([][]int32, nIns) // driver inst -> sink combinational insts
	for i, in := range d.Insts {
		if in.Master.Sequential {
			continue
		}
		for p, pin := range in.Master.Pins {
			if pin.Dir != celllib.Input {
				continue
			}
			net := in.PinNets[p]
			if net == netlist.NoNet || net == d.ClockNet {
				continue
			}
			drv, ok := d.Driver(net)
			if !ok || drv.IsPort() {
				continue
			}
			if d.Insts[drv.Inst].Master.Sequential {
				continue
			}
			indeg[i]++
			fanout[drv.Inst] = append(fanout[drv.Inst], int32(i))
		}
	}

	inputDelay := opt.InputDelayFrac * d.ClockPeriodPs

	// Seed arrivals: input ports and sequential outputs.
	for pi, p := range d.Ports {
		if p.Dir != netlist.In || p.Net == netlist.NoNet || p.Net == d.ClockNet {
			continue
		}
		if a := inputDelay; a > arr[p.Net] {
			arr[p.Net] = a
		}
		_ = pi
	}
	queue := make([]int32, 0, nIns)
	for i, in := range d.Insts {
		if in.Master.Sequential {
			out := in.Master.OutputPin()
			net := in.PinNets[out]
			if net != netlist.NoNet {
				a := opt.ClkQExtraPs + in.Master.IntrinsicDelay + in.Master.DriveRes*netLoad[net]
				if a > arr[net] {
					arr[net] = a
				}
			}
			continue
		}
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}

	// Propagate.
	processed := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		processed++
		in := d.Insts[i]
		// Max input arrival including wire delay into each pin.
		worst := math.Inf(-1)
		for p, pin := range in.Master.Pins {
			if pin.Dir != celllib.Input {
				continue
			}
			net := in.PinNets[p]
			if net == netlist.NoNet || net == d.ClockNet {
				continue
			}
			if math.IsInf(arr[net], -1) {
				continue // undriven net contributes nothing
			}
			wd := netWireRes[net] * (netWireCap[net]/2 + in.Master.InputCap(p))
			if a := arr[net] + wd; a > worst {
				worst = a
			}
		}
		if math.IsInf(worst, -1) {
			worst = 0
		}
		out := in.Master.OutputPin()
		net := in.PinNets[out]
		if net != netlist.NoNet {
			a := worst + in.Master.IntrinsicDelay + in.Master.DriveRes*netLoad[net]
			if a > arr[net] {
				arr[net] = a
			}
		}
		for _, s := range fanout[i] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	combCount := 0
	for _, in := range d.Insts {
		if !in.Master.Sequential {
			combCount++
		}
	}
	if processed != combCount {
		return nil, fmt.Errorf("sta: combinational loop detected (%d of %d cells levelised)",
			processed, combCount)
	}

	// Endpoint slacks.
	res := &Result{}
	checkEndpoint := func(arrival, required float64) {
		res.Endpoints++
		if arrival > res.CriticalPathPs {
			res.CriticalPathPs = arrival
		}
		slack := required - arrival
		if slack < 0 {
			res.ViolatingEndpoints++
			res.TNSps += slack
			if slack < res.WNSps {
				res.WNSps = slack
			}
		}
	}
	T := d.ClockPeriodPs
	for i, in := range d.Insts {
		if !in.Master.Sequential {
			continue
		}
		_ = i
		for p, pin := range in.Master.Pins {
			if pin.Dir != celllib.Input || pin.Name == "CK" {
				continue
			}
			net := in.PinNets[p]
			if net == netlist.NoNet || math.IsInf(arr[net], -1) {
				continue
			}
			wd := netWireRes[net] * (netWireCap[net]/2 + in.Master.InputCap(p))
			checkEndpoint(arr[net]+wd, T-opt.SetupPs)
		}
	}
	for _, p := range d.Ports {
		if p.Dir != netlist.Out || p.Net == netlist.NoNet {
			continue
		}
		if math.IsInf(arr[p.Net], -1) {
			continue
		}
		checkEndpoint(arr[p.Net], T)
	}
	if opt.WantNetDetails {
		res.NetArrival = arr
		res.NetSlack = make([]float64, nNets)
		for ni := range res.NetSlack {
			if math.IsInf(arr[ni], -1) {
				res.NetSlack[ni] = math.Inf(1)
				continue
			}
			res.NetSlack[ni] = T - opt.SetupPs - arr[ni]
		}
	}
	return res, nil
}
