package sta

import (
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/netlist"
	"mthplace/internal/route"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

// chainDesign builds port -> inv x N -> dff -> port with known delays.
func chainDesign(t *testing.T, nInv int, clockPs float64) *netlist.Design {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	d := &netlist.Design{
		Name: "chain", Tech: tc, Lib: lib,
		Die:           geom.NewRect(0, 0, 100000, 100000),
		ClockPeriodPs: clockPs,
		ClockNet:      netlist.NoNet,
	}
	inv := lib.Find(celllib.INV, 1, tech.Short6T, celllib.RVT)
	dff := lib.Find(celllib.DFF, 1, tech.Short6T, celllib.RVT)
	pin := d.AddPort("in", netlist.In, geom.Point{X: 0, Y: 0})
	pclk := d.AddPort("clk", netlist.In, geom.Point{X: 0, Y: 50})
	pout := d.AddPort("out", netlist.Out, geom.Point{X: 99999, Y: 0})

	prev := d.AddNet("n_in")
	d.ConnectPort(pin, prev)
	for i := 0; i < nInv; i++ {
		id := d.AddInstance("inv", inv)
		d.Insts[id].Pos = geom.Point{X: int64(100 * (i + 1)), Y: 0}
		d.Connect(id, 0, prev)
		nxt := d.AddNet("n")
		d.Connect(id, 1, nxt)
		prev = nxt
	}
	clk := d.AddNet("clk")
	d.ConnectPort(pclk, clk)
	d.ClockNet = clk
	fid := d.AddInstance("ff", dff)
	d.Insts[fid].Pos = geom.Point{X: int64(100 * (nInv + 2)), Y: 0}
	d.Connect(fid, 0, prev) // D
	d.Connect(fid, 1, clk)  // CK
	q := d.AddNet("q")
	d.Connect(fid, 2, q)
	d.ConnectPort(pout, q)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestChainTimingMeets(t *testing.T) {
	d := chainDesign(t, 4, 10000) // very slow clock: must meet
	r, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.WNSps != 0 || r.TNSps != 0 || r.ViolatingEndpoints != 0 {
		t.Errorf("slow clock must meet timing: %+v", r)
	}
	if r.Endpoints == 0 {
		t.Error("no endpoints analysed")
	}
	if r.CriticalPathPs <= 0 {
		t.Error("critical path must be positive")
	}
}

func TestChainTimingViolates(t *testing.T) {
	d := chainDesign(t, 40, 30) // 40 inverters cannot fit a 30 ps clock
	r, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.WNSps >= 0 || r.TNSps >= 0 {
		t.Errorf("tight clock must violate: %+v", r)
	}
	if r.TNSps > r.WNSps {
		t.Errorf("TNS %f cannot be less negative than WNS %f", r.TNSps, r.WNSps)
	}
}

func TestLongerChainWorseSlack(t *testing.T) {
	short, err := Analyze(chainDesign(t, 10, 100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Analyze(chainDesign(t, 30, 100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if long.CriticalPathPs <= short.CriticalPathPs {
		t.Errorf("longer chain must have longer critical path: %f vs %f",
			long.CriticalPathPs, short.CriticalPathPs)
	}
}

func TestWireLengthDegradesTiming(t *testing.T) {
	d := chainDesign(t, 10, 200)
	base, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Inflate all net lengths 100x: delays must grow.
	lens := make([]int64, len(d.Nets))
	for ni := range d.Nets {
		lens[ni] = d.NetHPWL(int32(ni)) * 100
	}
	worse, err := Analyze(d, Options{NetLength: lens})
	if err != nil {
		t.Fatal(err)
	}
	if worse.CriticalPathPs <= base.CriticalPathPs {
		t.Errorf("longer wires must slow the path: %f vs %f",
			worse.CriticalPathPs, base.CriticalPathPs)
	}
}

func TestAnalyzeSyntheticDesign(t *testing.T) {
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = 0.02
	d, err := synth.Generate(tc, lib, synth.TableII()[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	// Spread cells deterministically so wires exist.
	for i, in := range d.Insts {
		in.Pos = geom.Point{
			X: d.Die.Lo.X + int64(i*131)%(d.Die.W()-in.Width()),
			Y: d.Die.Lo.Y + int64(i*197)%(d.Die.H()-in.Height()),
		}
	}
	r, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Endpoints == 0 {
		t.Fatal("synthetic design must have endpoints")
	}
	// With routing lengths supplied, results are still sane.
	rt, err := route.Route(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(d, Options{NetLength: rt.NetLength})
	if err != nil {
		t.Fatal(err)
	}
	if r2.CriticalPathPs <= 0 {
		t.Error("routed critical path must be positive")
	}
}

func TestAnalyzeRejectsNoClock(t *testing.T) {
	d := chainDesign(t, 2, 100)
	d.ClockPeriodPs = 0
	if _, err := Analyze(d, Options{}); err == nil {
		t.Error("missing clock period must error")
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	tc := tech.Default()
	lib := celllib.New(tc)
	d := &netlist.Design{
		Name: "loop", Tech: tc, Lib: lib,
		Die: geom.NewRect(0, 0, 10000, 10000), ClockPeriodPs: 100, ClockNet: netlist.NoNet,
	}
	inv := lib.Find(celllib.INV, 1, tech.Short6T, celllib.RVT)
	a := d.AddInstance("a", inv)
	b := d.AddInstance("b", inv)
	n1 := d.AddNet("n1")
	n2 := d.AddNet("n2")
	d.Connect(a, 1, n1) // a.Y -> n1
	d.Connect(b, 0, n1) // n1 -> b.A
	d.Connect(b, 1, n2) // b.Y -> n2
	d.Connect(a, 0, n2) // n2 -> a.A : loop
	if _, err := Analyze(d, Options{}); err == nil {
		t.Error("combinational loop must be detected")
	}
}
