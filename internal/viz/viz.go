// Package viz renders placements as SVG: die outline, row structure,
// fence-region islands and cells coloured by track-height — the same visual
// language as Fig. 3 of the paper (blue majority 6T cells, red minority
// 7.5T cells, yellow fence regions).
package viz

import (
	"bufio"
	"fmt"
	"io"

	"mthplace/internal/fence"
	"mthplace/internal/netlist"
	"mthplace/internal/rowgrid"
	"mthplace/internal/tech"
)

// Options control rendering.
type Options struct {
	// WidthPx is the output image width in pixels (default 800; height
	// follows the die aspect ratio).
	WidthPx int
	// ShowRows draws row-pair boundaries.
	ShowRows bool
	// Stack, when non-nil, provides the mixed row structure (and enables
	// fence shading); nil draws the die only.
	Stack *rowgrid.MixedStack
	// Title is an optional caption.
	Title string
}

const (
	colorMajority = "#4878cf" // blue, as in Fig. 3
	colorMinority = "#d1493e" // red
	colorFence    = "#f2d544" // yellow
	colorDie      = "#fafafa"
	colorRowLine  = "#dddddd"
)

// WriteSVG renders the design's current placement.
func WriteSVG(w io.Writer, d *netlist.Design, opt Options) error {
	if opt.WidthPx <= 0 {
		opt.WidthPx = 800
	}
	bw := bufio.NewWriter(w)
	dieW, dieH := d.Die.W(), d.Die.H()
	if dieW <= 0 || dieH <= 0 {
		return fmt.Errorf("viz: empty die")
	}
	scale := float64(opt.WidthPx) / float64(dieW)
	hPx := float64(dieH) * scale
	top := 0.0
	if opt.Title != "" {
		top = 20
	}
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%.0f" viewBox="0 0 %d %.0f">`+"\n",
		opt.WidthPx, hPx+top, opt.WidthPx, hPx+top)
	if opt.Title != "" {
		fmt.Fprintf(bw, `<text x="4" y="14" font-family="monospace" font-size="12">%s</text>`+"\n", opt.Title)
	}
	// SVG y grows downward; flip so die y grows upward.
	fy := func(y int64) float64 { return top + hPx - float64(y-d.Die.Lo.Y)*scale }
	fx := func(x int64) float64 { return float64(x-d.Die.Lo.X) * scale }

	// Die.
	fmt.Fprintf(bw, `<rect x="0" y="%.1f" width="%d" height="%.1f" fill="%s" stroke="#333"/>`+"\n",
		top, opt.WidthPx, hPx, colorDie)

	// Fence islands.
	if opt.Stack != nil {
		for _, rc := range fence.FromStack(opt.Stack).Rects {
			fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.55"/>`+"\n",
				fx(rc.Lo.X), fy(rc.Hi.Y), float64(rc.W())*scale, float64(rc.H())*scale, colorFence)
		}
	}

	// Row boundaries.
	if opt.ShowRows && opt.Stack != nil {
		for i := 0; i <= opt.Stack.NumPairs(); i++ {
			y := fy(opt.Stack.Y[i])
			fmt.Fprintf(bw, `<line x1="0" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="0.5"/>`+"\n",
				y, opt.WidthPx, y, colorRowLine)
		}
	}

	// Cells.
	for _, in := range d.Insts {
		color := colorMajority
		if in.TrueHeight() == tech.Tall7p5T {
			color = colorMinority
		}
		r := in.Rect()
		fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.85"/>`+"\n",
			fx(r.Lo.X), fy(r.Hi.Y), float64(r.W())*scale, float64(r.H())*scale, color)
	}

	fmt.Fprintf(bw, "</svg>\n")
	return bw.Flush()
}
