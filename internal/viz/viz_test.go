package viz

import (
	"bytes"
	"strings"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/netlist"
	"mthplace/internal/rowgrid"
	"mthplace/internal/tech"
)

func vizDesign(t *testing.T) (*netlist.Design, *rowgrid.MixedStack) {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	hs := []tech.TrackHeight{tech.Short6T, tech.Tall7p5T, tech.Short6T}
	var h int64
	for _, p := range hs {
		h += tc.PairHeight(p)
	}
	die := geom.NewRect(0, 0, 5400, h)
	ms, err := rowgrid.Stack(die, hs, tc)
	if err != nil {
		t.Fatal(err)
	}
	d := &netlist.Design{Name: "viz", Tech: tc, Lib: lib, Die: die, ClockNet: netlist.NoNet}
	short := lib.Find(celllib.INV, 1, tech.Short6T, celllib.RVT)
	tall := lib.Find(celllib.INV, 1, tech.Tall7p5T, celllib.RVT)
	a := d.AddInstance("a", short)
	b := d.AddInstance("b", tall)
	d.Insts[a].Pos = geom.Point{X: 0, Y: ms.Y[0]}
	d.Insts[b].Pos = geom.Point{X: 108, Y: ms.Y[1]}
	return d, ms
}

func TestWriteSVGBasics(t *testing.T) {
	d, ms := vizDesign(t)
	var buf bytes.Buffer
	err := WriteSVG(&buf, d, Options{Stack: ms, ShowRows: true, Title: "test"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", colorMajority, colorMinority, colorFence, "test"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One cell of each colour plus the die rect.
	if strings.Count(out, "<rect") < 4 {
		t.Errorf("too few rects:\n%s", out)
	}
	// Row lines: NumPairs+1 boundaries.
	if strings.Count(out, "<line") != ms.NumPairs()+1 {
		t.Errorf("row lines = %d, want %d", strings.Count(out, "<line"), ms.NumPairs()+1)
	}
}

func TestWriteSVGWithoutStack(t *testing.T) {
	d, _ := vizDesign(t)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, d, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), colorFence) {
		t.Error("no fences expected without a stack")
	}
}

func TestWriteSVGEmptyDie(t *testing.T) {
	tc := tech.Default()
	d := &netlist.Design{Name: "x", Tech: tc, Lib: celllib.New(tc), ClockNet: netlist.NoNet}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, d, Options{}); err == nil {
		t.Error("empty die must error")
	}
}

func TestWriteSVGDefaultWidth(t *testing.T) {
	d, ms := vizDesign(t)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, d, Options{Stack: ms}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="800"`) {
		t.Error("default width not applied")
	}
}
