package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{-1, 10}
	if got := p.Add(q); got != (Point{2, 14}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{4, -6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.ManhattanDist(q); got != 10 {
		t.Errorf("ManhattanDist = %d, want 10", got)
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(10, 20, 0, 5)
	if r.Lo != (Point{0, 5}) || r.Hi != (Point{10, 20}) {
		t.Fatalf("NewRect got %v", r)
	}
	if r.W() != 10 || r.H() != 15 || r.Area() != 150 || r.HalfPerimeter() != 25 {
		t.Errorf("W/H/Area/HP = %d/%d/%d/%d", r.W(), r.H(), r.Area(), r.HalfPerimeter())
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{9, 9}, true},
		{Point{10, 5}, false}, // upper edge exclusive
		{Point{5, 10}, false},
		{Point{-1, 5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 20, 20)
	if !a.Intersects(b) {
		t.Fatal("expected intersection")
	}
	got := a.Intersect(b)
	if got != NewRect(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	c := NewRect(10, 0, 20, 10) // abutting, shares edge only
	if a.Intersects(c) {
		t.Error("abutting rects must not intersect")
	}
	if !a.Intersect(c).Empty() {
		t.Error("abutting intersect must be empty")
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(5, 5, 6, 8)
	u := a.Union(b)
	if u != NewRect(0, 0, 6, 8) {
		t.Errorf("Union = %v", u)
	}
	var empty Rect
	if got := empty.Union(a); got != a {
		t.Errorf("empty.Union(a) = %v", got)
	}
	if got := a.Union(empty); got != a {
		t.Errorf("a.Union(empty) = %v", got)
	}
}

func TestBBoxAndHPWL(t *testing.T) {
	var b BBox
	if b.Valid() || b.HalfPerimeter() != 0 {
		t.Fatal("zero BBox must be invalid with zero HPWL")
	}
	pts := []Point{{1, 1}, {4, 5}, {-2, 3}}
	for _, p := range pts {
		b.Extend(p)
	}
	// x range [-2,4] = 6, y range [1,5] = 4.
	if got := b.HalfPerimeter(); got != 10 {
		t.Errorf("HalfPerimeter = %d, want 10", got)
	}
	if got := HPWL(pts); got != 10 {
		t.Errorf("HPWL = %d, want 10", got)
	}
	if HPWL(nil) != 0 {
		t.Error("HPWL(nil) must be 0")
	}
	if HPWL([]Point{{7, 7}}) != 0 {
		t.Error("single-point HPWL must be 0")
	}
}

func TestSnap(t *testing.T) {
	cases := []struct {
		v, grid, down, up, near int64
	}{
		{17, 5, 15, 20, 15},
		{20, 5, 20, 20, 20},
		{-3, 5, -5, 0, -5},
		{-5, 5, -5, -5, -5},
		{13, 4, 12, 16, 12},
		{14, 4, 12, 16, 16}, // tie rounds up
	}
	for _, c := range cases {
		if got := SnapDown(c.v, c.grid); got != c.down {
			t.Errorf("SnapDown(%d,%d) = %d, want %d", c.v, c.grid, got, c.down)
		}
		if got := SnapUp(c.v, c.grid); got != c.up {
			t.Errorf("SnapUp(%d,%d) = %d, want %d", c.v, c.grid, got, c.up)
		}
		if got := SnapNearest(c.v, c.grid); got != c.near {
			t.Errorf("SnapNearest(%d,%d) = %d, want %d", c.v, c.grid, got, c.near)
		}
	}
}

func TestInterval(t *testing.T) {
	a := Interval{0, 10}
	b := Interval{5, 20}
	if a.Len() != 10 || b.Len() != 15 {
		t.Fatal("Len wrong")
	}
	if got := a.Overlap(b); got != 5 {
		t.Errorf("Overlap = %d", got)
	}
	if got := b.Overlap(a); got != 5 {
		t.Errorf("Overlap not symmetric: %d", got)
	}
	if (Interval{4, 4}).Len() != 0 {
		t.Error("degenerate interval must have zero length")
	}
	if !a.Contains(0) || a.Contains(10) {
		t.Error("Contains must be lo-inclusive hi-exclusive")
	}
}

// Property: HPWL is invariant under point permutation and translation.
func TestHPWLInvarianceProperty(t *testing.T) {
	f := func(xs, ys []int16, dx, dy int16) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		pts := make([]Point, n)
		for i := 0; i < n; i++ {
			pts[i] = Point{int64(xs[i]), int64(ys[i])}
		}
		base := HPWL(pts)
		// Translate.
		moved := make([]Point, n)
		for i, p := range pts {
			moved[i] = p.Add(Point{int64(dx), int64(dy)})
		}
		if HPWL(moved) != base {
			return false
		}
		// Shuffle deterministically.
		rng := rand.New(rand.NewSource(1))
		perm := rng.Perm(n)
		shuf := make([]Point, n)
		for i, j := range perm {
			shuf[i] = pts[j]
		}
		return HPWL(shuf) == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: union contains both operands; intersect is contained in both.
func TestRectAlgebraProperty(t *testing.T) {
	f := func(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 int16) bool {
		a := NewRect(int64(ax1), int64(ay1), int64(ax2), int64(ay2))
		b := NewRect(int64(bx1), int64(by1), int64(bx2), int64(by2))
		u := a.Union(b)
		if !a.Empty() && !u.ContainsRect(a) {
			return false
		}
		if !b.Empty() && !u.ContainsRect(b) {
			return false
		}
		iv := a.Intersect(b)
		if iv.Empty() {
			return true
		}
		return a.ContainsRect(iv) && b.ContainsRect(iv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMinMaxClamp(t *testing.T) {
	if MinInt64(2, 3) != 2 || MinInt64(3, 2) != 2 {
		t.Error("MinInt64")
	}
	if MaxInt64(2, 3) != 3 || MaxInt64(3, 2) != 3 {
		t.Error("MaxInt64")
	}
	if ClampInt64(5, 0, 3) != 3 || ClampInt64(-5, 0, 3) != 0 || ClampInt64(2, 0, 3) != 2 {
		t.Error("ClampInt64")
	}
	if AbsInt64(-7) != 7 || AbsInt64(7) != 7 || AbsInt64(0) != 0 {
		t.Error("AbsInt64")
	}
}
