// Package geom provides the elementary planar geometry used throughout the
// placer: points, rectangles, half-perimeter wirelength (HPWL) bounding
// boxes, and interval arithmetic on database units.
//
// All coordinates are in integer database units (DBU). The technology
// package defines the DBU scale (1 DBU = 1 nm for the synthetic ASAP7-like
// node used here).
package geom

import "fmt"

// Point is a location in database units.
type Point struct {
	X, Y int64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int64 {
	return AbsInt64(p.X-q.X) + AbsInt64(p.Y-q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle with inclusive lower-left and exclusive
// upper-right corners, matching the usual layout-database convention.
// A Rect with Lo == Hi is empty.
type Rect struct {
	Lo, Hi Point
}

// NewRect builds a rectangle from any two opposite corners.
func NewRect(x1, y1, x2, y2 int64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{Point{x1, y1}, Point{x2, y2}}
}

// W returns the rectangle width.
func (r Rect) W() int64 { return r.Hi.X - r.Lo.X }

// H returns the rectangle height.
func (r Rect) H() int64 { return r.Hi.Y - r.Lo.Y }

// Area returns the rectangle area.
func (r Rect) Area() int64 { return r.W() * r.H() }

// Empty reports whether r has zero area.
func (r Rect) Empty() bool { return r.W() <= 0 || r.H() <= 0 }

// HalfPerimeter returns W+H, the half-perimeter of the rectangle.
func (r Rect) HalfPerimeter() int64 { return r.W() + r.H() }

// Center returns the rectangle center, rounded down.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether p lies inside r (lower-left inclusive,
// upper-right exclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X < r.Hi.X && p.Y >= r.Lo.Y && p.Y < r.Hi.Y
}

// ContainsRect reports whether q lies entirely inside r.
func (r Rect) ContainsRect(q Rect) bool {
	return q.Lo.X >= r.Lo.X && q.Lo.Y >= r.Lo.Y && q.Hi.X <= r.Hi.X && q.Hi.Y <= r.Hi.Y
}

// Intersects reports whether r and q share interior area.
func (r Rect) Intersects(q Rect) bool {
	return r.Lo.X < q.Hi.X && q.Lo.X < r.Hi.X && r.Lo.Y < q.Hi.Y && q.Lo.Y < r.Hi.Y
}

// Intersect returns the overlapping region of r and q; the result is empty
// when they do not intersect.
func (r Rect) Intersect(q Rect) Rect {
	out := Rect{
		Point{MaxInt64(r.Lo.X, q.Lo.X), MaxInt64(r.Lo.Y, q.Lo.Y)},
		Point{MinInt64(r.Hi.X, q.Hi.X), MinInt64(r.Hi.Y, q.Hi.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the bounding box of r and q. Empty rectangles are ignored.
func (r Rect) Union(q Rect) Rect {
	if r.Empty() {
		return q
	}
	if q.Empty() {
		return r
	}
	return Rect{
		Point{MinInt64(r.Lo.X, q.Lo.X), MinInt64(r.Lo.Y, q.Lo.Y)},
		Point{MaxInt64(r.Hi.X, q.Hi.X), MaxInt64(r.Hi.Y, q.Hi.Y)},
	}
}

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.Lo.Add(d), r.Hi.Add(d)}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.Lo.X, r.Lo.Y, r.Hi.X, r.Hi.Y)
}

// BBox accumulates a bounding box over a stream of points.
// The zero value is an empty box.
type BBox struct {
	valid bool
	r     Rect
}

// Extend grows the box to include p.
func (b *BBox) Extend(p Point) {
	if !b.valid {
		b.r = Rect{p, p}
		b.valid = true
		return
	}
	if p.X < b.r.Lo.X {
		b.r.Lo.X = p.X
	}
	if p.Y < b.r.Lo.Y {
		b.r.Lo.Y = p.Y
	}
	if p.X > b.r.Hi.X {
		b.r.Hi.X = p.X
	}
	if p.Y > b.r.Hi.Y {
		b.r.Hi.Y = p.Y
	}
}

// Valid reports whether at least one point has been added.
func (b *BBox) Valid() bool { return b.valid }

// Rect returns the accumulated bounding box (degenerate — zero width/height
// allowed — when fewer than two distinct points were added).
func (b *BBox) Rect() Rect { return b.r }

// HalfPerimeter returns the HPWL of the accumulated box, 0 if no points.
func (b *BBox) HalfPerimeter() int64 {
	if !b.valid {
		return 0
	}
	return b.r.HalfPerimeter()
}

// HPWL computes the half-perimeter wirelength of a point set. It returns 0
// for empty or single-point sets.
func HPWL(pts []Point) int64 {
	var b BBox
	for _, p := range pts {
		b.Extend(p)
	}
	return b.HalfPerimeter()
}

// AbsInt64 returns |v|.
func AbsInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// MinInt64 returns the smaller of a and b.
func MinInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxInt64 returns the larger of a and b.
func MaxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ClampInt64 limits v to [lo, hi].
func ClampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SnapDown rounds v down to a multiple of grid (grid > 0).
func SnapDown(v, grid int64) int64 {
	if grid <= 0 {
		return v
	}
	if v >= 0 {
		return v - v%grid
	}
	m := v % grid
	if m == 0 {
		return v
	}
	return v - m - grid
}

// SnapUp rounds v up to a multiple of grid (grid > 0).
func SnapUp(v, grid int64) int64 {
	d := SnapDown(v, grid)
	if d == v {
		return v
	}
	return d + grid
}

// SnapNearest rounds v to the nearest multiple of grid (ties go up).
func SnapNearest(v, grid int64) int64 {
	if grid <= 0 {
		return v
	}
	lo := SnapDown(v, grid)
	hi := lo + grid
	if v-lo < hi-v {
		return lo
	}
	return hi
}

// Interval is a 1-D closed-open interval [Lo, Hi).
type Interval struct {
	Lo, Hi int64
}

// Len returns the interval length (0 when degenerate or inverted).
func (iv Interval) Len() int64 {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Overlap returns the length of the overlap of two intervals.
func (iv Interval) Overlap(other Interval) int64 {
	lo := MaxInt64(iv.Lo, other.Lo)
	hi := MinInt64(iv.Hi, other.Hi)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v int64) bool { return v >= iv.Lo && v < iv.Hi }
