package soa

import (
	"fmt"
	"sort"
)

// RowLists is the index-linked row structure of a legalized placement: per
// row a singly linked list of instance indices in left-to-right order,
// stored as two flat arrays (Coloquinte's cellRow_/cellPred_ idiom). Built
// in O(n log n) once, it answers neighbour and overlap queries with pure
// index arithmetic — no per-row slice allocation, no maps.
type RowLists struct {
	// Head[r] is the leftmost instance in row r, or -1 for an empty row.
	Head []int32
	// Next[i] is the instance to the right of i in its row, or -1.
	Next []int32
	// Row[i] is the row index of instance i, or -1 when the instance was
	// not assigned to any row (e.g. a fixed cell off the row grid).
	Row []int32
}

// BuildRowLists links every instance of c into the row structure defined by
// rowOf, which maps an instance index to its row (return -1 to leave the
// instance out). nRows bounds the row index range.
func BuildRowLists(c *Compact, nRows int, rowOf func(i int32) int32) (*RowLists, error) {
	n := c.NumInsts()
	rl := &RowLists{
		Head: make([]int32, nRows),
		Next: make([]int32, n),
		Row:  make([]int32, n),
	}
	for r := range rl.Head {
		rl.Head[r] = -1
	}
	order := make([]int32, 0, n)
	for i := int32(0); i < int32(n); i++ {
		rl.Next[i] = -1
		r := rowOf(i)
		if r < 0 {
			rl.Row[i] = -1
			continue
		}
		if int(r) >= nRows {
			return nil, fmt.Errorf("soa: inst %d: row %d out of range (%d rows)", i, r, nRows)
		}
		rl.Row[i] = r
		order = append(order, i)
	}
	// Sort by (row, x, index) then link each row once, back to front, so
	// every list comes out left-to-right without per-row state.
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if rl.Row[ia] != rl.Row[ib] {
			return rl.Row[ia] < rl.Row[ib]
		}
		if c.InstX[ia] != c.InstX[ib] {
			return c.InstX[ia] < c.InstX[ib]
		}
		return ia < ib
	})
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		r := rl.Row[i]
		rl.Next[i] = rl.Head[r]
		rl.Head[r] = i
	}
	return rl, nil
}

// CheckNoOverlap walks every row list once and reports the first pair of
// horizontally overlapping instances. O(n) after the build.
func (rl *RowLists) CheckNoOverlap(c *Compact) error {
	for r, i := range rl.Head {
		prev := int32(-1)
		for ; i >= 0; i = rl.Next[i] {
			if prev >= 0 && c.InstX[prev]+c.InstWidth(prev) > c.InstX[i] {
				return fmt.Errorf("soa: row %d: inst %d overlaps inst %d", r, prev, i)
			}
			prev = i
		}
	}
	return nil
}

// RowLen returns the number of instances linked into row r.
func (rl *RowLists) RowLen(r int) int {
	n := 0
	for i := rl.Head[r]; i >= 0; i = rl.Next[i] {
		n++
	}
	return n
}
