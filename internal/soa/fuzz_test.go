package soa

import (
	"bytes"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/lefdef"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

// FuzzSoARoundtrip drives the converters with every design the DEF parser
// accepts from arbitrary bytes: FromDesign must produce a Compact that
// passes Validate, and ToDesign must reproduce the design exactly — checked
// through WriteDEF byte equality plus the exact HPWL metric.
func FuzzSoARoundtrip(f *testing.F) {
	tc := tech.Default()
	lib := celllib.New(tc)

	opt := synth.DefaultOptions()
	opt.Scale = 0.005
	d, err := synth.Generate(tc, lib, synth.TableII()[0], opt)
	if err != nil {
		f.Fatal(err)
	}
	var def bytes.Buffer
	if err := lefdef.WriteDEF(&def, d); err != nil {
		f.Fatal(err)
	}
	f.Add(def.Bytes())
	f.Add([]byte("VERSION 5.8 ;\nDESIGN x ;\nDIEAREA ( 0 0 ) ( 10 10 ) ;\nEND DESIGN\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := lefdef.ReadDEF(bytes.NewReader(data), tc, lib, lefdef.LibraryResolver(lib))
		if err != nil {
			return
		}
		c := FromDesign(parsed)
		if err := c.Validate(); err != nil {
			t.Fatalf("FromDesign of valid design fails Validate: %v", err)
		}
		back := c.ToDesign()
		if err := back.Validate(); err != nil {
			t.Fatalf("ToDesign result invalid: %v", err)
		}
		if got, want := c.TotalHPWL(), parsed.TotalHPWL(); got != want {
			t.Fatalf("TotalHPWL %d != %d", got, want)
		}
		var w1, w2 bytes.Buffer
		if err := lefdef.WriteDEF(&w1, parsed); err != nil {
			t.Fatal(err)
		}
		if err := lefdef.WriteDEF(&w2, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatal("Design→SoA→Design changes DEF serialisation")
		}
	})
}
