// Package soa provides the structure-of-arrays design database used on the
// million-cell hot paths. Where netlist.Design stores one heap object per
// instance and per net ([]*Instance, []*Net, per-instance PinNets slices),
// Compact stores the same information as flat parallel slices with CSR
// (compressed sparse row) adjacency — the Coloquinte cellWidth_/cellRow_/
// cellPred_ idiom — so the cost model, the legalizer and the metrics
// recompute walk contiguous int32/int64 arrays instead of chasing pointers.
//
// The two representations are interconvertible and lossless: for every valid
// design, ToDesign(FromDesign(d)) reproduces d exactly (same instance, net,
// port and pin orders, shared master pointers), which the differential test
// harness asserts across every flow. Compact is the in-memory form; LEF/DEF
// remains the on-disk interchange, unchanged.
package soa

import (
	"fmt"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/netlist"
	"mthplace/internal/tech"
)

// NoNet marks an unconnected pin, mirroring netlist.NoNet.
const NoNet = netlist.NoNet

// PortInst is the sentinel instance index for primary IO ports in the
// net→pin adjacency, mirroring netlist.PortInst.
const PortInst = netlist.PortInst

// Compact is the structure-of-arrays form of a netlist.Design.
//
// Instance i's pins occupy the CSR slice PinNet[InstPinStart[i]:
// InstPinStart[i+1]]; net n's pins occupy NetPinInst/NetPinPin
// [NetPinStart[n]:NetPinStart[n+1]] in the same order as the AoS net's pin
// list. Master geometry is flattened once into MasterPin* so pin-position
// queries never touch a *celllib.Master on the hot path.
type Compact struct {
	Name          string
	Tech          *tech.Tech
	Lib           *celllib.Library
	Die           geom.Rect
	ClockPeriodPs float64
	ClockNet      int32

	// Masters is the deduplicated master table; instances refer to it by
	// index. Pointers are shared with the library (masters are immutable).
	Masters []*celllib.Master
	// MasterWidth/MasterRowH/MasterHeight mirror the master geometry.
	MasterWidth  []int64
	MasterRowH   []int64
	MasterHeight []tech.TrackHeight
	// MasterPinStart is the CSR index of master m's pin offsets in
	// MasterPinOffX/Y (len(Masters)+1 entries).
	MasterPinStart []int32
	MasterPinOffX  []int64
	MasterPinOffY  []int64

	// Instance arrays (hot: X/Y/Master; cold: Name).
	InstName   []string
	InstMaster []int32
	// InstSource indexes the pre-mLEF master while in mLEF form (-1 none).
	InstSource []int32
	InstX      []int64
	InstY      []int64
	InstFixed  []bool

	// CSR pin→net adjacency (len(InstPinStart) = NumInsts()+1).
	InstPinStart []int32
	PinNet       []int32

	// Net arrays and CSR net→pin adjacency. NetPinInst is PortInst for
	// primary-port pins, in which case NetPinPin indexes the port.
	NetName     []string
	NetPinStart []int32
	NetPinInst  []int32
	NetPinPin   []int32

	// Port arrays.
	PortName []string
	PortDir  []netlist.PortDir
	PortX    []int64
	PortY    []int64
	PortNet  []int32
}

// NumInsts returns the instance count.
func (c *Compact) NumInsts() int { return len(c.InstMaster) }

// NumNets returns the net count.
func (c *Compact) NumNets() int { return len(c.NetName) }

// NumPorts returns the port count.
func (c *Compact) NumPorts() int { return len(c.PortName) }

// NumPins returns the total instance pin-slot count.
func (c *Compact) NumPins() int { return len(c.PinNet) }

// InstWidth returns instance i's current (mLEF or true) width.
func (c *Compact) InstWidth(i int32) int64 { return c.MasterWidth[c.InstMaster[i]] }

// InstHeight returns instance i's current row height.
func (c *Compact) InstHeight(i int32) int64 { return c.MasterRowH[c.InstMaster[i]] }

// TrueHeight returns the track-height class of instance i, looking through
// the mLEF transform like netlist.Instance.TrueHeight.
func (c *Compact) TrueHeight(i int32) tech.TrackHeight {
	if s := c.InstSource[i]; s >= 0 {
		return c.MasterHeight[s]
	}
	return c.MasterHeight[c.InstMaster[i]]
}

// PinPos returns the absolute position of pin p of instance i.
func (c *Compact) PinPos(i, p int32) (x, y int64) {
	o := c.MasterPinStart[c.InstMaster[i]] + p
	return c.InstX[i] + c.MasterPinOffX[o], c.InstY[i] + c.MasterPinOffY[o]
}

// RefPos returns the absolute position of one net→pin edge (instance pin or
// primary port).
func (c *Compact) RefPos(inst, pin int32) (x, y int64) {
	if inst == PortInst {
		return c.PortX[pin], c.PortY[pin]
	}
	return c.PinPos(inst, pin)
}

// FromDesign converts an AoS design into its SoA form. The conversion is a
// single O(instances + pins) pass; masters and the library are shared, not
// copied.
func FromDesign(d *netlist.Design) *Compact {
	c := &Compact{
		Name:          d.Name,
		Tech:          d.Tech,
		Lib:           d.Lib,
		Die:           d.Die,
		ClockPeriodPs: d.ClockPeriodPs,
		ClockNet:      d.ClockNet,
	}
	masterIdx := make(map[*celllib.Master]int32)
	intern := func(m *celllib.Master) int32 {
		if m == nil {
			return -1
		}
		if i, ok := masterIdx[m]; ok {
			return i
		}
		i := int32(len(c.Masters))
		masterIdx[m] = i
		c.Masters = append(c.Masters, m)
		c.MasterWidth = append(c.MasterWidth, m.Width)
		c.MasterRowH = append(c.MasterRowH, m.RowH)
		c.MasterHeight = append(c.MasterHeight, m.Height)
		for _, p := range m.Pins {
			c.MasterPinOffX = append(c.MasterPinOffX, p.Offset.X)
			c.MasterPinOffY = append(c.MasterPinOffY, p.Offset.Y)
		}
		c.MasterPinStart = append(c.MasterPinStart, int32(len(c.MasterPinOffX)))
		return i
	}
	c.MasterPinStart = append(c.MasterPinStart, 0)

	n := len(d.Insts)
	c.InstName = make([]string, n)
	c.InstMaster = make([]int32, n)
	c.InstSource = make([]int32, n)
	c.InstX = make([]int64, n)
	c.InstY = make([]int64, n)
	c.InstFixed = make([]bool, n)
	c.InstPinStart = make([]int32, n+1)
	nPins := 0
	for _, in := range d.Insts {
		nPins += len(in.PinNets)
	}
	c.PinNet = make([]int32, 0, nPins)
	for i, in := range d.Insts {
		c.InstName[i] = in.Name
		c.InstMaster[i] = intern(in.Master)
		c.InstSource[i] = intern(in.Source)
		c.InstX[i] = in.Pos.X
		c.InstY[i] = in.Pos.Y
		c.InstFixed[i] = in.Fixed
		c.PinNet = append(c.PinNet, in.PinNets...)
		c.InstPinStart[i+1] = int32(len(c.PinNet))
	}

	m := len(d.Nets)
	c.NetName = make([]string, m)
	c.NetPinStart = make([]int32, m+1)
	nRefs := 0
	for _, nt := range d.Nets {
		nRefs += len(nt.Pins)
	}
	c.NetPinInst = make([]int32, 0, nRefs)
	c.NetPinPin = make([]int32, 0, nRefs)
	for ni, nt := range d.Nets {
		c.NetName[ni] = nt.Name
		for _, ref := range nt.Pins {
			c.NetPinInst = append(c.NetPinInst, ref.Inst)
			c.NetPinPin = append(c.NetPinPin, ref.Pin)
		}
		c.NetPinStart[ni+1] = int32(len(c.NetPinInst))
	}

	p := len(d.Ports)
	c.PortName = make([]string, p)
	c.PortDir = make([]netlist.PortDir, p)
	c.PortX = make([]int64, p)
	c.PortY = make([]int64, p)
	c.PortNet = make([]int32, p)
	for pi, pt := range d.Ports {
		c.PortName[pi] = pt.Name
		c.PortDir[pi] = pt.Dir
		c.PortX[pi] = pt.Pos.X
		c.PortY[pi] = pt.Pos.Y
		c.PortNet[pi] = pt.Net
	}
	return c
}

// ToDesign converts back to the AoS form. The result is structurally
// identical to the design FromDesign consumed: same orders, same master
// pointers, fresh Instance/Net/Port objects.
func (c *Compact) ToDesign() *netlist.Design {
	d := &netlist.Design{
		Name:          c.Name,
		Tech:          c.Tech,
		Lib:           c.Lib,
		Die:           c.Die,
		ClockPeriodPs: c.ClockPeriodPs,
		ClockNet:      c.ClockNet,
	}
	d.Insts = make([]*netlist.Instance, c.NumInsts())
	for i := range d.Insts {
		in := &netlist.Instance{
			Name:    c.InstName[i],
			Master:  c.Masters[c.InstMaster[i]],
			Pos:     geom.Point{X: c.InstX[i], Y: c.InstY[i]},
			Fixed:   c.InstFixed[i],
			PinNets: append([]int32(nil), c.PinNet[c.InstPinStart[i]:c.InstPinStart[i+1]]...),
		}
		if s := c.InstSource[i]; s >= 0 {
			in.Source = c.Masters[s]
		}
		d.Insts[i] = in
	}
	d.Nets = make([]*netlist.Net, c.NumNets())
	for ni := range d.Nets {
		lo, hi := c.NetPinStart[ni], c.NetPinStart[ni+1]
		pins := make([]netlist.PinRef, 0, hi-lo)
		for e := lo; e < hi; e++ {
			pins = append(pins, netlist.PinRef{Inst: c.NetPinInst[e], Pin: c.NetPinPin[e]})
		}
		d.Nets[ni] = &netlist.Net{Name: c.NetName[ni], Pins: pins}
	}
	d.Ports = make([]*netlist.Port, c.NumPorts())
	for pi := range d.Ports {
		d.Ports[pi] = &netlist.Port{
			Name: c.PortName[pi],
			Dir:  c.PortDir[pi],
			Pos:  geom.Point{X: c.PortX[pi], Y: c.PortY[pi]},
			Net:  c.PortNet[pi],
		}
	}
	return d
}

// NetHPWL returns the half-perimeter wirelength of net n, identical to
// netlist.Design.NetHPWL on the equivalent design.
func (c *Compact) NetHPWL(n int32) int64 {
	var b geom.BBox
	for e := c.NetPinStart[n]; e < c.NetPinStart[n+1]; e++ {
		x, y := c.RefPos(c.NetPinInst[e], c.NetPinPin[e])
		b.Extend(geom.Point{X: x, Y: y})
	}
	return b.HalfPerimeter()
}

// TotalHPWL returns the design HPWL excluding the clock net, identical to
// netlist.Design.TotalHPWL (integer arithmetic, same summation order).
func (c *Compact) TotalHPWL() int64 {
	var sum int64
	for n := 0; n < c.NumNets(); n++ {
		if int32(n) == c.ClockNet {
			continue
		}
		sum += c.NetHPWL(int32(n))
	}
	return sum
}

// MinorityInstances returns the indices of all 7.5T instances by true
// (pre-mLEF) height, like netlist.Design.MinorityInstances.
func (c *Compact) MinorityInstances() []int32 {
	var out []int32
	for i := 0; i < c.NumInsts(); i++ {
		if c.TrueHeight(int32(i)) == tech.Tall7p5T {
			out = append(out, int32(i))
		}
	}
	return out
}

// Validate checks the CSR adjacency for bidirectional consistency in
// O(instances + pins): every pin→net edge must have a matching net→pin edge
// and vice versa, ports included, and every index must be in range.
func (c *Compact) Validate() error {
	nI, nN, nP := c.NumInsts(), c.NumNets(), c.NumPorts()
	if len(c.InstPinStart) != nI+1 || len(c.NetPinStart) != nN+1 {
		return fmt.Errorf("soa: CSR start arrays have wrong length")
	}
	if int(c.InstPinStart[nI]) != len(c.PinNet) || int(c.NetPinStart[nN]) != len(c.NetPinInst) ||
		len(c.NetPinInst) != len(c.NetPinPin) {
		return fmt.Errorf("soa: CSR payload arrays have wrong length")
	}
	for i := 0; i <= nI; i++ {
		if i > 0 && c.InstPinStart[i] < c.InstPinStart[i-1] {
			return fmt.Errorf("soa: InstPinStart not monotone at %d", i)
		}
	}
	for n := 1; n <= nN; n++ {
		if c.NetPinStart[n] < c.NetPinStart[n-1] {
			return fmt.Errorf("soa: NetPinStart not monotone at %d", n)
		}
	}
	for i := 0; i < nI; i++ {
		if m := c.InstMaster[i]; m < 0 || int(m) >= len(c.Masters) {
			return fmt.Errorf("soa: inst %d: master %d out of range", i, m)
		}
		if s := c.InstSource[i]; s < -1 || int(s) >= len(c.Masters) {
			return fmt.Errorf("soa: inst %d: source %d out of range", i, s)
		}
	}
	// backRef[slot] holds a net that lists the pin (NoNet if none).
	backRef := make([]int32, len(c.PinNet))
	for s := range backRef {
		backRef[s] = NoNet
	}
	portRef := make([]int32, nP)
	for p := range portRef {
		portRef[p] = NoNet
	}
	for n := 0; n < nN; n++ {
		for e := c.NetPinStart[n]; e < c.NetPinStart[n+1]; e++ {
			inst, pin := c.NetPinInst[e], c.NetPinPin[e]
			if inst == PortInst {
				if pin < 0 || int(pin) >= nP {
					return fmt.Errorf("soa: net %d: port %d out of range", n, pin)
				}
				if c.PortNet[pin] != int32(n) {
					return fmt.Errorf("soa: net %d: port %d back reference mismatch", n, pin)
				}
				portRef[pin] = int32(n)
				continue
			}
			if inst < 0 || int(inst) >= nI {
				return fmt.Errorf("soa: net %d: inst %d out of range", n, inst)
			}
			lo, hi := c.InstPinStart[inst], c.InstPinStart[inst+1]
			if pin < 0 || lo+pin >= hi {
				return fmt.Errorf("soa: net %d: pin %d out of range on inst %d", n, pin, inst)
			}
			if c.PinNet[lo+pin] != int32(n) {
				return fmt.Errorf("soa: net %d: inst %d pin %d back reference mismatch", n, inst, pin)
			}
			backRef[lo+pin] = int32(n)
		}
	}
	for i := 0; i < nI; i++ {
		lo, hi := c.InstPinStart[i], c.InstPinStart[i+1]
		for s := lo; s < hi; s++ {
			nn := c.PinNet[s]
			if nn == NoNet {
				continue
			}
			if nn < 0 || int(nn) >= nN {
				return fmt.Errorf("soa: inst %d pin %d: net %d out of range", i, s-lo, nn)
			}
			if backRef[s] != nn {
				return fmt.Errorf("soa: inst %d pin %d: net %d lacks forward edge", i, s-lo, nn)
			}
		}
	}
	for p := 0; p < nP; p++ {
		nn := c.PortNet[p]
		if nn == NoNet {
			continue
		}
		if nn < 0 || int(nn) >= nN {
			return fmt.Errorf("soa: port %d: net %d out of range", p, nn)
		}
		if portRef[p] != nn {
			return fmt.Errorf("soa: port %d: net %d lacks forward edge", p, nn)
		}
	}
	if c.ClockNet != NoNet && (c.ClockNet < 0 || int(c.ClockNet) >= nN) {
		return fmt.Errorf("soa: clock net %d out of range", c.ClockNet)
	}
	return nil
}

// Bytes estimates the heap footprint of the compact arrays (slice payloads
// only; strings count their headers, not their shared backing bytes). Used
// by the scale benchmarks to report bytes/cell.
func (c *Compact) Bytes() int64 {
	var b int64
	b += int64(len(c.MasterWidth))*8 + int64(len(c.MasterRowH))*8 + int64(len(c.MasterHeight))
	b += int64(len(c.MasterPinStart))*4 + int64(len(c.MasterPinOffX))*8 + int64(len(c.MasterPinOffY))*8
	b += int64(len(c.InstName)) * 16
	b += int64(len(c.InstMaster))*4 + int64(len(c.InstSource))*4
	b += int64(len(c.InstX))*8 + int64(len(c.InstY))*8 + int64(len(c.InstFixed))
	b += int64(len(c.InstPinStart))*4 + int64(len(c.PinNet))*4
	b += int64(len(c.NetName)) * 16
	b += int64(len(c.NetPinStart))*4 + int64(len(c.NetPinInst))*4 + int64(len(c.NetPinPin))*4
	b += int64(len(c.PortName))*16 + int64(len(c.PortDir))
	b += int64(len(c.PortX))*8 + int64(len(c.PortY))*8 + int64(len(c.PortNet))*4
	return b
}
