package soa

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/lefdef"
	"mthplace/internal/netlist"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func genDesign(t testing.TB, scale float64, seed int64) *netlist.Design {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = scale
	opt.Seed = seed
	d, err := synth.Generate(tc, lib, synth.TableII()[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// designsEqual compares two designs structurally: same orders, same master
// pointers, equal positions and connectivity.
func designsEqual(t *testing.T, a, b *netlist.Design) {
	t.Helper()
	if a.Name != b.Name || a.Die != b.Die || a.ClockPeriodPs != b.ClockPeriodPs || a.ClockNet != b.ClockNet {
		t.Fatal("design headers differ")
	}
	if a.Tech != b.Tech || a.Lib != b.Lib {
		t.Fatal("tech/library pointers differ")
	}
	if len(a.Insts) != len(b.Insts) || len(a.Nets) != len(b.Nets) || len(a.Ports) != len(b.Ports) {
		t.Fatalf("counts differ: %d/%d/%d vs %d/%d/%d",
			len(a.Insts), len(a.Nets), len(a.Ports), len(b.Insts), len(b.Nets), len(b.Ports))
	}
	for i := range a.Insts {
		x, y := a.Insts[i], b.Insts[i]
		if x.Name != y.Name || x.Master != y.Master || x.Source != y.Source ||
			x.Pos != y.Pos || x.Fixed != y.Fixed || !reflect.DeepEqual(x.PinNets, y.PinNets) {
			t.Fatalf("inst %d differs: %+v vs %+v", i, x, y)
		}
	}
	for n := range a.Nets {
		if a.Nets[n].Name != b.Nets[n].Name || !reflect.DeepEqual(a.Nets[n].Pins, b.Nets[n].Pins) {
			t.Fatalf("net %d differs", n)
		}
	}
	for p := range a.Ports {
		x, y := a.Ports[p], b.Ports[p]
		if x.Name != y.Name || x.Dir != y.Dir || x.Pos != y.Pos || x.Net != y.Net {
			t.Fatalf("port %d differs", p)
		}
	}
}

// TestRoundTripIdentity is the converter invariant: ToDesign(FromDesign(d))
// reproduces d exactly — structurally and byte-for-byte through WriteDEF.
func TestRoundTripIdentity(t *testing.T) {
	d := genDesign(t, 0.02, 1)
	c := FromDesign(d)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	back := c.ToDesign()
	designsEqual(t, d, back)
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	var w1, w2 bytes.Buffer
	if err := lefdef.WriteDEF(&w1, d); err != nil {
		t.Fatal(err)
	}
	if err := lefdef.WriteDEF(&w2, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("DEF serialisation differs after round trip")
	}
}

// TestHPWLAndMinorityMatch checks the SoA metric kernels agree exactly with
// the netlist ones on the same placement.
func TestHPWLAndMinorityMatch(t *testing.T) {
	d := genDesign(t, 0.02, 2)
	c := FromDesign(d)
	if got, want := c.TotalHPWL(), d.TotalHPWL(); got != want {
		t.Fatalf("TotalHPWL %d != %d", got, want)
	}
	for n := int32(0); n < int32(len(d.Nets)); n++ {
		if got, want := c.NetHPWL(n), d.NetHPWL(n); got != want {
			t.Fatalf("NetHPWL(%d) %d != %d", n, got, want)
		}
	}
	if got, want := c.MinorityInstances(), d.MinorityInstances(); !reflect.DeepEqual(got, want) {
		t.Fatalf("MinorityInstances differ: %d vs %d entries", len(got), len(want))
	}
	for i := int32(0); i < int32(len(d.Insts)); i++ {
		in := d.Insts[i]
		if c.InstWidth(i) != in.Width() || c.InstHeight(i) != in.Height() {
			t.Fatalf("inst %d geometry differs", i)
		}
		if c.TrueHeight(i) != in.TrueHeight() {
			t.Fatalf("inst %d true height differs", i)
		}
	}
}

// TestPinPosMatch checks every pin position agrees with netlist.PinPos.
func TestPinPosMatch(t *testing.T) {
	d := genDesign(t, 0.01, 3)
	c := FromDesign(d)
	for ni, nt := range d.Nets {
		base := c.NetPinStart[ni]
		for k, ref := range nt.Pins {
			want := d.PinPos(ref)
			x, y := c.RefPos(c.NetPinInst[base+int32(k)], c.NetPinPin[base+int32(k)])
			if x != want.X || y != want.Y {
				t.Fatalf("net %d pin %d: (%d,%d) != %v", ni, k, x, y, want)
			}
		}
	}
}

// TestCSRQuickcheck validates the CSR invariants on many small random synth
// designs: Validate passes, and the adjacency agrees ref-by-ref with the
// pointer representation in both directions.
func TestCSRQuickcheck(t *testing.T) {
	specs := synth.TableII()
	rng := rand.New(rand.NewSource(7))
	n := 500
	if testing.Short() {
		n = 50
	}
	for it := 0; it < n; it++ {
		tc := tech.Default()
		lib := celllib.New(tc)
		opt := synth.DefaultOptions()
		opt.Seed = rng.Int63()
		opt.Scale = 0.002 + rng.Float64()*0.01
		spec := specs[rng.Intn(len(specs))]
		d, err := synth.Generate(tc, lib, spec, opt)
		if err != nil {
			t.Fatalf("it %d: %v", it, err)
		}
		c := FromDesign(d)
		if err := c.Validate(); err != nil {
			t.Fatalf("it %d (%s seed %d): %v", it, spec.Name(), opt.Seed, err)
		}
		// Pin→net direction, slot by slot.
		for i := int32(0); i < int32(len(d.Insts)); i++ {
			s, e := c.InstPinStart[i], c.InstPinStart[i+1]
			if int(e-s) != len(d.Insts[i].PinNets) {
				t.Fatalf("it %d: inst %d pin count", it, i)
			}
			for p := s; p < e; p++ {
				if c.PinNet[p] != d.Insts[i].PinNets[p-s] {
					t.Fatalf("it %d: inst %d pin %d net mismatch", it, i, p-s)
				}
			}
		}
		// Net→pin direction, ref by ref.
		for ni, nt := range d.Nets {
			s, e := c.NetPinStart[ni], c.NetPinStart[ni+1]
			if int(e-s) != len(nt.Pins) {
				t.Fatalf("it %d: net %d ref count", it, ni)
			}
			for k := s; k < e; k++ {
				ref := nt.Pins[k-s]
				if c.NetPinInst[k] != ref.Inst || c.NetPinPin[k] != ref.Pin {
					t.Fatalf("it %d: net %d ref %d mismatch", it, ni, k-s)
				}
			}
		}
	}
}

// TestValidateCatchesCorruption checks Validate rejects broken adjacency.
func TestValidateCatchesCorruption(t *testing.T) {
	base := genDesign(t, 0.01, 4)
	corrupt := []struct {
		name string
		mut  func(c *Compact)
	}{
		{"pin to wrong net", func(c *Compact) {
			for p, n := range c.PinNet {
				if n >= 0 {
					c.PinNet[p] = (n + 1) % int32(c.NumNets())
					return
				}
			}
		}},
		{"net ref to wrong pin", func(c *Compact) {
			for k, inst := range c.NetPinInst {
				if inst != PortInst {
					c.NetPinPin[k]++
					return
				}
			}
		}},
		{"non-monotone inst starts", func(c *Compact) {
			c.InstPinStart[1] = c.InstPinStart[len(c.InstPinStart)-1] + 1
		}},
		{"net index out of range", func(c *Compact) {
			c.PinNet[0] = int32(c.NumNets())
		}},
		{"port wrong net", func(c *Compact) {
			if len(c.PortNet) > 0 && c.PortNet[0] >= 0 {
				c.PortNet[0] = (c.PortNet[0] + 1) % int32(c.NumNets())
			}
		}},
	}
	for _, tc := range corrupt {
		c := FromDesign(base)
		// Deep-copy the mutable slices so cases stay independent.
		c.PinNet = append([]int32(nil), c.PinNet...)
		c.NetPinPin = append([]int32(nil), c.NetPinPin...)
		c.InstPinStart = append([]int32(nil), c.InstPinStart...)
		c.PortNet = append([]int32(nil), c.PortNet...)
		tc.mut(c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s: corruption not detected", tc.name)
		}
	}
}

// TestBuildRowListsAndOverlap exercises the index-linked row lists on a
// synthetic single-height strip.
func TestBuildRowListsAndOverlap(t *testing.T) {
	d := genDesign(t, 0.01, 5)
	c := FromDesign(d)
	// Stack all cells in one row, left to right, no overlap.
	x := int64(0)
	for i := int32(0); i < int32(c.NumInsts()); i++ {
		c.InstX[i], c.InstY[i] = x, 0
		x += c.InstWidth(i)
	}
	rl, err := BuildRowLists(c, 1, func(i int32) int32 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if got := rl.RowLen(0); got != c.NumInsts() {
		t.Fatalf("row 0 has %d cells, want %d", got, c.NumInsts())
	}
	if err := rl.CheckNoOverlap(c); err != nil {
		t.Fatal(err)
	}
	// Introduce one overlap; the walk must find it.
	c.InstX[1] = c.InstX[0] + c.InstWidth(0) - 1
	rl, err = BuildRowLists(c, 1, func(i int32) int32 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if err := rl.CheckNoOverlap(c); err == nil {
		t.Fatal("overlap not detected")
	}
}

// TestBytesAccountsArrays sanity-checks the footprint estimate scales with
// the design and stays far below the AoS pointer graph for large designs.
func TestBytesAccountsArrays(t *testing.T) {
	small := FromDesign(genDesign(t, 0.01, 6))
	big := FromDesign(genDesign(t, 0.05, 6))
	if small.Bytes() <= 0 || big.Bytes() <= small.Bytes() {
		t.Fatalf("Bytes() not monotone: %d vs %d", small.Bytes(), big.Bytes())
	}
}
