//go:build !parseq

package par

import "runtime"

// defaultJobs sizes the pool from the scheduler's processor count.
func defaultJobs() int { return runtime.GOMAXPROCS(0) }
