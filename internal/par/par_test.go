package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func withJobs(t *testing.T, n int) {
	t.Helper()
	old := Default.SetJobs(n)
	t.Cleanup(func() { Default.SetJobs(old) })
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 33} {
		withJobs(t, jobs)
		for _, n := range []int{0, 1, 7, 256, 1000} {
			hits := make([]int32, n)
			For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("jobs=%d n=%d: index %d hit %d times", jobs, n, i, h)
				}
			}
		}
	}
}

func TestForErrReturnsLowestObservedIndex(t *testing.T) {
	withJobs(t, 8)
	wantErr := errors.New("boom")
	err := ForErr(100, func(i int) error {
		if i%10 == 3 {
			return fmt.Errorf("i=%d: %w", i, wantErr)
		}
		return nil
	})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	// The reported error is the lowest-indexed among the observed failures;
	// with dynamic scheduling an earlier failing index may have been skipped,
	// but index 3 is always claimed before any error can stop the run when
	// jobs=1.
	withJobs(t, 1)
	err = ForErr(100, func(i int) error {
		if i%10 == 3 {
			return fmt.Errorf("i=%d: %w", i, wantErr)
		}
		return nil
	})
	if err == nil || err.Error() != "i=3: boom" {
		t.Fatalf("sequential first error = %v, want i=3", err)
	}
	if err := ForErr(50, func(int) error { return nil }); err != nil {
		t.Fatalf("nil-error run returned %v", err)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, jobs := range []int{1, 8} {
		withJobs(t, jobs)
		out, err := Map(500, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d", jobs, i, v)
			}
		}
	}
	withJobs(t, 8)
	if _, err := Map(10, func(i int) (int, error) {
		if i == 7 {
			return 0, errors.New("x")
		}
		return i, nil
	}); err == nil {
		t.Fatal("Map must propagate errors")
	}
}

func TestForChunksCanonicalBoundaries(t *testing.T) {
	// Chunk boundaries must depend only on n, not on the worker count.
	for _, n := range []int{0, 1, chunkSize - 1, chunkSize, chunkSize + 1, 5*chunkSize + 17} {
		var bounds1, bounds8 [][2]int
		withJobs(t, 1)
		ForChunks(n, func(ci, lo, hi int) { bounds1 = append(bounds1, [2]int{lo, hi}) })
		withJobs(t, 8)
		got := make([][2]int, NumChunks(n))
		ForChunks(n, func(ci, lo, hi int) { got[ci] = [2]int{lo, hi} })
		bounds8 = got
		if len(bounds1) != NumChunks(n) || len(bounds8) != NumChunks(n) {
			t.Fatalf("n=%d: chunk counts %d/%d, want %d", n, len(bounds1), len(bounds8), NumChunks(n))
		}
		covered := 0
		for ci := range bounds8 {
			lo, hi := bounds8[ci][0], bounds8[ci][1]
			if lo != ci*chunkSize || hi <= lo || hi > n {
				t.Fatalf("n=%d chunk %d: bad bounds [%d,%d)", n, ci, lo, hi)
			}
			covered += hi - lo
		}
		if covered != n {
			t.Fatalf("n=%d: chunks cover %d", n, covered)
		}
	}
}

// TestChunkedFloatReductionDeterministic is the contract the k-means
// centroid accumulation relies on: per-chunk partials merged in chunk order
// give bit-identical sums at any worker count.
func TestChunkedFloatReductionDeterministic(t *testing.T) {
	n := 10*chunkSize + 31
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1e-3 * float64((i*2654435761)%1000003) / 1000003
	}
	sum := func() float64 {
		parts := make([]float64, NumChunks(n))
		ForChunks(n, func(ci, lo, hi int) {
			var s float64
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			parts[ci] = s
		})
		var total float64
		for _, p := range parts {
			total += p
		}
		return total
	}
	withJobs(t, 1)
	a := sum()
	withJobs(t, 7)
	b := sum()
	if a != b {
		t.Fatalf("chunked reduction differs: %x vs %x", a, b)
	}
}

func TestNestedCallsStayBounded(t *testing.T) {
	withJobs(t, 4)
	var peak, cur atomic.Int64
	For(16, func(int) {
		For(16, func(int) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			cur.Add(-1)
		})
	})
	// Callers always work themselves; extra workers are bounded by jobs-1,
	// so at most jobs goroutines may ever execute iterations at once even
	// when calls nest.
	if got := peak.Load(); got > 4 {
		t.Fatalf("peak concurrency %d exceeds jobs=4", got)
	}
}

func TestWorkerPanicPropagates(t *testing.T) {
	withJobs(t, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate to the caller")
		}
	}()
	For(64, func(i int) {
		if i == 13 {
			panic("worker 13")
		}
	})
}

func TestSetJobsRoundTrip(t *testing.T) {
	old := Default.SetJobs(3)
	if Jobs() != 3 {
		t.Fatalf("Jobs() = %d", Jobs())
	}
	Default.SetJobs(0) // reset to default
	if Jobs() < 1 {
		t.Fatalf("default jobs %d", Jobs())
	}
	Default.SetJobs(old)
}

func TestGrainFor(t *testing.T) {
	cases := []struct {
		n, workers, want int
	}{
		{0, 8, 1},
		{1, 8, 1},
		{100, 8, 1},                     // fewer iterations than blocks: unit grain
		{8 * blocksPerWorker * 8, 8, 8}, // exactly blocksPerWorker blocks per worker
		{1 << 20, 4, 1 << 20 / (4 * 8)},
		{1 << 20, 0, 1 << 20 / 8}, // degenerate worker count clamps to 1
	}
	for _, c := range cases {
		if got := grainFor(c.n, c.workers); got != c.want {
			t.Errorf("grainFor(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
	// Whatever the grain, every worker must still see work: the block count
	// at the chosen grain is at least the worker count for large n.
	for _, w := range []int{1, 2, 8, 64} {
		n := 1 << 16
		g := grainFor(n, w)
		if blocks := (n + g - 1) / g; blocks < w {
			t.Errorf("workers=%d: only %d blocks at grain %d", w, blocks, g)
		}
	}
}

// BenchmarkForCheapIterations measures the scheduling overhead on
// micro-iterations, the case the claim grain exists for.
func BenchmarkForCheapIterations(b *testing.B) {
	var sink atomic.Int64
	for b.Loop() {
		For(1<<16, func(i int) {
			if i&1023 == 0 {
				sink.Add(1)
			}
		})
	}
}

// TestStress hammers nested For/Map under the race detector.
func TestStress(t *testing.T) {
	withJobs(t, 8)
	for round := 0; round < 20; round++ {
		out, err := Map(32, func(i int) (int64, error) {
			var local int64
			ForChunks(512, func(ci, lo, hi int) {
				for j := lo; j < hi; j++ {
					atomic.AddInt64(&local, int64(j%7))
				}
			})
			return local, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != out[0] {
				t.Fatalf("round %d: out[%d]=%d differs from out[0]=%d", round, i, v, out[0])
			}
		}
	}
}
