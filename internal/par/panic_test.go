package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// mustPanic runs fn and returns the recovered panic value, failing the
// test if fn returns normally.
func mustPanic(t *testing.T, fn func()) (v any) {
	t.Helper()
	defer func() { v = recover() }()
	fn()
	t.Fatal("no panic propagated to the caller")
	return nil
}

// TestNestedPoolPanicPropagates: a panic in an inner pool's worker must
// climb through both pool layers to the outermost caller — the inner run
// re-raises it on the outer worker, whose own recover hands it to the
// outer caller. One recover at the API boundary is then enough no matter
// how deep the parallel nesting goes, which is exactly what the flow
// runner and job server rely on.
func TestNestedPoolPanicPropagates(t *testing.T) {
	outer, inner := NewPool(4), NewPool(4)
	v := mustPanic(t, func() {
		outer.For(8, func(i int) {
			inner.For(8, func(j int) {
				if i == 3 && j == 5 {
					panic("inner worker 3/5")
				}
			})
		})
	})
	if v != "inner worker 3/5" {
		t.Fatalf("panic value = %v, want the inner worker's", v)
	}
}

// TestPoolSurvivesPanic: after a propagated panic the pool's extra-worker
// budget is fully released and later parallel work still completes; a
// panicking job must not poison the shared pool for its neighbours.
func TestPoolSurvivesPanic(t *testing.T) {
	p := NewPool(4)
	for round := 0; round < 3; round++ {
		mustPanic(t, func() {
			p.For(64, func(i int) {
				if i == 17 {
					panic("round trip")
				}
			})
		})
		if got := p.extraInUse.Load(); got != 0 {
			t.Fatalf("round %d: %d extra workers still held after panic", round, got)
		}
	}
	var ran atomic.Int64
	p.For(128, func(int) { ran.Add(1) })
	if ran.Load() != 128 {
		t.Fatalf("post-panic For ran %d/128 iterations", ran.Load())
	}
}

// TestSequentialPanicPropagates: the Jobs=1 fast path runs on the calling
// goroutine and must panic just as loudly.
func TestSequentialPanicPropagates(t *testing.T) {
	p := NewPool(1)
	if v := mustPanic(t, func() {
		p.For(4, func(i int) {
			if i == 2 {
				panic("sequential")
			}
		})
	}); v != "sequential" {
		t.Fatalf("panic value = %v", v)
	}
}

// TestPanicLeavesNoGoroutines: recruited workers exit even when the body
// panics; the goroutine count settles back to its baseline.
func TestPanicLeavesNoGoroutines(t *testing.T) {
	p := NewPool(8)
	base := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		mustPanic(t, func() {
			p.For(32, func(i int) {
				if i%7 == 0 {
					panic(i)
				}
			})
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutines leaked: %d running, baseline %d", n, base)
	}
}
