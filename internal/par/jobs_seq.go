//go:build parseq

package par

// defaultJobs under the parseq build tag forces a fully sequential binary
// (`go build -tags parseq ./...`), used by ablations that must rule out any
// scheduling influence.
func defaultJobs() int { return 1 }
