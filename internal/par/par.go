// Package par is the shared parallel execution layer: a bounded worker pool
// plus parallel-for / ordered-map primitives used by the RAP cost-model
// build, the k-means clustering and the experiment matrix.
//
// Design rules (see DESIGN.md §7):
//
//   - The pool is bounded globally. Jobs() workers exist in total, across
//     nested calls: a caller always executes iterations itself and recruits
//     at most Jobs()−1 extra goroutines from a process-wide budget, so
//     nesting (experiment matrix → BuildModel → …) never oversubscribes the
//     machine and never deadlocks.
//   - Results are deterministic. Iterations write only their own slot
//     (For/Map), and floating-point reductions go through ForChunks, whose
//     chunk boundaries depend only on the problem size — never on the worker
//     count — so partial sums merge in a fixed order and jobs=1 and jobs=N
//     produce bit-identical results.
//   - The worker count defaults to runtime.GOMAXPROCS, can be pinned with
//     the MTHPLACE_JOBS environment variable or SetJobs (the -jobs flag),
//     and collapses to 1 under the `parseq` build tag so ablations can force
//     a fully sequential binary.
package par

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"
)

var jobs atomic.Int64

func init() {
	n := defaultJobs()
	if s := os.Getenv("MTHPLACE_JOBS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	jobs.Store(int64(n))
}

// Jobs returns the current worker-pool bound.
func Jobs() int { return int(jobs.Load()) }

// SetJobs bounds the pool to n workers (1 = fully sequential). n <= 0
// resets to the default (GOMAXPROCS, or the MTHPLACE_JOBS override). It
// returns the previous bound so callers can restore it.
func SetJobs(n int) int {
	if n <= 0 {
		n = defaultJobs()
		if s := os.Getenv("MTHPLACE_JOBS"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
	}
	return int(jobs.Swap(int64(n)))
}

// extraInUse counts extra worker goroutines currently running across all
// concurrent For/Map calls. The budget is Jobs()−1: callers always work
// themselves, so nested calls degrade gracefully to sequential execution
// instead of deadlocking or oversubscribing.
var extraInUse atomic.Int64

// acquireExtra grants up to want extra workers from the global budget.
func acquireExtra(want int) int {
	if want <= 0 {
		return 0
	}
	for {
		cur := extraInUse.Load()
		free := int64(Jobs()) - 1 - cur
		if free <= 0 {
			return 0
		}
		grant := int64(want)
		if grant > free {
			grant = free
		}
		if extraInUse.CompareAndSwap(cur, cur+grant) {
			return int(grant)
		}
	}
}

func releaseExtra(n int) {
	if n > 0 {
		extraInUse.Add(int64(-n))
	}
}

// run executes body(i) for i in [0, n) with dynamic scheduling across the
// caller plus up to extra recruited workers. Worker panics are captured and
// re-raised on the calling goroutine. stop aborts the claiming of further
// iterations (used by ForErr).
func run(n int, stop *atomic.Bool, body func(i int)) {
	extra := 0
	if n > 1 {
		extra = acquireExtra(n - 1)
	}
	if extra == 0 {
		// Sequential fast path on the calling goroutine; panics propagate
		// naturally.
		for i := 0; i < n; i++ {
			if stop != nil && stop.Load() {
				break
			}
			body(i)
		}
		return
	}
	var panicMu sync.Mutex
	var panicked any
	var next atomic.Int64
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
				if stop != nil {
					stop.Store(true)
				}
			}
		}()
		for {
			if stop != nil && stop.Load() {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			body(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(extra)
	for k := 0; k < extra; k++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	releaseExtra(extra)
	panicMu.Lock()
	p := panicked
	panicMu.Unlock()
	if p != nil {
		panic(p)
	}
}

// For runs fn(i) for every i in [0, n) on the pool and waits for all of
// them. Iterations must be independent and may only write state owned by
// their own index; under that contract the result is identical for any
// worker count.
func For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	run(n, nil, fn)
}

// ForErr is For with error propagation: once any iteration fails, no new
// iterations start, and the error with the lowest index among the observed
// failures is returned. A nil return guarantees every iteration ran.
func ForErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var stop atomic.Bool
	var mu sync.Mutex
	errIdx := n
	var firstErr error
	run(n, &stop, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < errIdx {
				errIdx, firstErr = i, err
			}
			mu.Unlock()
			stop.Store(true)
		}
	})
	return firstErr
}

// Map runs fn over [0, n) on the pool and collects the results in index
// order, regardless of completion order. On error the partial results are
// discarded and the lowest-indexed observed error is returned.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForErr(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// chunkSize is the canonical reduction granule. It is a constant so that
// chunk boundaries — and therefore the order in which per-chunk partial
// float sums are merged — depend only on the problem size, never on the
// worker count. Reductions built on ForChunks are bit-identical at any
// Jobs() setting.
const chunkSize = 256

// NumChunks returns the canonical chunk count for n items.
func NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + chunkSize - 1) / chunkSize
}

// ForChunks partitions [0, n) into the canonical chunks and runs
// fn(ci, lo, hi) for each chunk ci covering [lo, hi). Reduction users
// accumulate into per-chunk scratch inside fn and merge the chunks serially
// in index order afterwards; that merge order is what makes float
// reductions deterministic across worker counts.
func ForChunks(n int, fn func(ci, lo, hi int)) {
	nch := NumChunks(n)
	if nch == 0 {
		return
	}
	For(nch, func(ci int) {
		lo := ci * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		fn(ci, lo, hi)
	})
}
