// Package par is the shared parallel execution layer: bounded worker pools
// plus parallel-for / ordered-map primitives used by the RAP cost-model
// build, the k-means clustering, the experiment matrix and the placement
// job server.
//
// Design rules (see DESIGN.md §7):
//
//   - Each Pool is bounded. Jobs() workers exist in total across nested
//     calls on that pool: a caller always executes iterations itself and
//     recruits at most Jobs()−1 extra goroutines from the pool's budget, so
//     nesting (experiment matrix → BuildModel → …) never oversubscribes the
//     machine and never deadlocks. Distinct pools have distinct budgets —
//     a server running concurrent placement jobs gives each job its own
//     pool so one job's Jobs setting cannot stomp another's.
//   - Results are deterministic. Iterations write only their own slot
//     (For/Map), and floating-point reductions go through ForChunks, whose
//     chunk boundaries depend only on the problem size — never on the worker
//     count — so partial sums merge in a fixed order and jobs=1 and jobs=N
//     produce bit-identical results.
//   - The worker count defaults to runtime.GOMAXPROCS, can be pinned with
//     the MTHPLACE_JOBS environment variable, per pool with NewPool (the
//     -jobs flag), or process-wide with SetJobs (deprecated), and collapses
//     to 1 under the `parseq` build tag so ablations can force a fully
//     sequential binary.
//
// Pools travel with the work they bound: WithPool attaches a pool to a
// context and FromContext recovers it (falling back to the process-wide
// Default), so deeply nested stages pick up their runner's pool without
// threading an extra parameter through every signature.
package par

import (
	"context"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker budget. The zero value is not usable; construct
// with NewPool. All methods are safe for concurrent use.
type Pool struct {
	jobs atomic.Int64
	// extraInUse counts extra worker goroutines currently running across
	// all concurrent For/Map calls on this pool. The budget is Jobs()−1:
	// callers always work themselves, so nested calls degrade gracefully
	// to sequential execution instead of deadlocking or oversubscribing.
	extraInUse atomic.Int64
}

// Default is the process-wide pool used by the package-level helpers and by
// work that carries no pool in its context. Its bound comes from
// GOMAXPROCS, the MTHPLACE_JOBS environment variable, or SetJobs.
var Default = NewPool(0)

// NewPool returns a pool bounded to n workers (1 = fully sequential).
// n <= 0 uses the default bound (GOMAXPROCS, or the MTHPLACE_JOBS
// environment override, or 1 under the parseq build tag).
func NewPool(n int) *Pool {
	p := &Pool{}
	p.jobs.Store(int64(resolveJobs(n)))
	return p
}

// resolveJobs maps a requested bound to an effective one.
func resolveJobs(n int) int {
	if n > 0 {
		return n
	}
	n = defaultJobs()
	if s := os.Getenv("MTHPLACE_JOBS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	return n
}

// Jobs returns the pool's current worker bound.
func (p *Pool) Jobs() int { return int(p.jobs.Load()) }

// SetJobs bounds the pool to n workers (n <= 0 resets to the default) and
// returns the previous bound so callers can restore it.
func (p *Pool) SetJobs(n int) int {
	return int(p.jobs.Swap(int64(resolveJobs(n))))
}

// Jobs returns the Default pool's worker bound.
func Jobs() int { return Default.Jobs() }

// poolKey carries a *Pool in a context.
type poolKey struct{}

// WithPool returns a context carrying p; stages below recover it with
// FromContext. A nil p returns ctx unchanged.
func WithPool(ctx context.Context, p *Pool) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, poolKey{}, p)
}

// FromContext returns the pool carried by ctx, or Default if none is.
func FromContext(ctx context.Context) *Pool {
	if ctx != nil {
		if p, ok := ctx.Value(poolKey{}).(*Pool); ok {
			return p
		}
	}
	return Default
}

// acquireExtra grants up to want extra workers from the pool's budget.
func (p *Pool) acquireExtra(want int) int {
	if want <= 0 {
		return 0
	}
	for {
		cur := p.extraInUse.Load()
		free := int64(p.Jobs()) - 1 - cur
		if free <= 0 {
			return 0
		}
		grant := int64(want)
		if grant > free {
			grant = free
		}
		if p.extraInUse.CompareAndSwap(cur, cur+grant) {
			return int(grant)
		}
	}
}

func (p *Pool) releaseExtra(n int) {
	if n > 0 {
		p.extraInUse.Add(int64(-n))
	}
}

// blocksPerWorker sets the scheduling granularity: the grain is chosen so a
// full run hands out about this many blocks to every worker. Larger values
// balance uneven iteration costs better; smaller values cut atomic traffic
// on the shared claim counter. Eight bounds the load imbalance from the last
// uneven block at ~1/(8·workers) of the run while already amortizing the
// counter to a negligible cost for cheap iterations.
const blocksPerWorker = 8

// grainFor returns the number of consecutive iterations a worker claims per
// fetch on the shared counter. It is GOMAXPROCS-aware through workers (the
// pool bound): enough blocks remain for dynamic load balancing across every
// worker, but cheap micro-iterations (per-cell loops in legalization, row
// scans) are claimed hundreds at a time instead of one atomic RMW each.
// Scheduling order never affects results — For/Map iterations write only
// their own slot — so the grain can depend on the worker count even though
// reduction chunk boundaries (chunkSize) must not.
func grainFor(n, workers int) int {
	if workers < 1 {
		workers = 1
	}
	g := n / (workers * blocksPerWorker)
	if g < 1 {
		g = 1
	}
	return g
}

// run executes body(i) for i in [0, n) with dynamic scheduling across the
// caller plus up to extra recruited workers. Workers claim blocks of
// grainFor(n, Jobs()) consecutive iterations from a shared counter. Worker
// panics are captured and re-raised on the calling goroutine. stop aborts
// the claiming of further iterations (used by ForErr).
func (p *Pool) run(n int, stop *atomic.Bool, body func(i int)) {
	grain := grainFor(n, p.Jobs())
	extra := 0
	if n > 1 {
		// No point recruiting more workers than there are blocks to claim.
		blocks := (n + grain - 1) / grain
		extra = p.acquireExtra(blocks - 1)
	}
	if extra == 0 {
		// Sequential fast path on the calling goroutine; panics propagate
		// naturally.
		for i := 0; i < n; i++ {
			if stop != nil && stop.Load() {
				break
			}
			body(i)
		}
		return
	}
	var panicMu sync.Mutex
	var panicked any
	var next atomic.Int64
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
				if stop != nil {
					stop.Store(true)
				}
			}
		}()
		for {
			if stop != nil && stop.Load() {
				return
			}
			lo := int(next.Add(int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				if stop != nil && stop.Load() {
					return
				}
				body(i)
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(extra)
	for k := 0; k < extra; k++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	p.releaseExtra(extra)
	panicMu.Lock()
	pk := panicked
	panicMu.Unlock()
	if pk != nil {
		panic(pk)
	}
}

// For runs fn(i) for every i in [0, n) on the pool and waits for all of
// them. Iterations must be independent and may only write state owned by
// their own index; under that contract the result is identical for any
// worker count.
func (p *Pool) For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	p.run(n, nil, fn)
}

// ForErr is For with error propagation: once any iteration fails, no new
// iterations start, and the error with the lowest index among the observed
// failures is returned. A nil return guarantees every iteration ran.
func (p *Pool) ForErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var stop atomic.Bool
	var mu sync.Mutex
	errIdx := n
	var firstErr error
	p.run(n, &stop, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < errIdx {
				errIdx, firstErr = i, err
			}
			mu.Unlock()
			stop.Store(true)
		}
	})
	return firstErr
}

// ForChunks partitions [0, n) into the canonical chunks and runs
// fn(ci, lo, hi) for each chunk ci covering [lo, hi). Reduction users
// accumulate into per-chunk scratch inside fn and merge the chunks serially
// in index order afterwards; that merge order is what makes float
// reductions deterministic across worker counts.
func (p *Pool) ForChunks(n int, fn func(ci, lo, hi int)) {
	nch := NumChunks(n)
	if nch == 0 {
		return
	}
	p.For(nch, func(ci int) {
		lo := ci * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		fn(ci, lo, hi)
	})
}

// For runs fn over [0, n) on the Default pool; see (*Pool).For.
func For(n int, fn func(i int)) { Default.For(n, fn) }

// ForErr runs fn over [0, n) on the Default pool; see (*Pool).ForErr.
func ForErr(n int, fn func(i int) error) error { return Default.ForErr(n, fn) }

// ForChunks runs fn over the canonical chunks of [0, n) on the Default
// pool; see (*Pool).ForChunks.
func ForChunks(n int, fn func(ci, lo, hi int)) { Default.ForChunks(n, fn) }

// MapOn runs fn over [0, n) on pool p and collects the results in index
// order, regardless of completion order. On error the partial results are
// discarded and the lowest-indexed observed error is returned. (A
// package-level generic function rather than a method: Go methods cannot
// introduce type parameters.)
func MapOn[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForErr(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Map runs fn over [0, n) on the Default pool; see MapOn.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapOn[T](Default, n, fn)
}

// chunkSize is the canonical reduction granule. It is a constant so that
// chunk boundaries — and therefore the order in which per-chunk partial
// float sums are merged — depend only on the problem size, never on the
// worker count. Reductions built on ForChunks are bit-identical at any
// Jobs() setting.
const chunkSize = 256

// NumChunks returns the canonical chunk count for n items.
func NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + chunkSize - 1) / chunkSize
}
