package rap_test

import (
	"context"
	"testing"

	"mthplace/internal/core"
	"mthplace/internal/milp"
	"mthplace/internal/oracle"
	"mthplace/internal/rap"
)

// fuzzReader doles out fuzz input bytes, returning 0 past the end so every
// input decodes to some instance.
type fuzzReader struct {
	data []byte
	pos  int
}

func (b *fuzzReader) next() byte {
	if b.pos >= len(b.data) {
		return 0
	}
	v := b.data[b.pos]
	b.pos++
	return v
}

// modelFromBytes decodes an arbitrary byte string into a small RAP model:
// 1-5 clusters over 2-6 row pairs with slack capacity, so the instance is
// always feasible and the oracle's state space stays tiny. Same layout as
// the oracle fuzz decoder so corpus entries transfer between the two.
func modelFromBytes(data []byte) *core.Model {
	br := &fuzzReader{data: data}
	nC := int(br.next())%5 + 1
	nR := int(br.next())%5 + 2
	nminR := int(br.next())%nR + 1

	m := &core.Model{Clusters: &core.Clusters{}, NR: nR, NminR: nminR}
	var total, maxW int64
	for c := 0; c < nC; c++ {
		w := int64(br.next())%100 + 1
		m.Clusters.Width = append(m.Clusters.Width, w)
		m.Clusters.Members = append(m.Clusters.Members, []int32{int32(c)})
		m.Clusters.CenterX = append(m.Clusters.CenterX, float64(c))
		m.Clusters.CenterY = append(m.Clusters.CenterY, float64(c))
		total += w
		if w > maxW {
			maxW = w
		}
		row := make([]float64, nR)
		for r := range row {
			row[r] = float64(int(br.next()) * 4)
		}
		m.Cost = append(m.Cost, row)
	}
	m.Cap = (total+int64(nminR)-1)/int64(nminR) + maxW
	for r := 0; r < nR; r++ {
		m.PairCenterY = append(m.PairCenterY, int64(r)*1000+500)
	}
	return m
}

// FuzzRAPSolve decodes arbitrary bytes into a small feasible RAP instance
// and checks the structure-aware backend against the brute-force oracle:
// the objective must equal the true optimum, the assignment must pass the
// Eq. 3/4/5 audit, optimality must be proven, and the reported lower bound
// must never exceed the incumbent.
func FuzzRAPSolve(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 4, 2, 50, 10, 20, 30, 40, 7, 99, 1, 2, 3, 4})
	f.Add([]byte{5, 5, 5, 1, 1, 1, 1, 1, 255, 255, 0, 0, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := modelFromBytes(data)

		exact, err := oracle.Solve(m)
		if err != nil {
			t.Fatalf("slack-capacity instance reported infeasible: %v", err)
		}

		got, err := core.Solve(context.Background(), m, core.SolveOptions{
			Backend: core.BackendRAP,
			MILP:    milp.Options{MaxNodes: 5_000_000},
			Degrade: core.DegradeStrict,
		})
		if err != nil {
			t.Fatalf("rap backend failed on slack-capacity instance: %v", err)
		}
		if err := oracle.Feasibility(m, got); err != nil {
			t.Fatalf("rap result fails audit: %v", err)
		}
		if !got.Stats.Optimal {
			t.Fatalf("rap did not prove optimality (status %v)", got.Stats.MILPStatus)
		}
		if got.Objective != exact.Objective {
			t.Fatalf("rap objective %v, oracle optimum %v", got.Objective, exact.Objective)
		}

		// Drive the raw solver too, so the bound invariant is fuzzed without
		// core's pruning in front of it.
		inst := &rap.Instance{
			NR: m.NR, NminR: m.NminR, Cap: m.Cap, Width: m.Clusters.Width,
			Cand: make([][]rap.Arc, m.Clusters.N()),
		}
		for c := range inst.Cand {
			arcs := make([]rap.Arc, m.NR)
			for r := 0; r < m.NR; r++ {
				arcs[r] = rap.Arc{Row: int32(r), Cost: m.Cost[c][r]}
			}
			inst.Cand[c] = arcs
		}
		res, err := rap.Solve(context.Background(), inst, nil, rap.Options{})
		if err != nil {
			t.Fatalf("raw rap.Solve: %v", err)
		}
		if res.Status != milp.Optimal {
			t.Fatalf("raw solve status %v, want optimal", res.Status)
		}
		if res.Obj != exact.Objective {
			t.Fatalf("raw rap objective %v, oracle optimum %v", res.Obj, exact.Objective)
		}
		if res.Bound > res.Obj+1e-9 {
			t.Fatalf("lower bound %v exceeds objective %v", res.Bound, res.Obj)
		}
	})
}
