package rap

import (
	"context"
	"fmt"
	"math"
	"slices"

	"mthplace/internal/milp"
)

// Solver is the incremental re-solve handle: it owns an Instance and keeps
// the last solve's assignment duals and incumbent across perturbations, so a
// re-solve after a small edit (cluster added or removed, one cost row
// changed) warm-starts instead of solving cold. The duals are per-cluster
// state, kept aligned through cluster edits (an added cluster starts at its
// cheapest cost, a removed cluster's dual is dropped), and the incumbent is
// repaired against the edited instance before reuse, so warm starts can only
// cost quality relative to a cold solve, never correctness.
//
// Solver is not safe for concurrent use.
type Solver struct {
	in     *Instance
	lambda []float64
	assign []int32
	solved bool
	// lb is a proven lower bound on the *current* instance's optimum,
	// transferred from the last solve through the perturbations since: a
	// cost edit shifts it by the minimum per-row delta, an added cluster
	// adds its cheapest cost, and edits whose effect cannot be bounded
	// (cluster removal, width decrease, new candidate rows) reset it to
	// −Inf. Feeding it to the search as a root-bound floor lets a re-solve
	// prove an unchanged optimum without expanding any nodes.
	lb float64
}

// coldMu is the cold-start dual for a cluster: its cheapest candidate cost
// (the same initialization the root solve uses without warm duals).
func coldMu(arcs []Arc) float64 {
	m := math.Inf(1)
	for _, a := range arcs {
		if a.Cost < m {
			m = a.Cost
		}
	}
	return m
}

// minCostDelta returns min over newArcs of (newCost − oldCost on the same
// row), the amount a transferred lower bound may safely shift by after a
// cost-row edit. A new row with no old counterpart returns −Inf: solutions
// using it have no image in the old instance, so no bound transfers. Both
// lists are sorted by row (Instance.Validate enforces this).
func minCostDelta(oldArcs, newArcs []Arc) float64 {
	d := math.Inf(1)
	i := 0
	for _, na := range newArcs {
		for i < len(oldArcs) && oldArcs[i].Row < na.Row {
			i++
		}
		if i >= len(oldArcs) || oldArcs[i].Row != na.Row {
			return math.Inf(-1)
		}
		if dd := na.Cost - oldArcs[i].Cost; dd < d {
			d = dd
		}
	}
	if math.IsInf(d, 1) { // no arcs: Validate rejects this, but stay safe
		return math.Inf(-1)
	}
	return d
}

// WarmRootIters is the root subgradient budget of a warm re-solve when
// Options.RootIters is unset: the inherited duals are already near the dual
// optimum, so the root needs far fewer sweeps than a cold solve.
const WarmRootIters = 32

// NewSolver returns an incremental solver owning a deep copy of in, so
// later caller mutations of in do not corrupt the solver's state.
func NewSolver(in *Instance) (*Solver, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	cp := &Instance{
		NR:    in.NR,
		NminR: in.NminR,
		Cap:   in.Cap,
		Width: slices.Clone(in.Width),
		Cand:  make([][]Arc, len(in.Cand)),
	}
	for c, cs := range in.Cand {
		cp.Cand[c] = slices.Clone(cs)
	}
	lam := make([]float64, len(cp.Width))
	for c, cs := range cp.Cand {
		lam[c] = coldMu(cs)
	}
	return &Solver{in: cp, lambda: lam, lb: math.Inf(-1)}, nil
}

// Instance returns the solver's current instance. Callers must treat it as
// read-only and perturb it through the Set/Add/Remove methods instead.
func (s *Solver) Instance() *Instance { return s.in }

// Solve runs the search, warm-starting from the previous solve's duals and
// incumbent when one exists. The first call is a cold solve.
func (s *Solver) Solve(ctx context.Context, opt Options) (*Result, error) {
	var warm []int32
	var lam0 []float64
	if s.solved {
		warm = s.assign
		lam0 = s.lambda
		if opt.RootIters <= 0 {
			opt.RootIters = WarmRootIters
		}
	}
	res, err := solve(ctx, s.in, warm, lam0, s.lb, opt)
	if err != nil {
		return nil, err
	}
	if len(res.Lambda) == len(s.lambda) {
		copy(s.lambda, res.Lambda)
	}
	if len(res.Assign) == len(s.in.Width) {
		s.assign = slices.Clone(res.Assign)
		s.solved = true
	} else {
		s.solved = false
	}
	switch {
	case res.Status == milp.Optimal:
		s.lb = res.Obj
	case !math.IsInf(res.Bound, -1):
		s.lb = res.Bound
	default:
		s.lb = math.Inf(-1)
	}
	return res, nil
}

// SetClusterArcs replaces cluster c's candidate list (a "cost row changed"
// perturbation). arcs must be sorted by row ascending with no duplicates.
func (s *Solver) SetClusterArcs(c int, arcs []Arc) error {
	if c < 0 || c >= len(s.in.Cand) {
		return fmt.Errorf("rap: cluster %d out of range 0..%d", c, len(s.in.Cand)-1)
	}
	old := s.in.Cand[c]
	s.in.Cand[c] = slices.Clone(arcs)
	if err := s.in.Validate(); err != nil {
		s.in.Cand[c] = old
		return err
	}
	// Shift the cluster's dual by its min-cost delta: assignment duals track
	// the cluster's cost level, so a uniform-ish cost edit moves the dual
	// optimum by about the same amount. This keeps the inherited vector
	// coherent, where a cold reset of one coordinate would distort the root
	// bound and grow the warm tree past the cold one.
	s.lambda[c] += coldMu(s.in.Cand[c]) - coldMu(old)
	if math.IsNaN(s.lambda[c]) || math.IsInf(s.lambda[c], 0) {
		s.lambda[c] = coldMu(s.in.Cand[c])
	}
	// Bound transfer: every solution of the edited instance assigns c to some
	// row r of the new list; if r was available at the old costs, the
	// solution was feasible before at cost − (new_cr − old_cr) ≥ old lb, so
	// new lb = old lb + min_r Δ_cr. A row absent from the old list breaks the
	// mapping and invalidates the transferred bound.
	s.lb += minCostDelta(old, s.in.Cand[c])
	return nil
}

// SetWidth changes cluster c's width.
func (s *Solver) SetWidth(c int, w int64) error {
	if c < 0 || c >= len(s.in.Width) {
		return fmt.Errorf("rap: cluster %d out of range 0..%d", c, len(s.in.Width)-1)
	}
	if w <= 0 {
		return fmt.Errorf("rap: width %d must be positive", w)
	}
	// A wider cluster only shrinks the feasible set, so the transferred
	// bound stays valid; a narrower one admits new solutions and drops it.
	if w < s.in.Width[c] {
		s.lb = math.Inf(-1)
	}
	s.in.Width[c] = w
	return nil
}

// AddCluster appends a cluster and returns its index. The previous
// incumbent is extended lazily: the new cluster enters the warm start as
// unassigned and is placed by the warm-start repair at the next Solve.
func (s *Solver) AddCluster(w int64, arcs []Arc) (int, error) {
	c := len(s.in.Width)
	s.in.Width = append(s.in.Width, w)
	s.in.Cand = append(s.in.Cand, slices.Clone(arcs))
	if err := s.in.Validate(); err != nil {
		s.in.Width = s.in.Width[:c]
		s.in.Cand = s.in.Cand[:c]
		return -1, err
	}
	s.lambda = append(s.lambda, coldMu(s.in.Cand[c]))
	// Every solution now also pays the new cluster at least its cheapest arc.
	s.lb += coldMu(s.in.Cand[c])
	if s.solved {
		// Unknown row: warmStart's repair pass will place it.
		s.assign = append(s.assign, -1)
	}
	return c, nil
}

// RemoveCluster deletes cluster c. The last cluster is swapped into its
// slot (matching the cheap-removal convention of the core clustering
// arrays), and the warm incumbent is permuted the same way.
func (s *Solver) RemoveCluster(c int) error {
	n := len(s.in.Width)
	if c < 0 || c >= n {
		return fmt.Errorf("rap: cluster %d out of range 0..%d", c, n-1)
	}
	s.in.Width[c] = s.in.Width[n-1]
	s.in.Width = s.in.Width[:n-1]
	s.in.Cand[c] = s.in.Cand[n-1]
	s.in.Cand[n-1] = nil
	s.in.Cand = s.in.Cand[:n-1]
	s.lambda[c] = s.lambda[n-1]
	s.lambda = s.lambda[:n-1]
	// Removal frees capacity in ways the old bound cannot account for.
	s.lb = math.Inf(-1)
	if s.solved {
		s.assign[c] = s.assign[n-1]
		s.assign = s.assign[:n-1]
	}
	return nil
}
