package rap

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"mthplace/internal/milp"
)

// bruteForce enumerates every assignment of the instance and returns the
// optimum objective, or +Inf when infeasible. Test-only reference — kept
// inside the package so the solver's unit tests need no other packages.
func bruteForce(in *Instance) float64 {
	nC := in.NumClusters()
	best := math.Inf(1)
	load := make([]int64, in.NR)
	usage := make([]int, in.NR)
	used := 0
	var dfs func(c int, obj float64)
	dfs = func(c int, obj float64) {
		if c == nC {
			if obj < best {
				best = obj
			}
			return
		}
		for _, a := range in.Cand[c] {
			r := a.Row
			if load[r]+in.Width[c] > in.Cap {
				continue
			}
			opening := usage[r] == 0
			if opening && used == in.NminR {
				continue
			}
			load[r] += in.Width[c]
			usage[r]++
			if opening {
				used++
			}
			dfs(c+1, obj+a.Cost)
			if opening {
				used--
			}
			usage[r]--
			load[r] -= in.Width[c]
		}
	}
	dfs(0, 0)
	return best
}

// randomInstance builds a dense random instance; integer-valued costs keep
// distinct objectives at least 1 apart, so optimality checks are exact.
func randomInstance(rng *rand.Rand, slack bool) *Instance {
	nC := rng.Intn(7) + 1
	nR := rng.Intn(6) + 2
	in := &Instance{NR: nR, NminR: rng.Intn(nR) + 1}
	var total, maxW int64
	for c := 0; c < nC; c++ {
		w := int64(rng.Intn(100) + 1)
		in.Width = append(in.Width, w)
		total += w
		if w > maxW {
			maxW = w
		}
		arcs := make([]Arc, nR)
		for r := 0; r < nR; r++ {
			arcs[r] = Arc{Row: int32(r), Cost: float64(rng.Intn(1001))}
		}
		in.Cand = append(in.Cand, arcs)
	}
	in.Cap = (total + int64(in.NminR) - 1) / int64(in.NminR)
	if in.Cap < maxW {
		in.Cap = maxW
	}
	if slack {
		in.Cap += maxW
	}
	return in
}

// sparsify keeps a random subset of each cluster's arcs (at least one).
func sparsify(rng *rand.Rand, in *Instance) {
	for c, arcs := range in.Cand {
		kept := arcs[:0]
		for _, a := range arcs {
			if rng.Intn(3) > 0 {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			kept = append(kept, arcs[rng.Intn(cap(arcs))])
		}
		in.Cand[c] = kept
	}
}

func checkFeasible(t *testing.T, in *Instance, res *Result) {
	t.Helper()
	if len(res.Assign) != in.NumClusters() {
		t.Fatalf("assign length %d, want %d", len(res.Assign), in.NumClusters())
	}
	load := make([]int64, in.NR)
	used := 0
	var obj float64
	for c, r := range res.Assign {
		found := false
		for _, a := range in.Cand[c] {
			if a.Row == r {
				obj += a.Cost
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("cluster %d assigned row %d outside its candidate list", c, r)
		}
		if load[r] == 0 {
			used++
		}
		load[r] += in.Width[c]
	}
	for r, l := range load {
		if l > in.Cap {
			t.Fatalf("row %d load %d exceeds capacity %d", r, l, in.Cap)
		}
	}
	if used > in.NminR {
		t.Fatalf("%d distinct rows used, budget %d", used, in.NminR)
	}
	if math.Abs(obj-res.Obj) > 1e-6*math.Max(1, math.Abs(obj)) {
		t.Fatalf("reported objective %g, recomputed %g", res.Obj, obj)
	}
}

// TestSolveMatchesBruteForce checks proven optimality on random dense and
// sparse instances against in-test exhaustive enumeration.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := 300
	if testing.Short() {
		n = 60
	}
	for i := 0; i < n; i++ {
		in := randomInstance(rng, i%2 == 0)
		if i%3 == 0 {
			sparsify(rng, in)
		}
		want := bruteForce(in)
		res, err := Solve(context.Background(), in, nil, Options{})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if math.IsInf(want, 1) {
			if res.Status != milp.Infeasible {
				t.Fatalf("instance %d: brute force infeasible, solver says %v obj %g", i, res.Status, res.Obj)
			}
			continue
		}
		if res.Status != milp.Optimal {
			t.Fatalf("instance %d: status %v (stop %v), want Optimal", i, res.Status, res.Stop)
		}
		if math.Abs(res.Obj-want) > 1e-6 {
			t.Fatalf("instance %d: objective %g, brute force %g", i, res.Obj, want)
		}
		if res.Bound > want+1e-6 {
			t.Fatalf("instance %d: bound %g exceeds optimum %g", i, res.Bound, want)
		}
		checkFeasible(t, in, res)
		if res.Gap() > 1e-9 {
			t.Fatalf("instance %d: gap %g at proven optimality", i, res.Gap())
		}
	}
}

// TestSolveAnytime checks that budget-limited solves report valid bounds,
// honest stop reasons, and feasible incumbents.
func TestSolveAnytime(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 80; i++ {
		in := randomInstance(rng, true)
		want := bruteForce(in)
		if math.IsInf(want, 1) {
			continue
		}
		res, err := Solve(context.Background(), in, nil, Options{MaxNodes: 1, RootIters: 3, NodeIters: 1})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		switch res.Status {
		case milp.Optimal, milp.Feasible:
			if res.Obj < want-1e-6 {
				t.Fatalf("instance %d: incumbent %g below optimum %g", i, res.Obj, want)
			}
			if !math.IsInf(res.Bound, -1) && res.Bound > want+1e-6 {
				t.Fatalf("instance %d: bound %g exceeds optimum %g", i, res.Bound, want)
			}
			checkFeasible(t, in, res)
		case milp.Limit:
			if res.Stop == milp.StopNone {
				t.Fatalf("instance %d: Limit status with StopNone", i)
			}
		case milp.Infeasible:
			t.Fatalf("instance %d: feasible instance reported infeasible", i)
		}
	}
}

// TestSolveCancellation checks an already-canceled context stops the search
// with StopContext.
func TestSolveCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	in := randomInstance(rng, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Solve(ctx, in, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == milp.Optimal {
		// A root-only proof needs no node pops; anything else must stop.
		return
	}
	if res.Stop != milp.StopContext {
		t.Fatalf("stop %v, want StopContext", res.Stop)
	}
}

// TestSolveTimeLimit checks the deadline path reports StopTimeLimit.
func TestSolveTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for i := 0; i < 50; i++ {
		in := randomInstance(rng, true)
		res, err := Solve(context.Background(), in, nil, Options{TimeLimit: -time.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == milp.Optimal || res.Status == milp.Infeasible {
			continue // decided at the root before the clock check
		}
		if res.Stop != milp.StopTimeLimit {
			t.Fatalf("instance %d: stop %v, want StopTimeLimit", i, res.Stop)
		}
		return
	}
}

// TestWarmStartRepair checks that a stale warm assignment (rows missing
// from candidate lists) is repaired, never trusted.
func TestWarmStartRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for i := 0; i < 120; i++ {
		in := randomInstance(rng, i%2 == 0)
		sparsify(rng, in)
		want := bruteForce(in)
		warm := make([]int32, in.NumClusters())
		for c := range warm {
			warm[c] = int32(rng.Intn(in.NR+2) - 1) // often invalid
		}
		res, err := Solve(context.Background(), in, warm, Options{})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if math.IsInf(want, 1) {
			if res.Status != milp.Infeasible {
				t.Fatalf("instance %d: want infeasible, got %v", i, res.Status)
			}
			continue
		}
		if res.Status != milp.Optimal || math.Abs(res.Obj-want) > 1e-6 {
			t.Fatalf("instance %d: status %v obj %g, want Optimal %g", i, res.Status, res.Obj, want)
		}
		checkFeasible(t, in, res)
	}
}

// TestIncrementalSolver exercises the perturbation API: every warm re-solve
// must match a cold solve's optimum exactly.
func TestIncrementalSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	n := 60
	if testing.Short() {
		n = 15
	}
	for i := 0; i < n; i++ {
		in := randomInstance(rng, true)
		s, err := NewSolver(in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(context.Background(), Options{}); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 6; step++ {
			switch rng.Intn(3) {
			case 0: // cost row changed
				c := rng.Intn(s.Instance().NumClusters())
				arcs := make([]Arc, in.NR)
				for r := 0; r < in.NR; r++ {
					arcs[r] = Arc{Row: int32(r), Cost: float64(rng.Intn(1001))}
				}
				if err := s.SetClusterArcs(c, arcs); err != nil {
					t.Fatal(err)
				}
			case 1: // cluster added
				arcs := make([]Arc, in.NR)
				for r := 0; r < in.NR; r++ {
					arcs[r] = Arc{Row: int32(r), Cost: float64(rng.Intn(1001))}
				}
				if _, err := s.AddCluster(int64(rng.Intn(50)+1), arcs); err != nil {
					t.Fatal(err)
				}
			case 2: // cluster removed
				if n := s.Instance().NumClusters(); n > 1 {
					if err := s.RemoveCluster(rng.Intn(n)); err != nil {
						t.Fatal(err)
					}
				}
			}
			warmRes, err := s.Solve(context.Background(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForce(s.Instance())
			if math.IsInf(want, 1) {
				if warmRes.Status != milp.Infeasible {
					t.Fatalf("instance %d step %d: want infeasible, got %v", i, step, warmRes.Status)
				}
				continue
			}
			if warmRes.Status != milp.Optimal || math.Abs(warmRes.Obj-want) > 1e-6 {
				t.Fatalf("instance %d step %d: warm solve status %v obj %g, want Optimal %g",
					i, step, warmRes.Status, warmRes.Obj, want)
			}
		}
	}
}

// TestBitset covers the flattened-arc bit vector helpers.
func TestBitset(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		b := newBitset(n)
		if aliveCount(b) != 0 {
			t.Fatalf("n=%d: fresh bitset not empty", n)
		}
		b.setAll(n)
		if aliveCount(b) != n {
			t.Fatalf("n=%d: setAll count %d", n, aliveCount(b))
		}
		for i := 0; i < n; i++ {
			if !b.get(int32(i)) {
				t.Fatalf("n=%d: bit %d not set", n, i)
			}
		}
		b.clear(int32(n - 1))
		if b.get(int32(n-1)) || aliveCount(b) != n-1 {
			t.Fatalf("n=%d: clear failed", n)
		}
		c := b.clone()
		c.clear(0)
		if n > 1 && !b.get(0) {
			t.Fatalf("n=%d: clone aliases original", n)
		}
	}
}

// TestValidate covers the malformed-instance rejections.
func TestValidate(t *testing.T) {
	good := &Instance{NR: 3, NminR: 2, Cap: 10, Width: []int64{4},
		Cand: [][]Arc{{{Row: 0, Cost: 1}, {Row: 2, Cost: 2}}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := []*Instance{
		{NR: 0, NminR: 1, Cap: 10, Width: []int64{1}, Cand: [][]Arc{{{Row: 0}}}},
		{NR: 3, NminR: 0, Cap: 10, Width: []int64{1}, Cand: [][]Arc{{{Row: 0}}}},
		{NR: 3, NminR: 4, Cap: 10, Width: []int64{1}, Cand: [][]Arc{{{Row: 0}}}},
		{NR: 3, NminR: 2, Cap: 0, Width: []int64{1}, Cand: [][]Arc{{{Row: 0}}}},
		{NR: 3, NminR: 2, Cap: 10, Width: []int64{1}, Cand: nil},
		{NR: 3, NminR: 2, Cap: 10, Width: []int64{0}, Cand: [][]Arc{{{Row: 0}}}},
		{NR: 3, NminR: 2, Cap: 10, Width: []int64{1}, Cand: [][]Arc{{}}},
		{NR: 3, NminR: 2, Cap: 10, Width: []int64{1}, Cand: [][]Arc{{{Row: 3}}}},
		{NR: 3, NminR: 2, Cap: 10, Width: []int64{1}, Cand: [][]Arc{{{Row: 1}, {Row: 1}}}},
		{NR: 3, NminR: 2, Cap: 10, Width: []int64{1}, Cand: [][]Arc{{{Row: 2}, {Row: 1}}}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Fatalf("malformed instance %d accepted", i)
		}
	}
	if _, err := Solve(context.Background(), bad[0], nil, Options{}); err == nil {
		t.Fatal("Solve accepted a malformed instance")
	}
}
