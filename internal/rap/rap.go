// Package rap is the structure-aware solver for the paper's row assignment
// problem (RAP, Eqs. (3)–(5)). Where internal/milp treats the instance as a
// generic mixed-binary LP over the dense cost matrix, this package exploits
// the assignment-plus-one-cardinality structure directly:
//
//   - Sparse costs. An Instance stores per-cluster candidate arc lists, so
//     candidate pruning shrinks the data the solver touches, not just the
//     iteration space of a dense matrix.
//   - Lagrangian bounds. Dualizing the assignment rows (Σ_r x_cr = 1) with
//     free multipliers μ_c keeps the hard coupling in the subproblem: each
//     row solves an LP knapsack over its negative reduced costs (Eq. 4, with
//     x ≤ y implicit), and the Eq. 5 cardinality picks the N_minR most
//     negative rows exactly. This is the classic capacitated-p-median
//     relaxation — it stays tight when the row budget, not capacity, binds.
//     Subgradient updates tighten the bound; every μ yields a valid lower
//     bound, so the search can stop anytime.
//   - Structured branch and bound. Cardinality pressure branches on whole
//     rows (open/close), capacity violations on cluster→row arcs;
//     constraint propagation prunes arcs that can no longer be feasible,
//     Lagrangian reduced-cost fixing closes rows no improving solution can
//     use, and a repair heuristic turns relaxed solutions into incumbents.
//     Status/StopReason reuse the internal/milp anytime types, so the core
//     degradation ladder treats both backends identically.
//
// The package is deliberately standalone — it does not import internal/core.
// core builds an Instance from its Model (sharing the candidate pruning with
// the MILP path) and maps the Result back onto its Assignment/ladder types.
// Incremental re-solve lives in the Solver type (incremental.go): it keeps
// the last duals and incumbent, so a perturbed instance warm-starts instead
// of solving cold.
package rap

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"time"

	"mthplace/internal/milp"
	"mthplace/internal/obs"
)

// Arc is one candidate cluster→row assignment with its Eq. 2 cost.
type Arc struct {
	Row  int32
	Cost float64
}

// Instance is the sparse RAP: per-cluster candidate arc lists instead of a
// dense N_C × N_R cost matrix.
type Instance struct {
	// NR is the number of row pairs.
	NR int
	// NminR is the minority pair budget (Eq. 5): at most NminR distinct
	// rows may host clusters (empty minority rows are legal).
	NminR int
	// Cap is the per-pair width capacity (Eq. 4).
	Cap int64
	// Width is the per-cluster total cell width.
	Width []int64
	// Cand[c] lists cluster c's candidate arcs, sorted by Row ascending
	// with no duplicate rows.
	Cand [][]Arc
}

// NumClusters returns the cluster count.
func (in *Instance) NumClusters() int { return len(in.Width) }

// NumArcs returns the total candidate arc count (the sparse problem size).
func (in *Instance) NumArcs() int {
	n := 0
	for _, cs := range in.Cand {
		n += len(cs)
	}
	return n
}

// Validate reports a malformed instance: mismatched slice lengths, an
// out-of-range NminR, non-positive widths, or an unsorted/out-of-range
// candidate list. A validated instance may still be infeasible — that is a
// solve outcome (Status Infeasible), not a shape error.
func (in *Instance) Validate() error {
	if in.NR <= 0 {
		return fmt.Errorf("rap: NR %d must be positive", in.NR)
	}
	if in.NminR <= 0 || in.NminR > in.NR {
		return fmt.Errorf("rap: NminR %d out of range 1..%d", in.NminR, in.NR)
	}
	if in.Cap <= 0 {
		return fmt.Errorf("rap: capacity %d must be positive", in.Cap)
	}
	if len(in.Cand) != len(in.Width) {
		return fmt.Errorf("rap: %d candidate lists for %d clusters", len(in.Cand), len(in.Width))
	}
	for c, cs := range in.Cand {
		if in.Width[c] <= 0 {
			return fmt.Errorf("rap: cluster %d width %d must be positive", c, in.Width[c])
		}
		if len(cs) == 0 {
			return fmt.Errorf("rap: cluster %d has no candidate arcs", c)
		}
		prev := int32(-1)
		for _, a := range cs {
			if a.Row < 0 || int(a.Row) >= in.NR {
				return fmt.Errorf("rap: cluster %d arc row %d out of range 0..%d", c, a.Row, in.NR-1)
			}
			if a.Row <= prev {
				return fmt.Errorf("rap: cluster %d candidate rows not strictly ascending", c)
			}
			prev = a.Row
		}
	}
	return nil
}

// Options tune the solve.
type Options struct {
	// MaxNodes bounds the branch-and-bound nodes (0 = 20000). The nodes
	// are far cheaper than MILP nodes — each costs a few subgradient
	// sweeps over the arcs, not an LP solve.
	MaxNodes int
	// TimeLimit bounds wall-clock time (0 = none).
	TimeLimit time.Duration
	// RelGap stops when (incumbent − bound)/max(1,|incumbent|) is below it
	// (0 = 1e-6, the same convention as milp.Options).
	RelGap float64
	// RootIters bounds the root subgradient iterations (0 = 1200).
	RootIters int
	// NodeIters bounds the per-node subgradient iterations (0 = 24).
	NodeIters int
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 20000
	}
	if o.RelGap <= 0 {
		o.RelGap = 1e-6
	}
	if o.RootIters <= 0 {
		o.RootIters = 1200
	}
	if o.NodeIters <= 0 {
		o.NodeIters = 24
	}
	return o
}

// Result of a solve. Status and Stop reuse the internal/milp anytime types,
// so callers run one degradation ladder over both backends.
type Result struct {
	Status milp.Status
	// Stop explains an early exit; StopNone when the search ran to proof.
	Stop milp.StopReason
	// Assign is the incumbent cluster→row assignment (nil without one).
	Assign []int32
	// Obj is the incumbent objective.
	Obj float64
	// Bound is the best proven lower bound on the optimum (-Inf when the
	// search stopped before producing one).
	Bound float64
	// Nodes is the number of branch-and-bound nodes expanded.
	Nodes int
	// Iters is the total subgradient iterations across all nodes.
	Iters int
	// Lambda holds the per-cluster assignment duals after the root
	// subgradient — the warm-start state an incremental re-solve reuses.
	Lambda []float64
}

// Gap returns the relative optimality gap of the result: 0 at proven
// optimality, +Inf when there is no incumbent or no finite bound.
func (r *Result) Gap() float64 {
	if len(r.Assign) == 0 || math.IsInf(r.Bound, -1) {
		return math.Inf(1)
	}
	g := (r.Obj - r.Bound) / math.Max(1, math.Abs(r.Obj))
	if g < 0 {
		return 0
	}
	return g
}

// Solve runs the structure-aware branch and bound. warm, if non-nil, is a
// cluster→row warm start; rows missing from a cluster's candidate list (or
// breaking feasibility) are repaired before use, so a stale warm start can
// only cost quality, never correctness. Cancellation is checked once per
// node. A malformed instance returns an error; infeasibility is reported in
// Result.Status.
func Solve(ctx context.Context, in *Instance, warm []int32, opt Options) (*Result, error) {
	return solve(ctx, in, warm, nil, math.Inf(-1), opt)
}

// bitset is a fixed-capacity bit vector over the flattened arc array.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) clear(i int32)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) setAll(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if n%64 != 0 {
		b[len(b)-1] = (1 << (n % 64)) - 1
	}
}
func (b bitset) clone() bitset { return append(bitset(nil), b...) }

// Row branching states. Cardinality (Eq. 5) violations branch on whole
// rows — open (y_r forced 1) versus closed (y_r forced 0, every arc to the
// row dies) — which shrinks the row-subset space exponentially faster than
// forbidding one arc at a time.
const (
	rowFree   int8 = iota // undecided
	rowOpen               // forced into the minority set
	rowClosed             // excluded from the minority set
)

// node is one open branch-and-bound subproblem: the alive arc set, the row
// open/close decisions, and the parent's duals as warm start.
type node struct {
	bound float64
	alive bitset
	rows  []int8
	lam   []float64
	depth int
	seq   int
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	if h[i].depth != h[j].depth {
		return h[i].depth > h[j].depth // plunge toward fully fixed nodes
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) push(n *node) { *h = append(*h, n); h.up(len(*h) - 1) }
func (h *nodeHeap) pop() *node {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old[last] = nil
	*h = old[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}
func (h nodeHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.Less(i, p) {
			break
		}
		h.Swap(i, p)
		i = p
	}
}
func (h nodeHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.Less(l, best) {
			best = l
		}
		if r < n && h.Less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.Swap(i, best)
		i = best
	}
}

// search carries the flattened instance plus all per-node scratch, so the
// hot loops allocate nothing.
type search struct {
	in       *Instance
	nC, nR   int
	nA       int
	start    []int32 // cluster -> first flat arc index; len nC+1
	arcRow   []int32
	arcCost  []float64
	arcClus  []int32 // flat arc -> cluster
	rowStart []int32 // row -> first index into rowArcs; len nR+1
	rowArcs  []int32 // flat arc ids grouped by row (row-major view)

	opt    Options
	trivUB float64 // Σ per-cluster max cost: step-size fallback before an incumbent exists

	// Incumbent.
	inc    []int32
	incObj float64
	hasInc bool

	// Per-node analysis state (valid after propagate/eval on that node).
	rows       []int8  // the current node's row states (aliases node.rows)
	nAlive     []int32 // alive arcs per cluster
	singleton  []int32 // the one alive arc of a singleton cluster, else -1
	openRow    []bool  // rows forced open: branched rowOpen or hosting a singleton
	forcedLoad []int64
	nOpenRows  int

	// eval scratch.
	pick     []int32   // integral tentative pick: cluster -> flat arc
	bestMu   []float64 // multipliers of the best bound iterate (len nC)
	vRow     []float64 // per-row LP-knapsack value (≤ 0) at the last eval
	frac     []float64 // per-cluster assignment fraction over selected rows
	items    []int32   // knapsack item scratch
	load     []int64
	yOpen    []bool
	rowOrder []int32
	g        []float64 // subgradient over clusters (len nC)
	closeRow []bool    // fixRows scratch: rows proven unusable this pass

	// repair scratch.
	byWidth   []int32
	repOpen   []bool
	repLoad   []int64
	repAssign []int32

	nodes, iters int

	// Observability (read-only; identical search with or without sinks).
	sink   func(obs.Event)
	tracer *obs.Tracer
	span   *obs.Span // the rap.bnb span; incumbent instants parent here
	startT time.Time
}

func newSearch(in *Instance, opt Options) *search {
	nC, nR := in.NumClusters(), in.NR
	s := &search{in: in, nC: nC, nR: nR, opt: opt, incObj: math.Inf(1)}
	s.start = make([]int32, nC+1)
	for c, cs := range in.Cand {
		s.start[c+1] = s.start[c] + int32(len(cs))
	}
	s.nA = int(s.start[nC])
	s.arcRow = make([]int32, s.nA)
	s.arcCost = make([]float64, s.nA)
	s.arcClus = make([]int32, s.nA)
	for c, cs := range in.Cand {
		base := s.start[c]
		maxC := math.Inf(-1)
		for i, a := range cs {
			s.arcRow[base+int32(i)] = a.Row
			s.arcCost[base+int32(i)] = a.Cost
			s.arcClus[base+int32(i)] = int32(c)
			if a.Cost > maxC {
				maxC = a.Cost
			}
		}
		s.trivUB += maxC
	}
	// Row-major view of the same arcs, for the per-row knapsacks. Counting
	// sort keeps arc ids ascending within each row (determinism).
	s.rowStart = make([]int32, nR+1)
	for a := 0; a < s.nA; a++ {
		s.rowStart[s.arcRow[a]+1]++
	}
	for r := 0; r < nR; r++ {
		s.rowStart[r+1] += s.rowStart[r]
	}
	s.rowArcs = make([]int32, s.nA)
	fill := append([]int32(nil), s.rowStart[:nR]...)
	for a := int32(0); a < int32(s.nA); a++ {
		r := s.arcRow[a]
		s.rowArcs[fill[r]] = a
		fill[r]++
	}
	s.nAlive = make([]int32, nC)
	s.singleton = make([]int32, nC)
	s.openRow = make([]bool, nR)
	s.forcedLoad = make([]int64, nR)
	s.pick = make([]int32, nC)
	s.bestMu = make([]float64, nC)
	s.vRow = make([]float64, nR)
	s.frac = make([]float64, nC)
	s.items = make([]int32, 0, s.nA)
	s.closeRow = make([]bool, nR)
	s.load = make([]int64, nR)
	s.yOpen = make([]bool, nR)
	s.rowOrder = make([]int32, nR)
	s.g = make([]float64, nC)
	s.inc = make([]int32, nC)
	s.byWidth = make([]int32, nC)
	for c := range s.byWidth {
		s.byWidth[c] = int32(c)
	}
	slices.SortFunc(s.byWidth, func(a, b int32) int {
		if in.Width[a] != in.Width[b] {
			if in.Width[a] > in.Width[b] {
				return -1
			}
			return 1
		}
		return int(a - b)
	})
	s.repOpen = make([]bool, nR)
	s.repLoad = make([]int64, nR)
	s.repAssign = make([]int32, nC)
	return s
}

func (s *search) gapAbs() float64 {
	return s.opt.RelGap * math.Max(1, math.Abs(s.incObj))
}

// offerIncumbent installs assign (cluster→row) if it improves the incumbent.
func (s *search) offerIncumbent(assign []int32, obj float64) {
	if s.hasInc && obj >= s.incObj {
		return
	}
	copy(s.inc, assign)
	s.incObj = obj
	s.hasInc = true
	if s.sink != nil || s.tracer != nil {
		elapsed := float64(time.Since(s.startT).Microseconds()) / 1000
		if s.sink != nil {
			s.sink(obs.Event{Source: "rap", Kind: "incumbent",
				Objective: obj, Gap: -1, Nodes: s.nodes, ElapsedMS: elapsed})
		}
		s.span.Instant("rap.incumbent", map[string]any{
			"objective": obj, "nodes": s.nodes,
		})
	}
}

// propagate runs constraint propagation on the node (arc set + row states,
// via s.rows) to a fixpoint: arcs to closed rows die; singleton clusters
// force their row open and commit their width; arcs that no longer fit next
// to the committed width die; and once the open rows exhaust the N_minR
// budget, every arc to a non-open row dies. Returns false when the node is
// proven infeasible. On true, nAlive/singleton/openRow/forcedLoad/nOpenRows
// describe the propagated node.
func (s *search) propagate(alive bitset) bool {
	nonClosed := 0
	for r := 0; r < s.nR; r++ {
		if s.rows[r] != rowClosed {
			nonClosed++
		}
	}
	if nonClosed < s.in.NminR {
		return false // Eq. 5 needs exactly NminR open rows; too few remain
	}
	for {
		changed := false
		for r := 0; r < s.nR; r++ {
			s.openRow[r] = s.rows[r] == rowOpen
			s.forcedLoad[r] = 0
		}
		for c := 0; c < s.nC; c++ {
			n := int32(0)
			last := int32(-1)
			for a := s.start[c]; a < s.start[c+1]; a++ {
				if !alive.get(a) {
					continue
				}
				if s.rows[s.arcRow[a]] == rowClosed {
					alive.clear(a)
					changed = true
					continue
				}
				n++
				last = a
			}
			if n == 0 {
				return false
			}
			s.nAlive[c] = n
			if n == 1 {
				s.singleton[c] = last
				s.openRow[s.arcRow[last]] = true
				s.forcedLoad[s.arcRow[last]] += s.in.Width[c]
			} else {
				s.singleton[c] = -1
			}
		}
		s.nOpenRows = 0
		for r := 0; r < s.nR; r++ {
			if s.forcedLoad[r] > s.in.Cap {
				return false
			}
			if s.openRow[r] {
				s.nOpenRows++
			}
		}
		if s.nOpenRows > s.in.NminR {
			return false
		}
		budgetFull := s.nOpenRows == s.in.NminR
		for c := 0; c < s.nC; c++ {
			if s.singleton[c] >= 0 {
				continue
			}
			w := s.in.Width[c]
			for a := s.start[c]; a < s.start[c+1]; a++ {
				if !alive.get(a) {
					continue
				}
				r := s.arcRow[a]
				if s.forcedLoad[r]+w > s.in.Cap || (budgetFull && !s.openRow[r]) {
					alive.clear(a)
					changed = true
				}
			}
		}
		if !changed {
			return true
		}
	}
}

// knap solves row r's LP knapsack at multipliers mu: minimize Σ red_a·x_a
// over the alive arcs into r with Σ w·x ≤ Cap and x ∈ [0,1], where
// red_a = cost_a − μ_cluster(a). Only negative reduced costs can help, and
// the LP optimum fills by most negative density first (fractional last
// item). The LP value lower-bounds the integer knapsack, which keeps the
// Lagrangian bound valid. When frac is non-nil the chosen fractions are
// accumulated per cluster (the subgradient's Σ_r x_cr term).
func (s *search) knap(alive bitset, mu []float64, r int32, frac []float64) float64 {
	s.items = s.items[:0]
	for i := s.rowStart[r]; i < s.rowStart[r+1]; i++ {
		a := s.rowArcs[i]
		if alive.get(a) && s.arcCost[a]-mu[s.arcClus[a]] < 0 {
			s.items = append(s.items, a)
		}
	}
	// Density order without division: red_x/w_x < red_y/w_y ⟺
	// red_x·w_y < red_y·w_x (widths are positive).
	slices.SortFunc(s.items, func(x, y int32) int {
		rx := (s.arcCost[x] - mu[s.arcClus[x]]) * float64(s.in.Width[s.arcClus[y]])
		ry := (s.arcCost[y] - mu[s.arcClus[y]]) * float64(s.in.Width[s.arcClus[x]])
		if rx != ry {
			if rx < ry {
				return -1
			}
			return 1
		}
		return int(x - y)
	})
	rem := s.in.Cap
	var v float64
	for _, a := range s.items {
		if rem <= 0 {
			break
		}
		c := s.arcClus[a]
		w := s.in.Width[c]
		red := s.arcCost[a] - mu[c]
		if w <= rem {
			v += red
			rem -= w
			if frac != nil {
				frac[c]++
			}
		} else {
			f := float64(rem) / float64(w)
			v += red * f
			if frac != nil {
				frac[c] += f
			}
			rem = 0
		}
	}
	return v
}

// eval computes the Lagrangian value at mu on the node's arcs. The
// assignment rows (Σ_r x_cr = 1) are dualized, so the subproblem keeps the
// hard coupling: per-row LP knapsacks over negative reduced costs (Eq. 4,
// with x ≤ y implicit — only selected rows count), and the Eq. 5 cardinality
// picks the open rows plus the most negative knapsack values (vRow/yOpen).
// Side effects: frac holds each cluster's fractional coverage (subgradient),
// pick/load an integral tentative assignment preferring selected rows.
// Returns -Inf/false when some cluster has no alive arc.
func (s *search) eval(alive bitset, mu []float64) (float64, bool) {
	var sumMu float64
	for c := 0; c < s.nC; c++ {
		sumMu += mu[c]
		s.frac[c] = 0
	}
	for r := 0; r < s.nR; r++ {
		s.vRow[r] = 0
		if s.rows[r] != rowClosed {
			s.vRow[r] = s.knap(alive, mu, int32(r), nil)
		}
	}
	// Row selection: open rows (branched open or hosting a singleton) count
	// in every solution of this node; the remaining Eq. 5 budget goes to the
	// most negative knapsack values. Closed rows never enter.
	var sumV float64
	for r := 0; r < s.nR; r++ {
		s.yOpen[r] = s.openRow[r]
		if s.openRow[r] {
			sumV += s.vRow[r]
		}
		s.rowOrder[r] = int32(r)
	}
	k := s.in.NminR - s.nOpenRows
	if k > 0 {
		slices.SortFunc(s.rowOrder, func(a, b int32) int {
			if s.vRow[a] != s.vRow[b] {
				if s.vRow[a] < s.vRow[b] {
					return -1
				}
				return 1
			}
			return int(a - b)
		})
		for _, r := range s.rowOrder {
			if k == 0 {
				break
			}
			if s.openRow[r] || s.rows[r] == rowClosed {
				continue
			}
			s.yOpen[r] = true
			sumV += s.vRow[r]
			k--
		}
	}
	// Fractional coverage of the selected rows drives the subgradient.
	for r := 0; r < s.nR; r++ {
		if s.yOpen[r] && s.rows[r] != rowClosed {
			s.knap(alive, mu, int32(r), s.frac)
		}
	}
	// Integral tentative pick: cheapest alive arc on a selected row, overall
	// cheapest as fallback (surfacing as a violation for branching). μ shifts
	// all of a cluster's arcs equally, so true cost order is reduced order.
	for r := 0; r < s.nR; r++ {
		s.load[r] = 0
	}
	for c := 0; c < s.nC; c++ {
		bestA, bestIn := int32(-1), false
		bestC := math.Inf(1)
		for a := s.start[c]; a < s.start[c+1]; a++ {
			if !alive.get(a) {
				continue
			}
			in := s.yOpen[s.arcRow[a]]
			if (in && !bestIn) || (in == bestIn && s.arcCost[a] < bestC) {
				bestA, bestIn, bestC = a, in, s.arcCost[a]
			}
		}
		if bestA < 0 {
			return math.Inf(-1), false
		}
		s.pick[c] = bestA
		s.load[s.arcRow[bestA]] += s.in.Width[c]
	}
	return sumMu + sumV, true
}

// pickFeasible reports whether the current pick/load satisfies Eq. 4/5.
func (s *search) pickFeasible() bool {
	used := 0
	for r := 0; r < s.nR; r++ {
		if s.load[r] > s.in.Cap {
			return false
		}
		if s.load[r] > 0 {
			used++
		}
	}
	return used <= s.in.NminR
}

// pickCost sums the true (unrelaxed) cost of the current pick in cluster
// index order, matching the fixed accumulation order used everywhere else.
func (s *search) pickCost(pick []int32) float64 {
	var obj float64
	for c := 0; c < s.nC; c++ {
		obj += s.arcCost[pick[c]]
	}
	return obj
}

// subgradient maximizes the Lagrangian dual from mu with a step-halving
// subgradient method, updating mu in place (free sign — the dualized
// constraints are equalities). Every iterate yields a valid lower bound;
// the best one is returned and its multipliers kept in bestMu. Feasible
// integral picks are offered as incumbents. theta0 scales the first steps —
// large at the root, small at warm-started nodes.
func (s *search) subgradient(alive bitset, mu []float64, iters int, theta0 float64) float64 {
	bestBound := math.Inf(-1)
	theta := theta0
	noImp := 0
	for it := 0; it < iters; it++ {
		L, ok := s.eval(alive, mu)
		if !ok {
			return math.Inf(1) // no alive arc: the node is infeasible
		}
		s.iters++
		if L > bestBound {
			bestBound = L
			copy(s.bestMu, mu)
			noImp = 0
		} else {
			noImp++
		}
		if s.pickFeasible() {
			if obj := s.pickCost(s.pick); !s.hasInc || obj < s.incObj {
				for c := 0; c < s.nC; c++ {
					s.repAssign[c] = s.arcRow[s.pick[c]]
				}
				s.offerIncumbent(s.repAssign, obj)
			}
		}
		if s.hasInc && bestBound >= s.incObj-s.gapAbs() {
			break // the node is already bound-dominated
		}
		var norm2 float64
		for c := 0; c < s.nC; c++ {
			g := 1 - s.frac[c]
			s.g[c] = g
			norm2 += g * g
		}
		if norm2 == 0 {
			break // every cluster exactly covered: subgradient vanishes
		}
		ub := s.trivUB
		if s.hasInc {
			ub = s.incObj
		}
		step := theta * (ub - L) / norm2
		if step <= 0 {
			break
		}
		for c := 0; c < s.nC; c++ {
			mu[c] += step * s.g[c]
		}
		if noImp >= 8 {
			theta /= 2
			noImp = 0
			if theta < 1e-3 {
				break
			}
		}
	}
	return bestBound
}

// repair builds a feasible assignment near the relaxation's pick: open the
// node's open rows plus the most-loaded picked rows up to N_minR, place
// clusters widest-first on their cheapest alive arc with remaining capacity,
// then run relocation passes. Feasible results are offered as incumbents.
// Closed rows never enter the open set: their arcs are already dead, so
// their relaxed load is zero and no candidate arc can reach them.
func (s *search) repair(alive bitset) {
	for r := 0; r < s.nR; r++ {
		s.repOpen[r] = s.openRow[r]
		s.repLoad[r] = 0
		s.rowOrder[r] = int32(r)
	}
	open := s.nOpenRows
	slices.SortFunc(s.rowOrder, func(a, b int32) int {
		if s.load[a] != s.load[b] {
			if s.load[a] > s.load[b] {
				return -1
			}
			return 1
		}
		if s.vRow[a] != s.vRow[b] {
			if s.vRow[a] < s.vRow[b] {
				return -1
			}
			return 1
		}
		return int(a - b)
	})
	for _, r := range s.rowOrder {
		if open == s.in.NminR {
			break
		}
		if s.repOpen[r] || s.load[r] == 0 {
			continue
		}
		s.repOpen[r] = true
		open++
	}

	for _, c := range s.byWidth {
		w := s.in.Width[c]
		bestA := int32(-1)
		bestC := math.Inf(1)
		for a := s.start[c]; a < s.start[c+1]; a++ {
			if !alive.get(a) {
				continue
			}
			r := s.arcRow[a]
			if !s.repOpen[r] || s.repLoad[r]+w > s.in.Cap {
				continue
			}
			if s.arcCost[a] < bestC {
				bestC, bestA = s.arcCost[a], a
			}
		}
		if bestA < 0 && open < s.in.NminR {
			// Open the cheapest feasible fresh row for this cluster.
			for a := s.start[c]; a < s.start[c+1]; a++ {
				if !alive.get(a) {
					continue
				}
				r := s.arcRow[a]
				if s.repOpen[r] || s.repLoad[r]+w > s.in.Cap {
					continue
				}
				if s.arcCost[a] < bestC {
					bestC, bestA = s.arcCost[a], a
				}
			}
			if bestA >= 0 {
				s.repOpen[s.arcRow[bestA]] = true
				open++
			}
		}
		if bestA < 0 {
			return // repair failed at this node; bounds still stand
		}
		s.repAssign[c] = s.arcRow[bestA]
		s.repLoad[s.arcRow[bestA]] += w
	}

	// Relocation improvement: move clusters to strictly cheaper open rows.
	for pass := 0; pass < 2; pass++ {
		improved := false
		for c := 0; c < s.nC; c++ {
			if s.singleton[c] >= 0 {
				continue
			}
			cur := s.repAssign[c]
			var curCost float64
			for a := s.start[c]; a < s.start[c+1]; a++ {
				if s.arcRow[a] == cur {
					curCost = s.arcCost[a]
					break
				}
			}
			w := s.in.Width[c]
			for a := s.start[c]; a < s.start[c+1]; a++ {
				if !alive.get(a) {
					continue
				}
				r := s.arcRow[a]
				if r == cur || !s.repOpen[r] || s.repLoad[r]+w > s.in.Cap {
					continue
				}
				if s.arcCost[a]+1e-9 < curCost {
					s.repLoad[cur] -= w
					s.repLoad[r] += w
					s.repAssign[c] = r
					cur, curCost = r, s.arcCost[a]
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}

	var obj float64
	for c := 0; c < s.nC; c++ {
		a, ok := s.arcFor(int32(c), s.repAssign[c])
		if !ok {
			return
		}
		obj += s.arcCost[a]
	}
	s.offerIncumbent(s.repAssign, obj)
}

// arcFor returns cluster c's flat arc index for row r (binary search over
// the row-sorted candidate list).
func (s *search) arcFor(c, r int32) (int32, bool) {
	lo, hi := s.start[c], s.start[c+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s.arcRow[mid] == r:
			return mid, true
		case s.arcRow[mid] < r:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return -1, false
}

// fixRows performs Lagrangian reduced-cost fixing with the node's best
// multipliers. Conditioning the relaxed row selection on y_r = 1 for an
// unselected free row swaps out the least negative selected free knapsack
// value (penalty vRow[r] − vWorst ≥ 0) while leaving the rest of the
// relaxation intact — a valid bound on every solution that uses row r. When
// that bound reaches the incumbent (minus tolerance), no improving solution
// uses the row and every arc into it dies. Requires an incumbent. Reports
// whether any arc was killed — the caller must re-propagate then.
func (s *search) fixRows(alive bitset) bool {
	L, ok := s.eval(alive, s.bestMu)
	if !ok {
		return false
	}
	thr := s.incObj - s.gapAbs()
	if L >= thr {
		return false // the caller prunes the whole node
	}
	// Least negative knapsack value among the selected free rows: the one a
	// forced-in row would displace.
	vWorst := math.Inf(-1)
	for r := 0; r < s.nR; r++ {
		s.closeRow[r] = false
		if s.yOpen[r] && !s.openRow[r] && s.vRow[r] > vWorst {
			vWorst = s.vRow[r]
		}
	}
	if math.IsInf(vWorst, -1) {
		return false // budget fully forced; propagate already prunes here
	}
	closing := false
	for r := 0; r < s.nR; r++ {
		if s.yOpen[r] || s.rows[r] == rowClosed {
			continue
		}
		if L+(s.vRow[r]-vWorst) >= thr {
			s.closeRow[r] = true
			closing = true
		}
	}
	if !closing {
		return false
	}
	changed := false
	for a := int32(0); a < int32(s.nA); a++ {
		if s.closeRow[s.arcRow[a]] && alive.get(a) {
			alive.clear(a)
			changed = true
		}
	}
	return changed
}

// branch selects the branching decision after refreshing the analysis state
// at the node's best multipliers. Capacity violations of the integral pick
// branch on an arc: the widest branchable cluster on the most violated row
// (isRow=false, idx is a flat arc index). While the relaxed row selection
// still uses undecided rows, branch on the most negative one — open it for
// good or close it, killing every arc into it — which shrinks the Eq. 5
// row-subset space exponentially faster than forbidding one arc at a time
// (isRow=true, idx is a row index). Once every selected row is decided,
// branch on the max-regret cluster's arc. ok is false when nothing can
// branch (the node is fully fixed).
func (s *search) branch(alive bitset) (idx int32, isRow, ok bool) {
	if _, evalOK := s.eval(alive, s.bestMu); !evalOK {
		return -1, false, false
	}
	// Capacity violation: most overloaded row, widest branchable cluster.
	worst, worstOver := int32(-1), int64(0)
	for r := 0; r < s.nR; r++ {
		if over := s.load[r] - s.in.Cap; over > worstOver {
			worst, worstOver = int32(r), over
		}
	}
	if worst >= 0 {
		if a := s.widestOn(worst); a >= 0 {
			return a, false, true
		}
	}
	// Undecided selected row: dichotomize the one the relaxation leans on
	// hardest (most negative knapsack value) — opening pins the budget,
	// closing forces the dual to relocate the most value.
	bestR, bestV := int32(-1), math.Inf(1)
	for r := 0; r < s.nR; r++ {
		if !s.yOpen[r] || s.openRow[r] || s.rows[r] == rowClosed {
			continue
		}
		if s.vRow[r] < bestV {
			bestR, bestV = int32(r), s.vRow[r]
		}
	}
	if bestR >= 0 {
		return bestR, true, true
	}
	// Rows decided, pick capacity-feasible, gap still open: branch where the
	// assignment decision matters most — the largest cost regret between a
	// cluster's two cheapest alive arcs (μ shifts both equally).
	bestC, bestRegret := int32(-1), -1.0
	for c := 0; c < s.nC; c++ {
		if s.nAlive[c] < 2 {
			continue
		}
		first, second := math.Inf(1), math.Inf(1)
		for a := s.start[c]; a < s.start[c+1]; a++ {
			if !alive.get(a) {
				continue
			}
			if s.arcCost[a] < first {
				first, second = s.arcCost[a], first
			} else if s.arcCost[a] < second {
				second = s.arcCost[a]
			}
		}
		if regret := second - first; regret > bestRegret {
			bestRegret, bestC = regret, int32(c)
		}
	}
	if bestC < 0 {
		return -1, false, false
	}
	return s.pick[bestC], false, true
}

// widestOn returns the picked arc of the widest branchable (≥2 alive arcs)
// cluster assigned to row r in the current integral pick, or -1.
func (s *search) widestOn(r int32) int32 {
	best, bestW := int32(-1), int64(-1)
	for c := 0; c < s.nC; c++ {
		if s.nAlive[c] < 2 || s.arcRow[s.pick[c]] != r {
			continue
		}
		if s.in.Width[c] > bestW {
			best, bestW = s.pick[c], s.in.Width[c]
		}
	}
	return best
}

// clusterOf maps a flat arc index back to its cluster (binary search on the
// start offsets).
func (s *search) clusterOf(a int32) int32 {
	lo, hi := int32(0), int32(s.nC)
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s.start[mid] <= a {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// solve is the shared engine behind Solve and (*Solver).Solve. lam0, when
// non-nil, warm-starts the root duals.
// solve is the search entry point. floor, when finite, is an externally
// proven lower bound on the optimum (an incremental re-solve transfers one
// from the previous solve); the root bound starts at max(subgradient, floor),
// which can prove a warm incumbent optimal without expanding a single node.
func solve(ctx context.Context, in *Instance, warm []int32, lam0 []float64, floor float64, opt Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	s := newSearch(in, opt)
	s.startT = time.Now()
	s.sink = obs.Progress(ctx)
	s.tracer = obs.TracerFrom(ctx)
	res := &Result{Status: milp.Limit, Bound: math.Inf(-1), Obj: math.Inf(1)}
	span := obs.StartSpan(ctx, "rap.bnb")
	s.span = span
	defer func() {
		span.SetArg("status", res.Status.String())
		span.SetArg("nodes", res.Nodes)
		span.SetArg("subgrad_iters", res.Iters)
		span.End()
	}()
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = s.startT.Add(opt.TimeLimit)
	}

	finish := func() *Result {
		res.Nodes, res.Iters = s.nodes, s.iters
		if s.hasInc {
			res.Assign = append([]int32(nil), s.inc...)
			res.Obj = s.incObj
			if res.Status == milp.Limit {
				res.Status = milp.Feasible
			}
		}
		return res
	}

	root := &node{bound: math.Inf(-1), alive: newBitset(s.nA), depth: 0, seq: 0}
	root.alive.setAll(s.nA)
	root.lam = make([]float64, s.nC)
	root.rows = make([]int8, s.nR)
	if lam0 != nil {
		copy(root.lam, lam0)
	} else {
		// Cold duals: each cluster's cheapest cost. All reduced costs start
		// at ≥ 0 (L = Σ min-cost, the trivial bound) and the subgradient
		// climbs from there.
		for c := 0; c < s.nC; c++ {
			minC := math.Inf(1)
			for a := s.start[c]; a < s.start[c+1]; a++ {
				if s.arcCost[a] < minC {
					minC = s.arcCost[a]
				}
			}
			root.lam[c] = minC
		}
	}
	s.rows = root.rows
	if !s.propagate(root.alive) {
		res.Status = milp.Infeasible
		return finish(), nil
	}
	if warm != nil {
		s.warmStart(root.alive, warm)
	}
	rootBound := s.subgradient(root.alive, root.lam, opt.RootIters, 2.0)
	if math.IsInf(rootBound, 1) {
		res.Lambda = append([]float64(nil), root.lam...)
		res.Status = milp.Infeasible
		return finish(), nil
	}
	if floor > rootBound {
		rootBound = floor
	}
	s.repair(root.alive)
	// Root reduced-cost fixing: shrink the arc set against the incumbent and
	// re-tighten until a pass changes nothing. A propagation wipeout here
	// means no improving solution exists — the incumbent is optimal.
	for s.hasInc && rootBound < s.incObj-s.gapAbs() && s.fixRows(root.alive) {
		if !s.propagate(root.alive) {
			rootBound = math.Inf(1)
			break
		}
		if b := s.subgradient(root.alive, root.lam, opt.RootIters/4+1, 0.5); b > rootBound {
			rootBound = b
		}
		s.repair(root.alive)
	}
	res.Lambda = append([]float64(nil), root.lam...)
	root.bound = rootBound

	h := &nodeHeap{}
	if !(s.hasInc && rootBound >= s.incObj-s.gapAbs()) {
		h.push(root)
	}
	seq := 1

	for h.Len() > 0 {
		if s.nodes >= opt.MaxNodes {
			res.Stop = milp.StopNodeLimit
			break
		}
		if ctx.Err() != nil {
			res.Stop = milp.StopContext
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Stop = milp.StopTimeLimit
			break
		}
		nd := h.pop()
		if s.hasInc && nd.bound >= s.incObj-s.gapAbs() {
			// Bound-ordered heap: every remaining node is dominated too.
			res.Status = milp.Optimal
			res.Bound = s.incObj
			return finish(), nil
		}
		s.nodes++

		s.rows = nd.rows
		if !s.propagate(nd.alive) {
			continue
		}
		allFixed := true
		for c := 0; c < s.nC; c++ {
			if s.singleton[c] < 0 {
				allFixed = false
				break
			}
		}
		if allFixed {
			// Exactly one assignment remains; propagate already proved it
			// satisfies Eq. 4/5.
			for c := 0; c < s.nC; c++ {
				s.repAssign[c] = s.arcRow[s.singleton[c]]
			}
			var obj float64
			for c := 0; c < s.nC; c++ {
				obj += s.arcCost[s.singleton[c]]
			}
			s.offerIncumbent(s.repAssign, obj)
			continue
		}
		bound := s.subgradient(nd.alive, nd.lam, opt.NodeIters, 0.3)
		if bound < nd.bound {
			bound = nd.bound // the parent's bound stays valid for the child
		}
		pruned := math.IsInf(bound, 1) // infeasible after propagation
		for !pruned {
			if s.hasInc && bound >= s.incObj-s.gapAbs() {
				pruned = true
				break
			}
			s.repair(nd.alive)
			if s.hasInc && bound >= s.incObj-s.gapAbs() {
				pruned = true
				break
			}
			if !s.hasInc || !s.fixRows(nd.alive) {
				break // nothing fixed: the node state is settled, branch
			}
			if !s.propagate(nd.alive) {
				pruned = true // fixing left no improving solution here
				break
			}
			if b := s.subgradient(nd.alive, nd.lam, opt.NodeIters, 0.3); b > bound {
				bound = b
			}
		}
		if pruned {
			continue
		}

		br, isRow, ok := s.branch(nd.alive)
		if !ok {
			continue
		}
		if isRow {
			// Row dichotomy: closed kills every arc into the row (propagate
			// does the killing from the row state); open charges the row
			// against the N_minR budget for the whole subtree. Row states
			// are monotone, so the tree stays finite.
			closed := &node{bound: bound, alive: nd.alive.clone(), rows: append([]int8(nil), nd.rows...), lam: append([]float64(nil), nd.lam...), depth: nd.depth + 1, seq: seq}
			seq++
			closed.rows[br] = rowClosed
			opened := &node{bound: bound, alive: nd.alive, rows: append([]int8(nil), nd.rows...), lam: nd.lam, depth: nd.depth + 1, seq: seq}
			seq++
			opened.rows[br] = rowOpen
			h.push(opened)
			h.push(closed)
			continue
		}
		c := s.clusterOf(br)
		// Child 1: forbid the arc. Arc branches leave row states untouched,
		// so both children alias the parent's rows slice (never mutated).
		forbid := &node{bound: bound, alive: nd.alive.clone(), rows: nd.rows, lam: append([]float64(nil), nd.lam...), depth: nd.depth + 1, seq: seq}
		seq++
		forbid.alive.clear(br)
		// Child 2: force the cluster onto the arc.
		force := &node{bound: bound, alive: nd.alive, rows: nd.rows, lam: nd.lam, depth: nd.depth + 1, seq: seq}
		seq++
		for a := s.start[c]; a < s.start[c+1]; a++ {
			if a != br {
				force.alive.clear(a)
			}
		}
		h.push(force)
		h.push(forbid)
	}

	if h.Len() == 0 {
		if s.hasInc {
			res.Status = milp.Optimal
			res.Bound = s.incObj
		} else {
			res.Status = milp.Infeasible
		}
		return finish(), nil
	}
	// Limit hit: the heap minimum is the tightest valid global lower bound,
	// capped by the fixing threshold — solutions excluded by reduced-cost
	// fixing are only known to be ≥ incObj − gapAbs.
	res.Bound = (*h)[0].bound
	if s.hasInc {
		if t := s.incObj - s.gapAbs(); t < res.Bound {
			res.Bound = t
		}
	}
	return finish(), nil
}

// warmStart validates a caller-supplied assignment against the root arcs,
// repairs clusters whose row is missing or over capacity, and offers the
// result as the initial incumbent.
func (s *search) warmStart(alive bitset, warm []int32) {
	if len(warm) != s.nC {
		return
	}
	for r := 0; r < s.nR; r++ {
		s.repLoad[r] = 0
		s.repOpen[r] = false
	}
	open := 0
	bad := false
	for c := 0; c < s.nC; c++ {
		a, ok := s.arcFor(int32(c), warm[c])
		if !ok || !alive.get(a) {
			s.repAssign[c] = -1
			bad = true
			continue
		}
		s.repAssign[c] = warm[c]
		r := warm[c]
		s.repLoad[r] += s.in.Width[c]
		if !s.repOpen[r] {
			s.repOpen[r] = true
			open++
		}
	}
	if open > s.in.NminR {
		return // stale beyond repair; the root repair will build one instead
	}
	for r := 0; r < s.nR; r++ {
		if s.repLoad[r] > s.in.Cap {
			return
		}
	}
	if bad {
		for _, c := range s.byWidth {
			if s.repAssign[c] >= 0 {
				continue
			}
			w := s.in.Width[c]
			bestA := int32(-1)
			bestC := math.Inf(1)
			for a := s.start[c]; a < s.start[c+1]; a++ {
				if !alive.get(a) {
					continue
				}
				r := s.arcRow[a]
				if s.repLoad[r]+w > s.in.Cap {
					continue
				}
				if s.repOpen[r] || open < s.in.NminR {
					if s.arcCost[a] < bestC {
						bestC, bestA = s.arcCost[a], a
					}
				}
			}
			if bestA < 0 {
				return
			}
			r := s.arcRow[bestA]
			s.repAssign[c] = r
			s.repLoad[r] += w
			if !s.repOpen[r] {
				s.repOpen[r] = true
				open++
			}
		}
	}
	var obj float64
	for c := 0; c < s.nC; c++ {
		a, ok := s.arcFor(int32(c), s.repAssign[c])
		if !ok {
			return
		}
		obj += s.arcCost[a]
	}
	s.offerIncumbent(s.repAssign, obj)
}

// aliveCount counts alive arcs; tests use it to assert branching shrinks
// the arc set.
func aliveCount(b bitset) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
