// Three-way differential suite for the structure-aware backend: on
// randomized oracle-sized instances, core.SolveRAP must agree exactly with
// both the brute-force oracle and the MILP branch-and-bound. An external
// test package so it can drive the production core entry points (core
// imports rap; rap_test may import core).
package rap_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"mthplace/internal/core"
	"mthplace/internal/errs"
	"mthplace/internal/milp"
	"mthplace/internal/oracle"
)

// exactOptions disable every approximation knob: no candidate pruning, an
// effectively unlimited node budget, strict degradation so anything short
// of a proven optimum is an error instead of a silent fallback.
func exactOptions(backend string) core.SolveOptions {
	return core.SolveOptions{
		Backend:       backend,
		CandidateRows: 0,
		MILP:          milp.Options{MaxNodes: 5_000_000},
		Degrade:       core.DegradeStrict,
	}
}

// diffModel builds a synthetic RAP instance small enough for the oracle.
// Costs are integer-valued floats so "equal objective" is unambiguous.
// slack guarantees feasibility; without it the instance sits at exact
// capacity and may be infeasible.
func diffModel(rng *rand.Rand, slack bool) *core.Model {
	nC := 1 + rng.Intn(8)
	nR := 2 + rng.Intn(7)
	for math.Pow(float64(nR), float64(nC)) > float64(2<<20) {
		nR--
	}
	nMinR := 1 + rng.Intn(nR)

	cl := &core.Clusters{
		Members: make([][]int32, nC),
		Width:   make([]int64, nC),
		CenterX: make([]float64, nC),
		CenterY: make([]float64, nC),
	}
	var total, maxW int64
	for c := 0; c < nC; c++ {
		cl.Width[c] = 1 + rng.Int63n(100)
		total += cl.Width[c]
		if cl.Width[c] > maxW {
			maxW = cl.Width[c]
		}
		cl.CenterX[c] = rng.Float64() * 1000
		cl.CenterY[c] = rng.Float64() * float64(nR) * 1000
	}
	capW := (total + int64(nMinR) - 1) / int64(nMinR)
	if capW < maxW {
		capW = maxW
	}
	if slack {
		capW += maxW
	}
	m := &core.Model{
		Clusters:    cl,
		NR:          nR,
		NminR:       nMinR,
		Cap:         capW,
		Cost:        make([][]float64, nC),
		PairCenterY: make([]int64, nR),
	}
	for r := 0; r < nR; r++ {
		m.PairCenterY[r] = int64(r)*1000 + 500
	}
	for c := 0; c < nC; c++ {
		m.Cost[c] = make([]float64, nR)
		for r := 0; r < nR; r++ {
			m.Cost[c][r] = float64(rng.Intn(1001))
		}
	}
	return m
}

// TestDifferentialRAPThreeWay is the acceptance differential for the rap
// backend: on 300 randomized feasible instances the rap objective must
// equal both the brute-force optimum and the MILP objective exactly, the
// assignment must pass the Eq. 3/4/5 audit, and optimality must be proven.
func TestDifferentialRAPThreeWay(t *testing.T) {
	rng := rand.New(rand.NewSource(1618))
	ctx := context.Background()
	for i := 0; i < 300; i++ {
		m := diffModel(rng, true)
		want, err := oracle.Solve(m)
		if err != nil {
			t.Fatalf("instance %d: oracle on guaranteed-feasible instance: %v", i, err)
		}
		ilp, err := core.Solve(ctx, m, exactOptions(core.BackendMILP))
		if err != nil {
			t.Fatalf("instance %d: milp backend: %v", i, err)
		}
		got, err := core.Solve(ctx, m, exactOptions(core.BackendRAP))
		if err != nil {
			t.Fatalf("instance %d: rap backend: %v", i, err)
		}
		if err := oracle.Feasibility(m, got); err != nil {
			t.Errorf("instance %d: rap solution fails audit: %v", i, err)
		}
		if !got.Stats.Optimal {
			t.Errorf("instance %d: rap did not prove optimality (status %v, %d nodes)",
				i, got.Stats.MILPStatus, got.Stats.Nodes)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Errorf("instance %d (%d clusters × %d rows, N_minR %d): rap objective %g, oracle optimum %g",
				i, m.Clusters.N(), m.NR, m.NminR, got.Objective, want.Objective)
		}
		if math.Abs(got.Objective-ilp.Objective) > 1e-6 {
			t.Errorf("instance %d: rap objective %g, milp objective %g", i, got.Objective, ilp.Objective)
		}
	}
}

// TestDifferentialRAPTightCapacity exercises instances at exact capacity,
// where infeasibility is possible. Whenever both the oracle and the rap
// backend solve, the objectives must agree; when the oracle proves the
// instance infeasible, the rap path must error too.
func TestDifferentialRAPTightCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	ctx := context.Background()
	solved, infeasible, greedyMiss := 0, 0, 0
	for i := 0; i < 100; i++ {
		m := diffModel(rng, false)
		want, wantErr := oracle.Solve(m)
		got, gotErr := core.Solve(ctx, m, exactOptions(core.BackendRAP))
		switch {
		case wantErr == nil && gotErr == nil:
			solved++
			if !got.Stats.Optimal {
				continue
			}
			if err := oracle.Feasibility(m, got); err != nil {
				t.Errorf("instance %d: rap solution fails audit: %v", i, err)
			}
			if math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Errorf("instance %d: rap objective %g, oracle optimum %g", i, got.Objective, want.Objective)
			}
		case wantErr != nil && gotErr == nil:
			t.Errorf("instance %d: oracle proves infeasible (%v) but rap returned objective %g",
				i, wantErr, got.Objective)
		case wantErr == nil && gotErr != nil:
			// The rap path, like the MILP path, seeds from the greedy
			// heuristic and gives up when the heuristic cannot pack — a
			// documented limitation, not an optimality bug.
			greedyMiss++
		default:
			infeasible++
			if !errors.Is(gotErr, errs.ErrInfeasible) && !errors.Is(gotErr, errs.ErrTransient) {
				t.Errorf("instance %d: infeasible instance returned %v", i, gotErr)
			}
		}
	}
	t.Logf("tight instances: %d solved, %d infeasible, %d greedy misses", solved, infeasible, greedyMiss)
	if solved == 0 {
		t.Error("no tight instance was solved by both solvers — generator is miscalibrated")
	}
}
