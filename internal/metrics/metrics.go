// Package metrics provides the normalisation and table-rendering helpers
// used to report the experiments exactly the way the paper does: per-flow
// "Normalized" rows are the mean over testcases of each flow's value divided
// by the reference flow's value, and the Fig. 4 parameter sweeps are 0–1
// normalised per testcase before averaging.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// NormalizedMean computes, per column, the mean over rows of
// value/row[baseCol] — the paper's "Normalized" summary. Rows whose base is
// zero are skipped.
func NormalizedMean(rows [][]float64, baseCol int) []float64 {
	if len(rows) == 0 {
		return nil
	}
	nCols := len(rows[0])
	sums := make([]float64, nCols)
	count := 0
	for _, row := range rows {
		if baseCol >= len(row) || row[baseCol] == 0 {
			continue
		}
		count++
		for c := 0; c < nCols && c < len(row); c++ {
			sums[c] += row[c] / row[baseCol]
		}
	}
	if count == 0 {
		return make([]float64, nCols)
	}
	for c := range sums {
		sums[c] /= float64(count)
	}
	return sums
}

// ZeroOne rescales a series to [0,1]; a constant series maps to all zeros.
func ZeroOne(vals []float64) []float64 {
	if len(vals) == 0 {
		return nil
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]float64, len(vals))
	if hi == lo {
		return out
	}
	for i, v := range vals {
		out[i] = (v - lo) / (hi - lo)
	}
	return out
}

// MeanColumns averages a set of equal-length series element-wise.
func MeanColumns(series [][]float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0])
	out := make([]float64, n)
	for _, s := range series {
		for i := 0; i < n && i < len(s); i++ {
			out[i] += s[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(series))
	}
	return out
}

// LinearFit returns slope, intercept and Pearson correlation of y on x.
func LinearFit(x, y []float64) (slope, intercept, r float64) {
	n := float64(len(x))
	if n == 0 || len(x) != len(y) {
		return 0, 0, 0
	}
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	vy := n*syy - sy*sy
	if vy <= 0 {
		return slope, intercept, 0
	}
	r = (n*sxy - sx*sy) / math.Sqrt(den*vy)
	return slope, intercept, r
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
