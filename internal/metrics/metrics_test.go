package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tb.Add("a", "1")
	tb.Add("longer-name", "2.5")
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "longer-name") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("got %d lines", len(lines))
	}
	// All table lines equal width.
	w := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != w {
			t.Errorf("ragged table line: %q", l)
		}
	}
}

func TestNormalizedMean(t *testing.T) {
	rows := [][]float64{
		{2, 4, 8},
		{1, 2, 4},
	}
	got := NormalizedMean(rows, 1)
	want := []float64{0.5, 1, 2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("col %d = %f, want %f", i, got[i], want[i])
		}
	}
	// Zero base rows are skipped.
	rows = append(rows, []float64{5, 0, 5})
	got = NormalizedMean(rows, 1)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("after zero row: col %d = %f, want %f", i, got[i], want[i])
		}
	}
	if NormalizedMean(nil, 0) != nil {
		t.Error("empty input must be nil")
	}
}

func TestZeroOne(t *testing.T) {
	got := ZeroOne([]float64{10, 20, 15})
	want := []float64{0, 1, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("idx %d = %f", i, got[i])
		}
	}
	for _, v := range ZeroOne([]float64{7, 7, 7}) {
		if v != 0 {
			t.Error("constant series must map to zeros")
		}
	}
}

func TestMeanColumns(t *testing.T) {
	got := MeanColumns([][]float64{{1, 2}, {3, 4}})
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("got %v", got)
	}
	if MeanColumns(nil) != nil {
		t.Error("empty input must be nil")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, r := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-9 || math.Abs(intercept-1) > 1e-9 {
		t.Errorf("fit = %f x + %f", slope, intercept)
	}
	if math.Abs(r-1) > 1e-9 {
		t.Errorf("r = %f, want 1", r)
	}
	// Degenerate inputs.
	if s, _, _ := LinearFit(nil, nil); s != 0 {
		t.Error("empty fit must be zero")
	}
	if s, i, _ := LinearFit([]float64{2, 2}, []float64{1, 5}); s != 0 || i != 3 {
		t.Errorf("vertical data: slope %f intercept %f", s, i)
	}
}

func TestF(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Error("F formatting wrong")
	}
}
