package lefdef

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/netlist"
	"mthplace/internal/tech"
)

// TestScanDEFMatchesReadDEF checks the streaming scanner sees exactly the
// records ReadDEF materialises, in the same order.
func TestScanDEFMatchesReadDEF(t *testing.T) {
	d := smallDesign(t)
	var buf bytes.Buffer
	if err := WriteDEF(&buf, d); err != nil {
		t.Fatal(err)
	}
	text := buf.Bytes()

	var name string
	var comps []DEFComponent
	var ports []DEFPort
	var nets int
	var netPins int
	clockNets := 0
	err := ScanDEF(bytes.NewReader(text), DEFVisitor{
		Design:    func(n string) error { name = n; return nil },
		Component: func(c DEFComponent) error { comps = append(comps, c); return nil },
		Port:      func(p DEFPort) error { ports = append(ports, p); return nil },
		Net: func(n DEFNet) error {
			nets++
			netPins += len(n.Pins)
			if n.Clock {
				clockNets++
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if name != d.Name {
		t.Fatalf("design name %q != %q", name, d.Name)
	}
	if len(comps) != len(d.Insts) {
		t.Fatalf("components %d != %d", len(comps), len(d.Insts))
	}
	if len(ports) != len(d.Ports) {
		t.Fatalf("ports %d != %d", len(ports), len(d.Ports))
	}
	if nets != len(d.Nets) {
		t.Fatalf("nets %d != %d", nets, len(d.Nets))
	}
	wantPins := 0
	for _, n := range d.Nets {
		wantPins += len(n.Pins)
	}
	if netPins != wantPins {
		t.Fatalf("net pin refs %d != %d", netPins, wantPins)
	}
	wantClock := 0
	if d.ClockNet != netlist.NoNet {
		wantClock = 1
	}
	if clockNets != wantClock {
		t.Fatalf("clock nets %d != %d", clockNets, wantClock)
	}
	for i, c := range comps {
		in := d.Insts[i]
		if c.Name != in.Name || c.Master != in.Master.Name ||
			c.X != in.Pos.X || c.Y != in.Pos.Y || c.Fixed != in.Fixed {
			t.Fatalf("component %d mismatch: %+v vs %+v", i, c, in)
		}
	}
}

// TestDEFWriterMatchesWriteDEF checks that replaying a scan through
// DEFWriter reproduces WriteDEF byte for byte.
func TestDEFWriterMatchesWriteDEF(t *testing.T) {
	d := smallDesign(t)
	var want bytes.Buffer
	if err := WriteDEF(&want, d); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	dw := NewDEFWriter(&got)
	dw.Header(d.Name, d.Die, d.ClockPeriodPs)
	dw.BeginComponents(len(d.Insts))
	for _, in := range d.Insts {
		dw.Component(DEFComponent{Name: in.Name, Master: in.Master.Name,
			X: in.Pos.X, Y: in.Pos.Y, Fixed: in.Fixed})
	}
	dw.EndComponents()
	dw.BeginPorts(len(d.Ports))
	for _, p := range d.Ports {
		dw.Port(DEFPort{Name: p.Name, Dir: p.Dir, X: p.Pos.X, Y: p.Pos.Y})
	}
	dw.EndPorts()
	dw.BeginNets(len(d.Nets))
	for ni, n := range d.Nets {
		var pins []DEFNetPin
		for _, ref := range n.Pins {
			if ref.IsPort() {
				pins = append(pins, DEFNetPin{Pin: d.Ports[ref.Pin].Name})
			} else {
				in := d.Insts[ref.Inst]
				pins = append(pins, DEFNetPin{Comp: in.Name, Pin: in.Master.Pins[ref.Pin].Name})
			}
		}
		dw.Net(DEFNet{Name: n.Name, Pins: pins, Clock: int32(ni) == d.ClockNet})
	}
	dw.EndNets()
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("DEFWriter output differs from WriteDEF (%d vs %d bytes)", want.Len(), got.Len())
	}
}

// TestScanDEFCallbackError checks callback errors abort the scan verbatim.
func TestScanDEFCallbackError(t *testing.T) {
	d := smallDesign(t)
	var buf bytes.Buffer
	if err := WriteDEF(&buf, d); err != nil {
		t.Fatal(err)
	}
	sentinel := fmt.Errorf("stop here")
	seen := 0
	err := ScanDEF(bytes.NewReader(buf.Bytes()), DEFVisitor{
		Component: func(DEFComponent) error {
			seen++
			if seen == 3 {
				return sentinel
			}
			return nil
		},
	})
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if seen != 3 {
		t.Fatalf("callback ran %d times, want 3", seen)
	}
}

// buildWideNetDEF writes a DEF whose single NETS statement is at least
// minLen bytes on one physical line, by repeating pin references. Connect
// replaces any prior connection of the same pin, so the repeats are legal
// and the parsed design stays valid.
func buildWideNetDEF(t testing.TB, minLen int) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("VERSION 5.8 ;\nDESIGN wide ;\nUNITS DISTANCE NANOMETERS 1 ;\n")
	sb.WriteString("DIEAREA ( 0 0 ) ( 100000 100000 ) ;\n")
	sb.WriteString("PROPERTY clockPeriodPs 1000 ;\n")
	sb.WriteString("COMPONENTS 2 ;\n")
	sb.WriteString("- u0 INV_X1_6T_RVT + PLACED ( 100 100 ) N ;\n")
	sb.WriteString("- u1 INV_X1_6T_RVT + PLACED ( 200 100 ) N ;\n")
	sb.WriteString("END COMPONENTS\n")
	sb.WriteString("PINS 0 ;\nEND PINS\n")
	sb.WriteString("NETS 1 ;\n")
	sb.WriteString("- wide ( u1 A )")
	for sb.Len() < minLen {
		sb.WriteString(" ( u0 A )")
	}
	sb.WriteString(" ( u0 Y ) ;\n")
	sb.WriteString("END NETS\nEND DESIGN\n")
	return sb.String()
}

// TestReadDEFOversizedNetLine is the regression test for the scanner token
// limit: a single NETS statement far larger than any fixed line buffer must
// parse. The old line-based tokenizer errored at its buffer cap; the
// token-level split function is line-length independent.
func TestReadDEFOversizedNetLine(t *testing.T) {
	// Well past the 64 KiB initial scanner buffer.
	minLen := 256 * 1024
	if !testing.Short() {
		// Past any plausible max buffer too (the old cap was 16 MiB).
		minLen = 20 * 1024 * 1024
	}
	text := buildWideNetDEF(t, minLen)
	d := newTestLibDesign(t, text)
	if len(d.Nets) != 1 {
		t.Fatalf("nets = %d, want 1", len(d.Nets))
	}
	// One connection per distinct pin survives the repeated refs.
	if got := len(d.Nets[0].Pins); got != 3 {
		t.Fatalf("net pins = %d, want 3 (u1/A, u0/A, u0/Y)", got)
	}
}

// TestScanDEFOversizedComment checks a comment longer than the scanner
// buffer is consumed incrementally rather than growing a token.
func TestScanDEFOversizedComment(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("VERSION 5.8 ;\nDESIGN c ;\n")
	sb.WriteString("# ")
	sb.WriteString(strings.Repeat("x", 8*1024*1024))
	sb.WriteString("\n")
	sb.WriteString("DIEAREA ( 0 0 ) ( 10 10 ) ;\n")
	sb.WriteString("COMPONENTS 0 ;\nEND COMPONENTS\n")
	sb.WriteString("PINS 0 ;\nEND PINS\nNETS 0 ;\nEND NETS\nEND DESIGN\n")
	var name string
	err := ScanDEF(strings.NewReader(sb.String()), DEFVisitor{
		Design: func(n string) error { name = n; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if name != "c" {
		t.Fatalf("design = %q, want c", name)
	}
}

// newTestLibDesign parses DEF text against the default library.
func newTestLibDesign(t testing.TB, text string) *netlist.Design {
	t.Helper()
	d, err := parseTestLibDesign(text)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func parseTestLibDesign(text string) (*netlist.Design, error) {
	tc := tech.Default()
	lib := celllib.New(tc)
	return ReadDEF(strings.NewReader(text), tc, lib, LibraryResolver(lib))
}
