// Package lefdef provides serialisation of designs in a compact LEF/DEF
// subset and the modified-LEF (mLEF) transform from the paper.
//
// The mLEF technique ([4], [10], §III of the paper) remaps every mixed
// track-height cell onto a single uniform height while preserving its area,
// so that a conventional single-height P&R tool can produce the
// unconstrained initial placement. Reverting the transform restores the real
// mixed-height masters.
package lefdef

import (
	"fmt"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/netlist"
)

// MLEF records an applied mLEF transform so it can be reverted.
type MLEF struct {
	// PairH is the uniform mLEF row-pair height; single mLEF rows are
	// PairH/2 tall.
	PairH int64
	// standins maps the true master to its uniform-height stand-in.
	standins map[*celllib.Master]*celllib.Master
}

// RowH returns the uniform single-row height of the transform.
func (m *MLEF) RowH() int64 { return m.PairH / 2 }

// Standin returns the uniform-height stand-in for a true master, creating it
// on first use. Stand-in width preserves the cell area (width × height),
// quantised up to the placement site grid; pin offsets are scaled into the
// new outline; timing and power parameters carry over unchanged (mLEF is a
// geometry-only trick).
func (m *MLEF) standin(d *netlist.Design, src *celllib.Master) *celllib.Master {
	if s, ok := m.standins[src]; ok {
		return s
	}
	rowH := m.RowH()
	area := src.Width * src.RowH
	sites := d.Tech.SitesFor((area + rowH - 1) / rowH)
	if sites < 1 {
		sites = 1
	}
	st := &celllib.Master{}
	*st = *src
	st.Name = src.Name + "_MLEF"
	st.Sites = sites
	st.Width = sites * d.Tech.SiteWidth
	st.RowH = rowH
	st.Pins = make([]celllib.PinDef, len(src.Pins))
	for i, p := range src.Pins {
		np := p
		np.Offset = geom.Point{
			X: scaleCoord(p.Offset.X, src.Width, st.Width),
			Y: scaleCoord(p.Offset.Y, src.RowH, st.RowH),
		}
		st.Pins[i] = np
	}
	m.standins[src] = st
	return st
}

func scaleCoord(v, from, to int64) int64 {
	if from <= 0 {
		return 0
	}
	out := v * to / from
	if out >= to {
		out = to - 1
	}
	if out < 0 {
		out = 0
	}
	return out
}

// ApplyMLEF converts the design to its uniform-height mLEF representation in
// place: every instance's Master becomes the area-preserving stand-in and
// Source remembers the true master. The uniform pair height follows the
// design's minority area ratio, per §III of the paper.
//
// Applying to a design already in mLEF form is an error.
func ApplyMLEF(d *netlist.Design) (*MLEF, error) {
	for _, in := range d.Insts {
		if in.Source != nil {
			return nil, fmt.Errorf("lefdef: design %s already in mLEF form", d.Name)
		}
	}
	m := &MLEF{
		PairH:    d.Tech.MLEFPairHeight(d.MinorityAreaFraction()),
		standins: make(map[*celllib.Master]*celllib.Master),
	}
	for _, in := range d.Insts {
		src := in.Master
		in.Source = src
		in.Master = m.standin(d, src)
	}
	return m, nil
}

// Revert restores the true mixed-height masters on a design previously
// transformed by ApplyMLEF. Instance positions are left untouched; callers
// re-legalize onto the mixed row stack afterwards.
func Revert(d *netlist.Design) error {
	for i, in := range d.Insts {
		if in.Source == nil {
			return fmt.Errorf("lefdef: instance %d (%s) is not in mLEF form", i, in.Name)
		}
		in.Master = in.Source
		in.Source = nil
	}
	return nil
}

// Standins returns the stand-in masters created so far, keyed by true master
// name; exposed for LEF export of the mLEF library.
func (m *MLEF) Standins() map[string]*celllib.Master {
	out := make(map[string]*celllib.Master, len(m.standins))
	for src, st := range m.standins {
		out[src.Name] = st
	}
	return out
}
