package lefdef

import (
	"bufio"
	"fmt"
	"io"

	"mthplace/internal/geom"
	"mthplace/internal/netlist"
)

// The streaming DEF layer: ScanDEF delivers a DEF file record by record to
// caller callbacks without ever materialising a design (memory is bounded by
// the widest single record — one net's pin list — not the file), and
// DEFWriter emits a DEF incrementally from whatever representation the
// caller iterates. ReadDEF and WriteDEF are thin adapters over these, so the
// in-memory and streaming paths share one parser and one formatter and
// cannot drift apart.

// DEFComponent is one COMPONENTS record.
type DEFComponent struct {
	Name   string
	Master string
	X, Y   int64
	Fixed  bool
}

// DEFPort is one PINS record (a primary IO port of the block).
type DEFPort struct {
	Name string
	Dir  netlist.PortDir
	X, Y int64
}

// DEFNetPin is one pin reference of a NETS record: instance pin Pin of
// component Comp, or, when Comp is empty, the primary port named Pin.
type DEFNetPin struct {
	Comp string
	Pin  string
}

// IsPort reports whether the reference names a primary port.
func (p DEFNetPin) IsPort() bool { return p.Comp == "" }

// DEFNet is one NETS record.
type DEFNet struct {
	Name  string
	Pins  []DEFNetPin
	Clock bool
}

// DEFVisitor receives the records of a DEF file in file order. Nil callbacks
// are skipped; any callback error aborts the scan and is returned verbatim.
type DEFVisitor struct {
	// Design receives the DESIGN name.
	Design func(name string) error
	// DieArea receives the DIEAREA rectangle.
	DieArea func(die geom.Rect) error
	// Property receives each top-level PROPERTY key/value record.
	Property func(key, value string) error
	// Component receives each COMPONENTS record.
	Component func(c DEFComponent) error
	// Port receives each PINS record.
	Port func(p DEFPort) error
	// Net receives each NETS record. The Pins slice is reused between
	// calls; callbacks that retain it must copy.
	Net func(n DEFNet) error
}

// ScanDEF parses the compact DEF subset from r, invoking the visitor per
// record. It holds one record in memory at a time and returns at END DESIGN
// (missing END DESIGN is an error, as in ReadDEF).
func ScanDEF(r io.Reader, v DEFVisitor) error {
	tok := newTokenizer(r)
	for {
		tk, ok := tok.next()
		if !ok {
			break
		}
		switch tk {
		case "DESIGN":
			name, _ := tok.next()
			if v.Design != nil {
				if err := v.Design(name); err != nil {
					return err
				}
			}
			tok.skipStatement()
		case "DIEAREA":
			coords, err := readCoords(tok, 2)
			if err != nil {
				return err
			}
			if v.DieArea != nil {
				if err := v.DieArea(geom.NewRect(coords[0].X, coords[0].Y, coords[1].X, coords[1].Y)); err != nil {
					return err
				}
			}
		case "PROPERTY":
			key, _ := tok.next()
			val, _ := tok.next()
			if v.Property != nil {
				if err := v.Property(key, val); err != nil {
					return err
				}
			}
			tok.skipStatement()
		case "COMPONENTS":
			if err := scanComponents(tok, v.Component); err != nil {
				return err
			}
		case "PINS":
			if err := scanPins(tok, v.Port); err != nil {
				return err
			}
		case "NETS":
			if err := scanNets(tok, v.Net); err != nil {
				return err
			}
		case "END":
			nxt, _ := tok.next()
			if nxt == "DESIGN" {
				return nil
			}
		default:
			tok.skipStatement()
		}
	}
	return fmt.Errorf("lefdef: missing END DESIGN")
}

func scanComponents(tok *tokenizer, emit func(DEFComponent) error) error {
	tok.skipStatement() // consume count
	for {
		tk, ok := tok.next()
		if !ok {
			return fmt.Errorf("lefdef: COMPONENTS unterminated")
		}
		if tk == "END" {
			tok.next() // COMPONENTS
			return nil
		}
		if tk != "-" {
			continue
		}
		var c DEFComponent
		c.Name, _ = tok.next()
		c.Master, _ = tok.next()
		// Parse "+ PLACED|FIXED ( x y ) N ;".
		for {
			t2, ok := tok.next()
			if !ok {
				return fmt.Errorf("lefdef: component %q unterminated", c.Name)
			}
			if t2 == ";" {
				break
			}
			switch t2 {
			case "PLACED", "FIXED":
				c.Fixed = t2 == "FIXED"
			case "(":
				x, err1 := tok.nextInt()
				y, err2 := tok.nextInt()
				if err1 != nil || err2 != nil {
					return fmt.Errorf("lefdef: component %q: bad location", c.Name)
				}
				tok.next() // ")"
				c.X, c.Y = x, y
			}
		}
		if emit != nil {
			if err := emit(c); err != nil {
				return err
			}
		}
	}
}

func scanPins(tok *tokenizer, emit func(DEFPort) error) error {
	tok.skipStatement()
	for {
		tk, ok := tok.next()
		if !ok {
			return fmt.Errorf("lefdef: PINS unterminated")
		}
		if tk == "END" {
			tok.next()
			return nil
		}
		if tk != "-" {
			continue
		}
		var p DEFPort
		p.Name, _ = tok.next()
		p.Dir = netlist.In
		for {
			t2, ok := tok.next()
			if !ok {
				return fmt.Errorf("lefdef: pin %q unterminated", p.Name)
			}
			if t2 == ";" {
				break
			}
			switch t2 {
			case "DIRECTION":
				v, _ := tok.next()
				if v == "OUTPUT" {
					p.Dir = netlist.Out
				}
			case "(":
				x, err1 := tok.nextInt()
				y, err2 := tok.nextInt()
				if err1 != nil || err2 != nil {
					return fmt.Errorf("lefdef: pin %q: bad location", p.Name)
				}
				tok.next() // ")"
				p.X, p.Y = x, y
			}
		}
		if emit != nil {
			if err := emit(p); err != nil {
				return err
			}
		}
	}
}

func scanNets(tok *tokenizer, emit func(DEFNet) error) error {
	tok.skipStatement()
	var pins []DEFNetPin // reused across records
	for {
		tk, ok := tok.next()
		if !ok {
			return fmt.Errorf("lefdef: NETS unterminated")
		}
		if tk == "END" {
			tok.next()
			return nil
		}
		if tk != "-" {
			continue
		}
		var n DEFNet
		n.Name, _ = tok.next()
		pins = pins[:0]
		for {
			t2, ok := tok.next()
			if !ok {
				return fmt.Errorf("lefdef: net %q unterminated", n.Name)
			}
			if t2 == ";" {
				break
			}
			switch t2 {
			case "(":
				a, _ := tok.next()
				b, _ := tok.next()
				if closer, _ := tok.next(); closer != ")" {
					return fmt.Errorf("lefdef: net %q: unclosed pin", n.Name)
				}
				if a == "PIN" {
					pins = append(pins, DEFNetPin{Pin: b})
				} else {
					pins = append(pins, DEFNetPin{Comp: a, Pin: b})
				}
			case "USE":
				use, _ := tok.next()
				if use == "CLOCK" {
					n.Clock = true
				}
			}
		}
		if emit != nil {
			n.Pins = pins
			if err := emit(n); err != nil {
				return err
			}
		}
	}
}

// DEFWriter emits the compact DEF subset incrementally. All writes go
// through one buffered writer; errors are sticky and surfaced by Close, so
// hot loops can call Component/Net without per-record error checks. The
// byte stream is identical to WriteDEF's for the same records in the same
// order.
type DEFWriter struct {
	bw  *bufio.Writer
	err error
}

// NewDEFWriter wraps w for incremental DEF emission.
func NewDEFWriter(w io.Writer) *DEFWriter {
	return &DEFWriter{bw: bufio.NewWriter(w)}
}

func (w *DEFWriter) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	if _, err := fmt.Fprintf(w.bw, format, args...); err != nil {
		w.err = err
	}
}

// Header writes the file preamble: version, design name, units, die area
// and the clock-period property.
func (w *DEFWriter) Header(name string, die geom.Rect, clockPeriodPs float64) {
	w.printf("VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE NANOMETERS 1 ;\n", name)
	w.printf("DIEAREA ( %d %d ) ( %d %d ) ;\n", die.Lo.X, die.Lo.Y, die.Hi.X, die.Hi.Y)
	w.printf("PROPERTY clockPeriodPs %s ;\n", ftoa(clockPeriodPs))
}

// BeginComponents opens the COMPONENTS section with its record count.
func (w *DEFWriter) BeginComponents(n int) { w.printf("COMPONENTS %d ;\n", n) }

// Component writes one COMPONENTS record.
func (w *DEFWriter) Component(c DEFComponent) {
	status := "PLACED"
	if c.Fixed {
		status = "FIXED"
	}
	w.printf("- %s %s + %s ( %d %d ) N ;\n", c.Name, c.Master, status, c.X, c.Y)
}

// EndComponents closes the COMPONENTS section.
func (w *DEFWriter) EndComponents() { w.printf("END COMPONENTS\n") }

// BeginPorts opens the PINS section with its record count.
func (w *DEFWriter) BeginPorts(n int) { w.printf("PINS %d ;\n", n) }

// Port writes one PINS record.
func (w *DEFWriter) Port(p DEFPort) {
	dir := "INPUT"
	if p.Dir == netlist.Out {
		dir = "OUTPUT"
	}
	w.printf("- %s + DIRECTION %s + PLACED ( %d %d ) ;\n", p.Name, dir, p.X, p.Y)
}

// EndPorts closes the PINS section.
func (w *DEFWriter) EndPorts() { w.printf("END PINS\n") }

// BeginNets opens the NETS section with its record count.
func (w *DEFWriter) BeginNets(n int) { w.printf("NETS %d ;\n", n) }

// Net writes one NETS record.
func (w *DEFWriter) Net(n DEFNet) {
	w.printf("- %s", n.Name)
	for _, p := range n.Pins {
		if p.IsPort() {
			w.printf(" ( PIN %s )", p.Pin)
		} else {
			w.printf(" ( %s %s )", p.Comp, p.Pin)
		}
	}
	if n.Clock {
		w.printf(" + USE CLOCK")
	}
	w.printf(" ;\n")
}

// EndNets closes the NETS section.
func (w *DEFWriter) EndNets() { w.printf("END NETS\n") }

// Close writes END DESIGN, flushes, and returns the first error seen.
func (w *DEFWriter) Close() error {
	w.printf("END DESIGN\n")
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}
