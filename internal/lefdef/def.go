package lefdef

import (
	"fmt"
	"io"
	"strconv"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/netlist"
	"mthplace/internal/tech"
)

// WriteDEF serialises a design in the compact DEF subset. All distances are
// DBU. The clock period and clock net are carried as PROPERTY records.
// It streams through DEFWriter, so memory stays flat regardless of design
// size.
func WriteDEF(w io.Writer, d *netlist.Design) error {
	dw := NewDEFWriter(w)
	dw.Header(d.Name, d.Die, d.ClockPeriodPs)

	dw.BeginComponents(len(d.Insts))
	for _, in := range d.Insts {
		dw.Component(DEFComponent{
			Name: in.Name, Master: in.Master.Name,
			X: in.Pos.X, Y: in.Pos.Y, Fixed: in.Fixed,
		})
	}
	dw.EndComponents()

	dw.BeginPorts(len(d.Ports))
	for _, p := range d.Ports {
		dw.Port(DEFPort{Name: p.Name, Dir: p.Dir, X: p.Pos.X, Y: p.Pos.Y})
	}
	dw.EndPorts()

	dw.BeginNets(len(d.Nets))
	var pins []DEFNetPin
	for ni, n := range d.Nets {
		pins = pins[:0]
		for _, ref := range n.Pins {
			if ref.IsPort() {
				pins = append(pins, DEFNetPin{Pin: d.Ports[ref.Pin].Name})
			} else {
				in := d.Insts[ref.Inst]
				pins = append(pins, DEFNetPin{Comp: in.Name, Pin: in.Master.Pins[ref.Pin].Name})
			}
		}
		dw.Net(DEFNet{Name: n.Name, Pins: pins, Clock: int32(ni) == d.ClockNet})
	}
	dw.EndNets()
	return dw.Close()
}

// MasterResolver maps a master name to its definition; used by ReadDEF.
type MasterResolver func(name string) *celllib.Master

// LibraryResolver adapts a celllib.Library to a MasterResolver.
func LibraryResolver(lib *celllib.Library) MasterResolver {
	return func(name string) *celllib.Master { return lib.Master(name) }
}

// ReadDEF parses the compact DEF subset into a design. Masters are resolved
// through the supplied resolver (use LibraryResolver for library cells, or a
// resolver over ReadLEF output for mLEF stand-ins). It is a materialising
// adapter over ScanDEF; callers that don't need the pointer-per-object
// design can use ScanDEF directly and keep memory flat.
func ReadDEF(r io.Reader, t *tech.Tech, lib *celllib.Library, resolve MasterResolver) (*netlist.Design, error) {
	d := &netlist.Design{Tech: t, Lib: lib, ClockNet: netlist.NoNet}
	instByName := map[string]int32{}
	portByName := map[string]int32{}
	err := ScanDEF(r, DEFVisitor{
		Design: func(name string) error {
			d.Name = name
			return nil
		},
		DieArea: func(die geom.Rect) error {
			d.Die = die
			return nil
		},
		Property: func(key, val string) error {
			if key == "clockPeriodPs" {
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return fmt.Errorf("lefdef: bad clock period %q", val)
				}
				d.ClockPeriodPs = f
			}
			return nil
		},
		Component: func(c DEFComponent) error {
			m := resolve(c.Master)
			if m == nil {
				return fmt.Errorf("lefdef: unknown master %q for component %q", c.Master, c.Name)
			}
			idx := d.AddInstance(c.Name, m)
			in := d.Insts[idx]
			in.Pos = geom.Point{X: c.X, Y: c.Y}
			in.Fixed = c.Fixed
			instByName[c.Name] = idx
			return nil
		},
		Port: func(p DEFPort) error {
			portByName[p.Name] = d.AddPort(p.Name, p.Dir, geom.Point{X: p.X, Y: p.Y})
			return nil
		},
		Net: func(n DEFNet) error {
			net := d.AddNet(n.Name)
			for _, ref := range n.Pins {
				if ref.IsPort() {
					pi, ok := portByName[ref.Pin]
					if !ok {
						return fmt.Errorf("lefdef: net %q: unknown port %q", n.Name, ref.Pin)
					}
					d.ConnectPort(pi, net)
					continue
				}
				ii, ok := instByName[ref.Comp]
				if !ok {
					return fmt.Errorf("lefdef: net %q: unknown component %q", n.Name, ref.Comp)
				}
				pin := pinIndexByName(d.Insts[ii].Master, ref.Pin)
				if pin < 0 {
					return fmt.Errorf("lefdef: net %q: unknown pin %q on %q", n.Name, ref.Pin, ref.Comp)
				}
				d.Connect(ii, int32(pin), net)
			}
			if n.Clock {
				d.ClockNet = net
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("lefdef: parsed design invalid: %w", err)
	}
	return d, nil
}

func readCoords(tok *tokenizer, n int) ([]geom.Point, error) {
	out := make([]geom.Point, 0, n)
	for len(out) < n {
		tk, ok := tok.next()
		if !ok {
			return nil, fmt.Errorf("lefdef: unexpected end in coordinates")
		}
		if tk != "(" {
			continue
		}
		x, err1 := tok.nextInt()
		y, err2 := tok.nextInt()
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("lefdef: bad coordinate pair")
		}
		if closer, _ := tok.next(); closer != ")" {
			return nil, fmt.Errorf("lefdef: unclosed coordinate")
		}
		out = append(out, geom.Point{X: x, Y: y})
	}
	tok.skipStatement()
	return out, nil
}

func pinIndexByName(m *celllib.Master, name string) int {
	for i, p := range m.Pins {
		if p.Name == name {
			return i
		}
	}
	return -1
}
