package lefdef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/netlist"
	"mthplace/internal/tech"
)

// WriteDEF serialises a design in the compact DEF subset. All distances are
// DBU. The clock period and clock net are carried as PROPERTY records.
func WriteDEF(w io.Writer, d *netlist.Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE NANOMETERS 1 ;\n", d.Name)
	fmt.Fprintf(bw, "DIEAREA ( %d %d ) ( %d %d ) ;\n", d.Die.Lo.X, d.Die.Lo.Y, d.Die.Hi.X, d.Die.Hi.Y)
	fmt.Fprintf(bw, "PROPERTY clockPeriodPs %s ;\n", ftoa(d.ClockPeriodPs))

	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(d.Insts))
	for _, in := range d.Insts {
		status := "PLACED"
		if in.Fixed {
			status = "FIXED"
		}
		fmt.Fprintf(bw, "- %s %s + %s ( %d %d ) N ;\n", in.Name, in.Master.Name, status, in.Pos.X, in.Pos.Y)
	}
	fmt.Fprintf(bw, "END COMPONENTS\n")

	fmt.Fprintf(bw, "PINS %d ;\n", len(d.Ports))
	for _, p := range d.Ports {
		dir := "INPUT"
		if p.Dir == netlist.Out {
			dir = "OUTPUT"
		}
		fmt.Fprintf(bw, "- %s + DIRECTION %s + PLACED ( %d %d ) ;\n", p.Name, dir, p.Pos.X, p.Pos.Y)
	}
	fmt.Fprintf(bw, "END PINS\n")

	fmt.Fprintf(bw, "NETS %d ;\n", len(d.Nets))
	for ni, n := range d.Nets {
		fmt.Fprintf(bw, "- %s", n.Name)
		for _, ref := range n.Pins {
			if ref.IsPort() {
				fmt.Fprintf(bw, " ( PIN %s )", d.Ports[ref.Pin].Name)
			} else {
				in := d.Insts[ref.Inst]
				fmt.Fprintf(bw, " ( %s %s )", in.Name, in.Master.Pins[ref.Pin].Name)
			}
		}
		if int32(ni) == d.ClockNet {
			fmt.Fprintf(bw, " + USE CLOCK")
		}
		fmt.Fprintf(bw, " ;\n")
	}
	fmt.Fprintf(bw, "END NETS\nEND DESIGN\n")
	return bw.Flush()
}

// MasterResolver maps a master name to its definition; used by ReadDEF.
type MasterResolver func(name string) *celllib.Master

// LibraryResolver adapts a celllib.Library to a MasterResolver.
func LibraryResolver(lib *celllib.Library) MasterResolver {
	return func(name string) *celllib.Master { return lib.Master(name) }
}

// ReadDEF parses the compact DEF subset into a design. Masters are resolved
// through the supplied resolver (use LibraryResolver for library cells, or a
// resolver over ReadLEF output for mLEF stand-ins).
func ReadDEF(r io.Reader, t *tech.Tech, lib *celllib.Library, resolve MasterResolver) (*netlist.Design, error) {
	tok := newTokenizer(r)
	d := &netlist.Design{Tech: t, Lib: lib, ClockNet: netlist.NoNet}
	instByName := map[string]int32{}
	portByName := map[string]int32{}
	for {
		tk, ok := tok.next()
		if !ok {
			break
		}
		switch tk {
		case "DESIGN":
			name, _ := tok.next()
			d.Name = name
			tok.skipStatement()
		case "DIEAREA":
			coords, err := readCoords(tok, 2)
			if err != nil {
				return nil, err
			}
			d.Die = geom.NewRect(coords[0].X, coords[0].Y, coords[1].X, coords[1].Y)
		case "PROPERTY":
			key, _ := tok.next()
			val, _ := tok.next()
			if key == "clockPeriodPs" {
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("lefdef: bad clock period %q", val)
				}
				d.ClockPeriodPs = f
			}
			tok.skipStatement()
		case "COMPONENTS":
			if err := readComponents(tok, d, resolve, instByName); err != nil {
				return nil, err
			}
		case "PINS":
			if err := readPins(tok, d, portByName); err != nil {
				return nil, err
			}
		case "NETS":
			if err := readNets(tok, d, instByName, portByName); err != nil {
				return nil, err
			}
		case "END":
			nxt, _ := tok.next()
			if nxt == "DESIGN" {
				if err := d.Validate(); err != nil {
					return nil, fmt.Errorf("lefdef: parsed design invalid: %w", err)
				}
				return d, nil
			}
		default:
			tok.skipStatement()
		}
	}
	return nil, fmt.Errorf("lefdef: missing END DESIGN")
}

func readCoords(tok *tokenizer, n int) ([]geom.Point, error) {
	out := make([]geom.Point, 0, n)
	for len(out) < n {
		tk, ok := tok.next()
		if !ok {
			return nil, fmt.Errorf("lefdef: unexpected end in coordinates")
		}
		if tk != "(" {
			continue
		}
		x, err1 := tok.nextInt()
		y, err2 := tok.nextInt()
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("lefdef: bad coordinate pair")
		}
		if closer, _ := tok.next(); closer != ")" {
			return nil, fmt.Errorf("lefdef: unclosed coordinate")
		}
		out = append(out, geom.Point{X: x, Y: y})
	}
	tok.skipStatement()
	return out, nil
}

func readComponents(tok *tokenizer, d *netlist.Design, resolve MasterResolver, byName map[string]int32) error {
	tok.skipStatement() // consume count
	for {
		tk, ok := tok.next()
		if !ok {
			return fmt.Errorf("lefdef: COMPONENTS unterminated")
		}
		if tk == "END" {
			tok.next() // COMPONENTS
			return nil
		}
		if tk != "-" {
			continue
		}
		name, _ := tok.next()
		masterName, _ := tok.next()
		m := resolve(masterName)
		if m == nil {
			return fmt.Errorf("lefdef: unknown master %q for component %q", masterName, name)
		}
		idx := d.AddInstance(name, m)
		byName[name] = idx
		// Parse "+ PLACED|FIXED ( x y ) N ;".
		for {
			t2, ok := tok.next()
			if !ok {
				return fmt.Errorf("lefdef: component %q unterminated", name)
			}
			if t2 == ";" {
				break
			}
			switch t2 {
			case "PLACED", "FIXED":
				d.Insts[idx].Fixed = t2 == "FIXED"
			case "(":
				x, err1 := tok.nextInt()
				y, err2 := tok.nextInt()
				if err1 != nil || err2 != nil {
					return fmt.Errorf("lefdef: component %q: bad location", name)
				}
				tok.next() // ")"
				d.Insts[idx].Pos = geom.Point{X: x, Y: y}
			}
		}
	}
}

func readPins(tok *tokenizer, d *netlist.Design, byName map[string]int32) error {
	tok.skipStatement()
	for {
		tk, ok := tok.next()
		if !ok {
			return fmt.Errorf("lefdef: PINS unterminated")
		}
		if tk == "END" {
			tok.next()
			return nil
		}
		if tk != "-" {
			continue
		}
		name, _ := tok.next()
		dir := netlist.In
		var pos geom.Point
		for {
			t2, ok := tok.next()
			if !ok {
				return fmt.Errorf("lefdef: pin %q unterminated", name)
			}
			if t2 == ";" {
				break
			}
			switch t2 {
			case "DIRECTION":
				v, _ := tok.next()
				if v == "OUTPUT" {
					dir = netlist.Out
				}
			case "(":
				x, err1 := tok.nextInt()
				y, err2 := tok.nextInt()
				if err1 != nil || err2 != nil {
					return fmt.Errorf("lefdef: pin %q: bad location", name)
				}
				tok.next() // ")"
				pos = geom.Point{X: x, Y: y}
			}
		}
		byName[name] = d.AddPort(name, dir, pos)
	}
}

func readNets(tok *tokenizer, d *netlist.Design, instByName, portByName map[string]int32) error {
	tok.skipStatement()
	for {
		tk, ok := tok.next()
		if !ok {
			return fmt.Errorf("lefdef: NETS unterminated")
		}
		if tk == "END" {
			tok.next()
			return nil
		}
		if tk != "-" {
			continue
		}
		name, _ := tok.next()
		net := d.AddNet(name)
		for {
			t2, ok := tok.next()
			if !ok {
				return fmt.Errorf("lefdef: net %q unterminated", name)
			}
			if t2 == ";" {
				break
			}
			switch t2 {
			case "(":
				a, _ := tok.next()
				b, _ := tok.next()
				if closer, _ := tok.next(); closer != ")" {
					return fmt.Errorf("lefdef: net %q: unclosed pin", name)
				}
				if a == "PIN" {
					pi, ok := portByName[b]
					if !ok {
						return fmt.Errorf("lefdef: net %q: unknown port %q", name, b)
					}
					d.ConnectPort(pi, net)
					continue
				}
				ii, ok := instByName[a]
				if !ok {
					return fmt.Errorf("lefdef: net %q: unknown component %q", name, a)
				}
				pin := pinIndexByName(d.Insts[ii].Master, b)
				if pin < 0 {
					return fmt.Errorf("lefdef: net %q: unknown pin %q on %q", name, b, a)
				}
				d.Connect(ii, int32(pin), net)
			case "USE":
				use, _ := tok.next()
				if use == "CLOCK" {
					d.ClockNet = net
				}
			}
		}
	}
}

func pinIndexByName(m *celllib.Master, name string) int {
	for i, p := range m.Pins {
		if p.Name == name {
			return i
		}
	}
	return -1
}
