package lefdef

import (
	"bytes"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

// FuzzLEFDEFRoundtrip feeds arbitrary bytes to both parsers. Neither may
// panic; whenever an input parses, serialising and re-parsing it must reach
// a fixpoint (write → read → write produces identical bytes), which pins
// down lossless round-tripping for every input the fuzzer can construct.
func FuzzLEFDEFRoundtrip(f *testing.F) {
	tc := tech.Default()
	lib := celllib.New(tc)

	var lef bytes.Buffer
	if err := WriteLEF(&lef, tc, lib.Masters()); err != nil {
		f.Fatal(err)
	}
	f.Add(lef.Bytes())

	opt := synth.DefaultOptions()
	opt.Scale = 0.005
	d, err := synth.Generate(tc, lib, synth.TableII()[0], opt)
	if err != nil {
		f.Fatal(err)
	}
	var def bytes.Buffer
	if err := WriteDEF(&def, d); err != nil {
		f.Fatal(err)
	}
	f.Add(def.Bytes())
	f.Add([]byte("MACRO a\nSIZE 10 BY 20 ;\nEND a\nEND LIBRARY\n"))
	f.Add([]byte("VERSION 5.8 ;\nDESIGN x ;\nEND DESIGN\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if masters, err := ReadLEF(bytes.NewReader(data)); err == nil {
			var w1, w2 bytes.Buffer
			if err := WriteLEF(&w1, tc, masters); err != nil {
				t.Fatalf("write parsed LEF: %v", err)
			}
			again, err := ReadLEF(bytes.NewReader(w1.Bytes()))
			if err != nil {
				t.Fatalf("re-read own LEF output: %v", err)
			}
			if err := WriteLEF(&w2, tc, again); err != nil {
				t.Fatalf("re-write LEF: %v", err)
			}
			if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
				t.Fatal("LEF write→read→write is not a fixpoint")
			}
		}

		if parsed, err := ReadDEF(bytes.NewReader(data), tc, lib, LibraryResolver(lib)); err == nil {
			var w1, w2 bytes.Buffer
			if err := WriteDEF(&w1, parsed); err != nil {
				t.Fatalf("write parsed DEF: %v", err)
			}
			again, err := ReadDEF(bytes.NewReader(w1.Bytes()), tc, lib, LibraryResolver(lib))
			if err != nil {
				t.Fatalf("re-read own DEF output: %v", err)
			}
			if err := WriteDEF(&w2, again); err != nil {
				t.Fatalf("re-write DEF: %v", err)
			}
			if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
				t.Fatal("DEF write→read→write is not a fixpoint")
			}
		}
	})
}

// FuzzStreamDEF checks the streaming scanner against the materialising
// reader on arbitrary bytes: ScanDEF must never panic, and whenever ReadDEF
// accepts an input, ScanDEF must accept it too and deliver the same record
// counts. (The converse does not hold: ScanDEF performs no name resolution,
// so it accepts inputs ReadDEF rejects.)
func FuzzStreamDEF(f *testing.F) {
	tc := tech.Default()
	lib := celllib.New(tc)

	opt := synth.DefaultOptions()
	opt.Scale = 0.005
	d, err := synth.Generate(tc, lib, synth.TableII()[0], opt)
	if err != nil {
		f.Fatal(err)
	}
	var def bytes.Buffer
	if err := WriteDEF(&def, d); err != nil {
		f.Fatal(err)
	}
	f.Add(def.Bytes())
	f.Add([]byte("VERSION 5.8 ;\nDESIGN x ;\nEND DESIGN\n"))
	f.Add([]byte("NETS 1 ;\n- n ( PIN p ) ( u A ) + USE CLOCK ;\nEND NETS\nEND DESIGN\n"))
	f.Add([]byte("# comment\nDIEAREA ( 0 0 ) ( 1 1 ) ;\nEND DESIGN\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var comps, ports, nets, netPins int
		scanErr := ScanDEF(bytes.NewReader(data), DEFVisitor{
			Component: func(DEFComponent) error { comps++; return nil },
			Port:      func(DEFPort) error { ports++; return nil },
			Net: func(n DEFNet) error {
				nets++
				netPins += len(n.Pins)
				return nil
			},
		})

		parsed, readErr := ReadDEF(bytes.NewReader(data), tc, lib, LibraryResolver(lib))
		if readErr != nil {
			return
		}
		if scanErr != nil {
			t.Fatalf("ReadDEF accepted input but ScanDEF failed: %v", scanErr)
		}
		if comps != len(parsed.Insts) || ports != len(parsed.Ports) || nets != len(parsed.Nets) {
			t.Fatalf("record counts diverge: scan %d/%d/%d, read %d/%d/%d",
				comps, ports, nets, len(parsed.Insts), len(parsed.Ports), len(parsed.Nets))
		}
		wantPins := 0
		for _, n := range parsed.Nets {
			wantPins += len(n.Pins)
		}
		if netPins < wantPins {
			// Repeated refs collapse in the design, so scan sees >= read.
			t.Fatalf("scan net pin refs %d < design %d", netPins, wantPins)
		}
	})
}
