package lefdef

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/tech"
)

// WriteLEF serialises a set of masters in the compact LEF subset used by
// this project. All distances are in DBU (nanometres). Timing and power
// parameters are carried as PROPERTY records so the round trip is lossless.
func WriteLEF(w io.Writer, t *tech.Tech, masters []*celllib.Master) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nUNITS DATABASE NANOMETERS 1 ;\n")
	fmt.Fprintf(bw, "SITE coreSite SIZE %d BY %d ;\n", t.SiteWidth, t.RowHeight6T)
	sorted := append([]*celllib.Master(nil), masters...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, m := range sorted {
		fmt.Fprintf(bw, "MACRO %s\n", m.Name)
		fmt.Fprintf(bw, "  CLASS CORE ;\n")
		fmt.Fprintf(bw, "  SIZE %d BY %d ;\n", m.Width, m.RowH)
		fmt.Fprintf(bw, "  PROPERTY kind %d drive %d height %d vt %d seq %d ;\n",
			m.Kind, m.Drive, m.Height, m.VT, boolInt(m.Sequential))
		fmt.Fprintf(bw, "  PROPERTY delay %s res %s energy %s leak %s ;\n",
			ftoa(m.IntrinsicDelay), ftoa(m.DriveRes), ftoa(m.InternalEnergy), ftoa(m.Leakage))
		for _, p := range m.Pins {
			dir := "INPUT"
			if p.Dir == celllib.Output {
				dir = "OUTPUT"
			}
			fmt.Fprintf(bw, "  PIN %s DIRECTION %s CAP %s ORIGIN %d %d ;\n",
				p.Name, dir, ftoa(p.Cap), p.Offset.X, p.Offset.Y)
		}
		fmt.Fprintf(bw, "END %s\n", m.Name)
	}
	fmt.Fprintf(bw, "END LIBRARY\n")
	return bw.Flush()
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ReadLEF parses the compact LEF subset back into masters.
func ReadLEF(r io.Reader) ([]*celllib.Master, error) {
	tok := newTokenizer(r)
	var masters []*celllib.Master
	for {
		t, ok := tok.next()
		if !ok {
			break
		}
		switch t {
		case "MACRO":
			m, err := readMacro(tok)
			if err != nil {
				return nil, err
			}
			masters = append(masters, m)
		case "END":
			nxt, _ := tok.next()
			if nxt == "LIBRARY" {
				return masters, nil
			}
		default:
			// VERSION/UNITS/SITE headers: skip to end of statement.
			tok.skipStatement()
		}
	}
	return masters, nil
}

func readMacro(tok *tokenizer) (*celllib.Master, error) {
	name, ok := tok.next()
	if !ok {
		return nil, fmt.Errorf("lefdef: MACRO without name")
	}
	m := &celllib.Master{Name: name}
	for {
		t, ok := tok.next()
		if !ok {
			return nil, fmt.Errorf("lefdef: MACRO %s not terminated", name)
		}
		switch t {
		case "END":
			endName, _ := tok.next()
			if endName != name {
				return nil, fmt.Errorf("lefdef: MACRO %s terminated by END %s", name, endName)
			}
			return m, nil
		case "CLASS":
			tok.skipStatement()
		case "SIZE":
			w, err1 := tok.nextInt()
			by, _ := tok.next()
			h, err2 := tok.nextInt()
			if err1 != nil || err2 != nil || by != "BY" {
				return nil, fmt.Errorf("lefdef: MACRO %s: bad SIZE", name)
			}
			m.Width, m.RowH = w, h
			tok.skipStatement()
		case "PROPERTY":
			if err := readProperty(tok, m); err != nil {
				return nil, fmt.Errorf("lefdef: MACRO %s: %w", name, err)
			}
		case "PIN":
			p, err := readPin(tok)
			if err != nil {
				return nil, fmt.Errorf("lefdef: MACRO %s: %w", name, err)
			}
			m.Pins = append(m.Pins, p)
		default:
			tok.skipStatement()
		}
	}
}

func readProperty(tok *tokenizer, m *celllib.Master) error {
	for {
		key, ok := tok.next()
		if !ok {
			return fmt.Errorf("unterminated PROPERTY")
		}
		if key == ";" {
			return nil
		}
		val, ok := tok.next()
		if !ok {
			return fmt.Errorf("PROPERTY %s without value", key)
		}
		switch key {
		case "kind":
			v, err := strconv.Atoi(val)
			if err != nil {
				return err
			}
			m.Kind = celllib.Kind(v)
		case "drive":
			v, err := strconv.Atoi(val)
			if err != nil {
				return err
			}
			m.Drive = v
		case "height":
			v, err := strconv.Atoi(val)
			if err != nil {
				return err
			}
			m.Height = tech.TrackHeight(v)
		case "vt":
			v, err := strconv.Atoi(val)
			if err != nil {
				return err
			}
			m.VT = celllib.VT(v)
		case "seq":
			m.Sequential = val == "1"
		case "delay":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return err
			}
			m.IntrinsicDelay = f
		case "res":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return err
			}
			m.DriveRes = f
		case "energy":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return err
			}
			m.InternalEnergy = f
		case "leak":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return err
			}
			m.Leakage = f
		}
	}
}

func readPin(tok *tokenizer) (celllib.PinDef, error) {
	var p celllib.PinDef
	name, ok := tok.next()
	if !ok {
		return p, fmt.Errorf("PIN without name")
	}
	p.Name = name
	for {
		t, ok := tok.next()
		if !ok {
			return p, fmt.Errorf("PIN %s unterminated", name)
		}
		switch t {
		case ";":
			return p, nil
		case "DIRECTION":
			dir, _ := tok.next()
			if dir == "OUTPUT" {
				p.Dir = celllib.Output
			} else {
				p.Dir = celllib.Input
			}
		case "CAP":
			v, _ := tok.next()
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return p, fmt.Errorf("PIN %s: bad CAP %q", name, v)
			}
			p.Cap = f
		case "ORIGIN":
			x, err1 := tok.nextInt()
			y, err2 := tok.nextInt()
			if err1 != nil || err2 != nil {
				return p, fmt.Errorf("PIN %s: bad ORIGIN", name)
			}
			p.Offset = geom.Point{X: x, Y: y}
		}
	}
}

// tokenizer splits the LEF/DEF text into whitespace-delimited tokens,
// treating parentheses and semicolons as standalone tokens and '#' as a
// comment to end of line. Tokens are produced by a byte-level bufio.Scanner
// split function, so statement and comment length is unbounded — the old
// line-based scanner capped a single NETS statement at its buffer size,
// which million-cell DEF overflows. Only one token needs to fit in the
// buffer (names and numbers, never a whole line).
type tokenizer struct {
	sc        *bufio.Scanner
	inComment bool
}

func newTokenizer(r io.Reader) *tokenizer {
	t := &tokenizer{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	sc.Split(t.split)
	t.sc = sc
	return t
}

func isTokenSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// split implements bufio.SplitFunc. It carries one bit of state — whether
// the scan position is inside a '#' comment — so comments longer than the
// read buffer are consumed incrementally instead of growing it.
func (t *tokenizer) split(data []byte, atEOF bool) (advance int, token []byte, err error) {
	i := 0
	for {
		if t.inComment {
			j := bytes.IndexByte(data[i:], '\n')
			if j < 0 {
				return len(data), nil, nil // discard, stay in comment
			}
			t.inComment = false
			i += j + 1
		}
		for i < len(data) && isTokenSpace(data[i]) {
			i++
		}
		if i < len(data) && data[i] == '#' {
			t.inComment = true
			i++
			continue
		}
		break
	}
	if i >= len(data) {
		return i, nil, nil // all whitespace/comment: consume and refill
	}
	switch data[i] {
	case '(', ')', ';':
		return i + 1, data[i : i+1], nil
	}
	j := i
	for j < len(data) && !isTokenSpace(data[j]) && data[j] != '(' && data[j] != ')' && data[j] != ';' && data[j] != '#' {
		j++
	}
	if j == len(data) && !atEOF {
		return i, nil, nil // word may continue past the buffer: refill
	}
	return j, data[i:j], nil
}

func (t *tokenizer) next() (string, bool) {
	if !t.sc.Scan() {
		return "", false
	}
	return t.sc.Text(), true
}

func (t *tokenizer) nextInt() (int64, error) {
	s, ok := t.next()
	if !ok {
		return 0, fmt.Errorf("lefdef: unexpected end of input")
	}
	return strconv.ParseInt(s, 10, 64)
}

// skipStatement consumes tokens up to and including the next semicolon.
func (t *tokenizer) skipStatement() {
	for {
		tk, ok := t.next()
		if !ok || tk == ";" {
			return
		}
	}
}
