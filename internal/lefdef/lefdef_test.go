package lefdef

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/netlist"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func smallDesign(t *testing.T) *netlist.Design {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = 0.01
	d, err := synth.Generate(tc, lib, synth.TableII()[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestApplyMLEFPreservesArea(t *testing.T) {
	d := smallDesign(t)
	origArea := make([]int64, len(d.Insts))
	for i, in := range d.Insts {
		origArea[i] = in.Master.Width * in.Master.RowH
	}
	m, err := ApplyMLEF(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.PairH%2 != 0 {
		t.Fatalf("mLEF pair height %d must be even", m.PairH)
	}
	rowH := m.RowH()
	site := d.Tech.SiteWidth
	for i, in := range d.Insts {
		if in.Source == nil {
			t.Fatalf("inst %d lost its source master", i)
		}
		if in.Master.RowH != rowH {
			t.Fatalf("inst %d stand-in height %d != mLEF row %d", i, in.Master.RowH, rowH)
		}
		if in.Master.Width%site != 0 {
			t.Fatalf("inst %d stand-in width %d off site grid", i, in.Master.Width)
		}
		newArea := in.Master.Width * in.Master.RowH
		// Area preserved up to one site-row quantum.
		if newArea < origArea[i] || newArea-origArea[i] >= site*rowH {
			t.Fatalf("inst %d area %d -> %d not preserved within a site", i, origArea[i], newArea)
		}
	}
}

func TestMLEFStandinsShared(t *testing.T) {
	d := smallDesign(t)
	m, err := ApplyMLEF(d)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]*celllib.Master{}
	for _, in := range d.Insts {
		if prev, ok := seen[in.Source.Name]; ok {
			if prev != in.Master {
				t.Fatalf("master %s has two distinct stand-ins", in.Source.Name)
			}
		}
		seen[in.Source.Name] = in.Master
	}
	if len(m.Standins()) != len(seen) {
		t.Errorf("Standins() size %d != distinct masters %d", len(m.Standins()), len(seen))
	}
}

func TestMLEFPinOffsetsInside(t *testing.T) {
	d := smallDesign(t)
	if _, err := ApplyMLEF(d); err != nil {
		t.Fatal(err)
	}
	for _, in := range d.Insts {
		for _, p := range in.Master.Pins {
			if p.Offset.X < 0 || p.Offset.X >= in.Master.Width ||
				p.Offset.Y < 0 || p.Offset.Y >= in.Master.RowH {
				t.Fatalf("stand-in %s pin %s offset %v outside %dx%d",
					in.Master.Name, p.Name, p.Offset, in.Master.Width, in.Master.RowH)
			}
		}
	}
}

func TestMLEFRevertRoundTrip(t *testing.T) {
	d := smallDesign(t)
	orig := make([]*celllib.Master, len(d.Insts))
	for i, in := range d.Insts {
		orig[i] = in.Master
	}
	if _, err := ApplyMLEF(d); err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyMLEF(d); err == nil {
		t.Fatal("double ApplyMLEF must fail")
	}
	if err := Revert(d); err != nil {
		t.Fatal(err)
	}
	for i, in := range d.Insts {
		if in.Master != orig[i] || in.Source != nil {
			t.Fatalf("inst %d not reverted", i)
		}
	}
	if err := Revert(d); err == nil {
		t.Fatal("double Revert must fail")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLEFRoundTrip(t *testing.T) {
	tc := tech.Default()
	lib := celllib.New(tc)
	masters := lib.Masters()[:12]
	var buf bytes.Buffer
	if err := WriteLEF(&buf, tc, masters); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLEF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(masters) {
		t.Fatalf("round trip lost masters: %d -> %d", len(masters), len(back))
	}
	byName := map[string]*celllib.Master{}
	for _, m := range back {
		byName[m.Name] = m
	}
	for _, want := range masters {
		got := byName[want.Name]
		if got == nil {
			t.Fatalf("master %s missing after round trip", want.Name)
		}
		if got.Width != want.Width || got.RowH != want.RowH {
			t.Errorf("%s: size %dx%d != %dx%d", want.Name, got.Width, got.RowH, want.Width, want.RowH)
		}
		if got.Kind != want.Kind || got.Drive != want.Drive || got.Height != want.Height ||
			got.VT != want.VT || got.Sequential != want.Sequential {
			t.Errorf("%s: identity fields changed", want.Name)
		}
		if math.Abs(got.DriveRes-want.DriveRes) > 1e-12 || math.Abs(got.IntrinsicDelay-want.IntrinsicDelay) > 1e-12 {
			t.Errorf("%s: timing fields changed", want.Name)
		}
		if len(got.Pins) != len(want.Pins) {
			t.Fatalf("%s: pin count %d != %d", want.Name, len(got.Pins), len(want.Pins))
		}
		for i := range want.Pins {
			if got.Pins[i] != want.Pins[i] {
				t.Errorf("%s pin %d: %+v != %+v", want.Name, i, got.Pins[i], want.Pins[i])
			}
		}
	}
}

func TestReadLEFRejectsBadInput(t *testing.T) {
	if _, err := ReadLEF(strings.NewReader("MACRO FOO\nSIZE x BY 2 ;\nEND FOO\nEND LIBRARY\n")); err == nil {
		t.Error("bad SIZE must error")
	}
	if _, err := ReadLEF(strings.NewReader("MACRO FOO\nEND BAR\n")); err == nil {
		t.Error("mismatched END must error")
	}
}

func TestDEFRoundTrip(t *testing.T) {
	d := smallDesign(t)
	var buf bytes.Buffer
	if err := WriteDEF(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDEF(&buf, d.Tech, d.Lib, LibraryResolver(d.Lib))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name || back.Die != d.Die || back.ClockPeriodPs != d.ClockPeriodPs {
		t.Errorf("header fields changed: %s %v %f", back.Name, back.Die, back.ClockPeriodPs)
	}
	if len(back.Insts) != len(d.Insts) || len(back.Nets) != len(d.Nets) || len(back.Ports) != len(d.Ports) {
		t.Fatalf("element counts changed")
	}
	if back.ClockNet == netlist.NoNet {
		t.Fatal("clock net lost")
	}
	if back.Nets[back.ClockNet].Name != d.Nets[d.ClockNet].Name {
		t.Error("clock net identity changed")
	}
	for i, in := range d.Insts {
		bi := back.Insts[i]
		if bi.Name != in.Name || bi.Master != in.Master || bi.Pos != in.Pos {
			t.Fatalf("inst %d changed: %+v vs %+v", i, bi, in)
		}
	}
	if back.TotalHPWL() != d.TotalHPWL() {
		t.Errorf("HPWL changed: %d != %d", back.TotalHPWL(), d.TotalHPWL())
	}
}

func TestDEFRoundTripMLEF(t *testing.T) {
	d := smallDesign(t)
	m, err := ApplyMLEF(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDEF(&buf, d); err != nil {
		t.Fatal(err)
	}
	standins := m.Standins()
	byName := map[string]*celllib.Master{}
	for _, st := range standins {
		byName[st.Name] = st
	}
	resolve := func(name string) *celllib.Master {
		if st, ok := byName[name]; ok {
			return st
		}
		return d.Lib.Master(name)
	}
	back, err := ReadDEF(&buf, d.Tech, d.Lib, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Insts) != len(d.Insts) {
		t.Fatal("instance count changed")
	}
	for i, in := range back.Insts {
		if in.Master != d.Insts[i].Master {
			t.Fatalf("inst %d stand-in not resolved", i)
		}
	}
}

func TestReadDEFUnknownMaster(t *testing.T) {
	d := smallDesign(t)
	var buf bytes.Buffer
	if err := WriteDEF(&buf, d); err != nil {
		t.Fatal(err)
	}
	_, err := ReadDEF(&buf, d.Tech, d.Lib, func(string) *celllib.Master { return nil })
	if err == nil {
		t.Error("unknown master must error")
	}
}
