package flow

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mthplace/internal/obs"
	"mthplace/internal/synth"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTraceSchemaGolden pins the span schema a local -trace run records: the
// same trace_id/span_id/parent_id chain the distributed fabric merges, so an
// rcplace -trace file and a GET /v1/jobs/{id}/trace response are one format.
// The run is fully deterministic (fixed synth seed, baseline flow with no
// solver-incumbent variability); trace and span IDs plus timestamps are
// normalized before comparing against the golden file.
func TestTraceSchemaGolden(t *testing.T) {
	tr := obs.NewTracerFor("rcplace")
	ctx := obs.WithTracer(t.Context(), tr)
	// A fixed root span context stands in for rcplace's minted one.
	root := obs.SpanContext{TraceID: "0af7651916cd43dd8448eb211c80319c", SpanID: "b7ad6b7169203331"}
	ctx = obs.WithSpanContext(ctx, root)

	r, err := NewRunner(ctx, synth.TableII()[0], testConfig(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, Flow2, false); err != nil {
		t.Fatal(err)
	}

	recs := tr.Records()
	if len(recs) == 0 {
		t.Fatal("run recorded no spans")
	}
	// Normalize: span IDs become span-NN in first-appearance order, the
	// trace ID becomes "trace", wall-clock fields become ordinals.
	ids := map[string]string{root.SpanID: "root"}
	alias := func(id string) string {
		if id == "" {
			return ""
		}
		if a, ok := ids[id]; ok {
			return a
		}
		a := fmt.Sprintf("span-%02d", len(ids))
		ids[id] = a
		return a
	}
	for i := range recs {
		if recs[i].TraceID != root.TraceID {
			t.Errorf("record %q has trace %q, want the root's %q", recs[i].Name, recs[i].TraceID, root.TraceID)
		}
		recs[i].TraceID = "trace"
		recs[i].SpanID = alias(recs[i].SpanID)
		recs[i].Parent = alias(recs[i].Parent)
		recs[i].StartUS = int64(i)
		if recs[i].DurUS != 0 {
			recs[i].DurUS = 1
		}
		delete(recs[i].Args, "error")
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(recs); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_schema.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace schema drifted from golden (re-run with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
