package flow

import (
	"context"
	"fmt"
	"time"

	"mthplace/internal/finflex"
	"mthplace/internal/lefdef"
	"mthplace/internal/legalize"
	"mthplace/internal/tech"
)

// FlowFinFlex tags results of the pre-determined-pattern flow (the paper's
// future-work comparison; not part of Table III).
const FlowFinFlex ID = 6

// RunFinFlex places the testcase on a pre-determined one-in-n row pattern
// (FinFlex-style, Fig. 1(b)): no row assignment problem is solved — the row
// structure comes from the pattern — and cells are bound to pattern rows
// with a capacity-aware nearest-row assignment, then legalized fence-aware.
// Pass a nil pattern to auto-fit the sparsest feasible one.
func (r *Runner) RunFinFlex(ctx context.Context, pattern finflex.Pattern, withRoute bool) (*Result, error) {
	ctx = r.withPool(ctx)
	d := r.Base.Clone()
	met := Metrics{Flow: FlowFinFlex, NumMinority: len(d.MinorityInstances())}
	start := time.Now()

	// Row structure comes from the pattern; assignment is capacity-aware
	// nearest-row binding.
	rapStart := time.Now()
	var asg *finflex.Assignment
	var err error
	if pattern == nil {
		p, ms, ferr := finflex.FitPattern(d, r.Tech, 0)
		if ferr != nil {
			return nil, ferr
		}
		pattern = p
		asg, err = finflex.Assign(d, ms)
	} else {
		ms, ferr := finflex.Stack(d.Die, r.Tech, pattern)
		if ferr != nil {
			return nil, ferr
		}
		asg, err = finflex.Assign(d, ms)
	}
	if err != nil {
		return nil, fmt.Errorf("finflex assignment: %w", err)
	}
	met.RAPTime = time.Since(rapStart)
	met.NminR = len(asg.Stack.PairsOf(tech.Tall7p5T))

	if err := lefdef.Revert(d); err != nil {
		return nil, err
	}
	legalStart := time.Now()
	if err := legalize.FenceAware(ctx, d, asg.Stack, asg.SeedY, r.Cfg.FencePasses); err != nil {
		return nil, fmt.Errorf("finflex legalization (pattern %v): %w", pattern, err)
	}
	met.LegalTime = time.Since(legalStart)
	if err := legalize.VerifyMixed(d, asg.Stack); err != nil {
		return nil, fmt.Errorf("finflex produced illegal placement: %w", err)
	}
	met.TotalTime = time.Since(start)
	met.Displacement = d.Displacement(r.RefPos)
	met.HPWL = d.TotalHPWL()

	res := &Result{Design: d, Stack: asg.Stack, Metrics: met}
	if withRoute {
		if err := r.routeAndSign(ctx, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}
