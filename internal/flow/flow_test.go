package flow

import (
	"context"
	"os"
	"testing"

	"mthplace/internal/legalize"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func testConfig(scale float64) Config {
	cfg := DefaultConfig()
	cfg.Synth.Scale = scale
	cfg.Placer.OuterIters = 5
	cfg.Placer.SolveSweeps = 8
	// MTH_TEST_SOLVER lets CI re-run the whole flow suite (chaos runs
	// included) against an alternative solve backend, e.g. rap.
	if b := os.Getenv("MTH_TEST_SOLVER"); b != "" {
		cfg.Core.Solve.Backend = b
	}
	return cfg
}

func newRunner(t *testing.T, scale float64) *Runner {
	t.Helper()
	r, err := NewRunner(context.Background(), synth.TableII()[0], testConfig(scale))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunnerPreparation(t *testing.T) {
	r := newRunner(t, 0.02)
	if r.NminR < 1 {
		t.Fatalf("NminR = %d", r.NminR)
	}
	if err := legalize.VerifyUniform(r.Base, r.Grid); err != nil {
		t.Fatalf("base placement illegal: %v", err)
	}
	// Base must be in mLEF form.
	for _, in := range r.Base.Insts {
		if in.Source == nil {
			t.Fatal("base design must be in mLEF form")
		}
	}
}

func TestAllFlowsPostPlacement(t *testing.T) {
	r := newRunner(t, 0.02)
	results, err := r.RunAll(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	for id, res := range results {
		m := res.Metrics
		if m.Flow != id {
			t.Errorf("%v: flow tag mismatch", id)
		}
		if m.HPWL <= 0 {
			t.Errorf("%v: HPWL = %d", id, m.HPWL)
		}
		if id != Flow1 {
			if m.Displacement <= 0 {
				t.Errorf("%v: displacement = %d", id, m.Displacement)
			}
			if res.Stack == nil {
				t.Errorf("%v: missing stack", id)
				continue
			}
			if err := legalize.VerifyMixed(res.Design, res.Stack); err != nil {
				t.Errorf("%v: illegal placement: %v", id, err)
			}
			// All row-constraint flows share the same N_minR (fairness).
			tall := len(res.Stack.PairsOf(tech.Tall7p5T))
			if tall != r.NminR {
				t.Errorf("%v: %d tall pairs, want %d", id, tall, r.NminR)
			}
		}
	}
	// The original designs must not have been mutated across flows: each
	// result owns a distinct clone.
	if results[Flow2].Design == results[Flow4].Design {
		t.Error("flows share a design object")
	}
}

func TestFlowQualityOrdering(t *testing.T) {
	r := newRunner(t, 0.03)
	results, err := r.RunAll(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	// Row-constraint flows cost HPWL vs the unconstrained Flow 1.
	f1 := results[Flow1].Metrics.HPWL
	for _, id := range []ID{Flow2, Flow4} {
		if results[id].Metrics.HPWL < f1 {
			t.Logf("note: %v HPWL %d below Flow1 %d (possible but unusual)",
				id, results[id].Metrics.HPWL, f1)
		}
	}
	// Flow 4 (our assignment, same legalization) must not be much worse
	// than Flow 2 on displacement; the paper reports it is better on
	// average. Allow slack for one small testcase.
	d2 := results[Flow2].Metrics.Displacement
	d4 := results[Flow4].Metrics.Displacement
	if d4 > 2*d2 {
		t.Errorf("Flow4 displacement %d far worse than Flow2 %d", d4, d2)
	}
	// Fence-aware flows ignore the initial placement: displacement larger.
	if results[Flow5].Metrics.Displacement < results[Flow4].Metrics.Displacement {
		t.Logf("note: Flow5 displacement below Flow4 (unusual but not wrong)")
	}
}

func TestFlowsWithRouting(t *testing.T) {
	r := newRunner(t, 0.02)
	for _, id := range []ID{Flow1, Flow2, Flow5} {
		res, err := r.Run(context.Background(), id, true)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		m := res.Metrics
		if !m.Routed || m.RoutedWL <= 0 {
			t.Errorf("%v: no routed wirelength", id)
		}
		if m.PowerMW <= 0 {
			t.Errorf("%v: no power", id)
		}
		if m.WNSps > 0 || m.TNSps > 0 {
			t.Errorf("%v: positive negative-slack? wns=%f tns=%f", id, m.WNSps, m.TNSps)
		}
		if m.RoutedWL < m.HPWL {
			t.Errorf("%v: routed WL %d below HPWL %d", id, m.RoutedWL, m.HPWL)
		}
	}
}

func TestFlowDeterminism(t *testing.T) {
	a := newRunner(t, 0.015)
	b := newRunner(t, 0.015)
	ra, err := a.Run(context.Background(), Flow5, false)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run(context.Background(), Flow5, false)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Metrics.HPWL != rb.Metrics.HPWL || ra.Metrics.Displacement != rb.Metrics.Displacement {
		t.Error("Flow5 not deterministic across runners")
	}
}

func TestUnknownFlow(t *testing.T) {
	r := newRunner(t, 0.01)
	if _, err := r.Run(context.Background(), ID(9), false); err == nil {
		t.Error("unknown flow must error")
	}
}

func TestILPFlowsReportSolverStats(t *testing.T) {
	r := newRunner(t, 0.02)
	res, err := r.Run(context.Background(), Flow4, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.NumClusters <= 0 {
		t.Error("Flow4 must report cluster count")
	}
	if res.Metrics.ILPVars <= 0 {
		t.Error("Flow4 must report ILP variable count")
	}
	if res.Metrics.RAPTime <= 0 {
		t.Error("Flow4 must report RAP time")
	}
}
