// Package flow wires the substrates into the five placement flows compared
// in Table III of the paper:
//
//	Flow (1): unconstrained mLEF placement (no row assignment, no
//	          row-constraint legalization) — the baseline reference.
//	Flow (2): row assignment of the prior work [10] (y k-means) + the prior
//	          work's row-constraint Abacus legalization.
//	Flow (3): row assignment of [10] + the proposed fence-aware
//	          legalization.
//	Flow (4): the proposed ILP row assignment + [10]'s legalization.
//	Flow (5): the proposed ILP row assignment + the proposed fence-aware
//	          legalization (the paper's final flow).
//
// All five start from the same unconstrained initial placement; flows
// (2)–(5) revert the mLEF transform and legalize onto the restacked
// mixed-height die. For fairness, N_minR for the ILP flows is taken from
// Flow (2)'s result, as in the paper.
package flow

import (
	"context"
	"fmt"
	"runtime/pprof"
	"time"

	"mthplace/internal/baseline"
	"mthplace/internal/celllib"
	"mthplace/internal/check"
	"mthplace/internal/core"
	"mthplace/internal/errs"
	"mthplace/internal/fault"
	"mthplace/internal/geom"
	"mthplace/internal/lefdef"
	"mthplace/internal/legalize"
	"mthplace/internal/netlist"
	"mthplace/internal/obs"
	"mthplace/internal/par"
	"mthplace/internal/placer"
	"mthplace/internal/power"
	"mthplace/internal/route"
	"mthplace/internal/rowgrid"
	"mthplace/internal/soa"
	"mthplace/internal/sta"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

// Typed failure classes, re-exported from internal/errs so flow callers (and
// the HTTP layer above them) can classify outcomes with errors.Is without
// importing the bottom-layer package:
//
//	ErrInfeasible — the RAP (or a legalization capacity check) proved the
//	                instance unsatisfiable; retrying won't help, fix the spec.
//	ErrTimeout    — a context deadline expired mid-stage.
//	ErrCanceled   — the caller canceled the context mid-stage.
//	ErrTransient  — a recoverable infrastructure failure (injected faults
//	                included); the job server retries this class.
//	ErrPanic      — a panic caught at the runner boundary; the process
//	                survives and the run reports a typed failure.
var (
	ErrInfeasible = errs.ErrInfeasible
	ErrTimeout    = errs.ErrTimeout
	ErrCanceled   = errs.ErrCanceled
	ErrTransient  = errs.ErrTransient
	ErrPanic      = errs.ErrPanic
	// ErrUnavailable — a backend (remote worker, open circuit) could not
	// take the work at all; the scheduler re-routes this class.
	ErrUnavailable = errs.ErrUnavailable
)

// Fault points at the runner's stage boundaries (see internal/fault and
// DESIGN.md §10). Each is checked once per stage entry; with no active
// fault plan the cost is one atomic load.
const (
	PointParse    = "flow.parse"
	PointCluster  = "flow.cluster"
	PointSolve    = "flow.solve"
	PointLegalize = "flow.legalize"
	PointRoute    = "flow.route"
)

// Representation selects the hot data model the runner iterates.
type Representation int

const (
	// RepAoS is the pointer-per-object netlist representation (default).
	RepAoS Representation = iota
	// RepSoA routes the uniform legalization, the RAP cost model and the
	// HPWL metric through the flat structure-of-arrays representation
	// (internal/soa). Results are bit-identical to RepAoS — the differential
	// suite in internal/golden asserts it per flow and per design — the
	// difference is memory locality at scale.
	RepSoA
)

// String implements fmt.Stringer.
func (r Representation) String() string {
	if r == RepSoA {
		return "soa"
	}
	return "aos"
}

// ID names a flow.
type ID int

// The five flows of Table III.
const (
	Flow1 ID = iota + 1
	Flow2
	Flow3
	Flow4
	Flow5
)

// String implements fmt.Stringer.
func (id ID) String() string { return fmt.Sprintf("Flow(%d)", int(id)) }

// UsesILP reports whether the flow runs the proposed row assignment.
func (id ID) UsesILP() bool { return id == Flow4 || id == Flow5 }

// UsesFenceLegalization reports whether the flow runs the proposed
// legalization.
func (id ID) UsesFenceLegalization() bool { return id == Flow3 || id == Flow5 }

// Config bundles all stage options.
type Config struct {
	Synth    synth.Options
	Placer   placer.Options
	Core     core.Options
	Baseline baseline.Options
	// FencePasses is the median-improvement pass count of the proposed
	// legalization (default 3).
	FencePasses int
	Route       route.Options
	STA         sta.Options
	Power       power.Options
	// Jobs bounds this runner's worker pool: 1 forces fully sequential
	// execution, 0 inherits the process default (GOMAXPROCS, or the
	// MTHPLACE_JOBS environment override). Results are identical at any
	// setting; see DESIGN.md §7. Unlike the old global par.SetJobs knob,
	// the bound is scoped to the runner, so concurrent runners with
	// different Jobs settings do not interfere.
	Jobs int
	// Pool, when non-nil, is used directly instead of building one from
	// Jobs — it lets several runners share one budgeted pool (the job
	// server caps total parallelism this way).
	Pool *par.Pool
	// Rep selects the data representation the runner's hot stages iterate:
	// RepAoS (default) or RepSoA. Metrics and placements are identical.
	Rep Representation
	// Verify, when set, runs the independent internal/check auditors on
	// every flow result — placement legality, fence containment and a
	// metrics recompute — and fails the run if any invariant is violated.
	// It is the paranoid mode used by tests, the golden regression corpus
	// and `rcplace -verify`; the cost is one extra O(cells + pins) pass.
	Verify bool
}

// EffectivePool resolves the worker pool this config asks for: an explicit
// Pool wins, then a fresh pool bounded by Jobs, then the process-wide
// default. Drivers that fan out above the flow level (internal/exp) resolve
// once and share the pool across their runners.
func (c Config) EffectivePool() *par.Pool {
	if c.Pool != nil {
		return c.Pool
	}
	if c.Jobs > 0 {
		return par.NewPool(c.Jobs)
	}
	return par.Default
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		Synth:       synth.DefaultOptions(),
		Core:        core.DefaultOptions(),
		Baseline:    baseline.DefaultOptions(),
		FencePasses: 3,
	}
}

// Metrics are the per-flow measurements of Tables IV and V.
type Metrics struct {
	Flow ID
	// Post-placement (Table IV).
	Displacement int64
	HPWL         int64
	RAPTime      time.Duration
	LegalTime    time.Duration
	TotalTime    time.Duration
	// Solver statistics (Fig. 5, §IV-B.3/4).
	NumClusters int
	NumMinority int
	NminR       int
	ILPVars     int
	// Degradation provenance of the RAP solve (DESIGN.md §10): the ladder
	// rung that produced the row assignment ("ilp", "anytime", "greedy"),
	// whether that was a forced degradation, why, and the optimality-gap
	// bound (-1 = unknown). Empty for Flow (1), which runs no assignment.
	SolveRung          string
	SolveDegraded      bool
	SolveDegradeReason string
	SolveGap           float64
	// Solver names the backend that ran the assignment: "milp", "rap" or
	// "greedy" for the constraint-aware flows, "baseline" for Flows (2)/(3),
	// empty for Flow (1).
	Solver string
	// Post-route (Table V); populated when routing was requested.
	Routed   bool
	RoutedWL int64
	PowerMW  float64
	WNSps    float64
	TNSps    float64
	Overflow int
}

// Result is a completed flow: the final design and its metrics.
type Result struct {
	Design  *netlist.Design
	Stack   *rowgrid.MixedStack
	Metrics Metrics
}

// Runner prepares a testcase once (synthesis, mLEF, initial placement) and
// runs any of the five flows from that shared starting point.
type Runner struct {
	Spec synth.Spec
	Cfg  Config

	Tech *tech.Tech
	Lib  *celllib.Library

	// Base is the Flow (1) design: mLEF form, globally placed, uniformly
	// legalized. Flows clone it; never mutate it.
	Base *netlist.Design
	// Grid is the uniform mLEF pair grid.
	Grid rowgrid.PairGrid
	// RefPos are Flow (1) positions (displacement reference).
	RefPos []geom.Point
	// NminR is Flow (2)'s minority row count (the fairness budget).
	NminR int
	// InitTime is the shared synthesis+placement preparation time.
	InitTime time.Duration

	pool       *par.Pool
	baseAssign *baseline.Result
}

// NewRunner generates the testcase and the unconstrained initial placement.
// The context bounds the preparation work (its worker pool is taken from the
// config, not the context) and cancellation aborts between stages. A panic
// in any preparation stage is caught at this boundary and returned as an
// ErrPanic-classed error, so a faulty (or fault-injected) stage can never
// take the calling process down.
func NewRunner(ctx context.Context, spec synth.Spec, cfg Config) (r *Runner, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			r, err = nil, errs.FromPanic(rec, "flow: prepare %s", spec.Name())
		}
	}()
	pool := cfg.EffectivePool()
	ctx = par.WithPool(ctx, pool)
	start := time.Now()
	if err := stage(ctx, "parse", func(ctx context.Context) error {
		tc := tech.Default()
		lib := celllib.New(tc)
		if err := fault.Inject(ctx, PointParse); err != nil {
			return fmt.Errorf("flow: prepare: %w", err)
		}
		d, err := synth.Generate(tc, lib, spec, cfg.Synth)
		if err != nil {
			return err
		}
		m, err := lefdef.ApplyMLEF(d)
		if err != nil {
			return err
		}
		if err := errs.FromContext(ctx); err != nil {
			return fmt.Errorf("flow: prepare: %w", err)
		}
		placer.Global(d, cfg.Placer)
		g := rowgrid.Uniform(d.Die, m.PairH)
		if cfg.Rep == RepSoA {
			// SoA path: legalize over the flat arrays (with the row-list
			// overlap proof), then materialise back. ToDesign∘FromDesign is
			// the identity, so Base is exactly the AoS-path design.
			c := soa.FromDesign(d)
			if _, err := legalize.UniformCompact(c, g); err != nil {
				return err
			}
			if err := c.Validate(); err != nil {
				return fmt.Errorf("flow: soa base invalid: %w", err)
			}
			d = c.ToDesign()
		} else if err := legalize.Uniform(d, g); err != nil {
			return err
		}
		if err := errs.FromContext(ctx); err != nil {
			return fmt.Errorf("flow: prepare: %w", err)
		}
		r = &Runner{
			Spec: spec, Cfg: cfg, Tech: tc, Lib: lib,
			Base: d, Grid: g, RefPos: d.Positions(),
			pool: pool,
		}
		// Flow (2)'s assignment fixes N_minR for every row-constraint flow.
		ba, err := baseline.AssignRows(d, g, cfg.Baseline)
		if err != nil {
			return fmt.Errorf("flow: baseline row assignment: %w", err)
		}
		r.baseAssign = ba
		r.NminR = ba.NminR
		return nil
	}); err != nil {
		return nil, err
	}
	r.InitTime = time.Since(start)
	obs.Log(ctx).Info("flow: testcase prepared", "testcase", spec.Name(),
		"cells", len(r.Base.Insts), "nets", len(r.Base.Nets), "nminr", r.NminR, "dur", r.InitTime)
	return r, nil
}

// Pool returns the runner's scoped worker pool (for callers that want to
// share it, or to inspect the effective bound).
func (r *Runner) Pool() *par.Pool { return r.pool }

// withPool attaches the runner's pool to ctx so every stage underneath
// resolves the same scoped bound.
func (r *Runner) withPool(ctx context.Context) context.Context {
	return par.WithPool(ctx, r.pool)
}

// buildModel dispatches the RAP cost-model construction on the configured
// representation. Both paths produce bit-identical matrices.
func (r *Runner) buildModel(ctx context.Context, d *netlist.Design, cl *core.Clusters) (*core.Model, error) {
	if r.Cfg.Rep == RepSoA {
		return core.BuildModelSoA(ctx, soa.FromDesign(d), r.Grid, cl, r.NminR, r.Cfg.Core.Cost)
	}
	return core.BuildModel(ctx, d, r.Grid, cl, r.NminR, r.Cfg.Core.Cost)
}

// totalHPWL computes the design HPWL on the configured representation. The
// SoA path converts first, so every run exercises (and cross-checks) the
// converter on its final placement.
func (r *Runner) totalHPWL(d *netlist.Design) int64 {
	if r.Cfg.Rep == RepSoA {
		return soa.FromDesign(d).TotalHPWL()
	}
	return d.TotalHPWL()
}

// stage runs fn under one stage's instrumentation: a progress event at
// entry, a "flow.<name>" span (the same five boundaries the fault injector
// arms), an mth_stage_seconds observation, a pprof "stage" label, and a
// debug log line. The instrumentation is read-only — fn's result is
// returned untouched — and with no sinks installed the cost is two context
// lookups plus two atomic histogram updates per stage. fn receives a
// context positioned inside the stage span, so solver-level spans (and any
// remote dispatch) parent under the stage rather than beside it.
func stage(ctx context.Context, name string, fn func(ctx context.Context) error) error {
	obs.Emit(ctx, obs.Event{Source: "flow", Kind: "stage", Stage: name})
	sctx, sp := obs.StartSpanCtx(ctx, "flow."+name)
	start := time.Now()
	var err error
	pprof.Do(sctx, pprof.Labels("stage", name), func(sctx context.Context) {
		err = fn(sctx)
	})
	dur := time.Since(start)
	if err != nil {
		sp.SetArg("error", err.Error())
	}
	sp.End()
	obs.StageSeconds(name).Observe(dur.Seconds())
	if err != nil {
		obs.Log(ctx).Debug("flow stage failed", "stage", name, "dur", dur, "err", err)
	} else {
		obs.Log(ctx).Debug("flow stage done", "stage", name, "dur", dur)
	}
	return err
}

// Run executes one flow. withRoute additionally routes the result and fills
// the post-route metrics. Cancellation of ctx aborts the run within one
// solver/Lloyd iteration (or one legalization pass) and surfaces as
// ErrCanceled (deadline expiry as ErrTimeout). A panic in any stage —
// worker-pool panics included, since the pool re-raises them on this
// goroutine — is caught here and returned as an ErrPanic-classed error:
// the runner either returns a verified placement or a typed failure, never
// unwinds the caller.
func (r *Runner) Run(ctx context.Context, id ID, withRoute bool) (res *Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, errs.FromPanic(rec, "flow: %v", id)
		}
	}()
	ctx = r.withPool(ctx)
	switch id {
	case Flow1:
		return r.runFlow1(ctx, withRoute)
	case Flow2, Flow3, Flow4, Flow5:
		return r.runConstraint(ctx, id, withRoute)
	default:
		return nil, fmt.Errorf("flow: unknown flow %d", int(id))
	}
}

// RunAll executes every flow (Flow 3 is post-placement only in the paper's
// Table V; we still route it when asked).
func (r *Runner) RunAll(ctx context.Context, withRoute bool) (map[ID]*Result, error) {
	out := make(map[ID]*Result, 5)
	for _, id := range []ID{Flow1, Flow2, Flow3, Flow4, Flow5} {
		res, err := r.Run(ctx, id, withRoute)
		if err != nil {
			return nil, fmt.Errorf("flow: %v: %w", id, err)
		}
		out[id] = res
	}
	return out, nil
}

func (r *Runner) runFlow1(ctx context.Context, withRoute bool) (*Result, error) {
	if err := errs.FromContext(ctx); err != nil {
		return nil, fmt.Errorf("flow: %v: %w", Flow1, err)
	}
	d := r.Base.Clone()
	res := &Result{Design: d}
	res.Metrics = Metrics{
		Flow:         Flow1,
		Displacement: 0,
		HPWL:         r.totalHPWL(d),
		TotalTime:    r.InitTime,
		NumMinority:  len(d.MinorityInstances()),
		NminR:        r.NminR,
	}
	if r.Cfg.Verify {
		if err := r.VerifyResult(res).Err(); err != nil {
			return nil, fmt.Errorf("flow %v verification: %w", Flow1, err)
		}
	}
	if withRoute {
		if err := r.routeAndSign(ctx, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (r *Runner) runConstraint(ctx context.Context, id ID, withRoute bool) (*Result, error) {
	d := r.Base.Clone()
	met := Metrics{Flow: id, NumMinority: len(d.MinorityInstances()), NminR: r.NminR}
	start := time.Now()

	// Row assignment.
	var stack *rowgrid.MixedStack
	var seedY map[int32]int64
	var cellPair map[int32]int
	if id.UsesILP() {
		// The proposed assignment, staged explicitly (rather than through
		// core.AssignRows) so clustering and the RAP solve sit behind their
		// own fault points and stage spans.
		rapStart := time.Now()
		var cl *core.Clusters
		var model *core.Model
		if err := stage(ctx, "cluster", func(ctx context.Context) error {
			if err := fault.Inject(ctx, PointCluster); err != nil {
				return fmt.Errorf("clustering: %w", err)
			}
			var err error
			if cl, err = core.BuildClusters(ctx, d, r.Cfg.Core.S, r.Cfg.Core.KMeansIters); err != nil {
				return fmt.Errorf("row assignment: %w", err)
			}
			if model, err = r.buildModel(ctx, d, cl); err != nil {
				return fmt.Errorf("row assignment: %w", err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		var ra *core.RowAssignment
		if err := stage(ctx, "solve", func(ctx context.Context) error {
			if err := fault.Inject(ctx, PointSolve); err != nil {
				return fmt.Errorf("row assignment: %w", err)
			}
			sol, err := core.Solve(ctx, model, r.Cfg.Core.Solve)
			if err != nil {
				return fmt.Errorf("row assignment: %w", err)
			}
			if ra, err = core.Finalize(d, r.Grid, model, cl, sol); err != nil {
				return fmt.Errorf("row assignment: %w", err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		met.RAPTime = time.Since(rapStart)
		met.NumClusters = ra.Clusters.N()
		met.ILPVars = ra.Assignment.Stats.NumVars
		met.SolveRung = ra.Assignment.Stats.Rung
		met.SolveDegraded = ra.Assignment.Stats.Degraded
		met.SolveDegradeReason = ra.Assignment.Stats.DegradeReason
		met.SolveGap = ra.Assignment.Stats.Gap
		met.Solver = r.Cfg.Core.Solve.Backend
		if met.Solver == "" {
			met.Solver = core.BackendMILP
		}
		stack = ra.Stack
		seedY = ra.SeedY
		cellPair = ra.CellPair
	} else {
		// Flows (2)/(3): the baseline assignment (already computed once for
		// N_minR; recompute against this clone's identical placement to
		// charge its runtime).
		rapStart := time.Now()
		if err := stage(ctx, "solve", func(ctx context.Context) error {
			if err := fault.Inject(ctx, PointSolve); err != nil {
				return fmt.Errorf("baseline assignment: %w", err)
			}
			ba, err := baseline.AssignRows(d, r.Grid, r.Cfg.Baseline)
			if err != nil {
				return fmt.Errorf("baseline assignment: %w", err)
			}
			met.NumClusters = ba.NminR
			stack = ba.Stack
			seedY = ba.SeedY
			cellPair = ba.CellPair
			return nil
		}); err != nil {
			return nil, err
		}
		met.RAPTime = time.Since(rapStart)
		met.SolveRung = "baseline"
		met.Solver = "baseline"
	}
	if err := errs.FromContext(ctx); err != nil {
		return nil, fmt.Errorf("row assignment: %w", err)
	}
	obs.SolveTotal(met.SolveRung, met.Solver).Inc()

	// Back to true mixed-height cells, then legalize under row-constraint.
	if err := lefdef.Revert(d); err != nil {
		return nil, err
	}
	legalStart := time.Now()
	if err := stage(ctx, "legalize", func(ctx context.Context) error {
		if err := fault.Inject(ctx, PointLegalize); err != nil {
			return fmt.Errorf("legalization: %w", err)
		}
		if id.UsesFenceLegalization() {
			return legalize.FenceAware(ctx, d, stack, seedY, r.Cfg.FencePasses)
		}
		// [10]-style: move minority cells to their assigned rows, then
		// displacement-minimising Abacus with each cell bound to its
		// assigned pair (overflow spills, at a price).
		for i, y := range seedY {
			if !d.Insts[i].Fixed {
				d.Insts[i].Pos.Y = y
			}
		}
		return legalize.RowConstraintAssigned(ctx, d, stack, cellPair)
	}); err != nil {
		return nil, err
	}
	met.LegalTime = time.Since(legalStart)
	if err := legalize.VerifyMixed(d, stack); err != nil {
		return nil, fmt.Errorf("flow %v produced illegal placement: %w", id, err)
	}
	met.TotalTime = time.Since(start)
	met.Displacement = d.Displacement(r.RefPos)
	met.HPWL = r.totalHPWL(d)
	obs.Log(ctx).Debug("flow completed", "flow", id.String(), "rung", met.SolveRung,
		"displacement", met.Displacement, "hpwl", met.HPWL, "dur", met.TotalTime)

	res := &Result{Design: d, Stack: stack, Metrics: met}
	if r.Cfg.Verify {
		if err := r.VerifyResult(res).Err(); err != nil {
			return nil, fmt.Errorf("flow %v verification: %w", id, err)
		}
	}
	if withRoute {
		if err := r.routeAndSign(ctx, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// routeAndSign routes the result and fills post-route WL, power and timing.
// The route/STA/power substrates are fast relative to the solve stages, so
// cancellation is only checked between them.
func (r *Runner) routeAndSign(ctx context.Context, res *Result) error {
	return stage(ctx, "route", func(ctx context.Context) error {
		if err := errs.FromContext(ctx); err != nil {
			return fmt.Errorf("route: %w", err)
		}
		if err := fault.Inject(ctx, PointRoute); err != nil {
			return fmt.Errorf("route: %w", err)
		}
		rt, err := route.Route(res.Design, r.Cfg.Route)
		if err != nil {
			return err
		}
		staOpt := r.Cfg.STA
		staOpt.NetLength = rt.NetLength
		timing, err := sta.Analyze(res.Design, staOpt)
		if err != nil {
			return err
		}
		pwrOpt := r.Cfg.Power
		pwrOpt.NetLength = rt.NetLength
		pwr, err := power.Analyze(res.Design, pwrOpt)
		if err != nil {
			return err
		}
		res.Metrics.Routed = true
		res.Metrics.RoutedWL = rt.WirelengthDBU
		res.Metrics.Overflow = rt.Overflow
		res.Metrics.WNSps = timing.WNSps
		res.Metrics.TNSps = timing.TNSps
		res.Metrics.PowerMW = pwr.TotalMW()
		return nil
	})
}

// VerifyResult runs the independent internal/check auditors on a completed
// flow result against this runner's reference state: netlist integrity,
// placement legality (mixed-stack when the result carries one, the uniform
// grid otherwise), fence containment for mixed results, and a naive
// recompute of the reported displacement/HPWL totals. Runs with
// Config.Verify set call it automatically and fail on violations; callers
// such as `rcplace -verify` call it directly to render the full report.
func (r *Runner) VerifyResult(res *Result) *check.Report {
	rep := check.Netlist(res.Design)
	if res.Stack != nil {
		rep.Merge(check.Placement(res.Design, res.Stack))
		rep.Merge(check.Fences(res.Design, res.Stack))
	} else {
		rep.Merge(check.PlacementUniform(res.Design, r.Grid))
	}
	rep.Merge(check.Metrics(res.Design, r.RefPos, res.Metrics.Displacement, res.Metrics.HPWL))
	return rep
}
