package flow

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"mthplace/internal/obs"
	"mthplace/internal/synth"
)

// TestFlow5Trace is the tentpole acceptance test: a Flow 5 run with routing
// under a tracer must produce a valid Chrome trace containing all five
// stage spans, the solver sub-spans, and at least one MILP incumbent event.
func TestFlow5Trace(t *testing.T) {
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	r, err := NewRunner(ctx, synth.TableII()[0], testConfig(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, Flow5, true); err != nil {
		t.Fatal(err)
	}

	seen := map[string]bool{}
	for _, name := range tr.Spans() {
		seen[name] = true
	}
	for _, want := range []string{
		"flow.parse", "flow.cluster", "flow.solve", "flow.legalize", "flow.route",
		"cluster.kmeans2d", "core.buildmodel",
		"milp.incumbent",
	} {
		if !seen[want] {
			t.Errorf("trace missing %q; recorded: %v", want, tr.Spans())
		}
	}

	// The export must be valid Chrome trace_event JSON.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	incumbents := 0
	for _, e := range doc.TraceEvents {
		if e.Name == "milp.incumbent" && e.Phase == "i" {
			incumbents++
		}
	}
	if incumbents < 1 {
		t.Error("trace has no MILP incumbent instant event")
	}
}

// TestFlowProgressEvents checks the progress stream carries stage
// transitions, k-means iterations and MILP incumbents for an ILP flow.
func TestFlowProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []obs.Event
	ctx := obs.WithProgress(context.Background(), func(e obs.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	r, err := NewRunner(ctx, synth.TableII()[0], testConfig(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, Flow5, false); err != nil {
		t.Fatal(err)
	}

	stages := map[string]bool{}
	var kmeans, incumbents int
	for _, e := range events {
		switch {
		case e.Source == "flow" && e.Kind == "stage":
			stages[e.Stage] = true
		case e.Source == "kmeans" && e.Kind == "iteration":
			kmeans++
			if e.Iter < 1 {
				t.Errorf("k-means iteration not 1-based: %+v", e)
			}
		case e.Source == "milp" && e.Kind == "incumbent":
			incumbents++
		}
	}
	for _, want := range []string{"parse", "cluster", "solve", "legalize"} {
		if !stages[want] {
			t.Errorf("no stage event for %q (got %v)", want, stages)
		}
	}
	if kmeans == 0 {
		t.Error("no k-means iteration events")
	}
	if incumbents == 0 {
		t.Error("no MILP incumbent events")
	}
}

// TestObsDoesNotChangeResults: a run with every hook attached must produce
// bit-identical metrics to a bare run — instrumentation is read-only.
func TestObsDoesNotChangeResults(t *testing.T) {
	run := func(ctx context.Context) Metrics {
		r, err := NewRunner(ctx, synth.TableII()[0], testConfig(0.02))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(ctx, Flow5, false)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	bare := run(context.Background())

	ctx := obs.WithTracer(context.Background(), obs.NewTracer())
	ctx = obs.WithProgress(ctx, func(obs.Event) {})
	instrumented := run(ctx)

	if bare.Displacement != instrumented.Displacement || bare.HPWL != instrumented.HPWL ||
		bare.SolveRung != instrumented.SolveRung || bare.NumClusters != instrumented.NumClusters {
		t.Errorf("observability changed results:\nbare: %+v\ninstrumented: %+v", bare, instrumented)
	}
}

// TestStageMetricsRecorded: a flow run must land samples in the canonical
// Default-registry series the scrape endpoint exports.
func TestStageMetricsRecorded(t *testing.T) {
	before := map[string]int64{}
	for _, st := range []string{"parse", "cluster", "solve", "legalize"} {
		before[st] = obs.StageSeconds(st).Count()
	}
	r := newRunner(t, 0.02)
	if _, err := r.Run(context.Background(), Flow5, false); err != nil {
		t.Fatal(err)
	}
	for _, st := range []string{"cluster", "solve", "legalize"} {
		if obs.StageSeconds(st).Count() <= before[st] {
			t.Errorf("stage %q recorded no duration sample", st)
		}
	}
}
