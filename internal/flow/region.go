package flow

import (
	"context"
	"fmt"
	"time"

	"mthplace/internal/lefdef"
	"mthplace/internal/legalize"
	"mthplace/internal/regions"
)

// FlowRegion tags results of the region-based comparator flow (Fig. 1(a)
// style; not part of Table III).
const FlowRegion ID = 7

// RunRegion places the testcase with the region-based strategy of Fig. 1(a)
// (Dobre et al. [4]): one contiguous subregion per track-height with
// breaker overhead between them, then fence-aware legalization restricted
// accordingly. The paper's motivation — row-based beats region-based — can
// be checked by comparing this against Flow (5).
func (r *Runner) RunRegion(ctx context.Context, withRoute bool) (*Result, error) {
	ctx = r.withPool(ctx)
	d := r.Base.Clone()
	met := Metrics{Flow: FlowRegion, NumMinority: len(d.MinorityInstances())}
	start := time.Now()

	rapStart := time.Now()
	part, err := regions.Build(d, r.Grid, regions.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("region partition: %w", err)
	}
	met.RAPTime = time.Since(rapStart)
	met.NminR = len(part.MinorityPairs)

	if err := lefdef.Revert(d); err != nil {
		return nil, err
	}
	legalStart := time.Now()
	if err := legalize.FenceAwareExcluding(ctx, d, part.Stack, part.SeedY, r.Cfg.FencePasses, part.BreakerSet()); err != nil {
		return nil, fmt.Errorf("region legalization: %w", err)
	}
	met.LegalTime = time.Since(legalStart)
	if err := legalize.VerifyMixed(d, part.Stack); err != nil {
		return nil, fmt.Errorf("region flow produced illegal placement: %w", err)
	}
	met.TotalTime = time.Since(start)
	met.Displacement = d.Displacement(r.RefPos)
	met.HPWL = d.TotalHPWL()

	res := &Result{Design: d, Stack: part.Stack, Metrics: met}
	if withRoute {
		if err := r.routeAndSign(ctx, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}
