package flow

import (
	"context"
	"testing"

	"mthplace/internal/finflex"
	"mthplace/internal/legalize"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func TestRunFinFlexAutoPattern(t *testing.T) {
	r := newRunner(t, 0.02)
	res, err := r.RunFinFlex(context.Background(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Flow != FlowFinFlex {
		t.Errorf("flow tag = %v", res.Metrics.Flow)
	}
	if err := legalize.VerifyMixed(res.Design, res.Stack); err != nil {
		t.Fatalf("finflex placement illegal: %v", err)
	}
	if res.Metrics.HPWL <= 0 || res.Metrics.Displacement <= 0 {
		t.Errorf("missing metrics: %+v", res.Metrics)
	}
	// Pattern structure: tall pairs appear at a fixed stride.
	tall := res.Stack.PairsOf(tech.Tall7p5T)
	if len(tall) < 2 {
		t.Fatalf("pattern produced %d tall pairs", len(tall))
	}
	stride := tall[1] - tall[0]
	for k := 1; k < len(tall); k++ {
		if tall[k]-tall[k-1] != stride {
			t.Fatalf("tall pairs not periodic: %v", tall)
		}
	}
}

func TestRunFinFlexExplicitPatternTooDense(t *testing.T) {
	r := newRunner(t, 0.015)
	// A pattern with no tall rows cannot host minority cells.
	_, err := r.RunFinFlex(context.Background(), finflex.Pattern{tech.Short6T}, false)
	if err == nil {
		t.Fatal("all-short pattern must fail")
	}
}

func TestRunFinFlexVsFlow5(t *testing.T) {
	r := newRunner(t, 0.02)
	f5, err := r.Run(context.Background(), Flow5, false)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := r.RunFinFlex(context.Background(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// The pre-determined pattern is more constrained; it should not beat
	// the customised rows by much (allow 10% noise on tiny designs).
	if float64(ff.Metrics.HPWL) < 0.9*float64(f5.Metrics.HPWL) {
		t.Errorf("finflex HPWL %d improbably beats flow5 %d", ff.Metrics.HPWL, f5.Metrics.HPWL)
	}
	_ = synth.TableII
}
