package flow

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mthplace/internal/errs"
	"mthplace/internal/fault"
	"mthplace/internal/legalize"
	"mthplace/internal/synth"
)

// chaosSchedules is the number of randomized fault schedules the chaos
// suite drives through the pipeline (reduced under -short). Each schedule
// is a seeded plan, so any failure replays exactly from the logged seed.
const (
	chaosSchedules      = 250
	chaosSchedulesShort = 50
	chaosRate           = 0.12
)

// typedError reports whether err belongs to the placement API's error
// taxonomy — the contract chaos runs enforce: injected trouble may fail a
// run, but only into a classifiable error, never an unclassified one and
// never an escaped panic.
func typedError(err error) bool {
	return errors.Is(err, errs.ErrTransient) ||
		errors.Is(err, errs.ErrPanic) ||
		errors.Is(err, errs.ErrInfeasible) ||
		errors.Is(err, errs.ErrTimeout) ||
		errors.Is(err, errs.ErrCanceled)
}

// TestChaosFlows drives all five flows under randomized fault schedules
// (errors, panics, latency at every stage boundary). Invariant: every run
// either returns a fully check-verified placement or a typed error; an
// escaped panic or an unclassified error fails the suite, and a fault must
// never corrupt a "successful" result (Config.Verify audits each one).
func TestChaosFlows(t *testing.T) {
	n := chaosSchedules
	if testing.Short() {
		n = chaosSchedulesShort
	}
	cfg := testConfig(0.02)
	cfg.Verify = true
	r, err := NewRunner(context.Background(), synth.TableII()[0], cfg)
	if err != nil {
		t.Fatal(err)
	}

	flows := []ID{Flow1, Flow2, Flow3, Flow4, Flow5}
	injected, failed := 0, 0
	for seed := 0; seed < n; seed++ {
		id := flows[seed%len(flows)]
		route := seed%7 == 0
		plan := fault.NewRandomPlan(int64(seed), chaosRate)
		ctx := fault.WithPlan(context.Background(), plan)

		res, err := r.Run(ctx, id, route)
		ev := plan.Events()
		injected += len(ev)
		switch {
		case err != nil:
			failed++
			if !typedError(err) {
				t.Fatalf("seed %d %v: untyped error %v (schedule %+v)", seed, id, err, ev)
			}
		case res == nil:
			t.Fatalf("seed %d %v: nil result without error", seed, id)
		case id != Flow1:
			// Verify already audited inside Run; re-check the core invariant
			// so a regression in the Verify wiring cannot mask corruption.
			if err := legalize.VerifyMixed(res.Design, res.Stack); err != nil {
				t.Fatalf("seed %d %v: corrupt placement after faults %+v: %v", seed, id, ev, err)
			}
		}
	}
	if injected == 0 {
		t.Fatalf("%d schedules injected nothing; chaos rate too low", n)
	}
	if failed == 0 {
		t.Errorf("%d schedules, %d injections, zero failed runs; error faults are not propagating", n, injected)
	}
	t.Logf("chaos: %d schedules, %d injections, %d failed runs (typed)", n, injected, failed)
}

// TestChaosRunnerPreparation targets the parse/generate boundary: runner
// construction under fault plans must return a typed error or a usable
// runner, never panic.
func TestChaosRunnerPreparation(t *testing.T) {
	for seed := 0; seed < 16; seed++ {
		plan := fault.NewRandomPlan(int64(1000+seed), 0.5, fault.KindError, fault.KindPanic)
		ctx := fault.WithPlan(context.Background(), plan)
		r, err := NewRunner(ctx, synth.TableII()[0], testConfig(0.02))
		switch {
		case err != nil:
			if !typedError(err) {
				t.Fatalf("seed %d: untyped error %v", seed, err)
			}
		case r == nil:
			t.Fatalf("seed %d: nil runner without error", seed)
		}
	}
}

// TestChaosDeterministicReplay: the same seed produces the same schedule
// and the same outcome, so a chaos failure is debuggable from its seed.
func TestChaosDeterministicReplay(t *testing.T) {
	cfg := testConfig(0.02)
	r, err := NewRunner(context.Background(), synth.TableII()[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (string, []fault.Event) {
		plan := fault.NewRandomPlan(42, 0.3)
		ctx := fault.WithPlan(context.Background(), plan)
		_, err := r.Run(ctx, Flow5, false)
		if err == nil {
			return "", plan.Events()
		}
		// Compare the message line only: panic errors append a stack trace
		// whose frame addresses legitimately differ between runs.
		msg, _, _ := strings.Cut(err.Error(), "\n")
		return msg, plan.Events()
	}
	msgA, evA := run()
	msgB, evB := run()
	if msgA != msgB {
		t.Fatalf("same seed, different outcomes:\n  %q\n  %q", msgA, msgB)
	}
	if len(evA) != len(evB) {
		t.Fatalf("same seed, different schedules: %d vs %d events", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, evA[i], evB[i])
		}
	}
}

// TestInjectedPanicIsTyped pins the panic contract end to end: a panic
// fault at the solve boundary surfaces as ErrPanic, and the runner stays
// usable afterwards.
func TestInjectedPanicIsTyped(t *testing.T) {
	r := newRunner(t, 0.02)
	ctx := fault.WithPlan(context.Background(),
		fault.NewPlan(fault.Rule{Point: PointSolve, Kind: fault.KindPanic}))
	_, err := r.Run(ctx, Flow4, false)
	if !errors.Is(err, errs.ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if _, err := r.Run(context.Background(), Flow4, false); err != nil {
		t.Fatalf("runner unusable after recovered panic: %v", err)
	}
}

// TestInjectedErrorIsTransient: error faults carry the transient class the
// job server's retry loop keys on.
func TestInjectedErrorIsTransient(t *testing.T) {
	r := newRunner(t, 0.02)
	ctx := fault.WithPlan(context.Background(),
		fault.NewPlan(fault.Rule{Point: PointLegalize, Kind: fault.KindError}))
	_, err := r.Run(ctx, Flow5, false)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
}
