package flow

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"mthplace/internal/synth"
)

// zeroTimes strips the wall-clock fields so the deterministic remainder of
// a Metrics struct can be compared with ==.
func zeroTimes(m Metrics) Metrics {
	m.RAPTime, m.LegalTime, m.TotalTime = 0, 0, 0
	return m
}

// TestRunPreCanceledContext: a context canceled before Run starts must
// surface ErrCanceled from every flow without doing any work.
func TestRunPreCanceledContext(t *testing.T) {
	r := newRunner(t, 0.02)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []ID{Flow1, Flow2, Flow3, Flow4, Flow5} {
		if _, err := r.Run(ctx, id, false); !errors.Is(err, ErrCanceled) {
			t.Errorf("%v: err = %v, want ErrCanceled", id, err)
		}
	}
}

// TestNewRunnerPreCanceledContext: preparation also respects cancellation.
func TestNewRunnerPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewRunner(ctx, synth.TableII()[0], testConfig(0.02)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestDeadlineSurfacesAsTimeout: an already-expired deadline maps to
// ErrTimeout, not ErrCanceled.
func TestDeadlineSurfacesAsTimeout(t *testing.T) {
	r := newRunner(t, 0.02)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if _, err := r.Run(ctx, Flow5, false); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestRunCancelMidFlow exercises the satellite guarantee: canceling while
// Flow (5) is inside its ILP/k-means/legalization stages returns
// ErrCanceled promptly — the abort is bounded by one solver or Lloyd
// iteration, so the canceled run must come back well under the full
// uncanceled runtime. Goroutine counts are compared before/after to catch
// leaked pool workers.
func TestRunCancelMidFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Synth.Scale = 0.1
	r, err := NewRunner(context.Background(), synth.TableII()[0], cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Uncanceled baseline runtime.
	start := time.Now()
	if _, err := r.Run(context.Background(), Flow5, false); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if full < 50*time.Millisecond {
		t.Skipf("flow too fast on this host (%v) for a meaningful mid-run cancel", full)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(full/10, cancel)
	start = time.Now()
	_, err = r.Run(ctx, Flow5, false)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed >= full {
		t.Errorf("canceled run took %v, not faster than full run %v", elapsed, full)
	}
	// Pool workers unwind with the canceled stage; give the runtime a
	// moment to reap them, then require the count back near the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+1 {
		t.Errorf("goroutines grew from %d to %d after canceled run", before, n)
	}
}

// TestConcurrentRunnersIndependentJobs is the regression test for the old
// ApplyJobs footgun: two runners with Jobs=1 and Jobs=8 executing at the
// same time must each reproduce the serial reference bit-for-bit. Under
// the global par.SetJobs knob the second runner's setting stomped the
// first; scoped pools make the bound private to each runner.
func TestConcurrentRunnersIndependentJobs(t *testing.T) {
	spec := synth.TableII()[0]
	mkCfg := func(jobs int) Config {
		c := testConfig(0.02)
		c.Jobs = jobs
		return c
	}

	// Serial reference.
	ref, err := NewRunner(context.Background(), spec, mkCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(context.Background(), Flow5, false)
	if err != nil {
		t.Fatal(err)
	}
	want := zeroTimes(refRes.Metrics)

	var wg sync.WaitGroup
	got := make([]Metrics, 2)
	errsCh := make([]error, 2)
	for i, jobs := range []int{1, 8} {
		wg.Add(1)
		go func(i, jobs int) {
			defer wg.Done()
			r, err := NewRunner(context.Background(), spec, mkCfg(jobs))
			if err != nil {
				errsCh[i] = err
				return
			}
			res, err := r.Run(context.Background(), Flow5, false)
			if err != nil {
				errsCh[i] = err
				return
			}
			got[i] = zeroTimes(res.Metrics)
		}(i, jobs)
	}
	wg.Wait()
	for i, jobs := range []int{1, 8} {
		if errsCh[i] != nil {
			t.Fatalf("jobs=%d: %v", jobs, errsCh[i])
		}
		if got[i] != want {
			t.Errorf("jobs=%d: metrics diverged from serial reference:\n got %+v\nwant %+v", jobs, got[i], want)
		}
	}
}
