package heightswap

import (
	"context"
	"testing"

	"mthplace/internal/flow"
	"mthplace/internal/legalize"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

// legalizedDesign runs Flow 5 on a small testcase to get a legal
// mixed-height placement.
func legalizedDesign(t *testing.T) *flow.Result {
	t.Helper()
	cfg := flow.DefaultConfig()
	cfg.Synth.Scale = 0.02
	cfg.Placer.OuterIters = 4
	cfg.Placer.SolveSweeps = 6
	r, err := flow.NewRunner(context.Background(), synth.TableII()[0], cfg) // aes_300: tight clock, violations
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background(), flow.Flow5, false)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOptimizeKeepsLegality(t *testing.T) {
	res := legalizedDesign(t)
	rep, err := Optimize(context.Background(), res.Design, res.Stack, Options{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := legalize.VerifyMixed(res.Design, res.Stack); err != nil {
		t.Fatalf("placement illegal after swaps: %v", err)
	}
	if rep.WNSBefore > 0 || rep.WNSAfter > 0 {
		t.Errorf("WNS must be <= 0: %+v", rep)
	}
}

func TestOptimizeNeverDegradesWNS(t *testing.T) {
	res := legalizedDesign(t)
	rep, err := Optimize(context.Background(), res.Design, res.Stack, Options{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WNSAfter < rep.WNSBefore-1e-9 {
		t.Errorf("WNS degraded: %.3f -> %.3f", rep.WNSBefore, rep.WNSAfter)
	}
	if rep.SwapsApplied > 0 && rep.Rounds == 0 {
		t.Error("swaps counted without rounds")
	}
}

func TestOptimizeSwapsChangeHeights(t *testing.T) {
	res := legalizedDesign(t)
	before := map[int32]tech.TrackHeight{}
	for i, in := range res.Design.Insts {
		before[int32(i)] = in.TrueHeight()
	}
	rep, err := Optimize(context.Background(), res.Design, res.Stack, Options{Rounds: 2, MaxSwaps: 8})
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i, in := range res.Design.Insts {
		if in.TrueHeight() != before[int32(i)] {
			changed++
		}
	}
	if rep.SwapsApplied > 0 && changed == 0 {
		t.Error("report claims swaps but no heights changed")
	}
	if rep.SwapsApplied == 0 && changed != 0 {
		t.Error("heights changed without accepted swaps")
	}
}

func TestOptimizeZeroRoundsDefaulted(t *testing.T) {
	res := legalizedDesign(t)
	if _, err := Optimize(context.Background(), res.Design, res.Stack, Options{Rounds: -1}); err != nil {
		t.Fatal(err)
	}
}
