// Package heightswap implements the paper's other future-work direction:
// swapping the track-heights of cells after row-constraint placement. A
// timing-critical 6T cell is upgraded to its (stronger) 7.5T variant and a
// timing-slack 7.5T cell is downgraded to 6T in exchange, so the minority
// row capacity stays balanced while worst-case timing improves and leakage
// on non-critical paths drops.
//
// The pass works on a legalized mixed-height placement: it scores cells by
// the arrival time of their output nets (from STA with net details),
// proposes upgrade/downgrade pairs, applies them, re-legalizes both height
// classes, and keeps the swap set only when WNS actually improved.
package heightswap

import (
	"context"
	"fmt"
	"sort"

	"mthplace/internal/celllib"
	"mthplace/internal/errs"
	"mthplace/internal/legalize"
	"mthplace/internal/netlist"
	"mthplace/internal/rowgrid"
	"mthplace/internal/sta"
	"mthplace/internal/tech"
)

// Options tune the pass.
type Options struct {
	// MaxSwaps bounds the number of upgrade/downgrade pairs per round
	// (default: 2% of the minority count, at least 4).
	MaxSwaps int
	// Rounds is the number of propose/verify rounds (default 2).
	Rounds int
	// STA configures the timing analysis used for scoring and
	// verification.
	STA sta.Options
}

// Report describes what the pass did.
type Report struct {
	// Rounds actually executed.
	Rounds int
	// SwapsApplied counts accepted upgrade/downgrade pairs.
	SwapsApplied int
	// WNSBefore/WNSAfter in ps (paper sign convention: ≤ 0).
	WNSBefore, WNSAfter float64
	// TNSBefore/TNSAfter in ps.
	TNSBefore, TNSAfter float64
	// LeakageDeltaNW is the change in leakage from the swaps (negative =
	// saved).
	LeakageDeltaNW float64
}

// Optimize runs the height-swap pass in place. The design must be in true
// mixed-height form on the given stack (legalized); it is re-legalized
// after accepted swaps and stays legal on return. Cancellation is checked
// between propose/verify rounds, so an aborted run still leaves a legal
// placement.
func Optimize(ctx context.Context, d *netlist.Design, ms *rowgrid.MixedStack, opt Options) (*Report, error) {
	if opt.Rounds <= 0 {
		opt.Rounds = 2
	}
	base, err := sta.Analyze(d, withDetails(opt.STA))
	if err != nil {
		return nil, err
	}
	rep := &Report{WNSBefore: base.WNSps, TNSBefore: base.TNSps}
	rep.WNSAfter, rep.TNSAfter = base.WNSps, base.TNSps

	for round := 0; round < opt.Rounds; round++ {
		if err := errs.FromContext(ctx); err != nil {
			return nil, fmt.Errorf("heightswap: %w", err)
		}
		cur, err := sta.Analyze(d, withDetails(opt.STA))
		if err != nil {
			return nil, err
		}
		ups, downs := proposeSwaps(d, cur, opt)
		if len(ups) == 0 || len(downs) == 0 {
			break
		}
		n := len(ups)
		if len(downs) < n {
			n = len(downs)
		}
		// Snapshot for rollback.
		savedMasters := make([]*celllib.Master, len(d.Insts))
		savedPos := d.Positions()
		for i, in := range d.Insts {
			savedMasters[i] = in.Master
		}
		var leakDelta float64
		for k := 0; k < n; k++ {
			leakDelta += applySwap(d, ups[k], tech.Tall7p5T)
			leakDelta += applySwap(d, downs[k], tech.Short6T)
		}
		if err := legalize.RowConstraint(ctx, d, ms); err != nil {
			return nil, fmt.Errorf("heightswap: re-legalization: %w", err)
		}
		after, err := sta.Analyze(d, withDetails(opt.STA))
		if err != nil {
			return nil, err
		}
		if after.WNSps+1e-9 < rep.WNSAfter || (after.WNSps <= rep.WNSAfter && after.TNSps < rep.TNSAfter) {
			// Worse (more negative) — roll back and stop.
			for i, in := range d.Insts {
				in.Master = savedMasters[i]
				in.Pos = savedPos[i]
			}
			break
		}
		rep.Rounds++
		rep.SwapsApplied += n
		rep.WNSAfter, rep.TNSAfter = after.WNSps, after.TNSps
		rep.LeakageDeltaNW += leakDelta
	}
	if err := legalize.VerifyMixed(d, ms); err != nil {
		return nil, fmt.Errorf("heightswap: final placement illegal: %w", err)
	}
	return rep, nil
}

func withDetails(o sta.Options) sta.Options {
	o.WantNetDetails = true
	return o
}

// proposeSwaps returns upgrade candidates (critical 6T cells, most critical
// first) and downgrade candidates (slack-rich 7.5T cells, most slack
// first). Only cells whose variant exists in the library qualify;
// sequential cells are left alone (swapping a flop changes clocking
// assumptions).
func proposeSwaps(d *netlist.Design, timing *sta.Result, opt Options) (ups, downs []int32) {
	minority := len(d.MinorityInstances())
	maxSwaps := opt.MaxSwaps
	if maxSwaps <= 0 {
		maxSwaps = minority / 50
		if maxSwaps < 4 {
			maxSwaps = 4
		}
	}
	type cand struct {
		inst  int32
		slack float64
	}
	var upC, downC []cand
	for i, in := range d.Insts {
		m := in.Master
		if m.Sequential {
			continue
		}
		out := m.OutputPin()
		net := in.PinNets[out]
		if net == netlist.NoNet || int(net) >= len(timing.NetSlack) {
			continue
		}
		slack := timing.NetSlack[net]
		if d.Lib.Variant(m, m.Height.Other()) == nil {
			continue
		}
		if m.Height == tech.Short6T && slack < 0 {
			upC = append(upC, cand{int32(i), slack})
		}
		if m.Height == tech.Tall7p5T && slack > 0.2*d.ClockPeriodPs {
			downC = append(downC, cand{int32(i), slack})
		}
	}
	sort.Slice(upC, func(a, b int) bool {
		if upC[a].slack != upC[b].slack {
			return upC[a].slack < upC[b].slack // most negative first
		}
		return upC[a].inst < upC[b].inst
	})
	sort.Slice(downC, func(a, b int) bool {
		if downC[a].slack != downC[b].slack {
			return downC[a].slack > downC[b].slack // most slack first
		}
		return downC[a].inst < downC[b].inst
	})
	for k := 0; k < len(upC) && k < maxSwaps; k++ {
		ups = append(ups, upC[k].inst)
	}
	for k := 0; k < len(downC) && k < maxSwaps; k++ {
		downs = append(downs, downC[k].inst)
	}
	return ups, downs
}

// applySwap changes the instance to its other-height variant and returns
// the leakage delta in nW.
func applySwap(d *netlist.Design, inst int32, to tech.TrackHeight) float64 {
	in := d.Insts[inst]
	v := d.Lib.Variant(in.Master, to)
	if v == nil || v == in.Master {
		return 0
	}
	delta := v.Leakage - in.Master.Leakage
	in.Master = v
	return delta
}
