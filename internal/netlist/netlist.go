// Package netlist defines the in-memory design database shared by every
// stage of the flow: instances bound to library masters, nets connecting
// instance pins and primary IO ports, the die outline and the clock
// constraint. It provides the geometric queries (pin positions, per-net and
// total HPWL, displacement) and the connectivity queries (drivers, fanout,
// topological structure) that the placer, row assignment, router, timing and
// power models are built on.
package netlist

import (
	"fmt"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/tech"
)

// NoNet marks an unconnected pin.
const NoNet int32 = -1

// PinRef identifies one pin: either pin Pin of instance Inst, or, when
// Inst == PortInst, primary IO port Pin.
type PinRef struct {
	Inst int32
	Pin  int32
}

// PortInst is the sentinel Inst value for primary IO ports.
const PortInst int32 = -1

// IsPort reports whether the reference names a primary IO port.
func (p PinRef) IsPort() bool { return p.Inst == PortInst }

// Net is a signal connecting pins. Exactly one pin should drive it (an
// instance output pin or an input port).
type Net struct {
	Name string
	Pins []PinRef
}

// Instance is one placed standard cell.
type Instance struct {
	Name   string
	Master *celllib.Master
	// Pos is the lower-left corner of the cell.
	Pos geom.Point
	// PinNets maps master pin index to net index (NoNet if unconnected).
	PinNets []int32
	// Fixed instances are never moved by placement or legalization.
	Fixed bool
	// Source remembers the pre-mLEF master while the design is in the
	// uniform-height mLEF representation; nil otherwise.
	Source *celllib.Master
}

// Width returns the instance width in DBU.
func (in *Instance) Width() int64 { return in.Master.Width }

// Height returns the instance height in DBU.
func (in *Instance) Height() int64 { return in.Master.RowH }

// Rect returns the instance footprint.
func (in *Instance) Rect() geom.Rect {
	return geom.Rect{Lo: in.Pos, Hi: geom.Point{X: in.Pos.X + in.Width(), Y: in.Pos.Y + in.Height()}}
}

// TrueHeight returns the track-height class of the instance, looking through
// the mLEF transform: while a design is in mLEF form, Master is a
// uniform-height stand-in and Source holds the real mixed-height master.
func (in *Instance) TrueHeight() tech.TrackHeight {
	if in.Source != nil {
		return in.Source.Height
	}
	return in.Master.Height
}

// TrueMaster returns the real (pre-mLEF) master.
func (in *Instance) TrueMaster() *celllib.Master {
	if in.Source != nil {
		return in.Source
	}
	return in.Master
}

// PortDir tells whether a primary port feeds the design or observes it.
type PortDir uint8

const (
	// In ports drive a net from outside.
	In PortDir = iota
	// Out ports are driven by the design.
	Out
)

// Port is a primary IO of the block, fixed on the die boundary.
type Port struct {
	Name string
	Dir  PortDir
	Pos  geom.Point
	Net  int32
}

// Design is the complete block under placement.
type Design struct {
	Name  string
	Tech  *tech.Tech
	Lib   *celllib.Library
	Insts []*Instance
	Nets  []*Net
	Ports []*Port
	// Die is the placeable area.
	Die geom.Rect
	// ClockPeriodPs is the target clock period in picoseconds.
	ClockPeriodPs float64
	// ClockNet indexes the clock net, or NoNet.
	ClockNet int32
}

// PinPos returns the absolute location of a pin reference.
func (d *Design) PinPos(ref PinRef) geom.Point {
	if ref.IsPort() {
		return d.Ports[ref.Pin].Pos
	}
	in := d.Insts[ref.Inst]
	return in.Pos.Add(in.Master.Pins[ref.Pin].Offset)
}

// NetHPWL returns the half-perimeter wirelength of one net.
func (d *Design) NetHPWL(net int32) int64 {
	n := d.Nets[net]
	var b geom.BBox
	for _, ref := range n.Pins {
		b.Extend(d.PinPos(ref))
	}
	return b.HalfPerimeter()
}

// TotalHPWL returns the design HPWL, excluding the clock net (as is usual
// for placement-quality reporting; the clock is routed as a tree, not
// point-to-point).
func (d *Design) TotalHPWL() int64 {
	var sum int64
	for i := range d.Nets {
		if int32(i) == d.ClockNet {
			continue
		}
		sum += d.NetHPWL(int32(i))
	}
	return sum
}

// NetBBox returns the pin bounding box of a net.
func (d *Design) NetBBox(net int32) geom.Rect {
	var b geom.BBox
	for _, ref := range d.Nets[net].Pins {
		b.Extend(d.PinPos(ref))
	}
	return b.Rect()
}

// Driver returns the pin reference driving a net: the unique instance output
// pin or input port on it. ok is false for undriven nets.
func (d *Design) Driver(net int32) (PinRef, bool) {
	for _, ref := range d.Nets[net].Pins {
		if ref.IsPort() {
			if d.Ports[ref.Pin].Dir == In {
				return ref, true
			}
			continue
		}
		in := d.Insts[ref.Inst]
		if in.Master.Pins[ref.Pin].Dir == celllib.Output {
			return ref, true
		}
	}
	return PinRef{}, false
}

// Sinks returns the non-driving pins of a net, in net order.
func (d *Design) Sinks(net int32) []PinRef {
	drv, has := d.Driver(net)
	out := make([]PinRef, 0, len(d.Nets[net].Pins))
	for _, ref := range d.Nets[net].Pins {
		if has && ref == drv {
			continue
		}
		out = append(out, ref)
	}
	return out
}

// MinorityInstances returns indices of all 7.5T (minority) instances,
// classified by true (pre-mLEF) master height.
func (d *Design) MinorityInstances() []int32 {
	var out []int32
	for i, in := range d.Insts {
		if in.TrueHeight() == tech.Tall7p5T {
			out = append(out, int32(i))
		}
	}
	return out
}

// MinorityFraction returns the count fraction of minority instances.
func (d *Design) MinorityFraction() float64 {
	if len(d.Insts) == 0 {
		return 0
	}
	return float64(len(d.MinorityInstances())) / float64(len(d.Insts))
}

// MinorityAreaFraction returns the area fraction contributed by minority
// instances, using true masters.
func (d *Design) MinorityAreaFraction() float64 {
	var minority, total float64
	for _, in := range d.Insts {
		m := in.TrueMaster()
		a := float64(m.Width) * float64(m.RowH)
		total += a
		if m.Height == tech.Tall7p5T {
			minority += a
		}
	}
	if total == 0 {
		return 0
	}
	return minority / total
}

// TotalCellArea returns the summed footprint area of all instances (current
// masters, i.e. mLEF widths while in mLEF form).
func (d *Design) TotalCellArea() int64 {
	var sum int64
	for _, in := range d.Insts {
		sum += in.Width() * in.Height()
	}
	return sum
}

// Positions returns a snapshot of all instance positions; used to measure
// displacement between flow stages.
func (d *Design) Positions() []geom.Point {
	out := make([]geom.Point, len(d.Insts))
	for i, in := range d.Insts {
		out[i] = in.Pos
	}
	return out
}

// Displacement returns the summed Manhattan displacement of all instances
// from a reference snapshot (see Table IV of the paper).
func (d *Design) Displacement(ref []geom.Point) int64 {
	var sum int64
	for i, in := range d.Insts {
		if i >= len(ref) {
			break
		}
		sum += in.Pos.ManhattanDist(ref[i])
	}
	return sum
}

// Clone deep-copies the design; masters and library are shared (immutable).
func (d *Design) Clone() *Design {
	nd := &Design{
		Name:          d.Name,
		Tech:          d.Tech,
		Lib:           d.Lib,
		Die:           d.Die,
		ClockPeriodPs: d.ClockPeriodPs,
		ClockNet:      d.ClockNet,
	}
	nd.Insts = make([]*Instance, len(d.Insts))
	for i, in := range d.Insts {
		ci := *in
		ci.PinNets = append([]int32(nil), in.PinNets...)
		nd.Insts[i] = &ci
	}
	nd.Nets = make([]*Net, len(d.Nets))
	for i, n := range d.Nets {
		cn := &Net{Name: n.Name, Pins: append([]PinRef(nil), n.Pins...)}
		nd.Nets[i] = cn
	}
	nd.Ports = make([]*Port, len(d.Ports))
	for i, p := range d.Ports {
		cp := *p
		nd.Ports[i] = &cp
	}
	return nd
}

// Validate checks referential integrity of the design database. It runs in
// O(instances + net pins): the pin-side back-reference check uses one flat
// array indexed by global pin slot instead of scanning each net's pin list,
// which matters on million-cell designs where a single clock net can carry
// hundreds of thousands of pins.
func (d *Design) Validate() error {
	if d.Tech == nil || d.Lib == nil {
		return fmt.Errorf("netlist: %s: missing tech or library", d.Name)
	}
	// Global pin slots: instance i's pins occupy [pinOff[i], pinOff[i+1]).
	pinOff := make([]int32, len(d.Insts)+1)
	for i, in := range d.Insts {
		if in.Master == nil {
			return fmt.Errorf("netlist: inst %d (%s): nil master", i, in.Name)
		}
		if len(in.PinNets) != len(in.Master.Pins) {
			return fmt.Errorf("netlist: inst %s: %d pin nets for %d master pins",
				in.Name, len(in.PinNets), len(in.Master.Pins))
		}
		pinOff[i+1] = pinOff[i] + int32(len(in.PinNets))
	}
	// backRef[slot] records a net that lists the pin (NoNet if none does).
	// A pin listed by several distinct nets still fails: PinNets can match
	// at most one of them, and the net-side loop below checks every net.
	backRef := make([]int32, pinOff[len(d.Insts)])
	for s := range backRef {
		backRef[s] = NoNet
	}
	for ni, n := range d.Nets {
		for _, ref := range n.Pins {
			if !ref.IsPort() && ref.Inst >= 0 && int(ref.Inst) < len(d.Insts) &&
				ref.Pin >= 0 && int(ref.Pin) < len(d.Insts[ref.Inst].PinNets) {
				backRef[pinOff[ref.Inst]+ref.Pin] = int32(ni)
			}
		}
	}
	for i, in := range d.Insts {
		for p, nn := range in.PinNets {
			if nn == NoNet {
				continue
			}
			if nn < 0 || int(nn) >= len(d.Nets) {
				return fmt.Errorf("netlist: inst %s pin %d: net %d out of range", in.Name, p, nn)
			}
			if backRef[pinOff[i]+int32(p)] != nn {
				return fmt.Errorf("netlist: inst %s pin %d: net %s lacks back reference",
					in.Name, p, d.Nets[nn].Name)
			}
		}
	}
	for ni, n := range d.Nets {
		for _, ref := range n.Pins {
			if ref.IsPort() {
				if ref.Pin < 0 || int(ref.Pin) >= len(d.Ports) {
					return fmt.Errorf("netlist: net %s: port %d out of range", n.Name, ref.Pin)
				}
				if d.Ports[ref.Pin].Net != int32(ni) {
					return fmt.Errorf("netlist: net %s: port %s back reference mismatch",
						n.Name, d.Ports[ref.Pin].Name)
				}
				continue
			}
			if ref.Inst < 0 || int(ref.Inst) >= len(d.Insts) {
				return fmt.Errorf("netlist: net %s: inst %d out of range", n.Name, ref.Inst)
			}
			in := d.Insts[ref.Inst]
			if ref.Pin < 0 || int(ref.Pin) >= len(in.PinNets) {
				return fmt.Errorf("netlist: net %s: pin %d out of range on %s", n.Name, ref.Pin, in.Name)
			}
			if in.PinNets[ref.Pin] != int32(ni) {
				return fmt.Errorf("netlist: net %s: inst %s pin %d back reference mismatch",
					n.Name, in.Name, ref.Pin)
			}
		}
	}
	if d.ClockNet != NoNet && (d.ClockNet < 0 || int(d.ClockNet) >= len(d.Nets)) {
		return fmt.Errorf("netlist: clock net %d out of range", d.ClockNet)
	}
	return nil
}

// Connect wires pin (inst, pin) onto net, maintaining both directions of the
// reference. It replaces any previous connection of that pin.
func (d *Design) Connect(inst, pin, net int32) {
	in := d.Insts[inst]
	if old := in.PinNets[pin]; old != NoNet {
		d.disconnect(old, PinRef{inst, pin})
	}
	in.PinNets[pin] = net
	if net != NoNet {
		d.Nets[net].Pins = append(d.Nets[net].Pins, PinRef{inst, pin})
	}
}

// ConnectPort wires a primary port onto a net.
func (d *Design) ConnectPort(port, net int32) {
	p := d.Ports[port]
	if p.Net != NoNet {
		d.disconnect(p.Net, PinRef{PortInst, port})
	}
	p.Net = net
	if net != NoNet {
		d.Nets[net].Pins = append(d.Nets[net].Pins, PinRef{PortInst, port})
	}
}

func (d *Design) disconnect(net int32, ref PinRef) {
	pins := d.Nets[net].Pins
	for i, p := range pins {
		if p == ref {
			d.Nets[net].Pins = append(pins[:i], pins[i+1:]...)
			return
		}
	}
}

// AddInstance appends an instance with unconnected pins and returns its
// index.
func (d *Design) AddInstance(name string, m *celllib.Master) int32 {
	in := &Instance{Name: name, Master: m, PinNets: make([]int32, len(m.Pins))}
	for i := range in.PinNets {
		in.PinNets[i] = NoNet
	}
	d.Insts = append(d.Insts, in)
	return int32(len(d.Insts) - 1)
}

// AddNet appends an empty net and returns its index.
func (d *Design) AddNet(name string) int32 {
	d.Nets = append(d.Nets, &Net{Name: name})
	return int32(len(d.Nets) - 1)
}

// AddPort appends a primary port (unconnected) and returns its index.
func (d *Design) AddPort(name string, dir PortDir, pos geom.Point) int32 {
	d.Ports = append(d.Ports, &Port{Name: name, Dir: dir, Pos: pos, Net: NoNet})
	return int32(len(d.Ports) - 1)
}

// Stats summarises a design for reporting (Table II columns).
type Stats struct {
	Cells        int
	Nets         int
	Ports        int
	MinorityPct  float64
	TotalHPWL    int64
	CellArea     int64
	DieArea      int64
	Utilization  float64
	MinorityArea float64
}

// ComputeStats gathers summary statistics.
func (d *Design) ComputeStats() Stats {
	s := Stats{
		Cells:        len(d.Insts),
		Nets:         len(d.Nets),
		Ports:        len(d.Ports),
		MinorityPct:  100 * d.MinorityFraction(),
		TotalHPWL:    d.TotalHPWL(),
		CellArea:     d.TotalCellArea(),
		DieArea:      d.Die.Area(),
		MinorityArea: d.MinorityAreaFraction(),
	}
	if s.DieArea > 0 {
		s.Utilization = float64(s.CellArea) / float64(s.DieArea)
	}
	return s
}
