package netlist

import (
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/tech"
)

// buildMini wires: port A -> inv1 -> n1 -> nand2 (both inputs) -> n2 -> port Z.
func buildMini(t *testing.T) *Design {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	d := &Design{
		Name:     "mini",
		Tech:     tc,
		Lib:      lib,
		Die:      geom.NewRect(0, 0, 10000, 10000),
		ClockNet: NoNet,
	}
	inv := lib.Find(celllib.INV, 1, tech.Short6T, celllib.RVT)
	nand := lib.Find(celllib.NAND2, 1, tech.Tall7p5T, celllib.RVT)
	if inv == nil || nand == nil {
		t.Fatal("missing masters")
	}
	i1 := d.AddInstance("inv1", inv)
	i2 := d.AddInstance("nand2", nand)
	pa := d.AddPort("A", In, geom.Point{X: 0, Y: 5000})
	pz := d.AddPort("Z", Out, geom.Point{X: 10000, Y: 5000})

	nA := d.AddNet("A")
	n1 := d.AddNet("n1")
	n2 := d.AddNet("n2")

	d.ConnectPort(pa, nA)
	d.Connect(i1, 0, nA) // inv input
	d.Connect(i1, 1, n1) // inv output
	d.Connect(i2, 0, n1)
	d.Connect(i2, 1, n1)
	d.Connect(i2, 2, n2) // nand output
	d.ConnectPort(pz, n2)

	d.Insts[i1].Pos = geom.Point{X: 1000, Y: 1000}
	d.Insts[i2].Pos = geom.Point{X: 5000, Y: 3000}
	if err := d.Validate(); err != nil {
		t.Fatalf("mini design invalid: %v", err)
	}
	return d
}

func TestPinPos(t *testing.T) {
	d := buildMini(t)
	in := d.Insts[0]
	got := d.PinPos(PinRef{0, 0})
	want := in.Pos.Add(in.Master.Pins[0].Offset)
	if got != want {
		t.Errorf("PinPos = %v, want %v", got, want)
	}
	// Port position.
	if got := d.PinPos(PinRef{PortInst, 0}); got != (geom.Point{X: 0, Y: 5000}) {
		t.Errorf("port PinPos = %v", got)
	}
}

func TestInstanceRectAndHeights(t *testing.T) {
	d := buildMini(t)
	inv := d.Insts[0]
	r := inv.Rect()
	if r.W() != inv.Width() || r.H() != inv.Height() {
		t.Error("Rect dims mismatch")
	}
	if inv.TrueHeight() != tech.Short6T {
		t.Error("inv must be 6T")
	}
	if d.Insts[1].TrueHeight() != tech.Tall7p5T {
		t.Error("nand must be 7.5T")
	}
	// Simulate an mLEF stand-in: Source set; TrueHeight follows Source.
	src := inv.Master
	inv.Source = src
	inv.Master = d.Lib.Variant(src, tech.Tall7p5T)
	if inv.TrueHeight() != tech.Short6T || inv.TrueMaster() != src {
		t.Error("TrueHeight/TrueMaster must look through Source")
	}
}

func TestDriverAndSinks(t *testing.T) {
	d := buildMini(t)
	// Net "A" (index 0) is driven by the input port.
	drv, ok := d.Driver(0)
	if !ok || !drv.IsPort() {
		t.Fatalf("net A driver = %v ok=%v", drv, ok)
	}
	// Net n1 is driven by inv output pin 1.
	drv, ok = d.Driver(1)
	if !ok || drv != (PinRef{0, 1}) {
		t.Fatalf("net n1 driver = %v ok=%v", drv, ok)
	}
	sinks := d.Sinks(1)
	if len(sinks) != 2 {
		t.Fatalf("n1 sinks = %d, want 2", len(sinks))
	}
	for _, s := range sinks {
		if s.Inst != 1 {
			t.Errorf("unexpected sink %v", s)
		}
	}
	// An undriven net.
	n := d.AddNet("floating")
	if _, ok := d.Driver(n); ok {
		t.Error("floating net must have no driver")
	}
}

func TestHPWLAndDisplacement(t *testing.T) {
	d := buildMini(t)
	total := d.TotalHPWL()
	var manual int64
	for i := range d.Nets {
		manual += d.NetHPWL(int32(i))
	}
	if total != manual {
		t.Errorf("TotalHPWL %d != sum %d", total, manual)
	}
	ref := d.Positions()
	if d.Displacement(ref) != 0 {
		t.Error("zero displacement expected at snapshot")
	}
	d.Insts[0].Pos = d.Insts[0].Pos.Add(geom.Point{X: 30, Y: -40})
	if got := d.Displacement(ref); got != 70 {
		t.Errorf("Displacement = %d, want 70", got)
	}
}

func TestClockNetExcludedFromHPWL(t *testing.T) {
	d := buildMini(t)
	base := d.TotalHPWL()
	d.ClockNet = 1 // pretend n1 is the clock
	if got := d.TotalHPWL(); got != base-d.NetHPWL(1) {
		t.Errorf("clock net not excluded: %d", got)
	}
}

func TestMinorityQueries(t *testing.T) {
	d := buildMini(t)
	mins := d.MinorityInstances()
	if len(mins) != 1 || mins[0] != 1 {
		t.Fatalf("MinorityInstances = %v", mins)
	}
	if got := d.MinorityFraction(); got != 0.5 {
		t.Errorf("MinorityFraction = %f", got)
	}
	af := d.MinorityAreaFraction()
	if af <= 0 || af >= 1 {
		t.Errorf("MinorityAreaFraction = %f out of range", af)
	}
	empty := &Design{Tech: d.Tech, Lib: d.Lib}
	if empty.MinorityFraction() != 0 || empty.MinorityAreaFraction() != 0 {
		t.Error("empty design fractions must be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := buildMini(t)
	c := d.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	c.Insts[0].Pos = geom.Point{X: 777, Y: 888}
	c.Connect(0, 0, NoNet)
	if d.Insts[0].Pos == c.Insts[0].Pos {
		t.Error("clone position change leaked to original")
	}
	if d.Insts[0].PinNets[0] == NoNet {
		t.Error("clone connectivity change leaked to original")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
}

func TestConnectReplacesPrevious(t *testing.T) {
	d := buildMini(t)
	n3 := d.AddNet("n3")
	d.Connect(0, 1, n3) // move inv output from n1 to n3
	if err := d.Validate(); err != nil {
		t.Fatalf("after reconnect: %v", err)
	}
	if _, ok := d.Driver(1); ok {
		t.Error("n1 must have lost its driver")
	}
	if drv, ok := d.Driver(n3); !ok || drv != (PinRef{0, 1}) {
		t.Error("n3 must be driven by inv output")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := buildMini(t)
	d.Insts[0].PinNets[0] = 99
	if err := d.Validate(); err == nil {
		t.Error("expected out-of-range net error")
	}
	d = buildMini(t)
	// Break back reference: net lists a pin the instance does not point at.
	d.Nets[2].Pins = append(d.Nets[2].Pins, PinRef{0, 0})
	if err := d.Validate(); err == nil {
		t.Error("expected back reference error")
	}
	d = buildMini(t)
	d.ClockNet = 12
	if err := d.Validate(); err == nil {
		t.Error("expected clock net range error")
	}
}

func TestComputeStats(t *testing.T) {
	d := buildMini(t)
	s := d.ComputeStats()
	if s.Cells != 2 || s.Nets != 3 || s.Ports != 2 {
		t.Errorf("stats counts wrong: %+v", s)
	}
	if s.MinorityPct != 50 {
		t.Errorf("MinorityPct = %f", s.MinorityPct)
	}
	if s.Utilization <= 0 || s.Utilization >= 1 {
		t.Errorf("Utilization = %f", s.Utilization)
	}
	if s.TotalHPWL != d.TotalHPWL() {
		t.Error("stats HPWL mismatch")
	}
}
