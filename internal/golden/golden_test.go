package golden

import (
	"context"
	"strings"
	"testing"
	"time"
)

const goldenPath = "testdata/golden.json"

// TestGoldenRegression recomputes the corpus and compares it against the
// committed snapshot. A failure means placer behaviour changed: either fix
// the regression or, for an intentional change, regenerate with
// `go run ./cmd/gentest -golden` and commit the reviewed JSON diff.
func TestGoldenRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	want, err := Load(goldenPath)
	if err != nil {
		t.Fatalf("load committed snapshot: %v (regenerate with `go run ./cmd/gentest -golden`)", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	got, err := Compute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Compare(got, want, DefaultTol); len(diffs) != 0 {
		t.Errorf("golden corpus drift (%d metric(s)):\n  %s", len(diffs), strings.Join(diffs, "\n  "))
	}
}

// perturbed deep-copies a snapshot and applies fn to its first flow entry.
func perturbed(t *testing.T, s *Snapshot, fn func(*FlowMetrics)) *Snapshot {
	t.Helper()
	c := *s
	c.Designs = append([]DesignSnapshot(nil), s.Designs...)
	for i := range c.Designs {
		fl := map[string]FlowMetrics{}
		for k, v := range s.Designs[i].Flows {
			fl[k] = v
		}
		c.Designs[i].Flows = fl
	}
	if len(c.Designs) == 0 {
		t.Fatal("empty snapshot")
	}
	m := c.Designs[0].Flows["flow5"]
	fn(&m)
	c.Designs[0].Flows["flow5"] = m
	return &c
}

// TestGoldenDetectsDrift demonstrates the tolerance semantics on the
// committed snapshot itself: drift beyond DefaultTol fails, drift within it
// passes, and a missing design or flow entry is reported.
func TestGoldenDetectsDrift(t *testing.T) {
	want, err := Load(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Compare(want, want, 0); len(diffs) != 0 {
		t.Fatalf("snapshot does not equal itself: %v", diffs)
	}

	big := perturbed(t, want, func(m *FlowMetrics) {
		m.HPWL += int64(2*DefaultTol*float64(m.HPWL)) + 1
	})
	diffs := Compare(big, want, DefaultTol)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "HPWL drift") {
		t.Errorf("beyond-tolerance HPWL perturbation: got diffs %v, want one HPWL drift", diffs)
	}

	disp := perturbed(t, want, func(m *FlowMetrics) { m.Displacement = m.Displacement*2 + 1000 })
	diffs = Compare(disp, want, DefaultTol)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "displacement drift") {
		t.Errorf("displacement perturbation: got diffs %v, want one displacement drift", diffs)
	}

	small := perturbed(t, want, func(m *FlowMetrics) {
		m.HPWL += int64(0.5 * DefaultTol * float64(m.HPWL))
	})
	if diffs := Compare(small, want, DefaultTol); len(diffs) != 0 {
		t.Errorf("within-tolerance perturbation flagged: %v", diffs)
	}

	missing := perturbed(t, want, func(*FlowMetrics) {})
	delete(missing.Designs[0].Flows, "flow3")
	if diffs := Compare(missing, want, DefaultTol); len(diffs) != 1 || !strings.Contains(diffs[0], "missing") {
		t.Errorf("missing flow entry: got diffs %v", diffs)
	}

	empty := &Snapshot{Schema: Schema, Scale: Scale, Seed: Seed}
	if diffs := Compare(empty, want, DefaultTol); len(diffs) < len(want.Designs) {
		t.Errorf("empty snapshot produced only %d diffs", len(diffs))
	}
}
