// Package golden maintains the committed regression corpus: per-testcase
// displacement/HPWL snapshots for a fixed set of small designs across all
// five flows. The snapshot lives at internal/golden/testdata/golden.json and
// is compared by TestGoldenRegression under a small relative tolerance, so
// any behavioural drift in the placer — solver, legalizer, cost model —
// shows up as a failing test with a precise diff.
//
// Regenerate after an intentional behaviour change with
//
//	go run ./cmd/gentest -golden
//
// and review the JSON diff like any other code change.
package golden

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"mthplace/internal/flow"
	"mthplace/internal/synth"
)

// Corpus parameters. Small scales keep the whole 3×5 matrix under a few
// seconds while still exercising clustering, the RAP ILP, restacking and
// legalization on three differently shaped designs.
const (
	Schema = 3
	Scale  = 0.02
	Seed   = 1
	// DefaultTol is the relative tolerance applied per metric. The flows
	// are deterministic, so the corpus would reproduce exactly; the slack
	// exists to absorb intentional micro-tuning without churn, while still
	// catching real regressions (0.5% of HPWL is far below any algorithmic
	// change observed in practice).
	DefaultTol = 0.005
)

// Designs are the Table II testcases in the corpus.
var Designs = []string{"aes_300", "fpu_4000", "des3_210"}

// Degraded-entry parameters: one design re-run with the branch-and-bound
// budget pinned to a single node and root cuts disabled, which
// deterministically stops the search before optimality is proven and
// forces the solve ladder onto its anytime rung. Pinning this entry keeps
// the ladder itself — not just the happy path — under regression control.
const (
	DegradedDesign   = "aes_300"
	DegradedMaxNodes = 1
)

// DegradedFlows are the ILP flows captured in the degraded entry.
var DegradedFlows = []flow.ID{flow.Flow4, flow.Flow5}

// FlowMetrics is one flow's snapshot on one design.
type FlowMetrics struct {
	Displacement int64 `json:"disp"`
	HPWL         int64 `json:"hpwl"`
	// Rung is the solve-ladder rung that produced the metrics ("baseline"
	// for Flow 1, "ilp" for proven-optimal solves, "anytime"/"greedy" for
	// degraded ones). Compared exactly: a ladder regression that silently
	// changes which rung answers is precisely what this field catches.
	Rung string `json:"rung,omitempty"`
	// Gap is the recorded optimality-gap bound of a degraded solve
	// (0 for proven optimum, -1 for unknown).
	Gap float64 `json:"gap,omitempty"`
}

// DesignSnapshot holds one design's shape and per-flow metrics.
type DesignSnapshot struct {
	Name  string                 `json:"name"`
	Cells int                    `json:"cells"`
	Nets  int                    `json:"nets"`
	Flows map[string]FlowMetrics `json:"flows"`
}

// Snapshot is the whole committed corpus.
type Snapshot struct {
	Schema int     `json:"schema"`
	Scale  float64 `json:"scale"`
	Seed   int64   `json:"seed"`
	// Representation records the data model that computed this snapshot
	// ("aos" or "soa"). The flows are representation-independent — the
	// differential suite asserts bit-identical results — so Compare treats
	// snapshots from either representation as directly comparable and this
	// field is provenance, not a compared axis.
	Representation string           `json:"representation"`
	Designs        []DesignSnapshot `json:"designs"`
	// Degraded pins the anytime rung of the solve ladder: DegradedDesign
	// re-run with a single-node search budget (see the Degraded* consts).
	Degraded *DesignSnapshot `json:"degraded,omitempty"`
}

// FlowKey names a flow in the snapshot ("flow1".."flow5").
func FlowKey(id flow.ID) string { return fmt.Sprintf("flow%d", int(id)) }

// Compute runs every flow on every corpus design on the default (AoS)
// representation and returns a fresh snapshot. Each run executes with
// Config.Verify set, so a snapshot can only be produced from placements
// that pass the full invariant checker.
func Compute(ctx context.Context) (*Snapshot, error) {
	return ComputeRep(ctx, flow.RepAoS)
}

// ComputeRep is Compute on an explicit representation. Snapshots computed
// at RepAoS and RepSoA must be identical (zero tolerance) — the regression
// test for the SoA path compares one against the committed corpus directly.
func ComputeRep(ctx context.Context, rep flow.Representation) (*Snapshot, error) {
	s := &Snapshot{Schema: Schema, Scale: Scale, Seed: Seed, Representation: rep.String()}
	for _, name := range Designs {
		spec, err := findSpec(name)
		if err != nil {
			return nil, err
		}
		cfg := flow.DefaultConfig()
		cfg.Synth.Scale = Scale
		cfg.Synth.Seed = Seed
		cfg.Verify = true
		cfg.Rep = rep
		r, err := flow.NewRunner(ctx, spec, cfg)
		if err != nil {
			return nil, fmt.Errorf("golden: %s: %w", name, err)
		}
		ds := DesignSnapshot{
			Name:  name,
			Cells: len(r.Base.Insts),
			Nets:  len(r.Base.Nets),
			Flows: map[string]FlowMetrics{},
		}
		for _, id := range []flow.ID{flow.Flow1, flow.Flow2, flow.Flow3, flow.Flow4, flow.Flow5} {
			res, err := r.Run(ctx, id, false)
			if err != nil {
				return nil, fmt.Errorf("golden: %s %v: %w", name, id, err)
			}
			ds.Flows[FlowKey(id)] = FlowMetrics{
				Displacement: res.Metrics.Displacement,
				HPWL:         res.Metrics.HPWL,
				Rung:         res.Metrics.SolveRung,
				Gap:          res.Metrics.SolveGap,
			}
		}
		s.Designs = append(s.Designs, ds)
	}
	deg, err := computeDegraded(ctx)
	if err != nil {
		return nil, err
	}
	s.Degraded = deg
	return s, nil
}

// computeDegraded runs the degraded-entry flows with the search budget
// deterministically exhausted (node limit 1, no root cuts), so the solve
// ladder must answer from its anytime rung. The budget is a node count,
// not wall-clock, so the entry reproduces exactly on any machine. Each run
// still executes under Config.Verify: a degraded answer must be a legal
// placement like any other.
func computeDegraded(ctx context.Context) (*DesignSnapshot, error) {
	spec, err := findSpec(DegradedDesign)
	if err != nil {
		return nil, err
	}
	cfg := flow.DefaultConfig()
	cfg.Synth.Scale = Scale
	cfg.Synth.Seed = Seed
	cfg.Verify = true
	cfg.Core.Solve.MILP.MaxNodes = DegradedMaxNodes
	cfg.Core.Solve.RootCuts = -1
	r, err := flow.NewRunner(ctx, spec, cfg)
	if err != nil {
		return nil, fmt.Errorf("golden: degraded %s: %w", DegradedDesign, err)
	}
	ds := &DesignSnapshot{
		Name:  DegradedDesign,
		Cells: len(r.Base.Insts),
		Nets:  len(r.Base.Nets),
		Flows: map[string]FlowMetrics{},
	}
	for _, id := range DegradedFlows {
		res, err := r.Run(ctx, id, false)
		if err != nil {
			return nil, fmt.Errorf("golden: degraded %s %v: %w", DegradedDesign, id, err)
		}
		ds.Flows[FlowKey(id)] = FlowMetrics{
			Displacement: res.Metrics.Displacement,
			HPWL:         res.Metrics.HPWL,
			Rung:         res.Metrics.SolveRung,
			Gap:          res.Metrics.SolveGap,
		}
	}
	return ds, nil
}

// Load reads a snapshot from disk.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("golden: %s: %w", path, err)
	}
	return &s, nil
}

// Save writes the snapshot as stable, indented JSON.
func (s *Snapshot) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Compare returns a human-readable diff line per mismatch between got and
// want. Shape fields (schema, scale, seed, design set, cell/net counts) are
// compared exactly; metrics within relative tolerance tol.
func Compare(got, want *Snapshot, tol float64) []string {
	var diffs []string
	diff := func(format string, args ...any) { diffs = append(diffs, fmt.Sprintf(format, args...)) }
	if got.Schema != want.Schema {
		diff("schema: got %d, want %d", got.Schema, want.Schema)
	}
	if got.Scale != want.Scale || got.Seed != want.Seed {
		diff("corpus parameters: got scale=%v seed=%d, want scale=%v seed=%d",
			got.Scale, got.Seed, want.Scale, want.Seed)
	}
	byName := map[string]*DesignSnapshot{}
	for i := range got.Designs {
		byName[got.Designs[i].Name] = &got.Designs[i]
	}
	for i := range want.Designs {
		w := &want.Designs[i]
		g, ok := byName[w.Name]
		if !ok {
			diff("%s: missing from computed snapshot", w.Name)
			continue
		}
		compareDesign(diff, w.Name, g, w, tol)
	}
	if len(got.Designs) != len(want.Designs) {
		diff("design count: got %d, want %d", len(got.Designs), len(want.Designs))
	}
	switch {
	case want.Degraded == nil:
	case got.Degraded == nil:
		diff("degraded: missing from computed snapshot")
	default:
		compareDesign(diff, "degraded/"+want.Degraded.Name, got.Degraded, want.Degraded, tol)
	}
	return diffs
}

// compareDesign diffs one design's shape and per-flow metrics. The rung is
// compared exactly — a ladder that answers from a different rung is a
// behaviour change even when the metrics happen to agree.
func compareDesign(diff func(string, ...any), label string, g, w *DesignSnapshot, tol float64) {
	if g.Cells != w.Cells || g.Nets != w.Nets {
		diff("%s: shape drift: got %d cells/%d nets, want %d cells/%d nets",
			label, g.Cells, g.Nets, w.Cells, w.Nets)
	}
	keys := make([]string, 0, len(w.Flows))
	for k := range w.Flows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		wm := w.Flows[k]
		gm, ok := g.Flows[k]
		if !ok {
			diff("%s/%s: missing from computed snapshot", label, k)
			continue
		}
		if !within(gm.Displacement, wm.Displacement, tol) {
			diff("%s/%s: displacement drift: got %d, want %d (tol %.2f%%)",
				label, k, gm.Displacement, wm.Displacement, 100*tol)
		}
		if !within(gm.HPWL, wm.HPWL, tol) {
			diff("%s/%s: HPWL drift: got %d, want %d (tol %.2f%%)",
				label, k, gm.HPWL, wm.HPWL, 100*tol)
		}
		if gm.Rung != wm.Rung {
			diff("%s/%s: solve rung drift: got %q, want %q", label, k, gm.Rung, wm.Rung)
		}
		if math.Abs(gm.Gap-wm.Gap) > tol*math.Max(1, math.Abs(wm.Gap)) {
			diff("%s/%s: gap drift: got %g, want %g (tol %.2f%%)",
				label, k, gm.Gap, wm.Gap, 100*tol)
		}
	}
}

func within(got, want int64, tol float64) bool {
	return math.Abs(float64(got-want)) <= tol*math.Max(1, math.Abs(float64(want)))
}

func findSpec(name string) (synth.Spec, error) {
	for _, s := range synth.TableII() {
		if s.Name() == name {
			return s, nil
		}
	}
	return synth.Spec{}, fmt.Errorf("golden: unknown testcase %q", name)
}
