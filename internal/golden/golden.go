// Package golden maintains the committed regression corpus: per-testcase
// displacement/HPWL snapshots for a fixed set of small designs across all
// five flows. The snapshot lives at internal/golden/testdata/golden.json and
// is compared by TestGoldenRegression under a small relative tolerance, so
// any behavioural drift in the placer — solver, legalizer, cost model —
// shows up as a failing test with a precise diff.
//
// Regenerate after an intentional behaviour change with
//
//	go run ./cmd/gentest -golden
//
// and review the JSON diff like any other code change.
package golden

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"mthplace/internal/flow"
	"mthplace/internal/synth"
)

// Corpus parameters. Small scales keep the whole 3×5 matrix under a few
// seconds while still exercising clustering, the RAP ILP, restacking and
// legalization on three differently shaped designs.
const (
	Schema = 1
	Scale  = 0.02
	Seed   = 1
	// DefaultTol is the relative tolerance applied per metric. The flows
	// are deterministic, so the corpus would reproduce exactly; the slack
	// exists to absorb intentional micro-tuning without churn, while still
	// catching real regressions (0.5% of HPWL is far below any algorithmic
	// change observed in practice).
	DefaultTol = 0.005
)

// Designs are the Table II testcases in the corpus.
var Designs = []string{"aes_300", "fpu_4000", "des3_210"}

// FlowMetrics is one flow's snapshot on one design.
type FlowMetrics struct {
	Displacement int64 `json:"disp"`
	HPWL         int64 `json:"hpwl"`
}

// DesignSnapshot holds one design's shape and per-flow metrics.
type DesignSnapshot struct {
	Name  string                 `json:"name"`
	Cells int                    `json:"cells"`
	Nets  int                    `json:"nets"`
	Flows map[string]FlowMetrics `json:"flows"`
}

// Snapshot is the whole committed corpus.
type Snapshot struct {
	Schema  int              `json:"schema"`
	Scale   float64          `json:"scale"`
	Seed    int64            `json:"seed"`
	Designs []DesignSnapshot `json:"designs"`
}

// FlowKey names a flow in the snapshot ("flow1".."flow5").
func FlowKey(id flow.ID) string { return fmt.Sprintf("flow%d", int(id)) }

// Compute runs every flow on every corpus design and returns a fresh
// snapshot. Each run executes with Config.Verify set, so a snapshot can only
// be produced from placements that pass the full invariant checker.
func Compute(ctx context.Context) (*Snapshot, error) {
	s := &Snapshot{Schema: Schema, Scale: Scale, Seed: Seed}
	for _, name := range Designs {
		spec, err := findSpec(name)
		if err != nil {
			return nil, err
		}
		cfg := flow.DefaultConfig()
		cfg.Synth.Scale = Scale
		cfg.Synth.Seed = Seed
		cfg.Verify = true
		r, err := flow.NewRunner(ctx, spec, cfg)
		if err != nil {
			return nil, fmt.Errorf("golden: %s: %w", name, err)
		}
		ds := DesignSnapshot{
			Name:  name,
			Cells: len(r.Base.Insts),
			Nets:  len(r.Base.Nets),
			Flows: map[string]FlowMetrics{},
		}
		for _, id := range []flow.ID{flow.Flow1, flow.Flow2, flow.Flow3, flow.Flow4, flow.Flow5} {
			res, err := r.Run(ctx, id, false)
			if err != nil {
				return nil, fmt.Errorf("golden: %s %v: %w", name, id, err)
			}
			ds.Flows[FlowKey(id)] = FlowMetrics{
				Displacement: res.Metrics.Displacement,
				HPWL:         res.Metrics.HPWL,
			}
		}
		s.Designs = append(s.Designs, ds)
	}
	return s, nil
}

// Load reads a snapshot from disk.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("golden: %s: %w", path, err)
	}
	return &s, nil
}

// Save writes the snapshot as stable, indented JSON.
func (s *Snapshot) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Compare returns a human-readable diff line per mismatch between got and
// want. Shape fields (schema, scale, seed, design set, cell/net counts) are
// compared exactly; metrics within relative tolerance tol.
func Compare(got, want *Snapshot, tol float64) []string {
	var diffs []string
	diff := func(format string, args ...any) { diffs = append(diffs, fmt.Sprintf(format, args...)) }
	if got.Schema != want.Schema {
		diff("schema: got %d, want %d", got.Schema, want.Schema)
	}
	if got.Scale != want.Scale || got.Seed != want.Seed {
		diff("corpus parameters: got scale=%v seed=%d, want scale=%v seed=%d",
			got.Scale, got.Seed, want.Scale, want.Seed)
	}
	byName := map[string]*DesignSnapshot{}
	for i := range got.Designs {
		byName[got.Designs[i].Name] = &got.Designs[i]
	}
	for i := range want.Designs {
		w := &want.Designs[i]
		g, ok := byName[w.Name]
		if !ok {
			diff("%s: missing from computed snapshot", w.Name)
			continue
		}
		if g.Cells != w.Cells || g.Nets != w.Nets {
			diff("%s: shape drift: got %d cells/%d nets, want %d cells/%d nets",
				w.Name, g.Cells, g.Nets, w.Cells, w.Nets)
		}
		keys := make([]string, 0, len(w.Flows))
		for k := range w.Flows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			wm := w.Flows[k]
			gm, ok := g.Flows[k]
			if !ok {
				diff("%s/%s: missing from computed snapshot", w.Name, k)
				continue
			}
			if !within(gm.Displacement, wm.Displacement, tol) {
				diff("%s/%s: displacement drift: got %d, want %d (tol %.2f%%)",
					w.Name, k, gm.Displacement, wm.Displacement, 100*tol)
			}
			if !within(gm.HPWL, wm.HPWL, tol) {
				diff("%s/%s: HPWL drift: got %d, want %d (tol %.2f%%)",
					w.Name, k, gm.HPWL, wm.HPWL, 100*tol)
			}
		}
	}
	if len(got.Designs) != len(want.Designs) {
		diff("design count: got %d, want %d", len(got.Designs), len(want.Designs))
	}
	return diffs
}

func within(got, want int64, tol float64) bool {
	return math.Abs(float64(got-want)) <= tol*math.Max(1, math.Abs(float64(want)))
}

func findSpec(name string) (synth.Spec, error) {
	for _, s := range synth.TableII() {
		if s.Name() == name {
			return s, nil
		}
	}
	return synth.Spec{}, fmt.Errorf("golden: unknown testcase %q", name)
}
