package golden

import (
	"bytes"
	"context"
	"testing"
	"time"

	"mthplace/internal/flow"
	"mthplace/internal/lefdef"
)

// TestDifferentialAoSvsSoA is the representation equivalence suite: every
// flow on every corpus design, run once on the AoS path and once on the SoA
// path, must produce the exact same metrics and a byte-identical DEF. This
// is a stronger statement than the golden tolerance — zero drift — because
// the SoA kernels are written to preserve the AoS iteration and accumulation
// order bit for bit.
func TestDifferentialAoSvsSoA(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	flows := []flow.ID{flow.Flow1, flow.Flow2, flow.Flow3, flow.Flow4, flow.Flow5}
	for _, name := range Designs {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := findSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			mkRunner := func(rep flow.Representation) *flow.Runner {
				cfg := flow.DefaultConfig()
				cfg.Synth.Scale = Scale
				cfg.Synth.Seed = Seed
				cfg.Verify = true
				cfg.Rep = rep
				r, err := flow.NewRunner(ctx, spec, cfg)
				if err != nil {
					t.Fatalf("rep %v: %v", rep, err)
				}
				return r
			}
			aos := mkRunner(flow.RepAoS)
			soa := mkRunner(flow.RepSoA)
			// The shared starting point must already agree byte for byte.
			var bAoS, bSoA bytes.Buffer
			if err := lefdef.WriteDEF(&bAoS, aos.Base); err != nil {
				t.Fatal(err)
			}
			if err := lefdef.WriteDEF(&bSoA, soa.Base); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bAoS.Bytes(), bSoA.Bytes()) {
				t.Fatal("base placements diverge between representations")
			}
			if aos.NminR != soa.NminR {
				t.Fatalf("NminR diverges: %d vs %d", aos.NminR, soa.NminR)
			}
			for _, id := range flows {
				ra, err := aos.Run(ctx, id, false)
				if err != nil {
					t.Fatalf("%v aos: %v", id, err)
				}
				rs, err := soa.Run(ctx, id, false)
				if err != nil {
					t.Fatalf("%v soa: %v", id, err)
				}
				ma, ms := ra.Metrics, rs.Metrics
				if ma.Displacement != ms.Displacement || ma.HPWL != ms.HPWL {
					t.Errorf("%v: metrics diverge: disp %d vs %d, hpwl %d vs %d",
						id, ma.Displacement, ms.Displacement, ma.HPWL, ms.HPWL)
				}
				if ma.NumClusters != ms.NumClusters || ma.ILPVars != ms.ILPVars ||
					ma.SolveRung != ms.SolveRung || ma.SolveGap != ms.SolveGap {
					t.Errorf("%v: solver stats diverge: clusters %d vs %d, vars %d vs %d, rung %q vs %q",
						id, ma.NumClusters, ms.NumClusters, ma.ILPVars, ms.ILPVars, ma.SolveRung, ms.SolveRung)
				}
				var da, ds bytes.Buffer
				if err := lefdef.WriteDEF(&da, ra.Design); err != nil {
					t.Fatal(err)
				}
				if err := lefdef.WriteDEF(&ds, rs.Design); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(da.Bytes(), ds.Bytes()) {
					t.Errorf("%v: final placements diverge (%d vs %d bytes)", id, da.Len(), ds.Len())
				}
			}
		})
	}
}

// TestSoAMatchesCommittedGolden recomputes the whole corpus on the SoA path
// and compares it against the committed (AoS-computed) snapshot at zero
// tolerance on the metrics the representations share — any drift means the
// representations are no longer equivalent.
func TestSoAMatchesCommittedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	want, err := Load(goldenPath)
	if err != nil {
		t.Fatalf("load committed snapshot: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	got, err := ComputeRep(ctx, flow.RepSoA)
	if err != nil {
		t.Fatal(err)
	}
	if got.Representation != "soa" {
		t.Fatalf("representation = %q, want soa", got.Representation)
	}
	if diffs := Compare(got, want, 0); len(diffs) != 0 {
		t.Errorf("SoA corpus diverges from committed snapshot (%d diff(s)):\n  %s",
			len(diffs), joinLines(diffs))
	}
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
