// Package power computes the total power column of Table V: switching power
// on routed nets, internal (short-circuit + local) power of cells, and
// leakage.
//
// With capacitance in fF, voltage in volts and the clock period in
// picoseconds, the switching term fF·V²/ps lands directly in milliwatts;
// internal energy in fJ per toggle likewise; leakage in nW is converted.
package power

import (
	"fmt"

	"mthplace/internal/celllib"
	"mthplace/internal/netlist"
)

// Options tune the power model.
type Options struct {
	// NetLength optionally supplies routed lengths (route.Result.NetLength);
	// nil falls back to HPWL.
	NetLength []int64
	// Activity is the average toggle rate per clock cycle (default 0.15).
	Activity float64
	// ClockActivity is the clock net's toggle rate (always 1.0 by
	// definition — two edges, one full cycle — kept configurable for
	// experiments).
	ClockActivity float64
}

func (o Options) withDefaults() Options {
	if o.Activity <= 0 {
		o.Activity = 0.15
	}
	if o.ClockActivity <= 0 {
		o.ClockActivity = 1.0
	}
	return o
}

// Result is the power breakdown in milliwatts.
type Result struct {
	SwitchingMW float64
	InternalMW  float64
	LeakageMW   float64
}

// TotalMW returns the summed power.
func (r *Result) TotalMW() float64 { return r.SwitchingMW + r.InternalMW + r.LeakageMW }

// Analyze computes total power for the design's current placement/routing.
func Analyze(d *netlist.Design, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if d.ClockPeriodPs <= 0 {
		return nil, fmt.Errorf("power: design %s has no clock period", d.Name)
	}
	t := d.Tech
	res := &Result{}
	vv := t.SupplyVoltage * t.SupplyVoltage
	freq := 1.0 / d.ClockPeriodPs // 1/ps

	wireLen := func(ni int32) int64 {
		if opt.NetLength != nil && int(ni) < len(opt.NetLength) {
			return opt.NetLength[ni]
		}
		return d.NetHPWL(ni)
	}

	for ni := range d.Nets {
		l := float64(wireLen(int32(ni)))
		c := l * t.WireCapPerDBU
		for _, ref := range d.Nets[ni].Pins {
			if ref.IsPort() {
				continue
			}
			in := d.Insts[ref.Inst]
			if in.Master.Pins[ref.Pin].Dir == celllib.Input {
				c += in.Master.InputCap(int(ref.Pin))
			}
		}
		act := opt.Activity
		if int32(ni) == d.ClockNet {
			act = opt.ClockActivity
		}
		res.SwitchingMW += 0.5 * act * c * vv * freq
	}

	for _, in := range d.Insts {
		act := opt.Activity
		if in.Master.Sequential {
			// Flops toggle internally with the clock.
			act = 0.5 * (opt.Activity + opt.ClockActivity)
		}
		res.InternalMW += in.Master.InternalEnergy * act * freq
		res.LeakageMW += in.Master.Leakage * 1e-6
	}
	return res, nil
}
