package power

import (
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/netlist"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func smallDesign(t *testing.T) *netlist.Design {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = 0.02
	d, err := synth.Generate(tc, lib, synth.TableII()[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range d.Insts {
		in.Pos = geom.Point{
			X: d.Die.Lo.X + int64(i*131)%(d.Die.W()-in.Width()),
			Y: d.Die.Lo.Y + int64(i*197)%(d.Die.H()-in.Height()),
		}
	}
	return d
}

func TestPowerPositiveComponents(t *testing.T) {
	d := smallDesign(t)
	r, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.SwitchingMW <= 0 || r.InternalMW <= 0 || r.LeakageMW <= 0 {
		t.Fatalf("all components must be positive: %+v", r)
	}
	if r.TotalMW() != r.SwitchingMW+r.InternalMW+r.LeakageMW {
		t.Error("total mismatch")
	}
}

func TestPowerScalesWithFrequency(t *testing.T) {
	d := smallDesign(t)
	slow, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.ClockPeriodPs /= 2 // double the frequency
	fast, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fast.SwitchingMW <= slow.SwitchingMW || fast.InternalMW <= slow.InternalMW {
		t.Error("dynamic power must grow with frequency")
	}
	if fast.LeakageMW != slow.LeakageMW {
		t.Error("leakage must not depend on frequency")
	}
}

func TestPowerScalesWithWirelength(t *testing.T) {
	d := smallDesign(t)
	base, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lens := make([]int64, len(d.Nets))
	for ni := range d.Nets {
		lens[ni] = d.NetHPWL(int32(ni)) * 3
	}
	long, err := Analyze(d, Options{NetLength: lens})
	if err != nil {
		t.Fatal(err)
	}
	if long.SwitchingMW <= base.SwitchingMW {
		t.Error("longer wires must increase switching power")
	}
	if long.LeakageMW != base.LeakageMW || long.InternalMW != base.InternalMW {
		t.Error("wire length must only affect switching power")
	}
}

func TestPowerActivityKnob(t *testing.T) {
	d := smallDesign(t)
	lo, _ := Analyze(d, Options{Activity: 0.05})
	hi, _ := Analyze(d, Options{Activity: 0.5})
	if hi.SwitchingMW <= lo.SwitchingMW {
		t.Error("higher activity must increase switching power")
	}
}

func TestPowerRejectsNoClock(t *testing.T) {
	d := smallDesign(t)
	d.ClockPeriodPs = 0
	if _, err := Analyze(d, Options{}); err == nil {
		t.Error("missing clock period must error")
	}
}

func TestLeakageReflectsCellMix(t *testing.T) {
	tc := tech.Default()
	lib := celllib.New(tc)
	mk := func(m *celllib.Master) *netlist.Design {
		d := &netlist.Design{Name: "x", Tech: tc, Lib: lib,
			Die: geom.NewRect(0, 0, 10000, 10000), ClockPeriodPs: 100, ClockNet: netlist.NoNet}
		d.AddInstance("u", m)
		return d
	}
	rvt, _ := Analyze(mk(lib.Find(celllib.INV, 1, tech.Short6T, celllib.RVT)), Options{})
	lvt, _ := Analyze(mk(lib.Find(celllib.INV, 1, tech.Short6T, celllib.LVT)), Options{})
	if lvt.LeakageMW <= rvt.LeakageMW {
		t.Error("LVT cell must leak more")
	}
}
