package route

import (
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/lefdef"
	"mthplace/internal/legalize"
	"mthplace/internal/netlist"
	"mthplace/internal/placer"
	"mthplace/internal/rowgrid"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func placedDesign(t *testing.T, scale float64) *netlist.Design {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = scale
	d, err := synth.Generate(tc, lib, synth.TableII()[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lefdef.ApplyMLEF(d)
	if err != nil {
		t.Fatal(err)
	}
	placer.Global(d, placer.Options{OuterIters: 4, SolveSweeps: 6})
	g := rowgrid.Uniform(d.Die, m.PairH)
	if err := legalize.Uniform(d, g); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSpanningTree(t *testing.T) {
	pts := [][2]int{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	edges := spanningTree(pts)
	if len(edges) != 3 {
		t.Fatalf("tree edges = %d, want 3", len(edges))
	}
	// Connectivity check via union-find.
	parent := []int{0, 1, 2, 3}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range edges {
		parent[find(e[0])] = find(e[1])
	}
	for i := 1; i < 4; i++ {
		if find(i) != find(0) {
			t.Fatal("tree not connected")
		}
	}
	if spanningTree(pts[:1]) != nil {
		t.Error("single point has no edges")
	}
}

func TestEdgeCostMonotone(t *testing.T) {
	prev := 0.0
	for u := int32(0); u < 30; u++ {
		c := edgeCost(u, 12, 4)
		if c < prev {
			t.Fatalf("edge cost not monotone at u=%d", u)
		}
		prev = c
	}
	if edgeCost(0, 0, 4) < 1e8 {
		t.Error("zero-capacity edge must be prohibitive")
	}
}

func TestRouteBasics(t *testing.T) {
	d := placedDesign(t, 0.02)
	res, err := Route(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WirelengthDBU <= 0 {
		t.Fatal("no wirelength routed")
	}
	if res.GridW < 2 || res.GridH < 2 {
		t.Fatalf("grid %dx%d too small", res.GridW, res.GridH)
	}
	if len(res.NetLength) != len(d.Nets) {
		t.Fatal("net length vector size wrong")
	}
	var sum int64
	for _, l := range res.NetLength {
		if l < 0 {
			t.Fatal("negative net length")
		}
		sum += l
	}
	if sum != res.WirelengthDBU {
		t.Errorf("net lengths sum %d != total %d", sum, res.WirelengthDBU)
	}
}

func TestRoutedLengthAtLeastGridHPWL(t *testing.T) {
	d := placedDesign(t, 0.02)
	res, err := Route(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Per net, routed length >= gcell-quantised HPWL (paths cannot beat
	// Manhattan distance), for 2-pin nets.
	gs := d.Tech.GCellSize
	for ni := range d.Nets {
		if len(d.Nets[ni].Pins) != 2 {
			continue
		}
		a := d.PinPos(d.Nets[ni].Pins[0])
		b := d.PinPos(d.Nets[ni].Pins[1])
		ax, ay := (a.X-d.Die.Lo.X)/gs, (a.Y-d.Die.Lo.Y)/gs
		bx, by := (b.X-d.Die.Lo.X)/gs, (b.Y-d.Die.Lo.Y)/gs
		manh := (abs64(ax-bx) + abs64(ay-by)) * gs
		if res.NetLength[ni] < manh {
			t.Fatalf("net %d routed %d < grid manhattan %d", ni, res.NetLength[ni], manh)
		}
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestRouteDeterministic(t *testing.T) {
	d := placedDesign(t, 0.015)
	a, err := Route(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.WirelengthDBU != b.WirelengthDBU || a.Overflow != b.Overflow {
		t.Error("routing not deterministic")
	}
}

func TestRouteCongestionRelief(t *testing.T) {
	// A congested design: shrink gcell capacity drastically and check that
	// rip-up passes reduce (or at least do not increase) overflow.
	d := placedDesign(t, 0.02)
	d.Tech.HTracksPerGCell = 2
	d.Tech.VTracksPerGCell = 2
	noRRR, err := Route(d, Options{RipupPasses: 1, CongestionPenalty: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	withRRR, err := Route(d, Options{RipupPasses: 4, CongestionPenalty: 8})
	if err != nil {
		t.Fatal(err)
	}
	if withRRR.Overflow > noRRR.Overflow {
		t.Errorf("rip-up increased overflow: %d -> %d", noRRR.Overflow, withRRR.Overflow)
	}
	// Congestion-aware routing costs extra wirelength.
	if withRRR.Overflow < noRRR.Overflow && withRRR.WirelengthDBU < noRRR.WirelengthDBU {
		t.Logf("note: congestion relief also shortened WL (%d -> %d)", noRRR.WirelengthDBU, withRRR.WirelengthDBU)
	}
}

func TestMazeFindsDetour(t *testing.T) {
	g := &grid{w: 5, h: 5, size: 100, hCap: 1, vCap: 1}
	g.hUse = make([]int32, 25)
	g.vUse = make([]int32, 25)
	// Block the straight horizontal corridor at y=2.
	for x := 0; x < 4; x++ {
		g.hUse[2*5+x] = 5
	}
	s := &segment{x1: 0, y1: 2, x2: 4, y2: 2}
	path := maze(g, s, Options{}.withDefaults())
	if path == nil {
		t.Fatal("maze found no path")
	}
	if len(path) <= 4 {
		t.Errorf("maze path length %d should detour around blocked corridor", len(path))
	}
}
