// Package route implements the global router used for post-route metrics
// (Table V). It stands in for the commercial router: nets are decomposed
// into two-pin segments over a gcell grid with per-edge track capacities,
// segments are routed with congestion-aware L/Z patterns, and overflowed
// nets are ripped up and rerouted with an A* maze search. The router
// reports per-net routed lengths (consumed by STA and the power model) and
// total routed wirelength — congestion detours are what make a bad
// placement's routed wirelength grow faster than its HPWL, exactly the
// effect the paper's Table V measures.
package route

import (
	"container/heap"
	"fmt"
	"sort"

	"mthplace/internal/geom"
	"mthplace/internal/netlist"
)

// Options tune the router.
type Options struct {
	// CongestionPenalty scales the cost of using a nearly-full edge
	// (default 4).
	CongestionPenalty float64
	// RipupPasses is the number of rip-up-and-reroute rounds for overflowed
	// nets (default 2).
	RipupPasses int
	// MazeLimit bounds the maze search frontier per segment (default
	// 200000 pops) to keep worst-case runtime bounded.
	MazeLimit int
}

func (o Options) withDefaults() Options {
	if o.CongestionPenalty <= 0 {
		o.CongestionPenalty = 4
	}
	if o.RipupPasses <= 0 {
		o.RipupPasses = 2
	}
	if o.MazeLimit <= 0 {
		o.MazeLimit = 200000
	}
	return o
}

// Result summarises a routing run.
type Result struct {
	// WirelengthDBU is the total routed wirelength.
	WirelengthDBU int64
	// NetLength maps net index to its routed length in DBU (clock net
	// included, routed as a spanning tree).
	NetLength []int64
	// Overflow is the number of gcell edges whose demand exceeds capacity
	// after the final pass.
	Overflow int
	// MaxCongestion is the maximum demand/capacity ratio over edges.
	MaxCongestion float64
	// GridW, GridH are the gcell grid dimensions.
	GridW, GridH int
}

type grid struct {
	w, h   int
	size   int64
	x0, y0 int64
	// hUse[y*w+x] is demand on the horizontal edge (x,y)-(x+1,y);
	// vUse[y*w+x] on the vertical edge (x,y)-(x,y+1).
	hUse, vUse []int32
	hCap, vCap int32
}

func (g *grid) clampX(c int) int {
	if c < 0 {
		return 0
	}
	if c >= g.w {
		return g.w - 1
	}
	return c
}

func (g *grid) clampY(c int) int {
	if c < 0 {
		return 0
	}
	if c >= g.h {
		return g.h - 1
	}
	return c
}

func (g *grid) cellOf(p geom.Point) (int, int) {
	return g.clampX(int((p.X - g.x0) / g.size)), g.clampY(int((p.Y - g.y0) / g.size))
}

// edgeCost is the congestion-aware cost of pushing one more route through an
// edge with use u and capacity c.
func edgeCost(u, c int32, penalty float64) float64 {
	if c <= 0 {
		return 1e9
	}
	r := float64(u) / float64(c)
	switch {
	case r < 0.6:
		return 1
	case r < 1:
		return 1 + penalty*(r-0.6)/0.4
	default:
		return 1 + penalty + penalty*4*(r-1+1)
	}
}

type segment struct {
	net            int32
	x1, y1, x2, y2 int
	// path is the committed edge list (encoded), empty until routed.
	path []int32
}

// Route runs global routing on the design's current placement.
func Route(d *netlist.Design, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	t := d.Tech
	if t.GCellSize <= 0 {
		return nil, fmt.Errorf("route: bad gcell size")
	}
	g := &grid{
		w:    int((d.Die.W() + t.GCellSize - 1) / t.GCellSize),
		h:    int((d.Die.H() + t.GCellSize - 1) / t.GCellSize),
		size: t.GCellSize,
		x0:   d.Die.Lo.X,
		y0:   d.Die.Lo.Y,
		hCap: int32(t.HTracksPerGCell),
		vCap: int32(t.VTracksPerGCell),
	}
	if g.w < 1 {
		g.w = 1
	}
	if g.h < 1 {
		g.h = 1
	}
	g.hUse = make([]int32, g.w*g.h)
	g.vUse = make([]int32, g.w*g.h)

	res := &Result{NetLength: make([]int64, len(d.Nets)), GridW: g.w, GridH: g.h}

	// Decompose nets into segments with a nearest-neighbour spanning tree.
	var segs []*segment
	segsOfNet := make([][]*segment, len(d.Nets))
	for ni := range d.Nets {
		pins := d.Nets[ni].Pins
		if len(pins) < 2 {
			continue
		}
		pts := make([][2]int, len(pins))
		for k, ref := range pins {
			x, y := g.cellOf(d.PinPos(ref))
			pts[k] = [2]int{x, y}
		}
		for _, e := range spanningTree(pts) {
			s := &segment{net: int32(ni), x1: pts[e[0]][0], y1: pts[e[0]][1], x2: pts[e[1]][0], y2: pts[e[1]][1]}
			segs = append(segs, s)
			segsOfNet[ni] = append(segsOfNet[ni], s)
		}
	}
	// Route short segments first (they have the least flexibility).
	sort.SliceStable(segs, func(a, b int) bool {
		la := iabs(segs[a].x1-segs[a].x2) + iabs(segs[a].y1-segs[a].y2)
		lb := iabs(segs[b].x1-segs[b].x2) + iabs(segs[b].y1-segs[b].y2)
		return la < lb
	})

	for _, s := range segs {
		commit(g, s, bestPattern(g, s, opt))
	}

	// Rip-up and reroute segments crossing overflowed edges.
	for pass := 0; pass < opt.RipupPasses; pass++ {
		over := overflowedSegments(g, segs)
		if len(over) == 0 {
			break
		}
		for _, s := range over {
			uncommit(g, s)
			path := maze(g, s, opt)
			if path == nil {
				path = bestPattern(g, s, opt)
			}
			commit(g, s, path)
		}
	}

	// Tally.
	for ni, ss := range segsOfNet {
		var cells int64
		for _, s := range ss {
			cells += int64(len(s.path))
		}
		res.NetLength[ni] = cells * g.size
		res.WirelengthDBU += res.NetLength[ni]
	}
	for i := range g.hUse {
		if g.hUse[i] > g.hCap {
			res.Overflow++
		}
		if r := float64(g.hUse[i]) / float64(g.hCap); r > res.MaxCongestion {
			res.MaxCongestion = r
		}
	}
	for i := range g.vUse {
		if g.vUse[i] > g.vCap {
			res.Overflow++
		}
		if r := float64(g.vUse[i]) / float64(g.vCap); r > res.MaxCongestion {
			res.MaxCongestion = r
		}
	}
	return res, nil
}

func iabs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// spanningTree returns edges of a nearest-neighbour tree over the points
// (Prim's algorithm, Manhattan metric) — a standard RSMT approximation.
func spanningTree(pts [][2]int) [][2]int {
	n := len(pts)
	if n < 2 {
		return nil
	}
	inTree := make([]bool, n)
	dist := make([]int, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = 1 << 30
	}
	inTree[0] = true
	for i := 1; i < n; i++ {
		dist[i] = iabs(pts[i][0]-pts[0][0]) + iabs(pts[i][1]-pts[0][1])
		from[i] = 0
	}
	var edges [][2]int
	for k := 1; k < n; k++ {
		best := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (best == -1 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		edges = append(edges, [2]int{from[best], best})
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			dd := iabs(pts[i][0]-pts[best][0]) + iabs(pts[i][1]-pts[best][1])
			if dd < dist[i] {
				dist[i] = dd
				from[i] = best
			}
		}
	}
	return edges
}

// Edge encoding: horizontal edge (x,y)->(x+1,y) is (y*w+x)*2; vertical
// (x,y)->(x,y+1) is (y*w+x)*2+1.
func hEdge(g *grid, x, y int) int32 { return int32((y*g.w + x) * 2) }
func vEdge(g *grid, x, y int) int32 { return int32((y*g.w+x)*2 + 1) }

func addUse(g *grid, e int32, delta int32) {
	if e%2 == 0 {
		g.hUse[e/2] += delta
	} else {
		g.vUse[e/2] += delta
	}
}

func useOf(g *grid, e int32) (int32, int32) {
	if e%2 == 0 {
		return g.hUse[e/2], g.hCap
	}
	return g.vUse[e/2], g.vCap
}

func pathCost(g *grid, path []int32, penalty float64) float64 {
	var c float64
	for _, e := range path {
		u, cp := useOf(g, e)
		c += edgeCost(u, cp, penalty)
	}
	return c
}

// lPath builds the edge list of an L route via corner (cx, cy).
func lPath(g *grid, x1, y1, x2, y2, cx, cy int) []int32 {
	var path []int32
	appendH := func(xa, xb, y int) {
		if xa > xb {
			xa, xb = xb, xa
		}
		for x := xa; x < xb; x++ {
			path = append(path, hEdge(g, x, y))
		}
	}
	appendV := func(ya, yb, x int) {
		if ya > yb {
			ya, yb = yb, ya
		}
		for y := ya; y < yb; y++ {
			path = append(path, vEdge(g, x, y))
		}
	}
	// (x1,y1) -> (cx,y1) -> (cx,cy) -> (x2,cy) -> (x2,y2)
	appendH(x1, cx, y1)
	appendV(y1, cy, cx)
	appendH(cx, x2, cy)
	appendV(cy, y2, x2)
	return path
}

// bestPattern picks the cheaper of the two L shapes and a handful of Z
// shapes.
func bestPattern(g *grid, s *segment, opt Options) []int32 {
	cands := [][]int32{
		lPath(g, s.x1, s.y1, s.x2, s.y2, s.x2, s.y1), // horizontal first
		lPath(g, s.x1, s.y1, s.x2, s.y2, s.x1, s.y2), // vertical first
	}
	// Z shapes: intermediate x or y at 1/4, 1/2, 3/4.
	for _, f := range []int{1, 2, 3} {
		zx := s.x1 + (s.x2-s.x1)*f/4
		zy := s.y1 + (s.y2-s.y1)*f/4
		cands = append(cands,
			lPath(g, s.x1, s.y1, s.x2, s.y2, zx, s.y2),
			lPath(g, s.x1, s.y1, s.x2, s.y2, s.x2, zy),
		)
	}
	best, bestC := cands[0], pathCost(g, cands[0], opt.CongestionPenalty)
	for _, c := range cands[1:] {
		if cc := pathCost(g, c, opt.CongestionPenalty); cc < bestC {
			best, bestC = c, cc
		}
	}
	return best
}

func commit(g *grid, s *segment, path []int32) {
	s.path = path
	for _, e := range path {
		addUse(g, e, 1)
	}
}

func uncommit(g *grid, s *segment) {
	for _, e := range s.path {
		addUse(g, e, -1)
	}
	s.path = nil
}

func overflowedSegments(g *grid, segs []*segment) []*segment {
	var out []*segment
	for _, s := range segs {
		for _, e := range s.path {
			u, c := useOf(g, e)
			if u > c {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// maze runs A* from the segment source to its sink with congestion-aware
// edge costs; returns nil when the popped-node limit is hit.
type pqItem struct {
	node int
	f, g float64
}
type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].f < p[j].f }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { o := *p; it := o[len(o)-1]; *p = o[:len(o)-1]; return it }

func maze(g *grid, s *segment, opt Options) []int32 {
	start := s.y1*g.w + s.x1
	goal := s.y2*g.w + s.x2
	if start == goal {
		return []int32{}
	}
	dist := make(map[int]float64, 1024)
	prev := make(map[int]int32, 1024) // node -> incoming edge
	h := func(n int) float64 {
		x, y := n%g.w, n/g.w
		return float64(iabs(x-s.x2) + iabs(y-s.y2))
	}
	open := &pq{{start, h(start), 0}}
	dist[start] = 0
	pops := 0
	for open.Len() > 0 {
		it := heap.Pop(open).(pqItem)
		if it.node == goal {
			return tracePath(g, prev, start, goal)
		}
		if it.g > dist[it.node] {
			continue
		}
		pops++
		if pops > opt.MazeLimit {
			return nil
		}
		x, y := it.node%g.w, it.node/g.w
		type nb struct {
			node int
			edge int32
		}
		var nbs []nb
		if x+1 < g.w {
			nbs = append(nbs, nb{it.node + 1, hEdge(g, x, y)})
		}
		if x > 0 {
			nbs = append(nbs, nb{it.node - 1, hEdge(g, x-1, y)})
		}
		if y+1 < g.h {
			nbs = append(nbs, nb{it.node + g.w, vEdge(g, x, y)})
		}
		if y > 0 {
			nbs = append(nbs, nb{it.node - g.w, vEdge(g, x, y-1)})
		}
		for _, n := range nbs {
			u, c := useOf(g, n.edge)
			ng := it.g + edgeCost(u, c, opt.CongestionPenalty)
			if old, ok := dist[n.node]; !ok || ng < old {
				dist[n.node] = ng
				prev[n.node] = n.edge
				heap.Push(open, pqItem{n.node, ng + h(n.node), ng})
			}
		}
	}
	return nil
}

func tracePath(g *grid, prev map[int]int32, start, goal int) []int32 {
	var path []int32
	node := goal
	for node != start {
		e := prev[node]
		path = append(path, e)
		// Move across the edge backwards.
		idx := int(e / 2)
		x, y := idx%g.w, idx/g.w
		if e%2 == 0 { // horizontal (x,y)-(x+1,y)
			if node == y*g.w+x {
				node = y*g.w + x + 1
			} else {
				node = y*g.w + x
			}
		} else { // vertical (x,y)-(x,y+1)
			if node == y*g.w+x {
				node = (y+1)*g.w + x
			} else {
				node = y*g.w + x
			}
		}
	}
	return path
}
