// Package finflex implements the paper's closing future-work direction:
// placing mixed track-height cells on *pre-determined* row patterns, in the
// style of the TSMC N3E FinFlex™ platform (Fig. 1(b) of the paper — fixed
// alternating rows of the two track-heights), instead of customising each
// row during placement (Fig. 1(c), the paper's main flow).
//
// With a pre-determined pattern there is no row assignment problem: the row
// structure is a function of the pattern alone. Cells are bound to the
// pattern's rows of their height with a capacity-aware nearest-row
// assignment, then legalized with the fence-aware legalizer. Comparing this
// against Flow (5) quantifies the flexibility benefit of customised rows.
package finflex

import (
	"fmt"
	"sort"

	"mthplace/internal/geom"
	"mthplace/internal/netlist"
	"mthplace/internal/rowgrid"
	"mthplace/internal/tech"
)

// Pattern is a repeating row-pair height sequence, bottom to top.
type Pattern []tech.TrackHeight

// Alternating is the FinFlex-style strict alternation.
func Alternating() Pattern { return Pattern{tech.Short6T, tech.Tall7p5T} }

// OneInN returns a pattern with one tall pair every n pairs (n ≥ 2).
func OneInN(n int) Pattern {
	if n < 2 {
		n = 2
	}
	p := make(Pattern, n)
	p[n-1] = tech.Tall7p5T
	return p
}

// String implements fmt.Stringer.
func (p Pattern) String() string {
	out := ""
	for _, h := range p {
		if h == tech.Tall7p5T {
			out += "T"
		} else {
			out += "S"
		}
	}
	return out
}

// Stack tiles the die bottom-up with the repeating pattern: pairs are added
// while they fit the die height. The result is the pre-determined row
// structure (its minority row count is dictated by the pattern, not by the
// design).
func Stack(die geom.Rect, t *tech.Tech, p Pattern) (*rowgrid.MixedStack, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("finflex: empty pattern")
	}
	var hs []tech.TrackHeight
	var y int64
	for i := 0; ; i++ {
		h := p[i%len(p)]
		ph := t.PairHeight(h)
		if y+ph > die.H() {
			break
		}
		hs = append(hs, h)
		y += ph
	}
	if len(hs) == 0 {
		return nil, fmt.Errorf("finflex: die height %d fits no pair", die.H())
	}
	return rowgrid.Stack(die, hs, t)
}

// Assignment binds minority cells to the pattern's tall pairs.
type Assignment struct {
	Stack    *rowgrid.MixedStack
	CellPair map[int32]int
	SeedY    map[int32]int64
}

// Assign maps every minority cell to the nearest tall pair with remaining
// capacity (width-descending order, so big cells get first pick — the same
// capacity-aware greedy the RAP warm start uses). It fails when the pattern
// provides less minority capacity than the design demands; callers then
// pick a denser pattern.
func Assign(d *netlist.Design, ms *rowgrid.MixedStack) (*Assignment, error) {
	tall := ms.PairsOf(tech.Tall7p5T)
	if len(tall) == 0 {
		if len(d.MinorityInstances()) == 0 {
			return &Assignment{Stack: ms, CellPair: map[int32]int{}, SeedY: map[int32]int64{}}, nil
		}
		return nil, fmt.Errorf("finflex: pattern has no tall pairs")
	}
	capacity := 2 * ms.Width()
	load := make(map[int]int64, len(tall))
	minority := d.MinorityInstances()
	order := append([]int32(nil), minority...)
	sort.Slice(order, func(a, b int) bool {
		wa := d.Insts[order[a]].TrueMaster().Width
		wb := d.Insts[order[b]].TrueMaster().Width
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	out := &Assignment{
		Stack:    ms,
		CellPair: make(map[int32]int, len(minority)),
		SeedY:    make(map[int32]int64, len(minority)),
	}
	for _, i := range order {
		in := d.Insts[i]
		w := in.TrueMaster().Width
		cy := in.Pos.Y + in.Height()/2
		best, bestD := -1, int64(0)
		for _, p := range tall {
			if load[p]+w > capacity {
				continue
			}
			dd := geom.AbsInt64(ms.Y[p] + ms.PairH[p]/2 - cy)
			if best == -1 || dd < bestD {
				best, bestD = p, dd
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("finflex: minority demand exceeds pattern capacity (cell %d)", i)
		}
		load[best] += w
		out.CellPair[i] = best
		out.SeedY[i] = ms.Y[best]
	}
	return out, nil
}

// FitPattern picks the sparsest one-in-n pattern (n in [2,8]) that still
// hosts both height classes of the design at the given packing factor:
// larger n leaves more majority rows, so the search prefers the largest n
// whose tall pairs still cover the minority demand, then verifies the
// majority fits. Strict alternation often cannot host a 60%-utilization
// design with a small minority fraction — the flexibility cost of
// pre-determined rows that the paper's customised rows avoid.
func FitPattern(d *netlist.Design, t *tech.Tech, packing float64) (Pattern, *rowgrid.MixedStack, error) {
	if packing <= 0 || packing > 1 {
		packing = 0.92
	}
	var minorityW, majorityW int64
	for _, in := range d.Insts {
		m := in.TrueMaster()
		if m.Height == tech.Tall7p5T {
			minorityW += m.Width
		} else {
			majorityW += m.Width
		}
	}
	for n := 8; n >= 2; n-- {
		ms, err := Stack(d.Die, t, OneInN(n))
		if err != nil {
			continue
		}
		tallCap := int64(len(ms.PairsOf(tech.Tall7p5T))) * 2 * ms.Width()
		shortCap := int64(len(ms.PairsOf(tech.Short6T))) * 2 * ms.Width()
		if float64(minorityW) <= packing*float64(tallCap) &&
			float64(majorityW) <= packing*float64(shortCap) {
			return OneInN(n), ms, nil
		}
	}
	return nil, nil, fmt.Errorf("finflex: no one-in-n pattern hosts the design (minority %d, majority %d)",
		minorityW, majorityW)
}

// MinorityCapacityFraction returns the fraction of the pattern's minority
// row capacity the design would consume; > 1 means the pattern cannot host
// the design.
func MinorityCapacityFraction(d *netlist.Design, ms *rowgrid.MixedStack) float64 {
	tall := ms.PairsOf(tech.Tall7p5T)
	capTotal := float64(int64(len(tall)) * 2 * ms.Width())
	if capTotal == 0 {
		return 0
	}
	var demand float64
	for _, i := range d.MinorityInstances() {
		demand += float64(d.Insts[i].TrueMaster().Width)
	}
	return demand / capTotal
}
