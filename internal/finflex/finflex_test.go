package finflex

import (
	"context"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/lefdef"
	"mthplace/internal/legalize"
	"mthplace/internal/netlist"
	"mthplace/internal/placer"
	"mthplace/internal/rowgrid"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func TestPatternHelpers(t *testing.T) {
	if Alternating().String() != "ST" {
		t.Errorf("Alternating = %s", Alternating())
	}
	if OneInN(3).String() != "SST" {
		t.Errorf("OneInN(3) = %s", OneInN(3))
	}
	if OneInN(0).String() != "ST" {
		t.Errorf("OneInN clamps to 2, got %s", OneInN(0))
	}
}

func TestStackTilesPattern(t *testing.T) {
	tc := tech.Default()
	// Height for exactly 2 repetitions of (S,T) plus a leftover smaller
	// than a short pair.
	h := 2*(tc.PairHeight(tech.Short6T)+tc.PairHeight(tech.Tall7p5T)) + 100
	die := geom.NewRect(0, 0, 10000, h)
	ms, err := Stack(die, tc, Alternating())
	if err != nil {
		t.Fatal(err)
	}
	if ms.NumPairs() != 4 {
		t.Fatalf("pairs = %d, want 4", ms.NumPairs())
	}
	want := []tech.TrackHeight{tech.Short6T, tech.Tall7p5T, tech.Short6T, tech.Tall7p5T}
	for i, h := range want {
		if ms.Heights[i] != h {
			t.Errorf("pair %d = %v, want %v", i, ms.Heights[i], h)
		}
	}
	if _, err := Stack(die, tc, nil); err == nil {
		t.Error("empty pattern must error")
	}
	tiny := geom.NewRect(0, 0, 100, 100)
	if _, err := Stack(tiny, tc, Alternating()); err == nil {
		t.Error("tiny die must error")
	}
}

// placedDesign builds a small initial placement in mLEF form.
func placedDesign(t *testing.T, scale float64) *netlist.Design {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = scale
	d, err := synth.Generate(tc, lib, synth.TableII()[3], opt) // aes_360, ~10% minority
	if err != nil {
		t.Fatal(err)
	}
	m, err := lefdef.ApplyMLEF(d)
	if err != nil {
		t.Fatal(err)
	}
	placer.Global(d, placer.Options{OuterIters: 4, SolveSweeps: 6})
	g := rowgrid.Uniform(d.Die, m.PairH)
	if err := legalize.Uniform(d, g); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFitPatternHostsDesign(t *testing.T) {
	d := placedDesign(t, 0.03)
	p, ms, err := FitPattern(d, d.Tech, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) < 2 {
		t.Fatalf("pattern %v too short", p)
	}
	if f := MinorityCapacityFraction(d, ms); f > 1 {
		t.Errorf("capacity fraction %f > 1", f)
	}
}

func TestAssignRespectsCapacityAndCoversAll(t *testing.T) {
	d := placedDesign(t, 0.03)
	_, ms, err := FitPattern(d, d.Tech, 0)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := Assign(d, ms)
	if err != nil {
		t.Fatal(err)
	}
	capacity := 2 * ms.Width()
	load := map[int]int64{}
	for _, i := range d.MinorityInstances() {
		p, ok := asg.CellPair[i]
		if !ok {
			t.Fatalf("minority cell %d unassigned", i)
		}
		if ms.Heights[p] != tech.Tall7p5T {
			t.Fatalf("cell %d on short pair", i)
		}
		if asg.SeedY[i] != ms.Y[p] {
			t.Fatalf("seed mismatch for %d", i)
		}
		load[p] += d.Insts[i].TrueMaster().Width
	}
	for p, l := range load {
		if l > capacity {
			t.Errorf("pair %d overloaded: %d > %d", p, l, capacity)
		}
	}
}

func TestAssignFailsWithoutTallPairs(t *testing.T) {
	d := placedDesign(t, 0.02)
	allShort, err := Stack(d.Die, d.Tech, Pattern{tech.Short6T})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assign(d, allShort); err == nil {
		t.Error("no tall pairs must error for a design with minority cells")
	}
}

func TestEndToEndFinFlexLegal(t *testing.T) {
	d := placedDesign(t, 0.03)
	_, ms, err := FitPattern(d, d.Tech, 0)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := Assign(d, ms)
	if err != nil {
		t.Fatal(err)
	}
	if err := lefdef.Revert(d); err != nil {
		t.Fatal(err)
	}
	if err := legalize.FenceAware(context.Background(), d, ms, asg.SeedY, 2); err != nil {
		t.Fatal(err)
	}
	if err := legalize.VerifyMixed(d, ms); err != nil {
		t.Fatalf("finflex placement illegal: %v", err)
	}
}
