// Package fence models the fence regions of §III-D: the union of minority
// (7.5T) row islands derived from the row assignment solution. The paper
// hands these regions to the P&R tool (createInstGroup -fence) so its
// incremental placement keeps every minority cell inside them; here they
// drive the fence-aware legalizer and are exported for inspection and DEF
// REGION-style dumps.
package fence

import (
	"fmt"
	"io"

	"mthplace/internal/geom"
	"mthplace/internal/rowgrid"
	"mthplace/internal/tech"
)

// Regions is the fence: maximal rectangles covering contiguous minority row
// islands, bottom to top.
type Regions struct {
	// Rects are the island rectangles (full row span wide).
	Rects []geom.Rect
	// Pairs lists, per rectangle, the contiguous pair indices it covers.
	Pairs [][]int
}

// FromStack derives the fence regions of the given mixed stack: vertically
// adjacent minority pairs merge into one island rectangle.
func FromStack(ms *rowgrid.MixedStack) *Regions {
	out := &Regions{}
	var curPairs []int
	var curLo, curHi int64
	flush := func() {
		if len(curPairs) == 0 {
			return
		}
		out.Rects = append(out.Rects, geom.NewRect(ms.X0, curLo, ms.X1, curHi))
		out.Pairs = append(out.Pairs, curPairs)
		curPairs = nil
	}
	for i, h := range ms.Heights {
		if h != tech.Tall7p5T {
			flush()
			continue
		}
		if len(curPairs) == 0 {
			curLo = ms.Y[i]
		}
		curHi = ms.Y[i+1]
		curPairs = append(curPairs, i)
	}
	flush()
	return out
}

// NumIslands returns the number of disjoint minority islands.
func (r *Regions) NumIslands() int { return len(r.Rects) }

// Area returns the total fenced area.
func (r *Regions) Area() int64 {
	var a int64
	for _, rc := range r.Rects {
		a += rc.Area()
	}
	return a
}

// Contains reports whether a point lies inside any fence rectangle.
func (r *Regions) Contains(p geom.Point) bool {
	for _, rc := range r.Rects {
		if rc.Contains(p) {
			return true
		}
	}
	return false
}

// ContainsRect reports whether a cell footprint lies entirely inside one
// fence rectangle.
func (r *Regions) ContainsRect(q geom.Rect) bool {
	for _, rc := range r.Rects {
		if rc.ContainsRect(q) {
			return true
		}
	}
	return false
}

// IslandOf returns the island index containing y, or -1.
func (r *Regions) IslandOf(y int64) int {
	for i, rc := range r.Rects {
		if y >= rc.Lo.Y && y < rc.Hi.Y {
			return i
		}
	}
	return -1
}

// WriteRegions dumps the fence in the DEF REGIONS style used by P&R
// scripts, the moral equivalent of the paper's createInstGroup -fence input.
func (r *Regions) WriteRegions(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "REGIONS %d ;\n", len(r.Rects)); err != nil {
		return err
	}
	for i, rc := range r.Rects {
		if _, err := fmt.Fprintf(w, "- %s_%d ( %d %d ) ( %d %d ) + TYPE FENCE ;\n",
			name, i, rc.Lo.X, rc.Lo.Y, rc.Hi.X, rc.Hi.Y); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "END REGIONS\n")
	return err
}
