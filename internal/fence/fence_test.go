package fence

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"mthplace/internal/geom"
	"mthplace/internal/rowgrid"
	"mthplace/internal/tech"
)

func stack(t *testing.T, pattern []tech.TrackHeight) *rowgrid.MixedStack {
	t.Helper()
	tc := tech.Default()
	var h int64
	for _, p := range pattern {
		h += tc.PairHeight(p)
	}
	ms, err := rowgrid.Stack(geom.NewRect(0, 0, 10000, h), pattern, tc)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestFromStackMergesAdjacentIslands(t *testing.T) {
	S, T := tech.Short6T, tech.Tall7p5T
	ms := stack(t, []tech.TrackHeight{S, T, T, S, S, T, S})
	r := FromStack(ms)
	if r.NumIslands() != 2 {
		t.Fatalf("islands = %d, want 2", r.NumIslands())
	}
	// First island: pairs 1 and 2 merged.
	if len(r.Pairs[0]) != 2 || r.Pairs[0][0] != 1 || r.Pairs[0][1] != 2 {
		t.Errorf("island 0 pairs = %v", r.Pairs[0])
	}
	if r.Rects[0].Lo.Y != ms.Y[1] || r.Rects[0].Hi.Y != ms.Y[3] {
		t.Errorf("island 0 rect = %v", r.Rects[0])
	}
	// Second island: pair 5 alone.
	if len(r.Pairs[1]) != 1 || r.Pairs[1][0] != 5 {
		t.Errorf("island 1 pairs = %v", r.Pairs[1])
	}
	// Total fenced area = two tall pairs + one tall pair.
	want := int64(10000) * 3 * tech.Default().PairHeight(T)
	if r.Area() != want {
		t.Errorf("area = %d, want %d", r.Area(), want)
	}
}

func TestFromStackNoMinority(t *testing.T) {
	S := tech.Short6T
	r := FromStack(stack(t, []tech.TrackHeight{S, S, S}))
	if r.NumIslands() != 0 || r.Area() != 0 {
		t.Fatalf("unexpected islands: %+v", r)
	}
	if r.Contains(geom.Point{X: 1, Y: 1}) {
		t.Error("empty fence cannot contain points")
	}
	if r.IslandOf(100) != -1 {
		t.Error("IslandOf must be -1")
	}
}

func TestContainsQueries(t *testing.T) {
	S, T := tech.Short6T, tech.Tall7p5T
	ms := stack(t, []tech.TrackHeight{S, T, S})
	r := FromStack(ms)
	inside := geom.Point{X: 100, Y: ms.Y[1] + 10}
	outside := geom.Point{X: 100, Y: ms.Y[0] + 10}
	if !r.Contains(inside) || r.Contains(outside) {
		t.Error("Contains wrong")
	}
	cell := geom.NewRect(0, ms.Y[1], 500, ms.Y[1]+270)
	if !r.ContainsRect(cell) {
		t.Error("cell inside island not detected")
	}
	straddle := geom.NewRect(0, ms.Y[1]-10, 500, ms.Y[1]+100)
	if r.ContainsRect(straddle) {
		t.Error("straddling cell must not be contained")
	}
	if r.IslandOf(ms.Y[1]+5) != 0 {
		t.Error("IslandOf wrong")
	}
}

func TestWriteRegions(t *testing.T) {
	S, T := tech.Short6T, tech.Tall7p5T
	r := FromStack(stack(t, []tech.TrackHeight{S, T, S, T}))
	var buf bytes.Buffer
	if err := r.WriteRegions(&buf, "minority"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "REGIONS 2 ;") || !strings.Contains(out, "minority_1") ||
		!strings.Contains(out, "TYPE FENCE") {
		t.Errorf("regions dump malformed:\n%s", out)
	}
}

// Property: island count equals the number of maximal runs of tall pairs,
// and every tall pair is covered by exactly one island.
func TestIslandStructureProperty(t *testing.T) {
	tc := tech.Default()
	f := func(bits []bool) bool {
		if len(bits) == 0 || len(bits) > 48 {
			return true
		}
		hs := make([]tech.TrackHeight, len(bits))
		var total int64
		runs := 0
		prev := false
		for i, b := range bits {
			if b {
				hs[i] = tech.Tall7p5T
				if !prev {
					runs++
				}
			}
			prev = b
			total += tc.PairHeight(hs[i])
		}
		ms, err := rowgrid.Stack(geom.NewRect(0, 0, 5000, total), hs, tc)
		if err != nil {
			return false
		}
		r := FromStack(ms)
		if r.NumIslands() != runs {
			return false
		}
		covered := map[int]int{}
		for _, pairs := range r.Pairs {
			for _, p := range pairs {
				covered[p]++
			}
		}
		for i, b := range bits {
			if b && covered[i] != 1 {
				return false
			}
			if !b && covered[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
