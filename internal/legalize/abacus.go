// Package legalize places cells into legal, overlap-free row/site positions.
// It provides the three legalization styles compared in the paper:
//
//   - Abacus [13]: classic displacement-minimising legalization onto uniform
//     rows (used to finish the unconstrained mLEF placement, Flow (1));
//   - the row-constraint modification of Abacus used by the prior work [10]
//     (Flows (2) and (4)): per-track-height row candidates, minimising
//     displacement from the incoming placement;
//   - the proposed fence-region-aware legalization (Flows (3) and (5)):
//     cells are first pulled to wirelength-optimal positions (median
//     improvement) with minority cells seeded into their assigned fence
//     rows, then packed with per-class Abacus — optimising HPWL rather than
//     displacement, exactly the trade the paper reports.
package legalize

import (
	"fmt"
	"sort"

	"mthplace/internal/geom"
)

// Cell is a legalization request: a cell of width W (DBU) that wants to sit
// at (TargetX, TargetY).
type Cell struct {
	ID               int32
	TargetX, TargetY int64
	W                int64
}

// Row is one placeable single row.
type Row struct {
	Y      int64
	X0, X1 int64
}

// abCluster is an Abacus cluster: a maximal group of abutting cells whose
// optimal positions collided.
type abCluster struct {
	// x is the cluster's left edge in sites.
	x int64
	// w is total width in sites.
	w int64
	// q accumulates Σ(e_i·(x_i* − offset_i)) for the quadratic optimum.
	q float64
	// e is total weight.
	e float64
	// cells in left-to-right order.
	cells []int // indices into the request slice
}

type abRow struct {
	y        int64
	x0Sites  int64
	capSites int64
	used     int64
	clusters []abCluster
}

// optimalX returns the weight-optimal clamped left edge for a cluster.
func (r *abRow) optimalX(c *abCluster) int64 {
	x := int64(c.q/c.e + 0.5)
	if c.q < 0 {
		x = int64(c.q/c.e - 0.5)
	}
	return geom.ClampInt64(x, r.x0Sites, r.x0Sites+r.capSites-c.w)
}

// trialAppend computes the cost of appending a cell (width wSites, target
// txSites) without mutating the row: the squared x-displacement of the new
// cell plus the squared shift of the tail clusters it would drag along.
func (r *abRow) trialAppend(txSites, wSites int64) (cost float64, ok bool) {
	if r.used+wSites > r.capSites {
		return 0, false
	}
	// Simulate the Abacus collapse without touching row state.
	cur := abCluster{q: float64(txSites), e: 1, w: wSites}
	tail := len(r.clusters)
	curX := r.optimalX(&cur)
	for tail > 0 {
		prev := r.clusters[tail-1]
		if prev.x+prev.w <= curX {
			break
		}
		// Merge prev (left) with cur: cur's cells shift right by prev.w.
		cur = abCluster{
			q: prev.q + cur.q - cur.e*float64(prev.w),
			e: prev.e + cur.e,
			w: prev.w + cur.w,
		}
		tail--
		curX = r.optimalX(&cur)
	}
	newCellX := curX + cur.w - wSites
	d := float64(newCellX - txSites)
	return d*d + r.tailShiftCost(tail, curX), true
}

// tailShiftCost sums squared shift of clusters [from:] when they are packed
// left-to-right starting at mergedX (every cell in a cluster shifts by the
// same amount, so cluster aggregates are exact).
func (r *abRow) tailShiftCost(from int, mergedX int64) float64 {
	var cost float64
	x := mergedX
	for t := from; t < len(r.clusters); t++ {
		cl := &r.clusters[t]
		dx := float64(x - cl.x)
		cost += dx * dx * cl.e
		x += cl.w
	}
	return cost
}

// append commits cell i into the row.
func (r *abRow) append(i int, txSites, wSites int64) {
	cur := abCluster{q: float64(txSites), e: 1, w: wSites, cells: []int{i}}
	for len(r.clusters) > 0 {
		prev := &r.clusters[len(r.clusters)-1]
		if prev.x+prev.w <= r.optimalX(&cur) {
			break
		}
		merged := abCluster{
			q:     prev.q + cur.q - cur.e*float64(prev.w),
			e:     prev.e + cur.e,
			w:     prev.w + cur.w,
			cells: append(append([]int(nil), prev.cells...), cur.cells...),
		}
		cur = merged
		r.clusters = r.clusters[:len(r.clusters)-1]
	}
	cur.x = r.optimalX(&cur)
	r.clusters = append(r.clusters, cur)
	r.used += wSites
}

// Result maps cell ID to its legal lower-left position.
type Result map[int32]geom.Point

// Abacus legalizes cells into rows on the site grid, minimising (squared)
// displacement. All cells must fit; an error reports the first cell with no
// feasible row. Rows may have different Y but are assumed height-compatible
// with every cell passed in (callers split by track-height class).
func Abacus(cells []Cell, rows []Row, site int64) (Result, error) {
	if site <= 0 {
		return nil, fmt.Errorf("legalize: site width must be positive")
	}
	if len(rows) == 0 {
		if len(cells) == 0 {
			return Result{}, nil
		}
		return nil, fmt.Errorf("legalize: no rows for %d cells", len(cells))
	}
	ar := make([]*abRow, len(rows))
	for i, r := range rows {
		x0 := geom.SnapUp(r.X0, site) / site
		x1 := geom.SnapDown(r.X1, site) / site
		ar[i] = &abRow{y: r.Y, x0Sites: x0, capSites: x1 - x0}
	}
	// Rows sorted by y for the candidate expansion.
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ar[order[a]].y < ar[order[b]].y })

	// Process cells in increasing target x (Abacus invariant).
	idx := make([]int, len(cells))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if cells[idx[a]].TargetX != cells[idx[b]].TargetX {
			return cells[idx[a]].TargetX < cells[idx[b]].TargetX
		}
		return cells[idx[a]].ID < cells[idx[b]].ID
	})

	for _, ci := range idx {
		c := cells[ci]
		wSites := (c.W + site - 1) / site
		txSites := geom.SnapNearest(c.TargetX, site) / site
		// Expand candidate rows outward from the target y.
		start := sort.Search(len(order), func(k int) bool { return ar[order[k]].y >= c.TargetY })
		bestRow, bestCost := -1, 0.0
		lo, hi := start-1, start
		siteF := float64(site)
		for lo >= 0 || hi < len(order) {
			pick := -1
			if lo >= 0 && (hi >= len(order) || c.TargetY-ar[order[lo]].y <= ar[order[hi]].y-c.TargetY) {
				pick = order[lo]
				lo--
			} else if hi < len(order) {
				pick = order[hi]
				hi++
			}
			r := ar[pick]
			dy := float64(r.y-c.TargetY) / siteF
			dyCost := dy * dy
			// Rows are visited in non-decreasing |dy|; once the y term alone
			// exceeds the best total cost, no remaining row can win.
			if bestRow >= 0 && dyCost >= bestCost {
				break
			}
			xCost, ok := r.trialAppend(txSites, wSites)
			if !ok {
				continue
			}
			total := xCost + dyCost
			if bestRow < 0 || total < bestCost {
				bestRow, bestCost = pick, total
			}
		}
		if bestRow < 0 {
			return nil, fmt.Errorf("legalize: cell %d (w=%d) fits in no row", c.ID, c.W)
		}
		ar[bestRow].append(ci, txSites, wSites)
	}
	// Emit final positions.
	out := make(Result, len(cells))
	for _, r := range ar {
		for _, cl := range r.clusters {
			x := cl.x
			for _, ci := range cl.cells {
				c := cells[ci]
				wSites := (c.W + site - 1) / site
				out[c.ID] = geom.Point{X: x * site, Y: r.y}
				x += wSites
			}
		}
	}
	if len(out) != len(cells) {
		return nil, fmt.Errorf("legalize: internal error: placed %d of %d cells", len(out), len(cells))
	}
	return out, nil
}
