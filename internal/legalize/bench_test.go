package legalize

import (
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/lefdef"
	"mthplace/internal/netlist"
	"mthplace/internal/placer"
	"mthplace/internal/rowgrid"
	"mthplace/internal/soa"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

// The Uniform pair measures Abacus legalization end to end over both data
// representations: the AoS path extracts cells from the instance pointer
// graph, the SoA path slices them out of the flat arrays and rebuilds the
// index-linked row lists (including the overlap proof) afterwards. Each
// iteration restores the pre-legalization global placement so every run does
// the same packing work.

// placedForBench generates a testcase in mLEF form with a global placement
// but no legalization, so each benchmark iteration starts from overlapping
// target positions.
func placedForBench(b *testing.B) (*netlist.Design, rowgrid.PairGrid) {
	b.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = 0.05
	d, err := synth.Generate(tc, lib, synth.TableII()[0], opt)
	if err != nil {
		b.Fatal(err)
	}
	m, err := lefdef.ApplyMLEF(d)
	if err != nil {
		b.Fatal(err)
	}
	placer.Global(d, placer.Options{OuterIters: 5, SolveSweeps: 8})
	return d, rowgrid.Uniform(d.Die, m.PairH)
}

func BenchmarkLegalizeAoS(b *testing.B) {
	d, g := placedForBench(b)
	orig := make([]geom.Point, len(d.Insts))
	for i, in := range d.Insts {
		orig[i] = in.Pos
	}
	b.ReportAllocs()
	for b.Loop() {
		for i, in := range d.Insts {
			in.Pos = orig[i]
		}
		if err := Uniform(d, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLegalizeSoA(b *testing.B) {
	d, g := placedForBench(b)
	c := soa.FromDesign(d)
	origX := append([]int64(nil), c.InstX...)
	origY := append([]int64(nil), c.InstY...)
	b.ReportAllocs()
	for b.Loop() {
		copy(c.InstX, origX)
		copy(c.InstY, origY)
		if _, err := UniformCompact(c, g); err != nil {
			b.Fatal(err)
		}
	}
}
