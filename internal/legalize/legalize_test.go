package legalize

import (
	"context"
	"testing"
	"testing/quick"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/lefdef"
	"mthplace/internal/netlist"
	"mthplace/internal/placer"
	"mthplace/internal/rowgrid"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func TestAbacusSingleRowPacking(t *testing.T) {
	// Three cells wanting the same x must pack without overlap around it.
	cells := []Cell{
		{ID: 0, TargetX: 540, TargetY: 0, W: 108},
		{ID: 1, TargetX: 540, TargetY: 0, W: 108},
		{ID: 2, TargetX: 540, TargetY: 0, W: 108},
	}
	rows := []Row{{Y: 0, X0: 0, X1: 10800}}
	res, err := Abacus(cells, rows, 54)
	if err != nil {
		t.Fatal(err)
	}
	spans := map[int64]bool{}
	for id, p := range res {
		if p.Y != 0 {
			t.Errorf("cell %d not in the row", id)
		}
		if p.X%54 != 0 {
			t.Errorf("cell %d off grid", id)
		}
		for x := p.X; x < p.X+108; x += 54 {
			if spans[x] {
				t.Fatalf("overlap at %d", x)
			}
			spans[x] = true
		}
	}
}

func TestAbacusExactTargetWhenFree(t *testing.T) {
	cells := []Cell{{ID: 7, TargetX: 1080, TargetY: 216, W: 54}}
	rows := []Row{{Y: 0, X0: 0, X1: 5400}, {Y: 216, X0: 0, X1: 5400}}
	res, err := Abacus(cells, rows, 54)
	if err != nil {
		t.Fatal(err)
	}
	if res[7] != (geom.Point{X: 1080, Y: 216}) {
		t.Errorf("free cell moved: %v", res[7])
	}
}

func TestAbacusRowOverflowSpills(t *testing.T) {
	// Row 0 fits one cell of 2 sites (cap 2); the second must spill to row 1.
	cells := []Cell{
		{ID: 0, TargetX: 0, TargetY: 0, W: 108},
		{ID: 1, TargetX: 0, TargetY: 0, W: 108},
	}
	rows := []Row{{Y: 0, X0: 0, X1: 108}, {Y: 216, X0: 0, X1: 108}}
	res, err := Abacus(cells, rows, 54)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Y == res[1].Y {
		t.Errorf("both cells in one overfull row: %v %v", res[0], res[1])
	}
}

func TestAbacusInfeasible(t *testing.T) {
	cells := []Cell{{ID: 0, TargetX: 0, TargetY: 0, W: 540}}
	rows := []Row{{Y: 0, X0: 0, X1: 108}}
	if _, err := Abacus(cells, rows, 54); err == nil {
		t.Fatal("oversized cell must fail")
	}
	if _, err := Abacus(cells, nil, 54); err == nil {
		t.Fatal("no rows must fail")
	}
	if _, err := Abacus(nil, nil, 54); err != nil {
		t.Fatal("empty problem must succeed")
	}
	if _, err := Abacus(cells, rows, 0); err == nil {
		t.Fatal("zero site width must fail")
	}
}

// Property: random legalization instances produce overlap-free on-grid
// placements of every cell.
func TestAbacusLegalityProperty(t *testing.T) {
	f := func(seed int64, nRaw, rRaw uint8) bool {
		n := int(nRaw)%40 + 1
		nr := int(rRaw)%6 + 1
		rng := newRand(seed)
		rows := make([]Row, nr)
		for i := range rows {
			rows[i] = Row{Y: int64(i) * 216, X0: 0, X1: 54 * 200}
		}
		cells := make([]Cell, n)
		for i := range cells {
			cells[i] = Cell{
				ID:      int32(i),
				TargetX: int64(rng.Intn(54 * 180)),
				TargetY: int64(rng.Intn(nr * 216)),
				W:       int64(54 * (1 + rng.Intn(4))),
			}
		}
		res, err := Abacus(cells, rows, 54)
		if err != nil {
			return false // capacity is ample; must always fit
		}
		if len(res) != n {
			return false
		}
		type span struct{ lo, hi int64 }
		byRow := map[int64][]span{}
		for i := range cells {
			p, ok := res[cells[i].ID]
			if !ok || p.X%54 != 0 || p.X < 0 || p.X+cells[i].W > 54*200 {
				return false
			}
			byRow[p.Y] = append(byRow[p.Y], span{p.X, p.X + cells[i].W})
		}
		for _, spans := range byRow {
			for a := range spans {
				for b := a + 1; b < len(spans); b++ {
					if spans[a].lo < spans[b].hi && spans[b].lo < spans[a].hi {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// mixedDesign builds a small placed design in mLEF form plus its grids.
func mixedDesign(t *testing.T) (*netlist.Design, rowgrid.PairGrid, *rowgrid.MixedStack) {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = 0.02
	d, err := synth.Generate(tc, lib, synth.TableII()[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lefdef.ApplyMLEF(d)
	if err != nil {
		t.Fatal(err)
	}
	placer.Global(d, placer.Options{OuterIters: 4, SolveSweeps: 8})
	g := rowgrid.Uniform(d.Die, m.PairH)
	if err := Uniform(d, g); err != nil {
		t.Fatal(err)
	}
	if err := VerifyUniform(d, g); err != nil {
		t.Fatalf("uniform placement illegal: %v", err)
	}
	// Build a mixed stack with enough minority pairs for the 7.5T area.
	if err := lefdef.Revert(d); err != nil {
		t.Fatal(err)
	}
	nPairs := g.N
	maxMin := rowgrid.MaxMinorityPairs(d.Die, nPairs, tc)
	var minArea, rowArea float64
	for _, in := range d.Insts {
		if in.TrueHeight() == tech.Tall7p5T {
			minArea += float64(in.Width())
		}
	}
	rowArea = float64(d.Die.W()) * 2 * 0.85 // two single rows per pair, 85% fill
	need := int(minArea/rowArea) + 1
	if need > maxMin {
		t.Fatalf("test die cannot host %d minority pairs (max %d)", need, maxMin)
	}
	hs := make([]tech.TrackHeight, nPairs)
	for i := 0; i < need; i++ {
		hs[(i*nPairs)/need] = tech.Tall7p5T
	}
	ms, err := rowgrid.Stack(d.Die, hs, tc)
	if err != nil {
		t.Fatal(err)
	}
	return d, g, ms
}

func TestRowConstraintLegalization(t *testing.T) {
	d, _, ms := mixedDesign(t)
	if err := RowConstraint(context.Background(), d, ms); err != nil {
		t.Fatal(err)
	}
	if err := VerifyMixed(d, ms); err != nil {
		t.Fatalf("row-constraint result illegal: %v", err)
	}
}

func TestFenceAwareLegalization(t *testing.T) {
	d, _, ms := mixedDesign(t)
	// Seed: all minority cells to the first tall pair.
	seed := map[int32]int64{}
	tall := ms.PairsOf(tech.Tall7p5T)
	for _, i := range d.MinorityInstances() {
		seed[i] = ms.Y[tall[int(i)%len(tall)]]
	}
	if err := FenceAware(context.Background(), d, ms, seed, 2); err != nil {
		t.Fatal(err)
	}
	if err := VerifyMixed(d, ms); err != nil {
		t.Fatalf("fence-aware result illegal: %v", err)
	}
}

func TestFenceAwareImprovesHPWLOverSeed(t *testing.T) {
	d, _, ms := mixedDesign(t)
	before := d.TotalHPWL()
	if err := FenceAware(context.Background(), d, ms, nil, 3); err != nil {
		t.Fatal(err)
	}
	after := d.TotalHPWL()
	// Median improvement should keep HPWL in the same ballpark or better
	// than the unconstrained placement; allow at most 2x degradation (the
	// row-constraint must cost something but not explode).
	if after > before*2 {
		t.Errorf("HPWL exploded: %d -> %d", before, after)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	d, g, ms := mixedDesign(t)
	if err := RowConstraint(context.Background(), d, ms); err != nil {
		t.Fatal(err)
	}
	// Off-grid x.
	save := d.Insts[0].Pos
	d.Insts[0].Pos.X++
	if err := VerifyMixed(d, ms); err == nil {
		t.Error("off-grid x not caught")
	}
	d.Insts[0].Pos = save
	// Wrong-height row.
	wrongY := ms.Y[ms.PairsOf(d.Insts[0].TrueHeight().Other())[0]]
	d.Insts[0].Pos.Y = wrongY
	if err := VerifyMixed(d, ms); err == nil {
		t.Error("wrong-height row not caught")
	}
	d.Insts[0].Pos = save
	// Overlap.
	d.Insts[1].Pos = d.Insts[0].Pos
	d.Insts[1].Master = d.Insts[0].Master
	if err := VerifyMixed(d, ms); err == nil {
		t.Error("overlap not caught")
	}
	_ = g
}
