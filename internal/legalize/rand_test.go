package legalize

import "math/rand"

// newRand returns a deterministic PRNG for property tests.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
