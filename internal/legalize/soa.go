package legalize

import (
	"fmt"

	"mthplace/internal/rowgrid"
	"mthplace/internal/soa"
)

// UniformCompact is Uniform over the SoA representation: it legalizes the
// movable instances of c onto the uniform grid in place, then rebuilds the
// index-linked row lists and proves the result overlap-free. The Abacus
// core is shared with the AoS path — cells are extracted from and written
// back to the flat arrays, so results are identical for equal inputs.
func UniformCompact(c *soa.Compact, g rowgrid.PairGrid) (*soa.RowLists, error) {
	rows := make([]Row, 0, g.NumRows())
	for j := 0; j < g.NumRows(); j++ {
		rows = append(rows, Row{Y: g.RowY(j), X0: g.X0, X1: g.X1})
	}
	n := int32(c.NumInsts())
	cells := make([]Cell, 0, n)
	for i := int32(0); i < n; i++ {
		if c.InstFixed[i] {
			continue
		}
		cells = append(cells, Cell{ID: i, TargetX: c.InstX[i], TargetY: c.InstY[i], W: c.InstWidth(i)})
	}
	res, err := Abacus(cells, rows, c.Tech.SiteWidth)
	if err != nil {
		return nil, fmt.Errorf("legalize: uniform soa: %w", err)
	}
	for id, p := range res {
		c.InstX[id], c.InstY[id] = p.X, p.Y
	}
	rl, err := soa.BuildRowLists(c, g.NumRows(), func(i int32) int32 {
		if c.InstFixed[i] {
			return -1
		}
		y := c.InstY[i] - g.Y0
		if y < 0 || y%g.RowH() != 0 {
			return -1
		}
		r := y / g.RowH()
		if r >= int64(g.NumRows()) {
			return -1
		}
		return int32(r)
	})
	if err != nil {
		return nil, fmt.Errorf("legalize: uniform soa: %w", err)
	}
	if err := rl.CheckNoOverlap(c); err != nil {
		return nil, fmt.Errorf("legalize: uniform soa: %w", err)
	}
	return rl, nil
}
