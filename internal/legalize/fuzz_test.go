package legalize

import (
	"sort"
	"testing"

	"mthplace/internal/geom"
)

// FuzzLegalize decodes arbitrary bytes into a legalization request and
// checks that Abacus either reports infeasibility or returns a fully legal
// result: every cell placed on the site grid inside a row, no overlaps.
func FuzzLegalize(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 4, 20, 10, 5, 5, 30, 15, 60, 25, 200})
	f.Add([]byte{1, 12, 60, 1, 0, 0, 2, 0, 0, 3, 0, 0, 4, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const site = int64(10)
		br := 0
		next := func() byte {
			if br >= len(data) {
				return 0
			}
			v := data[br]
			br++
			return v
		}

		nRows := int(next())%5 + 1
		capSites := int64(next())%56 + 5
		rows := make([]Row, nRows)
		for i := range rows {
			rows[i] = Row{Y: int64(i) * 100, X0: int64(next()) % 7, X1: capSites*site + int64(next())%7}
		}
		nCells := int(next()) % 13
		cells := make([]Cell, nCells)
		for i := range cells {
			cells[i] = Cell{
				ID:      int32(i),
				TargetX: int64(next()) * 3,
				TargetY: int64(next()) * 2,
				W:       int64(next())%(8*site) + 1,
			}
		}

		res, err := Abacus(cells, rows, site)
		if err != nil {
			return // over-capacity inputs may legitimately be infeasible
		}
		rowAt := map[int64]Row{}
		for _, r := range rows {
			rowAt[r.Y] = r
		}
		type span struct{ lo, hi int64 }
		occ := map[int64][]span{}
		for _, c := range cells {
			p, ok := res[c.ID]
			if !ok {
				t.Fatalf("cell %d missing from result", c.ID)
			}
			r, ok := rowAt[p.Y]
			if !ok {
				t.Fatalf("cell %d placed at y=%d, not a row", c.ID, p.Y)
			}
			if p.X%site != 0 {
				t.Fatalf("cell %d at x=%d off the site grid", c.ID, p.X)
			}
			w := (c.W + site - 1) / site * site // site-rounded footprint
			if p.X < geom.SnapUp(r.X0, site) || p.X+w > geom.SnapDown(r.X1, site) {
				t.Fatalf("cell %d footprint [%d,%d) outside row [%d,%d)", c.ID, p.X, p.X+w, r.X0, r.X1)
			}
			occ[p.Y] = append(occ[p.Y], span{p.X, p.X + w})
		}
		for y, spans := range occ {
			sort.Slice(spans, func(a, b int) bool { return spans[a].lo < spans[b].lo })
			for k := 1; k < len(spans); k++ {
				if spans[k].lo < spans[k-1].hi {
					t.Fatalf("overlap in row y=%d: [%d,%d) vs [%d,%d)", y,
						spans[k-1].lo, spans[k-1].hi, spans[k].lo, spans[k].hi)
				}
			}
		}
	})
}
