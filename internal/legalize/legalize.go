package legalize

import (
	"context"
	"fmt"
	"sort"

	"mthplace/internal/errs"
	"mthplace/internal/geom"
	"mthplace/internal/netlist"
	"mthplace/internal/rowgrid"
	"mthplace/internal/tech"
)

// Uniform legalizes every movable instance onto the uniform (mLEF) row grid
// with classic Abacus — the finishing step of the unconstrained initial
// placement, Flow (1).
func Uniform(d *netlist.Design, g rowgrid.PairGrid) error {
	rows := make([]Row, 0, g.NumRows())
	for j := 0; j < g.NumRows(); j++ {
		rows = append(rows, Row{Y: g.RowY(j), X0: g.X0, X1: g.X1})
	}
	cells := make([]Cell, 0, len(d.Insts))
	for i, in := range d.Insts {
		if in.Fixed {
			continue
		}
		cells = append(cells, Cell{ID: int32(i), TargetX: in.Pos.X, TargetY: in.Pos.Y, W: in.Width()})
	}
	res, err := Abacus(cells, rows, d.Tech.SiteWidth)
	if err != nil {
		return fmt.Errorf("legalize: uniform: %w", err)
	}
	apply(d, res)
	return nil
}

// RowConstraint is a relaxed row-constraint legalization: Abacus modified so
// every cell's candidate rows are restricted to single rows of its own
// track-height (any island), minimising displacement from the incoming
// placement. The design must be in true mixed-height form (after
// lefdef.Revert). Cancellation is checked between the per-class passes.
func RowConstraint(ctx context.Context, d *netlist.Design, ms *rowgrid.MixedStack) error {
	for _, h := range []tech.TrackHeight{tech.Short6T, tech.Tall7p5T} {
		if err := errs.FromContext(ctx); err != nil {
			return fmt.Errorf("legalize: row-constraint: %w", err)
		}
		if err := classAbacus(d, ms, h, nil); err != nil {
			return fmt.Errorf("legalize: row-constraint %s: %w", h, err)
		}
	}
	return nil
}

// RowConstraintAssigned is the prior work's legalization ([10], used by
// Flows (2) and (4)): every minority cell is bound to the row *pair the row
// assignment gave it* and legalized inside that pair with Abacus; only the
// overflow that physically cannot fit spills to other minority pairs. A
// capacity-violating assignment (the k-means baseline is capacity-naive)
// therefore pays with long spill displacement — exactly the failure mode
// the paper's capacity-aware ILP avoids under this same legalizer. Majority
// cells legalize freely over the majority rows. Cancellation is checked
// between pair packings, so a canceled ctx returns errs.ErrCanceled
// within one per-pair Abacus run.
func RowConstraintAssigned(ctx context.Context, d *netlist.Design, ms *rowgrid.MixedStack, cellPair map[int32]int) error {
	// Partition minority cells by assigned pair.
	byPair := map[int][]int32{}
	var unassigned []int32
	for i, in := range d.Insts {
		if in.Fixed || in.TrueHeight() != tech.Tall7p5T {
			continue
		}
		if p, ok := cellPair[int32(i)]; ok && p >= 0 && p < ms.NumPairs() && ms.Heights[p] == tech.Tall7p5T {
			byPair[p] = append(byPair[p], int32(i))
		} else {
			unassigned = append(unassigned, int32(i))
		}
	}
	site := d.Tech.SiteWidth
	capSites := 2 * (geom.SnapDown(ms.X1, site) - geom.SnapUp(ms.X0, site)) / site

	var spill []int32
	pairs := sortedPairKeys(byPair)
	for _, p := range pairs {
		if err := errs.FromContext(ctx); err != nil {
			return fmt.Errorf("legalize: assigned: %w", err)
		}
		ids := byPair[p]
		// Keep the cells nearest the die x-center while they fit; the rest
		// are pushed out of the pair ([10]'s overflow behaviour).
		centerX := (ms.X0 + ms.X1) / 2
		sort.Slice(ids, func(a, b int) bool {
			da := geom.AbsInt64(d.Insts[ids[a]].Pos.X + d.Insts[ids[a]].Width()/2 - centerX)
			db := geom.AbsInt64(d.Insts[ids[b]].Pos.X + d.Insts[ids[b]].Width()/2 - centerX)
			if da != db {
				return da < db
			}
			return ids[a] < ids[b]
		})
		// Reserve headroom of twice the widest cell: a two-row pair can
		// strand up to one cell-width of free space per row to
		// fragmentation, and the pair must stay Abacus-feasible.
		var maxW int64
		for _, id := range ids {
			if w := (d.Insts[id].Width() + site - 1) / site; w > maxW {
				maxW = w
			}
		}
		budget := capSites - 2*maxW
		var used int64
		keep := ids[:0]
		for _, id := range ids {
			w := (d.Insts[id].Width() + site - 1) / site
			if used+w > budget {
				spill = append(spill, id)
				continue
			}
			used += w
			keep = append(keep, id)
		}
		lo, hi := ms.RowsOfPair(p)
		rows := []Row{{Y: lo, X0: ms.X0, X1: ms.X1}, {Y: hi, X0: ms.X0, X1: ms.X1}}
		cells := make([]Cell, 0, len(keep))
		for _, id := range keep {
			in := d.Insts[id]
			cells = append(cells, Cell{ID: id, TargetX: in.Pos.X, TargetY: in.Pos.Y, W: in.Width()})
		}
		res, err := Abacus(cells, rows, site)
		if err != nil {
			return fmt.Errorf("legalize: assigned pair %d: %w", p, err)
		}
		apply(d, res)
	}

	// Spilled and unassigned cells take whatever minority space is left.
	rest := append(spill, unassigned...)
	if len(rest) > 0 {
		var rows []Row
		for _, p := range ms.PairsOf(tech.Tall7p5T) {
			lo, hi := ms.RowsOfPair(p)
			rows = append(rows, Row{Y: lo, X0: ms.X0, X1: ms.X1}, Row{Y: hi, X0: ms.X0, X1: ms.X1})
		}
		// Occupancy of already-placed minority cells is modelled by seeding
		// the Abacus with them as immovable-ish targets: re-legalize all
		// minority cells together, placed ones at their fresh positions
		// (zero displacement for them), spilled ones at their origins.
		var cells []Cell
		for i, in := range d.Insts {
			if in.Fixed || in.TrueHeight() != tech.Tall7p5T {
				continue
			}
			cells = append(cells, Cell{ID: int32(i), TargetX: in.Pos.X, TargetY: in.Pos.Y, W: in.Width()})
		}
		res, err := Abacus(cells, rows, site)
		if err != nil {
			return fmt.Errorf("legalize: spill pass: %w", err)
		}
		apply(d, res)
	}

	// Majority cells.
	if err := classAbacus(d, ms, tech.Short6T, nil); err != nil {
		return fmt.Errorf("legalize: row-constraint majority: %w", err)
	}
	return nil
}

func sortedPairKeys(m map[int][]int32) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// FenceAware is the proposed row-constraint legalization (Flows (3) and
// (5)): it emulates the P&R tool's fence-region incremental placement. The
// minority cells — the fenced instance group — are seeded into their
// assigned fence rows (seedY maps instance index to the bottom y of its
// assigned minority pair; cells missing from the map fall to the nearest
// minority row) and then pulled to their HPWL-optimal positions inside the
// fence by median-improvement passes; the remaining cells are placed
// incrementally from the initial placement. Per-class Abacus finally packs
// each track-height class into its rows. Unlike RowConstraint, the fenced
// group is re-placed for wirelength, not for displacement from the initial
// placement ("we can freely assign all minority cells into the union of
// fence-regions", §III-D).
func FenceAware(ctx context.Context, d *netlist.Design, ms *rowgrid.MixedStack, seedY map[int32]int64, passes int) error {
	return FenceAwareExcluding(ctx, d, ms, seedY, passes, nil)
}

// FenceAwareExcluding is FenceAware with a set of row pairs excluded from
// placement — used by the region-based comparator to keep breaker pairs
// empty. Cancellation is checked between median-improvement passes and
// between the final per-class Abacus packings.
func FenceAwareExcluding(ctx context.Context, d *netlist.Design, ms *rowgrid.MixedStack, seedY map[int32]int64, passes int, excluded map[int]bool) error {
	if passes <= 0 {
		passes = 3
	}
	// Seed minority cells into their fence rows.
	for i, in := range d.Insts {
		if in.Fixed || in.TrueHeight() != tech.Tall7p5T {
			continue
		}
		if y, ok := seedY[int32(i)]; ok {
			in.Pos.Y = y
			continue
		}
		if p, ok := ms.NearestPairOf(tech.Tall7p5T, in.Pos.Y); ok {
			in.Pos.Y = ms.Y[p]
		}
	}
	medianImprove(ctx, d, ms, passes, seedY, func(in *netlist.Instance) bool {
		return in.TrueHeight() == tech.Tall7p5T
	})
	for _, h := range []tech.TrackHeight{tech.Short6T, tech.Tall7p5T} {
		if err := errs.FromContext(ctx); err != nil {
			return fmt.Errorf("legalize: fence-aware: %w", err)
		}
		if err := classAbacusExcluding(d, ms, h, nil, excluded); err != nil {
			return fmt.Errorf("legalize: fence-aware %s: %w", h, err)
		}
	}
	return nil
}

// classAbacus runs Abacus for one track-height class over the rows of that
// class. Optional targets overrides the Abacus target position per instance.
func classAbacus(d *netlist.Design, ms *rowgrid.MixedStack, h tech.TrackHeight, targets map[int32]geom.Point) error {
	return classAbacusExcluding(d, ms, h, targets, nil)
}

// classAbacusExcluding is classAbacus with excluded row pairs removed from
// the candidate set.
func classAbacusExcluding(d *netlist.Design, ms *rowgrid.MixedStack, h tech.TrackHeight, targets map[int32]geom.Point, excluded map[int]bool) error {
	var rows []Row
	for _, p := range ms.PairsOf(h) {
		if excluded[p] {
			continue
		}
		lo, hi := ms.RowsOfPair(p)
		rows = append(rows, Row{Y: lo, X0: ms.X0, X1: ms.X1}, Row{Y: hi, X0: ms.X0, X1: ms.X1})
	}
	var cells []Cell
	for i, in := range d.Insts {
		if in.Fixed || in.TrueHeight() != h {
			continue
		}
		t := in.Pos
		if targets != nil {
			if tp, ok := targets[int32(i)]; ok {
				t = tp
			}
		}
		cells = append(cells, Cell{ID: int32(i), TargetX: t.X, TargetY: t.Y, W: in.Width()})
	}
	if len(cells) == 0 {
		return nil
	}
	res, err := Abacus(cells, rows, d.Tech.SiteWidth)
	if err != nil {
		return err
	}
	apply(d, res)
	return nil
}

func apply(d *netlist.Design, res Result) {
	for id, pos := range res {
		d.Insts[id].Pos = pos
	}
}

// medianImprove sweeps the movable instances selected by want, moving each
// to the median of its connected pin positions (the 1-D HPWL optimum). A
// cell listed in lockY keeps its y pinned to its assigned pair (the RAP's
// capacity-balanced island choice is preserved; only x and the choice of
// the pair's two single rows are optimised); other cells snap to the
// nearest row of their track-height class. The clock net is ignored.
// Cancellation stops the sweep at the next pass boundary; an aborted
// improvement pass leaves the design consistent (the caller still errors
// out before using it).
func medianImprove(ctx context.Context, d *netlist.Design, ms *rowgrid.MixedStack, passes int, lockY map[int32]int64, want func(*netlist.Instance) bool) {
	for pass := 0; pass < passes; pass++ {
		if ctx.Err() != nil {
			return
		}
		for i, in := range d.Insts {
			if in.Fixed || !want(in) {
				continue
			}
			xs, ys := connectedPinCoords(d, int32(i))
			if len(xs) == 0 {
				continue
			}
			sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
			sort.Slice(ys, func(a, b int) bool { return ys[a] < ys[b] })
			mx := xs[len(xs)/2] - in.Width()/2
			my := ys[len(ys)/2] - in.Height()/2
			mx = geom.ClampInt64(mx, ms.X0, ms.X1-in.Width())
			if lock, ok := lockY[int32(i)]; ok {
				// Stay in the assigned pair; pick the closer single row.
				pair := pairAt(ms, lock)
				if pair >= 0 {
					lo, hi := ms.RowsOfPair(pair)
					if geom.AbsInt64(my-lo) <= geom.AbsInt64(my-hi) {
						my = lo
					} else {
						my = hi
					}
				} else {
					my = lock
				}
			} else if p, ok := ms.NearestPairOf(in.TrueHeight(), my); ok {
				lo, hi := ms.RowsOfPair(p)
				if geom.AbsInt64(my-lo) <= geom.AbsInt64(my-hi) {
					my = lo
				} else {
					my = hi
				}
			}
			in.Pos = geom.Point{X: mx, Y: my}
		}
	}
}

// pairAt returns the pair index whose bottom y equals y, or -1.
func pairAt(ms *rowgrid.MixedStack, y int64) int {
	for i := 0; i < ms.NumPairs(); i++ {
		if ms.Y[i] == y {
			return i
		}
	}
	return -1
}

// connectedPinCoords returns the positions of all pins connected to the
// instance through its nets, excluding the instance's own pins and the
// clock net.
func connectedPinCoords(d *netlist.Design, inst int32) (xs, ys []int64) {
	in := d.Insts[inst]
	for _, net := range in.PinNets {
		if net == netlist.NoNet || net == d.ClockNet {
			continue
		}
		for _, ref := range d.Nets[net].Pins {
			if !ref.IsPort() && ref.Inst == inst {
				continue
			}
			p := d.PinPos(ref)
			xs = append(xs, p.X)
			ys = append(ys, p.Y)
		}
	}
	return xs, ys
}

// VerifyUniform checks that every instance sits on the site grid inside a
// row of the uniform grid with no overlaps.
func VerifyUniform(d *netlist.Design, g rowgrid.PairGrid) error {
	rowOf := func(in *netlist.Instance) (int64, error) {
		off := in.Pos.Y - g.Y0
		if off < 0 || off%g.RowH() != 0 || int(off/g.RowH()) >= g.NumRows() {
			return 0, fmt.Errorf("y=%d not a uniform row", in.Pos.Y)
		}
		return in.Pos.Y, nil
	}
	return verify(d, rowOf, g.X0, g.X1)
}

// VerifyMixed checks legality on a mixed stack: every instance on the site
// grid, in a single row of a pair matching its track-height, no overlaps.
func VerifyMixed(d *netlist.Design, ms *rowgrid.MixedStack) error {
	rowOf := func(in *netlist.Instance) (int64, error) {
		for _, p := range ms.PairsOf(in.TrueHeight()) {
			lo, hi := ms.RowsOfPair(p)
			if in.Pos.Y == lo || in.Pos.Y == hi {
				return in.Pos.Y, nil
			}
		}
		return 0, fmt.Errorf("y=%d is not a %s row", in.Pos.Y, in.TrueHeight())
	}
	return verify(d, rowOf, ms.X0, ms.X1)
}

func verify(d *netlist.Design, rowOf func(*netlist.Instance) (int64, error), x0, x1 int64) error {
	type span struct {
		lo, hi int64
		id     int
	}
	byRow := map[int64][]span{}
	for i, in := range d.Insts {
		if in.Pos.X%d.Tech.SiteWidth != 0 {
			return fmt.Errorf("legalize: inst %d (%s) x=%d off site grid", i, in.Name, in.Pos.X)
		}
		if in.Pos.X < x0 || in.Pos.X+in.Width() > x1 {
			return fmt.Errorf("legalize: inst %d (%s) outside row span [%d,%d)", i, in.Name, x0, x1)
		}
		y, err := rowOf(in)
		if err != nil {
			return fmt.Errorf("legalize: inst %d (%s): %w", i, in.Name, err)
		}
		byRow[y] = append(byRow[y], span{in.Pos.X, in.Pos.X + in.Width(), i})
	}
	for y, spans := range byRow {
		sort.Slice(spans, func(a, b int) bool { return spans[a].lo < spans[b].lo })
		for k := 1; k < len(spans); k++ {
			if spans[k].lo < spans[k-1].hi {
				return fmt.Errorf("legalize: overlap in row y=%d between inst %d and %d",
					y, spans[k-1].id, spans[k].id)
			}
		}
	}
	return nil
}
