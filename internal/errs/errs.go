// Package errs defines the typed error taxonomy of the placement API.
// Every long-running entry point (flow execution, the RAP solve, the
// legalization passes) reports its failure class through one of the
// sentinels below so callers can dispatch with errors.Is instead of
// matching message strings; the HTTP job server maps them onto status
// codes (ErrInfeasible → 422, ErrTimeout → 504, ErrCanceled → 499).
//
// The package sits below every other internal package (it imports only
// the standard library), so flow, core, legalize and the server can all
// share the same sentinels without import cycles. The public facade
// (pkg/mth) re-exports them.
package errs

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrInfeasible marks a problem instance that provably has no
	// solution under its constraints: a cluster wider than a row's
	// capacity, a minority width budget no row set can host, and so on.
	// Retrying cannot help; the inputs must change.
	ErrInfeasible = errors.New("infeasible")

	// ErrTimeout marks work abandoned because its deadline expired
	// (context.DeadlineExceeded is translated to this sentinel at the
	// API boundary).
	ErrTimeout = errors.New("timed out")

	// ErrCanceled marks work abandoned because its context was canceled
	// (context.Canceled is translated to this sentinel at the API
	// boundary).
	ErrCanceled = errors.New("canceled")
)

// FromContext translates ctx's termination cause into the canonical
// sentinels: nil while the context is live, ErrCanceled after a cancel,
// ErrTimeout after a deadline expiry. Long-running loops call it at
// their check points and propagate the non-nil result.
func FromContext(ctx context.Context) error {
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return ErrTimeout
	default:
		return ErrCanceled
	}
}

// Infeasible wraps a formatted message with ErrInfeasible so the class
// survives fmt.Errorf chains: errors.Is(err, ErrInfeasible) holds on the
// result and on anything that wraps it.
func Infeasible(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrInfeasible)
}
