// Package errs defines the typed error taxonomy of the placement API.
// Every long-running entry point (flow execution, the RAP solve, the
// legalization passes) reports its failure class through one of the
// sentinels below so callers can dispatch with errors.Is instead of
// matching message strings; the HTTP job server maps them onto status
// codes (ErrInfeasible → 422, ErrTimeout → 504, ErrCanceled → 499).
//
// The package sits below every other internal package (it imports only
// the standard library), so flow, core, legalize and the server can all
// share the same sentinels without import cycles. The public facade
// (pkg/mth) re-exports them.
package errs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

var (
	// ErrInfeasible marks a problem instance that provably has no
	// solution under its constraints: a cluster wider than a row's
	// capacity, a minority width budget no row set can host, and so on.
	// Retrying cannot help; the inputs must change.
	ErrInfeasible = errors.New("infeasible")

	// ErrTimeout marks work abandoned because its deadline expired
	// (context.DeadlineExceeded is translated to this sentinel at the
	// API boundary).
	ErrTimeout = errors.New("timed out")

	// ErrCanceled marks work abandoned because its context was canceled
	// (context.Canceled is translated to this sentinel at the API
	// boundary).
	ErrCanceled = errors.New("canceled")

	// ErrTransient marks a failure that is expected to go away on retry:
	// an injected fault, a flaky downstream dependency, a resource that
	// was briefly unavailable. The job server retries this class with
	// exponential backoff; everything else fails immediately.
	ErrTransient = errors.New("transient failure")

	// ErrPanic marks a panic that was caught at an API boundary (flow
	// runner, job server worker) and converted into an error so the
	// process survives. It is never retried: a panic means a bug or an
	// injected chaos fault, not a recoverable condition.
	ErrPanic = errors.New("internal panic")

	// ErrUnavailable marks work that could not be placed on any live
	// execution backend: the dispatch target refused the connection, its
	// circuit breaker is open, or every lane in the ring is down. The HTTP
	// layer maps it to 503 with a Retry-After hint; unlike ErrTransient it
	// says nothing about whether an immediate retry on the *same* backend
	// can help — the scheduler re-routes instead.
	ErrUnavailable = errors.New("backend unavailable")
)

// FromContext translates ctx's termination cause into the canonical
// sentinels: nil while the context is live, ErrCanceled after a cancel,
// ErrTimeout after a deadline expiry. Long-running loops call it at
// their check points and propagate the non-nil result.
func FromContext(ctx context.Context) error {
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return ErrTimeout
	default:
		return ErrCanceled
	}
}

// Infeasible wraps a formatted message with ErrInfeasible so the class
// survives fmt.Errorf chains: errors.Is(err, ErrInfeasible) holds on the
// result and on anything that wraps it.
func Infeasible(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrInfeasible)
}

// Transient wraps a formatted message with ErrTransient so retry loops can
// classify the failure with errors.Is.
func Transient(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrTransient)
}

// FromPanic converts a recovered panic value into an ErrPanic-classed
// error, including the first stack frames so the report stays actionable
// after the goroutine's own stack is gone. Recover boundaries call it as
//
//	defer func() {
//	    if r := recover(); r != nil { err = errs.FromPanic(r, "flow %v", id) }
//	}()
//
// If the panic value is itself an error it is preserved in the wrap chain,
// so a re-panicked typed error keeps its class in addition to ErrPanic.
func FromPanic(v any, format string, args ...any) error {
	where := fmt.Sprintf(format, args...)
	stack := trimStack(debug.Stack())
	if err, ok := v.(error); ok {
		return fmt.Errorf("%s: %w: %w\n%s", where, ErrPanic, err, stack)
	}
	return fmt.Errorf("%s: %w: %v\n%s", where, ErrPanic, v, stack)
}

// trimStack keeps the panic site useful without dumping the whole runtime
// prologue: the first stackLines lines are plenty to locate the fault.
const stackLines = 16

func trimStack(b []byte) []byte {
	lines := bytes.SplitAfterN(b, []byte("\n"), stackLines+1)
	if len(lines) > stackLines {
		lines = lines[:stackLines]
	}
	return bytes.TrimRight(bytes.Join(lines, nil), "\n")
}
