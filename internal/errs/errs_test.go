package errs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestFromContext(t *testing.T) {
	if err := FromContext(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := FromContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled context: %v", err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	if err := FromContext(dctx); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expired context: %v", err)
	}
}

func TestInfeasibleWrapping(t *testing.T) {
	err := Infeasible("row %d over capacity by %d", 3, 7)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatal("Infeasible() does not match ErrInfeasible")
	}
	if errors.Is(err, ErrCanceled) || errors.Is(err, ErrTimeout) {
		t.Fatal("classes must be disjoint")
	}
	// Survives further wrapping, as the flow layers do.
	wrapped := fmt.Errorf("flow: RAP: %w", err)
	if !errors.Is(wrapped, ErrInfeasible) {
		t.Fatal("wrapping lost the class")
	}
}
