package placer

import (
	"math/rand"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/lefdef"
	"mthplace/internal/netlist"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func genPlaced(t *testing.T, scale float64, opt Options) *netlist.Design {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	so := synth.DefaultOptions()
	so.Scale = scale
	d, err := synth.Generate(tc, lib, synth.TableII()[0], so)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lefdef.ApplyMLEF(d); err != nil {
		t.Fatal(err)
	}
	Global(d, opt)
	return d
}

func TestGlobalKeepsCellsInsideDie(t *testing.T) {
	d := genPlaced(t, 0.02, Options{OuterIters: 5, SolveSweeps: 8})
	for i, in := range d.Insts {
		r := in.Rect()
		if !d.Die.ContainsRect(r) {
			t.Fatalf("inst %d at %v outside die %v", i, r, d.Die)
		}
	}
}

func TestGlobalBeatsRandomPlacement(t *testing.T) {
	d := genPlaced(t, 0.03, Options{})
	placed := d.TotalHPWL()
	// Random placement baseline.
	rng := rand.New(rand.NewSource(123))
	for _, in := range d.Insts {
		in.Pos = geom.Point{
			X: d.Die.Lo.X + rng.Int63n(d.Die.W()-in.Width()),
			Y: d.Die.Lo.Y + rng.Int63n(d.Die.H()-in.Height()),
		}
	}
	random := d.TotalHPWL()
	if placed >= random {
		t.Errorf("global placement HPWL %d not better than random %d", placed, random)
	}
	// Expect a substantial gap (at least 2x) — the placer must actually
	// optimise, not just centralise.
	if placed*2 >= random {
		t.Errorf("global placement HPWL %d less than 2x better than random %d", placed, random)
	}
}

func TestGlobalSpreadsDensity(t *testing.T) {
	d := genPlaced(t, 0.05, Options{})
	// Split the die into a 4x4 grid; no bin may hold more than 40% of total
	// cell area (perfect spread would be 6.25%).
	const grid = 4
	var binArea [grid][grid]float64
	var total float64
	for _, in := range d.Insts {
		c := in.Rect().Center()
		gx := int((c.X - d.Die.Lo.X) * grid / d.Die.W())
		gy := int((c.Y - d.Die.Lo.Y) * grid / d.Die.H())
		if gx >= grid {
			gx = grid - 1
		}
		if gy >= grid {
			gy = grid - 1
		}
		a := float64(in.Width()) * float64(in.Height())
		binArea[gx][gy] += a
		total += a
	}
	for x := 0; x < grid; x++ {
		for y := 0; y < grid; y++ {
			if binArea[x][y] > 0.40*total {
				t.Errorf("bin (%d,%d) holds %.1f%% of cell area — not spread",
					x, y, 100*binArea[x][y]/total)
			}
		}
	}
}

func TestGlobalDeterministic(t *testing.T) {
	a := genPlaced(t, 0.02, Options{Seed: 5})
	b := genPlaced(t, 0.02, Options{Seed: 5})
	for i := range a.Insts {
		if a.Insts[i].Pos != b.Insts[i].Pos {
			t.Fatalf("inst %d differs between identical runs", i)
		}
	}
}

func TestGlobalRespectsFixedCells(t *testing.T) {
	tc := tech.Default()
	lib := celllib.New(tc)
	so := synth.DefaultOptions()
	so.Scale = 0.02
	d, err := synth.Generate(tc, lib, synth.TableII()[0], so)
	if err != nil {
		t.Fatal(err)
	}
	fixedPos := geom.Point{X: 540, Y: 432}
	d.Insts[3].Fixed = true
	d.Insts[3].Pos = fixedPos
	Global(d, Options{OuterIters: 3, SolveSweeps: 4})
	if d.Insts[3].Pos != fixedPos {
		t.Errorf("fixed cell moved to %v", d.Insts[3].Pos)
	}
}

func TestGlobalEmptyDesign(t *testing.T) {
	tc := tech.Default()
	lib := celllib.New(tc)
	d := &netlist.Design{Name: "empty", Tech: tc, Lib: lib, Die: geom.NewRect(0, 0, 1000, 1000), ClockNet: netlist.NoNet}
	Global(d, Options{}) // must not panic
}

func TestGlobalPullsConnectedCellsTogether(t *testing.T) {
	d := genPlaced(t, 0.03, Options{})
	// Average HPWL of 2-pin nets should be far below the die half-perimeter.
	var sum, n int64
	for ni := range d.Nets {
		if int32(ni) == d.ClockNet || len(d.Nets[ni].Pins) != 2 {
			continue
		}
		sum += d.NetHPWL(int32(ni))
		n++
	}
	if n == 0 {
		t.Skip("no 2-pin nets")
	}
	avg := sum / n
	if avg > d.Die.HalfPerimeter()/4 {
		t.Errorf("avg 2-pin net HPWL %d too large vs die %d", avg, d.Die.HalfPerimeter())
	}
}
