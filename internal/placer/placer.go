// Package placer implements the unconstrained global placement that stands
// in for the commercial P&R tool's initial placement (§III, step iii of the
// paper). The algorithm is a compact quadratic placer in the SimPL family:
//
//  1. wirelength minimisation: iterated weighted-centroid (Jacobi) sweeps of
//     the star net model, which converge to the quadratic (clique/(p−1))
//     wirelength minimum with fixed IO ports as anchors;
//  2. density spreading: recursive area-balanced bisection of overfilled
//     regions produces spread targets;
//  3. anchoring: each outer iteration re-solves the quadratic system with
//     growing pull toward the spread targets, interpolating between pure
//     wirelength quality and an overlap-free distribution.
//
// The result is a realistic wirelength-optimised, roughly density-legal
// placement; exact legality (sites, rows, no overlap) is established
// afterwards by the legalize package, as in a real flow.
package placer

import (
	"math/rand"
	"sort"

	"mthplace/internal/geom"
	"mthplace/internal/netlist"
)

// Options tune the global placer.
type Options struct {
	// OuterIters is the number of spread/anchor iterations (default 12).
	OuterIters int
	// SolveSweeps is the number of Jacobi sweeps per outer iteration
	// (default 24).
	SolveSweeps int
	// Seed randomises the initial jitter.
	Seed int64
	// AnchorBase is the initial anchor weight relative to net weight sum
	// (default 0.03); it doubles every outer iteration.
	AnchorBase float64
	// BinTarget is the approximate cell count per spreading leaf bin
	// (default 6).
	BinTarget int
}

func (o Options) withDefaults() Options {
	if o.OuterIters <= 0 {
		o.OuterIters = 12
	}
	if o.SolveSweeps <= 0 {
		o.SolveSweeps = 24
	}
	if o.AnchorBase <= 0 {
		o.AnchorBase = 0.03
	}
	if o.BinTarget <= 0 {
		o.BinTarget = 6
	}
	return o
}

// Global computes an unconstrained placement for all movable instances,
// writing lower-left positions into the design. The clock net is excluded
// from the wirelength objective (it is routed as a tree by CTS, and pulling
// every flop to one point would wreck the placement, as in real tools).
func Global(d *netlist.Design, opt Options) {
	opt = opt.withDefaults()
	n := len(d.Insts)
	if n == 0 {
		return
	}
	rng := rand.New(rand.NewSource(opt.Seed + 17))

	cx := make([]float64, n) // cell centers
	cy := make([]float64, n)
	area := make([]float64, n)
	movable := make([]bool, n)
	dieCx := float64(d.Die.Lo.X+d.Die.Hi.X) / 2
	dieCy := float64(d.Die.Lo.Y+d.Die.Hi.Y) / 2
	for i, in := range d.Insts {
		area[i] = float64(in.Width()) * float64(in.Height())
		movable[i] = !in.Fixed
		if in.Fixed {
			cx[i] = float64(in.Pos.X) + float64(in.Width())/2
			cy[i] = float64(in.Pos.Y) + float64(in.Height())/2
			continue
		}
		// Start near the die center with jitter to break symmetry.
		cx[i] = dieCx + (rng.Float64()-0.5)*float64(d.Die.W())*0.25
		cy[i] = dieCy + (rng.Float64()-0.5)*float64(d.Die.H())*0.25
	}

	nets := buildNets(d)
	ax := append([]float64(nil), cx...) // anchor targets
	ay := append([]float64(nil), cy...)

	lambda := 0.0
	for outer := 0; outer < opt.OuterIters; outer++ {
		solve(d, nets, cx, cy, ax, ay, movable, lambda, opt.SolveSweeps)
		spread(d, cx, cy, area, movable, ax, ay, opt.BinTarget)
		if outer == 0 {
			lambda = opt.AnchorBase
		} else {
			lambda *= 1.8
		}
	}
	// Final positions follow the spread targets (overlap-light).
	for i := range cx {
		if movable[i] {
			cx[i], cy[i] = ax[i], ay[i]
		}
	}
	writeBack(d, cx, cy, movable)
}

// placeNet is a net prepared for the quadratic model: participating cell
// indices, fixed-terminal centroid contribution and weight.
type placeNet struct {
	cells  []int32
	fx, fy float64 // sum of fixed/port pin coordinates
	nfixed int
	w      float64
}

func buildNets(d *netlist.Design) []placeNet {
	out := make([]placeNet, 0, len(d.Nets))
	for ni, net := range d.Nets {
		if int32(ni) == d.ClockNet || len(net.Pins) < 2 {
			continue
		}
		var pn placeNet
		for _, ref := range net.Pins {
			if ref.IsPort() {
				p := d.Ports[ref.Pin].Pos
				pn.fx += float64(p.X)
				pn.fy += float64(p.Y)
				pn.nfixed++
				continue
			}
			if d.Insts[ref.Inst].Fixed {
				p := d.PinPos(ref)
				pn.fx += float64(p.X)
				pn.fy += float64(p.Y)
				pn.nfixed++
				continue
			}
			pn.cells = append(pn.cells, ref.Inst)
		}
		if len(pn.cells) == 0 {
			continue
		}
		deg := len(pn.cells) + pn.nfixed
		pn.w = 1.0 / float64(deg-1)
		out = append(out, pn)
	}
	return out
}

// solve runs Jacobi sweeps of the star-model normal equations with anchor
// pull lambda toward (ax, ay).
func solve(d *netlist.Design, nets []placeNet, cx, cy, ax, ay []float64, movable []bool, lambda float64, sweeps int) {
	n := len(cx)
	sumW := make([]float64, n)
	numX := make([]float64, n)
	numY := make([]float64, n)
	for s := 0; s < sweeps; s++ {
		for i := 0; i < n; i++ {
			sumW[i], numX[i], numY[i] = 0, 0, 0
		}
		for _, pn := range nets {
			deg := float64(len(pn.cells) + pn.nfixed)
			var sx, sy float64
			for _, c := range pn.cells {
				sx += cx[c]
				sy += cy[c]
			}
			sx += pn.fx
			sy += pn.fy
			// Star center is the net centroid; each member is pulled to the
			// centroid of the *other* members to avoid self-attraction bias.
			for _, c := range pn.cells {
				ox := (sx - cx[c]) / (deg - 1)
				oy := (sy - cy[c]) / (deg - 1)
				numX[c] += pn.w * ox
				numY[c] += pn.w * oy
				sumW[c] += pn.w
			}
		}
		loX, hiX := float64(d.Die.Lo.X), float64(d.Die.Hi.X)
		loY, hiY := float64(d.Die.Lo.Y), float64(d.Die.Hi.Y)
		for i := 0; i < n; i++ {
			if !movable[i] {
				continue
			}
			den := sumW[i] + lambda
			if den <= 0 {
				continue
			}
			nx := (numX[i] + lambda*ax[i]) / den
			ny := (numY[i] + lambda*ay[i]) / den
			cx[i] = clampF(nx, loX, hiX)
			cy[i] = clampF(ny, loY, hiY)
		}
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// spread computes overlap-light targets (ax, ay) by recursive area-balanced
// bisection: cells are recursively split along the longer region axis in
// coordinate order, each half receiving a region share proportional to its
// area demand; leaf bins distribute their cells uniformly.
func spread(d *netlist.Design, cx, cy, area []float64, movable []bool, ax, ay []float64, binTarget int) {
	ids := make([]int, 0, len(cx))
	for i := range cx {
		if movable[i] {
			ids = append(ids, i)
		}
	}
	region := rectF{
		x0: float64(d.Die.Lo.X), y0: float64(d.Die.Lo.Y),
		x1: float64(d.Die.Hi.X), y1: float64(d.Die.Hi.Y),
	}
	bisect(ids, region, cx, cy, area, ax, ay, binTarget)
}

type rectF struct{ x0, y0, x1, y1 float64 }

func (r rectF) w() float64 { return r.x1 - r.x0 }
func (r rectF) h() float64 { return r.y1 - r.y0 }

func bisect(ids []int, r rectF, cx, cy, area, ax, ay []float64, binTarget int) {
	if len(ids) == 0 {
		return
	}
	if len(ids) <= binTarget || (r.w() < 1 && r.h() < 1) {
		// Leaf: order by x and distribute uniformly on a row-major mini
		// grid to kill residual overlap.
		sort.Slice(ids, func(a, b int) bool {
			if cx[ids[a]] != cx[ids[b]] {
				return cx[ids[a]] < cx[ids[b]]
			}
			return ids[a] < ids[b]
		})
		for k, id := range ids {
			f := (float64(k) + 0.5) / float64(len(ids))
			ax[id] = r.x0 + f*r.w()
			ay[id] = r.y0 + r.h()/2
		}
		return
	}
	vertCut := r.w() >= r.h() // cut the longer axis
	sort.Slice(ids, func(a, b int) bool {
		va, vb := cy[ids[a]], cy[ids[b]]
		if vertCut {
			va, vb = cx[ids[a]], cx[ids[b]]
		}
		if va != vb {
			return va < vb
		}
		return ids[a] < ids[b]
	})
	var total float64
	for _, id := range ids {
		total += area[id]
	}
	half := total / 2
	var acc float64
	cut := 0
	for cut < len(ids)-1 {
		acc += area[ids[cut]]
		cut++
		if acc >= half {
			break
		}
	}
	fracArea := acc / total
	left, right := ids[:cut], ids[cut:]
	if vertCut {
		xm := r.x0 + r.w()*fracArea
		bisect(left, rectF{r.x0, r.y0, xm, r.y1}, cx, cy, area, ax, ay, binTarget)
		bisect(right, rectF{xm, r.y0, r.x1, r.y1}, cx, cy, area, ax, ay, binTarget)
	} else {
		ym := r.y0 + r.h()*fracArea
		bisect(left, rectF{r.x0, r.y0, r.x1, ym}, cx, cy, area, ax, ay, binTarget)
		bisect(right, rectF{r.x0, ym, r.x1, r.y1}, cx, cy, area, ax, ay, binTarget)
	}
}

// writeBack converts centers to clamped lower-left positions.
func writeBack(d *netlist.Design, cx, cy []float64, movable []bool) {
	for i, in := range d.Insts {
		if !movable[i] {
			continue
		}
		x := int64(cx[i]) - in.Width()/2
		y := int64(cy[i]) - in.Height()/2
		x = geom.ClampInt64(x, d.Die.Lo.X, d.Die.Hi.X-in.Width())
		y = geom.ClampInt64(y, d.Die.Lo.Y, d.Die.Hi.Y-in.Height())
		in.Pos = geom.Point{X: x, Y: y}
	}
}
