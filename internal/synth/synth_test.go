package synth

import (
	"math"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/netlist"
	"mthplace/internal/tech"
)

func TestTableIIHasAllRows(t *testing.T) {
	specs := TableII()
	if len(specs) != 26 {
		t.Fatalf("Table II has %d rows, want 26", len(specs))
	}
	circuits := map[string]int{}
	for _, s := range specs {
		circuits[s.Circuit]++
		if s.Cells <= 0 || s.Nets <= 0 || s.MinorityPct <= 0 || s.ClockPs <= 0 {
			t.Errorf("%s: bad spec %+v", s.Name(), s)
		}
		if s.Nets < s.Cells {
			t.Errorf("%s: nets %d < cells %d", s.Name(), s.Nets, s.Cells)
		}
	}
	if len(circuits) != 9 {
		t.Errorf("Table II covers %d circuits, want 9", len(circuits))
	}
}

func TestSpecNames(t *testing.T) {
	cases := map[string]string{
		"aes_cipher_top":       "aes_300",
		"ldpc_decoder_802_3an": "ldpc_300",
		"point_scalar_mult":    "point_200",
	}
	for _, s := range TableII() {
		if want, ok := cases[s.Circuit]; ok {
			if got := s.Name(); got == want {
				delete(cases, s.Circuit)
			} else if s.Name()[:4] == want[:4] && got != want {
				continue // other clock variant of same circuit
			}
		}
	}
	if len(cases) != 0 {
		t.Errorf("unmatched names: %v", cases)
	}
}

func TestParameterSweepSpecs(t *testing.T) {
	ps := ParameterSweepSpecs()
	if len(ps) != 14 {
		t.Fatalf("parameter sweep set has %d cases, want 14", len(ps))
	}
	circuits := map[string]bool{}
	for _, s := range ps {
		circuits[s.Circuit] = true
	}
	if len(circuits) != 9 {
		t.Errorf("sweep set covers %d circuits, want all 9", len(circuits))
	}
}

func genSmall(t *testing.T, spec Spec, scale float64) *netlist.Design {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := DefaultOptions()
	opt.Scale = scale
	d, err := Generate(tc, lib, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateMatchesSpecStatistics(t *testing.T) {
	spec := TableII()[0] // aes_300, 28.13% minority
	d := genSmall(t, spec, 0.1)
	nWant := int(math.Round(float64(spec.Cells) * 0.1))
	if got := len(d.Insts); got != nWant {
		t.Errorf("cells = %d, want %d", got, nWant)
	}
	frac := d.MinorityFraction() * 100
	if math.Abs(frac-spec.MinorityPct) > 5 {
		t.Errorf("minority pct = %.2f, want about %.2f", frac, spec.MinorityPct)
	}
	// Net surplus over cells tracks the spec's port count.
	if len(d.Nets) <= len(d.Insts) {
		t.Errorf("nets %d must exceed cells %d", len(d.Nets), len(d.Insts))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := TableII()[3]
	a := genSmall(t, spec, 0.05)
	b := genSmall(t, spec, 0.05)
	if len(a.Insts) != len(b.Insts) || len(a.Nets) != len(b.Nets) {
		t.Fatal("sizes differ between identical runs")
	}
	for i := range a.Insts {
		if a.Insts[i].Master.Name != b.Insts[i].Master.Name {
			t.Fatalf("inst %d master differs: %s vs %s", i, a.Insts[i].Master.Name, b.Insts[i].Master.Name)
		}
		for p := range a.Insts[i].PinNets {
			if a.Insts[i].PinNets[p] != b.Insts[i].PinNets[p] {
				t.Fatalf("inst %d pin %d net differs", i, p)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	spec := TableII()[3]
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := DefaultOptions()
	opt.Scale = 0.05
	a, _ := Generate(tc, lib, spec, opt)
	opt.Seed = 99
	b, _ := Generate(tc, lib, spec, opt)
	same := true
	for i := range a.Insts {
		if a.Insts[i].Master.Name != b.Insts[i].Master.Name {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical master sequences")
	}
}

func TestGenerateStructure(t *testing.T) {
	d := genSmall(t, TableII()[5], 0.02) // ldpc_300
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.ClockNet == netlist.NoNet {
		t.Fatal("design must have a clock net")
	}
	// Every DFF CK pin is on the clock net; every other input is driven.
	seqs := 0
	for i, in := range d.Insts {
		for p, pin := range in.Master.Pins {
			if pin.Dir != celllib.Input {
				continue
			}
			if in.PinNets[p] == netlist.NoNet {
				t.Fatalf("inst %d pin %d unconnected", i, p)
			}
			if in.Master.Sequential && pin.Name == "CK" {
				if in.PinNets[p] != d.ClockNet {
					t.Fatalf("DFF %d CK not on clock net", i)
				}
			}
		}
		if in.Master.Sequential {
			seqs++
		}
	}
	if seqs == 0 {
		t.Error("design must contain flip-flops")
	}
	// Every net except possibly floating outputs has a driver.
	for ni := range d.Nets {
		if _, ok := d.Driver(int32(ni)); !ok {
			t.Errorf("net %s undriven", d.Nets[ni].Name)
		}
	}
}

func TestGenerateNoCombinationalLoops(t *testing.T) {
	d := genSmall(t, TableII()[0], 0.03)
	// Combinational inputs of instance i must be driven by a port, a DFF, or
	// an instance with smaller index (generation wires in topological order).
	for i, in := range d.Insts {
		for p, pin := range in.Master.Pins {
			if pin.Dir != celllib.Input {
				continue
			}
			net := in.PinNets[p]
			if net == d.ClockNet {
				continue
			}
			drv, ok := d.Driver(net)
			if !ok || drv.IsPort() {
				continue
			}
			src := d.Insts[drv.Inst]
			if src.Master.Sequential {
				continue
			}
			if int(drv.Inst) >= i {
				t.Fatalf("forward combinational edge %d -> %d", drv.Inst, i)
			}
		}
	}
}

func TestGenerateDieSizing(t *testing.T) {
	d := genSmall(t, TableII()[0], 0.05)
	st := d.ComputeStats()
	if st.Utilization < 0.4 || st.Utilization > 0.7 {
		t.Errorf("utilization = %.3f, want near 0.6", st.Utilization)
	}
	pairH := d.Tech.MLEFPairHeight(d.MinorityAreaFraction())
	if d.Die.H()%pairH != 0 {
		t.Errorf("die height %d not a multiple of mLEF pair height %d", d.Die.H(), pairH)
	}
	ar := float64(d.Die.H()) / float64(d.Die.W())
	if ar < 0.7 || ar > 1.4 {
		t.Errorf("aspect ratio = %.2f, want near 1.0", ar)
	}
	// Ports sit on the die boundary.
	for _, p := range d.Ports {
		onX := p.Pos.X == d.Die.Lo.X || p.Pos.X == d.Die.Hi.X
		onY := p.Pos.Y == d.Die.Lo.Y || p.Pos.Y == d.Die.Hi.Y
		if !onX && !onY {
			t.Errorf("port %s at %v not on boundary %v", p.Name, p.Pos, d.Die)
		}
	}
}

func TestGenerateRejectsBadOptions(t *testing.T) {
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := DefaultOptions()
	opt.Scale = 0
	if _, err := Generate(tc, lib, TableII()[0], opt); err == nil {
		t.Error("zero scale must error")
	}
	opt = DefaultOptions()
	opt.Utilization = 1.5
	if _, err := Generate(tc, lib, TableII()[0], opt); err == nil {
		t.Error("bad utilization must error")
	}
}

func TestNetDegreeDistribution(t *testing.T) {
	d := genSmall(t, TableII()[8], 0.02) // jpeg_300
	deg := map[int]int{}
	total := 0
	for ni := range d.Nets {
		if int32(ni) == d.ClockNet {
			continue
		}
		n := len(d.Nets[ni].Pins)
		deg[n]++
		total++
	}
	small := deg[2] + deg[3] + deg[4]
	if float64(small)/float64(total) < 0.5 {
		t.Errorf("2-4 pin nets are only %d/%d; want majority", small, total)
	}
}
