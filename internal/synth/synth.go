// Package synth generates the synthetic gate-level netlists that stand in
// for the paper's 26 OpenCores testcases (Table II). Synopsys Design
// Compiler and the OpenCores RTL are not available in this environment, so
// the generator reproduces the *statistics* that matter to the row
// assignment and placement experiments: cell count, the 7.5T minority
// fraction (a function of timing pressure in the paper; an explicit knob
// here), a 2-3-pin-dominated net degree distribution with Rent-style
// locality, and a levelised sequential DAG so static timing has real
// launch/capture paths to evaluate.
//
// Generation is fully deterministic for a given spec and seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/netlist"
	"mthplace/internal/tech"
)

// Spec describes one Table II testcase row.
type Spec struct {
	// Circuit is the OpenCores design name.
	Circuit string
	// ClockPs is the synthesis clock period in picoseconds.
	ClockPs float64
	// Cells is the paper-reported instance count.
	Cells int
	// MinorityPct is the paper-reported 7.5T percentage.
	MinorityPct float64
	// Nets is the paper-reported net count.
	Nets int
}

// Name returns the short testcase name used throughout the paper's tables,
// e.g. "aes_300".
func (s Spec) Name() string {
	short := map[string]string{
		"aes_cipher_top":       "aes",
		"ldpc_decoder_802_3an": "ldpc",
		"jpeg_encoder":         "jpeg",
		"fpu":                  "fpu",
		"point_scalar_mult":    "point",
		"des3":                 "des3",
		"vga_enh_top":          "vga",
		"swerv":                "swerv",
		"nova":                 "nova",
	}
	n, ok := short[s.Circuit]
	if !ok {
		n = s.Circuit
	}
	return fmt.Sprintf("%s_%d", n, int(s.ClockPs))
}

// ScaleForCells returns the Options.Scale that makes this spec generate
// approximately n instances. The generator scales the spec's cell count
// linearly, so scale = n / Cells; million-cell mode is
// ScaleForCells(1_000_000) on the largest Table II spec.
func (s Spec) ScaleForCells(n int) float64 {
	if n <= 0 || s.Cells <= 0 {
		return 1
	}
	return float64(n) / float64(s.Cells)
}

// TableII returns the 26 testcase specifications of Table II.
func TableII() []Spec {
	return []Spec{
		{"aes_cipher_top", 300, 14040, 28.13, 14302},
		{"aes_cipher_top", 320, 13792, 18.74, 14054},
		{"aes_cipher_top", 340, 13031, 13.94, 13293},
		{"aes_cipher_top", 360, 12799, 10.05, 13061},
		{"aes_cipher_top", 400, 12419, 5.27, 12681},
		{"ldpc_decoder_802_3an", 300, 43299, 23.79, 45350},
		{"ldpc_decoder_802_3an", 350, 42584, 8.61, 42584},
		{"ldpc_decoder_802_3an", 400, 43706, 3.62, 45757},
		{"jpeg_encoder", 300, 50136, 15.46, 50158},
		{"jpeg_encoder", 350, 49449, 10.70, 49471},
		{"jpeg_encoder", 400, 47329, 4.31, 48129},
		{"fpu", 4000, 37739, 17.50, 37809},
		{"fpu", 4500, 34945, 10.36, 35015},
		{"point_scalar_mult", 200, 55630, 7.92, 56172},
		{"point_scalar_mult", 250, 51556, 4.87, 52098},
		{"des3", 210, 57532, 24.44, 57766},
		{"des3", 220, 57851, 21.27, 58085},
		{"des3", 230, 57613, 15.44, 57847},
		{"des3", 250, 56653, 10.17, 56887},
		{"des3", 290, 55390, 4.95, 55624},
		{"vga_enh_top", 270, 73790, 8.27, 73879},
		{"vga_enh_top", 290, 73516, 3.80, 73605},
		{"swerv", 130, 94333, 9.07, 95111},
		{"swerv", 550, 89682, 4.67, 90460},
		{"nova", 300, 174267, 9.75, 174418},
		{"nova", 500, 155536, 5.59, 155687},
	}
}

// ParameterSweepSpecs returns the 14 representative testcases the paper uses
// for the Fig. 4 parameter sweeps: all nine circuits covered with a spread
// of 7.5T percentages.
func ParameterSweepSpecs() []Spec {
	want := map[string]bool{
		"aes_300": true, "aes_360": true, "ldpc_300": true, "ldpc_400": true,
		"jpeg_300": true, "jpeg_400": true, "fpu_4000": true, "fpu_4500": true,
		"point_200": true, "des3_210": true, "des3_290": true, "vga_270": true,
		"swerv_130": true, "nova_500": true,
	}
	var out []Spec
	for _, s := range TableII() {
		if want[s.Name()] {
			out = append(out, s)
		}
	}
	return out
}

// Options control generation.
type Options struct {
	// Scale multiplies the cell count of the spec; 1.0 reproduces the
	// paper-size design, smaller values produce proportionally smaller
	// designs with identical structure (useful for fast experimentation —
	// the experiment harness records the scale it ran at).
	Scale float64
	// Seed selects the deterministic random stream; the circuit name and
	// clock are mixed in so every testcase differs.
	Seed int64
	// SeqFrac is the flip-flop fraction of all instances.
	SeqFrac float64
	// WindowFrac sizes the locality window for input selection as a
	// fraction of the instance count.
	WindowFrac float64
	// LongRangeProb is the probability that an input escapes the locality
	// window (Rent-style global wiring).
	LongRangeProb float64
	// Utilization is the placement utilization used to size the die
	// (paper: 60%).
	Utilization float64
	// AspectRatio is die height/width (paper: 1.0).
	AspectRatio float64
}

// DefaultOptions mirrors the paper's experimental setup.
func DefaultOptions() Options {
	return Options{
		Scale:         1.0,
		Seed:          1,
		SeqFrac:       0.16,
		WindowFrac:    0.04,
		LongRangeProb: 0.08,
		Utilization:   0.60,
		AspectRatio:   1.0,
	}
}

// combinational kind mix (weights) for the majority of instances.
var combMix = []struct {
	kind   celllib.Kind
	weight int
}{
	{celllib.INV, 14},
	{celllib.BUF, 8},
	{celllib.NAND2, 18},
	{celllib.NOR2, 11},
	{celllib.AND2, 9},
	{celllib.OR2, 8},
	{celllib.NAND3, 6},
	{celllib.NOR3, 5},
	{celllib.AOI21, 6},
	{celllib.OAI21, 6},
	{celllib.XOR2, 4},
	{celllib.XNOR2, 3},
	{celllib.MUX2, 5},
	{celllib.FA, 3},
}

// Generate builds the design for one spec.
//
// The returned design has no placement (all instances at the origin) and no
// die-dependent structures beyond the die outline itself; run the mLEF
// transform and the global placer to obtain the unconstrained initial
// placement the paper starts from.
func Generate(t *tech.Tech, lib *celllib.Library, spec Spec, opt Options) (*netlist.Design, error) {
	if opt.Scale <= 0 {
		return nil, fmt.Errorf("synth: scale %f must be positive", opt.Scale)
	}
	if opt.Utilization <= 0 || opt.Utilization >= 1 {
		return nil, fmt.Errorf("synth: utilization %f out of (0,1)", opt.Utilization)
	}
	nCells := int(math.Round(float64(spec.Cells) * opt.Scale))
	if nCells < 16 {
		nCells = 16
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ hashString(spec.Circuit) ^ int64(spec.ClockPs)*7919))

	d := &netlist.Design{
		Name:          spec.Name(),
		Tech:          t,
		Lib:           lib,
		ClockPeriodPs: spec.ClockPs,
		ClockNet:      netlist.NoNet,
	}

	masters := chooseMasters(lib, rng, nCells, spec.MinorityPct/100, opt.SeqFrac)
	for i, m := range masters {
		d.AddInstance(fmt.Sprintf("u%d", i), m)
	}

	sizeDie(d, opt)
	addPorts(d, spec, opt, rng)
	wire(d, rng, opt)

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated design invalid: %w", err)
	}
	return d, nil
}

func hashString(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= int64(s[i])
		h *= 1099511628211
	}
	return h
}

// chooseMasters picks a master per instance. The minority fraction of
// instances is mapped to 7.5T high-drive cells — the paper's synthesis uses
// tighter clocks to force more high-drive (hence 7.5T) instances. Because
// high-drive cells concentrate along critical timing cones, minority status
// is assigned in contiguous index blocks rather than i.i.d.: instance-index
// locality translates (through the locality-windowed wiring) into spatial
// locality after placement, reproducing the clumped minority distributions
// that make capacity-aware row assignment matter. LVT is used for a slice
// of the cells (both VTs appear in the paper's setup).
func chooseMasters(lib *celllib.Library, rng *rand.Rand, n int, minorityFrac, seqFrac float64) []*celllib.Master {
	total := 0
	for _, c := range combMix {
		total += c.weight
	}
	minority := minorityBlocks(rng, n, minorityFrac)
	out := make([]*celllib.Master, n)
	for i := range out {
		height := tech.Short6T
		if minority[i] {
			height = tech.Tall7p5T
		}
		vt := celllib.RVT
		if rng.Float64() < 0.25 {
			vt = celllib.LVT
		}
		if rng.Float64() < seqFrac {
			drive := 1
			if height == tech.Tall7p5T || rng.Float64() < 0.3 {
				drive = 2
			}
			out[i] = lib.Find(celllib.DFF, drive, height, vt)
			continue
		}
		k := pickKind(rng, total)
		out[i] = lib.Find(k.kind, pickDrive(rng, k.kind, height), height, vt)
	}
	return out
}

// minorityBlocks marks round(frac·n) instances as minority in a handful of
// large contiguous index runs — the critical timing cones where synthesis
// concentrates high-drive cells. Together with the tighter intra-cone
// wiring (see wire), the cones become spatial hotspots whose local minority
// density far exceeds the global fraction; those hotspots are what make
// capacity-aware row assignment matter.
func minorityBlocks(rng *rand.Rand, n int, frac float64) []bool {
	out := make([]bool, n)
	target := int(math.Round(frac * float64(n)))
	if target <= 0 {
		return out
	}
	numBlocks := 2 + rng.Intn(3)
	blockLen := (target + numBlocks - 1) / numBlocks
	count := 0
	for count < target {
		length := blockLen/2 + rng.Intn(blockLen+1)
		start := rng.Intn(n)
		for j := start; j < n && length > 0 && count < target; j++ {
			if !out[j] {
				out[j] = true
				count++
				length--
			}
		}
	}
	return out
}

func pickKind(rng *rand.Rand, total int) struct {
	kind   celllib.Kind
	weight int
} {
	v := rng.Intn(total)
	for _, c := range combMix {
		if v < c.weight {
			return c
		}
		v -= c.weight
	}
	return combMix[0]
}

// pickDrive selects a drive strength: minority (7.5T) cells skew to strong
// drives, majority cells to weak ones.
func pickDrive(rng *rand.Rand, k celllib.Kind, h tech.TrackHeight) int {
	drives := availableDrives(k)
	if len(drives) == 1 {
		return drives[0]
	}
	r := rng.Float64()
	if h == tech.Tall7p5T {
		// Prefer the strongest drives.
		if r < 0.55 {
			return drives[len(drives)-1]
		}
		if r < 0.85 && len(drives) >= 2 {
			return drives[len(drives)-2]
		}
		return drives[rng.Intn(len(drives))]
	}
	if r < 0.60 {
		return drives[0]
	}
	if r < 0.90 && len(drives) >= 2 {
		return drives[1]
	}
	return drives[rng.Intn(len(drives))]
}

func availableDrives(k celllib.Kind) []int {
	for _, s := range celllib.Kinds() {
		if s.Kind == k {
			return s.Drives
		}
	}
	return []int{1}
}

// sizeDie computes the die so that the mLEF placement at the requested
// utilization fits an integral number of mLEF row pairs, and so that any
// feasible mixed restack also fits (guaranteed later by clamping N_minR via
// rowgrid.MaxMinorityPairs).
func sizeDie(d *netlist.Design, opt Options) {
	var area float64
	for _, in := range d.Insts {
		area += float64(in.Master.Width) * float64(in.Master.RowH)
	}
	dieArea := area / opt.Utilization
	pairH := d.Tech.MLEFPairHeight(d.MinorityAreaFraction())
	// Height from aspect ratio, snapped to whole pairs (at least 4).
	h := math.Sqrt(dieArea * opt.AspectRatio)
	nPairs := int(math.Round(h / float64(pairH)))
	if nPairs < 4 {
		nPairs = 4
	}
	dieH := int64(nPairs) * pairH
	dieW := geom.SnapUp(int64(math.Ceil(dieArea/float64(dieH))), d.Tech.SiteWidth)
	d.Die = geom.NewRect(0, 0, dieW, dieH)
}

// addPorts creates primary IO on the die boundary: enough input ports that
// the net count matches the spec's cells-to-nets surplus, a similar number
// of output ports, and one clock port.
func addPorts(d *netlist.Design, spec Spec, opt Options, rng *rand.Rand) {
	surplus := int(math.Round(float64(spec.Nets-spec.Cells) * opt.Scale))
	nIn := surplus - 1 // clock port contributes one net
	if nIn < 4 {
		nIn = 4
	}
	nOut := nIn
	perim := func(i, n int) geom.Point {
		// Distribute along the four die edges.
		t := float64(i) / float64(n)
		w, h := float64(d.Die.W()), float64(d.Die.H())
		c := t * 2 * (w + h)
		switch {
		case c < w:
			return geom.Point{X: d.Die.Lo.X + int64(c), Y: d.Die.Lo.Y}
		case c < w+h:
			return geom.Point{X: d.Die.Hi.X, Y: d.Die.Lo.Y + int64(c-w)}
		case c < 2*w+h:
			return geom.Point{X: d.Die.Hi.X - int64(c-w-h), Y: d.Die.Hi.Y}
		default:
			return geom.Point{X: d.Die.Lo.X, Y: d.Die.Hi.Y - int64(c-2*w-h)}
		}
	}
	total := nIn + nOut + 1
	k := 0
	for i := 0; i < nIn; i++ {
		d.AddPort(fmt.Sprintf("in%d", i), netlist.In, perim(k, total))
		k++
	}
	for i := 0; i < nOut; i++ {
		d.AddPort(fmt.Sprintf("out%d", i), netlist.Out, perim(k, total))
		k++
	}
	d.AddPort("clk", netlist.In, perim(k, total))
}

// wire builds the netlist connectivity. Instances are wired in index order
// (which is the topological order for combinational cells); each cell output
// creates one net; inputs connect to nearby earlier outputs or PI nets with
// occasional long-range escapes.
func wire(d *netlist.Design, rng *rand.Rand, opt Options) {
	n := len(d.Insts)
	window := int(float64(n) * opt.WindowFrac)
	if window < 8 {
		window = 8
	}

	// Input-port nets.
	piNets := make([]int32, 0)
	var clkPort int32 = -1
	for pi, p := range d.Ports {
		if p.Dir != netlist.In {
			continue
		}
		if p.Name == "clk" {
			clkPort = int32(pi)
			continue
		}
		net := d.AddNet("pi_" + p.Name)
		d.ConnectPort(int32(pi), net)
		piNets = append(piNets, net)
	}
	clkNet := d.AddNet("clk")
	d.ConnectPort(clkPort, clkNet)
	d.ClockNet = clkNet

	// Output net per instance.
	outNets := make([]int32, n)
	for i, in := range d.Insts {
		net := d.AddNet(fmt.Sprintf("n_%s", in.Name))
		d.Connect(int32(i), int32(in.Master.OutputPin()), net)
		outNets[i] = net
	}

	// Minority (7.5T) cells sit on critical cones and wire tightly within
	// them, so the placer clumps each cone into a spatial hotspot.
	coneWindow := window / 6
	if coneWindow < 8 {
		coneWindow = 8
	}

	// pickDriver chooses a source net for an input of instance i.
	pickDriver := func(i int) int32 {
		if i == 0 || rng.Float64() < float64(len(piNets))/float64(len(piNets)+i) {
			// Early cells and a decaying fraction of later ones read PIs.
			if len(piNets) > 0 {
				return piNets[rng.Intn(len(piNets))]
			}
		}
		w := window
		longRange := opt.LongRangeProb
		if d.Insts[i].Master.Height == tech.Tall7p5T {
			w = coneWindow
			longRange = opt.LongRangeProb / 4
		}
		lo := i - w
		if rng.Float64() < longRange || lo < 0 {
			lo = 0
		}
		if i == 0 {
			return piNets[rng.Intn(len(piNets))]
		}
		return outNets[lo+rng.Intn(i-lo)]
	}

	for i, in := range d.Insts {
		m := in.Master
		for p := 0; p < len(m.Pins); p++ {
			if m.Pins[p].Dir != celllib.Input {
				continue
			}
			if m.Sequential && m.Pins[p].Name == "CK" {
				d.Connect(int32(i), int32(p), clkNet)
				continue
			}
			d.Connect(int32(i), int32(p), pickDriver(i))
		}
	}

	// Output ports observe late high-level nets.
	for pi, p := range d.Ports {
		if p.Dir != netlist.Out {
			continue
		}
		span := n / 10
		if span < 1 {
			span = 1
		}
		src := outNets[n-1-rng.Intn(span)]
		d.ConnectPort(int32(pi), src)
	}
}
