package exp

import (
	"context"
	"testing"
	"time"
)

// TestTable4ParallelEquivalence asserts the tentpole guarantee at the
// experiment-matrix layer: the deterministic fields of Table IV (metrics
// and their normalisations) are identical at jobs=1 and jobs=8. Stage
// wall-clock times are inherently nondeterministic and excluded; the MILP
// time budgets are lifted so no solver decision can depend on elapsed time.
// The bound now travels through Config.Jobs alone — nothing global changes,
// which is exactly what lets the job server run differently-bounded jobs
// side by side.
func TestTable4ParallelEquivalence(t *testing.T) {
	cfg := tiny(t)
	// Remove every wall-clock-dependent solver decision.
	cfg.Flow.Core.Solve.MILP.TimeLimit = time.Hour

	run := func(jobs int) *Table4Result {
		t.Helper()
		c := cfg
		c.Flow.Jobs = jobs
		res, err := Table4(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1)
	b := run(8)

	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i].Name != b.Rows[i].Name {
			t.Fatalf("row %d order differs: %s vs %s (ordered collector broken)", i, a.Rows[i].Name, b.Rows[i].Name)
		}
		if a.Rows[i].Disp != b.Rows[i].Disp {
			t.Fatalf("%s: Disp %v vs %v", a.Rows[i].Name, a.Rows[i].Disp, b.Rows[i].Disp)
		}
		if a.Rows[i].HPWL != b.Rows[i].HPWL {
			t.Fatalf("%s: HPWL %v vs %v", a.Rows[i].Name, a.Rows[i].HPWL, b.Rows[i].HPWL)
		}
	}
	if a.NormDisp != b.NormDisp {
		t.Fatalf("NormDisp %v vs %v", a.NormDisp, b.NormDisp)
	}
	if a.NormHPWL != b.NormHPWL {
		t.Fatalf("NormHPWL %v vs %v", a.NormHPWL, b.NormHPWL)
	}
}

// TestTable2ParallelEquivalence covers the generator fan-out: same rows,
// same order, at both worker counts.
func TestTable2ParallelEquivalence(t *testing.T) {
	cfg := tiny(t)
	run := func(jobs int) *Table2Result {
		t.Helper()
		c := cfg
		c.Flow.Jobs = jobs
		res, err := Table2(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1)
	b := run(8)
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ")
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
