package exp

import (
	"context"
	"fmt"

	"mthplace/internal/flow"
	"mthplace/internal/metrics"
	"mthplace/internal/par"
	"mthplace/internal/synth"
)

// AblationResult is the clustering-impact study of §IV-B.4: the unclustered
// ILP (s = 1) against s = 0.5 (two cells per cluster on average) and the
// chosen s = 0.2, under the same legalization (Flow 4 pipeline).
type AblationResult struct {
	Scale float64
	// Per sweep point (s = 1.0, 0.5, 0.2): mean ILP runtime reduction vs
	// unclustered (%), displacement overhead (%), HPWL overhead (%).
	SValues       []float64
	RuntimeCut    []float64
	DispOverhead  []float64
	HPWLOverhead  []float64
	TestcaseCount int
}

// Ablation quantifies how clustering trades ILP runtime against QoR.
func Ablation(ctx context.Context, cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Specs) == 26 {
		// The full suite at s=1 is slow; the paper's conclusion needs only
		// representative coverage.
		cfg.Specs = synth.ParameterSweepSpecs()
	}
	sValues := []float64{1.0, 0.5, 0.2}
	out := &AblationResult{
		Scale:        cfg.Scale,
		SValues:      sValues,
		RuntimeCut:   make([]float64, len(sValues)),
		DispOverhead: make([]float64, len(sValues)),
		HPWLOverhead: make([]float64, len(sValues)),
	}
	// Specs fan out on the shared pool; the percentage accumulators merge
	// serially in spec order so the averages stay deterministic.
	type series struct{ rts, disp, hpwl []float64 }
	all, err := par.MapOn(cfg.Flow.Pool, len(cfg.Specs), func(si int) (series, error) {
		spec := cfg.Specs[si]
		r, err := cfg.runner(ctx, spec)
		if err != nil {
			return series{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		rts := make([]float64, len(sValues))
		disp := make([]float64, len(sValues))
		hpwl := make([]float64, len(sValues))
		for vi, s := range sValues {
			r.Cfg.Core.S = s
			res, err := r.Run(ctx, flow.Flow4, false)
			if err != nil {
				return series{}, fmt.Errorf("exp: %s s=%.2f: %w", spec.Name(), s, err)
			}
			rts[vi] = res.Metrics.RAPTime.Seconds()
			disp[vi] = float64(res.Metrics.Displacement)
			hpwl[vi] = float64(res.Metrics.HPWL)
		}
		cfg.logf("ablation: %s rt=%v", spec.Name(), rts)
		return series{rts, disp, hpwl}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, s := range all {
		for vi := range sValues {
			if s.rts[0] > 0 {
				out.RuntimeCut[vi] += 100 * (1 - s.rts[vi]/s.rts[0])
			}
			if s.disp[0] > 0 {
				out.DispOverhead[vi] += 100 * (s.disp[vi]/s.disp[0] - 1)
			}
			if s.hpwl[0] > 0 {
				out.HPWLOverhead[vi] += 100 * (s.hpwl[vi]/s.hpwl[0] - 1)
			}
		}
		out.TestcaseCount++
	}
	for vi := range sValues {
		out.RuntimeCut[vi] /= float64(out.TestcaseCount)
		out.DispOverhead[vi] /= float64(out.TestcaseCount)
		out.HPWLOverhead[vi] /= float64(out.TestcaseCount)
	}
	return out, nil
}

// Table renders the ablation.
func (r *AblationResult) Table() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Clustering ablation (§IV-B.4, scale %.2f, %d testcases; vs unclustered ILP)", r.Scale, r.TestcaseCount),
		Headers: []string{"s", "ILP runtime cut (%)", "disp overhead (%)", "HPWL overhead (%)"},
	}
	for i, s := range r.SValues {
		t.Add(metrics.F(s, 2), metrics.F(r.RuntimeCut[i], 1),
			metrics.F(r.DispOverhead[i], 1), metrics.F(r.HPWLOverhead[i], 2))
	}
	return t
}

// ProfileResult is the runtime share study of §IV-B.3: the fraction of
// placement time spent solving the RAP vs legalizing, by testcase size
// class.
type ProfileResult struct {
	Scale float64
	// Size class thresholds scale with the experiment scale (the paper's
	// 3000/5000 minority instances at scale 1.0).
	SmallMax, MediumMax int
	// Per class: testcase count, mean RAP share (%), mean legalization
	// share (%).
	Count      [3]int
	RAPShare   [3]float64
	LegalShare [3]float64
}

// Profile measures Flow (5) stage runtimes by size class.
func Profile(ctx context.Context, cfg Config) (*ProfileResult, error) {
	cfg = cfg.withDefaults()
	out := &ProfileResult{
		Scale:     cfg.Scale,
		SmallMax:  int(3000 * cfg.Scale),
		MediumMax: int(5000 * cfg.Scale),
	}
	type sample struct {
		class      int
		rap, legal float64
		ok         bool
	}
	samples, err := par.MapOn(cfg.Flow.Pool, len(cfg.Specs), func(si int) (sample, error) {
		spec := cfg.Specs[si]
		r, err := cfg.runner(ctx, spec)
		if err != nil {
			return sample{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		res, err := r.Run(ctx, flow.Flow5, false)
		if err != nil {
			return sample{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		m := res.Metrics
		total := m.RAPTime.Seconds() + m.LegalTime.Seconds()
		if total <= 0 {
			return sample{}, nil
		}
		class := 2
		if m.NumMinority < out.SmallMax {
			class = 0
		} else if m.NumMinority <= out.MediumMax {
			class = 1
		}
		cfg.logf("profile: %s class=%d rap=%.2fs legal=%.2fs", spec.Name(), class,
			m.RAPTime.Seconds(), m.LegalTime.Seconds())
		return sample{class, 100 * m.RAPTime.Seconds() / total, 100 * m.LegalTime.Seconds() / total, true}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, s := range samples {
		if !s.ok {
			continue
		}
		out.Count[s.class]++
		out.RAPShare[s.class] += s.rap
		out.LegalShare[s.class] += s.legal
	}
	for c := 0; c < 3; c++ {
		if out.Count[c] > 0 {
			out.RAPShare[c] /= float64(out.Count[c])
			out.LegalShare[c] /= float64(out.Count[c])
		}
	}
	return out, nil
}

// Table renders the profile.
func (r *ProfileResult) Table() *metrics.Table {
	t := &metrics.Table{
		Title: fmt.Sprintf("Runtime profile (§IV-B.3, scale %.2f; size classes <%d / %d-%d / >%d minority)",
			r.Scale, r.SmallMax, r.SmallMax, r.MediumMax, r.MediumMax),
		Headers: []string{"class", "#cases", "RAP share (%)", "legalization share (%)"},
	}
	names := []string{"small", "medium", "large"}
	for c := 0; c < 3; c++ {
		t.Add(names[c], fmt.Sprint(r.Count[c]), metrics.F(r.RAPShare[c], 2), metrics.F(r.LegalShare[c], 2))
	}
	return t
}

// OverheadResult is §IV-B.6: the cost of the row-constraint relative to the
// unconstrained Flow (1), for the prior work and the proposed flow.
type OverheadResult struct {
	Scale float64
	// Percent overheads vs Flow (1).
	HPWLFlow2, HPWLFlow5   float64
	WLFlow2, WLFlow5       float64
	PowerFlow2, PowerFlow5 float64
}

// Overhead derives the §IV-B.6 comparison from already-computed Table IV
// and Table V results.
func Overhead(t4 *Table4Result, t5 *Table5Result) *OverheadResult {
	out := &OverheadResult{Scale: t4.Scale}
	var n4 float64
	for _, row := range t4.Rows {
		if row.HPWL[0] == 0 {
			continue
		}
		out.HPWLFlow2 += 100 * (float64(row.HPWL[1])/float64(row.HPWL[0]) - 1)
		out.HPWLFlow5 += 100 * (float64(row.HPWL[4])/float64(row.HPWL[0]) - 1)
		n4++
	}
	if n4 > 0 {
		out.HPWLFlow2 /= n4
		out.HPWLFlow5 /= n4
	}
	var n5 float64
	for _, row := range t5.Rows {
		if row.WL[0] == 0 || row.Power[0] == 0 {
			continue
		}
		out.WLFlow2 += 100 * (float64(row.WL[1])/float64(row.WL[0]) - 1)
		out.WLFlow5 += 100 * (float64(row.WL[3])/float64(row.WL[0]) - 1)
		out.PowerFlow2 += 100 * (row.Power[1]/row.Power[0] - 1)
		out.PowerFlow5 += 100 * (row.Power[3]/row.Power[0] - 1)
		n5++
	}
	if n5 > 0 {
		out.WLFlow2 /= n5
		out.WLFlow5 /= n5
		out.PowerFlow2 /= n5
		out.PowerFlow5 /= n5
	}
	return out
}

// Table renders the overhead study.
func (r *OverheadResult) Table() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Row-constraint overhead vs unconstrained Flow (1) (§IV-B.6, scale %.2f)", r.Scale),
		Headers: []string{"metric", "Flow(2) [10] (%)", "Flow(5) ours (%)"},
	}
	t.Add("post-place HPWL", metrics.F(r.HPWLFlow2, 1), metrics.F(r.HPWLFlow5, 1))
	t.Add("routed wirelength", metrics.F(r.WLFlow2, 1), metrics.F(r.WLFlow5, 1))
	t.Add("total power", metrics.F(r.PowerFlow2, 1), metrics.F(r.PowerFlow5, 1))
	return t
}
