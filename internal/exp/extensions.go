package exp

import (
	"context"
	"fmt"

	"mthplace/internal/flow"
	"mthplace/internal/heightswap"
	"mthplace/internal/metrics"
	"mthplace/internal/par"
	"mthplace/internal/synth"
)

// FinFlexRow compares the proposed customised rows (Flow 5) against the
// pre-determined FinFlex-style pattern on one testcase.
type FinFlexRow struct {
	Name        string
	Pattern     string
	HPWLFlow5   int64
	HPWLFinFlex int64
	WLFlow5     int64
	WLFinFlex   int64
}

// FinFlexResult is the future-work study: customised rows vs pre-determined
// patterns (§V of the paper suggests this comparison).
type FinFlexResult struct {
	Scale float64
	Rows  []FinFlexRow
	// NormHPWL/NormWL are FinFlex relative to Flow 5 (≥ 1 means the
	// customised rows win).
	NormHPWL float64
	NormWL   float64
}

// FinFlexStudy runs Flow (5) and the auto-fitted one-in-n pattern flow on
// every configured testcase, with routing.
func FinFlexStudy(ctx context.Context, cfg Config) (*FinFlexResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Specs) == 26 {
		cfg.Specs = synth.ParameterSweepSpecs()
	}
	out := &FinFlexResult{Scale: cfg.Scale}
	type rowOpt struct {
		row FinFlexRow
		ok  bool
	}
	rows, err := par.MapOn(cfg.Flow.Pool, len(cfg.Specs), func(si int) (rowOpt, error) {
		spec := cfg.Specs[si]
		r, err := cfg.runner(ctx, spec)
		if err != nil {
			return rowOpt{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		f5, err := r.Run(ctx, flow.Flow5, true)
		if err != nil {
			return rowOpt{}, fmt.Errorf("exp: %s flow5: %w", spec.Name(), err)
		}
		ff, err := r.RunFinFlex(ctx, nil, true)
		if err != nil {
			cfg.logf("finflex: %s skipped: %v", spec.Name(), err)
			return rowOpt{}, nil
		}
		row := FinFlexRow{
			Name:        spec.Name(),
			HPWLFlow5:   f5.Metrics.HPWL,
			HPWLFinFlex: ff.Metrics.HPWL,
			WLFlow5:     f5.Metrics.RoutedWL,
			WLFinFlex:   ff.Metrics.RoutedWL,
		}
		cfg.logf("finflex: %s hpwl %d vs %d", spec.Name(), row.HPWLFlow5, row.HPWLFinFlex)
		return rowOpt{row, true}, nil
	})
	if err != nil {
		return nil, err
	}
	var hr, wr [][]float64
	for _, ro := range rows {
		if !ro.ok {
			continue
		}
		out.Rows = append(out.Rows, ro.row)
		hr = append(hr, []float64{float64(ro.row.HPWLFlow5), float64(ro.row.HPWLFinFlex)})
		wr = append(wr, []float64{float64(ro.row.WLFlow5), float64(ro.row.WLFinFlex)})
	}
	if nh := metrics.NormalizedMean(hr, 0); len(nh) == 2 {
		out.NormHPWL = nh[1]
	}
	if nw := metrics.NormalizedMean(wr, 0); len(nw) == 2 {
		out.NormWL = nw[1]
	}
	return out, nil
}

// Table renders the study.
func (r *FinFlexResult) Table() *metrics.Table {
	t := &metrics.Table{
		Title: fmt.Sprintf("Customised rows (Flow 5) vs pre-determined pattern (FinFlex-style) — scale %.2f; "+
			"normalized FinFlex/Flow5: HPWL %.3f, routed WL %.3f", r.Scale, r.NormHPWL, r.NormWL),
		Headers: []string{"testcase", "HPWL(5)", "HPWL(ff)", "WL(5)", "WL(ff)"},
	}
	for _, row := range r.Rows {
		t.Add(row.Name,
			metrics.F(float64(row.HPWLFlow5)/1e5, 2), metrics.F(float64(row.HPWLFinFlex)/1e5, 2),
			metrics.F(float64(row.WLFlow5)/1e5, 2), metrics.F(float64(row.WLFinFlex)/1e5, 2))
	}
	return t
}

// SwapRow is one testcase's height-swap outcome.
type SwapRow struct {
	Name      string
	Swaps     int
	WNSBefore float64
	WNSAfter  float64
	TNSBefore float64
	TNSAfter  float64
}

// SwapResult is the height-swapping future-work study.
type SwapResult struct {
	Scale float64
	Rows  []SwapRow
}

// SwapStudy runs Flow (5) and then the track-height swapping pass on every
// configured testcase.
func SwapStudy(ctx context.Context, cfg Config) (*SwapResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Specs) == 26 {
		cfg.Specs = synth.ParameterSweepSpecs()
	}
	out := &SwapResult{Scale: cfg.Scale}
	rows, err := par.MapOn(cfg.Flow.Pool, len(cfg.Specs), func(si int) (SwapRow, error) {
		spec := cfg.Specs[si]
		r, err := cfg.runner(ctx, spec)
		if err != nil {
			return SwapRow{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		res, err := r.Run(ctx, flow.Flow5, false)
		if err != nil {
			return SwapRow{}, fmt.Errorf("exp: %s flow5: %w", spec.Name(), err)
		}
		rep, err := heightswap.Optimize(ctx, res.Design, res.Stack, heightswap.Options{})
		if err != nil {
			return SwapRow{}, fmt.Errorf("exp: %s swap: %w", spec.Name(), err)
		}
		cfg.logf("swap: %s swaps=%d wns %.1f -> %.1f", spec.Name(), rep.SwapsApplied, rep.WNSBefore, rep.WNSAfter)
		return SwapRow{
			Name:      spec.Name(),
			Swaps:     rep.SwapsApplied,
			WNSBefore: rep.WNSBefore,
			WNSAfter:  rep.WNSAfter,
			TNSBefore: rep.TNSBefore,
			TNSAfter:  rep.TNSAfter,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// Table renders the study.
func (r *SwapResult) Table() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Track-height swapping after Flow 5 (future work §V; scale %.2f; WNS/TNS in ns)", r.Scale),
		Headers: []string{"testcase", "swaps", "WNS before", "WNS after", "TNS before", "TNS after"},
	}
	for _, row := range r.Rows {
		t.Add(row.Name, fmt.Sprint(row.Swaps),
			metrics.F(row.WNSBefore/1000, 3), metrics.F(row.WNSAfter/1000, 3),
			metrics.F(row.TNSBefore/1000, 1), metrics.F(row.TNSAfter/1000, 1))
	}
	return t
}
