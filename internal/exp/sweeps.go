package exp

import (
	"context"
	"fmt"

	"mthplace/internal/flow"
	"mthplace/internal/metrics"
	"mthplace/internal/par"
	"mthplace/internal/synth"
)

// DefaultSValues are the clustering-resolution sweep points of Fig. 4(a).
var DefaultSValues = []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0}

// DefaultAlphaValues are the α sweep points of Fig. 4(b).
var DefaultAlphaValues = []float64{0, 0.25, 0.5, 0.75, 1.0}

// SweepResult holds one parameter sweep: per sweep point, the 0–1
// normalised-and-averaged metrics, as plotted in Fig. 4.
type SweepResult struct {
	Scale  float64
	Param  string
	Values []float64
	// NormDisp/NormHPWL/NormRuntime are averaged 0–1 normalised series
	// (runtime only for the s sweep).
	NormDisp    []float64
	NormHPWL    []float64
	NormRuntime []float64
	// Best is the recommended value (minimising disp+HPWL, runtime as
	// tiebreak) — the paper's red arrow.
	Best float64
}

// Fig4a sweeps the clustering resolution s on the 14 representative
// testcases, measuring post-placement displacement, HPWL and ILP runtime of
// the proposed flow under the prior work's legalization (Flow 4 pipeline),
// exactly the quantities of Fig. 4(a).
func Fig4a(ctx context.Context, cfg Config, values []float64) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Specs == nil || len(cfg.Specs) == 26 {
		cfg.Specs = synth.ParameterSweepSpecs()
	}
	if values == nil {
		values = DefaultSValues
	}
	out := &SweepResult{Scale: cfg.Scale, Param: "s", Values: values}
	// Specs fan out on the config's pool; the sweep over values stays
	// sequential per spec because it mutates the spec's runner config.
	type series struct{ disp, hpwl, rt []float64 }
	all, err := par.MapOn(cfg.Flow.Pool, len(cfg.Specs), func(si int) (series, error) {
		spec := cfg.Specs[si]
		r, err := cfg.runner(ctx, spec)
		if err != nil {
			return series{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		disp := make([]float64, len(values))
		hpwl := make([]float64, len(values))
		rt := make([]float64, len(values))
		for vi, s := range values {
			r.Cfg.Core.S = s
			res, err := r.Run(ctx, flow.Flow4, false)
			if err != nil {
				return series{}, fmt.Errorf("exp: %s s=%.2f: %w", spec.Name(), s, err)
			}
			disp[vi] = float64(res.Metrics.Displacement)
			hpwl[vi] = float64(res.Metrics.HPWL)
			rt[vi] = res.Metrics.RAPTime.Seconds()
			cfg.logf("fig4a: %s s=%.2f disp=%.0f hpwl=%.0f rap=%.2fs",
				spec.Name(), s, disp[vi], hpwl[vi], rt[vi])
		}
		return series{metrics.ZeroOne(disp), metrics.ZeroOne(hpwl), metrics.ZeroOne(rt)}, nil
	})
	if err != nil {
		return nil, err
	}
	var dispSeries, hpwlSeries, timeSeries [][]float64
	for _, s := range all {
		dispSeries = append(dispSeries, s.disp)
		hpwlSeries = append(hpwlSeries, s.hpwl)
		timeSeries = append(timeSeries, s.rt)
	}
	out.NormDisp = metrics.MeanColumns(dispSeries)
	out.NormHPWL = metrics.MeanColumns(hpwlSeries)
	out.NormRuntime = metrics.MeanColumns(timeSeries)
	out.Best = pickBest(values, out.NormDisp, out.NormHPWL, out.NormRuntime)
	return out, nil
}

// Fig4b sweeps α at fixed s, measuring displacement and HPWL (Fig. 4(b)).
func Fig4b(ctx context.Context, cfg Config, values []float64) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Specs == nil || len(cfg.Specs) == 26 {
		cfg.Specs = synth.ParameterSweepSpecs()
	}
	if values == nil {
		values = DefaultAlphaValues
	}
	out := &SweepResult{Scale: cfg.Scale, Param: "alpha", Values: values}
	type series struct{ disp, hpwl []float64 }
	all, err := par.MapOn(cfg.Flow.Pool, len(cfg.Specs), func(si int) (series, error) {
		spec := cfg.Specs[si]
		r, err := cfg.runner(ctx, spec)
		if err != nil {
			return series{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		disp := make([]float64, len(values))
		hpwl := make([]float64, len(values))
		for vi, a := range values {
			r.Cfg.Core.Cost.Alpha = a
			res, err := r.Run(ctx, flow.Flow4, false)
			if err != nil {
				return series{}, fmt.Errorf("exp: %s alpha=%.2f: %w", spec.Name(), a, err)
			}
			disp[vi] = float64(res.Metrics.Displacement)
			hpwl[vi] = float64(res.Metrics.HPWL)
			cfg.logf("fig4b: %s alpha=%.2f disp=%.0f hpwl=%.0f", spec.Name(), a, disp[vi], hpwl[vi])
		}
		return series{metrics.ZeroOne(disp), metrics.ZeroOne(hpwl)}, nil
	})
	if err != nil {
		return nil, err
	}
	var dispSeries, hpwlSeries [][]float64
	for _, s := range all {
		dispSeries = append(dispSeries, s.disp)
		hpwlSeries = append(hpwlSeries, s.hpwl)
	}
	out.NormDisp = metrics.MeanColumns(dispSeries)
	out.NormHPWL = metrics.MeanColumns(hpwlSeries)
	out.Best = pickBest(values, out.NormDisp, out.NormHPWL, nil)
	return out, nil
}

// pickBest selects the sweep value minimising disp+HPWL with runtime as a
// mild tiebreaker (×0.25), mirroring the paper's manual "red arrow" choice.
func pickBest(values, disp, hpwl, rt []float64) float64 {
	best, bestCost := values[0], 1e18
	for i := range values {
		c := disp[i] + hpwl[i]
		if rt != nil {
			c += 0.25 * rt[i]
		}
		if c < bestCost {
			best, bestCost = values[i], c
		}
	}
	return best
}

// Table renders a sweep.
func (r *SweepResult) Table() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Fig. 4 sweep of %s (scale %.2f; 0-1 normalised, averaged over testcases)", r.Param, r.Scale),
		Headers: []string{r.Param, "norm disp", "norm HPWL", "norm ILP time"},
	}
	for i, v := range r.Values {
		rt := "-"
		if r.NormRuntime != nil {
			rt = metrics.F(r.NormRuntime[i], 3)
		}
		mark := ""
		if v == r.Best {
			mark = "  <== chosen"
		}
		t.Add(metrics.F(v, 2), metrics.F(r.NormDisp[i], 3), metrics.F(r.NormHPWL[i], 3), rt+mark)
	}
	return t
}

// Fig5Point is one testcase's ILP scaling sample.
type Fig5Point struct {
	Name        string
	NumMinority int
	ILPSeconds  float64
}

// Fig5Result is the ILP-runtime-vs-minority-count scaling study.
type Fig5Result struct {
	Scale  float64
	Points []Fig5Point
	// Slope/Intercept/R of the least-squares line (paper: strong linear
	// correlation).
	Slope, Intercept, R float64
}

// Fig5 runs Flow (5)'s row assignment on every testcase and fits ILP
// runtime against the number of minority instances.
func Fig5(ctx context.Context, cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	out := &Fig5Result{Scale: cfg.Scale}
	points, err := par.MapOn(cfg.Flow.Pool, len(cfg.Specs), func(si int) (Fig5Point, error) {
		spec := cfg.Specs[si]
		r, err := cfg.runner(ctx, spec)
		if err != nil {
			return Fig5Point{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		res, err := r.Run(ctx, flow.Flow5, false)
		if err != nil {
			return Fig5Point{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		p := Fig5Point{
			Name:        spec.Name(),
			NumMinority: res.Metrics.NumMinority,
			ILPSeconds:  res.Metrics.RAPTime.Seconds(),
		}
		cfg.logf("fig5: %s minority=%d ilp=%.2fs", p.Name, p.NumMinority, p.ILPSeconds)
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	out.Points = points
	var xs, ys []float64
	for _, p := range out.Points {
		xs = append(xs, float64(p.NumMinority))
		ys = append(ys, p.ILPSeconds)
	}
	out.Slope, out.Intercept, out.R = metrics.LinearFit(xs, ys)
	return out, nil
}

// Table renders the scaling study.
func (r *Fig5Result) Table() *metrics.Table {
	t := &metrics.Table{
		Title: fmt.Sprintf("Fig. 5 — ILP runtime vs minority instances (scale %.2f; fit: t = %.3g·n %+.3g, r = %.3f)",
			r.Scale, r.Slope, r.Intercept, r.R),
		Headers: []string{"testcase", "#minority", "ILP time (s)"},
	}
	for _, p := range r.Points {
		t.Add(p.Name, fmt.Sprint(p.NumMinority), metrics.F(p.ILPSeconds, 3))
	}
	return t
}
