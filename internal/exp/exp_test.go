package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mthplace/internal/obs"
	"mthplace/internal/synth"
)

// tiny returns a config with two small testcases for fast experiment runs.
func tiny(t *testing.T) Config {
	t.Helper()
	var specs []synth.Spec
	for _, s := range synth.TableII() {
		if s.Name() == "aes_360" || s.Name() == "fpu_4500" {
			specs = append(specs, s)
		}
	}
	cfg := Config{Scale: 0.015, Specs: specs}
	cfg = cfg.withDefaults()
	cfg.Flow.Placer.OuterIters = 4
	cfg.Flow.Placer.SolveSweeps = 6
	return cfg
}

func TestTable2(t *testing.T) {
	res, err := Table2(context.Background(), tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Cells <= 0 || r.Nets <= r.Cells || r.MinorityPct <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
	out := res.Table().String()
	if !strings.Contains(out, "aes_360") {
		t.Error("table missing testcase name")
	}
}

func TestTable4(t *testing.T) {
	res, err := Table4(context.Background(), tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for k, d := range row.Disp {
			if d <= 0 {
				t.Errorf("%s: flow %d zero displacement", row.Name, k+2)
			}
		}
		for k, h := range row.HPWL {
			if h <= 0 {
				t.Errorf("%s: flow %d zero HPWL", row.Name, k+1)
			}
		}
	}
	// Normalized rows: Flow 2 column must be exactly 1.
	if res.NormDisp[0] != 1 || res.NormHPWL[1] != 1 || res.NormTime[0] != 1 {
		t.Errorf("normalisation base wrong: %v %v %v", res.NormDisp, res.NormHPWL, res.NormTime)
	}
	if !strings.Contains(res.Table().String(), "Normalized") {
		t.Error("table missing Normalized row")
	}
}

func TestTable5AndOverhead(t *testing.T) {
	cfg := tiny(t)
	t5, err := Table5(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t5.Rows {
		for k := range row.WL {
			if row.WL[k] <= 0 || row.Power[k] <= 0 {
				t.Errorf("%s: flow col %d missing WL/power", row.Name, k)
			}
			if row.WNS[k] > 0 || row.TNS[k] > 0 {
				t.Errorf("%s: positive WNS/TNS", row.Name)
			}
		}
	}
	if t5.NormWL[1] != 1 || t5.NormPower[1] != 1 {
		t.Error("table 5 normalisation base wrong")
	}
	t4, err := Table4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ov := Overhead(t4, t5)
	// Row-constraint flows should cost HPWL/WL vs unconstrained on average.
	if ov.HPWLFlow2 < -50 || ov.HPWLFlow2 > 300 {
		t.Errorf("implausible HPWL overhead %f", ov.HPWLFlow2)
	}
	if !strings.Contains(ov.Table().String(), "routed wirelength") {
		t.Error("overhead table malformed")
	}
}

func TestFig4aSweep(t *testing.T) {
	cfg := tiny(t)
	res, err := Fig4a(context.Background(), cfg, []float64{0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 || len(res.NormDisp) != 2 || len(res.NormHPWL) != 2 || len(res.NormRuntime) != 2 {
		t.Fatalf("series sizes wrong: %+v", res)
	}
	for _, v := range append(append([]float64{}, res.NormDisp...), res.NormHPWL...) {
		if v < 0 || v > 1 {
			t.Errorf("normalised value %f out of [0,1]", v)
		}
	}
	if res.Best != 0.2 && res.Best != 0.6 {
		t.Errorf("Best = %f not a sweep value", res.Best)
	}
	if !strings.Contains(res.Table().String(), "chosen") {
		t.Error("sweep table missing chosen marker")
	}
}

func TestFig4bSweep(t *testing.T) {
	cfg := tiny(t)
	res, err := Fig4b(context.Background(), cfg, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if res.Param != "alpha" || len(res.NormDisp) != 2 {
		t.Fatalf("bad result %+v", res)
	}
	if res.NormRuntime != nil {
		t.Error("alpha sweep must not report runtime")
	}
}

func TestFig5(t *testing.T) {
	cfg := tiny(t)
	res, err := Fig5(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.NumMinority <= 0 || p.ILPSeconds < 0 {
			t.Errorf("bad point %+v", p)
		}
	}
}

func TestAblation(t *testing.T) {
	cfg := tiny(t)
	res, err := Ablation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestcaseCount != 2 {
		t.Fatalf("count = %d", res.TestcaseCount)
	}
	// s = 1.0 is the reference: zero runtime cut and zero overheads.
	if res.RuntimeCut[0] != 0 || res.DispOverhead[0] != 0 || res.HPWLOverhead[0] != 0 {
		t.Errorf("reference row not zero: %+v", res)
	}
}

func TestProfile(t *testing.T) {
	cfg := tiny(t)
	res, err := Profile(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Count[0] + res.Count[1] + res.Count[2]
	if total != 2 {
		t.Fatalf("classified %d of 2", total)
	}
	for c := 0; c < 3; c++ {
		if res.Count[c] == 0 {
			continue
		}
		sum := res.RAPShare[c] + res.LegalShare[c]
		if sum < 99 || sum > 101 {
			t.Errorf("class %d shares sum to %f", c, sum)
		}
	}
}

func TestConfigLogging(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny(t)
	cfg.Log = obs.NewCLILogger(&buf, false, false)
	if _, err := Table2(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "table2:") {
		t.Error("progress log missing")
	}
}
