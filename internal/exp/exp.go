// Package exp drives the reproduction of every table and figure in the
// paper's evaluation (§IV): Table II (testcases), Table IV (post-placement),
// Table V (post-route), Fig. 4 (parameter sweeps), Fig. 5 (ILP runtime
// scaling), and the §IV-B ablations (clustering impact, runtime profile,
// overhead vs the unconstrained placement).
//
// Experiments run at a configurable design scale (Config.Scale): 1.0
// regenerates paper-size designs; the recorded results in EXPERIMENTS.md
// state the scale they were produced at. Scaling shrinks every testcase by
// the same factor and preserves minority fractions, connectivity statistics
// and utilization, so flow-vs-flow comparisons keep their shape.
package exp

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"mthplace/internal/celllib"
	"mthplace/internal/flow"
	"mthplace/internal/metrics"
	"mthplace/internal/par"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies every testcase's cell count (default 0.15).
	Scale float64
	// Seed for the synthetic generator (default 1).
	Seed int64
	// Specs are the testcases (default: all of Table II).
	Specs []synth.Spec
	// Flow overrides stage options (zero value = paper defaults).
	Flow flow.Config
	// Log receives per-testcase progress; nil discards it.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.15
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Specs == nil {
		c.Specs = synth.TableII()
	}
	if c.Flow.FencePasses == 0 {
		jobs, backend := c.Flow.Jobs, c.Flow.Core.Solve.Backend
		c.Flow = flow.DefaultConfig()
		c.Flow.Jobs = jobs
		c.Flow.Core.Solve.Backend = backend
	}
	c.Flow.Synth.Scale = c.Scale
	c.Flow.Synth.Seed = c.Seed
	// Experiment drivers fan the per-spec loops out on the config's pool;
	// resolve it once so every runner shares the same scoped bound (no
	// global par.SetJobs side effect).
	c.Flow.Pool = c.Flow.EffectivePool()
	return c
}

// logf emits one progress line through the structured logger. Specs run
// concurrently, so line order may vary with completion order; result tables
// never do (rows are collected in spec order). slog handlers serialise
// their writes, so no extra mutex is needed.
func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log.Info(fmt.Sprintf(format, args...))
	}
}

// runner builds the shared starting point for one spec.
func (c Config) runner(ctx context.Context, spec synth.Spec) (*flow.Runner, error) {
	return flow.NewRunner(ctx, spec, c.Flow)
}

// ---------------------------------------------------------------- Table II

// Table2Row reports one generated testcase's statistics.
type Table2Row struct {
	Name        string
	ClockPs     float64
	Cells       int
	MinorityPct float64
	Nets        int
}

// Table2Result is the regenerated Table II.
type Table2Result struct {
	Scale float64
	Rows  []Table2Row
}

// Table2 regenerates the testcase suite and reports its statistics. Specs
// run concurrently on the config's pool; rows come back in spec order.
func Table2(ctx context.Context, cfg Config) (*Table2Result, error) {
	cfg = cfg.withDefaults()
	tc := tech.Default()
	out := &Table2Result{Scale: cfg.Scale}
	rows, err := par.MapOn(cfg.Flow.Pool, len(cfg.Specs), func(si int) (Table2Row, error) {
		if err := ctx.Err(); err != nil {
			return Table2Row{}, err
		}
		spec := cfg.Specs[si]
		lib := celllib.New(tc)
		d, err := synth.Generate(tc, lib, spec, cfg.Flow.Synth)
		if err != nil {
			return Table2Row{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		st := d.ComputeStats()
		cfg.logf("table2: %s cells=%d 7.5T=%.2f%% nets=%d", spec.Name(), st.Cells, st.MinorityPct, st.Nets)
		return Table2Row{
			Name:        spec.Name(),
			ClockPs:     spec.ClockPs,
			Cells:       st.Cells,
			MinorityPct: st.MinorityPct,
			Nets:        st.Nets,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// Table renders the result.
func (r *Table2Result) Table() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Table II — testcase specifications (scale %.2f)", r.Scale),
		Headers: []string{"bench", "clock(ps)", "#cells", "7.5T(%)", "#nets"},
	}
	for _, row := range r.Rows {
		t.Add(row.Name, metrics.F(row.ClockPs, 0), fmt.Sprint(row.Cells),
			metrics.F(row.MinorityPct, 2), fmt.Sprint(row.Nets))
	}
	return t
}

// ---------------------------------------------------------------- Table IV

// Table4Row holds one testcase's post-placement metrics for the five flows.
type Table4Row struct {
	Name string
	// Disp for flows 2..5 (Flow 1 is the zero reference).
	Disp [4]int64
	// HPWL for flows 1..5.
	HPWL [5]int64
	// Time (placement-stage total) for flows 2..5.
	Time [4]time.Duration
	// Degraded marks flows 2..5 whose solve settled below the proven ILP
	// optimum (anytime incumbent or greedy fallback); the rendered table
	// flags them with '*'.
	Degraded [4]bool
}

// Table4Result is the regenerated Table IV.
type Table4Result struct {
	Scale float64
	Rows  []Table4Row
	// NormDisp, NormHPWL, NormTime are the paper-style normalized rows
	// (Flow 2 = 1.0; HPWL normalisation also reports Flow 1).
	NormDisp [4]float64
	NormHPWL [5]float64
	NormTime [4]float64
}

// Table4 runs flows (1)–(5) post-placement on every testcase. Testcases run
// concurrently on the shared pool (the flows within one testcase stay
// sequential — they share the runner); the ordered collector keeps rows and
// the normalisation inputs in spec order regardless of completion order.
func Table4(ctx context.Context, cfg Config) (*Table4Result, error) {
	cfg = cfg.withDefaults()
	out := &Table4Result{Scale: cfg.Scale}
	rows, err := par.MapOn(cfg.Flow.Pool, len(cfg.Specs), func(si int) (Table4Row, error) {
		spec := cfg.Specs[si]
		r, err := cfg.runner(ctx, spec)
		if err != nil {
			return Table4Row{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		results, err := r.RunAll(ctx, false)
		if err != nil {
			return Table4Row{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		row := Table4Row{Name: spec.Name()}
		for k, id := range []flow.ID{flow.Flow2, flow.Flow3, flow.Flow4, flow.Flow5} {
			row.Disp[k] = results[id].Metrics.Displacement
			row.Time[k] = results[id].Metrics.TotalTime
			row.Degraded[k] = results[id].Metrics.SolveDegraded
		}
		for k, id := range []flow.ID{flow.Flow1, flow.Flow2, flow.Flow3, flow.Flow4, flow.Flow5} {
			row.HPWL[k] = results[id].Metrics.HPWL
		}
		cfg.logf("table4: %s disp2=%d disp4=%d hpwl2=%d hpwl5=%d",
			spec.Name(), row.Disp[0], row.Disp[2], row.HPWL[1], row.HPWL[4])
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	var dispRows, hpwlRows, timeRows [][]float64
	for _, row := range out.Rows {
		dispRows = append(dispRows, toF64(row.Disp[:]))
		hpwlRows = append(hpwlRows, toF64(row.HPWL[:]))
		tr := make([]float64, 4)
		for k := range row.Time {
			tr[k] = row.Time[k].Seconds()
		}
		timeRows = append(timeRows, tr)
	}
	copy(out.NormDisp[:], metrics.NormalizedMean(dispRows, 0))
	copy(out.NormHPWL[:], metrics.NormalizedMean(hpwlRows, 1))
	copy(out.NormTime[:], metrics.NormalizedMean(timeRows, 0))
	return out, nil
}

func toF64(vs []int64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(v)
	}
	return out
}

// Table renders the result.
func (r *Table4Result) Table() *metrics.Table {
	t := &metrics.Table{
		Title: fmt.Sprintf("Table IV — post-placement results (scale %.2f; Disp/HPWL in 1e5 DBU, time in s)", r.Scale),
		Headers: []string{"testcase",
			"D(2)", "D(3)", "D(4)", "D(5)",
			"H(1)", "H(2)", "H(3)", "H(4)", "H(5)",
			"T(2)", "T(3)", "T(4)", "T(5)"},
	}
	anyDegraded := false
	for _, row := range r.Rows {
		cells := []string{row.Name}
		for k, v := range row.Disp {
			c := metrics.F(float64(v)/1e5, 2)
			if row.Degraded[k] {
				c += "*"
				anyDegraded = true
			}
			cells = append(cells, c)
		}
		for _, v := range row.HPWL {
			cells = append(cells, metrics.F(float64(v)/1e5, 2))
		}
		for _, v := range row.Time {
			cells = append(cells, metrics.F(v.Seconds(), 2))
		}
		t.Add(cells...)
	}
	if anyDegraded {
		t.Title += "; * = degraded solve (anytime/greedy rung, not proven optimal)"
	}
	norm := []string{"Normalized"}
	for _, v := range r.NormDisp {
		norm = append(norm, metrics.F(v, 3))
	}
	for _, v := range r.NormHPWL {
		norm = append(norm, metrics.F(v, 3))
	}
	for _, v := range r.NormTime {
		norm = append(norm, metrics.F(v, 3))
	}
	t.Add(norm...)
	return t
}

// ---------------------------------------------------------------- Table V

// Table5Row holds one testcase's post-route metrics for flows 1, 2, 4, 5.
type Table5Row struct {
	Name  string
	WL    [4]int64 // routed wirelength, DBU
	Power [4]float64
	WNS   [4]float64 // ps (negative = violating)
	TNS   [4]float64
}

// Table5Result is the regenerated Table V.
type Table5Result struct {
	Scale     float64
	Rows      []Table5Row
	NormWL    [4]float64
	NormPower [4]float64
	NormWNS   [4]float64
	NormTNS   [4]float64
}

var table5Flows = []flow.ID{flow.Flow1, flow.Flow2, flow.Flow4, flow.Flow5}

// Table5 runs flows (1), (2), (4), (5) with routing and signoff on every
// testcase. Testcases fan out on the shared pool; the ordered collector
// keeps rows in spec order.
func Table5(ctx context.Context, cfg Config) (*Table5Result, error) {
	cfg = cfg.withDefaults()
	out := &Table5Result{Scale: cfg.Scale}
	rows, err := par.MapOn(cfg.Flow.Pool, len(cfg.Specs), func(si int) (Table5Row, error) {
		spec := cfg.Specs[si]
		r, err := cfg.runner(ctx, spec)
		if err != nil {
			return Table5Row{}, fmt.Errorf("exp: %s: %w", spec.Name(), err)
		}
		row := Table5Row{Name: spec.Name()}
		for k, id := range table5Flows {
			res, err := r.Run(ctx, id, true)
			if err != nil {
				return Table5Row{}, fmt.Errorf("exp: %s %v: %w", spec.Name(), id, err)
			}
			row.WL[k] = res.Metrics.RoutedWL
			row.Power[k] = res.Metrics.PowerMW
			row.WNS[k] = res.Metrics.WNSps
			row.TNS[k] = res.Metrics.TNSps
		}
		cfg.logf("table5: %s wl=(%d,%d,%d,%d) p=(%.1f,%.1f,%.1f,%.1f)",
			spec.Name(), row.WL[0], row.WL[1], row.WL[2], row.WL[3],
			row.Power[0], row.Power[1], row.Power[2], row.Power[3])
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	var wlRows, pRows, wnsRows, tnsRows [][]float64
	for _, row := range out.Rows {
		wlRows = append(wlRows, toF64(row.WL[:]))
		pRows = append(pRows, row.Power[:])
		// WNS/TNS are negative-or-zero; normalise magnitudes like the paper
		// (smaller magnitude is better, Flow 2 = 1).
		wnsRows = append(wnsRows, negMag(row.WNS[:]))
		tnsRows = append(tnsRows, negMag(row.TNS[:]))
	}
	copy(out.NormWL[:], metrics.NormalizedMean(wlRows, 1))
	copy(out.NormPower[:], metrics.NormalizedMean(pRows, 1))
	copy(out.NormWNS[:], metrics.NormalizedMean(wnsRows, 1))
	copy(out.NormTNS[:], metrics.NormalizedMean(tnsRows, 1))
	return out, nil
}

// negMag maps slacks to their violation magnitudes (≥0); a clean design
// contributes a tiny epsilon so the normalising division stays defined.
func negMag(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = -v
		if out[i] < 1e-9 {
			out[i] = 1e-9
		}
	}
	return out
}

// Table renders the result.
func (r *Table5Result) Table() *metrics.Table {
	t := &metrics.Table{
		Title: fmt.Sprintf("Table V — post-route results (scale %.2f; WL in 1e5 DBU, power mW, WNS/TNS ns)", r.Scale),
		Headers: []string{"testcase",
			"WL(1)", "WL(2)", "WL(4)", "WL(5)",
			"P(1)", "P(2)", "P(4)", "P(5)",
			"WNS(1)", "WNS(2)", "WNS(4)", "WNS(5)",
			"TNS(1)", "TNS(2)", "TNS(4)", "TNS(5)"},
	}
	for _, row := range r.Rows {
		cells := []string{row.Name}
		for _, v := range row.WL {
			cells = append(cells, metrics.F(float64(v)/1e5, 2))
		}
		for _, v := range row.Power {
			cells = append(cells, metrics.F(v, 1))
		}
		for _, v := range row.WNS {
			cells = append(cells, metrics.F(v/1000, 3))
		}
		for _, v := range row.TNS {
			cells = append(cells, metrics.F(v/1000, 1))
		}
		t.Add(cells...)
	}
	norm := []string{"Normalized"}
	for _, vs := range [][4]float64{r.NormWL, r.NormPower, r.NormWNS, r.NormTNS} {
		for _, v := range vs {
			norm = append(norm, metrics.F(v, 3))
		}
	}
	t.Add(norm...)
	return t
}
