// Package regions implements the region-based mixed track-height strategy
// of Fig. 1(a) (Dobre et al. [4]): the die is partitioned into one
// contiguous subregion per track-height, with breaker overhead between
// them, instead of interleaved row islands. It serves as the third
// comparator next to the row-based baseline [10] and the paper's
// customised-row flow — the paper (and [10]) argue row-based placement
// beats this region-based style on wirelength.
package regions

import (
	"fmt"
	"math"

	"mthplace/internal/netlist"
	"mthplace/internal/rowgrid"
	"mthplace/internal/tech"
)

// Options tune the partitioning.
type Options struct {
	// Fill is the target fill of the minority region (default 0.80).
	Fill float64
	// BreakerPairs is the number of empty pairs inserted between the two
	// regions to model breaker-cell overhead (default 1).
	BreakerPairs int
	// MinorityOnTop puts the minority region at the die top (default) or
	// bottom.
	MinorityOnTop bool
}

// DefaultOptions models one breaker pair and 80% region fill.
func DefaultOptions() Options {
	return Options{Fill: 0.80, BreakerPairs: 1, MinorityOnTop: true}
}

// Partition is the computed region structure.
type Partition struct {
	Stack *rowgrid.MixedStack
	// MinorityPairs is the contiguous run of tall pairs (the minority
	// subregion).
	MinorityPairs []int
	// BreakerPairs are the empty pairs between the regions (no cells may
	// be placed there).
	BreakerPairs []int
	// SeedY maps minority instances to the region bottom.
	SeedY map[int32]int64
}

// Build partitions the die for the design's minority demand: a contiguous
// block of tall pairs sized at the given fill, breaker pairs next to it,
// and short pairs elsewhere. It fails when the die restack cannot host the
// region (the breaker overhead can push an already-tight die over).
func Build(d *netlist.Design, g rowgrid.PairGrid, opt Options) (*Partition, error) {
	if opt.Fill <= 0 || opt.Fill > 1 {
		opt.Fill = 0.80
	}
	if opt.BreakerPairs < 0 {
		opt.BreakerPairs = 1
	}
	minority := d.MinorityInstances()
	var minW int64
	for _, i := range minority {
		minW += d.Insts[i].TrueMaster().Width
	}
	capacity := 2 * g.Width()
	nTall := int(math.Ceil(float64(minW) / (float64(capacity) * opt.Fill)))
	if nTall < 1 && len(minority) > 0 {
		nTall = 1
	}
	// The restack budget may be tighter than the fill target; pack the
	// region denser (up to 100% fill) rather than fail, and only error when
	// the demand genuinely cannot fit.
	if maxTall := rowgrid.MaxMinorityPairs(d.Die, g.N, d.Tech); nTall > maxTall {
		if minW > int64(maxTall)*capacity {
			return nil, fmt.Errorf("regions: minority width %d exceeds %d-pair budget", minW, maxTall)
		}
		nTall = maxTall
	}
	if nTall+opt.BreakerPairs > g.N {
		return nil, fmt.Errorf("regions: %d tall + %d breaker pairs exceed %d total", nTall, opt.BreakerPairs, g.N)
	}

	hs := make([]tech.TrackHeight, g.N)
	part := &Partition{SeedY: make(map[int32]int64, len(minority))}
	if opt.MinorityOnTop {
		for k := 0; k < nTall; k++ {
			idx := g.N - 1 - k
			hs[idx] = tech.Tall7p5T
			part.MinorityPairs = append(part.MinorityPairs, idx)
		}
		for k := 0; k < opt.BreakerPairs; k++ {
			part.BreakerPairs = append(part.BreakerPairs, g.N-nTall-1-k)
		}
	} else {
		for k := 0; k < nTall; k++ {
			hs[k] = tech.Tall7p5T
			part.MinorityPairs = append(part.MinorityPairs, k)
		}
		for k := 0; k < opt.BreakerPairs; k++ {
			part.BreakerPairs = append(part.BreakerPairs, nTall+k)
		}
	}
	ms, err := rowgrid.Stack(d.Die, hs, d.Tech)
	if err != nil {
		return nil, fmt.Errorf("regions: %w", err)
	}
	part.Stack = ms
	// Seed every minority cell at the pair of the region nearest its
	// current y (they all live in one contiguous region anyway).
	for _, i := range minority {
		in := d.Insts[i]
		cy := in.Pos.Y + in.Height()/2
		if p, ok := ms.NearestPairOf(tech.Tall7p5T, cy); ok {
			part.SeedY[i] = ms.Y[p]
		}
	}
	return part, nil
}

// BreakerSet returns the breaker pairs as a set for legalization row
// filtering.
func (p *Partition) BreakerSet() map[int]bool {
	out := make(map[int]bool, len(p.BreakerPairs))
	for _, b := range p.BreakerPairs {
		out[b] = true
	}
	return out
}
