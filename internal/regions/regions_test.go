package regions

import (
	"context"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/lefdef"
	"mthplace/internal/legalize"
	"mthplace/internal/netlist"
	"mthplace/internal/placer"
	"mthplace/internal/rowgrid"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func placedDesign(t *testing.T, scale float64) (*netlist.Design, rowgrid.PairGrid) {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = scale
	d, err := synth.Generate(tc, lib, synth.TableII()[3], opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lefdef.ApplyMLEF(d)
	if err != nil {
		t.Fatal(err)
	}
	placer.Global(d, placer.Options{OuterIters: 4, SolveSweeps: 6})
	g := rowgrid.Uniform(d.Die, m.PairH)
	if err := legalize.Uniform(d, g); err != nil {
		t.Fatal(err)
	}
	return d, g
}

func TestBuildContiguousRegion(t *testing.T) {
	d, g := placedDesign(t, 0.03)
	part, err := Build(d, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Minority pairs contiguous at the top.
	tall := part.Stack.PairsOf(tech.Tall7p5T)
	if len(tall) != len(part.MinorityPairs) {
		t.Fatalf("stack tall pairs %d != partition %d", len(tall), len(part.MinorityPairs))
	}
	for k := 1; k < len(tall); k++ {
		if tall[k] != tall[k-1]+1 {
			t.Fatalf("minority region not contiguous: %v", tall)
		}
	}
	if tall[len(tall)-1] != part.Stack.NumPairs()-1 {
		t.Errorf("minority region not at the top: %v", tall)
	}
	// Breakers adjacent to the region, of short height.
	for _, b := range part.BreakerPairs {
		if part.Stack.Heights[b] != tech.Short6T {
			t.Errorf("breaker pair %d is tall", b)
		}
	}
	// Every minority cell has a seed inside the region.
	for _, i := range d.MinorityInstances() {
		y, ok := part.SeedY[i]
		if !ok {
			t.Fatalf("cell %d unseeded", i)
		}
		found := false
		for _, p := range tall {
			if part.Stack.Y[p] == y {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d not a region pair bottom", y)
		}
	}
}

func TestBuildBottomRegion(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	opt := DefaultOptions()
	opt.MinorityOnTop = false
	part, err := Build(d, g, opt)
	if err != nil {
		t.Fatal(err)
	}
	tall := part.Stack.PairsOf(tech.Tall7p5T)
	if tall[0] != 0 {
		t.Errorf("bottom region must start at pair 0: %v", tall)
	}
}

func TestRegionLegalizationKeepsBreakersEmpty(t *testing.T) {
	d, g := placedDesign(t, 0.03)
	part, err := Build(d, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := lefdef.Revert(d); err != nil {
		t.Fatal(err)
	}
	if err := legalize.FenceAwareExcluding(context.Background(), d, part.Stack, part.SeedY, 2, part.BreakerSet()); err != nil {
		t.Fatal(err)
	}
	if err := legalize.VerifyMixed(d, part.Stack); err != nil {
		t.Fatalf("region placement illegal: %v", err)
	}
	breakers := part.BreakerSet()
	for i, in := range d.Insts {
		for b := range breakers {
			lo, hi := part.Stack.RowsOfPair(b)
			if in.Pos.Y == lo || in.Pos.Y == hi {
				t.Fatalf("inst %d placed in breaker pair %d", i, b)
			}
		}
	}
}

func TestBuildRejectsImpossible(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	opt := DefaultOptions()
	opt.BreakerPairs = g.N // absurd breaker demand
	if _, err := Build(d, g, opt); err == nil {
		t.Error("oversized breaker demand must error")
	}
}
