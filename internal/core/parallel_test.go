package core

import (
	"context"
	"math"
	"testing"

	"mthplace/internal/par"
)

// ctxWithJobs returns a context carrying a private pool bounded to jobs
// workers — the scoped replacement for the old global par.SetJobs knob, so
// the equivalence tests no longer mutate process state.
func ctxWithJobs(jobs int) context.Context {
	return par.WithPool(context.Background(), par.NewPool(jobs))
}

// TestBuildModelParallelEquivalence asserts the tentpole determinism
// guarantee for the RAP cost model: the f_cr matrix is bit-identical at
// jobs=1 and jobs=8, because each cluster row is computed by exactly one
// worker in the sequential member/row/net order.
func TestBuildModelParallelEquivalence(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	cl, err := BuildClusters(context.Background(), d, 0.3, 20)
	if err != nil {
		t.Fatal(err)
	}
	nMinR := nMinRFor(d, g)

	m1, err := BuildModel(ctxWithJobs(1), d, g, cl, nMinR, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	m8, err := BuildModel(ctxWithJobs(8), d, g, cl, nMinR, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}

	if m1.Cap != m8.Cap || m1.NR != m8.NR || m1.NminR != m8.NminR {
		t.Fatalf("model headers differ: %+v vs %+v", m1, m8)
	}
	if len(m1.Cost) != len(m8.Cost) {
		t.Fatalf("cost rows %d vs %d", len(m1.Cost), len(m8.Cost))
	}
	for c := range m1.Cost {
		for r := range m1.Cost[c] {
			if math.Float64bits(m1.Cost[c][r]) != math.Float64bits(m8.Cost[c][r]) {
				t.Fatalf("f_cr[%d][%d] not bit-identical: %v vs %v", c, r, m1.Cost[c][r], m8.Cost[c][r])
			}
		}
	}
	for r := range m1.PairCenterY {
		if m1.PairCenterY[r] != m8.PairCenterY[r] {
			t.Fatalf("pair center %d differs", r)
		}
	}
}

// TestBuildClustersParallelEquivalence covers the composed path the flows
// take (k-means inside BuildClusters) at both worker counts.
func TestBuildClustersParallelEquivalence(t *testing.T) {
	d, _ := placedDesign(t, 0.02)
	a, err := BuildClusters(ctxWithJobs(1), d, 0.25, 25)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildClusters(ctxWithJobs(8), d, 0.25, 25)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() {
		t.Fatalf("cluster counts %d vs %d", a.N(), b.N())
	}
	for c := 0; c < a.N(); c++ {
		if a.Width[c] != b.Width[c] || len(a.Members[c]) != len(b.Members[c]) {
			t.Fatalf("cluster %d differs", c)
		}
		for mi := range a.Members[c] {
			if a.Members[c][mi] != b.Members[c][mi] {
				t.Fatalf("cluster %d member %d differs", c, mi)
			}
		}
		if math.Float64bits(a.CenterX[c]) != math.Float64bits(b.CenterX[c]) ||
			math.Float64bits(a.CenterY[c]) != math.Float64bits(b.CenterY[c]) {
			t.Fatalf("cluster %d centroid not bit-identical", c)
		}
	}
}
