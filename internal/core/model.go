// Package core implements the paper's primary contribution: the Row
// Assignment Problem (RAP) for mixed track-height row-constraint placement.
//
// Given an unconstrained initial placement of a design in mLEF (uniform
// height) form on a uniform row-pair grid, the RAP decides which pairs
// become minority (7.5T) rows and which minority-cell cluster goes to which
// pair, minimising
//
//	f_cr = α·Disp(c,r) + (1−α)·ΔHPWL(c,r)                    (Eq. 2)
//
// subject to unique assignment (Eq. 3), row capacity (Eq. 4) and the
// minority-row count N_minR (Eq. 5). The ILP of Eqs. (1)–(5) is linearised
// with row indicator variables and solved exactly with the internal MILP
// solver; 2-D k-means clustering of the minority cells (§III-B) keeps the
// variable count N_C × N_R small.
package core

import (
	"context"
	"fmt"
	"math"

	"mthplace/internal/cluster"
	"mthplace/internal/errs"
	"mthplace/internal/geom"
	"mthplace/internal/netlist"
	"mthplace/internal/obs"
	"mthplace/internal/par"
	"mthplace/internal/rowgrid"
	"mthplace/internal/tech"
)

// Clusters groups the minority cells for the ILP (§III-B).
type Clusters struct {
	// Members lists minority instance indices per cluster.
	Members [][]int32
	// Width is the summed *original* (pre-mLEF) cell width per cluster —
	// the paper uses original widths so the capacity constraint reflects
	// the final mixed-height geometry.
	Width []int64
	// CenterX/CenterY are cluster centroids in the initial placement.
	CenterX, CenterY []float64
}

// N returns the cluster count.
func (c *Clusters) N() int { return len(c.Members) }

// BuildClusters clusters the design's minority cells with 2-D k-means at
// clustering resolution s (N_C = max(1, round(s·N_minC))), seeding centroids
// on the paper's p×p grid. s ≥ 1 degenerates to one cell per cluster
// (exactly the unclustered ILP); s ≤ 0 is an error.
//
// Because every cluster is assigned to a single row pair, a cluster must be
// vertically compact: its members travel together to one y. The clustering
// therefore weighs the y coordinate so that the expected cluster extent is
// about one pair height — with an isotropic p×p grid over the die a cluster
// spans ≈ N_R/p pairs, so y is stretched by that factor before k-means
// (pure geometry rescaling; centroids are reported in real coordinates).
func BuildClusters(ctx context.Context, d *netlist.Design, s float64, kmeansIters int) (*Clusters, error) {
	if s <= 0 {
		return nil, fmt.Errorf("core: clustering resolution %f must be positive", s)
	}
	minority := d.MinorityInstances()
	if len(minority) == 0 {
		return &Clusters{}, nil
	}
	if kmeansIters <= 0 {
		kmeansIters = 30
	}
	nC := int(math.Round(s * float64(len(minority))))
	if nC < 1 {
		nC = 1
	}
	if nC > len(minority) {
		nC = len(minority)
	}
	// Anisotropy: stretch y so clusters come out about one pair tall.
	pairH := float64(d.Tech.MLEFPairHeight(d.MinorityAreaFraction()))
	nR := float64(d.Die.H()) / pairH
	p := math.Ceil(math.Sqrt(float64(nC)))
	yw := nR / p
	if yw < 1 {
		yw = 1
	}
	pts := make([]cluster.Point2, len(minority))
	for k, i := range minority {
		c := d.Insts[i].Rect().Center()
		pts[k] = cluster.Point2{X: float64(c.X), Y: float64(c.Y) * yw}
	}
	var res *cluster.Result
	if nC == len(minority) {
		// Degenerate: identity clustering, skip Lloyd iterations.
		res = &cluster.Result{Assign: make([]int, len(minority)), Centroids: make([]cluster.Point2, nC), Sizes: make([]int, nC)}
		for k := range minority {
			res.Assign[k] = k
			res.Centroids[k] = pts[k]
			res.Sizes[k] = 1
		}
	} else {
		res = cluster.KMeans2D(ctx, pts, nC, kmeansIters)
		// KMeans2D stops within one Lloyd iteration of a cancel; its
		// partial result must not feed the ILP.
		if err := errs.FromContext(ctx); err != nil {
			return nil, fmt.Errorf("core: clustering: %w", err)
		}
	}
	out := &Clusters{
		Members: make([][]int32, res.K()),
		Width:   make([]int64, res.K()),
		CenterX: make([]float64, res.K()),
		CenterY: make([]float64, res.K()),
	}
	for k, i := range minority {
		c := res.Assign[k]
		out.Members[c] = append(out.Members[c], i)
		out.Width[c] += d.Insts[i].TrueMaster().Width
	}
	for c := 0; c < res.K(); c++ {
		out.CenterX[c] = res.Centroids[c].X
		out.CenterY[c] = res.Centroids[c].Y / yw
	}
	// Drop empty clusters (k-means reseeding should prevent them, but the
	// ILP must never see a zero-width cluster).
	w := 0
	for c := 0; c < out.N(); c++ {
		if len(out.Members[c]) == 0 {
			continue
		}
		out.Members[w] = out.Members[c]
		out.Width[w] = out.Width[c]
		out.CenterX[w] = out.CenterX[c]
		out.CenterY[w] = out.CenterY[c]
		w++
	}
	out.Members = out.Members[:w]
	out.Width = out.Width[:w]
	out.CenterX = out.CenterX[:w]
	out.CenterY = out.CenterY[:w]
	return out, nil
}

// Model is the prepared RAP instance: the f_cr cost matrix and capacities.
type Model struct {
	Clusters *Clusters
	// NR is the number of row pairs.
	NR int
	// NminR is the required minority pair count (Eq. 5).
	NminR int
	// Cost[c][r] = f_cr in DBU.
	Cost [][]float64
	// Cap is the row-pair capacity in DBU of cell width (two single rows).
	Cap int64
	// PairCenterY caches the uniform-grid pair centers.
	PairCenterY []int64
}

// CostParams tune the cost model.
type CostParams struct {
	// Alpha weights displacement against ΔHPWL (paper: 0.75).
	Alpha float64
	// CapacityFactor derates row capacity (1.0 = paper's w(r)).
	CapacityFactor float64
}

// DefaultCostParams mirror the paper's chosen parameters.
func DefaultCostParams() CostParams {
	return CostParams{Alpha: 0.75, CapacityFactor: 1.0}
}

// BuildModel computes the f_cr matrix for all clusters × pairs on the
// uniform grid. Displacement sums |y(r) − y(cell)| of the member cells;
// ΔHPWL sums, over each member cell's nets, the HPWL change when the cell
// moves vertically to pair r at unchanged x (§III-C).
func BuildModel(ctx context.Context, d *netlist.Design, g rowgrid.PairGrid, cl *Clusters, nMinR int, p CostParams) (*Model, error) {
	if p.Alpha < 0 || p.Alpha > 1 {
		return nil, fmt.Errorf("core: alpha %f out of [0,1]", p.Alpha)
	}
	if p.CapacityFactor <= 0 {
		p.CapacityFactor = 1
	}
	if g.N == 0 {
		return nil, fmt.Errorf("core: empty row grid")
	}
	if nMinR <= 0 || nMinR > g.N {
		return nil, fmt.Errorf("core: N_minR %d out of range (1..%d)", nMinR, g.N)
	}
	m := &Model{
		Clusters:    cl,
		NR:          g.N,
		NminR:       nMinR,
		Cap:         int64(float64(2*g.Width()) * p.CapacityFactor),
		Cost:        make([][]float64, cl.N()),
		PairCenterY: make([]int64, g.N),
	}
	for r := 0; r < g.N; r++ {
		m.PairCenterY[r] = g.PairCenterY(r)
	}
	// Capacity sanity: the chosen N_minR must be able to host every cluster.
	var totalW int64
	for _, w := range cl.Width {
		totalW += w
		if w > m.Cap {
			return nil, errs.Infeasible("core: cluster width %d exceeds row capacity %d (lower s)", w, m.Cap)
		}
	}
	if totalW > int64(nMinR)*m.Cap {
		return nil, errs.Infeasible("core: minority width %d exceeds %d rows × capacity %d", totalW, nMinR, m.Cap)
	}
	if err := errs.FromContext(ctx); err != nil {
		return nil, fmt.Errorf("core: cost model: %w", err)
	}
	span := obs.StartSpan(ctx, "core.buildmodel")
	span.SetArg("clusters", cl.N())
	span.SetArg("rows", g.N)
	defer span.End()

	// Every cluster's cost row is independent of the others, so the outer
	// loop runs on the context's worker pool. Each worker precomputes its
	// own members' net boxes (clusters partition the minority cells, so no
	// box is computed twice) and scans rows and members in the same order
	// the sequential path would — the per-(c,r) float accumulation order is
	// fixed, making the matrix bit-identical at any pool bound.
	par.FromContext(ctx).For(cl.N(), func(c int) {
		boxes := make([][]netBoxT, len(cl.Members[c]))
		for mi, i := range cl.Members[c] {
			boxes[mi] = buildNetBoxes(d, i)
		}
		row := make([]float64, g.N)
		for r := 0; r < g.N; r++ {
			var disp, dhpwl float64
			for mi, i := range cl.Members[c] {
				in := d.Insts[i]
				cellCY := in.Pos.Y + in.Height()/2
				dy := m.PairCenterY[r] - cellCY
				disp += float64(geom.AbsInt64(dy))
				for _, nb := range boxes[mi] {
					dhpwl += float64(netDeltaHPWL(nb.othersRect(), nb.hasOther,
						nb.ownXLo, nb.ownXHi, nb.ownYLo, nb.ownYHi, dy))
				}
			}
			row[r] = p.Alpha*disp + (1-p.Alpha)*dhpwl
		}
		m.Cost[c] = row
	})
	return m, nil
}

// netBoxes as a standalone type so helpers stay testable.
type netBoxT struct {
	others         geom.Rect
	hasOther       bool
	ownXLo, ownXHi int64
	ownYLo, ownYHi int64
}

func (nb netBoxT) othersRect() geom.Rect { return nb.others }

// buildNetBoxes collects, for every non-clock net on instance i, the
// bounding box of the other pins and the instance's own pin extents.
func buildNetBoxes(d *netlist.Design, i int32) []netBoxT {
	in := d.Insts[i]
	seen := map[int32]bool{}
	var out []netBoxT
	for _, net := range in.PinNets {
		if net == netlist.NoNet || net == d.ClockNet || seen[net] {
			continue
		}
		seen[net] = true
		var others geom.BBox
		var own geom.BBox
		for _, ref := range d.Nets[net].Pins {
			p := d.PinPos(ref)
			if !ref.IsPort() && ref.Inst == i {
				own.Extend(p)
				continue
			}
			others.Extend(p)
		}
		if !own.Valid() {
			continue
		}
		or := own.Rect()
		out = append(out, netBoxT{
			others:   others.Rect(),
			hasOther: others.Valid(),
			ownXLo:   or.Lo.X, ownXHi: or.Hi.X,
			ownYLo: or.Lo.Y, ownYHi: or.Hi.Y,
		})
	}
	return out
}

// netDeltaHPWL returns the HPWL change of one net when the cell's own pins
// shift vertically by dy (x unchanged).
func netDeltaHPWL(others geom.Rect, hasOther bool, ownXLo, ownXHi, ownYLo, ownYHi, dy int64) int64 {
	if !hasOther {
		return 0 // net fully inside the cell: rigid shift, HPWL unchanged
	}
	before := boxHP(others, ownXLo, ownXHi, ownYLo, ownYHi)
	after := boxHP(others, ownXLo, ownXHi, ownYLo+dy, ownYHi+dy)
	return after - before
}

func boxHP(o geom.Rect, xlo, xhi, ylo, yhi int64) int64 {
	loX, hiX := geom.MinInt64(o.Lo.X, xlo), geom.MaxInt64(o.Hi.X, xhi)
	loY, hiY := geom.MinInt64(o.Lo.Y, ylo), geom.MaxInt64(o.Hi.Y, yhi)
	return (hiX - loX) + (hiY - loY)
}

// Heights converts a chosen minority pair set into the per-pair height
// vector used to restack the die.
func (m *Model) Heights(minorityPairs []int) []tech.TrackHeight {
	hs := make([]tech.TrackHeight, m.NR)
	for _, r := range minorityPairs {
		if r >= 0 && r < m.NR {
			hs[r] = tech.Tall7p5T
		}
	}
	return hs
}
