package core

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"math"
	"slices"
	"sort"
	"time"

	"mthplace/internal/errs"
	"mthplace/internal/lp"
	"mthplace/internal/milp"
	"mthplace/internal/netlist"
	"mthplace/internal/obs"
	"mthplace/internal/rap"
	"mthplace/internal/rowgrid"
	"mthplace/internal/tech"
)

// Assignment is a RAP solution on the uniform pair grid.
type Assignment struct {
	// ClusterPair maps cluster index to its assigned pair index.
	ClusterPair []int
	// MinorityPairs is the sorted set of pairs chosen as minority rows.
	MinorityPairs []int
	// Objective is Σ f_cr over the assignment.
	Objective float64
	// Stats describe the solve.
	Stats SolveStats
}

// Ladder rungs, best to worst: the proven ILP optimum, the best incumbent
// an interrupted branch-and-bound had in hand, the greedy heuristic.
const (
	RungILP     = "ilp"
	RungAnytime = "anytime"
	RungGreedy  = "greedy"
)

// SolveStats report how a solution was obtained.
type SolveStats struct {
	Method     string // "ilp" or "greedy"
	NumVars    int
	NumBinary  int
	Nodes      int
	LPIters    int
	MILPStatus milp.Status
	Runtime    time.Duration
	// Optimal is true when the ILP proved optimality.
	Optimal bool
	// Rung names the degradation-ladder rung that produced the answer:
	// RungILP (proven optimum), RungAnytime (best incumbent of an
	// interrupted search), or RungGreedy (heuristic fallback).
	Rung string
	// Degraded is true when a limit or deadline forced the solve below the
	// RungILP it was asked for. A ForceGreedy solve is not degraded — the
	// caller got exactly what it requested.
	Degraded bool
	// DegradeReason says what forced the drop: "node-limit", "time-limit"
	// (the solver's own budgets), "deadline" (the caller's context), or
	// "pruned-infeasible" (candidate pruning cut off every ILP solution).
	DegradeReason string
	// Gap is the relative optimality-gap bound of the answer: 0 when
	// proven optimal, the (incumbent − bound)/|incumbent| bound for an
	// anytime incumbent, and -1 when no bound is known (greedy rung).
	Gap float64
}

// DegradePolicy selects what a RAP solve does when it cannot deliver the
// proven ILP optimum (a budget ran out, the context deadline expired, or
// candidate pruning made the ILP infeasible).
type DegradePolicy int8

const (
	// DegradeAnytime (the default) walks the ladder: proven ILP optimum →
	// the interrupted search's best incumbent (with its gap bound) → the
	// greedy heuristic. The solve then always returns the best feasible
	// answer it found, with Stats recording the rung, the reason and the
	// gap; only cancellation and genuine infeasibility surface as errors.
	DegradeAnytime DegradePolicy = iota
	// DegradeStrict fails fast: anything short of the proven optimum is an
	// error (ErrTimeout for an expired deadline, ErrTransient for an
	// exhausted solver budget or a pruning artifact). The oracle and
	// differential tests run Strict so a silently degraded solve can never
	// masquerade as the exact answer.
	DegradeStrict
)

// String implements fmt.Stringer.
func (p DegradePolicy) String() string {
	if p == DegradeStrict {
		return "strict"
	}
	return "anytime"
}

// Solver backends selectable through SolveOptions.Backend. All of them
// solve the same Eqs. (3)–(5) instance behind the same Solve entry point
// and degradation ladder; they differ in how.
const (
	// BackendMILP (the default) linearises the RAP into a mixed-binary LP
	// and runs the generic internal/milp branch and bound with root cuts.
	BackendMILP = "milp"
	// BackendRAP runs the structure-aware internal/rap solver: sparse
	// per-cluster candidate lists, Lagrangian capacity bounds, and branch
	// and bound on cluster→row arcs.
	BackendRAP = "rap"
	// BackendGreedy runs only the greedy heuristic (the same ablation as
	// ForceGreedy, as a named backend).
	BackendGreedy = "greedy"
)

// SolveOptions tune the RAP solver.
type SolveOptions struct {
	// Backend selects the solver implementation behind Solve: BackendMILP
	// (default when empty), BackendRAP, or BackendGreedy.
	Backend string
	// CandidateRows prunes each cluster's x_cr variables to its K cheapest
	// pairs (0 = keep all N_R). The union always keeps enough capacity;
	// pruning is a runtime/optimality trade documented in DESIGN.md.
	CandidateRows int
	// MILP passes through to the branch-and-bound solver.
	MILP milp.Options
	// RootCuts bounds the number of x_cr ≤ y_r strengthening cuts generated
	// at the root (0 = default 600; negative disables cutting).
	RootCuts int
	// ForceGreedy skips the ILP entirely (used by ablations).
	ForceGreedy bool
	// Degrade selects the ladder policy (default DegradeAnytime).
	Degrade DegradePolicy
}

// Solve solves the RAP model with the backend selected by opt.Backend,
// behind one contract: identical Assignment/SolveStats semantics, the same
// degradation ladder, and objective-equal results at proven optimality
// (both exact backends search the same pruned candidate space). An unknown
// backend name is an error.
func Solve(ctx context.Context, m *Model, opt SolveOptions) (*Assignment, error) {
	switch opt.Backend {
	case "", BackendMILP:
		return SolveILP(ctx, m, opt)
	case BackendRAP:
		return SolveRAP(ctx, m, opt)
	case BackendGreedy:
		opt.ForceGreedy = true
		return SolveILP(ctx, m, opt)
	default:
		return nil, fmt.Errorf("core: unknown solver backend %q (want %s, %s or %s)",
			opt.Backend, BackendMILP, BackendRAP, BackendGreedy)
	}
}

// rapNodeScale converts the MILP node budget into a rap one: a rap node
// costs a few subgradient sweeps over the sparse arcs, where a MILP node
// costs a dense LP solve, so the same "effort" knob buys far more of them.
const rapNodeScale = 500

// SolveRAP solves the RAP model with the structure-aware internal/rap
// backend: the same greedy warm start and candidate pruning as SolveILP,
// then Lagrangian-bounded branch and bound on the sparse arc instance.
// Budgets, cancellation semantics and the degradation ladder mirror
// SolveILP exactly (opt.MILP supplies RelGap and TimeLimit; MaxNodes is
// scaled by rapNodeScale).
func SolveRAP(ctx context.Context, m *Model, opt SolveOptions) (*Assignment, error) {
	start := time.Now()
	greedy, err := SolveGreedy(m)
	if err != nil {
		return nil, err
	}
	if err := errs.FromContext(ctx); err != nil {
		if opt.Degrade == DegradeAnytime && errors.Is(err, errs.ErrTimeout) {
			return degradeToGreedy(greedy, start, "deadline")
		}
		return nil, fmt.Errorf("core: RAP solve: %w", err)
	}
	nC := m.Clusters.N()
	if opt.ForceGreedy || nC == 0 {
		greedy.Stats.Runtime = time.Since(start)
		return greedy, nil
	}

	cand := pruneCandidates(m, greedy, opt.CandidateRows)
	inst := &rap.Instance{
		NR:    m.NR,
		NminR: m.NminR,
		Cap:   m.Cap,
		Width: m.Clusters.Width,
		Cand:  make([][]rap.Arc, nC),
	}
	warm := make([]int32, nC)
	for c := 0; c < nC; c++ {
		arcs := make([]rap.Arc, len(cand[c]))
		for i, r := range cand[c] {
			arcs[i] = rap.Arc{Row: int32(r), Cost: m.Cost[c][r]}
		}
		inst.Cand[c] = arcs
		warm[c] = int32(greedy.ClusterPair[c])
	}
	ropt := rap.Options{
		MaxNodes: opt.MILP.MaxNodes * rapNodeScale,
		RelGap:   opt.MILP.RelGap,
	}
	if opt.MILP.TimeLimit > 0 {
		ropt.TimeLimit = opt.MILP.TimeLimit - time.Since(start)
		if ropt.TimeLimit < time.Second {
			ropt.TimeLimit = time.Second
		}
	}
	res, err := rap.Solve(ctx, inst, warm, ropt)
	if err != nil {
		return nil, fmt.Errorf("core: RAP solve: %w", err)
	}
	ctxErr := errs.FromContext(ctx)
	if ctxErr != nil && (opt.Degrade != DegradeAnytime || !errors.Is(ctxErr, errs.ErrTimeout)) {
		return nil, fmt.Errorf("core: RAP branch and bound: %w", ctxErr)
	}
	reason := degradeReasonFrom(res.Status, res.Stop, ctxErr)
	if res.Status == milp.Infeasible || res.Status == milp.Limit {
		if opt.Degrade == DegradeStrict {
			return nil, errs.Transient("core: RAP search ended %v (%s) without a usable incumbent", res.Status, reason)
		}
		greedy.Stats.MILPStatus = res.Status
		return degradeToGreedy(greedy, start, reason)
	}
	if opt.Degrade == DegradeStrict && res.Status != milp.Optimal {
		return nil, errs.Transient("core: RAP search stopped (%s) before proving optimality", reason)
	}

	out := &Assignment{ClusterPair: make([]int, nC)}
	chosen := map[int]bool{}
	for c := 0; c < nC; c++ {
		out.ClusterPair[c] = int(res.Assign[c])
		chosen[out.ClusterPair[c]] = true
	}
	out.MinorityPairs = slices.Sorted(maps.Keys(chosen))
	out.Objective = objectiveOf(m, out.ClusterPair)
	out.Stats = SolveStats{
		Method:     "rap",
		NumVars:    inst.NumArcs() + m.NR,
		NumBinary:  inst.NumArcs() + m.NR,
		Nodes:      res.Nodes,
		LPIters:    res.Iters,
		MILPStatus: res.Status,
		Runtime:    time.Since(start),
		Optimal:    res.Status == milp.Optimal,
		Rung:       RungILP,
	}
	if res.Status != milp.Optimal {
		out.Stats.Rung = RungAnytime
		out.Stats.Degraded = true
		out.Stats.DegradeReason = reason
		out.Stats.Gap = gapOf(res)
	}
	if len(out.MinorityPairs) > m.NminR {
		return nil, fmt.Errorf("core: RAP produced %d minority pairs, budget %d", len(out.MinorityPairs), m.NminR)
	}
	padMinorityPairs(m, out)
	return out, nil
}

// SolveILP solves the RAP model exactly (Eqs. (1)–(5)) via the internal
// MILP solver, warm-started with the greedy solution. Eq. (5)'s max-based
// row-usage indicator is linearised with binaries y_r:
//
//	Σ_r x_cr = 1                    ∀c        (Eq. 3)
//	Σ_c w(c)·x_cr ≤ w(r)·y_r        ∀r        (Eq. 4 + linking)
//	Σ_r y_r = N_minR                          (Eq. 5)
//
// Cancellation is honoured between the greedy warm start, each root-cut
// round and each branch-and-bound node: a canceled ctx returns
// errs.ErrCanceled within one LP solve. Deadline expiry depends on the
// degradation policy (opt.Degrade): the default DegradeAnytime returns the
// best feasible answer in hand — the interrupted search's incumbent with
// its gap bound, or the greedy warm start — with Stats recording the rung;
// DegradeStrict surfaces errs.ErrTimeout instead (and ErrTransient when a
// solver budget ran out), so nothing short of the proven optimum is ever
// returned silently.
func SolveILP(ctx context.Context, m *Model, opt SolveOptions) (*Assignment, error) {
	start := time.Now()
	greedy, err := SolveGreedy(m)
	if err != nil {
		return nil, err
	}
	if err := errs.FromContext(ctx); err != nil {
		if opt.Degrade == DegradeAnytime && errors.Is(err, errs.ErrTimeout) {
			return degradeToGreedy(greedy, start, "deadline")
		}
		return nil, fmt.Errorf("core: RAP solve: %w", err)
	}
	if opt.ForceGreedy {
		greedy.Stats.Runtime = time.Since(start)
		return greedy, nil
	}
	nC, nR := m.Clusters.N(), m.NR
	if nC == 0 {
		greedy.Stats.Runtime = time.Since(start)
		return greedy, nil
	}

	cand := pruneCandidates(m, greedy, opt.CandidateRows)

	prob := lp.NewProblem()
	xVar := make([]map[int]int, nC) // cluster -> row -> var
	for c := 0; c < nC; c++ {
		xVar[c] = make(map[int]int, len(cand[c]))
		for _, r := range cand[c] {
			xVar[c][r] = prob.AddVar(m.Cost[c][r], 0, 1)
		}
	}
	yVar := make([]int, nR)
	for r := 0; r < nR; r++ {
		yVar[r] = prob.AddVar(0, 0, 1)
	}
	// Eq. 3.
	for c := 0; c < nC; c++ {
		row := prob.AddConstraint(lp.EQ, 1)
		for _, r := range cand[c] {
			prob.AddTerm(row, xVar[c][r], 1)
		}
	}
	// Eq. 4 with linking. A row left unreachable by candidate pruning gets
	// no capacity constraint at all: with no x_cr terms the constraint would
	// be the vacuous −w(r)·y_r ≤ 0, and the indicator y_r may still count
	// toward Eq. 5 (an empty minority row is legal).
	for r := 0; r < nR; r++ {
		row := -1
		for c := 0; c < nC; c++ {
			if v, ok := xVar[c][r]; ok {
				if row < 0 {
					row = prob.AddConstraint(lp.LE, 0)
				}
				prob.AddTerm(row, v, float64(m.Clusters.Width[c]))
			}
		}
		if row >= 0 {
			prob.AddTerm(row, yVar[r], -float64(m.Cap))
		}
	}
	// Eq. 5.
	card := prob.AddConstraint(lp.EQ, float64(m.NminR))
	for r := 0; r < nR; r++ {
		prob.AddTerm(card, yVar[r], 1)
	}

	// Root cut generation: the aggregated capacity linking (Eq. 4) leaves a
	// weak LP relaxation — fractional y_r can spread thinly across all rows
	// while every cluster sits wholly on its cheapest row. The classic
	// facility-location strengthening x_cr ≤ y_r closes most of that gap;
	// adding all N_C·N_R of them up front would blow up the basis, so we
	// generate only the violated ones from successive LP relaxations.
	maxCuts := opt.RootCuts
	if maxCuts == 0 {
		maxCuts = 400
	}
	if maxCuts > 0 {
		totalCuts := 0
		for round := 0; round < 6 && totalCuts < maxCuts; round++ {
			if err := errs.FromContext(ctx); err != nil {
				if opt.Degrade == DegradeAnytime && errors.Is(err, errs.ErrTimeout) {
					return degradeToGreedy(greedy, start, "deadline")
				}
				return nil, fmt.Errorf("core: RAP root cuts: %w", err)
			}
			// The cut loop shares the MILP time budget: at most half of it
			// may go into root strengthening so the search still gets time.
			if opt.MILP.TimeLimit > 0 && time.Since(start) > opt.MILP.TimeLimit/2 {
				break
			}
			rel := prob.Solve(lp.Options{})
			if rel.Status != lp.Optimal {
				break
			}
			// The LP relaxation is a lower bound on the ILP optimum: once
			// the greedy incumbent matches it (within the MILP gap), the
			// greedy solution is proven optimal and the search is skipped.
			gap := opt.MILP.RelGap
			if gap < 1e-5 {
				gap = 1e-5 // absorb LP numerical slop on ~1e6-scale costs
			}
			if greedy.Objective <= rel.Obj+gap*math.Max(1, math.Abs(greedy.Objective)) {
				greedy.Stats.Method = "ilp"
				greedy.Stats.NumVars = prob.NumVars()
				greedy.Stats.Optimal = true
				greedy.Stats.MILPStatus = milp.Optimal
				greedy.Stats.Rung = RungILP
				greedy.Stats.Gap = 0
				greedy.Stats.Runtime = time.Since(start)
				// The root relaxation proved the warm start optimal, so the
				// branch and bound never runs: report the proof as the solve's
				// one (and final) incumbent so progress consumers always see
				// the winning objective.
				obs.Emit(ctx, obs.Event{Source: "milp", Kind: "incumbent",
					Objective: greedy.Objective, Gap: 0,
					ElapsedMS: float64(time.Since(start).Microseconds()) / 1000})
				obs.Instant(ctx, "milp.incumbent", map[string]any{
					"objective": greedy.Objective, "gap": 0.0, "root_proof": true,
				})
				return greedy, nil
			}
			type viol struct {
				c, r int
				v    float64
			}
			var vs []viol
			for c := 0; c < nC; c++ {
				for _, r := range cand[c] {
					if d := rel.X[xVar[c][r]] - rel.X[yVar[r]]; d > 0.01 {
						vs = append(vs, viol{c, r, d})
					}
				}
			}
			if len(vs) == 0 {
				break
			}
			sort.Slice(vs, func(a, b int) bool {
				if vs[a].v != vs[b].v {
					return vs[a].v > vs[b].v
				}
				return vs[a].c*nR+vs[a].r < vs[b].c*nR+vs[b].r
			})
			room := maxCuts - totalCuts
			if len(vs) > room {
				vs = vs[:room]
			}
			for _, vv := range vs {
				row := prob.AddConstraint(lp.LE, 0)
				prob.AddTerm(row, xVar[vv.c][vv.r], 1)
				prob.AddTerm(row, yVar[vv.r], -1)
			}
			totalCuts += len(vs)
		}
	}

	bins := make([]int, 0, prob.NumVars())
	pri := make([]float64, prob.NumVars())
	for c := 0; c < nC; c++ {
		for _, r := range cand[c] {
			bins = append(bins, xVar[c][r])
		}
	}
	for r := 0; r < nR; r++ {
		bins = append(bins, yVar[r])
		pri[yVar[r]] = 4 // branch row indicators first
	}

	// Warm start from greedy.
	warm := make([]float64, prob.NumVars())
	for c := 0; c < nC; c++ {
		warm[xVar[c][greedy.ClusterPair[c]]] = 1
	}
	for _, r := range greedy.MinorityPairs {
		warm[yVar[r]] = 1
	}

	milpOpt := opt.MILP
	if milpOpt.TimeLimit > 0 {
		milpOpt.TimeLimit -= time.Since(start)
		if milpOpt.TimeLimit < time.Second {
			milpOpt.TimeLimit = time.Second
		}
	}
	res := milp.Solve(ctx, &milp.Problem{LP: prob, Binary: bins, Priority: pri}, warm, milpOpt)
	ctxErr := errs.FromContext(ctx)
	if ctxErr != nil && (opt.Degrade != DegradeAnytime || !errors.Is(ctxErr, errs.ErrTimeout)) {
		// The caller gave up (cancel), or a Strict solve refuses to hand
		// back an unproven answer after its deadline expired.
		return nil, fmt.Errorf("core: RAP branch and bound: %w", ctxErr)
	}
	reason := degradeReason(res, ctxErr)
	if res.Status == milp.Infeasible || res.Status == milp.Limit {
		// No usable incumbent came out of the search (pruning can in
		// principle make the ILP infeasible; the greedy solution is always
		// feasible): the ladder's last rung.
		if opt.Degrade == DegradeStrict {
			return nil, errs.Transient("core: RAP search ended %v (%s) without a usable incumbent", res.Status, reason)
		}
		greedy.Stats.MILPStatus = res.Status
		return degradeToGreedy(greedy, start, reason)
	}
	if opt.Degrade == DegradeStrict && res.Status != milp.Optimal {
		return nil, errs.Transient("core: RAP search stopped (%s) before proving optimality", reason)
	}

	out := &Assignment{ClusterPair: make([]int, nC)}
	for c := 0; c < nC; c++ {
		best, bestV := greedy.ClusterPair[c], 0.5
		for _, r := range cand[c] {
			if v := res.X[xVar[c][r]]; v > bestV {
				best, bestV = r, v
			}
		}
		out.ClusterPair[c] = best
	}
	chosen := map[int]bool{}
	for r := 0; r < nR; r++ {
		if res.X[yVar[r]] > 0.5 {
			chosen[r] = true
		}
	}
	for _, r := range out.ClusterPair {
		chosen[r] = true
	}
	out.MinorityPairs = slices.Sorted(maps.Keys(chosen))
	out.Objective = objectiveOf(m, out.ClusterPair)
	out.Stats = SolveStats{
		Method:     "ilp",
		NumVars:    prob.NumVars(),
		NumBinary:  len(bins),
		Nodes:      res.Nodes,
		LPIters:    res.LPIters,
		MILPStatus: res.Status,
		Runtime:    time.Since(start),
		Optimal:    res.Status == milp.Optimal,
		Rung:       RungILP,
	}
	if res.Status != milp.Optimal {
		// Anytime incumbent: the search was cut short but had a feasible
		// solution in hand; return it with its optimality-gap bound instead
		// of throwing it away.
		out.Stats.Rung = RungAnytime
		out.Stats.Degraded = true
		out.Stats.DegradeReason = reason
		out.Stats.Gap = gapOf(res)
	}
	if len(out.MinorityPairs) > m.NminR {
		return nil, fmt.Errorf("core: ILP produced %d minority pairs, budget %d", len(out.MinorityPairs), m.NminR)
	}
	padMinorityPairs(m, out)
	return out, nil
}

// degradeToGreedy annotates the greedy warm start as the ladder's last
// rung and returns it: the answer is feasible but carries no optimality
// bound (Gap = -1).
func degradeToGreedy(greedy *Assignment, start time.Time, reason string) (*Assignment, error) {
	greedy.Stats.Runtime = time.Since(start)
	greedy.Stats.Rung = RungGreedy
	greedy.Stats.Degraded = true
	greedy.Stats.DegradeReason = reason
	greedy.Stats.Gap = -1
	return greedy, nil
}

// pruneCandidates keeps each cluster's k cheapest pairs plus its
// greedy-chosen pair (so the warm start stays representable), each list
// sorted ascending by pair index. k <= 0 or k >= N_R keeps every pair.
// Both exact backends search exactly this candidate space, which is what
// makes their proven optima objective-equal. One index buffer is resorted
// per cluster, so the hot path allocates only the kept lists (see
// BenchmarkCandidatePruning).
func pruneCandidates(m *Model, greedy *Assignment, k int) [][]int {
	nC, nR := m.Clusters.N(), m.NR
	cand := make([][]int, nC)
	if k <= 0 || k >= nR {
		all := indexSeq(nR) // shared: candidate lists are read-only
		for c := range cand {
			cand[c] = all
		}
		return cand
	}
	idx := make([]int, nR)
	for c := 0; c < nC; c++ {
		for i := range idx {
			idx[i] = i
		}
		costs := m.Cost[c]
		slices.SortFunc(idx, func(a, b int) int {
			if costs[a] != costs[b] {
				if costs[a] < costs[b] {
					return -1
				}
				return 1
			}
			return a - b
		})
		keep := make([]int, k, k+1)
		copy(keep, idx[:k])
		if !slices.Contains(keep, greedy.ClusterPair[c]) {
			keep = append(keep, greedy.ClusterPair[c])
		}
		slices.Sort(keep)
		cand[c] = keep
	}
	return cand
}

// degradeReason names what stopped the search short of a proof.
func degradeReason(res *milp.Result, ctxErr error) string {
	return degradeReasonFrom(res.Status, res.Stop, ctxErr)
}

// degradeReasonFrom is the backend-agnostic form over the shared anytime
// types.
func degradeReasonFrom(status milp.Status, stop milp.StopReason, ctxErr error) string {
	if status == milp.Infeasible {
		return "pruned-infeasible"
	}
	if ctxErr != nil {
		return "deadline"
	}
	switch stop {
	case milp.StopNodeLimit:
		return "node-limit"
	case milp.StopTimeLimit:
		return "time-limit"
	case milp.StopContext:
		return "deadline"
	default:
		return ""
	}
}

// gapOf clamps a solver gap bound into the SolveStats convention: a finite
// non-negative ratio, or -1 when the search produced no usable bound. Both
// backends' results implement the same Gap convention.
func gapOf(res interface{ Gap() float64 }) float64 {
	g := res.Gap()
	if math.IsInf(g, 0) || math.IsNaN(g) {
		return -1
	}
	if g < 0 {
		return 0
	}
	return g
}

// padMinorityPairs tops the chosen set up to exactly N_minR pairs (empty
// minority rows are legal and keep the fairness rule N_minR = Flow (2)'s).
func padMinorityPairs(m *Model, a *Assignment) {
	have := map[int]bool{}
	for _, r := range a.MinorityPairs {
		have[r] = true
	}
	for r := 0; len(a.MinorityPairs) < m.NminR && r < m.NR; r++ {
		if !have[r] {
			a.MinorityPairs = append(a.MinorityPairs, r)
			have[r] = true
		}
	}
	sort.Ints(a.MinorityPairs)
}

// SolveGreedy builds a feasible RAP solution: choose N_minR pairs at the
// weighted quantiles of the cluster y-distribution, assign clusters
// cheapest-first under capacity, then improve with relocation passes. It is
// both the ILP warm start and the large-instance fallback.
func SolveGreedy(m *Model) (*Assignment, error) {
	start := time.Now()
	nC, nR := m.Clusters.N(), m.NR
	out := &Assignment{ClusterPair: make([]int, nC)}
	if nC == 0 {
		for r := 0; r < m.NminR; r++ {
			out.MinorityPairs = append(out.MinorityPairs, r)
		}
		out.Stats = SolveStats{Method: "greedy", Runtime: time.Since(start), Rung: RungGreedy, Gap: 0}
		return out, nil
	}

	// Quantile seeding over cluster centers weighted by width.
	type cw struct {
		y float64
		w int64
	}
	cws := make([]cw, nC)
	var totalW int64
	for c := 0; c < nC; c++ {
		cws[c] = cw{m.Clusters.CenterY[c], m.Clusters.Width[c]}
		totalW += m.Clusters.Width[c]
	}
	sort.Slice(cws, func(a, b int) bool { return cws[a].y < cws[b].y })
	chosen := make([]bool, nR)
	var pairs []int
	var acc int64
	k := 0
	for _, e := range cws {
		acc += e.w
		for k < m.NminR && acc*int64(m.NminR) >= totalW*int64(k)+totalW/2 {
			r := nearestFreePair(m, e.y, chosen)
			if r >= 0 {
				chosen[r] = true
				pairs = append(pairs, r)
			}
			k++
		}
	}
	for len(pairs) < m.NminR {
		for r := 0; r < nR; r++ {
			if !chosen[r] {
				chosen[r] = true
				pairs = append(pairs, r)
				break
			}
		}
	}
	sort.Ints(pairs)

	// Cheapest-feasible assignment, widest clusters first.
	order := indexSeq(nC)
	sort.Slice(order, func(a, b int) bool {
		if m.Clusters.Width[order[a]] != m.Clusters.Width[order[b]] {
			return m.Clusters.Width[order[a]] > m.Clusters.Width[order[b]]
		}
		return order[a] < order[b]
	})
	load := make([]int64, nR)
	for _, c := range order {
		best, bestCost := -1, math.Inf(1)
		for _, r := range pairs {
			if load[r]+m.Clusters.Width[c] > m.Cap {
				continue
			}
			if m.Cost[c][r] < bestCost {
				best, bestCost = r, m.Cost[c][r]
			}
		}
		if best < 0 {
			return nil, errs.Infeasible("core: greedy could not host cluster %d (width %d)", c, m.Clusters.Width[c])
		}
		out.ClusterPair[c] = best
		load[best] += m.Clusters.Width[c]
	}

	// Relocation improvement passes.
	for pass := 0; pass < 4; pass++ {
		improved := false
		for c := 0; c < nC; c++ {
			cur := out.ClusterPair[c]
			for _, r := range pairs {
				if r == cur || load[r]+m.Clusters.Width[c] > m.Cap {
					continue
				}
				if m.Cost[c][r]+1e-9 < m.Cost[c][cur] {
					load[cur] -= m.Clusters.Width[c]
					load[r] += m.Clusters.Width[c]
					out.ClusterPair[c] = r
					cur = r
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}

	out.MinorityPairs = pairs
	out.Objective = objectiveOf(m, out.ClusterPair)
	out.Stats = SolveStats{Method: "greedy", Runtime: time.Since(start), Rung: RungGreedy, Gap: -1}
	return out, nil
}

func nearestFreePair(m *Model, y float64, chosen []bool) int {
	best, bestD := -1, math.Inf(1)
	for r := 0; r < m.NR; r++ {
		if chosen[r] {
			continue
		}
		d := math.Abs(float64(m.PairCenterY[r]) - y)
		if d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

func objectiveOf(m *Model, clusterPair []int) float64 {
	var obj float64
	for c, r := range clusterPair {
		obj += m.Cost[c][r]
	}
	return obj
}

// indexSeq returns the slice [0, 1, ..., n-1].
func indexSeq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RowAssignment is the complete outcome of AssignRows: the restacked die and
// the minority-cell seeding derived from the cluster assignment.
type RowAssignment struct {
	// Heights is the per-pair track-height vector (uniform-grid order).
	Heights []tech.TrackHeight
	// Stack is the restacked die.
	Stack *rowgrid.MixedStack
	// CellPair maps each minority instance to its assigned pair index.
	CellPair map[int32]int
	// SeedY maps each minority instance to the bottom y of its pair in the
	// restacked die (input to the fence-aware legalizer).
	SeedY map[int32]int64
	// Assignment is the underlying RAP solution.
	Assignment *Assignment
	// Clusters used by the solve.
	Clusters *Clusters
}

// Options bundle the full row-assignment configuration (§III).
type Options struct {
	// S is the clustering resolution (paper: 0.2).
	S float64
	// Cost holds α and the capacity derating.
	Cost CostParams
	// Solve tunes the ILP.
	Solve SolveOptions
	// KMeansIters bounds the Lloyd iterations (default 30).
	KMeansIters int
}

// DefaultOptions mirror the paper's final parameter choices (s = 0.2,
// α = 0.75). The MILP budgets differ from CPLEX's pure optimality run: the
// branch and bound stops at a 0.2% optimality gap or 400 nodes (documented
// substitution in DESIGN.md — the root cuts almost always prove optimality
// at the root anyway, and a 0.2% objective slack is far below the
// flow-to-flow differences the experiments measure).
func DefaultOptions() Options {
	return Options{
		S:    0.2,
		Cost: DefaultCostParams(),
		Solve: SolveOptions{
			CandidateRows: 12,
			MILP:          milp.Options{MaxNodes: 40, RelGap: 0.002, TimeLimit: 12 * time.Second},
		},
	}
}

// AssignRows runs the full proposed row assignment on a design in mLEF form
// placed on the uniform grid g: cluster, build the ILP cost model, solve,
// restack the die, and derive the per-cell seeding. Each stage honours
// ctx cancellation (see BuildClusters, BuildModel and SolveILP) and runs
// its parallel parts on the pool carried by ctx.
func AssignRows(ctx context.Context, d *netlist.Design, g rowgrid.PairGrid, nMinR int, opt Options) (*RowAssignment, error) {
	cl, err := BuildClusters(ctx, d, opt.S, opt.KMeansIters)
	if err != nil {
		return nil, err
	}
	model, err := BuildModel(ctx, d, g, cl, nMinR, opt.Cost)
	if err != nil {
		return nil, err
	}
	sol, err := SolveILP(ctx, model, opt.Solve)
	if err != nil {
		return nil, err
	}
	return Finalize(d, g, model, cl, sol)
}

// Finalize converts a RAP solution into the restacked die and cell seeding.
func Finalize(d *netlist.Design, g rowgrid.PairGrid, m *Model, cl *Clusters, sol *Assignment) (*RowAssignment, error) {
	hs := m.Heights(sol.MinorityPairs)
	ms, err := rowgrid.Stack(d.Die, hs, d.Tech)
	if err != nil {
		return nil, err
	}
	ra := &RowAssignment{
		Heights:    hs,
		Stack:      ms,
		CellPair:   make(map[int32]int),
		SeedY:      make(map[int32]int64),
		Assignment: sol,
		Clusters:   cl,
	}
	for c, r := range sol.ClusterPair {
		for _, i := range cl.Members[c] {
			ra.CellPair[i] = r
			ra.SeedY[i] = ms.Y[r]
		}
	}
	return ra, nil
}
