package core

import (
	"context"
	"math"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/geom"
	"mthplace/internal/lefdef"
	"mthplace/internal/legalize"
	"mthplace/internal/milp"
	"mthplace/internal/netlist"
	"mthplace/internal/placer"
	"mthplace/internal/rowgrid"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

// placedDesign generates a small testcase, applies mLEF and produces the
// unconstrained initial placement. It accepts testing.TB so benchmarks can
// share the fixture.
func placedDesign(t testing.TB, scale float64) (*netlist.Design, rowgrid.PairGrid) {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = scale
	d, err := synth.Generate(tc, lib, synth.TableII()[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lefdef.ApplyMLEF(d)
	if err != nil {
		t.Fatal(err)
	}
	placer.Global(d, placer.Options{OuterIters: 5, SolveSweeps: 8})
	g := rowgrid.Uniform(d.Die, m.PairH)
	if err := legalize.Uniform(d, g); err != nil {
		t.Fatal(err)
	}
	return d, g
}

// nMinRFor computes a capacity-feasible minority pair count the way the
// baseline (and hence the flows) do: width demand at 80% fill, clamped to
// the restack budget.
func nMinRFor(d *netlist.Design, g rowgrid.PairGrid) int {
	var wsum int64
	for _, i := range d.MinorityInstances() {
		wsum += d.Insts[i].TrueMaster().Width
	}
	n := int(math.Ceil(float64(wsum) / (float64(2*g.Width()) * 0.8)))
	if n < 1 {
		n = 1
	}
	if mx := rowgrid.MaxMinorityPairs(d.Die, g.N, d.Tech); n > mx {
		n = mx
	}
	return n
}

func TestBuildClustersBasics(t *testing.T) {
	d, _ := placedDesign(t, 0.02)
	nMin := len(d.MinorityInstances())
	cl, err := BuildClusters(context.Background(), d, 0.2, 20)
	if err != nil {
		t.Fatal(err)
	}
	wantK := int(math.Round(0.2 * float64(nMin)))
	if cl.N() > wantK || cl.N() == 0 {
		t.Errorf("clusters = %d, want <= %d and > 0", cl.N(), wantK)
	}
	// Every minority cell appears exactly once; widths are original widths.
	seen := map[int32]bool{}
	var totalW int64
	for c := 0; c < cl.N(); c++ {
		if len(cl.Members[c]) == 0 || cl.Width[c] <= 0 {
			t.Fatalf("cluster %d empty or zero width", c)
		}
		var w int64
		for _, i := range cl.Members[c] {
			if seen[i] {
				t.Fatalf("cell %d in two clusters", i)
			}
			seen[i] = true
			w += d.Insts[i].TrueMaster().Width
		}
		if w != cl.Width[c] {
			t.Fatalf("cluster %d width %d != member sum %d", c, cl.Width[c], w)
		}
		totalW += w
	}
	if len(seen) != nMin {
		t.Errorf("clustered %d of %d minority cells", len(seen), nMin)
	}
}

func TestBuildClustersResolutionOne(t *testing.T) {
	d, _ := placedDesign(t, 0.01)
	nMin := len(d.MinorityInstances())
	cl, err := BuildClusters(context.Background(), d, 1.0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if cl.N() != nMin {
		t.Errorf("s=1 must give one cell per cluster: %d != %d", cl.N(), nMin)
	}
	for c := 0; c < cl.N(); c++ {
		if len(cl.Members[c]) != 1 {
			t.Errorf("cluster %d has %d members", c, len(cl.Members[c]))
		}
	}
}

func TestBuildClustersRejectsBadS(t *testing.T) {
	d, _ := placedDesign(t, 0.01)
	if _, err := BuildClusters(context.Background(), d, 0, 10); err == nil {
		t.Error("s=0 must error")
	}
	if _, err := BuildClusters(context.Background(), d, -1, 10); err == nil {
		t.Error("s<0 must error")
	}
}

func TestNetDeltaHPWL(t *testing.T) {
	others := geom.NewRect(0, 0, 100, 100)
	// Own pin inside the box: moving down grows the box by |dy| beyond it.
	if got := netDeltaHPWL(others, true, 50, 50, 50, 50, -30); got != 0 {
		t.Errorf("move within box must cost 0, got %d", got)
	}
	if got := netDeltaHPWL(others, true, 50, 50, 50, 50, -80); got != 30 {
		t.Errorf("move 30 below box must cost 30, got %d", got)
	}
	if got := netDeltaHPWL(others, true, 50, 50, 50, 50, 130); got != 80 {
		t.Errorf("move 80 above box must cost 80, got %d", got)
	}
	// Net with no external pins never changes HPWL.
	if got := netDeltaHPWL(geom.Rect{}, false, 0, 10, 0, 10, 500); got != 0 {
		t.Errorf("internal net must cost 0, got %d", got)
	}
}

func TestBuildModelCostShape(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	cl, err := BuildClusters(context.Background(), d, 0.3, 20)
	if err != nil {
		t.Fatal(err)
	}
	nMinR := nMinRFor(d, g)
	m, err := BuildModel(context.Background(), d, g, cl, nMinR, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cost) != cl.N() {
		t.Fatalf("cost rows %d != clusters %d", len(m.Cost), cl.N())
	}
	for c := range m.Cost {
		if len(m.Cost[c]) != g.N {
			t.Fatalf("cost cols %d != pairs %d", len(m.Cost[c]), g.N)
		}
		// The cost must be lowest near the cluster's own y and grow toward
		// the die edges (unimodal-ish; we check edge > min).
		minC := math.Inf(1)
		for _, v := range m.Cost[c] {
			if v < 0 {
				t.Fatalf("negative f_cr %f", v)
			}
			minC = math.Min(minC, v)
		}
		if m.Cost[c][0] < minC || m.Cost[c][g.N-1] < minC {
			t.Fatalf("edge cost below minimum")
		}
	}
}

func TestBuildModelAlphaExtremes(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	cl, _ := BuildClusters(context.Background(), d, 0.3, 20)
	nMinR := nMinRFor(d, g)
	pureDisp, err := BuildModel(context.Background(), d, g, cl, nMinR, CostParams{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	// α=1: cost is exactly summed |dy|, so for a cluster the minimum must
	// be at a pair whose center is nearest the width-weighted... at least
	// verify symmetry: cost difference between adjacent rows equals the
	// summed dy sign changes — here just check it is piecewise monotone
	// away from its argmin.
	for c := 0; c < cl.N(); c++ {
		arg := 0
		for r := range pureDisp.Cost[c] {
			if pureDisp.Cost[c][r] < pureDisp.Cost[c][arg] {
				arg = r
			}
		}
		for r := 1; r <= arg; r++ {
			if pureDisp.Cost[c][r] > pureDisp.Cost[c][r-1]+1e-9 {
				t.Fatalf("disp cost not decreasing toward argmin (cluster %d row %d)", c, r)
			}
		}
		for r := arg + 1; r < len(pureDisp.Cost[c]); r++ {
			if pureDisp.Cost[c][r] < pureDisp.Cost[c][r-1]-1e-9 {
				t.Fatalf("disp cost not increasing past argmin (cluster %d row %d)", c, r)
			}
		}
	}
	if _, err := BuildModel(context.Background(), d, g, cl, nMinR, CostParams{Alpha: 2}); err == nil {
		t.Error("alpha > 1 must error")
	}
	if _, err := BuildModel(context.Background(), d, g, cl, 0, DefaultCostParams()); err == nil {
		t.Error("N_minR = 0 must error")
	}
}

func solveBoth(t *testing.T, scale float64, s float64) (*Model, *Assignment, *Assignment) {
	t.Helper()
	d, g := placedDesign(t, scale)
	cl, err := BuildClusters(context.Background(), d, s, 20)
	if err != nil {
		t.Fatal(err)
	}
	nMinR := nMinRFor(d, g)
	m, err := BuildModel(context.Background(), d, g, cl, nMinR, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := SolveGreedy(m)
	if err != nil {
		t.Fatal(err)
	}
	ilp, err := SolveILP(context.Background(), m, SolveOptions{CandidateRows: 0, MILP: milp.Options{MaxNodes: 20000}})
	if err != nil {
		t.Fatal(err)
	}
	return m, greedy, ilp
}

func assertFeasible(t *testing.T, m *Model, a *Assignment) {
	t.Helper()
	if len(a.MinorityPairs) != m.NminR {
		t.Fatalf("minority pairs %d != NminR %d", len(a.MinorityPairs), m.NminR)
	}
	inSet := map[int]bool{}
	for _, r := range a.MinorityPairs {
		inSet[r] = true
	}
	load := map[int]int64{}
	for c, r := range a.ClusterPair {
		if !inSet[r] {
			t.Fatalf("cluster %d assigned to non-minority pair %d", c, r)
		}
		load[r] += m.Clusters.Width[c]
	}
	for r, l := range load {
		if l > m.Cap {
			t.Fatalf("pair %d load %d exceeds capacity %d", r, l, m.Cap)
		}
	}
}

func TestGreedyFeasible(t *testing.T) {
	m, greedy, _ := solveBoth(t, 0.015, 0.3)
	assertFeasible(t, m, greedy)
	if greedy.Stats.Method != "greedy" {
		t.Error("method tag wrong")
	}
}

func TestILPNoWorseThanGreedy(t *testing.T) {
	m, greedy, ilp := solveBoth(t, 0.015, 0.3)
	assertFeasible(t, m, ilp)
	if ilp.Objective > greedy.Objective+1e-6 {
		t.Errorf("ILP objective %f worse than greedy %f", ilp.Objective, greedy.Objective)
	}
	if ilp.Stats.Method != "ilp" && ilp.Stats.Method != "greedy" {
		t.Errorf("method = %q", ilp.Stats.Method)
	}
}

func TestILPOptimalOnTinyInstance(t *testing.T) {
	// Hand-built model: 2 clusters, 3 rows, NminR = 1; both clusters fit in
	// one row; optimum is the row minimising the summed cost.
	m := &Model{
		Clusters: &Clusters{
			Members: [][]int32{{0}, {1}},
			Width:   []int64{100, 100},
			CenterX: []float64{0, 0},
			CenterY: []float64{100, 200},
		},
		NR:          3,
		NminR:       1,
		Cap:         250,
		Cost:        [][]float64{{5, 1, 9}, {4, 2, 8}},
		PairCenterY: []int64{0, 100, 200},
	}
	ilp, err := SolveILP(context.Background(), m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ilp.Objective != 3 { // row 1: 1 + 2
		t.Errorf("objective = %f, want 3", ilp.Objective)
	}
	if len(ilp.MinorityPairs) != 1 || ilp.MinorityPairs[0] != 1 {
		t.Errorf("minority pairs = %v, want [1]", ilp.MinorityPairs)
	}
}

func TestILPRespectsCapacityOverGreedyChoice(t *testing.T) {
	// Both clusters prefer row 1, but they cannot share it; NminR = 2.
	m := &Model{
		Clusters: &Clusters{
			Members: [][]int32{{0}, {1}},
			Width:   []int64{100, 100},
			CenterX: []float64{0, 0},
			CenterY: []float64{100, 100},
		},
		NR:          3,
		NminR:       2,
		Cap:         150,
		Cost:        [][]float64{{5, 1, 9}, {4, 1, 8}},
		PairCenterY: []int64{0, 100, 200},
	}
	ilp, err := SolveILP(context.Background(), m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertFeasible(t, m, ilp)
	// One cluster takes row 1, the other its next-best; best total = 1+4 = 5.
	if ilp.Objective != 5 {
		t.Errorf("objective = %f, want 5", ilp.Objective)
	}
}

func TestSolveILPForceGreedy(t *testing.T) {
	m, greedy, _ := solveBoth(t, 0.01, 0.5)
	forced, err := SolveILP(context.Background(), m, SolveOptions{ForceGreedy: true})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Stats.Method != "greedy" {
		t.Error("ForceGreedy must return the greedy solution")
	}
	if forced.Objective != greedy.Objective {
		t.Error("forced greedy objective differs")
	}
}

func TestAssignRowsEndToEnd(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	nMinR := nMinRFor(d, g)
	ra, err := AssignRows(context.Background(), d, g, nMinR, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Stack.NumPairs() != g.N {
		t.Fatalf("stack pairs %d != grid pairs %d", ra.Stack.NumPairs(), g.N)
	}
	tallPairs := ra.Stack.PairsOf(tech.Tall7p5T)
	if len(tallPairs) != nMinR {
		t.Errorf("tall pairs %d != NminR %d", len(tallPairs), nMinR)
	}
	// Every minority cell has a seed at the bottom of a tall pair.
	for _, i := range d.MinorityInstances() {
		pair, ok := ra.CellPair[i]
		if !ok {
			t.Fatalf("minority cell %d unassigned", i)
		}
		if ra.Heights[pair] != tech.Tall7p5T {
			t.Fatalf("cell %d assigned to short pair %d", i, pair)
		}
		if ra.SeedY[i] != ra.Stack.Y[pair] {
			t.Fatalf("cell %d seed y %d != pair bottom %d", i, ra.SeedY[i], ra.Stack.Y[pair])
		}
	}
}

func TestCandidatePruningStillFeasible(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	cl, _ := BuildClusters(context.Background(), d, 0.3, 20)
	nMinR := nMinRFor(d, g)
	m, err := BuildModel(context.Background(), d, g, cl, nMinR, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := SolveILP(context.Background(), m, SolveOptions{CandidateRows: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertFeasible(t, m, pruned)
	full, err := SolveILP(context.Background(), m, SolveOptions{CandidateRows: 0})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Objective < full.Objective-1e-6 {
		t.Errorf("pruned objective %f beats full %f — impossible", pruned.Objective, full.Objective)
	}
}
