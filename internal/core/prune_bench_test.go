package core

import (
	"math/rand"
	"testing"
)

// pruneModel builds a synthetic cost matrix sized like a mid-range testcase
// so the benchmark measures pruning alone, not the cost-model build.
func pruneModel(nC, nR int) (*Model, *Assignment) {
	rng := rand.New(rand.NewSource(7))
	m := &Model{
		Clusters: &Clusters{Members: make([][]int32, nC)},
		NR:       nR,
		Cost:     make([][]float64, nC),
	}
	for c := range m.Cost {
		row := make([]float64, nR)
		for r := range row {
			row[r] = rng.Float64() * 1e5
		}
		m.Cost[c] = row
	}
	g := &Assignment{ClusterPair: make([]int, nC)}
	for c := range g.ClusterPair {
		g.ClusterPair[c] = rng.Intn(nR)
	}
	return m, g
}

// BenchmarkCandidatePruning covers the per-cluster row-ranking hot path that
// feeds both solver backends. The slices.SortFunc over one reused index
// buffer replaced a per-cluster sort.Slice closure that allocated its header
// on every call.
func BenchmarkCandidatePruning(b *testing.B) {
	for _, sz := range []struct {
		name   string
		nC, nR int
		k      int
	}{
		{"C100xR200k16", 100, 200, 16},
		{"C400xR800k32", 400, 800, 32},
	} {
		b.Run(sz.name, func(b *testing.B) {
			m, g := pruneModel(sz.nC, sz.nR)
			b.ReportAllocs()
			for b.Loop() {
				pruneCandidates(m, g, sz.k)
			}
		})
	}
}
