package core

import (
	"context"
	"math"
	"testing"

	"mthplace/internal/soa"
)

// TestBuildModelSoAEquivalence asserts the representation-independence
// guarantee for the RAP cost model: BuildModelSoA over FromDesign(d)
// produces a bit-identical f_cr matrix to BuildModel over d, at both worker
// counts.
func TestBuildModelSoAEquivalence(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	cl, err := BuildClusters(context.Background(), d, 0.3, 20)
	if err != nil {
		t.Fatal(err)
	}
	nMinR := nMinRFor(d, g)

	aos, err := BuildModel(ctxWithJobs(1), d, g, cl, nMinR, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	c := soa.FromDesign(d)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 8} {
		m, err := BuildModelSoA(ctxWithJobs(jobs), c, g, cl, nMinR, DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		if m.Cap != aos.Cap || m.NR != aos.NR || m.NminR != aos.NminR {
			t.Fatalf("jobs=%d: model headers differ", jobs)
		}
		if len(m.Cost) != len(aos.Cost) {
			t.Fatalf("jobs=%d: cost rows %d vs %d", jobs, len(m.Cost), len(aos.Cost))
		}
		for ci := range aos.Cost {
			for r := range aos.Cost[ci] {
				if math.Float64bits(m.Cost[ci][r]) != math.Float64bits(aos.Cost[ci][r]) {
					t.Fatalf("jobs=%d: f_cr[%d][%d] not bit-identical: %v vs %v",
						jobs, ci, r, m.Cost[ci][r], aos.Cost[ci][r])
				}
			}
		}
	}
}

// TestBuildModelSoAInfeasible checks the SoA path reports the same capacity
// infeasibilities as the AoS path.
func TestBuildModelSoAInfeasible(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	cl, err := BuildClusters(context.Background(), d, 0.3, 20)
	if err != nil {
		t.Fatal(err)
	}
	c := soa.FromDesign(d)
	if _, err := BuildModelSoA(context.Background(), c, g, cl, 0, DefaultCostParams()); err == nil {
		t.Fatal("N_minR=0 accepted")
	}
	if _, err := BuildModelSoA(context.Background(), c, g, cl, nMinRFor(d, g), CostParams{Alpha: 2}); err == nil {
		t.Fatal("alpha=2 accepted")
	}
}
