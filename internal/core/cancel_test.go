package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"mthplace/internal/errs"
)

// TestBuildClustersPreCanceled: a canceled context aborts before the
// partial k-means result can feed the ILP.
func TestBuildClustersPreCanceled(t *testing.T) {
	d, _ := placedDesign(t, 0.02)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildClusters(ctx, d, 0.3, 20); !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// The mid-iteration cancel is exercised at the cluster layer
// (TestKMeans2DCancelStopsEarly), where the Lloyd workload is big enough to
// reliably be in flight when the cancel lands; here the composed
// BuildClusters path only needs to prove the error class surfaces.

// TestSolveILPPreCanceled: the solve path (greedy warm start, root cuts,
// branch and bound) checks the context between stages.
func TestSolveILPPreCanceled(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	cl, err := BuildClusters(context.Background(), d, 0.3, 20)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildModel(context.Background(), d, g, cl, nMinRFor(d, g), DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveILP(ctx, m, SolveOptions{}); !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestSolveILPDeadline: an expired deadline walks the degradation ladder.
// The default (anytime) policy returns the best feasible answer in hand —
// here the greedy warm start, honestly labelled — while the strict policy
// fails fast with ErrTimeout, the class the HTTP layer maps to 504.
func TestSolveILPDeadline(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	cl, err := BuildClusters(context.Background(), d, 0.3, 20)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildModel(context.Background(), d, g, cl, nMinRFor(d, g), DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()

	got, err := SolveILP(ctx, m, SolveOptions{})
	if err != nil {
		t.Fatalf("anytime policy on expired deadline: err = %v, want degraded result", err)
	}
	if !got.Stats.Degraded || got.Stats.Rung != RungGreedy {
		t.Fatalf("anytime stats = %+v, want Degraded greedy rung", got.Stats)
	}
	if got.Stats.DegradeReason != "deadline" {
		t.Errorf("DegradeReason = %q, want %q", got.Stats.DegradeReason, "deadline")
	}

	if _, err := SolveILP(ctx, m, SolveOptions{Degrade: DegradeStrict}); !errors.Is(err, errs.ErrTimeout) {
		t.Fatalf("strict policy: err = %v, want ErrTimeout", err)
	}
}
