package core

import (
	"context"
	"fmt"

	"mthplace/internal/errs"
	"mthplace/internal/geom"
	"mthplace/internal/obs"
	"mthplace/internal/par"
	"mthplace/internal/rowgrid"
	"mthplace/internal/soa"
)

// BuildModelSoA computes the same f_cr matrix as BuildModel but iterates the
// flat SoA representation: CSR pin→net and net→pin adjacency instead of
// per-object slices, and an epoch-stamped array instead of a per-cell map
// for net dedup. Cluster member indices refer to the same instance order in
// both representations (FromDesign preserves indices), and every loop —
// members, nets, net pins, rows — runs in the order BuildModel uses, so the
// float accumulation order and therefore the Cost matrix are bit-identical.
func BuildModelSoA(ctx context.Context, c *soa.Compact, g rowgrid.PairGrid, cl *Clusters, nMinR int, p CostParams) (*Model, error) {
	if p.Alpha < 0 || p.Alpha > 1 {
		return nil, fmt.Errorf("core: alpha %f out of [0,1]", p.Alpha)
	}
	if p.CapacityFactor <= 0 {
		p.CapacityFactor = 1
	}
	if g.N == 0 {
		return nil, fmt.Errorf("core: empty row grid")
	}
	if nMinR <= 0 || nMinR > g.N {
		return nil, fmt.Errorf("core: N_minR %d out of range (1..%d)", nMinR, g.N)
	}
	m := &Model{
		Clusters:    cl,
		NR:          g.N,
		NminR:       nMinR,
		Cap:         int64(float64(2*g.Width()) * p.CapacityFactor),
		Cost:        make([][]float64, cl.N()),
		PairCenterY: make([]int64, g.N),
	}
	for r := 0; r < g.N; r++ {
		m.PairCenterY[r] = g.PairCenterY(r)
	}
	var totalW int64
	for _, w := range cl.Width {
		totalW += w
		if w > m.Cap {
			return nil, errs.Infeasible("core: cluster width %d exceeds row capacity %d (lower s)", w, m.Cap)
		}
	}
	if totalW > int64(nMinR)*m.Cap {
		return nil, errs.Infeasible("core: minority width %d exceeds %d rows × capacity %d", totalW, nMinR, m.Cap)
	}
	if err := errs.FromContext(ctx); err != nil {
		return nil, fmt.Errorf("core: cost model: %w", err)
	}
	span := obs.StartSpan(ctx, "core.buildmodel.soa")
	span.SetArg("clusters", cl.N())
	span.SetArg("rows", g.N)
	defer span.End()

	par.FromContext(ctx).For(cl.N(), func(ci int) {
		// Per-worker net stamp array: netStamp[n] == epoch marks net n as
		// already boxed for the current cell. One allocation per cluster,
		// no clearing between cells.
		netStamp := make([]int32, c.NumNets())
		epoch := int32(0)
		boxes := make([][]netBoxT, len(cl.Members[ci]))
		for mi, i := range cl.Members[ci] {
			epoch++
			boxes[mi] = buildNetBoxesSoA(c, i, netStamp, epoch)
		}
		row := make([]float64, g.N)
		for r := 0; r < g.N; r++ {
			var disp, dhpwl float64
			for mi, i := range cl.Members[ci] {
				cellCY := c.InstY[i] + c.InstHeight(i)/2
				dy := m.PairCenterY[r] - cellCY
				disp += float64(geom.AbsInt64(dy))
				for _, nb := range boxes[mi] {
					dhpwl += float64(netDeltaHPWL(nb.othersRect(), nb.hasOther,
						nb.ownXLo, nb.ownXHi, nb.ownYLo, nb.ownYHi, dy))
				}
			}
			row[r] = p.Alpha*disp + (1-p.Alpha)*dhpwl
		}
		m.Cost[ci] = row
	})
	return m, nil
}

// buildNetBoxesSoA is buildNetBoxes over the CSR adjacency. The pin slots of
// instance i appear in PinNets order and each net's pin refs appear in
// Nets[n].Pins order, so the emitted boxes match the AoS path exactly.
func buildNetBoxesSoA(c *soa.Compact, i int32, netStamp []int32, epoch int32) []netBoxT {
	var out []netBoxT
	for s := c.InstPinStart[i]; s < c.InstPinStart[i+1]; s++ {
		net := c.PinNet[s]
		if net == soa.NoNet || net == c.ClockNet || netStamp[net] == epoch {
			continue
		}
		netStamp[net] = epoch
		var others geom.BBox
		var own geom.BBox
		for k := c.NetPinStart[net]; k < c.NetPinStart[net+1]; k++ {
			inst, pin := c.NetPinInst[k], c.NetPinPin[k]
			x, y := c.RefPos(inst, pin)
			p := geom.Point{X: x, Y: y}
			if inst != soa.PortInst && inst == i {
				own.Extend(p)
				continue
			}
			others.Extend(p)
		}
		if !own.Valid() {
			continue
		}
		or := own.Rect()
		out = append(out, netBoxT{
			others:   others.Rect(),
			hasOther: others.Valid(),
			ownXLo:   or.Lo.X, ownXHi: or.Hi.X,
			ownYLo: or.Lo.Y, ownYHi: or.Hi.Y,
		})
	}
	return out
}
