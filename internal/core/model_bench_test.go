package core

import (
	"context"
	"testing"

	"mthplace/internal/netlist"
	"mthplace/internal/rowgrid"
	"mthplace/internal/soa"
)

// The BuildModel pair measures the RAP cost-model build over both data
// representations on the same clustered design. The SoA variant iterates the
// flat CSR arrays with an epoch-stamped dedup instead of the per-instance
// pointer walk + map, so the interesting numbers are allocations and the
// serial wall clock; the outputs are bit-identical (see
// TestBuildModelSoAEquivalence).

func benchModelInputs(b *testing.B) (context.Context, *netlist.Design, rowgrid.PairGrid, *Clusters, int) {
	b.Helper()
	d, g := placedDesign(b, 0.05)
	cl, err := BuildClusters(context.Background(), d, 0.3, 20)
	if err != nil {
		b.Fatal(err)
	}
	return ctxWithJobs(1), d, g, cl, nMinRFor(d, g)
}

func BenchmarkBuildModelAoS(b *testing.B) {
	ctx, d, g, cl, nMinR := benchModelInputs(b)
	b.ReportAllocs()
	for b.Loop() {
		if _, err := BuildModel(ctx, d, g, cl, nMinR, DefaultCostParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildModelSoA(b *testing.B) {
	ctx, d, g, cl, nMinR := benchModelInputs(b)
	c := soa.FromDesign(d)
	b.ReportAllocs()
	for b.Loop() {
		if _, err := BuildModelSoA(ctx, c, g, cl, nMinR, DefaultCostParams()); err != nil {
			b.Fatal(err)
		}
	}
}
