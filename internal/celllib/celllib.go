// Package celllib provides the synthetic mixed track-height standard-cell
// library used by the reproduction. It stands in for the ASAP7 7.5T
// (version 28) and 6T (version 26) libraries of the paper: every logic
// function exists in both track-heights and in RVT and LVT threshold
// flavours, with widths quantised to placement sites and simple
// linear-delay-model timing and power parameters.
//
// The library is deliberately small but complete enough that the synthetic
// netlist generator, the placer, the timing analyser and the power model all
// consume it through the same interfaces a real LEF/Liberty pair would
// provide: geometry (width, height, pin offsets), drive (output resistance,
// intrinsic delay), load (input pin capacitance) and power (internal energy
// per transition, leakage).
package celllib

import (
	"fmt"
	"sort"

	"mthplace/internal/geom"
	"mthplace/internal/tech"
)

// VT is a threshold-voltage flavour.
type VT uint8

const (
	// RVT is the regular threshold flavour.
	RVT VT = iota
	// LVT is the low threshold flavour: faster, leakier.
	LVT
)

// String implements fmt.Stringer.
func (v VT) String() string {
	if v == LVT {
		return "LVT"
	}
	return "RVT"
}

// Kind is a logic function implemented by the library.
type Kind uint8

// The logic functions available in the synthetic library.
const (
	INV Kind = iota
	BUF
	NAND2
	NOR2
	AND2
	OR2
	NAND3
	NOR3
	AOI21
	OAI21
	XOR2
	XNOR2
	MUX2
	FA // full adder (3 inputs, models its sum output)
	DFF
	numKinds
)

var kindNames = [numKinds]string{
	"INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "NAND3", "NOR3",
	"AOI21", "OAI21", "XOR2", "XNOR2", "MUX2", "FA", "DFF",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// kindSpec captures per-function base parameters (for the x1 RVT 6T cell).
type kindSpec struct {
	kind       Kind
	inputs     int
	baseSites  int64   // width in sites at drive x1
	growSites  int64   // extra sites per doubling of drive
	baseDelay  float64 // intrinsic delay, ps
	baseRes    float64 // drive resistance, kOhm
	baseCap    float64 // input pin capacitance, fF
	baseEnergy float64 // internal energy per output transition, fJ
	baseLeak   float64 // leakage, nW
	sequential bool
	drives     []int // available drive strengths
}

var kindSpecs = []kindSpec{
	{INV, 1, 1, 1, 4, 2.4, 0.60, 0.35, 0.9, false, []int{1, 2, 4, 8}},
	{BUF, 1, 2, 1, 7, 2.2, 0.65, 0.55, 1.2, false, []int{1, 2, 4, 8}},
	{NAND2, 2, 2, 1, 6, 2.8, 0.70, 0.60, 1.4, false, []int{1, 2, 4}},
	{NOR2, 2, 2, 1, 7, 3.1, 0.72, 0.62, 1.4, false, []int{1, 2, 4}},
	{AND2, 2, 3, 1, 9, 2.7, 0.68, 0.80, 1.7, false, []int{1, 2, 4}},
	{OR2, 2, 3, 1, 10, 2.9, 0.70, 0.82, 1.7, false, []int{1, 2, 4}},
	{NAND3, 3, 3, 1, 8, 3.2, 0.74, 0.85, 1.9, false, []int{1, 2}},
	{NOR3, 3, 3, 1, 9, 3.6, 0.76, 0.88, 1.9, false, []int{1, 2}},
	{AOI21, 3, 3, 1, 9, 3.3, 0.75, 0.90, 2.0, false, []int{1, 2}},
	{OAI21, 3, 3, 1, 9, 3.4, 0.75, 0.90, 2.0, false, []int{1, 2}},
	{XOR2, 2, 5, 2, 13, 3.8, 1.00, 1.40, 2.6, false, []int{1, 2}},
	{XNOR2, 2, 5, 2, 13, 3.8, 1.00, 1.40, 2.6, false, []int{1, 2}},
	{MUX2, 3, 5, 2, 12, 3.5, 0.95, 1.30, 2.5, false, []int{1, 2}},
	{FA, 3, 8, 2, 18, 4.2, 1.20, 2.20, 3.8, false, []int{1}},
	{DFF, 2, 9, 2, 22, 3.0, 0.80, 2.80, 4.6, true, []int{1, 2}},
}

// PinDir is a pin direction.
type PinDir uint8

const (
	// Input pin.
	Input PinDir = iota
	// Output pin.
	Output
)

// PinDef describes one pin of a master cell.
type PinDef struct {
	Name   string
	Dir    PinDir
	Offset geom.Point // relative to the cell's lower-left corner
	Cap    float64    // input capacitance in fF (0 for outputs)
}

// Master is one library cell: a function at a drive strength, track-height
// and VT flavour.
type Master struct {
	Name   string
	Kind   Kind
	Height tech.TrackHeight
	VT     VT
	Drive  int
	// Sites is the cell width in placement sites; Width is in DBU.
	Sites int64
	Width int64
	// RowH is the single-row cell height in DBU.
	RowH int64
	// Pins lists input pins first, then the single output pin.
	Pins []PinDef
	// Timing/power parameters for the linear delay model:
	// delay(ps) = IntrinsicDelay + DriveRes(kOhm) * load(fF).
	IntrinsicDelay float64
	DriveRes       float64
	// InternalEnergy is consumed per output transition (fJ).
	InternalEnergy float64
	// Leakage is static power in nW.
	Leakage float64
	// Sequential marks flip-flops.
	Sequential bool
}

// InputCap returns the capacitance of input pin i in fF.
func (m *Master) InputCap(i int) float64 {
	if i < 0 || i >= len(m.Pins) || m.Pins[i].Dir != Input {
		return 0
	}
	return m.Pins[i].Cap
}

// NumInputs returns the number of input pins.
func (m *Master) NumInputs() int {
	n := 0
	for _, p := range m.Pins {
		if p.Dir == Input {
			n++
		}
	}
	return n
}

// OutputPin returns the index of the output pin, or -1.
func (m *Master) OutputPin() int {
	for i, p := range m.Pins {
		if p.Dir == Output {
			return i
		}
	}
	return -1
}

// Library is an immutable set of masters over a technology.
type Library struct {
	Tech    *tech.Tech
	masters []*Master
	byName  map[string]*Master
}

// New builds the full synthetic library over the given technology: every
// kindSpec at every listed drive, in both track-heights and both VTs.
func New(t *tech.Tech) *Library {
	lib := &Library{Tech: t, byName: make(map[string]*Master)}
	for _, spec := range kindSpecs {
		for _, drive := range spec.drives {
			for _, h := range []tech.TrackHeight{tech.Short6T, tech.Tall7p5T} {
				for _, vt := range []VT{RVT, LVT} {
					m := buildMaster(t, spec, drive, h, vt)
					lib.masters = append(lib.masters, m)
					lib.byName[m.Name] = m
				}
			}
		}
	}
	sort.Slice(lib.masters, func(i, j int) bool { return lib.masters[i].Name < lib.masters[j].Name })
	return lib
}

// buildMaster derives one master from a kind spec. The 7.5T variant of a
// cell is ~30% stronger (lower drive resistance), presents ~25% more input
// capacitance and leaks ~60% more; LVT trades ~20% delay for ~3x leakage.
// These ratios reflect the qualitative 6T-vs-7.5T and RVT-vs-LVT trade-offs
// reported for ASAP7-class libraries.
func buildMaster(t *tech.Tech, spec kindSpec, drive int, h tech.TrackHeight, vt VT) *Master {
	sites := spec.baseSites
	for d := 1; d < drive; d *= 2 {
		sites += spec.growSites
	}
	res := spec.baseRes / float64(drive)
	delay := spec.baseDelay
	capIn := spec.baseCap * float64(drive)
	energy := spec.baseEnergy * float64(drive)
	leak := spec.baseLeak * float64(drive)
	if h == tech.Tall7p5T {
		res *= 0.70
		delay *= 0.88
		capIn *= 1.25
		energy *= 1.20
		leak *= 1.60
	}
	if vt == LVT {
		res *= 0.82
		delay *= 0.80
		leak *= 3.0
	}
	m := &Master{
		Name:           fmt.Sprintf("%s_X%d_%s_%s", spec.kind, drive, heightTag(h), vt),
		Kind:           spec.kind,
		Height:         h,
		VT:             vt,
		Drive:          drive,
		Sites:          sites,
		Width:          sites * t.SiteWidth,
		RowH:           t.RowHeight(h),
		IntrinsicDelay: delay,
		DriveRes:       res,
		InternalEnergy: energy,
		Leakage:        leak,
		Sequential:     spec.sequential,
	}
	m.Pins = buildPins(spec, m)
	return m
}

func heightTag(h tech.TrackHeight) string {
	if h == tech.Tall7p5T {
		return "75T"
	}
	return "6T"
}

// buildPins spreads input pins evenly across the cell width at 1/3 height
// and places the output pin near the right edge at 2/3 height, mimicking
// typical standard-cell pin access patterns.
func buildPins(spec kindSpec, m *Master) []PinDef {
	pins := make([]PinDef, 0, spec.inputs+1)
	names := inputPinNames(spec)
	for i := 0; i < spec.inputs; i++ {
		x := m.Width * int64(i+1) / int64(spec.inputs+1)
		pins = append(pins, PinDef{
			Name:   names[i],
			Dir:    Input,
			Offset: geom.Point{X: x, Y: m.RowH / 3},
			Cap:    inputCapFor(spec, m, i),
		})
	}
	pins = append(pins, PinDef{
		Name:   outputPinName(spec),
		Dir:    Output,
		Offset: geom.Point{X: m.Width - m.Width/8 - 1, Y: 2 * m.RowH / 3},
	})
	return pins
}

func inputPinNames(spec kindSpec) []string {
	if spec.kind == DFF {
		return []string{"D", "CK"}
	}
	base := []string{"A", "B", "C", "D1", "D2"}
	return base[:spec.inputs]
}

func outputPinName(spec kindSpec) string {
	if spec.kind == DFF {
		return "Q"
	}
	return "Y"
}

// inputCapFor returns the capacitance of a specific input pin. The DFF clock
// pin presents a smaller load than its data pin.
func inputCapFor(spec kindSpec, m *Master, i int) float64 {
	base := spec.baseCap * float64(m.Drive)
	if m.Height == tech.Tall7p5T {
		base *= 1.25
	}
	if spec.kind == DFF && i == 1 { // CK
		base *= 0.5
	}
	return base
}

// Master returns the master with the given name, or nil.
func (l *Library) Master(name string) *Master { return l.byName[name] }

// Masters returns all masters sorted by name. The returned slice must not be
// modified.
func (l *Library) Masters() []*Master { return l.masters }

// MastersByHeight returns all masters of one track-height, sorted by name.
func (l *Library) MastersByHeight(h tech.TrackHeight) []*Master {
	var out []*Master
	for _, m := range l.masters {
		if m.Height == h {
			out = append(out, m)
		}
	}
	return out
}

// Variant returns the master implementing the same kind, drive and VT as m
// at the requested track-height; nil if not in the library.
func (l *Library) Variant(m *Master, h tech.TrackHeight) *Master {
	if m == nil {
		return nil
	}
	if m.Height == h {
		return m
	}
	want := fmt.Sprintf("%s_X%d_%s_%s", m.Kind, m.Drive, heightTag(h), m.VT)
	return l.byName[want]
}

// Find returns the master for an exact (kind, drive, height, vt) tuple, or
// nil when the library has no such cell.
func (l *Library) Find(k Kind, drive int, h tech.TrackHeight, vt VT) *Master {
	return l.byName[fmt.Sprintf("%s_X%d_%s_%s", k, drive, heightTag(h), vt)]
}

// Kinds returns the kind specs available, exposed for generators that need
// the menu of functions with their input counts.
func Kinds() []struct {
	Kind       Kind
	Inputs     int
	Sequential bool
	Drives     []int
} {
	out := make([]struct {
		Kind       Kind
		Inputs     int
		Sequential bool
		Drives     []int
	}, 0, len(kindSpecs))
	for _, s := range kindSpecs {
		out = append(out, struct {
			Kind       Kind
			Inputs     int
			Sequential bool
			Drives     []int
		}{s.kind, s.inputs, s.sequential, append([]int(nil), s.drives...)})
	}
	return out
}
