package celllib

import (
	"testing"

	"mthplace/internal/tech"
)

func newLib(t *testing.T) *Library {
	t.Helper()
	return New(tech.Default())
}

func TestLibraryCompleteness(t *testing.T) {
	lib := newLib(t)
	// Every kind spec contributes drives × heights × vts masters.
	want := 0
	for _, s := range kindSpecs {
		want += len(s.drives) * 2 * 2
	}
	if got := len(lib.Masters()); got != want {
		t.Fatalf("library has %d masters, want %d", got, want)
	}
	for _, m := range lib.Masters() {
		if lib.Master(m.Name) != m {
			t.Errorf("lookup by name failed for %s", m.Name)
		}
	}
}

func TestMasterGeometry(t *testing.T) {
	lib := newLib(t)
	tc := lib.Tech
	for _, m := range lib.Masters() {
		if m.Width != m.Sites*tc.SiteWidth {
			t.Errorf("%s: width %d not sites*sitewidth", m.Name, m.Width)
		}
		if m.RowH != tc.RowHeight(m.Height) {
			t.Errorf("%s: row height %d mismatch", m.Name, m.RowH)
		}
		if m.Sites <= 0 {
			t.Errorf("%s: nonpositive sites", m.Name)
		}
		for _, p := range m.Pins {
			if p.Offset.X < 0 || p.Offset.X >= m.Width || p.Offset.Y < 0 || p.Offset.Y >= m.RowH {
				t.Errorf("%s pin %s offset %v outside cell %dx%d", m.Name, p.Name, p.Offset, m.Width, m.RowH)
			}
		}
	}
}

func TestMasterPinStructure(t *testing.T) {
	lib := newLib(t)
	for _, m := range lib.Masters() {
		out := m.OutputPin()
		if out == -1 {
			t.Fatalf("%s: no output pin", m.Name)
		}
		if out != len(m.Pins)-1 {
			t.Errorf("%s: output pin must be last", m.Name)
		}
		for i := 0; i < out; i++ {
			if m.Pins[i].Dir != Input {
				t.Errorf("%s: pin %d not input", m.Name, i)
			}
			if m.InputCap(i) <= 0 {
				t.Errorf("%s: input pin %d has nonpositive cap", m.Name, i)
			}
		}
		if m.InputCap(out) != 0 {
			t.Errorf("%s: output pin reports input cap", m.Name)
		}
		if m.InputCap(-1) != 0 || m.InputCap(len(m.Pins)) != 0 {
			t.Errorf("%s: out-of-range InputCap must be 0", m.Name)
		}
	}
}

func TestTrackHeightScaling(t *testing.T) {
	lib := newLib(t)
	short := lib.Find(NAND2, 2, tech.Short6T, RVT)
	tall := lib.Find(NAND2, 2, tech.Tall7p5T, RVT)
	if short == nil || tall == nil {
		t.Fatal("missing NAND2_X2 variants")
	}
	if !(tall.DriveRes < short.DriveRes) {
		t.Error("7.5T cell must have lower drive resistance (stronger)")
	}
	if !(tall.InputCap(0) > short.InputCap(0)) {
		t.Error("7.5T cell must present more input cap")
	}
	if !(tall.Leakage > short.Leakage) {
		t.Error("7.5T cell must leak more")
	}
	if tall.RowH <= short.RowH {
		t.Error("7.5T cell must be taller")
	}
	if tall.Width != short.Width {
		t.Error("track-height variants keep the same width in this library")
	}
}

func TestVTScaling(t *testing.T) {
	lib := newLib(t)
	rvt := lib.Find(INV, 4, tech.Short6T, RVT)
	lvt := lib.Find(INV, 4, tech.Short6T, LVT)
	if rvt == nil || lvt == nil {
		t.Fatal("missing INV_X4 variants")
	}
	if !(lvt.DriveRes < rvt.DriveRes && lvt.IntrinsicDelay < rvt.IntrinsicDelay) {
		t.Error("LVT must be faster than RVT")
	}
	if !(lvt.Leakage > rvt.Leakage) {
		t.Error("LVT must leak more than RVT")
	}
}

func TestDriveScaling(t *testing.T) {
	lib := newLib(t)
	x1 := lib.Find(INV, 1, tech.Short6T, RVT)
	x8 := lib.Find(INV, 8, tech.Short6T, RVT)
	if x1 == nil || x8 == nil {
		t.Fatal("missing INV drives")
	}
	if !(x8.DriveRes < x1.DriveRes) {
		t.Error("higher drive must have lower output resistance")
	}
	if !(x8.Width > x1.Width) {
		t.Error("higher drive must be wider")
	}
	if !(x8.InputCap(0) > x1.InputCap(0)) {
		t.Error("higher drive must present more input cap")
	}
}

func TestVariantRoundTrip(t *testing.T) {
	lib := newLib(t)
	for _, m := range lib.Masters() {
		v := lib.Variant(m, m.Height.Other())
		if v == nil {
			t.Fatalf("%s: missing other-height variant", m.Name)
		}
		if v.Kind != m.Kind || v.Drive != m.Drive || v.VT != m.VT {
			t.Errorf("%s: variant %s changed identity", m.Name, v.Name)
		}
		if back := lib.Variant(v, m.Height); back != m {
			t.Errorf("%s: variant round trip failed", m.Name)
		}
	}
	if lib.Variant(nil, tech.Short6T) != nil {
		t.Error("Variant(nil) must be nil")
	}
	// Same-height variant is identity.
	m := lib.Masters()[0]
	if lib.Variant(m, m.Height) != m {
		t.Error("same-height variant must be identity")
	}
}

func TestDFFSpecifics(t *testing.T) {
	lib := newLib(t)
	dff := lib.Find(DFF, 1, tech.Short6T, RVT)
	if dff == nil {
		t.Fatal("missing DFF_X1")
	}
	if !dff.Sequential {
		t.Error("DFF must be sequential")
	}
	if dff.NumInputs() != 2 {
		t.Errorf("DFF inputs = %d, want 2 (D, CK)", dff.NumInputs())
	}
	if dff.Pins[0].Name != "D" || dff.Pins[1].Name != "CK" || dff.Pins[2].Name != "Q" {
		t.Errorf("DFF pin names wrong: %v", []string{dff.Pins[0].Name, dff.Pins[1].Name, dff.Pins[2].Name})
	}
	if !(dff.InputCap(1) < dff.InputCap(0)) {
		t.Error("DFF clock pin must be lighter than data pin")
	}
}

func TestKindsMenu(t *testing.T) {
	ks := Kinds()
	if len(ks) != len(kindSpecs) {
		t.Fatalf("Kinds() returned %d entries, want %d", len(ks), len(kindSpecs))
	}
	seenSeq := false
	for _, k := range ks {
		if k.Inputs <= 0 || len(k.Drives) == 0 {
			t.Errorf("%s: bad menu entry", k.Kind)
		}
		if k.Sequential {
			seenSeq = true
		}
	}
	if !seenSeq {
		t.Error("menu must contain a sequential kind")
	}
}

func TestFindUnknownReturnsNil(t *testing.T) {
	lib := newLib(t)
	if lib.Find(FA, 8, tech.Short6T, RVT) != nil {
		t.Error("FA_X8 should not exist")
	}
	if lib.Master("nonsense") != nil {
		t.Error("unknown master must be nil")
	}
}
