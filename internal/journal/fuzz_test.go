package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes through the recovery path
// (ReadAll + Pending). The journal is what a crashed process leaves
// behind, so recovery must never panic or error on garbage — torn tails,
// binary noise, half-valid JSON — and whatever entries it does accept must
// reduce to a well-formed pending set.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"seq\":1,\"job\":\"job-1\",\"event\":\"submitted\",\"request\":{\"testcase\":\"aes_300\"}}\n"))
	f.Add([]byte("{\"seq\":1,\"job\":\"job-1\",\"event\":\"submitted\",\"request\":{}}\n{\"seq\":1,\"job\":\"job-1\",\"event\":\"done\"}\n"))
	f.Add([]byte("{\"seq\":2,\"job\":\"job-2\",\"ev")) // torn tail
	f.Add([]byte("\x00\xff garbage\n{\"seq\":3,\"job\":\"job-3\",\"event\":\"started\"}\n"))
	f.Add([]byte("{\"seq\":-9,\"job\":\"\",\"event\":\"submitted\"}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, FileName), data, 0o644); err != nil {
			t.Skip()
		}
		entries, _, err := ReadAll(dir)
		if err != nil {
			t.Fatalf("ReadAll must tolerate arbitrary journals, got %v", err)
		}
		pending, maxSeq := Pending(entries)
		seen := map[string]bool{}
		for i, p := range pending {
			if p.ID == "" {
				t.Fatalf("pending[%d] has empty ID", i)
			}
			if seen[p.ID] {
				t.Fatalf("pending[%d] duplicates job %s", i, p.ID)
			}
			seen[p.ID] = true
			if p.Seq > maxSeq {
				t.Fatalf("pending[%d].Seq %d exceeds maxSeq %d", i, p.Seq, maxSeq)
			}
			if i > 0 && pending[i-1].Seq > p.Seq {
				t.Fatalf("pending not in seq order at %d", i)
			}
			if len(p.Request) == 0 {
				t.Fatalf("pending[%d] has no request payload", i)
			}
		}
		// Recovery is idempotent: appending the same entries back and
		// re-reading yields the same pending set.
		j, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		for _, e := range entries {
			if err := j.Append(e); err != nil {
				t.Fatalf("re-append of accepted entry failed: %v", err)
			}
		}
	})
}
