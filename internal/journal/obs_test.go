package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	if err := j.Append(Entry{Job: "job-1", Event: EventDone}); err != nil {
		t.Errorf("nil Append returned %v", err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil Close returned %v", err)
	}
}

func TestOpenFailsWhenDirIsAFile(t *testing.T) {
	base := t.TempDir()
	blocked := filepath.Join(base, "not-a-dir")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(blocked); err == nil {
		t.Error("Open over a plain file should fail")
	}
}

func TestReadAllSkipsOverlongGarbageLine(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Seq: 1, Job: "job-1", Event: EventSubmitted, Request: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// A garbage line longer than the scanner's 1 MiB buffer simulates a
	// pathologically torn tail; it must be skipped, not fatal.
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(strings.Repeat("x", 2<<20)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	entries, skipped, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(entries) != 1 || entries[0].Job != "job-1" {
		t.Errorf("entries = %+v, want the one intact line", entries)
	}
	if skipped == 0 {
		t.Error("over-long garbage not counted as skipped")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Job: "job-1", Event: EventDone}); err == nil {
		t.Error("Append after Close should fail")
	}
}
