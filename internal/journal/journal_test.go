package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func entry(seq int64, job, event string) Entry {
	e := Entry{Seq: seq, Job: job, Event: event}
	if event == EventSubmitted {
		e.Request = json.RawMessage(`{"testcase":"aes_300"}`)
	}
	return e
}

func TestAppendAndReadAll(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		entry(1, "job-1", EventSubmitted),
		entry(1, "job-1", EventStarted),
		entry(1, "job-1", EventDone),
	}
	for _, e := range want {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadAll(dir)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadAll: err=%v skipped=%d", err, skipped)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Job != want[i].Job || got[i].Event != want[i].Event || got[i].Seq != want[i].Seq {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
		if got[i].Time.IsZero() {
			t.Errorf("entry %d: Append did not stamp a time", i)
		}
	}
}

func TestReadAllMissingFileIsEmpty(t *testing.T) {
	got, skipped, err := ReadAll(t.TempDir())
	if err != nil || skipped != 0 || len(got) != 0 {
		t.Fatalf("missing journal: got=%v skipped=%d err=%v", got, skipped, err)
	}
}

// TestReadAllToleratesTornTail: a crash mid-Append leaves a partial final
// line; recovery must keep every complete entry and count the torn one.
func TestReadAllToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(entry(1, "job-1", EventSubmitted)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"job":"job-2","ev`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, skipped, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || skipped != 1 {
		t.Fatalf("got %d entries, %d skipped; want 1 and 1", len(got), skipped)
	}
	pending, maxSeq := Pending(got)
	if len(pending) != 1 || pending[0].ID != "job-1" || maxSeq != 1 {
		t.Fatalf("pending = %+v, maxSeq = %d", pending, maxSeq)
	}
}

func TestPending(t *testing.T) {
	entries := []Entry{
		entry(1, "job-1", EventSubmitted),
		entry(2, "job-2", EventSubmitted),
		entry(3, "job-3", EventSubmitted),
		entry(1, "job-1", EventStarted),
		entry(1, "job-1", EventDone),
		entry(3, "job-3", EventCanceled),
		entry(2, "job-2", EventStarted), // started but never finished
	}
	pending, maxSeq := Pending(entries)
	if maxSeq != 3 {
		t.Errorf("maxSeq = %d, want 3", maxSeq)
	}
	if len(pending) != 1 || pending[0].ID != "job-2" || pending[0].Seq != 2 {
		t.Fatalf("pending = %+v, want just job-2", pending)
	}
	if len(pending[0].Request) == 0 {
		t.Error("pending job lost its request payload")
	}
}

func TestPendingOrdersBySeq(t *testing.T) {
	entries := []Entry{
		entry(5, "job-5", EventSubmitted),
		entry(2, "job-2", EventSubmitted),
		entry(9, "job-9", EventSubmitted),
	}
	pending, maxSeq := Pending(entries)
	if maxSeq != 9 || len(pending) != 3 {
		t.Fatalf("pending = %+v, maxSeq = %d", pending, maxSeq)
	}
	for i, want := range []string{"job-2", "job-5", "job-9"} {
		if pending[i].ID != want {
			t.Errorf("pending[%d] = %s, want %s", i, pending[i].ID, want)
		}
	}
}
