// Package journal gives the job server a crash-safe, append-only record of
// job lifecycle events. Every accepted job is written to a JSONL file
// before it is queued, and again at each state transition; after a crash,
// replaying the journal tells the server exactly which jobs were accepted
// but never finished, so it can re-run them. Because every placement flow
// is deterministic in its request (spec, seed, scale), a replayed job
// produces metrics identical to what the crashed process would have
// returned.
//
// The format is one JSON object per line (JSONL). Appends are flushed and
// fsynced per entry — jobs run for seconds, so durability costs nothing
// measurable — and a crash can therefore corrupt at most the final,
// partially-written line. ReadAll tolerates that: unparseable lines are
// counted and skipped, never fatal, so recovery cannot be wedged by the
// very crash it exists to survive.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// FileName is the journal file inside the journal directory.
const FileName = "jobs.jsonl"

// Lifecycle events. Submitted carries the job request; Failed carries the
// error string; Leased carries the owning backend and the lease deadline;
// Rerouted carries the new backend; the rest are bare transitions. The
// lease events are informational for replay — a job that was leased but
// never reached a terminal event is still pending, exactly like a started
// one — but they make the journal a complete audit trail: the chaos suite
// proves exactly-once completion by counting terminal events per job.
const (
	EventSubmitted    = "submitted"
	EventStarted      = "started"
	EventLeased       = "leased"
	EventLeaseExpired = "lease_expired"
	EventRerouted     = "rerouted"
	EventDone         = "done"
	EventFailed       = "failed"
	EventCanceled     = "canceled"
)

// Entry is one journal line.
type Entry struct {
	// Seq is the job's numeric sequence (monotone per server lifetime;
	// replay restores the counter past the highest seen).
	Seq int64 `json:"seq"`
	// Job is the job ID ("job-7").
	Job string `json:"job"`
	// Event is one of the Event* constants.
	Event string `json:"event"`
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Request is the original job request, set on EventSubmitted only.
	Request json.RawMessage `json:"request,omitempty"`
	// Error is the failure message, set on EventFailed only.
	Error string `json:"error,omitempty"`
	// Backend names the scheduler backend the job was routed to, set on
	// EventSubmitted, EventLeased and EventRerouted when known.
	// Informational: replay re-routes through the live ring rather than
	// trusting a recorded lane that may no longer exist after a topology
	// change.
	Backend string `json:"backend,omitempty"`
	// Deadline is the lease expiry, set on EventLeased only.
	Deadline *time.Time `json:"deadline,omitempty"`
	// Trace is the job's W3C traceparent, set on EventSubmitted when the
	// job carries distributed trace context. Replay re-adopts it so a job
	// recovered after a crash keeps the TraceID its client is watching;
	// it also makes the journal greppable by trace ID.
	Trace string `json:"trace,omitempty"`
}

// Journal appends entries to the file. Safe for concurrent use.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// Open creates dir if needed and opens its journal file for appending.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append writes one entry and syncs it to disk. The single write keeps the
// line atomic with respect to concurrent appenders; the sync bounds what a
// crash can lose to entries not yet acknowledged.
func (j *Journal) Append(e Entry) error {
	if j == nil {
		return nil
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadAll parses dir's journal. Lines that fail to parse — the torn tail a
// crash leaves behind, or any other corruption — are skipped and counted in
// skipped, never fatal. A missing file is an empty journal.
func ReadAll(dir string) (entries []Entry, skipped int, err error) {
	f, err := os.Open(filepath.Join(dir, FileName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if json.Unmarshal(line, &e) != nil || e.Job == "" || e.Event == "" {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		// An over-long garbage line is corruption like any other: drop it.
		skipped++
	}
	return entries, skipped, nil
}

// PendingJob is a job the journal shows accepted but not finished.
type PendingJob struct {
	ID      string
	Seq     int64
	Request json.RawMessage
}

// Pending reduces a journal to the jobs that never reached a terminal
// event, in sequence order, plus the highest sequence number seen (0 when
// the journal is empty). A started-but-unfinished job is still pending:
// the process died under it, and determinism makes re-running it safe.
func Pending(entries []Entry) (pending []PendingJob, maxSeq int64) {
	open := map[string]PendingJob{}
	for _, e := range entries {
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
		switch e.Event {
		case EventSubmitted:
			if len(e.Request) > 0 {
				open[e.Job] = PendingJob{ID: e.Job, Seq: e.Seq, Request: e.Request}
			}
		case EventDone, EventFailed, EventCanceled:
			delete(open, e.Job)
		}
	}
	for _, p := range open {
		pending = append(pending, p)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].Seq < pending[j].Seq })
	return pending, maxSeq
}
