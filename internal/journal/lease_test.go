package journal

import (
	"encoding/json"
	"testing"
	"time"
)

// TestLeaseDeadlineRoundTrip verifies a leased entry's deadline survives
// the append/read cycle to the instant — the lease monitor's expiry math
// depends on it.
func TestLeaseDeadlineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second).Round(0)
	err = j.Append(Entry{
		Seq: 1, Job: "job-1", Event: EventLeased,
		Backend: "remote-0", Deadline: &deadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	entries, skipped, err := ReadAll(dir)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadAll: err=%v skipped=%d", err, skipped)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Event != EventLeased || e.Backend != "remote-0" {
		t.Fatalf("entry mangled: %+v", e)
	}
	if e.Deadline == nil || !e.Deadline.Equal(deadline) {
		t.Fatalf("deadline = %v, want %v", e.Deadline, deadline)
	}
}

// TestDeadlineOmittedWhenAbsent verifies non-lease events serialize with no
// deadline key at all, keeping the journal grep-friendly.
func TestDeadlineOmittedWhenAbsent(t *testing.T) {
	raw, err := json.Marshal(Entry{Seq: 1, Job: "job-1", Event: EventStarted, Time: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["deadline"]; ok {
		t.Fatalf("deadline key present on a non-lease event: %s", raw)
	}
}

// TestPendingIgnoresLeaseEvents verifies the replay contract: lease,
// lease-expiry and re-route events are an audit trail, not state
// transitions. A job whose last word is any of them is still pending; only
// a terminal event retires it.
func TestPendingIgnoresLeaseEvents(t *testing.T) {
	deadline := time.Now().Add(time.Second)
	req := json.RawMessage(`{"testcase":"aes_300"}`)
	entries := []Entry{
		{Seq: 1, Job: "job-1", Event: EventSubmitted, Request: req, Backend: "remote-0"},
		{Seq: 1, Job: "job-1", Event: EventStarted},
		{Seq: 1, Job: "job-1", Event: EventLeased, Backend: "remote-0", Deadline: &deadline},
		{Seq: 1, Job: "job-1", Event: EventLeaseExpired},
		{Seq: 1, Job: "job-1", Event: EventRerouted, Backend: "remote-1"},
		{Seq: 2, Job: "job-2", Event: EventSubmitted, Request: req},
		{Seq: 2, Job: "job-2", Event: EventLeased, Backend: "remote-1", Deadline: &deadline},
		{Seq: 2, Job: "job-2", Event: EventDone},
	}
	pending, maxSeq := Pending(entries)
	if maxSeq != 2 {
		t.Fatalf("maxSeq = %d, want 2", maxSeq)
	}
	if len(pending) != 1 || pending[0].ID != "job-1" {
		t.Fatalf("pending = %+v, want exactly job-1 (leased/expired/rerouted are not terminal)", pending)
	}
}
