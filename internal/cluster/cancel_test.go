package cluster

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestKMeans2DCancelStopsEarly: the Lloyd loop checks the context once per
// iteration, so a cancel landing mid-clustering stops the run within one
// assignment pass — well before the uncanceled runtime — and the partial
// result reports how far it got.
func TestKMeans2DCancelStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point2, 40000)
	for i := range pts {
		pts[i] = Point2{rng.Float64() * 1e6, rng.Float64() * 1e6}
	}
	const k, iters = 400, 40

	start := time.Now()
	full := KMeans2D(context.Background(), pts, k, iters)
	fullTime := time.Since(start)
	if fullTime < 100*time.Millisecond {
		t.Skipf("k-means too fast on this host (%v) for a mid-run cancel", fullTime)
	}

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(fullTime/10, cancel)
	start = time.Now()
	partial := KMeans2D(ctx, pts, k, iters)
	elapsed := time.Since(start)
	if elapsed >= fullTime {
		t.Errorf("canceled run took %v, not faster than full run %v", elapsed, fullTime)
	}
	if partial.Iterations >= full.Iterations {
		t.Errorf("canceled run did %d iterations, full run %d — cancel never landed",
			partial.Iterations, full.Iterations)
	}
	// The partial result is still internally consistent: every point has an
	// assignment within range.
	for i, a := range partial.Assign {
		if a < 0 || a >= len(partial.Centroids) {
			t.Fatalf("point %d assigned to out-of-range centroid %d", i, a)
		}
	}
}

// TestKMeans2DPreCanceled: a context canceled before the call returns the
// seeded centroids untouched after zero iterations.
func TestKMeans2DPreCanceled(t *testing.T) {
	pts := []Point2{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := KMeans2D(ctx, pts, 2, 10)
	if res.Iterations != 0 {
		t.Fatalf("Iterations = %d, want 0", res.Iterations)
	}
}
