package cluster

import (
	"math"
	"math/rand"
	"testing"

	"mthplace/internal/par"
)

// TestKMeans2DParallelEquivalence asserts the tentpole determinism
// guarantee: jobs=1 and jobs=8 produce bit-identical clusterings, because
// the centroid accumulation merges canonical per-chunk partial sums in
// fixed chunk order.
func TestKMeans2DParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{5, 300, 2000} {
		pts := make([]Point2, n)
		for i := range pts {
			pts[i] = Point2{rng.Float64() * 1e6, rng.Float64() * 1e6}
		}
		k := n/10 + 1
		old := par.SetJobs(1)
		a := KMeans2D(pts, k, 40)
		par.SetJobs(8)
		b := KMeans2D(pts, k, 40)
		par.SetJobs(old)
		if a.Iterations != b.Iterations {
			t.Fatalf("n=%d: iterations %d vs %d", n, a.Iterations, b.Iterations)
		}
		for i := range a.Assign {
			if a.Assign[i] != b.Assign[i] {
				t.Fatalf("n=%d: assign[%d] %d vs %d", n, i, a.Assign[i], b.Assign[i])
			}
		}
		for c := range a.Centroids {
			if a.Sizes[c] != b.Sizes[c] {
				t.Fatalf("n=%d: sizes[%d] %d vs %d", n, c, a.Sizes[c], b.Sizes[c])
			}
			if math.Float64bits(a.Centroids[c].X) != math.Float64bits(b.Centroids[c].X) ||
				math.Float64bits(a.Centroids[c].Y) != math.Float64bits(b.Centroids[c].Y) {
				t.Fatalf("n=%d: centroid %d not bit-identical: %v vs %v", n, c, a.Centroids[c], b.Centroids[c])
			}
		}
	}
}
