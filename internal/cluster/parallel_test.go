package cluster

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"mthplace/internal/par"
)

// TestKMeans2DParallelEquivalence asserts the tentpole determinism
// guarantee: jobs=1 and jobs=8 produce bit-identical clusterings, because
// the centroid accumulation merges canonical per-chunk partial sums in
// fixed chunk order. The worker bounds arrive as scoped pools on the
// context, so the two runs could even execute concurrently.
func TestKMeans2DParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctx1 := par.WithPool(context.Background(), par.NewPool(1))
	ctx8 := par.WithPool(context.Background(), par.NewPool(8))
	for _, n := range []int{5, 300, 2000} {
		pts := make([]Point2, n)
		for i := range pts {
			pts[i] = Point2{rng.Float64() * 1e6, rng.Float64() * 1e6}
		}
		k := n/10 + 1
		a := KMeans2D(ctx1, pts, k, 40)
		b := KMeans2D(ctx8, pts, k, 40)
		if a.Iterations != b.Iterations {
			t.Fatalf("n=%d: iterations %d vs %d", n, a.Iterations, b.Iterations)
		}
		for i := range a.Assign {
			if a.Assign[i] != b.Assign[i] {
				t.Fatalf("n=%d: assign[%d] %d vs %d", n, i, a.Assign[i], b.Assign[i])
			}
		}
		for c := range a.Centroids {
			if a.Sizes[c] != b.Sizes[c] {
				t.Fatalf("n=%d: sizes[%d] %d vs %d", n, c, a.Sizes[c], b.Sizes[c])
			}
			if math.Float64bits(a.Centroids[c].X) != math.Float64bits(b.Centroids[c].X) ||
				math.Float64bits(a.Centroids[c].Y) != math.Float64bits(b.Centroids[c].Y) {
				t.Fatalf("n=%d: centroid %d not bit-identical: %v vs %v", n, c, a.Centroids[c], b.Centroids[c])
			}
		}
	}
}
