package cluster

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridSeedsCountAndBounds(t *testing.T) {
	pts := []Point2{{0, 0}, {100, 0}, {0, 100}, {100, 100}, {50, 50}}
	for k := 1; k <= 5; k++ {
		seeds := GridSeeds(pts, k)
		if len(seeds) != k {
			t.Fatalf("k=%d: got %d seeds", k, len(seeds))
		}
		for _, s := range seeds {
			if s.X < 0 || s.X > 100 || s.Y < 0 || s.Y > 100 {
				t.Fatalf("seed %v outside bbox", s)
			}
		}
	}
	if GridSeeds(nil, 3) != nil {
		t.Error("no points must give no seeds")
	}
	if GridSeeds(pts, 0) != nil {
		t.Error("k=0 must give no seeds")
	}
}

func TestGridSeedsPruneOuter(t *testing.T) {
	// k=5, p=3: 9 grid points, 4 dropped. The survivors must include the
	// exact grid center and be the innermost ones.
	pts := []Point2{{0, 0}, {90, 90}}
	seeds := GridSeeds(pts, 5)
	center := Point2{45, 45}
	found := false
	for _, s := range seeds {
		if math.Abs(s.X-center.X) < 1e-9 && math.Abs(s.Y-center.Y) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Errorf("grid center missing from seeds %v", seeds)
	}
	// No corner (ring-1 Chebyshev corners are pruned last among ring 1, but
	// with k=5 the four corners are exactly the dropped ones).
	for _, s := range seeds {
		isCorner := (math.Abs(s.X-15) < 1e-9 || math.Abs(s.X-75) < 1e-9) &&
			(math.Abs(s.Y-15) < 1e-9 || math.Abs(s.Y-75) < 1e-9)
		if isCorner {
			t.Errorf("corner seed %v should have been pruned", s)
		}
	}
}

func TestKMeans2DSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pts []Point2
	centers := []Point2{{0, 0}, {1000, 0}, {0, 1000}, {1000, 1000}}
	for _, c := range centers {
		for i := 0; i < 50; i++ {
			pts = append(pts, Point2{c.X + rng.Float64()*50, c.Y + rng.Float64()*50})
		}
	}
	r := KMeans2D(context.Background(), pts, 4, 50)
	if r.K() != 4 {
		t.Fatalf("K = %d", r.K())
	}
	// Every true group must map to a single k-means cluster.
	for g := 0; g < 4; g++ {
		first := r.Assign[g*50]
		for i := 1; i < 50; i++ {
			if r.Assign[g*50+i] != first {
				t.Fatalf("group %d split across clusters", g)
			}
		}
	}
	// Sizes sum to sample count and are all positive.
	total := 0
	for _, s := range r.Sizes {
		if s <= 0 {
			t.Error("empty cluster survived")
		}
		total += s
	}
	if total != len(pts) {
		t.Errorf("sizes sum %d != %d", total, len(pts))
	}
}

func TestKMeans2DClamping(t *testing.T) {
	pts := []Point2{{1, 1}, {2, 2}, {3, 3}}
	r := KMeans2D(context.Background(), pts, 10, 10)
	if r.K() != 3 {
		t.Errorf("k clamped to %d, want 3", r.K())
	}
	r = KMeans2D(context.Background(), pts, 0, 10)
	if r.K() != 1 {
		t.Errorf("k=0 clamped to %d, want 1", r.K())
	}
	if KMeans2D(context.Background(), nil, 3, 10).K() != 0 {
		t.Error("empty input must give empty result")
	}
}

func TestKMeans2DDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point2, 300)
	for i := range pts {
		pts[i] = Point2{rng.Float64() * 1e5, rng.Float64() * 1e5}
	}
	a := KMeans2D(context.Background(), pts, 30, 40)
	b := KMeans2D(context.Background(), pts, 30, 40)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("k-means not deterministic")
		}
	}
}

func TestKMeans2DMembersConsistent(t *testing.T) {
	pts := []Point2{{0, 0}, {1, 0}, {100, 100}, {101, 100}}
	r := KMeans2D(context.Background(), pts, 2, 20)
	mem := r.Members()
	count := 0
	for c, ms := range mem {
		for _, i := range ms {
			if r.Assign[i] != c {
				t.Fatalf("member list inconsistent at cluster %d sample %d", c, i)
			}
			count++
		}
	}
	if count != len(pts) {
		t.Errorf("members cover %d of %d samples", count, len(pts))
	}
}

// Property: k-means never leaves an empty cluster and SSE of the final
// result is no worse than assigning everything to seed clusters would allow
// growing over iterations (monotonic non-increase is the classic Lloyd
// property; we check final <= first-iteration SSE).
func TestKMeansSSEProperty(t *testing.T) {
	f := func(raw []uint16, kRaw uint8) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		pts := make([]Point2, len(raw))
		for i, v := range raw {
			pts[i] = Point2{float64(v % 997), float64(v / 61)}
		}
		k := int(kRaw)%8 + 1
		one := KMeans2D(context.Background(), pts, k, 1)
		full := KMeans2D(context.Background(), pts, k, 60)
		for _, s := range full.Sizes {
			if s <= 0 {
				return false
			}
		}
		return SSE(pts, full) <= SSE(pts, one)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKMeans1D(t *testing.T) {
	vals := []float64{0, 1, 2, 100, 101, 102, 200, 201}
	r := KMeans1D(vals, 3, 50)
	if len(r.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(r.Centroids))
	}
	// The three natural groups separate.
	if r.Assign[0] != r.Assign[1] || r.Assign[1] != r.Assign[2] {
		t.Error("low group split")
	}
	if r.Assign[3] != r.Assign[4] || r.Assign[4] != r.Assign[5] {
		t.Error("mid group split")
	}
	if r.Assign[6] != r.Assign[7] {
		t.Error("high group split")
	}
	if r.Assign[0] == r.Assign[3] || r.Assign[3] == r.Assign[6] {
		t.Error("groups merged")
	}
}

func TestKMeans1DEdges(t *testing.T) {
	if KMeans1D(nil, 2, 10).Assign != nil {
		t.Error("empty input")
	}
	r := KMeans1D([]float64{5}, 4, 10)
	if len(r.Centroids) != 1 || r.Assign[0] != 0 {
		t.Error("single value must form one cluster")
	}
	// Identical values collapse gracefully.
	r = KMeans1D([]float64{7, 7, 7, 7}, 2, 10)
	for _, a := range r.Assign {
		if a != r.Assign[0] {
			t.Error("identical values should share a cluster")
		}
	}
}
