// Package cluster implements the k-means clustering used by the row
// assignment flow. Section III-B of the paper clusters minority cells with
// 2-D k-means before building the ILP: the cluster count is N_C = s · N_minC
// for clustering resolution s in (0,1), and the initial centroids are the
// inner points of a p×p grid over the placement area with p = ceil(sqrt(N_C))
// (the (p² − N_C) outermost grid points are excluded).
//
// The 1-D variant is used by the reimplemented prior work [10], which
// k-means-clusters minority cell y-coordinates to pick minority rows.
package cluster

import (
	"context"
	"math"
	"sort"
	"time"

	"mthplace/internal/obs"
	"mthplace/internal/par"
)

// Point2 is a 2-D sample.
type Point2 struct {
	X, Y float64
}

// Result is a k-means clustering of 2-D samples.
type Result struct {
	// Assign maps sample index to cluster index in [0, K).
	Assign []int
	// Centroids are the final cluster centers.
	Centroids []Point2
	// Sizes counts samples per cluster.
	Sizes []int
	// Iterations actually performed.
	Iterations int
}

// K returns the cluster count.
func (r *Result) K() int { return len(r.Centroids) }

// Members returns the sample indices of each cluster.
func (r *Result) Members() [][]int {
	out := make([][]int, r.K())
	for i, c := range r.Assign {
		out[c] = append(out[c], i)
	}
	return out
}

// GridSeeds returns the paper's initial centroids: a p×p grid of cell
// centers over the bounding box of the samples, p = ceil(sqrt(k)), with the
// (p²−k) points most distant from the grid center (in grid index space)
// excluded — i.e. pruned "from the outer region of the grid".
func GridSeeds(pts []Point2, k int) []Point2 {
	if k <= 0 || len(pts) == 0 {
		return nil
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	p := int(math.Ceil(math.Sqrt(float64(k))))
	type cand struct {
		pt   Point2
		ring float64 // distance from grid center in index space
		idx  int
	}
	cands := make([]cand, 0, p*p)
	c := float64(p-1) / 2
	for gy := 0; gy < p; gy++ {
		for gx := 0; gx < p; gx++ {
			x := minX + (maxX-minX)*(float64(gx)+0.5)/float64(p)
			y := minY + (maxY-minY)*(float64(gy)+0.5)/float64(p)
			dx, dy := float64(gx)-c, float64(gy)-c
			cands = append(cands, cand{Point2{x, y}, math.Max(math.Abs(dx), math.Abs(dy))*1e6 + dx*dx + dy*dy, gy*p + gx})
		}
	}
	// Keep the k innermost points; stable order for determinism.
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].ring != cands[j].ring {
			return cands[i].ring < cands[j].ring
		}
		return cands[i].idx < cands[j].idx
	})
	out := make([]Point2, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].pt
	}
	return out
}

// KMeans2D clusters the samples into k clusters starting from the paper's
// grid seeds, running standard Lloyd iterations until assignments are stable
// or maxIter is reached. k is clamped to [1, len(pts)]. The algorithm is
// fully deterministic: assignment and centroid accumulation run on the
// worker pool carried by ctx (par.FromContext) over par's canonical chunks,
// and the per-chunk partial sums merge in fixed chunk order, so the result
// is bit-identical at any pool bound (including fully sequential runs).
//
// Cancellation is checked between Lloyd iterations: when ctx is done the
// loop stops within one iteration and the partial result is returned.
// Callers that must report the cancellation consult ctx.Err themselves
// (core.BuildClusters translates it to errs.ErrCanceled).
func KMeans2D(ctx context.Context, pts []Point2, k, maxIter int) *Result {
	if len(pts) == 0 {
		return &Result{}
	}
	if k < 1 {
		k = 1
	}
	if k > len(pts) {
		k = len(pts)
	}
	cent := GridSeeds(pts, k)
	assign := make([]int, len(pts))
	for i := range assign {
		assign[i] = -1
	}
	// Observability: one span per clustering, one progress event per Lloyd
	// iteration (movement = samples that switched cluster). Disabled sinks
	// cost two context lookups for the whole call; the moved counter itself
	// is deterministic bookkeeping with no effect on the clustering.
	span := obs.StartSpan(ctx, "cluster.kmeans2d")
	span.SetArg("samples", len(pts))
	span.SetArg("k", k)
	sink := obs.Progress(ctx)
	start := time.Now()

	// Per-chunk partial reductions of the assignment scan. Chunk boundaries
	// depend only on len(pts), never on the worker count — that fixes the
	// float summation order of the centroid accumulators.
	type partial struct {
		sizes   []int
		sx, sy  []float64
		moved   int
		changed bool
	}
	parts := make([]partial, par.NumChunks(len(pts)))
	for ci := range parts {
		parts[ci] = partial{sizes: make([]int, k), sx: make([]float64, k), sy: make([]float64, k)}
	}
	sizes := make([]int, k)
	sx := make([]float64, k)
	sy := make([]float64, k)
	pool := par.FromContext(ctx)
	iters := 0
	for ; iters < maxIter; iters++ {
		if ctx.Err() != nil {
			break
		}
		// Assignment + per-chunk accumulation: each chunk owns assign[lo:hi]
		// and its private partial sums.
		pool.ForChunks(len(pts), func(ci, lo, hi int) {
			pt := &parts[ci]
			for c := 0; c < k; c++ {
				pt.sizes[c], pt.sx[c], pt.sy[c] = 0, 0, 0
			}
			pt.changed = false
			pt.moved = 0
			for i := lo; i < hi; i++ {
				p := pts[i]
				best, bestD := 0, math.Inf(1)
				for c, q := range cent {
					d := sq(p.X-q.X) + sq(p.Y-q.Y)
					if d < bestD {
						best, bestD = c, d
					}
				}
				if assign[i] != best {
					assign[i] = best
					pt.changed = true
					pt.moved++
				}
				pt.sizes[best]++
				pt.sx[best] += p.X
				pt.sy[best] += p.Y
			}
		})
		// Deterministic merge in chunk order.
		changed := false
		moved := 0
		for c := 0; c < k; c++ {
			sizes[c], sx[c], sy[c] = 0, 0, 0
		}
		for ci := range parts {
			changed = changed || parts[ci].changed
			moved += parts[ci].moved
			for c := 0; c < k; c++ {
				sizes[c] += parts[ci].sizes[c]
				sx[c] += parts[ci].sx[c]
				sy[c] += parts[ci].sy[c]
			}
		}
		if sink != nil {
			sink(obs.Event{Source: "kmeans", Kind: "iteration", Iter: iters + 1,
				Moved: moved, ElapsedMS: float64(time.Since(start).Microseconds()) / 1000})
		}
		if !changed && iters > 0 {
			break
		}
		// Recompute centroids from the merged sums.
		for c := 0; c < k; c++ {
			if sizes[c] > 0 {
				cent[c] = Point2{sx[c] / float64(sizes[c]), sy[c] / float64(sizes[c])}
			}
		}
		reseedEmpty(pts, cent, assign, sizes)
	}
	span.SetArg("iterations", iters)
	span.End()
	return &Result{Assign: assign, Centroids: cent, Sizes: sizes, Iterations: iters}
}

// reseedEmpty moves each empty cluster's centroid onto the sample farthest
// from its current centroid, taken from the largest cluster, so every
// cluster ends non-empty (required: cluster widths feed the row capacity
// constraint and empty clusters would create degenerate ILP rows).
func reseedEmpty(pts []Point2, cent []Point2, assign []int, sizes []int) {
	for c := range cent {
		if sizes[c] > 0 {
			continue
		}
		// Largest cluster donates its farthest member.
		big := 0
		for j := range sizes {
			if sizes[j] > sizes[big] {
				big = j
			}
		}
		if sizes[big] <= 1 {
			continue
		}
		far, farD := -1, -1.0
		for i, p := range pts {
			if assign[i] != big {
				continue
			}
			d := sq(p.X-cent[big].X) + sq(p.Y-cent[big].Y)
			if d > farD {
				far, farD = i, d
			}
		}
		if far >= 0 {
			assign[far] = c
			sizes[big]--
			sizes[c]++
			cent[c] = pts[far]
		}
	}
}

func sq(v float64) float64 { return v * v }

// SSE returns the sum of squared distances of samples to their centroids —
// the k-means objective, used by tests to check convergence behaviour.
func SSE(pts []Point2, r *Result) float64 {
	var s float64
	for i, p := range pts {
		c := r.Centroids[r.Assign[i]]
		s += sq(p.X-c.X) + sq(p.Y-c.Y)
	}
	return s
}

// Result1D is a clustering of scalar samples.
type Result1D struct {
	Assign    []int
	Centroids []float64
	Sizes     []int
}

// KMeans1D clusters scalar samples into k clusters with Lloyd iterations,
// seeding centroids at evenly spaced quantiles. Used by the [10] baseline on
// minority-cell y-coordinates.
func KMeans1D(vals []float64, k, maxIter int) *Result1D {
	if len(vals) == 0 {
		return &Result1D{}
	}
	if k < 1 {
		k = 1
	}
	if k > len(vals) {
		k = len(vals)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	cent := make([]float64, k)
	for c := 0; c < k; c++ {
		q := (float64(c) + 0.5) / float64(k)
		cent[c] = sorted[int(q*float64(len(sorted)))]
	}
	assign := make([]int, len(vals))
	sizes := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := range sizes {
			sizes[i] = 0
		}
		for i, v := range vals {
			best, bestD := 0, math.Inf(1)
			for c, q := range cent {
				d := sq(v - q)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			sizes[best]++
		}
		sum := make([]float64, k)
		for i, v := range vals {
			sum[assign[i]] += v
		}
		for c := 0; c < k; c++ {
			if sizes[c] > 0 {
				cent[c] = sum[c] / float64(sizes[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	return &Result1D{Assign: assign, Centroids: cent, Sizes: sizes}
}
