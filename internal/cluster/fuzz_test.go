package cluster

import (
	"context"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzKMeans2D decodes arbitrary bytes into a point set and checks the
// clustering postconditions: every point assigned to a live centroid, sizes
// consistent, finite SSE, and bit-identical results on a second run (the
// deterministic-parallel contract).
func FuzzKMeans2D(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0, 0, 1, 1, 0, 200, 200, 1, 201, 199, 3, 50, 50, 0})
	f.Add([]byte{1, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		k := 1
		if len(data) > 0 {
			k = int(data[0])%8 + 1
			data = data[1:]
		}
		var pts []Point2
		for len(data) >= 4 && len(pts) < 256 {
			x := binary.LittleEndian.Uint16(data[:2])
			y := binary.LittleEndian.Uint16(data[2:4])
			pts = append(pts, Point2{X: float64(x), Y: float64(y)})
			data = data[4:]
		}

		ctx := context.Background()
		res := KMeans2D(ctx, pts, k, 20)
		if len(pts) == 0 {
			if res.K() != 0 {
				t.Fatalf("empty input produced %d centroids", res.K())
			}
			return
		}
		if res.K() < 1 || res.K() > k || res.K() > len(pts) {
			t.Fatalf("k=%d n=%d produced %d centroids", k, len(pts), res.K())
		}
		if len(res.Assign) != len(pts) {
			t.Fatalf("%d assignments for %d points", len(res.Assign), len(pts))
		}
		total := 0
		for c, sz := range res.Sizes {
			if sz < 0 {
				t.Fatalf("cluster %d has negative size %d", c, sz)
			}
			total += sz
		}
		if total != len(pts) {
			t.Fatalf("sizes sum to %d, want %d", total, len(pts))
		}
		counts := make([]int, res.K())
		for i, a := range res.Assign {
			if a < 0 || a >= res.K() {
				t.Fatalf("point %d assigned to %d (k=%d)", i, a, res.K())
			}
			counts[a]++
		}
		for c := range counts {
			if counts[c] != res.Sizes[c] {
				t.Fatalf("cluster %d: Sizes says %d, assignment says %d", c, res.Sizes[c], counts[c])
			}
		}
		if sse := SSE(pts, res); math.IsNaN(sse) || math.IsInf(sse, 0) || sse < 0 {
			t.Fatalf("SSE = %v", sse)
		}

		again := KMeans2D(ctx, pts, k, 20)
		if again.K() != res.K() || again.Iterations != res.Iterations {
			t.Fatalf("nondeterministic shape: k %d vs %d, iters %d vs %d",
				res.K(), again.K(), res.Iterations, again.Iterations)
		}
		for i := range res.Assign {
			if res.Assign[i] != again.Assign[i] {
				t.Fatalf("nondeterministic assignment at point %d: %d vs %d", i, res.Assign[i], again.Assign[i])
			}
		}
		for c := range res.Centroids {
			if res.Centroids[c] != again.Centroids[c] {
				t.Fatalf("nondeterministic centroid %d: %v vs %v", c, res.Centroids[c], again.Centroids[c])
			}
		}
	})
}
