package baseline

import (
	"math"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/lefdef"
	"mthplace/internal/legalize"
	"mthplace/internal/netlist"
	"mthplace/internal/placer"
	"mthplace/internal/rowgrid"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

func placedDesign(t *testing.T, scale float64) (*netlist.Design, rowgrid.PairGrid) {
	t.Helper()
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = scale
	d, err := synth.Generate(tc, lib, synth.TableII()[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lefdef.ApplyMLEF(d)
	if err != nil {
		t.Fatal(err)
	}
	placer.Global(d, placer.Options{OuterIters: 4, SolveSweeps: 6})
	g := rowgrid.Uniform(d.Die, m.PairH)
	if err := legalize.Uniform(d, g); err != nil {
		t.Fatal(err)
	}
	return d, g
}

func TestAssignRowsBasics(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	res, err := AssignRows(d, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// NminR matches the width/fill formula.
	var wsum int64
	for _, i := range d.MinorityInstances() {
		wsum += d.Insts[i].TrueMaster().Width
	}
	want := int(math.Ceil(float64(wsum) / (float64(2*g.Width()) * 0.8)))
	if res.NminR != want {
		t.Errorf("NminR = %d, want %d", res.NminR, want)
	}
	tall := 0
	for _, h := range res.Heights {
		if h == tech.Tall7p5T {
			tall++
		}
	}
	if tall != res.NminR {
		t.Errorf("tall pairs %d != NminR %d", tall, res.NminR)
	}
	if res.Stack == nil || res.Stack.NumPairs() != g.N {
		t.Fatal("stack missing or wrong size")
	}
}

func TestAssignRowsCoversAllMinorityCells(t *testing.T) {
	d, g := placedDesign(t, 0.02)
	res, err := AssignRows(d, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range d.MinorityInstances() {
		pair, ok := res.CellPair[i]
		if !ok {
			t.Fatalf("minority cell %d unassigned", i)
		}
		if res.Heights[pair] != tech.Tall7p5T {
			t.Fatalf("cell %d on short pair %d", i, pair)
		}
		if res.SeedY[i] != res.Stack.Y[pair] {
			t.Fatalf("cell %d seed mismatch", i)
		}
	}
}

func TestAssignRowsGloballyFeasible(t *testing.T) {
	// The baseline is capacity-naive per row (faithful to [10]) but its
	// fill-based N_minR sizing must keep the assignment globally feasible:
	// total minority width fits the chosen minority rows.
	d, g := placedDesign(t, 0.03)
	res, err := AssignRows(d, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	capacity := 2 * g.Width()
	var total int64
	for i := range res.CellPair {
		total += d.Insts[i].TrueMaster().Width
	}
	if total > int64(res.NminR)*capacity {
		t.Errorf("total minority width %d exceeds %d rows x %d", total, res.NminR, capacity)
	}
}

func TestAssignRowsDeterministic(t *testing.T) {
	d, g := placedDesign(t, 0.015)
	a, err := AssignRows(d, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssignRows(d, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.NminR != b.NminR {
		t.Fatal("NminR differs")
	}
	for i, r := range a.CellPair {
		if b.CellPair[i] != r {
			t.Fatalf("cell %d pair differs", i)
		}
	}
}

func TestAssignRowsNoMinority(t *testing.T) {
	d, g := placedDesign(t, 0.01)
	// Strip minority status by swapping every 7.5T master for its 6T twin.
	for _, i := range d.MinorityInstances() {
		in := d.Insts[i]
		in.Source = d.Lib.Variant(in.Source, tech.Short6T)
	}
	res, err := AssignRows(d, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CellPair) != 0 {
		t.Error("no cells should be assigned")
	}
	for _, h := range res.Heights {
		if h != tech.Short6T {
			t.Error("no tall pairs expected")
		}
	}
}

func TestAssignRowsBadOptionsFallbacks(t *testing.T) {
	d, g := placedDesign(t, 0.01)
	res, err := AssignRows(d, g, Options{Fill: -1, KMeansIters: -5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NminR < 1 {
		t.Error("NminR must be at least 1")
	}
}
