// Package baseline reimplements the prior state-of-the-art row-based mixed
// track-height placement of Lin & Chang (ICCAD 2021, reference [10] of the
// paper): minority rows are chosen by k-means clustering of the minority
// cells' y-coordinates, and every minority cell moves to its cluster's row.
// No code was released for [10]; like the paper, we reimplement it, and like
// the paper we take N_minR for the proposed ILP from this method's result
// ("for fairness, we set N_minR to match the result from the Flow (2)").
//
// The method is capacity-blind by construction — an attractive stripe can
// be assigned more cell width than its row holds, and the overflow is only
// resolved later by the legalizer spilling cells to other (possibly far)
// minority rows. That displacement/wirelength penalty is precisely what the
// paper's capacity-aware ILP removes.
package baseline

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mthplace/internal/cluster"
	"mthplace/internal/netlist"
	"mthplace/internal/rowgrid"
	"mthplace/internal/tech"
)

// Result is the baseline row assignment, shaped like core.RowAssignment so
// the flows can use either interchangeably.
type Result struct {
	// NminR is the minority pair count this method chose.
	NminR int
	// Heights per pair (uniform-grid order).
	Heights []tech.TrackHeight
	// Stack is the restacked die.
	Stack *rowgrid.MixedStack
	// CellPair maps minority instance -> assigned pair index.
	CellPair map[int32]int
	// SeedY maps minority instance -> bottom y of the assigned pair.
	SeedY map[int32]int64
	// Runtime of the assignment.
	Runtime time.Duration
}

// Options tune the baseline.
type Options struct {
	// Fill is the target row fill used to size N_minR (default 0.88).
	Fill float64
	// KMeansIters bounds the Lloyd iterations (default 50).
	KMeansIters int
}

// DefaultOptions returns the values used in the experiments.
func DefaultOptions() Options { return Options{Fill: 0.88, KMeansIters: 50} }

// AssignRows runs the [10]-style row assignment on a design in mLEF form
// placed on uniform grid g.
func AssignRows(d *netlist.Design, g rowgrid.PairGrid, opt Options) (*Result, error) {
	start := time.Now()
	if opt.Fill <= 0 || opt.Fill > 1 {
		opt.Fill = 0.88
	}
	if opt.KMeansIters <= 0 {
		opt.KMeansIters = 50
	}
	minority := d.MinorityInstances()
	capacity := 2 * g.Width()
	if capacity <= 0 || g.N == 0 {
		return nil, fmt.Errorf("baseline: empty row grid")
	}
	var totalW int64
	for _, i := range minority {
		totalW += d.Insts[i].TrueMaster().Width
	}
	nMinR := int(math.Ceil(float64(totalW) / (float64(capacity) * opt.Fill)))
	if nMinR < 1 && len(minority) > 0 {
		nMinR = 1
	}
	maxMin := rowgrid.MaxMinorityPairs(d.Die, g.N, d.Tech)
	if nMinR > maxMin {
		return nil, fmt.Errorf("baseline: need %d minority pairs but die restack allows %d", nMinR, maxMin)
	}
	if nMinR > g.N {
		return nil, fmt.Errorf("baseline: need %d minority pairs but grid has %d", nMinR, g.N)
	}

	res := &Result{
		NminR:    nMinR,
		Heights:  make([]tech.TrackHeight, g.N),
		CellPair: make(map[int32]int, len(minority)),
		SeedY:    make(map[int32]int64, len(minority)),
	}
	if len(minority) == 0 {
		ms, err := rowgrid.Stack(d.Die, res.Heights, d.Tech)
		if err != nil {
			return nil, err
		}
		res.Stack = ms
		res.Runtime = time.Since(start)
		return res, nil
	}

	// 1-D k-means on minority y-centers.
	ys := make([]float64, len(minority))
	for k, i := range minority {
		in := d.Insts[i]
		ys[k] = float64(in.Pos.Y) + float64(in.Height())/2
	}
	km := cluster.KMeans1D(ys, nMinR, opt.KMeansIters)

	// Map each centroid to a distinct pair, nearest first; ties resolved by
	// processing centroids bottom-up.
	type cent struct {
		y float64
		c int
	}
	cents := make([]cent, len(km.Centroids))
	for c, y := range km.Centroids {
		cents[c] = cent{y, c}
	}
	sort.Slice(cents, func(a, b int) bool {
		if cents[a].y != cents[b].y {
			return cents[a].y < cents[b].y
		}
		return cents[a].c < cents[b].c
	})
	taken := make([]bool, g.N)
	clusterPair := make([]int, len(km.Centroids))
	for _, ce := range cents {
		best, bestD := -1, math.Inf(1)
		for r := 0; r < g.N; r++ {
			if taken[r] {
				continue
			}
			dd := math.Abs(float64(g.PairCenterY(r)) - ce.y)
			if dd < bestD {
				best, bestD = r, dd
			}
		}
		taken[best] = true
		clusterPair[ce.c] = best
	}

	// Cell assignment: every cell goes to its cluster's row. The method is
	// capacity-naive, exactly like [10] — an attractive stripe can be
	// assigned more cell width than its row holds, and the damage surfaces
	// later as long legalization displacement (the effect the paper
	// measures against). Global feasibility is still guaranteed by the
	// fill-based N_minR sizing above.
	cellPair := make([]int, len(minority))
	for k := range minority {
		cellPair[k] = clusterPair[km.Assign[k]]
	}
	pairs := make([]int, 0, nMinR)
	for r := 0; r < g.N; r++ {
		if taken[r] {
			pairs = append(pairs, r)
		}
	}
	for k, i := range minority {
		res.CellPair[i] = cellPair[k]
	}
	for _, r := range pairs {
		res.Heights[r] = tech.Tall7p5T
	}
	ms, err := rowgrid.Stack(d.Die, res.Heights, d.Tech)
	if err != nil {
		return nil, err
	}
	res.Stack = ms
	for i, r := range res.CellPair {
		res.SeedY[i] = ms.Y[r]
	}
	res.Runtime = time.Since(start)
	return res, nil
}
