package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"mthplace/internal/errs"
)

func TestNoPlanIsFree(t *testing.T) {
	if err := Inject(context.Background(), "flow.solve"); err != nil {
		t.Fatalf("no plan: err = %v", err)
	}
	if Active(context.Background()) {
		t.Fatal("Active with no plan installed")
	}
}

func TestExplicitRuleFiresOnExactHit(t *testing.T) {
	p := NewPlan(Rule{Point: "flow.solve", Kind: KindError, Hit: 2})
	ctx := WithPlan(context.Background(), p)
	if err := Inject(ctx, "flow.solve"); err != nil {
		t.Fatalf("hit 1: err = %v, want nil", err)
	}
	err := Inject(ctx, "flow.solve")
	if !errors.Is(err, errs.ErrTransient) {
		t.Fatalf("hit 2: err = %v, want ErrTransient", err)
	}
	if err := Inject(ctx, "flow.solve"); err != nil {
		t.Fatalf("hit 3: err = %v, want nil", err)
	}
	if err := Inject(ctx, "flow.other"); err != nil {
		t.Fatalf("other point: err = %v, want nil", err)
	}
	ev := p.Events()
	if len(ev) != 1 || ev[0] != (Event{Point: "flow.solve", Kind: KindError, Hit: 2}) {
		t.Fatalf("events = %+v", ev)
	}
}

func TestEveryHitRule(t *testing.T) {
	p := NewPlan(Rule{Point: "x", Kind: KindError})
	ctx := WithPlan(context.Background(), p)
	for i := 0; i < 3; i++ {
		if err := Inject(ctx, "x"); !errors.Is(err, errs.ErrTransient) {
			t.Fatalf("hit %d: err = %v, want ErrTransient", i+1, err)
		}
	}
}

func TestPanicInjection(t *testing.T) {
	ctx := WithPlan(context.Background(), NewPlan(Rule{Point: "x", Kind: KindPanic}))
	defer func() {
		if recover() == nil {
			t.Fatal("panic rule did not panic")
		}
	}()
	_ = Inject(ctx, "x")
}

func TestLatencyInjectionRespectsContext(t *testing.T) {
	p := NewPlan(Rule{Point: "x", Kind: KindLatency, Delay: time.Hour})
	ctx, cancel := context.WithCancel(WithPlan(context.Background(), p))
	cancel()
	start := time.Now()
	if err := Inject(ctx, "x"); err != nil {
		t.Fatalf("latency: err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("latency fault ignored canceled context (%v)", elapsed)
	}
}

// TestRandomPlanDeterministic: two plans with the same seed produce the
// same injections over the same hit sequence.
func TestRandomPlanDeterministic(t *testing.T) {
	run := func() []Event {
		p := NewRandomPlan(7, 0.5, KindError, KindLatency)
		ctx := WithPlan(context.Background(), p)
		for i := 0; i < 50; i++ {
			_ = Inject(ctx, "a")
			_ = Inject(ctx, "b")
		}
		return p.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate 0.5 over 100 hits injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGlobalInstallAndRestore(t *testing.T) {
	restore := Install(NewPlan(Rule{Point: "g", Kind: KindError}))
	if err := Inject(context.Background(), "g"); !errors.Is(err, errs.ErrTransient) {
		t.Fatalf("global plan: err = %v, want ErrTransient", err)
	}
	restore()
	if err := Inject(context.Background(), "g"); err != nil {
		t.Fatalf("after restore: err = %v", err)
	}
}

// TestContextPlanShadowsGlobal: a per-run plan wins over the process plan,
// so concurrent jobs with different plans never interfere.
func TestContextPlanShadowsGlobal(t *testing.T) {
	restore := Install(NewPlan(Rule{Point: "p", Kind: KindError}))
	defer restore()
	ctx := WithPlan(context.Background(), NewPlan()) // empty: never injects
	if err := Inject(ctx, "p"); err != nil {
		t.Fatalf("scoped empty plan: err = %v, want nil", err)
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("flow.solve:error@2, flow.legalize:latency=5ms, flow.route:panic")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Point: "flow.solve", Kind: KindError, Hit: 2},
		{Point: "flow.legalize", Kind: KindLatency, Delay: 5 * time.Millisecond},
		{Point: "flow.route", Kind: KindPanic},
	}
	if len(p.rules) != len(want) {
		t.Fatalf("rules = %+v, want %+v", p.rules, want)
	}
	for i := range want {
		if p.rules[i] != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, p.rules[i], want[i])
		}
	}

	p, err = ParseSpec("rand:42:0.25:error+panic")
	if err != nil {
		t.Fatal(err)
	}
	if p.rng == nil || p.rate != 0.25 || len(p.kinds) != 2 {
		t.Fatalf("rand plan = %+v", p)
	}

	for _, bad := range []string{
		"flow.solve", "x:frob", "x:error@0", "x:latency=nope",
		"rand:x:0.5", "rand:1:2", "rand:1:0.5:error+frob", "rand:1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestInitFromEnv(t *testing.T) {
	t.Setenv("MTHPLACE_FAULTS", "e:error@1")
	if err := InitFromEnv(); err != nil {
		t.Fatal(err)
	}
	defer Install(nil)
	if err := Inject(context.Background(), "e"); !errors.Is(err, errs.ErrTransient) {
		t.Fatalf("env plan: err = %v, want ErrTransient", err)
	}

	t.Setenv("MTHPLACE_FAULTS", "broken")
	if err := InitFromEnv(); err == nil {
		t.Fatal("bad spec accepted")
	}
}
