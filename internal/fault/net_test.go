package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"mthplace/internal/errs"
)

// TestInjectNetHandsRuleToCaller verifies the network fault point's
// contract: the armed rule comes back for the caller to simulate, and an
// exact-hit rule fires once and only once.
func TestInjectNetHandsRuleToCaller(t *testing.T) {
	ctx := WithPlan(context.Background(), NewPlan(
		Rule{Point: "net.dispatch", Kind: KindRefuse, Hit: 2},
	))
	if r := InjectNet(ctx, "net.dispatch"); r != nil {
		t.Fatalf("hit 1 armed %v, want nil", r)
	}
	r := InjectNet(ctx, "net.dispatch")
	if r == nil || r.Kind != KindRefuse {
		t.Fatalf("hit 2 = %v, want a refuse rule", r)
	}
	if r := InjectNet(ctx, "net.dispatch"); r != nil {
		t.Fatalf("hit 3 armed %v, want nil (exact-hit rule already spent)", r)
	}
}

// TestInjectNetLatencySleepsThenReturnsRule verifies latency rules execute
// their sleep inside InjectNet and still surface the rule so callers can
// observe the injection.
func TestInjectNetLatencySleepsThenReturnsRule(t *testing.T) {
	const delay = 20 * time.Millisecond
	ctx := WithPlan(context.Background(), NewPlan(
		Rule{Point: "net.ping", Kind: KindLatency, Delay: delay},
	))
	start := time.Now()
	r := InjectNet(ctx, "net.ping")
	if r == nil || r.Kind != KindLatency {
		t.Fatalf("rule = %v, want latency", r)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("slept %v, want >= %v", took, delay)
	}
}

// TestInjectDegradesNetworkKindsToTransient verifies the non-network fault
// point cannot pretend to be a wire: refuse/drop/corrupt rules reaching
// Inject turn into plain transient errors.
func TestInjectDegradesNetworkKindsToTransient(t *testing.T) {
	for _, k := range []Kind{KindRefuse, KindDrop, KindCorrupt} {
		ctx := WithPlan(context.Background(), NewPlan(Rule{Point: "flow.solve", Kind: k}))
		err := Inject(ctx, "flow.solve")
		if err == nil {
			t.Fatalf("%v: no error injected", k)
		}
		if !errors.Is(err, errs.ErrTransient) {
			t.Fatalf("%v: error %v is not transient", k, err)
		}
	}
}

// TestParseSpecNetworkKinds verifies the env-var grammar accepts the wire
// fault kinds, so real multi-process deployments can be chaos-tested via
// MTHPLACE_FAULTS without a rebuild.
func TestParseSpecNetworkKinds(t *testing.T) {
	p, err := ParseSpec("remote.dispatch:refuse@1,remote.dispatch:drop@2,remote.dispatch:corrupt@3")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithPlan(context.Background(), p)
	want := []Kind{KindRefuse, KindDrop, KindCorrupt}
	for i, k := range want {
		r := InjectNet(ctx, "remote.dispatch")
		if r == nil || r.Kind != k {
			t.Fatalf("hit %d = %v, want kind %v", i+1, r, k)
		}
	}
	if r := InjectNet(ctx, "remote.dispatch"); r != nil {
		t.Fatalf("hit 4 armed %v, want nil", r)
	}
}

// TestInjectNetKindStrings pins the Stringer names the CI chaos scripts
// grep for in logs.
func TestInjectNetKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindRefuse:  "refuse",
		KindDrop:    "drop",
		KindCorrupt: "corrupt",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
