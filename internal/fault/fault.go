// Package fault is the chaos-engineering substrate: named fault points at
// the placement pipeline's stage boundaries, and plans that decide whether
// a given hit of a point injects an error, a panic, or latency.
//
// Fault points are free when no plan is active (one atomic load plus one
// context lookup), so they stay compiled into production binaries. Plans
// come from two sources:
//
//   - a context-scoped plan (WithPlan), used by the chaos test suite and by
//     anything that wants per-run isolation — two concurrent jobs with
//     different plans never interfere;
//   - a process-global plan parsed from the MTHPLACE_FAULTS environment
//     variable (InitFromEnv), used to chaos-test the real binaries without
//     recompiling.
//
// Schedules are deterministic: explicit rules fire on an exact hit count of
// a named point, and randomized plans draw from a seeded PRNG, so a failing
// schedule replays exactly from its seed. Injected errors are classed
// errs.ErrTransient (they model recoverable infrastructure trouble, and the
// job server's retry loop is part of what chaos runs exercise); injected
// panics model bugs and must be converted to errs.ErrPanic by the recover
// boundary above the fault point, never escape it.
package fault

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mthplace/internal/errs"
)

// Kind is what an injection does at a fault point.
type Kind uint8

const (
	// KindError makes the point return an errs.ErrTransient-classed error.
	KindError Kind = iota + 1
	// KindPanic makes the point panic (the layer above must recover).
	KindPanic
	// KindLatency makes the point sleep for the rule's delay (bounded by
	// the context's lifetime) and then proceed normally.
	KindLatency
	// KindRefuse models a connection refused at a network boundary: the
	// dispatch must fail before any bytes reach the peer. At non-network
	// points Inject treats it like KindError.
	KindRefuse
	// KindDrop models a connection dropped mid-body: the request reaches
	// the peer (its side effects happen) but the response is truncated, so
	// the caller sees an unexpected EOF. Network points only.
	KindDrop
	// KindCorrupt models a corrupted response: the request reaches the
	// peer but the bytes that come back fail to parse. Network points only.
	KindCorrupt
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindLatency:
		return "latency"
	case KindRefuse:
		return "refuse"
	case KindDrop:
		return "drop"
	case KindCorrupt:
		return "corrupt"
	default:
		return "unknown"
	}
}

// DefaultLatency is the sleep injected by latency faults that do not name
// their own delay. Small on purpose: latency faults exist to shake out
// ordering assumptions, not to stall test suites.
const DefaultLatency = 2 * time.Millisecond

// Rule fires a specific injection at an exact hit of a named point.
type Rule struct {
	// Point is the fault-point name the rule arms ("flow.solve").
	Point string
	// Kind of injection.
	Kind Kind
	// Hit is the 1-based hit count of the point at which the rule fires
	// (0 means every hit).
	Hit int
	// Delay overrides DefaultLatency for KindLatency rules.
	Delay time.Duration
}

// Event records one injection a plan performed, for test assertions.
type Event struct {
	Point string
	Kind  Kind
	Hit   int
}

// Plan decides, hit by hit, what each fault point does. A Plan combines an
// explicit rule list with an optional seeded random schedule; both are
// deterministic given the sequence of Check calls. The zero value is an
// empty plan that never injects. All methods are safe for concurrent use,
// but determinism of a randomized schedule is only meaningful when the
// plan's points are hit in a deterministic order (sequential stages).
type Plan struct {
	mu     sync.Mutex
	rules  []Rule
	counts map[string]int
	rng    *rand.Rand
	rate   float64
	kinds  []Kind
	delay  time.Duration
	events []Event
}

// NewPlan builds a plan from explicit rules.
func NewPlan(rules ...Rule) *Plan {
	return &Plan{rules: rules}
}

// NewRandomPlan builds a seeded randomized schedule: every hit of every
// point independently injects with probability rate, choosing uniformly
// among kinds (all three when empty). The schedule is a pure function of
// the seed and the hit sequence, so a crashing schedule replays from its
// seed alone.
func NewRandomPlan(seed int64, rate float64, kinds ...Kind) *Plan {
	if len(kinds) == 0 {
		kinds = []Kind{KindError, KindPanic, KindLatency}
	}
	return &Plan{
		rng:   rand.New(rand.NewSource(seed)),
		rate:  rate,
		kinds: kinds,
		delay: DefaultLatency,
	}
}

// Events returns the injections performed so far, in order.
func (p *Plan) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// check decides the injection for one hit of point; nil means proceed.
func (p *Plan) check(point string) *Rule {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.counts == nil {
		p.counts = map[string]int{}
	}
	p.counts[point]++
	hit := p.counts[point]
	for i := range p.rules {
		r := &p.rules[i]
		if r.Point != point && r.Point != "*" && r.Point != "" {
			continue
		}
		if r.Hit != 0 && r.Hit != hit {
			continue
		}
		p.events = append(p.events, Event{Point: point, Kind: r.Kind, Hit: hit})
		return r
	}
	if p.rng != nil && p.rng.Float64() < p.rate {
		k := p.kinds[p.rng.Intn(len(p.kinds))]
		p.events = append(p.events, Event{Point: point, Kind: k, Hit: hit})
		return &Rule{Point: point, Kind: k, Delay: p.delay}
	}
	return nil
}

// global is the process-wide plan (nil when chaos is off), armed by
// Install/InitFromEnv. The atomic pointer keeps the disabled fast path at
// one load.
var global atomic.Pointer[Plan]

// Install arms p as the process-global plan and returns a restore function
// that re-arms whatever was active before (tests defer it).
func Install(p *Plan) (restore func()) {
	old := global.Swap(p)
	return func() { global.Store(old) }
}

// InitFromEnv arms the global plan described by the MTHPLACE_FAULTS
// environment variable, if set. The binaries call it at startup so any
// deployment can be chaos-tested without a rebuild.
func InitFromEnv() error {
	spec := os.Getenv("MTHPLACE_FAULTS")
	if spec == "" {
		return nil
	}
	p, err := ParseSpec(spec)
	if err != nil {
		return fmt.Errorf("fault: MTHPLACE_FAULTS: %w", err)
	}
	Install(p)
	return nil
}

// ParseSpec parses a fault schedule. Comma-separated clauses:
//
//	point:kind[@hit][=delay]   explicit rule; kind is error|panic|latency,
//	                           hit is the 1-based hit count (default: every
//	                           hit), delay applies to latency rules.
//	rand:seed:rate[:kinds]     seeded random schedule; rate in (0,1], kinds
//	                           a +-separated subset of error+panic+latency
//	                           (default all).
//
// Examples:
//
//	MTHPLACE_FAULTS="flow.solve:error@2"
//	MTHPLACE_FAULTS="flow.legalize:latency=5ms,flow.route:panic@1"
//	MTHPLACE_FAULTS="rand:42:0.05:error+latency"
func ParseSpec(spec string) (*Plan, error) {
	plan := &Plan{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if parts[0] == "rand" {
			if len(parts) < 3 || len(parts) > 4 {
				return nil, fmt.Errorf("rand clause %q: want rand:seed:rate[:kinds]", clause)
			}
			seed, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("rand clause %q: bad seed: %w", clause, err)
			}
			rate, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || rate <= 0 || rate > 1 {
				return nil, fmt.Errorf("rand clause %q: rate must be in (0,1]", clause)
			}
			var kinds []Kind
			if len(parts) == 4 {
				for _, ks := range strings.Split(parts[3], "+") {
					k, err := parseKind(ks)
					if err != nil {
						return nil, fmt.Errorf("rand clause %q: %w", clause, err)
					}
					kinds = append(kinds, k)
				}
			}
			rp := NewRandomPlan(seed, rate, kinds...)
			plan.rng, plan.rate, plan.kinds, plan.delay = rp.rng, rp.rate, rp.kinds, rp.delay
			continue
		}
		if len(parts) != 2 {
			return nil, fmt.Errorf("clause %q: want point:kind[@hit][=delay]", clause)
		}
		rule := Rule{Point: parts[0]}
		ks := parts[1]
		if i := strings.IndexByte(ks, '='); i >= 0 {
			d, err := time.ParseDuration(ks[i+1:])
			if err != nil {
				return nil, fmt.Errorf("clause %q: bad delay: %w", clause, err)
			}
			rule.Delay = d
			ks = ks[:i]
		}
		if i := strings.IndexByte(ks, '@'); i >= 0 {
			hit, err := strconv.Atoi(ks[i+1:])
			if err != nil || hit < 1 {
				return nil, fmt.Errorf("clause %q: bad hit count", clause)
			}
			rule.Hit = hit
			ks = ks[:i]
		}
		k, err := parseKind(ks)
		if err != nil {
			return nil, fmt.Errorf("clause %q: %w", clause, err)
		}
		rule.Kind = k
		plan.rules = append(plan.rules, rule)
	}
	return plan, nil
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "error":
		return KindError, nil
	case "panic":
		return KindPanic, nil
	case "latency":
		return KindLatency, nil
	case "refuse":
		return KindRefuse, nil
	case "drop":
		return KindDrop, nil
	case "corrupt":
		return KindCorrupt, nil
	default:
		return 0, fmt.Errorf("unknown fault kind %q", s)
	}
}

// planKey carries a *Plan in a context.
type planKey struct{}

// WithPlan returns a context carrying p; fault points under it consult p
// instead of the process-global plan. A nil p returns ctx unchanged.
func WithPlan(ctx context.Context, p *Plan) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, planKey{}, p)
}

// Active reports whether any plan (context-scoped or global) governs ctx.
func Active(ctx context.Context) bool { return from(ctx) != nil }

func from(ctx context.Context) *Plan {
	if ctx != nil {
		if p, ok := ctx.Value(planKey{}).(*Plan); ok {
			return p
		}
	}
	return global.Load()
}

// Inject is the fault point. Stage boundaries call it with their point
// name; the active plan (context-scoped first, then global) decides the
// outcome: nil (proceed), an errs.ErrTransient-classed error, a sleep
// (latency, bounded by ctx), or a panic. With no active plan the cost is
// one atomic load. The network kinds (refuse/drop/corrupt) degrade to a
// transient error here — only InjectNet callers can simulate them
// faithfully.
func Inject(ctx context.Context, point string) error {
	p := from(ctx)
	if p == nil {
		return nil
	}
	r := p.check(point)
	if r == nil {
		return nil
	}
	switch r.Kind {
	case KindPanic:
		panic(fmt.Sprintf("fault: injected panic at %s", point))
	case KindLatency:
		Sleep(ctx, r.Delay)
		return nil
	default:
		return errs.Transient("fault: injected error at %s", point)
	}
}

// InjectNet is the fault point for network boundaries (remote job
// dispatch, heartbeat probes). Unlike Inject it hands the armed rule back
// to the caller, because only the caller can simulate the network kinds
// faithfully: refuse means "fail before any bytes are sent", drop means
// "send the request, lose the response mid-body", corrupt means "send the
// request, mangle the response bytes". A nil return means proceed
// normally; panic and latency rules are executed here like Inject does
// (latency returns the rule afterwards so callers can observe it).
func InjectNet(ctx context.Context, point string) *Rule {
	p := from(ctx)
	if p == nil {
		return nil
	}
	r := p.check(point)
	if r == nil {
		return nil
	}
	switch r.Kind {
	case KindPanic:
		panic(fmt.Sprintf("fault: injected panic at %s", point))
	case KindLatency:
		Sleep(ctx, r.Delay)
	}
	return r
}

// Sleep pauses for d (DefaultLatency when d <= 0), returning early if ctx
// ends first. Shared by the latency kinds and callers simulating slow
// networks.
func Sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		d = DefaultLatency
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
