package tech

import (
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	tc := Default()
	if err := tc.Validate(); err != nil {
		t.Fatalf("default tech invalid: %v", err)
	}
}

func TestTrackHeightString(t *testing.T) {
	if Short6T.String() != "6T" || Tall7p5T.String() != "7.5T" {
		t.Error("TrackHeight String wrong")
	}
	if TrackHeight(9).String() != "TrackHeight(9)" {
		t.Error("unknown TrackHeight String wrong")
	}
	if Short6T.Other() != Tall7p5T || Tall7p5T.Other() != Short6T {
		t.Error("Other wrong")
	}
}

func TestRowAndPairHeights(t *testing.T) {
	tc := Default()
	if tc.RowHeight(Short6T) != 216 || tc.RowHeight(Tall7p5T) != 270 {
		t.Fatalf("row heights %d/%d", tc.RowHeight(Short6T), tc.RowHeight(Tall7p5T))
	}
	if tc.PairHeight(Short6T) != 432 || tc.PairHeight(Tall7p5T) != 540 {
		t.Fatalf("pair heights %d/%d", tc.PairHeight(Short6T), tc.PairHeight(Tall7p5T))
	}
}

func TestMLEFPairHeightEndpointsAndMonotone(t *testing.T) {
	tc := Default()
	if got := tc.MLEFPairHeight(0); got != tc.PairHeight(Short6T) {
		t.Errorf("MLEFPairHeight(0) = %d, want %d", got, tc.PairHeight(Short6T))
	}
	if got := tc.MLEFPairHeight(1); got != tc.PairHeight(Tall7p5T) {
		t.Errorf("MLEFPairHeight(1) = %d, want %d", got, tc.PairHeight(Tall7p5T))
	}
	// Out-of-range inputs are clamped.
	if tc.MLEFPairHeight(-3) != tc.PairHeight(Short6T) || tc.MLEFPairHeight(7) != tc.PairHeight(Tall7p5T) {
		t.Error("MLEFPairHeight must clamp the minority fraction")
	}
	prev := int64(0)
	for f := 0.0; f <= 1.0; f += 0.05 {
		h := tc.MLEFPairHeight(f)
		if h < prev {
			t.Fatalf("MLEFPairHeight not monotone at %f: %d < %d", f, h, prev)
		}
		prev = h
	}
}

// Property: the mLEF height always lies between the two pair heights and on
// the manufacturing grid.
func TestMLEFPairHeightBoundsProperty(t *testing.T) {
	tc := Default()
	f := func(frac float64) bool {
		h := tc.MLEFPairHeight(frac)
		if h < tc.PairHeight(Short6T) || h > tc.PairHeight(Tall7p5T) {
			return false
		}
		return h%tc.ManufacturingGrid == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSnapToSiteAndSitesFor(t *testing.T) {
	tc := Default()
	if got := tc.SnapToSite(100); got != 54 {
		t.Errorf("SnapToSite(100) = %d, want 54", got)
	}
	if got := tc.SitesFor(54); got != 1 {
		t.Errorf("SitesFor(54) = %d, want 1", got)
	}
	if got := tc.SitesFor(55); got != 2 {
		t.Errorf("SitesFor(55) = %d, want 2", got)
	}
	if got := tc.SitesFor(0); got != 0 {
		t.Errorf("SitesFor(0) = %d, want 0", got)
	}
}

func TestValidateRejectsBadTech(t *testing.T) {
	mods := []func(*Tech){
		func(c *Tech) { c.SiteWidth = 0 },
		func(c *Tech) { c.RowHeight6T = 0 },
		func(c *Tech) { c.RowHeight7p5T = c.RowHeight6T },
		func(c *Tech) { c.ManufacturingGrid = 0 },
		func(c *Tech) { c.GCellSize = 1 },
		func(c *Tech) { c.HTracksPerGCell = 0 },
		func(c *Tech) { c.WireCapPerDBU = 0 },
		func(c *Tech) { c.SupplyVoltage = -1 },
	}
	for i, mod := range mods {
		c := Default()
		mod(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
