// Package tech models the synthetic sub-5nm technology node used by the
// reproduction. It stands in for the ASAP7 predictive PDK referenced in the
// paper: two standard-cell track-heights (short 6T and tall 7.5T), a common
// placement site width, N-well sharing rules that pair rows of equal height,
// and the interconnect electrical constants consumed by the router, timing
// and power models.
//
// All geometry is in integer database units (DBU); 1 DBU = 1 nm.
package tech

import (
	"fmt"

	"mthplace/internal/geom"
)

// TrackHeight identifies one of the two standard-cell heights in the mixed
// track-height library.
type TrackHeight uint8

const (
	// Short6T is the majority 6-track cell height.
	Short6T TrackHeight = iota
	// Tall7p5T is the minority 7.5-track cell height.
	Tall7p5T
)

// String implements fmt.Stringer.
func (t TrackHeight) String() string {
	switch t {
	case Short6T:
		return "6T"
	case Tall7p5T:
		return "7.5T"
	default:
		return fmt.Sprintf("TrackHeight(%d)", uint8(t))
	}
}

// Other returns the opposite track-height.
func (t TrackHeight) Other() TrackHeight {
	if t == Short6T {
		return Tall7p5T
	}
	return Short6T
}

// Tech collects the technology constants of the synthetic node.
type Tech struct {
	// SiteWidth is the horizontal placement site pitch (one CPP).
	SiteWidth int64
	// RowHeight6T and RowHeight7p5T are single-row heights of the two
	// track-heights (6 and 7.5 M2 tracks respectively).
	RowHeight6T   int64
	RowHeight7p5T int64
	// ManufacturingGrid is the grid all derived geometry (such as the mLEF
	// cell height) must snap to.
	ManufacturingGrid int64
	// GCellSize is the edge length of one global-routing cell.
	GCellSize int64
	// HTracksPerGCell / VTracksPerGCell are routing capacities per gcell
	// edge in the horizontal / vertical direction.
	HTracksPerGCell int
	VTracksPerGCell int

	// WireCapPerDBU is wire capacitance in fF per DBU of routed length.
	WireCapPerDBU float64
	// WireResPerDBU is wire resistance in kOhm per DBU of routed length.
	// With capacitance in fF and resistance in kOhm, an RC product is
	// directly in picoseconds.
	WireResPerDBU float64
	// SupplyVoltage in volts (typical corner).
	SupplyVoltage float64
}

// Default returns the synthetic ASAP7-like node. The numbers mirror the
// published ASAP7 geometry (54 nm CPP, 36 nm M2 pitch giving 216 nm 6T and
// 270 nm 7.5T rows) with representative 7 nm-class interconnect parasitics.
func Default() *Tech {
	return &Tech{
		SiteWidth:         54,
		RowHeight6T:       216,
		RowHeight7p5T:     270,
		ManufacturingGrid: 1,
		GCellSize:         1080, // 20 sites
		HTracksPerGCell:   12,
		VTracksPerGCell:   12,
		WireCapPerDBU:     0.00020,   // 0.20 fF/um
		WireResPerDBU:     0.0000025, // 2.5 Ohm/um = 2.5e-6 kOhm/nm
		SupplyVoltage:     0.70,
	}
}

// RowHeight returns the single-row height for a track-height.
func (t *Tech) RowHeight(h TrackHeight) int64 {
	if h == Tall7p5T {
		return t.RowHeight7p5T
	}
	return t.RowHeight6T
}

// PairHeight returns the height of an N-well-sharing row pair. The paper's
// "row" in the row assignment problem always denotes such a pair.
func (t *Tech) PairHeight(h TrackHeight) int64 {
	return 2 * t.RowHeight(h)
}

// MLEFPairHeight computes the uniform row-pair height used by the mLEF
// transform. Following [10] and Section III of the paper, the mLEF height is
// the cell-area-ratio weighted average of the two pair heights, snapped up to
// the manufacturing grid so the die always accommodates the mixed restack.
// minorityFrac is the fraction of total cell area contributed by 7.5T cells,
// clamped to [0,1].
func (t *Tech) MLEFPairHeight(minorityFrac float64) int64 {
	if minorityFrac < 0 {
		minorityFrac = 0
	}
	if minorityFrac > 1 {
		minorityFrac = 1
	}
	tall := float64(t.PairHeight(Tall7p5T))
	short := float64(t.PairHeight(Short6T))
	avg := minorityFrac*tall + (1-minorityFrac)*short
	// Snap up to an even multiple of the manufacturing grid so the pair
	// splits into two equal single rows on-grid.
	grid := 2 * t.ManufacturingGrid
	snapped := geom.SnapUp(int64(avg+0.5), grid)
	if snapped < t.PairHeight(Short6T) {
		snapped = geom.SnapUp(t.PairHeight(Short6T), grid)
	}
	if snapped > t.PairHeight(Tall7p5T) {
		snapped = geom.SnapDown(t.PairHeight(Tall7p5T), grid)
	}
	return snapped
}

// SnapToSite rounds x down to the site grid relative to origin 0.
func (t *Tech) SnapToSite(x int64) int64 { return geom.SnapDown(x, t.SiteWidth) }

// SitesFor returns the number of sites needed to hold width w.
func (t *Tech) SitesFor(w int64) int64 {
	return geom.SnapUp(w, t.SiteWidth) / t.SiteWidth
}

// Validate checks internal consistency of the technology description.
func (t *Tech) Validate() error {
	switch {
	case t.SiteWidth <= 0:
		return fmt.Errorf("tech: site width %d must be positive", t.SiteWidth)
	case t.RowHeight6T <= 0 || t.RowHeight7p5T <= 0:
		return fmt.Errorf("tech: row heights %d/%d must be positive", t.RowHeight6T, t.RowHeight7p5T)
	case t.RowHeight7p5T <= t.RowHeight6T:
		return fmt.Errorf("tech: 7.5T height %d must exceed 6T height %d", t.RowHeight7p5T, t.RowHeight6T)
	case t.ManufacturingGrid <= 0:
		return fmt.Errorf("tech: manufacturing grid %d must be positive", t.ManufacturingGrid)
	case t.GCellSize < t.SiteWidth:
		return fmt.Errorf("tech: gcell size %d smaller than site width %d", t.GCellSize, t.SiteWidth)
	case t.HTracksPerGCell <= 0 || t.VTracksPerGCell <= 0:
		return fmt.Errorf("tech: gcell capacities must be positive")
	case t.WireCapPerDBU <= 0 || t.WireResPerDBU <= 0:
		return fmt.Errorf("tech: wire parasitics must be positive")
	case t.SupplyVoltage <= 0:
		return fmt.Errorf("tech: supply voltage must be positive")
	}
	return nil
}
