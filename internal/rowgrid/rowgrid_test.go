package rowgrid

import (
	"testing"
	"testing/quick"

	"mthplace/internal/geom"
	"mthplace/internal/tech"
)

func TestUniformGrid(t *testing.T) {
	die := geom.NewRect(0, 0, 10000, 4320) // exactly 10 pairs of 432
	g := Uniform(die, 432)
	if g.N != 10 {
		t.Fatalf("N = %d, want 10", g.N)
	}
	if g.RowH() != 216 || g.NumRows() != 20 {
		t.Errorf("RowH/NumRows = %d/%d", g.RowH(), g.NumRows())
	}
	if g.PairY(0) != 0 || g.PairY(9) != 9*432 {
		t.Error("PairY wrong")
	}
	if g.RowY(1) != 216 || g.RowY(19) != 19*216 {
		t.Error("RowY wrong")
	}
	if g.Width() != 10000 {
		t.Error("Width wrong")
	}
	if g.PairCenterY(0) != 216 {
		t.Errorf("PairCenterY(0) = %d", g.PairCenterY(0))
	}
}

func TestUniformGridPartialPair(t *testing.T) {
	die := geom.NewRect(0, 0, 1000, 1000) // 1000/432 = 2 pairs, remainder dropped
	g := Uniform(die, 432)
	if g.N != 2 {
		t.Errorf("N = %d, want 2", g.N)
	}
	if Uniform(die, 0).N != 0 {
		t.Error("zero pair height must give empty grid")
	}
}

func TestNearestPairAndRow(t *testing.T) {
	die := geom.NewRect(0, 100, 5000, 100+5*432)
	g := Uniform(die, 432)
	cases := []struct {
		y    int64
		pair int
	}{
		{0, 0},     // below die clamps
		{100, 0},   // exactly bottom
		{531, 0},   // still pair 0 (100..532)
		{532, 1},   // pair 1 starts
		{99999, 4}, // above clamps
		{100 + 432*2 + 10, 2},
	}
	for _, c := range cases {
		if got := g.NearestPair(c.y); got != c.pair {
			t.Errorf("NearestPair(%d) = %d, want %d", c.y, got, c.pair)
		}
	}
	if got := g.NearestRow(100 + 216); got != 1 {
		t.Errorf("NearestRow = %d, want 1", got)
	}
	if got := g.NearestRow(-50); got != 0 {
		t.Errorf("NearestRow clamp low = %d", got)
	}
	if got := g.NearestRow(1 << 40); got != g.NumRows()-1 {
		t.Errorf("NearestRow clamp high = %d", got)
	}
}

func TestStack(t *testing.T) {
	tc := tech.Default()
	die := geom.NewRect(0, 0, 5000, 432*3+540*2)
	hs := []tech.TrackHeight{tech.Short6T, tech.Tall7p5T, tech.Short6T, tech.Tall7p5T, tech.Short6T}
	ms, err := Stack(die, hs, tc)
	if err != nil {
		t.Fatal(err)
	}
	if ms.NumPairs() != 5 {
		t.Fatal("NumPairs wrong")
	}
	wantY := []int64{0, 432, 432 + 540, 432 + 540 + 432, 432 + 540 + 432 + 540, 432*3 + 540*2}
	for i, w := range wantY {
		if ms.Y[i] != w {
			t.Errorf("Y[%d] = %d, want %d", i, ms.Y[i], w)
		}
	}
	lo, hi := ms.RowsOfPair(1)
	if lo != 432 || hi != 432+270 {
		t.Errorf("RowsOfPair(1) = %d,%d", lo, hi)
	}
	if got := ms.PairsOf(tech.Tall7p5T); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("PairsOf = %v", got)
	}
	if ms.Width() != 5000 {
		t.Error("Width wrong")
	}
}

func TestStackOverflow(t *testing.T) {
	tc := tech.Default()
	die := geom.NewRect(0, 0, 5000, 432*2) // fits two short pairs exactly
	_, err := Stack(die, []tech.TrackHeight{tech.Short6T, tech.Tall7p5T}, tc)
	if err == nil {
		t.Fatal("expected overflow error")
	}
	if _, err := Stack(die, []tech.TrackHeight{tech.Short6T, tech.Short6T}, tc); err != nil {
		t.Fatalf("exact fit must stack: %v", err)
	}
}

func TestNearestPairOf(t *testing.T) {
	tc := tech.Default()
	die := geom.NewRect(0, 0, 5000, 432*4+540)
	hs := []tech.TrackHeight{tech.Short6T, tech.Short6T, tech.Tall7p5T, tech.Short6T, tech.Short6T}
	ms, err := Stack(die, hs, tc)
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := ms.NearestPairOf(tech.Tall7p5T, 0); !ok || i != 2 {
		t.Errorf("NearestPairOf(tall, 0) = %d,%v", i, ok)
	}
	if i, ok := ms.NearestPairOf(tech.Short6T, 0); !ok || i != 0 {
		t.Errorf("NearestPairOf(short, 0) = %d,%v", i, ok)
	}
	allShort, _ := Stack(die, []tech.TrackHeight{tech.Short6T}, tc)
	if _, ok := allShort.NearestPairOf(tech.Tall7p5T, 0); ok {
		t.Error("no tall pair should be found")
	}
}

func TestMaxMinorityPairs(t *testing.T) {
	tc := tech.Default()
	// 10 pairs of short = 4320; die leaves room for 3 upgrades of 108 each.
	die := geom.NewRect(0, 0, 1000, 4320+3*108)
	if got := MaxMinorityPairs(die, 10, tc); got != 3 {
		t.Errorf("MaxMinorityPairs = %d, want 3", got)
	}
	if got := MaxMinorityPairs(die, 100, tc); got != 0 {
		t.Errorf("oversubscribed die must allow 0, got %d", got)
	}
	// Budget larger than nPairs upgrades: clamp to nPairs.
	huge := geom.NewRect(0, 0, 1000, 1<<30)
	if got := MaxMinorityPairs(huge, 5, tc); got != 5 {
		t.Errorf("clamp to nPairs failed: %d", got)
	}
}

// Property: stacking any valid height vector keeps pairs contiguous and
// restacked total equals the sum of pair heights.
func TestStackContiguityProperty(t *testing.T) {
	tc := tech.Default()
	f := func(bits []bool) bool {
		if len(bits) == 0 || len(bits) > 64 {
			return true
		}
		hs := make([]tech.TrackHeight, len(bits))
		var total int64
		for i, b := range bits {
			if b {
				hs[i] = tech.Tall7p5T
			}
			total += tc.PairHeight(hs[i])
		}
		die := geom.NewRect(0, 0, 1000, total)
		ms, err := Stack(die, hs, tc)
		if err != nil {
			return false
		}
		for i := 0; i < ms.NumPairs(); i++ {
			if ms.Y[i+1]-ms.Y[i] != ms.PairH[i] {
				return false
			}
		}
		return ms.Y[ms.NumPairs()] == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
