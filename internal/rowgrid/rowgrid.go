// Package rowgrid models the cell-row structure of the die. Because of the
// N-well sharing rule (§II of the paper), rows always come in consecutive
// pairs of equal track-height; the row assignment problem operates on these
// pairs. The package provides the uniform pair grid used while the design is
// in mLEF form, and the mixed-height restacking applied after the row
// assignment decides which pairs are minority (7.5T) rows.
package rowgrid

import (
	"fmt"

	"mthplace/internal/geom"
	"mthplace/internal/tech"
)

// PairGrid is a uniform stack of row pairs filling the die.
type PairGrid struct {
	// X0, X1 bound the placeable span of every row.
	X0, X1 int64
	// Y0 is the bottom of pair 0.
	Y0 int64
	// PairH is the height of each pair; single rows are PairH/2 tall.
	PairH int64
	// N is the number of pairs.
	N int
}

// Uniform builds the pair grid of pairs of height pairH that fit in the die.
func Uniform(die geom.Rect, pairH int64) PairGrid {
	n := 0
	if pairH > 0 {
		n = int(die.H() / pairH)
	}
	return PairGrid{X0: die.Lo.X, X1: die.Hi.X, Y0: die.Lo.Y, PairH: pairH, N: n}
}

// PairY returns the bottom y of pair i.
func (g PairGrid) PairY(i int) int64 { return g.Y0 + int64(i)*g.PairH }

// RowH returns the single-row height.
func (g PairGrid) RowH() int64 { return g.PairH / 2 }

// RowY returns the bottom y of single row j (two rows per pair).
func (g PairGrid) RowY(j int) int64 { return g.Y0 + int64(j)*g.RowH() }

// NumRows returns the single-row count (2 per pair).
func (g PairGrid) NumRows() int { return 2 * g.N }

// Width returns the row span width.
func (g PairGrid) Width() int64 { return g.X1 - g.X0 }

// NearestPair returns the pair index whose vertical span is closest to y,
// clamped to the grid.
func (g PairGrid) NearestPair(y int64) int {
	if g.N == 0 {
		return 0
	}
	i := int((y - g.Y0) / g.PairH)
	if i < 0 {
		i = 0
	}
	if i >= g.N {
		i = g.N - 1
	}
	return i
}

// NearestRow returns the single-row index closest to y, clamped.
func (g PairGrid) NearestRow(y int64) int {
	if g.N == 0 {
		return 0
	}
	h := g.RowH()
	j := int((y - g.Y0) / h)
	if j < 0 {
		j = 0
	}
	if j >= g.NumRows() {
		j = g.NumRows() - 1
	}
	return j
}

// PairCenterY returns the vertical center of pair i.
func (g PairGrid) PairCenterY(i int) int64 { return g.PairY(i) + g.PairH/2 }

// MixedStack is the die row structure after row assignment: each pair has
// its own track-height and the pairs are restacked from the die bottom.
type MixedStack struct {
	X0, X1 int64
	// Heights[i] is the track-height of pair i (bottom to top).
	Heights []tech.TrackHeight
	// Y[i] is the bottom y of pair i; Y has len(Heights)+1 entries, the last
	// being the top of the stack.
	Y []int64
	// PairH[i] is the pair height of pair i.
	PairH []int64
}

// Stack restacks the die rows with the given per-pair track-heights. It
// fails when the stack would exceed the die height — callers size N_minR so
// this cannot happen in a valid flow.
func Stack(die geom.Rect, heights []tech.TrackHeight, t *tech.Tech) (*MixedStack, error) {
	ms := &MixedStack{
		X0:      die.Lo.X,
		X1:      die.Hi.X,
		Heights: append([]tech.TrackHeight(nil), heights...),
		Y:       make([]int64, len(heights)+1),
		PairH:   make([]int64, len(heights)),
	}
	y := die.Lo.Y
	for i, h := range heights {
		ms.Y[i] = y
		ms.PairH[i] = t.PairHeight(h)
		y += ms.PairH[i]
	}
	ms.Y[len(heights)] = y
	if y > die.Hi.Y {
		return nil, fmt.Errorf("rowgrid: restacked height %d exceeds die top %d (%d pairs, %d minority)",
			y, die.Hi.Y, len(heights), countMinority(heights))
	}
	return ms, nil
}

func countMinority(hs []tech.TrackHeight) int {
	n := 0
	for _, h := range hs {
		if h == tech.Tall7p5T {
			n++
		}
	}
	return n
}

// NumPairs returns the pair count.
func (ms *MixedStack) NumPairs() int { return len(ms.Heights) }

// Width returns the row span width.
func (ms *MixedStack) Width() int64 { return ms.X1 - ms.X0 }

// RowsOfPair returns the bottom y coordinates of the two single rows in pair
// i (lower and upper row of the N-well-sharing pair).
func (ms *MixedStack) RowsOfPair(i int) (lo, hi int64) {
	return ms.Y[i], ms.Y[i] + ms.PairH[i]/2
}

// PairsOf returns the indices of pairs with the given track-height, bottom
// to top.
func (ms *MixedStack) PairsOf(h tech.TrackHeight) []int {
	var out []int
	for i, ph := range ms.Heights {
		if ph == h {
			out = append(out, i)
		}
	}
	return out
}

// NearestPairOf returns the index of the pair of track-height h whose
// vertical center is closest to y; ok is false when no pair has that height.
func (ms *MixedStack) NearestPairOf(h tech.TrackHeight, y int64) (int, bool) {
	best, bestDist := -1, int64(0)
	for i, ph := range ms.Heights {
		if ph != h {
			continue
		}
		c := ms.Y[i] + ms.PairH[i]/2
		d := geom.AbsInt64(c - y)
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, best != -1
}

// MaxMinorityPairs returns the largest number of 7.5T pairs that fit when
// restacking nPairs pairs into the die height. Flows clamp N_minR with this.
func MaxMinorityPairs(die geom.Rect, nPairs int, t *tech.Tech) int {
	short := t.PairHeight(tech.Short6T)
	tall := t.PairHeight(tech.Tall7p5T)
	budget := die.H() - int64(nPairs)*short
	if budget <= 0 {
		return 0
	}
	extra := tall - short
	k := int(budget / extra)
	if k > nPairs {
		k = nPairs
	}
	return k
}
