package oracle_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"mthplace/internal/core"
	"mthplace/internal/errs"
	"mthplace/internal/milp"
	"mthplace/internal/oracle"
)

// anytimeOptions starves the branch and bound — a single node, no root
// cuts — so the search cannot finish and must hand back its warm-start
// incumbent via the anytime path. The budget is a node count, not a
// wall-clock limit, so the outcome is deterministic.
func anytimeOptions() core.SolveOptions {
	return core.SolveOptions{
		MILP:     milp.Options{MaxNodes: 1},
		RootCuts: -1,
		// Degrade left at the zero value: DegradeAnytime.
	}
}

// TestAnytimeIncumbentPassesOracle is the acceptance differential for the
// degradation ladder: anytime incumbents returned after an exhausted node
// budget must still satisfy the full Eq. 3/4/5 audit, carry an honest
// rung/gap annotation, and the reported gap must actually bound the
// distance to the brute-force optimum.
func TestAnytimeIncumbentPassesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ctx := context.Background()
	degraded := 0
	for i := 0; i < 120; i++ {
		m := randomModel(rng, true)
		want, err := oracle.Solve(m)
		if err != nil {
			t.Fatalf("instance %d: oracle on guaranteed-feasible instance: %v", i, err)
		}
		got, err := core.SolveILP(ctx, m, anytimeOptions())
		if err != nil {
			t.Fatalf("instance %d: anytime solve must not error on a feasible instance: %v", i, err)
		}
		if err := oracle.Feasibility(m, got); err != nil {
			t.Errorf("instance %d: %s-rung solution fails audit: %v", i, got.Stats.Rung, err)
		}
		switch got.Stats.Rung {
		case core.RungILP:
			// A one-node search can still prove optimality (integral root
			// LP); that is not a degradation and must not be labeled as one.
			if got.Stats.Degraded {
				t.Errorf("instance %d: proven-optimal result marked degraded", i)
			}
			if math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Errorf("instance %d: rung %q claims optimality but objective %g != optimum %g",
					i, got.Stats.Rung, got.Objective, want.Objective)
			}
		case core.RungAnytime, core.RungGreedy:
			degraded++
			if !got.Stats.Degraded {
				t.Errorf("instance %d: rung %q not marked degraded", i, got.Stats.Rung)
			}
			if got.Stats.DegradeReason == "" {
				t.Errorf("instance %d: degraded result carries no reason", i)
			}
			if gap := got.Stats.Gap; gap >= 0 {
				// The advertised bound must hold against the true optimum:
				// obj − opt ≤ gap · max(1, |obj|).
				slack := gap*math.Max(1, math.Abs(got.Objective)) + 1e-6
				if got.Objective-want.Objective > slack {
					t.Errorf("instance %d: objective %g exceeds optimum %g by more than the advertised gap %g",
						i, got.Objective, want.Objective, gap)
				}
			}
			// Strict mode on the same starved budget must refuse to hand
			// back the unproven incumbent, and classify the refusal as
			// transient so callers know a bigger budget may succeed.
			strict := anytimeOptions()
			strict.Degrade = core.DegradeStrict
			if _, err := core.SolveILP(ctx, m, strict); !errors.Is(err, errs.ErrTransient) {
				t.Errorf("instance %d: strict solve on starved budget returned %v, want ErrTransient", i, err)
			}
		default:
			t.Errorf("instance %d: unknown rung %q", i, got.Stats.Rung)
		}
	}
	if degraded == 0 {
		t.Fatal("no instance degraded under a 1-node budget; the test exercises nothing")
	}
	t.Logf("anytime acceptance: %d/120 instances degraded, all audit-clean", degraded)
}
