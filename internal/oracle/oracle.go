// Package oracle provides the exact small-instance reference solver and the
// constraint auditors used to differentially verify the RAP pipeline. It is
// test infrastructure promoted to a package: the brute-force solver
// re-derives the optimum of the paper's ILP (Eqs. (3)–(5)) by exhaustive
// enumeration, and the cost recompute re-derives the f_cr matrix
// (Eq. (2)) from first principles, so neither shares code — or bugs — with
// internal/core and internal/milp. Differential tests compare the two on
// randomized instances; any future solver optimisation that silently breaks
// optimality or feasibility fails against this package.
//
// The solver is exponential (it enumerates the feasible assignment space)
// and is meant for instances up to roughly 8 clusters × 8 rows; SolveBudget
// bounds the enumeration so a mis-sized call fails fast instead of hanging.
package oracle

import (
	"fmt"
	"math"

	"mthplace/internal/core"
	"mthplace/internal/errs"
	"mthplace/internal/geom"
	"mthplace/internal/netlist"
	"mthplace/internal/rowgrid"
)

// SolveBudget caps the number of enumeration nodes Solve may visit. The
// default is generous for 8×8 instances (the capacity and row-count pruning
// keep the visited space far below NR^NC) while still failing fast on
// accidentally huge models.
const SolveBudget = 64 << 20

// Solve finds the exact optimum of the RAP instance by exhaustively
// enumerating every feasible cluster→pair assignment: each cluster may take
// any pair, subject to the pair capacity (Eq. 4) and to the number of
// distinct used pairs never exceeding N_minR (Eq. 5). The returned
// assignment mirrors core's conventions — MinorityPairs is padded with the
// lowest-index unused pairs up to exactly N_minR, and ties in the objective
// keep the lexicographically first assignment.
//
// It returns errs.ErrInfeasible when no feasible assignment exists, and a
// budget error when the enumeration would exceed SolveBudget nodes.
func Solve(m *core.Model) (*core.Assignment, error) {
	nC, nR := m.Clusters.N(), m.NR
	if m.NminR <= 0 || m.NminR > nR {
		return nil, errs.Infeasible("oracle: N_minR %d out of range (1..%d)", m.NminR, nR)
	}
	if nC == 0 {
		out := &core.Assignment{ClusterPair: []int{}}
		padPairs(out, m.NminR, nR)
		out.Stats.Method = "oracle"
		return out, nil
	}

	cur := make([]int, nC)
	load := make([]int64, nR)
	usage := make([]int, nR) // clusters currently on each pair
	used := 0                // distinct pairs in use
	best := math.Inf(1)
	var bestAssign []int
	nodes := 0

	var dfs func(c int, obj float64) error
	dfs = func(c int, obj float64) error {
		if c == nC {
			if obj < best {
				best = obj
				bestAssign = append(bestAssign[:0], cur...)
			}
			return nil
		}
		w := m.Clusters.Width[c]
		for r := 0; r < nR; r++ {
			nodes++
			if nodes > SolveBudget {
				return fmt.Errorf("oracle: enumeration exceeds budget of %d nodes (%d clusters × %d rows)",
					SolveBudget, nC, nR)
			}
			if load[r]+w > m.Cap {
				continue
			}
			opening := usage[r] == 0
			if opening && used == m.NminR {
				continue // Eq. 5: no more distinct pairs available
			}
			cur[c] = r
			load[r] += w
			usage[r]++
			if opening {
				used++
			}
			if err := dfs(c+1, obj+m.Cost[c][r]); err != nil {
				return err
			}
			if opening {
				used--
			}
			usage[r]--
			load[r] -= w
		}
		return nil
	}
	if err := dfs(0, 0); err != nil {
		return nil, err
	}
	if bestAssign == nil {
		return nil, errs.Infeasible("oracle: no feasible assignment (%d clusters, %d rows, N_minR %d, cap %d)",
			nC, nR, m.NminR, m.Cap)
	}

	out := &core.Assignment{ClusterPair: bestAssign, Objective: best}
	seen := map[int]bool{}
	for _, r := range bestAssign {
		if !seen[r] {
			seen[r] = true
			out.MinorityPairs = append(out.MinorityPairs, r)
		}
	}
	padPairs(out, m.NminR, nR)
	out.Stats.Method = "oracle"
	return out, nil
}

// padPairs tops MinorityPairs up to exactly nMinR pairs with the
// lowest-index unused pairs and sorts the set — the same convention
// core.padMinorityPairs uses (empty minority rows are legal).
func padPairs(a *core.Assignment, nMinR, nR int) {
	have := map[int]bool{}
	for _, r := range a.MinorityPairs {
		have[r] = true
	}
	for r := 0; len(a.MinorityPairs) < nMinR && r < nR; r++ {
		if !have[r] {
			a.MinorityPairs = append(a.MinorityPairs, r)
			have[r] = true
		}
	}
	// Insertion sort: the set is tiny and already nearly sorted.
	for i := 1; i < len(a.MinorityPairs); i++ {
		for j := i; j > 0 && a.MinorityPairs[j] < a.MinorityPairs[j-1]; j-- {
			a.MinorityPairs[j], a.MinorityPairs[j-1] = a.MinorityPairs[j-1], a.MinorityPairs[j]
		}
	}
}

// ObjectiveTol is the float tolerance used when auditing a reported
// objective against the recomputed Σ f_cr.
const ObjectiveTol = 1e-6

// Feasibility audits a RAP assignment against the paper's constraints from
// first principles:
//
//	Eq. 3 — every cluster is assigned exactly one pair, and that pair is in
//	        the minority set;
//	Eq. 4 — per-pair load Σ w(c) ≤ w(r);
//	Eq. 5 — exactly N_minR distinct minority pairs, all in range.
//
// It also recomputes the objective Σ f_cr and cross-checks the reported
// value. A nil return means the assignment satisfies all of them.
func Feasibility(m *core.Model, a *core.Assignment) error {
	nC, nR := m.Clusters.N(), m.NR
	if len(a.ClusterPair) != nC {
		return fmt.Errorf("oracle: Eq. 3: %d cluster assignments for %d clusters", len(a.ClusterPair), nC)
	}
	// Eq. 5: exact cardinality, range, uniqueness.
	if len(a.MinorityPairs) != m.NminR {
		return fmt.Errorf("oracle: Eq. 5: %d minority pairs, want exactly %d", len(a.MinorityPairs), m.NminR)
	}
	minority := make(map[int]bool, len(a.MinorityPairs))
	for _, r := range a.MinorityPairs {
		if r < 0 || r >= nR {
			return fmt.Errorf("oracle: Eq. 5: minority pair %d out of range (0..%d)", r, nR-1)
		}
		if minority[r] {
			return fmt.Errorf("oracle: Eq. 5: minority pair %d listed twice", r)
		}
		minority[r] = true
	}
	// Eq. 3 + Eq. 4.
	load := make([]int64, nR)
	var obj float64
	for c, r := range a.ClusterPair {
		if r < 0 || r >= nR {
			return fmt.Errorf("oracle: Eq. 3: cluster %d assigned to pair %d, out of range", c, r)
		}
		if !minority[r] {
			return fmt.Errorf("oracle: Eq. 3: cluster %d assigned to pair %d, which is not a minority pair", c, r)
		}
		load[r] += m.Clusters.Width[c]
		obj += m.Cost[c][r]
	}
	for r, l := range load {
		if l > m.Cap {
			return fmt.Errorf("oracle: Eq. 4: pair %d load %d exceeds capacity %d", r, l, m.Cap)
		}
	}
	if diff := math.Abs(obj - a.Objective); diff > ObjectiveTol*math.Max(1, math.Abs(obj)) {
		return fmt.Errorf("oracle: objective: reported %g, recomputed Σ f_cr = %g (diff %g)", a.Objective, obj, diff)
	}
	return nil
}

// CostMatrix recomputes the f_cr matrix of Eq. (2) from first principles,
// independently of core.BuildModel: displacement is the summed |Δy| of the
// member cell centers to the pair center, and ΔHPWL is obtained by
// re-evaluating each incident net's full bounding box with the member's own
// pins actually shifted — no incremental net-box bookkeeping. Member, net
// and accumulation order mirror BuildModel so the two matrices are
// comparable at float precision.
func CostMatrix(d *netlist.Design, g rowgrid.PairGrid, cl *core.Clusters, p core.CostParams) [][]float64 {
	cost := make([][]float64, cl.N())
	for c := 0; c < cl.N(); c++ {
		row := make([]float64, g.N)
		for r := 0; r < g.N; r++ {
			pairCY := g.PairCenterY(r)
			var disp, dhpwl float64
			for _, i := range cl.Members[c] {
				in := d.Insts[i]
				dy := pairCY - (in.Pos.Y + in.Height()/2)
				disp += float64(geom.AbsInt64(dy))
				seen := map[int32]bool{}
				for _, net := range in.PinNets {
					if net == netlist.NoNet || net == d.ClockNet || seen[net] {
						continue
					}
					seen[net] = true
					before := netHPWLShifted(d, net, i, 0)
					after := netHPWLShifted(d, net, i, dy)
					dhpwl += float64(after - before)
				}
			}
			row[r] = p.Alpha*disp + (1-p.Alpha)*dhpwl
		}
		cost[c] = row
	}
	return cost
}

// netHPWLShifted returns the half-perimeter of a net's pin bounding box with
// instance inst's own pins shifted vertically by dy.
func netHPWLShifted(d *netlist.Design, net, inst int32, dy int64) int64 {
	var b geom.BBox
	for _, ref := range d.Nets[net].Pins {
		pt := d.PinPos(ref)
		if !ref.IsPort() && ref.Inst == inst {
			pt.Y += dy
		}
		b.Extend(pt)
	}
	return b.HalfPerimeter()
}
