package oracle_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"mthplace/internal/core"
	"mthplace/internal/errs"
	"mthplace/internal/flow"
	"mthplace/internal/milp"
	"mthplace/internal/oracle"
	"mthplace/internal/synth"
)

// exactOptions disable every approximation knob of the production solver:
// no candidate-row pruning, an effectively unlimited node budget, and the
// default (tight) gap — on integer-valued costs the result must be the true
// optimum.
func exactOptions() core.SolveOptions {
	return core.SolveOptions{
		CandidateRows: 0,
		MILP:          milp.Options{MaxNodes: 5_000_000},
		// Strict forbids the degradation ladder: anything short of the
		// proven optimum is an error, so a silently degraded solve can
		// never slip through the differential comparison.
		Degrade: core.DegradeStrict,
	}
}

// randomModel builds a synthetic RAP instance small enough for the oracle.
// Costs are integer-valued floats so "equal objective" is unambiguous:
// distinct objectives differ by at least 1, far above every solver
// tolerance. slack > 0 guarantees feasibility (cap ≥ ceil(total/NminR) +
// maxW admits any greedy packing); slack == 0 produces tight instances that
// may be infeasible.
func randomModel(rng *rand.Rand, slack bool) *core.Model {
	nC := 1 + rng.Intn(8)
	nR := 2 + rng.Intn(7)
	// Bound the enumeration space: shrink nR until nR^nC stays small.
	for math.Pow(float64(nR), float64(nC)) > float64(2<<20) {
		nR--
	}
	nMinR := 1 + rng.Intn(nR)

	cl := &core.Clusters{
		Members: make([][]int32, nC),
		Width:   make([]int64, nC),
		CenterX: make([]float64, nC),
		CenterY: make([]float64, nC),
	}
	var total, maxW int64
	for c := 0; c < nC; c++ {
		cl.Width[c] = 1 + rng.Int63n(100)
		total += cl.Width[c]
		if cl.Width[c] > maxW {
			maxW = cl.Width[c]
		}
		cl.CenterX[c] = rng.Float64() * 1000
		cl.CenterY[c] = rng.Float64() * float64(nR) * 1000
	}
	capW := (total + int64(nMinR) - 1) / int64(nMinR)
	if capW < maxW {
		capW = maxW
	}
	if slack {
		capW += maxW
	}
	m := &core.Model{
		Clusters:    cl,
		NR:          nR,
		NminR:       nMinR,
		Cap:         capW,
		Cost:        make([][]float64, nC),
		PairCenterY: make([]int64, nR),
	}
	for r := 0; r < nR; r++ {
		m.PairCenterY[r] = int64(r)*1000 + 500
	}
	for c := 0; c < nC; c++ {
		m.Cost[c] = make([]float64, nR)
		for r := 0; r < nR; r++ {
			m.Cost[c][r] = float64(rng.Intn(1001))
		}
	}
	return m
}

// TestDifferentialExactVsILP is the acceptance differential: on 220
// randomized feasible instances (≤ 8 clusters × 8 rows) the production
// branch-and-bound objective must equal the brute-force optimum exactly,
// and every returned assignment must pass the Eq. 3/4/5 audit.
func TestDifferentialExactVsILP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	for i := 0; i < 220; i++ {
		m := randomModel(rng, true)
		want, err := oracle.Solve(m)
		if err != nil {
			t.Fatalf("instance %d: oracle on guaranteed-feasible instance: %v", i, err)
		}
		if err := oracle.Feasibility(m, want); err != nil {
			t.Fatalf("instance %d: oracle's own solution fails audit: %v", i, err)
		}
		got, err := core.SolveILP(ctx, m, exactOptions())
		if err != nil {
			t.Fatalf("instance %d: SolveILP: %v", i, err)
		}
		if err := oracle.Feasibility(m, got); err != nil {
			t.Errorf("instance %d: ILP solution fails audit: %v", i, err)
		}
		if !got.Stats.Optimal {
			t.Errorf("instance %d: ILP did not prove optimality (status %v, %d nodes)",
				i, got.Stats.MILPStatus, got.Stats.Nodes)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Errorf("instance %d (%d clusters × %d rows, N_minR %d): ILP objective %g, oracle optimum %g",
				i, m.Clusters.N(), m.NR, m.NminR, got.Objective, want.Objective)
		}
	}
}

// TestDifferentialGreedyFeasible: the greedy warm start must always produce
// audit-clean solutions with objective no better than the true optimum.
func TestDifferentialGreedyFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		m := randomModel(rng, true)
		want, err := oracle.Solve(m)
		if err != nil {
			t.Fatalf("instance %d: oracle: %v", i, err)
		}
		got, err := core.SolveGreedy(m)
		if err != nil {
			t.Fatalf("instance %d: greedy on guaranteed-feasible instance: %v", i, err)
		}
		if err := oracle.Feasibility(m, got); err != nil {
			t.Errorf("instance %d: greedy solution fails audit: %v", i, err)
		}
		if got.Objective < want.Objective-1e-6 {
			t.Errorf("instance %d: greedy objective %g beats proven optimum %g — oracle is wrong",
				i, got.Objective, want.Objective)
		}
	}
}

// TestDifferentialTightCapacity exercises instances at exact capacity,
// where infeasibility is possible. Whenever both solvers produce a
// solution, the objectives must agree; when the oracle proves the instance
// infeasible, the production path must error with ErrInfeasible too.
func TestDifferentialTightCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ctx := context.Background()
	solved, infeasible, greedyMiss := 0, 0, 0
	for i := 0; i < 80; i++ {
		m := randomModel(rng, false)
		want, wantErr := oracle.Solve(m)
		got, gotErr := core.SolveILP(ctx, m, exactOptions())
		switch {
		case wantErr == nil && gotErr == nil:
			solved++
			if !got.Stats.Optimal {
				continue // fell back to greedy after pruning infeasibility; skip
			}
			if math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Errorf("instance %d: ILP objective %g, oracle optimum %g", i, got.Objective, want.Objective)
			}
		case wantErr != nil && gotErr == nil:
			t.Errorf("instance %d: oracle proves infeasible (%v) but ILP returned objective %g",
				i, wantErr, got.Objective)
		case wantErr == nil && gotErr != nil:
			// The production path seeds the ILP from the greedy heuristic and
			// gives up when the heuristic cannot pack — a documented
			// limitation, not an optimality bug. Count it for visibility.
			greedyMiss++
		default:
			infeasible++
			if !errors.Is(gotErr, errs.ErrInfeasible) {
				t.Errorf("instance %d: infeasible instance returned %v, want ErrInfeasible", i, gotErr)
			}
		}
	}
	t.Logf("tight instances: %d solved, %d infeasible, %d greedy misses", solved, infeasible, greedyMiss)
	if solved == 0 {
		t.Error("no tight instance was solved by both solvers — generator is miscalibrated")
	}
}

// TestCostMatrixMatchesBuildModel cross-checks the production f_cr matrix
// (incremental net boxes, parallel build) against the oracle's naive
// full-bbox recompute on a real prepared testcase.
func TestCostMatrixMatchesBuildModel(t *testing.T) {
	ctx := context.Background()
	cfg := flow.DefaultConfig()
	cfg.Synth.Scale = 0.02
	r, err := flow.NewRunner(ctx, synth.TableII()[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.BuildClusters(ctx, r.Base, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultCostParams()
	m, err := core.BuildModel(ctx, r.Base, r.Grid, cl, r.NminR, p)
	if err != nil {
		t.Fatal(err)
	}
	ref := oracle.CostMatrix(r.Base, r.Grid, cl, p)
	if len(ref) != len(m.Cost) {
		t.Fatalf("cost matrix has %d rows, oracle recomputed %d", len(m.Cost), len(ref))
	}
	for c := range ref {
		for r := range ref[c] {
			got, want := m.Cost[c][r], ref[c][r]
			if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
				t.Fatalf("f_cr[%d][%d]: BuildModel %g, first-principles %g", c, r, got, want)
			}
		}
	}
}

// TestFeasibilityRejectsCorruption corrupts a valid solution once per
// constraint and checks the audit catches each violation.
func TestFeasibilityRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var m *core.Model
	var sol *core.Assignment
	for {
		m = randomModel(rng, true)
		if m.Clusters.N() >= 2 && m.NR >= 3 && m.NminR < m.NR {
			s, err := oracle.Solve(m)
			if err != nil {
				t.Fatal(err)
			}
			sol = s
			break
		}
	}
	if err := oracle.Feasibility(m, sol); err != nil {
		t.Fatalf("valid solution rejected: %v", err)
	}

	clone := func() *core.Assignment {
		c := *sol
		c.ClusterPair = append([]int(nil), sol.ClusterPair...)
		c.MinorityPairs = append([]int(nil), sol.MinorityPairs...)
		return &c
	}

	cases := []struct {
		name    string
		corrupt func(a *core.Assignment)
	}{
		{"eq3-non-minority-row", func(a *core.Assignment) {
			// Assign cluster 0 to a pair outside the minority set.
			in := map[int]bool{}
			for _, r := range a.MinorityPairs {
				in[r] = true
			}
			for r := 0; r < m.NR; r++ {
				if !in[r] {
					a.ClusterPair[0] = r
					return
				}
			}
		}},
		{"eq3-out-of-range", func(a *core.Assignment) { a.ClusterPair[0] = m.NR }},
		{"eq3-missing-cluster", func(a *core.Assignment) { a.ClusterPair = a.ClusterPair[:len(a.ClusterPair)-1] }},
		{"eq5-wrong-count", func(a *core.Assignment) {
			for r := 0; r < m.NR; r++ {
				found := false
				for _, p := range a.MinorityPairs {
					if p == r {
						found = true
						break
					}
				}
				if !found {
					a.MinorityPairs = append(a.MinorityPairs, r)
					return
				}
			}
		}},
		{"eq5-duplicate", func(a *core.Assignment) { a.MinorityPairs[len(a.MinorityPairs)-1] = a.MinorityPairs[0] }},
		{"objective-drift", func(a *core.Assignment) { a.Objective += 1000 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := clone()
			tc.corrupt(a)
			if err := oracle.Feasibility(m, a); err == nil {
				t.Error("corrupted assignment passed the audit")
			}
		})
	}

	// Eq. 4 needs a handcrafted instance where one pair provably cannot
	// host every cluster (the random generator's slack can make that legal).
	t.Run("eq4-overload", func(t *testing.T) {
		om := &core.Model{
			Clusters: &core.Clusters{
				Members: make([][]int32, 4),
				Width:   []int64{100, 100, 100, 100},
				CenterX: make([]float64, 4),
				CenterY: []float64{500, 500, 1500, 1500},
			},
			NR:          4,
			NminR:       2,
			Cap:         210,
			Cost:        [][]float64{{1, 2, 3, 4}, {1, 2, 3, 4}, {4, 3, 2, 1}, {4, 3, 2, 1}},
			PairCenterY: []int64{500, 1500, 2500, 3500},
		}
		good, err := oracle.Solve(om)
		if err != nil {
			t.Fatal(err)
		}
		if err := oracle.Feasibility(om, good); err != nil {
			t.Fatalf("valid solution rejected: %v", err)
		}
		bad := &core.Assignment{
			ClusterPair:   []int{0, 0, 0, 0},
			MinorityPairs: []int{0, 1},
			Objective:     om.Cost[0][0] + om.Cost[1][0] + om.Cost[2][0] + om.Cost[3][0],
		}
		if err := oracle.Feasibility(om, bad); err == nil {
			t.Error("overloaded pair passed the Eq. 4 audit")
		}
	})
}

// TestOracleDeterminism: same instance, same answer, byte for byte.
func TestOracleDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomModel(rng, true)
	a, err := oracle.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := oracle.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective {
		t.Fatalf("objectives differ: %g vs %g", a.Objective, b.Objective)
	}
	for c := range a.ClusterPair {
		if a.ClusterPair[c] != b.ClusterPair[c] {
			t.Fatalf("cluster %d assigned to %d then %d", c, a.ClusterPair[c], b.ClusterPair[c])
		}
	}
}
