package oracle_test

import (
	"testing"

	"mthplace/internal/core"
	"mthplace/internal/oracle"
)

// byteReader doles out fuzz input bytes, returning 0 past the end so every
// input decodes to some model.
type byteReader struct {
	data []byte
	pos  int
}

func (b *byteReader) next() byte {
	if b.pos >= len(b.data) {
		return 0
	}
	v := b.data[b.pos]
	b.pos++
	return v
}

// modelFromBytes decodes an arbitrary byte string into a small RAP model:
// 1-5 clusters over 2-6 row pairs with slack capacity, so the instance is
// always feasible and the oracle's state space stays tiny.
func modelFromBytes(data []byte) *core.Model {
	br := &byteReader{data: data}
	nC := int(br.next())%5 + 1
	nR := int(br.next())%5 + 2
	nminR := int(br.next())%nR + 1

	m := &core.Model{Clusters: &core.Clusters{}, NR: nR, NminR: nminR}
	var total, maxW int64
	for c := 0; c < nC; c++ {
		w := int64(br.next())%100 + 1
		m.Clusters.Width = append(m.Clusters.Width, w)
		m.Clusters.Members = append(m.Clusters.Members, []int32{int32(c)})
		m.Clusters.CenterX = append(m.Clusters.CenterX, float64(c))
		m.Clusters.CenterY = append(m.Clusters.CenterY, float64(c))
		total += w
		if w > maxW {
			maxW = w
		}
		row := make([]float64, nR)
		for r := range row {
			row[r] = float64(int(br.next()) * 4)
		}
		m.Cost = append(m.Cost, row)
	}
	m.Cap = (total+int64(nminR)-1)/int64(nminR) + maxW
	for r := 0; r < nR; r++ {
		m.PairCenterY = append(m.PairCenterY, int64(r)*1000+500)
	}
	return m
}

// FuzzSolve decodes arbitrary bytes into a small feasible RAP instance and
// checks that the greedy and exact solvers agree with the first-principles
// feasibility audit, and that greedy never beats the oracle's optimum.
func FuzzSolve(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 4, 2, 50, 10, 20, 30, 40, 7, 99, 1, 2, 3, 4})
	f.Add([]byte{5, 5, 5, 1, 1, 1, 1, 1, 255, 255, 0, 0, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := modelFromBytes(data)

		exact, err := oracle.Solve(m)
		if err != nil {
			t.Fatalf("slack-capacity instance reported infeasible: %v", err)
		}
		if err := oracle.Feasibility(m, exact); err != nil {
			t.Fatalf("oracle result fails its own audit: %v", err)
		}

		greedy, err := core.SolveGreedy(m)
		if err != nil {
			t.Fatalf("greedy failed on slack-capacity instance: %v", err)
		}
		if err := oracle.Feasibility(m, greedy); err != nil {
			t.Fatalf("greedy result fails audit: %v", err)
		}
		if greedy.Objective < exact.Objective-1e-9 {
			t.Fatalf("greedy objective %v beats exact optimum %v", greedy.Objective, exact.Objective)
		}
	})
}
