// Package obs is the zero-dependency observability layer (DESIGN.md §11):
// structured leveled logging, span tracing, a process-wide metrics registry,
// and a solver progress-event stream. Everything is carried on the
// context.Context that already threads through the flow API, and every hook
// is a no-op when the corresponding sink is absent — instrumentation is
// read-only with respect to placement state, so results are bit-identical
// with observability on, off, or partially on.
//
// The four sub-systems:
//
//   - Logging: a *slog.Logger carried by WithLogger/Log. Log returns a
//     discard logger when none is installed, so library code logs
//     unconditionally and the caller decides the level and destination.
//   - Tracing: a Tracer carried by WithTracer collects spans (StartSpan/End)
//     and instant events, exportable as Chrome trace_event JSON
//     (chrome://tracing, Perfetto) via Tracer.WriteJSON.
//   - Metrics: counters, gauges and fixed-bucket float histograms in a
//     Registry, exposed in Prometheus text format (Registry.WriteProm,
//     Registry.Handler). The package-level Default registry holds the
//     canonical process-wide series (mth_solve_total, mth_stage_seconds).
//   - Progress: solver progress events (MILP incumbents, k-means iteration
//     movement, stage transitions) delivered to a SinkFunc installed with
//     WithProgress; Emit without a sink costs one context lookup.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

type ctxKey int

const (
	loggerKey ctxKey = iota
	tracerKey
	progressKey
	spanCtxKey
)

// discardHandler drops every record. (slog.DiscardHandler exists only from
// Go 1.24; this repo's floor is 1.23.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// nopLogger is returned by Log when no logger is installed.
var nopLogger = slog.New(discardHandler{})

// Nop returns a logger that discards everything.
func Nop() *slog.Logger { return nopLogger }

// WithLogger installs lg as the context's structured logger. A nil lg
// installs the discard logger.
func WithLogger(ctx context.Context, lg *slog.Logger) context.Context {
	if lg == nil {
		lg = nopLogger
	}
	return context.WithValue(ctx, loggerKey, lg)
}

// Log returns the context's logger, or a discard logger when none is
// installed — callers log unconditionally and never nil-check.
func Log(ctx context.Context) *slog.Logger {
	if lg, ok := ctx.Value(loggerKey).(*slog.Logger); ok {
		return lg
	}
	return nopLogger
}

// NewCLILogger builds the leveled stderr logger the commands share: Debug
// with verbose set, Warn-and-up with quiet set, Info otherwise. Output is
// slog text format on w, without timestamps when w is a terminal-bound
// stream (diagnostics, not an audit log).
func NewCLILogger(w io.Writer, verbose, quiet bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	if quiet {
		level = slog.LevelWarn
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{} // drop timestamps: this is a progress stream
			}
			return a
		},
	}))
}

// Event is one solver progress notification. Producers fill the fields that
// apply; consumers switch on Source/Kind.
type Event struct {
	// Source is the producing subsystem: "flow", "milp", "kmeans".
	Source string `json:"source"`
	// Kind is the event type: "stage" (flow stage transition), "incumbent"
	// (MILP found a better feasible solution), "iteration" (one k-means
	// Lloyd iteration).
	Kind string `json:"kind"`
	// Stage names the flow stage for Kind "stage".
	Stage string `json:"stage,omitempty"`
	// Iter is the 1-based iteration number for Kind "iteration".
	Iter int `json:"iter,omitempty"`
	// Moved counts samples that changed cluster this iteration.
	Moved int `json:"moved,omitempty"`
	// Nodes is the branch-and-bound node count at an incumbent event.
	Nodes int `json:"nodes,omitempty"`
	// Objective is the incumbent objective value.
	Objective float64 `json:"objective,omitempty"`
	// Gap is the relative optimality-gap bound at the event (-1 = unknown).
	Gap float64 `json:"gap,omitempty"`
	// ElapsedMS is the producer's elapsed wall clock at the event.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// String renders the event for terminal progress streams.
func (e Event) String() string {
	switch e.Kind {
	case "stage":
		return fmt.Sprintf("[%s] stage %s", e.Source, e.Stage)
	case "incumbent":
		g := "unknown"
		if e.Gap >= 0 {
			g = fmt.Sprintf("%.3f%%", 100*e.Gap)
		}
		return fmt.Sprintf("[%s] incumbent obj=%.1f gap<=%s nodes=%d t=%.1fms",
			e.Source, e.Objective, g, e.Nodes, e.ElapsedMS)
	case "iteration":
		return fmt.Sprintf("[%s] iter %d moved=%d", e.Source, e.Iter, e.Moved)
	default:
		return fmt.Sprintf("[%s] %s", e.Source, e.Kind)
	}
}

// SinkFunc consumes progress events. Implementations must be safe for
// concurrent use (parallel flows emit concurrently) and fast — they run on
// the solver goroutine.
type SinkFunc func(Event)

// WithProgress installs sink as the context's progress consumer.
func WithProgress(ctx context.Context, sink SinkFunc) context.Context {
	return context.WithValue(ctx, progressKey, sink)
}

// Progress returns the context's progress sink, or nil. Hot loops fetch it
// once instead of calling Emit per event.
func Progress(ctx context.Context) SinkFunc {
	sink, _ := ctx.Value(progressKey).(SinkFunc)
	return sink
}

// Emit delivers one event to the context's sink; without a sink it is one
// context lookup.
func Emit(ctx context.Context, e Event) {
	if sink := Progress(ctx); sink != nil {
		sink(e)
	}
}
