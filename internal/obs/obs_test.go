package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestLogDefaultsToDiscard(t *testing.T) {
	lg := Log(context.Background())
	if lg == nil {
		t.Fatal("Log returned nil")
	}
	// Must not panic and must report disabled at every level.
	lg.Info("dropped")
	if lg.Enabled(context.Background(), 0) {
		t.Error("discard logger claims to be enabled")
	}
	if Nop().Enabled(context.Background(), 0) {
		t.Error("Nop logger claims to be enabled")
	}
}

func TestWithLoggerNilInstallsDiscard(t *testing.T) {
	ctx := WithLogger(context.Background(), nil)
	Log(ctx).Info("dropped") // must not panic
}

func TestWithLoggerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ctx := WithLogger(context.Background(), NewCLILogger(&buf, false, false))
	Log(ctx).Info("hello", "k", "v")
	out := buf.String()
	if !strings.Contains(out, "hello") || !strings.Contains(out, "k=v") {
		t.Errorf("log output %q missing message or attr", out)
	}
	if strings.Contains(out, "time=") {
		t.Errorf("CLI logger should drop timestamps, got %q", out)
	}
}

func TestNewCLILoggerLevels(t *testing.T) {
	cases := []struct {
		verbose, quiet          bool
		debug, info, warnShould bool
	}{
		{false, false, false, true, true}, // default: info+
		{true, false, true, true, true},   // verbose: debug+
		{false, true, false, false, true}, // quiet: warn+
	}
	for _, c := range cases {
		var buf bytes.Buffer
		lg := NewCLILogger(&buf, c.verbose, c.quiet)
		lg.Debug("dbg")
		lg.Info("inf")
		lg.Warn("wrn")
		out := buf.String()
		if got := strings.Contains(out, "dbg"); got != c.debug {
			t.Errorf("verbose=%v quiet=%v: debug logged=%v, want %v", c.verbose, c.quiet, got, c.debug)
		}
		if got := strings.Contains(out, "inf"); got != c.info {
			t.Errorf("verbose=%v quiet=%v: info logged=%v, want %v", c.verbose, c.quiet, got, c.info)
		}
		if !strings.Contains(out, "wrn") {
			t.Errorf("verbose=%v quiet=%v: warn suppressed", c.verbose, c.quiet)
		}
	}
}

func TestProgressAbsent(t *testing.T) {
	ctx := context.Background()
	if Progress(ctx) != nil {
		t.Error("Progress should be nil without a sink")
	}
	Emit(ctx, Event{Source: "milp", Kind: "incumbent"}) // must not panic
}

func TestProgressDelivery(t *testing.T) {
	var got []Event
	ctx := WithProgress(context.Background(), func(e Event) { got = append(got, e) })
	Emit(ctx, Event{Source: "kmeans", Kind: "iteration", Iter: 3, Moved: 17})
	Emit(ctx, Event{Source: "milp", Kind: "incumbent", Objective: 42, Gap: 0.5})
	if len(got) != 2 {
		t.Fatalf("delivered %d events, want 2", len(got))
	}
	if got[0].Iter != 3 || got[0].Moved != 17 {
		t.Errorf("first event corrupted: %+v", got[0])
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want []string
	}{
		{Event{Source: "flow", Kind: "stage", Stage: "solve"}, []string{"[flow]", "solve"}},
		{Event{Source: "milp", Kind: "incumbent", Objective: 12, Gap: 0.25, Nodes: 9},
			[]string{"[milp]", "obj=12.0", "25.000%", "nodes=9"}},
		{Event{Source: "milp", Kind: "incumbent", Gap: -1}, []string{"gap<=unknown"}},
		{Event{Source: "kmeans", Kind: "iteration", Iter: 4, Moved: 2}, []string{"iter 4", "moved=2"}},
		{Event{Source: "x", Kind: "other"}, []string{"[x] other"}},
	}
	for _, c := range cases {
		s := c.e.String()
		for _, w := range c.want {
			if !strings.Contains(s, w) {
				t.Errorf("Event %+v renders %q; missing %q", c.e, s, w)
			}
		}
	}
}
