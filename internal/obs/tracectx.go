package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"strings"
)

// SpanContext identifies a position in a distributed trace: the trace the
// work belongs to and the span that is its parent on the far side of a
// process boundary. It is the value serialized as a W3C traceparent header
// (https://www.w3.org/TR/trace-context/) on the /v1 edge and inside
// WireJob on the coordinator→worker hop.
type SpanContext struct {
	// TraceID is 32 lowercase hex characters shared by every span of one
	// job, across every process that touched it.
	TraceID string
	// SpanID is 16 lowercase hex characters naming the current span — the
	// parent of any span started under this context.
	SpanID string
}

// Valid reports whether both IDs are well-formed and non-zero.
func (sc SpanContext) Valid() bool {
	return isHexID(sc.TraceID, 32) && isHexID(sc.SpanID, 16)
}

// Traceparent renders the context in W3C trace-context form:
// "00-<trace-id>-<parent-id>-01". Invalid contexts render "".
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header. Per the spec, callers
// treat ok=false (malformed, all-zero IDs, unknown version "ff") as "no
// trace context" rather than an error: a bad header from a client must not
// fail the request, only lose the client's correlation.
func ParseTraceparent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	version, traceID, spanID := parts[0], parts[1], parts[2]
	if len(version) != 2 || !isHexID(version, 2) || version == "ff" {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: traceID, SpanID: spanID}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// isHexID reports whether s is exactly n lowercase hex chars and not all
// zeros (the spec's invalid sentinel).
func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero || n == 2 // version "00" is legal; zero trace/span IDs are not
}

// NewTraceID returns a fresh random 32-hex-char trace ID.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns a fresh random 16-hex-char span ID.
func NewSpanID() string { return randHex(8) }

// randHex returns 2n lowercase hex chars of randomness from math/rand/v2's
// global ChaCha8 generator (itself seeded from OS entropy). Trace and span
// IDs need uniqueness, not unpredictability — and crypto/rand costs a
// syscall per read, which on sandboxed kernels runs four orders of
// magnitude slower than ChaCha8 and shows up as whole-percent tracing
// overhead in benchobs. The all-zero value (the spec's invalid sentinel)
// is nudged to 1.
func randHex(n int) string {
	b := make([]byte, n)
	zero := true
	for i := 0; i < n; i += 8 {
		v := rand.Uint64()
		for j := i; j < i+8 && j < n; j++ {
			b[j] = byte(v)
			v >>= 8
			if b[j] != 0 {
				zero = false
			}
		}
	}
	if zero {
		b[n-1] = 1
	}
	return hex.EncodeToString(b)
}

// WithSpanContext installs sc as the context's current trace position;
// spans started under ctx parent under sc.SpanID and share sc.TraceID.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey, sc)
}

// SpanContextFrom returns the context's trace position, or the zero
// SpanContext when none is installed.
func SpanContextFrom(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey).(SpanContext)
	return sc
}
