package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	ctx := context.Background()
	if TracerFrom(ctx) != nil {
		t.Fatal("TracerFrom should be nil without a tracer")
	}
	sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("StartSpan without tracer should return nil")
	}
	sp.SetArg("k", 1) // nil receivers: must not panic
	sp.End()
	Instant(ctx, "marker", nil)
	var tr *Tracer
	tr.Instant("marker", nil)
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Error("nil tracer should report empty")
	}
}

func TestTracerSpansAndInstants(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	sp := StartSpan(ctx, "work")
	sp.SetArg("n", 7)
	sp.End()
	Instant(ctx, "milestone", map[string]any{"v": 1})
	if tr.Len() != 2 {
		t.Fatalf("recorded %d events, want 2", tr.Len())
	}
	names := tr.Spans()
	if names[0] != "work" || names[1] != "milestone" {
		t.Errorf("span names = %v", names)
	}
}

// TestWriteJSONFormat checks the export against the Chrome trace_event
// contract: a traceEvents array whose complete spans carry ph "X" with
// ts/dur and whose instants carry ph "i" with thread scope.
func TestWriteJSONFormat(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	sp := StartSpan(ctx, "stage")
	sp.SetArg("cells", 42)
	sp.End()
	tr.Instant("incumbent", map[string]any{"objective": 3.5})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TsUS  int64          `json:"ts"`
			DurUS int64          `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("exported %d events, want 2", len(doc.TraceEvents))
	}
	span, inst := doc.TraceEvents[0], doc.TraceEvents[1]
	if span.Phase != "X" || span.Name != "stage" || span.PID != 1 || span.TID != 1 {
		t.Errorf("bad span record: %+v", span)
	}
	if span.Args["cells"] != float64(42) {
		t.Errorf("span args lost: %+v", span.Args)
	}
	if inst.Phase != "i" || inst.Scope != "t" || inst.Name != "incumbent" {
		t.Errorf("bad instant record: %+v", inst)
	}
	if span.TsUS < 0 || inst.TsUS < span.TsUS {
		t.Errorf("timeline not monotonic: span ts=%d instant ts=%d", span.TsUS, inst.TsUS)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := StartSpan(ctx, "s")
				sp.End()
				tr.Instant("i", nil)
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8*50*2 {
		t.Errorf("lost events: %d recorded, want %d", tr.Len(), 8*50*2)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("concurrent trace export is invalid JSON")
	}
}
