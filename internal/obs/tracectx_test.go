package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	if !sc.Valid() {
		t.Fatalf("fresh span context invalid: %+v", sc)
	}
	tp := sc.Traceparent()
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent = %q", tp)
	}
	back, ok := ParseTraceparent(tp)
	if !ok || back != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", back, ok, sc)
	}
}

func TestParseTraceparentRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"not-a-traceparent",
		"00-abc-def-01", // too short
		"ff-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01", // forbidden version
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("b", 16) + "-01", // zero trace id
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero span id
		"00-" + strings.Repeat("A", 32) + "-" + strings.Repeat("b", 16) + "-01", // uppercase hex
		"00-" + strings.Repeat("g", 32) + "-" + strings.Repeat("b", 16) + "-01", // non-hex
	}
	for _, s := range bad {
		if sc, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted: %+v", s, sc)
		}
	}
	// Future versions other than ff must parse (spec: forward compatible),
	// and trailing fields beyond flags are tolerated.
	good := "cc-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01-extra"
	if _, ok := ParseTraceparent(good); !ok {
		t.Errorf("ParseTraceparent(%q) rejected a forward-compatible header", good)
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if len(id) != 16 || seen[id] {
			t.Fatalf("span id %q duplicate or malformed at i=%d", id, i)
		}
		seen[id] = true
	}
}

// TestSpanParenting checks the distributed-schema invariants: spans adopt
// the context's TraceID, StartSpanCtx nests children under the started
// span, and ctx-level instants parent under the current span.
func TestSpanParenting(t *testing.T) {
	tr := NewTracerFor("coordinator")
	root := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	ctx := WithSpanContext(WithTracer(context.Background(), tr), root)

	dctx, dispatch := StartSpanCtx(ctx, "dispatch")
	child := StartSpan(dctx, "flow.solve")
	Instant(dctx, "retry", nil)
	child.End()
	dispatch.End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("recorded %d records, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		if r.TraceID != root.TraceID {
			t.Errorf("record %q trace id %q, want %q", r.Name, r.TraceID, root.TraceID)
		}
		byName[r.Name] = r
	}
	d := byName["dispatch"]
	if d.Parent != root.SpanID {
		t.Errorf("dispatch parent %q, want root %q", d.Parent, root.SpanID)
	}
	if byName["flow.solve"].Parent != d.SpanID {
		t.Errorf("flow.solve parent %q, want dispatch %q", byName["flow.solve"].Parent, d.SpanID)
	}
	inst := byName["retry"]
	if inst.Kind != "instant" || inst.Parent != d.SpanID || inst.SpanID != "" {
		t.Errorf("instant record %+v, want instant parented under dispatch", inst)
	}
	if d.Proc != "coordinator" {
		t.Errorf("proc = %q", d.Proc)
	}
}

// TestWriteChromeTraceMerge merges records from two processes and checks
// the export: one pid row per proc, process_name metadata, timestamps
// rebased on the earliest record, trace ids surfaced in args.
func TestWriteChromeTraceMerge(t *testing.T) {
	recs := []SpanRecord{
		{TraceID: strings.Repeat("a", 32), SpanID: strings.Repeat("1", 16), Name: "job",
			Proc: "coordinator", Kind: "span", StartUS: 1_000_000, DurUS: 500},
		{TraceID: strings.Repeat("a", 32), SpanID: strings.Repeat("2", 16),
			Parent: strings.Repeat("1", 16), Name: "flow.solve",
			Proc: "remote-0", Kind: "span", StartUS: 1_000_100, DurUS: 300},
		{TraceID: strings.Repeat("a", 32), Parent: strings.Repeat("1", 16),
			Name: "reroute", Proc: "coordinator", Kind: "instant", StartUS: 1_000_200},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TsUS  int64          `json:"ts"`
			PID   int            `json:"pid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		Unit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.Unit)
	}
	var meta, spans, instants int
	pidName := map[int]string{}
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
			pidName[ev.PID], _ = ev.Args["name"].(string)
		case "X":
			spans++
		case "i":
			instants++
			if ev.Scope != "t" {
				t.Errorf("instant scope = %q", ev.Scope)
			}
		}
		if ev.Phase != "M" && ev.TsUS < 0 {
			t.Errorf("event %q has negative ts %d", ev.Name, ev.TsUS)
		}
	}
	if meta != 2 || spans != 2 || instants != 1 {
		t.Fatalf("got %d metadata / %d spans / %d instants, want 2/2/1:\n%s",
			meta, spans, instants, buf.String())
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "job" && ev.TsUS != 0 {
			t.Errorf("earliest span not rebased to 0: ts=%d", ev.TsUS)
		}
		if ev.Name == "flow.solve" {
			if pidName[ev.PID] != "remote-0" {
				t.Errorf("flow.solve on pid %d (%q), want remote-0", ev.PID, pidName[ev.PID])
			}
			if ev.Args["parent_id"] != strings.Repeat("1", 16) {
				t.Errorf("parent_id not surfaced in args: %+v", ev.Args)
			}
		}
	}
}
