package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are a metric's constant label set. Series within one family are
// keyed by their sorted, rendered label pairs.
type Labels map[string]string

// render returns the canonical {k="v",...} form, sorted by key; empty labels
// render as "".
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, labelEscaper.Replace(l[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// labelEscaper escapes a label value per the Prometheus text exposition
// format, which defines exactly three escapes inside a quoted label value:
// backslash, double quote, and newline. Go's %q is not equivalent — it also
// escapes tabs, non-printables, and non-ASCII, which scrapers read back as
// literal backslash sequences.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper escapes HELP text, where the format defines backslash and
// newline escapes (quotes are legal raw).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the series to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (atomic via CAS).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket float64 distribution. Buckets are upper
// bounds; an implicit +Inf bucket catches the rest. Observe is lock-free.
type Histogram struct {
	buckets []float64      // sorted upper bounds, excluding +Inf
	counts  []atomic.Int64 // len(buckets)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// StageBuckets are the default duration buckets (seconds) for the
// mth_stage_seconds histogram: placement stages range from sub-millisecond
// (tiny scales in tests) to minutes (paper-size ILP solves).
var StageBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120}

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every series of one metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // rendered labels -> *Counter/*Gauge/*Histogram
	order  []string       // registration order of label keys, for stable output
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent: asking for an existing
// (name, labels) series returns the same instance, so package-level
// instrumentation can re-register freely. Registering one name with two
// different types panics — that is a programming error, not runtime input.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// Default is the process-wide registry: the flow/solver instrumentation
// records here, and servers export it at GET /metrics.
var Default = NewRegistry()

func (r *Registry) fam(name, help string, typ metricType, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: map[string]any{}}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %v and %v", name, f.typ, typ))
	}
	return f
}

func (f *family) get(labels Labels, make func() any) any {
	key := labels.render()
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = make()
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	f := r.fam(name, help, typeCounter, nil)
	return f.get(labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	f := r.fam(name, help, typeGauge, nil)
	return f.get(labels, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram registers (or finds) a histogram series with the given bucket
// upper bounds (the family's first registration fixes the buckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	f := r.fam(name, help, typeHistogram, buckets)
	return f.get(labels, func() any {
		h := &Histogram{buckets: f.buckets}
		h.counts = make([]atomic.Int64, len(f.buckets)+1)
		return h
	}).(*Histogram)
}

// Canonical solve-cache series names. Exposed as helpers so the scheduler,
// tests and dashboards agree on spelling; the registry argument (nil for
// Default) keeps per-server isolation — each server registers the pair in
// its own private registry.
const (
	cacheHitsName   = "mth_cache_hits_total"
	cacheMissesName = "mth_cache_misses_total"
)

// CacheHits registers (or finds) the solve-cache hit counter in r
// (obs.Default when nil).
func CacheHits(r *Registry) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter(cacheHitsName, "Job-level solve-cache lookups answered entirely from cache.", nil)
}

// CacheMisses registers (or finds) the solve-cache miss counter in r
// (obs.Default when nil).
func CacheMisses(r *Registry) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter(cacheMissesName, "Job-level solve-cache lookups that required a cold solve.", nil)
}

// WriteProm renders every family in Prometheus text exposition format,
// families sorted by name and series in registration order.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, helpEscaper.Replace(f.help), f.name, f.typ)
		f.mu.Lock()
		for _, key := range f.order {
			switch s := f.series[key].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, key, s.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %v\n", f.name, key, s.Value())
			case *Histogram:
				writeHistogram(&b, f.name, key, s)
			}
		}
		f.mu.Unlock()
	}
	_, err := w.Write([]byte(b.String()))
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket lines, a
// _sum and a _count, with the extra le label spliced into the series labels.
func writeHistogram(b *strings.Builder, name, key string, h *Histogram) {
	var cum int64
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, spliceLabel(key, "le", formatBound(ub)), cum)
	}
	cum += h.counts[len(h.buckets)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, spliceLabel(key, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %v\n", name, key, h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", name, key, h.Count())
}

// spliceLabel adds one k="v" pair to a rendered label set.
func spliceLabel(key, k, v string) string {
	v = labelEscaper.Replace(v)
	if key == "" {
		return fmt.Sprintf("{%s=\"%s\"}", k, v)
	}
	return fmt.Sprintf("%s,%s=\"%s\"}", key[:len(key)-1], k, v)
}

// formatBound renders a bucket upper bound the way Prometheus does
// (shortest float form; %g already drops trailing zeros).
func formatBound(v float64) string {
	return fmt.Sprintf("%g", v)
}

// Handler serves the registry at GET in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

// SolveTotal is the canonical RAP solve counter, labelled by
// degradation-ladder rung and solver backend
// (mth_solve_total{rung="ilp|anytime|greedy|baseline",solver="milp|rap|greedy|baseline"}).
func SolveTotal(rung, solver string) *Counter {
	return Default.Counter("mth_solve_total",
		"RAP solves completed, by degradation-ladder rung and solver backend.",
		Labels{"rung": rung, "solver": solver})
}

// StageSeconds is the canonical flow stage-duration histogram
// (mth_stage_seconds{stage="parse|cluster|solve|legalize|route"}).
func StageSeconds(stage string) *Histogram {
	return Default.Histogram("mth_stage_seconds",
		"Wall-clock seconds spent per flow stage.", StageBuckets, Labels{"stage": stage})
}
