package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", nil)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("depth", "queue depth", nil)
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", Labels{"k": "v"})
	b := r.Counter("x_total", "x", Labels{"k": "v"})
	if a != b {
		t.Error("same (name, labels) must return the same series")
	}
	other := r.Counter("x_total", "x", Labels{"k": "w"})
	if other == a {
		t.Error("different labels must return a different series")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "first", nil)
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("dual", "second", nil)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.1, 1, 10}, nil)
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-55.65) > 1e-9 {
		t.Errorf("sum = %v, want 55.65", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Cumulative counts: ≤0.1 holds 0.05 and 0.1 (SearchFloat64s puts an
	// exactly-equal sample in its bound's bucket), ≤1 adds 0.5, ≤10 adds 5,
	// +Inf adds 50.
	for _, line := range []string{
		`lat_bucket{le="0.1"} 2`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("mth_solve_total", "solves", Labels{"rung": "ilp"}).Add(7)
	r.Gauge("jobs_inflight", "inflight", nil).Set(2)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		"# HELP mth_solve_total solves",
		"# TYPE mth_solve_total counter",
		`mth_solve_total{rung="ilp"} 7`,
		"# TYPE jobs_inflight gauge",
		"jobs_inflight 2",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	// Families must be sorted by name: jobs_inflight before mth_solve_total.
	if strings.Index(out, "jobs_inflight") > strings.Index(out, "mth_solve_total") {
		t.Error("families not sorted by name")
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a", nil).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "a_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n", nil)
	g := r.Gauge("v", "v", nil)
	h := r.Histogram("d", "d", []float64{1}, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
				// Concurrent re-registration must return the same series.
				r.Counter("n_total", "n", nil)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000 (lost updates)", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000 (lost CAS updates)", g.Value())
	}
	if h.Count() != 8000 || h.Sum() != 4000 {
		t.Errorf("histogram count=%d sum=%v, want 8000/4000", h.Count(), h.Sum())
	}
}

func TestCanonicalHelpers(t *testing.T) {
	// The canonical series live in Default; helpers must be idempotent.
	if SolveTotal("test-rung", "test-solver") != SolveTotal("test-rung", "test-solver") {
		t.Error("SolveTotal not idempotent")
	}
	if StageSeconds("test-stage") != StageSeconds("test-stage") {
		t.Error("StageSeconds not idempotent")
	}
	SolveTotal("test-rung", "test-solver").Inc()
	StageSeconds("test-stage").Observe(0.01)
	var buf bytes.Buffer
	if err := Default.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `mth_solve_total{rung="test-rung",solver="test-solver"}`) {
		t.Error("mth_solve_total series missing from Default")
	}
	if !strings.Contains(out, `mth_stage_seconds_bucket{stage="test-stage",le="0.025"}`) {
		t.Errorf("mth_stage_seconds histogram missing from Default:\n%s", out)
	}
}

// TestLabelEscaping pins the exposition-format escaping contract for label
// values: exactly backslash, double quote, and newline are escaped; every
// other byte (tabs, unicode, control-adjacent printables) passes through
// raw. Go's %q — the previous implementation — fails all four hostile rows.
func TestLabelEscaping(t *testing.T) {
	cases := []struct {
		name string
		val  string
		want string // rendered label value between the quotes
	}{
		{"plain", "remote-0", `remote-0`},
		{"backslash", `C:\lanes\0`, `C:\\lanes\\0`},
		{"quote", `say "hi"`, `say \"hi\"`},
		{"newline", "line1\nline2", `line1\nline2`},
		{"tab stays raw", "a\tb", "a\tb"},
		{"unicode stays raw", "héllo→", "héllo→"},
		{"mixed", "\\\"\n", `\\\"\n`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			r.Counter("m_total", "m", Labels{"backend": tc.val}).Inc()
			var buf bytes.Buffer
			if err := r.WriteProm(&buf); err != nil {
				t.Fatal(err)
			}
			want := `m_total{backend="` + tc.want + `"} 1`
			if !strings.Contains(buf.String(), want) {
				t.Errorf("exposition missing %q:\n%s", want, buf.String())
			}
		})
	}
}

// TestHelpAndHistogramLabelEscaping covers the other two rendering paths:
// HELP text (backslash+newline escapes) and the le-label splice used by
// histogram series.
func TestHelpAndHistogramLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "first\nsecond \\ third", nil).Inc()
	r.Histogram("lat_seconds", "lat", []float64{1}, Labels{"lane": "a\"b"}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP h_total first\nsecond \\ third`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{lane="a\"b",le="1"} 1`) {
		t.Errorf("spliced le label lost series escaping:\n%s", out)
	}
	if strings.Contains(out, "\\t") {
		t.Errorf("over-escaping detected (Go %%q artifacts):\n%s", out)
	}
}
