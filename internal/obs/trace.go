package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer collects spans and instant events for one run and exports them in
// Chrome trace_event JSON (the format chrome://tracing and Perfetto read).
// All methods are safe for concurrent use; span timestamps come from the
// tracer's monotonic start, so traces from one tracer share a timeline.
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	events []traceEvent
}

// traceEvent is one Chrome trace_event record. Complete spans use ph "X"
// (ts + dur); instant events use ph "i" with thread scope.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TsUS  int64          `json:"ts"`
	DurUS int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewTracer starts an empty trace whose timeline begins now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// WithTracer installs tr as the context's tracer.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, tr)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey).(*Tracer)
	return tr
}

// Span is one timed region of a trace. The zero of a disabled trace is a
// nil *Span: every method is nil-safe, so instrumented code never checks
// whether tracing is on.
type Span struct {
	tr    *Tracer
	name  string
	start time.Time
	args  map[string]any
}

// StartSpan opens a span on the context's tracer; with no tracer installed
// it returns nil (all Span methods are nil-safe no-ops).
func StartSpan(ctx context.Context, name string) *Span {
	tr := TracerFrom(ctx)
	if tr == nil {
		return nil
	}
	return &Span{tr: tr, name: name, start: time.Now()}
}

// SetArg attaches one key/value to the span (rendered in the trace viewer's
// args pane).
func (s *Span) SetArg(key string, value any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = value
}

// End closes the span and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.tr.mu.Lock()
	s.tr.events = append(s.tr.events, traceEvent{
		Name:  s.name,
		Phase: "X",
		TsUS:  s.start.Sub(s.tr.start).Microseconds(),
		DurUS: now.Sub(s.start).Microseconds(),
		PID:   1,
		TID:   1,
		Args:  s.args,
	})
	s.tr.mu.Unlock()
}

// Instant records a zero-duration event ("thought bubble" in the viewer) —
// used for MILP incumbents and other point-in-time markers.
func (t *Tracer) Instant(name string, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name:  name,
		Phase: "i",
		TsUS:  time.Since(t.start).Microseconds(),
		PID:   1,
		TID:   1,
		Scope: "t",
		Args:  args,
	})
	t.mu.Unlock()
}

// Instant records an instant event on the context's tracer, if any.
func Instant(ctx context.Context, name string, args map[string]any) {
	TracerFrom(ctx).Instant(name, args)
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Spans returns the names of all recorded events, in record order (tests and
// progress summaries; the authoritative export is WriteJSON).
func (t *Tracer) Spans() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.events))
	for i, e := range t.events {
		out[i] = e.Name
	}
	return out
}

// WriteJSON exports the trace as a Chrome trace_event JSON object
// ({"traceEvents": [...]}) — load it in chrome://tracing or
// https://ui.perfetto.dev.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
