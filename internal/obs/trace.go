package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer collects spans and instant events for one process's share of a
// trace. Records are wall-clock anchored (unix microseconds) so traces
// gathered on different machines can be merged onto one timeline after
// clock-skew correction; the Chrome trace_event export (WriteJSON,
// WriteChromeTrace) rebases onto the earliest record, so single-process
// output still starts at ts 0. All methods are safe for concurrent use.
type Tracer struct {
	proc string

	mu   sync.Mutex
	recs []SpanRecord
}

// SpanRecord is one trace record in the distributed schema shared by
// rcplace -trace files, WireResult span piggybacks, and the coordinator's
// per-job span store. Kind "span" records carry a duration; Kind "instant"
// records are point-in-time markers (reroutes, retries, incumbents).
type SpanRecord struct {
	// TraceID groups every record of one job across processes.
	TraceID string `json:"trace_id,omitempty"`
	// SpanID names this span; instants have none.
	SpanID string `json:"span_id,omitempty"`
	// Parent is the SpanID this record nests under ("" for a root).
	Parent string `json:"parent_id,omitempty"`
	Name   string `json:"name"`
	// Proc is the producing process/lane ("coordinator", "worker",
	// "remote-0", "rcplace") — the Chrome export maps it to a pid row.
	Proc string `json:"proc,omitempty"`
	// Kind is "span" (timed region) or "instant".
	Kind string `json:"kind"`
	// StartUS is the record's wall-clock start, unix microseconds.
	StartUS int64 `json:"start_us"`
	// DurUS is the span duration in microseconds (0 for instants).
	DurUS int64          `json:"dur_us,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewTracer starts an empty trace for an unnamed process.
func NewTracer() *Tracer { return NewTracerFor("") }

// NewTracerFor starts an empty trace whose records are attributed to the
// named process ("coordinator", "worker", "rcplace").
func NewTracerFor(proc string) *Tracer { return &Tracer{proc: proc} }

// WithTracer installs tr as the context's tracer.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, tr)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey).(*Tracer)
	return tr
}

// Span is one timed region of a trace. The zero of a disabled trace is a
// nil *Span: every method is nil-safe, so instrumented code never checks
// whether tracing is on.
type Span struct {
	tr     *Tracer
	name   string
	start  time.Time
	sc     SpanContext
	parent string
	args   map[string]any
}

// StartSpan opens a span on the context's tracer; with no tracer installed
// it returns nil (all Span methods are nil-safe no-ops). The span adopts
// the context's trace position: same TraceID, parented under the current
// SpanID. Child spans that should nest under this one must be started via
// StartSpanCtx instead.
func StartSpan(ctx context.Context, name string) *Span {
	tr := TracerFrom(ctx)
	if tr == nil {
		return nil
	}
	return tr.newSpan(name, SpanContextFrom(ctx))
}

// StartSpanCtx opens a span like StartSpan and additionally returns a
// context positioned inside it, so spans (and instants) started under the
// returned context become its children — the hook that makes a worker's
// solver stages nest under the coordinator's dispatch span.
func StartSpanCtx(ctx context.Context, name string) (context.Context, *Span) {
	tr := TracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	sp := tr.newSpan(name, SpanContextFrom(ctx))
	return WithSpanContext(ctx, sp.sc), sp
}

func (t *Tracer) newSpan(name string, parent SpanContext) *Span {
	sc := SpanContext{TraceID: parent.TraceID, SpanID: NewSpanID()}
	if sc.TraceID == "" {
		sc.TraceID = NewTraceID()
	}
	return &Span{tr: t, name: name, start: time.Now(), sc: sc, parent: parent.SpanID}
}

// Context returns the span's own trace position (its SpanID is the parent
// for anything started under it). Zero for a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetArg attaches one key/value to the span (rendered in the trace viewer's
// args pane).
func (s *Span) SetArg(key string, value any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = value
}

// End closes the span and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.tr.add(SpanRecord{
		TraceID: s.sc.TraceID,
		SpanID:  s.sc.SpanID,
		Parent:  s.parent,
		Name:    s.name,
		Proc:    s.tr.proc,
		Kind:    "span",
		StartUS: s.start.UnixMicro(),
		DurUS:   now.Sub(s.start).Microseconds(),
		Args:    s.args,
	})
}

func (t *Tracer) add(rec SpanRecord) {
	t.mu.Lock()
	t.recs = append(t.recs, rec)
	t.mu.Unlock()
}

// Instant records a zero-duration event ("thought bubble" in the viewer) —
// used for MILP incumbents and other point-in-time markers. Records made
// directly on the tracer carry no trace position; prefer the package-level
// Instant, which parents under the context's current span.
func (t *Tracer) Instant(name string, args map[string]any) {
	if t == nil {
		return
	}
	t.instant(name, args, SpanContext{})
}

// Instant records an instant event parented under this span and tagged with
// its trace position — how solver incumbents attach to their search span.
// No-op on a nil span.
func (s *Span) Instant(name string, args map[string]any) {
	if s == nil {
		return
	}
	s.tr.instant(name, args, s.sc)
}

func (t *Tracer) instant(name string, args map[string]any, sc SpanContext) {
	t.add(SpanRecord{
		TraceID: sc.TraceID,
		Parent:  sc.SpanID,
		Name:    name,
		Proc:    t.proc,
		Kind:    "instant",
		StartUS: time.Now().UnixMicro(),
		Args:    args,
	})
}

// Instant records an instant event on the context's tracer, if any,
// parented under the context's current span.
func Instant(ctx context.Context, name string, args map[string]any) {
	tr := TracerFrom(ctx)
	if tr == nil {
		return
	}
	tr.instant(name, args, SpanContextFrom(ctx))
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// Spans returns the names of all recorded events, in record order (tests and
// progress summaries; the authoritative export is WriteJSON).
func (t *Tracer) Spans() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.recs))
	for i, e := range t.recs {
		out[i] = e.Name
	}
	return out
}

// Records returns a snapshot of the recorded spans and instants in record
// order — the payload piggybacked on WireResult and drained from
// /worker/v1/spans.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.recs...)
}

// WriteJSON exports the trace as a Chrome trace_event JSON object
// ({"traceEvents": [...]}) — load it in chrome://tracing or
// https://ui.perfetto.dev.
func (t *Tracer) WriteJSON(w io.Writer) error {
	return WriteChromeTrace(w, t.Records())
}

// traceEvent is one Chrome trace_event record. Complete spans use ph "X"
// (ts + dur); instant events use ph "i" with thread scope; process-name
// metadata uses ph "M".
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TsUS  int64          `json:"ts"`
	DurUS int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace merges span records — possibly from several processes —
// into one Chrome trace_event timeline. Each distinct Proc gets its own pid
// row (named by a process_name metadata event); timestamps are rebased on
// the earliest record so the timeline starts at zero. This is the single
// exporter behind rcplace -trace and GET /v1/jobs/{id}/trace.
func WriteChromeTrace(w io.Writer, recs []SpanRecord) error {
	// Stable pid assignment: procs in first-appearance order, "" first
	// (mapped to pid 1 with no metadata, preserving single-process output).
	pids := make(map[string]int)
	var procs []string
	for _, r := range recs {
		if _, ok := pids[r.Proc]; !ok {
			pids[r.Proc] = 1 + len(pids)
			procs = append(procs, r.Proc)
		}
	}
	var epoch int64
	for i, r := range recs {
		if i == 0 || r.StartUS < epoch {
			epoch = r.StartUS
		}
	}
	events := make([]traceEvent, 0, len(recs)+len(pids))
	for _, p := range procs {
		if p == "" {
			continue
		}
		events = append(events, traceEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   pids[p],
			TID:   1,
			Args:  map[string]any{"name": p},
		})
	}
	for _, r := range recs {
		ev := traceEvent{
			Name:  r.Name,
			Phase: "X",
			TsUS:  r.StartUS - epoch,
			DurUS: r.DurUS,
			PID:   pids[r.Proc],
			TID:   1,
			Args:  r.Args,
		}
		if r.Kind == "instant" {
			ev.Phase, ev.Scope, ev.DurUS = "i", "t", 0
		}
		if r.TraceID != "" || r.SpanID != "" || r.Parent != "" {
			args := make(map[string]any, len(r.Args)+3)
			for k, v := range r.Args {
				args[k] = v
			}
			if r.TraceID != "" {
				args["trace_id"] = r.TraceID
			}
			if r.SpanID != "" {
				args["span_id"] = r.SpanID
			}
			if r.Parent != "" {
				args["parent_id"] = r.Parent
			}
			ev.Args = args
		}
		events = append(events, ev)
	}
	// Chrome's importer tolerates any order, but a time-sorted file diffs
	// cleanly and makes golden tests deterministic.
	sort.SliceStable(events, func(i, j int) bool {
		if (events[i].Phase == "M") != (events[j].Phase == "M") {
			return events[i].Phase == "M"
		}
		return events[i].TsUS < events[j].TsUS
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
