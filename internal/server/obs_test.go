package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mthplace/internal/journal"
	"mthplace/internal/obs"
)

// scrape fetches /metrics and returns the exposition body.
func (h *testHarness) scrape() string {
	h.t.Helper()
	resp, err := http.Get(h.web.URL + "/metrics")
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		h.t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndpoint checks the Prometheus exposition carries the job
// lifecycle series before any job, and the canonical flow series after a
// real placement ran.
func TestMetricsEndpoint(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, QueueDepth: 4})

	out := h.scrape()
	for _, series := range []string{
		"jobs_degraded 0", "job_retries 0", "job_panics 0",
		"jobs_inflight 0", "jobs_started_total 0", "jobs_finished_total 0",
		"# TYPE jobs_degraded counter", "# TYPE jobs_inflight gauge",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("pre-job exposition missing %q:\n%s", series, out)
		}
	}

	id := h.submit(JobRequest{Testcase: "aes_300", Scale: 0.02, Flows: []int{5}})
	h.waitState(id, StateDone)

	out = h.scrape()
	if !strings.Contains(out, "jobs_started_total 1") || !strings.Contains(out, "jobs_finished_total 1") {
		t.Errorf("job lifecycle counters not advanced:\n%s", out)
	}
	// The canonical process-wide series from the flow instrumentation must
	// be appended to the same scrape.
	for _, series := range []string{"mth_solve_total{", "mth_stage_seconds_bucket{"} {
		if !strings.Contains(out, series) {
			t.Errorf("post-job exposition missing %q", series)
		}
	}
}

// TestMetricsPerServerIsolation: two servers in one process must not share
// job-lifecycle counters.
func TestMetricsPerServerIsolation(t *testing.T) {
	a := newHarness(t, Options{Workers: 1, QueueDepth: 4})
	b := newHarness(t, Options{Workers: 1, QueueDepth: 4})

	id := a.submit(JobRequest{Testcase: "aes_300", Scale: 0.02})
	a.waitState(id, StateDone)

	if out := a.scrape(); !strings.Contains(out, "jobs_finished_total 1") {
		t.Errorf("server A finished counter:\n%s", out)
	}
	if out := b.scrape(); !strings.Contains(out, "jobs_finished_total 0") {
		t.Errorf("server B absorbed server A's jobs:\n%s", out)
	}
}

// TestStatsUptimeAndInflight covers the /stats additions: uptime_seconds
// grows, and jobs_inflight is the started-minus-finished difference.
func TestStatsUptimeAndInflight(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	h.srv.setExec(blockingExec(release))

	id := h.submit(JobRequest{Testcase: "aes_300"})
	h.waitState(id, StateRunning)

	_, body := h.do("GET", "/stats", nil)
	var uptime float64
	if err := json.Unmarshal(body["uptime_seconds"], &uptime); err != nil {
		t.Fatal(err)
	}
	if uptime <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", uptime)
	}
	var started, finished, inflight int64
	for key, dst := range map[string]*int64{
		"jobs_started": &started, "jobs_finished": &finished, "jobs_inflight": &inflight,
	} {
		if err := json.Unmarshal(body[key], dst); err != nil {
			t.Fatalf("%s: %v", key, err)
		}
	}
	if started != 1 || finished != 0 || inflight != 1 {
		t.Errorf("started/finished/inflight = %d/%d/%d, want 1/0/1", started, finished, inflight)
	}

	close(release)
	h.waitState(id, StateDone)
	_, body = h.do("GET", "/stats", nil)
	if err := json.Unmarshal(body["jobs_inflight"], &inflight); err != nil {
		t.Fatal(err)
	}
	if inflight != 0 {
		t.Errorf("jobs_inflight after completion = %d, want 0", inflight)
	}
}

// TestJobViewProgress: a completed ILP job's view must expose the solver
// progress snapshot fed by the observability event stream.
func TestJobViewProgress(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, QueueDepth: 4})
	id := h.submit(JobRequest{Testcase: "aes_300", Scale: 0.02, Flows: []int{5}})
	h.waitState(id, StateDone)

	_, body := h.do("GET", "/jobs/"+id, nil)
	if body["progress"] == nil {
		t.Fatalf("job view has no progress field: %v", body)
	}
	var p JobProgress
	if err := json.Unmarshal(body["progress"], &p); err != nil {
		t.Fatal(err)
	}
	if p.Events == 0 {
		t.Error("progress recorded no events")
	}
	if p.Stage == "" {
		t.Error("progress has no last stage")
	}
	if p.KMeansIterations == 0 {
		t.Error("progress recorded no k-means iterations")
	}
	if p.Incumbents == 0 {
		t.Error("progress recorded no MILP incumbents")
	}
}

// TestReplayLogging: journal replay must be narrated through the
// configured logger — re-queued jobs, corrupt-line warnings, and
// validation failures of replayed requests.
func TestReplayLogging(t *testing.T) {
	// Forge a crash artifact: one replayable job, one job whose recorded
	// request no longer validates, and one corrupt line.
	dir := t.TempDir()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good, _ := json.Marshal(JobRequest{Testcase: "aes_300", Flows: []int{4}, Scale: 0.02})
	bad, _ := json.Marshal(JobRequest{Testcase: "no_such_testcase"})
	if err := j.Append(journal.Entry{Seq: 1, Job: "job-1", Event: journal.EventSubmitted, Request: good}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journal.Entry{Seq: 2, Job: "job-2", Event: journal.EventSubmitted, Request: bad}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(filepath.Join(dir, journal.FileName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{not json\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	var mu sync.Mutex
	lw := &lockedWriter{w: &buf, mu: &mu}
	s, err := New(Options{Workers: 1, QueueDepth: 4, JournalDir: dir,
		Logger: obs.NewCLILogger(lw, false, false)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		jb := s.job("job-1")
		if jb == nil {
			t.Fatal("job-1 not replayed")
		}
		st, _ := jb.Snapshot()
		if st.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job stuck in %q", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jb := s.job("job-2"); jb == nil {
		t.Error("invalid replayed job not registered")
	} else if st, _ := jb.Snapshot(); st != StateFailed {
		t.Errorf("invalid replayed job state %q, want failed", st)
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{
		"skipped unparseable lines",
		"replaying unfinished jobs",
		"re-queued job", "job-1",
		"failed validation", "job-2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("replay log missing %q:\n%s", want, out)
		}
	}
}

// lockedWriter serialises concurrent log writes into one buffer.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
