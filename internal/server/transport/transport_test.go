package transport_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mthplace/internal/server/scheduler"
	"mthplace/internal/server/transport"
)

// newBackpressuredAPI builds a transport over a scheduler whose single
// worker is wedged on a blocking exec, so the queue fills deterministically.
// Returns the test server and a release function.
func newBackpressuredAPI(t *testing.T, opt scheduler.Options) (*httptest.Server, func()) {
	t.Helper()
	s, err := scheduler.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	s.SetExec(func(ctx context.Context, _ *scheduler.Job) (*scheduler.ExecResult, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &scheduler.ExecResult{}, nil
	})
	srv := httptest.NewServer(transport.New(s).Handler())
	var once bool
	release := func() {
		if !once {
			once = true
			close(block)
		}
	}
	t.Cleanup(func() {
		release()
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return srv, release
}

func submitJob(t *testing.T, srv *httptest.Server) *http.Response {
	t.Helper()
	body := `{"testcase":"aes_300","scale":0.02,"solver":"greedy"}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestQueueFullCarriesRetryAfter fills a one-worker, one-slot queue and
// verifies the 429 rejection carries the Retry-After pacing hint clients
// key off.
func TestQueueFullCarriesRetryAfter(t *testing.T) {
	srv, _ := newBackpressuredAPI(t, scheduler.Options{Workers: 1, QueueDepth: 1})

	// One job wedges the worker, one fills the queue slot; the rest must
	// bounce. Allow a couple of accepts for the handoff race between the
	// queue and the worker claiming its first job.
	var rejected *http.Response
	for i := 0; i < 6; i++ {
		resp := submitJob(t, srv)
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, want 202 or 429", i, resp.StatusCode)
		}
	}
	if rejected == nil {
		t.Fatal("queue never filled: no 429 seen in 6 submissions")
	}
	if got := rejected.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(rejected.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("429 body should carry an error message (err=%v, body=%+v)", err, e)
	}
}

// TestResultBeforeTerminalCarriesRetryAfter verifies polling a running
// job's result answers 409 with the same pacing hint.
func TestResultBeforeTerminalCarriesRetryAfter(t *testing.T) {
	srv, release := newBackpressuredAPI(t, scheduler.Options{Workers: 1, QueueDepth: 4})

	resp := submitJob(t, srv)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	var v scheduler.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}

	rr, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("result while running: status %d, want 409", rr.StatusCode)
	}
	if got := rr.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	release()
}

// TestShutdownRejectsWith503RetryAfter verifies submissions during
// shutdown get 503 plus the hint, so clients re-aim rather than abort.
func TestShutdownRejectsWith503RetryAfter(t *testing.T) {
	s, err := scheduler.New(scheduler.Options{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(transport.New(s).Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"testcase":"aes_300","scale":0.02,"solver":"greedy"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during shutdown: status %d, want 503 (%s)", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
}
