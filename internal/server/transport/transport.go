// Package transport is the HTTP/JSON edge of the placement service. It
// owns routing, status-code mapping, header conventions and wire shapes —
// and nothing else: every decision about running jobs lives behind the
// scheduler's exported API, so this package can be replaced (gRPC, CLI)
// without touching execution semantics.
//
// Endpoints are versioned under /v1/; the original unversioned paths are
// registered as exact aliases so pre-versioning clients keep working:
//
//	POST   /v1/jobs              submit (202 + id; 429 queue full; 400 bad request)
//	POST   /v1/jobs:batch        submit N instances, get N job handles
//	GET    /v1/jobs              list all jobs
//	GET    /v1/jobs/{id}         job status
//	GET    /v1/jobs/{id}/result  metrics (409 until terminal; 422/504/499 on failure)
//	POST   /v1/jobs/{id}/cancel  cancel queued or running job (also DELETE /v1/jobs/{id})
//	GET    /healthz              liveness + intake state
//	GET    /stats                queues, cache, per-flow latency percentiles
//	GET    /metrics              Prometheus text exposition
//
// Cache control: a submit may carry the standard Cache-Control request
// header — "no-cache" always solves fresh (but stores the result),
// "no-store" may be served from cache but leaves none behind, and both
// together disable the cache for the job. The body's "cache" field, when
// set, wins over the header. Submit responses carry X-Cache: HIT or MISS.
package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"mthplace/internal/errs"
	"mthplace/internal/flow"
	"mthplace/internal/obs"
	"mthplace/internal/server/scheduler"
)

// StatusClientClosedRequest is the nginx-convention status for a request
// whose work was canceled by the client; net/http has no constant for it.
const StatusClientClosedRequest = 499

// maxBatch bounds one batch submission; a bigger fleet should be split so
// no single request can occupy the whole intake queue.
const maxBatch = 256

// API serves the scheduler over HTTP.
type API struct {
	sched *scheduler.Scheduler
}

// New wraps a scheduler with the HTTP edge.
func New(s *scheduler.Scheduler) *API {
	return &API{sched: s}
}

// Handler returns the full route table: /v1/ plus the unversioned aliases.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, prefix := range []string{"/v1", ""} {
		mux.HandleFunc("POST "+prefix+"/jobs", a.handleSubmit)
		mux.HandleFunc("GET "+prefix+"/jobs", a.handleList)
		mux.HandleFunc("GET "+prefix+"/jobs/{id}", a.handleStatus)
		mux.HandleFunc("GET "+prefix+"/jobs/{id}/result", a.handleResult)
		mux.HandleFunc("GET "+prefix+"/jobs/{id}/trace", a.handleTrace)
		mux.HandleFunc("POST "+prefix+"/jobs/{id}/cancel", a.handleCancel)
		mux.HandleFunc("DELETE "+prefix+"/jobs/{id}", a.handleCancel)
	}
	// The batch verb exists only under /v1/ — it postdates versioning.
	mux.HandleFunc("POST /v1/jobs:batch", a.handleBatch)
	mux.HandleFunc("GET /healthz", a.handleHealth)
	mux.HandleFunc("GET /stats", a.handleStats)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// submitStatus maps a scheduler submission error to its HTTP status.
func submitStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusAccepted
	case errors.Is(err, scheduler.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, scheduler.ErrNotAccepting):
		return http.StatusServiceUnavailable
	case errors.Is(err, scheduler.ErrJournal):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// RetryAfterSeconds is the hint sent with backpressure rejections (429
// queue-full, 503 shutting-down): the smallest interval the header's
// whole-seconds granularity can express. Clients with finer clocks may
// treat it as an upper bound.
const RetryAfterSeconds = 1

// retryable reports whether a submit rejection is worth retrying as-is —
// backpressure, not a request defect.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// applyRetryAfter stamps the Retry-After header on backpressure statuses,
// so clients (pkg/mth among them) can pace resubmission instead of
// hammering a full queue.
func applyRetryAfter(w http.ResponseWriter, status int) {
	if retryable(status) {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", RetryAfterSeconds))
	}
}

// applyCacheHeader folds the request's Cache-Control header into the job's
// cache directive. The body field wins when both are present: it is the
// more deliberate signal, and replays of journaled bodies must not depend
// on headers that were never journaled.
func applyCacheHeader(req *scheduler.JobRequest, header string) {
	if req.Cache != scheduler.CacheDefault || header == "" {
		return
	}
	h := strings.ToLower(header)
	noCache := strings.Contains(h, "no-cache")
	noStore := strings.Contains(h, "no-store")
	switch {
	case noCache && noStore:
		req.Cache = scheduler.CacheOff
	case noCache:
		req.Cache = scheduler.CacheBypass
	case noStore:
		req.Cache = scheduler.CacheNoStore
	}
}

func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// applyTraceparent folds the W3C traceparent header into the job request,
// so the job's distributed trace continues the client's. The body field
// wins when both are present, for the same journaling reason as the cache
// directive; a malformed header is ignored (tracing must never reject a
// job).
func applyTraceparent(req *scheduler.JobRequest, header string) {
	if req.Traceparent != "" || header == "" {
		return
	}
	if _, ok := obs.ParseTraceparent(header); ok {
		req.Traceparent = header
	}
}

func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req scheduler.JobRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	applyCacheHeader(&req, r.Header.Get("Cache-Control"))
	applyTraceparent(&req, r.Header.Get("traceparent"))
	jb, err := a.sched.Submit(req)
	if err != nil {
		status := submitStatus(err)
		applyRetryAfter(w, status)
		writeError(w, status, err.Error())
		return
	}
	view := jb.View()
	if view.CacheHit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	writeJSON(w, http.StatusAccepted, view)
}

// batchRequest is the POST /v1/jobs:batch body.
type batchRequest struct {
	Jobs []scheduler.JobRequest `json:"jobs"`
}

// batchSlot is one element of the batch response, paired 1:1 with the
// submitted jobs: an accepted slot carries the job view, a rejected one
// carries the error and the status the same request would have gotten from
// the single-submit endpoint.
type batchSlot struct {
	Job    *scheduler.JobView `json:"job,omitempty"`
	Error  string             `json:"error,omitempty"`
	Status int                `json:"status,omitempty"`
}

func (a *API) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "batch needs at least one job")
		return
	}
	if len(req.Jobs) > maxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Jobs), maxBatch))
		return
	}
	header := r.Header.Get("Cache-Control")
	tp := r.Header.Get("traceparent")
	for i := range req.Jobs {
		applyCacheHeader(&req.Jobs[i], header)
		applyTraceparent(&req.Jobs[i], tp)
	}
	items := a.sched.SubmitBatch(req.Jobs)
	slots := make([]batchSlot, len(items))
	accepted := 0
	for i, it := range items {
		if it.Err != nil {
			slots[i] = batchSlot{Error: it.Err.Error(), Status: submitStatus(it.Err)}
			continue
		}
		v := it.Job.View()
		slots[i] = batchSlot{Job: &v}
		accepted++
	}
	status := http.StatusAccepted
	switch accepted {
	case len(items): // all in
	case 0:
		status = slots[0].Status // uniform rejection: surface the first cause
	default:
		status = http.StatusMultiStatus
	}
	applyRetryAfter(w, status)
	writeJSON(w, status, map[string]any{
		"jobs":     slots,
		"accepted": accepted,
		"rejected": len(items) - accepted,
	})
}

func (a *API) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": a.sched.Views()})
}

func (a *API) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb := a.sched.Job(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, jb.View())
}

// handleTrace serves the job's merged multi-process timeline as Chrome
// trace_event JSON (load it in chrome://tracing or Perfetto). 404 covers
// both unknown jobs and evicted traces; an in-flight job serves whatever
// records have landed so far.
func (a *API) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if a.sched.Job(id) == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	recs := a.sched.TraceRecords(id)
	if len(recs) == 0 {
		writeError(w, http.StatusNotFound, "no trace recorded for job (evicted or not yet started)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeTrace(w, recs)
}

// errStatus maps a flow failure to its HTTP status: infeasible instances
// are a client problem (422), deadline expiry is 504, client-requested
// cancellation is 499, a job no live backend would take is 503, anything
// else is a 500.
func errStatus(err error) int {
	switch {
	case errors.Is(err, errs.ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, errs.ErrTimeout):
		return http.StatusGatewayTimeout
	case errors.Is(err, errs.ErrCanceled):
		return StatusClientClosedRequest
	case errors.Is(err, errs.ErrUnavailable):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (a *API) handleResult(w http.ResponseWriter, r *http.Request) {
	jb := a.sched.Job(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	state, err := jb.Snapshot()
	if !state.Terminal() {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", RetryAfterSeconds))
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; poll again later", state))
		return
	}
	if err != nil {
		writeError(w, errStatus(err), err.Error())
		return
	}
	out, ok := a.sched.Outcome(jb.ID)
	if !ok {
		writeError(w, http.StatusGone, "result evicted from the store; resubmit the job")
		return
	}
	keyed := make(map[string]flow.Metrics, len(out.Metrics))
	for id, m := range out.Metrics {
		keyed[fmt.Sprintf("%d", int(id))] = m
	}
	placements := make(map[string]string, len(out.Placements))
	for id, d := range out.Placements {
		placements[fmt.Sprintf("%d", int(id))] = d
	}
	if out.CacheHit {
		w.Header().Set("X-Cache", "HIT")
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":         jb.ID,
		"metrics":    keyed,
		"placements": placements,
		"cache_hit":  out.CacheHit,
	})
}

func (a *API) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb, ok := a.sched.Cancel(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if !ok {
		writeError(w, http.StatusConflict, "job already finished")
		return
	}
	writeJSON(w, http.StatusOK, jb.View())
}

func (a *API) handleHealth(w http.ResponseWriter, r *http.Request) {
	accepting := a.sched.Accepting()
	status := http.StatusOK
	if !accepting {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ok": accepting, "accepting": accepting})
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := a.sched.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds":     snap.UptimeSeconds,
		"queue_depth":        snap.QueueDepth, // legacy: sum over backends
		"queue_capacity":     snap.QueueCapacity,
		"workers":            snap.Workers,
		"busy_workers":       snap.BusyWorkers,
		"worker_utilization": snap.Utilization,
		"pool_jobs":          snap.PoolJobs,
		"jobs":               snap.JobCounts,
		"jobs_started":       snap.Started,
		"jobs_finished":      snap.Finished,
		"jobs_inflight":      snap.Inflight,
		"jobs_degraded":      snap.Degraded,
		"job_retries":        snap.Retries,
		"job_panics":         snap.Panics,
		"job_reroutes":       snap.Reroutes,
		"lease_expirations":  snap.LeaseExpirations,
		"flow_latency":       snap.FlowLatency,
		"backends":           snap.Backends,
		"cache":              snap.Cache,
	})
}

// MetricsHandler returns the /metrics endpoint standalone, for mounting on
// a separate debug listener alongside pprof.
func (a *API) MetricsHandler() http.Handler {
	return http.HandlerFunc(a.handleMetrics)
}

// handleMetrics renders the scheduler's registry followed by the
// process-wide default registry (flow stage histograms, solve counters) in
// Prometheus text exposition format.
func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.sched.WriteProm(w)
	_ = obs.Default.WriteProm(w)
}
