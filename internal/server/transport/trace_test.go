package transport_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mthplace/internal/obs"
	"mthplace/internal/server/scheduler"
	"mthplace/internal/server/transport"
)

const clientTP = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

// newTracedAPI builds a transport over a one-worker scheduler whose exec
// records one solver span, the minimum a merged trace needs.
func newTracedAPI(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := scheduler.New(scheduler.Options{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.SetExec(func(ctx context.Context, _ *scheduler.Job) (*scheduler.ExecResult, error) {
		sp := obs.StartSpan(ctx, "flow.solve")
		sp.End()
		return &scheduler.ExecResult{}, nil
	})
	srv := httptest.NewServer(transport.New(s).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return srv
}

func submitTraced(t *testing.T, srv *httptest.Server, header string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs",
		strings.NewReader(`{"testcase":"aes_300","scale":0.02,"solver":"greedy"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if header != "" {
		req.Header.Set("traceparent", header)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	return acc.ID
}

func waitDone(t *testing.T, srv *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			State   string `json:"state"`
			TraceID string `json:"trace_id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State == "done" {
			return
		}
		if v.State == "failed" || v.State == "canceled" {
			t.Fatalf("job %s finished %q", id, v.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTraceparentHeaderAdopted: a standard W3C traceparent header on submit
// joins the job to the client's trace — visible in the job view's trace_id
// and in every span of the merged timeline.
func TestTraceparentHeaderAdopted(t *testing.T) {
	srv := newTracedAPI(t)
	id := submitTraced(t, srv, clientTP)
	waitDone(t, srv, id)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("job trace_id = %q, want the header's", v.TraceID)
	}
}

// TestMalformedTraceparentIgnored: per the W3C spec a bad header must not
// fail the request; the job just gets a fresh trace.
func TestMalformedTraceparentIgnored(t *testing.T) {
	srv := newTracedAPI(t)
	id := submitTraced(t, srv, "00-zzzz-nope-01")
	waitDone(t, srv, id)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(v.TraceID) != 32 || v.TraceID == "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("job trace_id = %q, want a fresh 32-hex ID", v.TraceID)
	}
}

// TestTraceEndpointServesChromeJSON: GET /v1/jobs/{id}/trace returns the
// merged timeline as valid Chrome trace_event JSON containing the root job
// span, the dispatch span, and the solver span under the client's trace.
func TestTraceEndpointServesChromeJSON(t *testing.T) {
	srv := newTracedAPI(t)
	id := submitTraced(t, srv, clientTP)
	waitDone(t, srv, id)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid Chrome JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
		if ev.Phase == "X" || ev.Phase == "i" {
			if tid, _ := ev.Args["trace_id"].(string); tid != "0af7651916cd43dd8448eb211c80319c" {
				t.Errorf("event %q trace_id = %v, want the client's", ev.Name, ev.Args["trace_id"])
			}
		}
	}
	for _, want := range []string{"job", "dispatch", "flow.solve"} {
		if !seen[want] {
			t.Errorf("merged trace missing %q span (have %v)", want, seen)
		}
	}
}

// TestTraceEndpointUnknownJob404s covers both never-submitted IDs and the
// unversioned alias route.
func TestTraceEndpointUnknownJob404s(t *testing.T) {
	srv := newTracedAPI(t)
	for _, path := range []string{"/v1/jobs/nope/trace", "/jobs/nope/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}
