package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mthplace/internal/errs"
	"mthplace/internal/flow"
	"mthplace/internal/journal"
)

// TestJobPanicBecomesFailed500: a panic anywhere under a job is converted
// to a typed error — the job fails with a 500, the daemon keeps serving,
// and no worker goroutine is lost.
func TestJobPanicBecomesFailed500(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})
	h.srv.setExec(func(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error) {
		panic("solver ate a null pointer")
	})

	id := h.submit(JobRequest{Testcase: "aes_300"})
	if st := h.waitState(id, ""); st != StateFailed {
		t.Fatalf("panicked job finished %q, want failed", st)
	}
	code, body := h.do("GET", "/jobs/"+id+"/result", nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("result status = %d, want 500 (body %v)", code, body)
	}
	var msg string
	_ = json.Unmarshal(body["error"], &msg)
	if !strings.Contains(msg, "internal panic") || !strings.Contains(msg, "null pointer") {
		t.Errorf("error %q does not name the panic", msg)
	}

	// Baseline after one complete panic cycle (the HTTP keep-alive
	// goroutines are warmed up), then five more: the count must not grow
	// per panicked job — that's the worker-goroutine leak check.
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		if st := h.waitState(h.submit(JobRequest{Testcase: "aes_300"}), ""); st != StateFailed {
			t.Fatalf("panicked job %d finished %q, want failed", i, st)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > baseline {
		t.Errorf("goroutines grew from %d to %d across 5 panicked jobs", baseline, after)
	}

	// The worker survived: a healthy job on the same (sole) worker runs.
	h.srv.setExec(func(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error) {
		return map[flow.ID]flow.Metrics{flow.Flow5: {}}, nil
	})
	if st := h.waitState(h.submit(JobRequest{Testcase: "aes_300"}), ""); st != StateDone {
		t.Fatalf("job after panic finished %q, want done", st)
	}

	_, _, panics := h.srv.resilience()
	if panics != 6 {
		t.Errorf("stats panics = %d, want 6", panics)
	}
}

// TestTransientFailureIsRetried: transient errors re-run up to MaxRetries,
// the attempt count and retry counter are visible, and success on a later
// attempt yields a normal done job.
func TestTransientFailureIsRetried(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, MaxRetries: 3, RetryBase: time.Millisecond})
	var calls atomic.Int64
	h.srv.setExec(func(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error) {
		if calls.Add(1) <= 2 {
			return nil, errs.Transient("flaky dependency")
		}
		return map[flow.ID]flow.Metrics{flow.Flow5: {}}, nil
	})

	id := h.submit(JobRequest{Testcase: "aes_300"})
	if st := h.waitState(id, ""); st != StateDone {
		t.Fatalf("job finished %q, want done after retries", st)
	}
	_, body := h.do("GET", "/jobs/"+id, nil)
	var attempts int
	_ = json.Unmarshal(body["attempts"], &attempts)
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (2 transient failures + success)", attempts)
	}
	if _, retries, _ := h.srv.resilience(); retries != 2 {
		t.Errorf("stats retries = %d, want 2", retries)
	}
}

// TestRetryBudgetExhausts: a persistently transient failure stops after
// MaxRetries and surfaces the final error.
func TestRetryBudgetExhausts(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, MaxRetries: 2, RetryBase: time.Millisecond})
	var calls atomic.Int64
	h.srv.setExec(func(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error) {
		calls.Add(1)
		return nil, errs.Transient("still down")
	})
	id := h.submit(JobRequest{Testcase: "aes_300"})
	if st := h.waitState(id, ""); st != StateFailed {
		t.Fatalf("job finished %q, want failed", st)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("executions = %d, want 3 (1 + 2 retries)", got)
	}
}

// TestNonTransientNotRetried: ordinary failures and panics run exactly
// once, even when the panic value wrapped a transient error.
func TestNonTransientNotRetried(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func() error
	}{
		{"plain error", func() error { return errors.New("disk on fire") }},
		{"infeasible", func() error { return errs.Infeasible("no row fits") }},
		{"panicked transient", func() error { panic(errs.Transient("wrapped in a panic")) }},
	} {
		h := newHarness(t, Options{Workers: 1, MaxRetries: 3, RetryBase: time.Millisecond})
		var calls atomic.Int64
		h.srv.setExec(func(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error) {
			calls.Add(1)
			return nil, tc.fn()
		})
		id := h.submit(JobRequest{Testcase: "aes_300"})
		if st := h.waitState(id, ""); st != StateFailed {
			t.Fatalf("%s: job finished %q, want failed", tc.name, st)
		}
		if got := calls.Load(); got != 1 {
			t.Errorf("%s: executions = %d, want 1", tc.name, got)
		}
	}
}

// TestDegradedJobSurfaced: a job whose solve settled below the ILP optimum
// is flagged on the job view and counted in /stats.
func TestDegradedJobSurfaced(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})
	h.srv.setExec(func(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error) {
		return map[flow.ID]flow.Metrics{
			flow.Flow5: {SolveRung: "anytime", SolveDegraded: true, SolveDegradeReason: "node-limit", SolveGap: 0.1},
		}, nil
	})
	id := h.submit(JobRequest{Testcase: "aes_300"})
	if st := h.waitState(id, ""); st != StateDone {
		t.Fatalf("job finished %q, want done", st)
	}
	_, body := h.do("GET", "/jobs/"+id, nil)
	var degraded bool
	_ = json.Unmarshal(body["degraded"], &degraded)
	if !degraded {
		t.Error("job view does not flag the degraded solve")
	}
	code, body := h.do("GET", "/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var n int64
	_ = json.Unmarshal(body["jobs_degraded"], &n)
	if n != 1 {
		t.Errorf("stats jobs_degraded = %v, want 1", n)
	}
	// The degradation detail rides inside the metrics payload.
	_, rbody := h.do("GET", "/jobs/"+id+"/result", nil)
	var metrics map[string]flow.Metrics
	if err := json.Unmarshal(rbody["metrics"], &metrics); err != nil {
		t.Fatal(err)
	}
	if m := metrics["5"]; m.SolveRung != "anytime" || m.SolveDegradeReason != "node-limit" {
		t.Errorf("result metrics lost the rung detail: %+v", m)
	}
}

// newJournalHarness builds a harness whose server journals into dir.
func newJournalHarness(t *testing.T, dir string, opt Options) *testHarness {
	t.Helper()
	opt.JournalDir = dir
	return newHarness(t, opt)
}

// TestJournalReplayRunsUnfinishedJob is the crash-recovery acceptance
// test: a journal showing an accepted job with no terminal event (the
// previous process died under it) makes a fresh server re-run it under
// its original ID and produce metrics identical to an undisturbed run.
func TestJournalReplayRunsUnfinishedJob(t *testing.T) {
	req := JobRequest{Testcase: "aes_300", Flows: []int{4}, Scale: 0.02}

	// Undisturbed run for the reference metrics.
	h1 := newJournalHarness(t, t.TempDir(), Options{Workers: 1})
	id1 := h1.submit(req)
	if st := h1.waitState(id1, ""); st != StateDone {
		t.Fatalf("reference job finished %q", st)
	}
	_, body := h1.do("GET", "/jobs/"+id1+"/result", nil)
	var want map[string]flow.Metrics
	if err := json.Unmarshal(body["metrics"], &want); err != nil {
		t.Fatal(err)
	}

	// Forge the crash: a journal holding the acceptance record and a
	// started event, but no terminal line.
	dir := t.TempDir()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(req)
	if err := j.Append(journal.Entry{Seq: 7, Job: "job-7", Event: journal.EventSubmitted, Request: raw}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journal.Entry{Seq: 7, Job: "job-7", Event: journal.EventStarted}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	h2 := newJournalHarness(t, dir, Options{Workers: 1})
	st := h2.waitState("job-7", "")
	if st != StateDone {
		t.Fatalf("replayed job finished %q, want done", st)
	}
	_, body = h2.do("GET", "/jobs/job-7", nil)
	var replayed bool
	_ = json.Unmarshal(body["replayed"], &replayed)
	if !replayed {
		t.Error("job view does not mark the replay")
	}
	_, body = h2.do("GET", "/jobs/job-7/result", nil)
	var got map[string]flow.Metrics
	if err := json.Unmarshal(body["metrics"], &got); err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if zeroTimes(got[k]) != zeroTimes(want[k]) {
			t.Errorf("flow %s: replayed metrics diverge:\n got %+v\nwant %+v",
				k, zeroTimes(got[k]), zeroTimes(want[k]))
		}
	}

	// The sequence counter resumed past the replayed ID: new submissions
	// cannot collide.
	id2 := h2.submit(JobRequest{Testcase: "aes_300", Flows: []int{1}, Scale: 0.02})
	if id2 != "job-8" {
		t.Errorf("post-replay submission got ID %s, want job-8", id2)
	}
	// The journal now records the replayed job's completion, so a third
	// server has nothing to do.
	if st := h2.waitState(id2, ""); st != StateDone {
		t.Fatalf("post-replay job finished %q", st)
	}
	entries, _, err := journal.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pending, _ := journal.Pending(entries); len(pending) != 0 {
		t.Errorf("journal still shows %d pending after completions: %+v", len(pending), pending)
	}
}

// TestJournalRecordsLifecycle: a journaled server writes
// submitted/started/done for a normal job and canceled for a queued
// cancel, so a restart never replays finished work.
func TestJournalRecordsLifecycle(t *testing.T) {
	dir := t.TempDir()
	h := newJournalHarness(t, dir, Options{Workers: 1})
	h.srv.setExec(func(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error) {
		return map[flow.ID]flow.Metrics{flow.Flow5: {}}, nil
	})
	id := h.submit(JobRequest{Testcase: "aes_300"})
	if st := h.waitState(id, ""); st != StateDone {
		t.Fatalf("job finished %q", st)
	}
	entries, skipped, err := journal.ReadAll(dir)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadAll: %v (skipped %d)", err, skipped)
	}
	var events []string
	for _, e := range entries {
		if e.Job == id {
			events = append(events, e.Event)
		}
	}
	want := []string{journal.EventSubmitted, journal.EventStarted, journal.EventDone}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}
