// Package server is the assembled placement service: a thin facade that
// wires the three layers of the job fabric together and preserves the
// original single-package API for existing callers.
//
//   - internal/server/transport — the HTTP/JSON edge (routing, status
//     codes, headers, wire shapes), versioned under /v1/ with the
//     unversioned paths kept as aliases.
//   - internal/server/scheduler — job execution: queues, workers, retries,
//     the crash-safe journal and consistent-hash routing across Backends.
//   - internal/server/store — the bounded result store and the
//     content-addressed solve cache.
//
// New callers that need more than "start the service" should depend on the
// sub-packages directly; everything re-exported here exists so that
// pre-split code (cmd/mthserved, the e2e harness, external scripts) keeps
// compiling and behaving identically.
package server

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"mthplace/internal/flow"
	"mthplace/internal/server/scheduler"
	"mthplace/internal/server/transport"
)

// StatusClientClosedRequest mirrors transport.StatusClientClosedRequest for
// pre-split callers.
const StatusClientClosedRequest = transport.StatusClientClosedRequest

// Re-exported scheduler types, so code written against the monolithic
// server package keeps compiling.
type (
	// Job is one placement run through the fabric.
	Job = scheduler.Job
	// JobRequest is the submit body.
	JobRequest = scheduler.JobRequest
	// JobView is the wire representation of a job.
	JobView = scheduler.JobView
	// JobProgress is the live solver-progress snapshot.
	JobProgress = scheduler.JobProgress
	// State is a job's lifecycle phase.
	State = scheduler.State
	// FlowLatency summarises one flow's recent completion latencies.
	FlowLatency = scheduler.FlowLatency
)

// Job lifecycle states, re-exported.
const (
	StateQueued   = scheduler.StateQueued
	StateRunning  = scheduler.StateRunning
	StateDone     = scheduler.StateDone
	StateFailed   = scheduler.StateFailed
	StateCanceled = scheduler.StateCanceled
)

// Options tunes the service. The fields mirror scheduler.Options; see that
// type for full semantics.
type Options struct {
	// Workers is the number of jobs run concurrently (default 2).
	Workers int
	// QueueDepth bounds the number of jobs waiting behind the workers
	// (default 16); submissions beyond it get 429.
	QueueDepth int
	// Backends is the number of in-process execution lanes jobs are
	// consistent-hash routed across (default 1, or 0 when Remotes are set).
	Backends int
	// Remotes lists worker base URLs; each becomes a remote lane
	// dispatching to a peer mthserved -worker process.
	Remotes []string
	// RemoteWorkers is the concurrent-dispatch complement per remote lane.
	RemoteWorkers int
	// LeaseDuration bounds remote job ownership before re-routing.
	LeaseDuration time.Duration
	// RerouteMax bounds lane moves per job.
	RerouteMax int
	// ProbeInterval is the remote-lane heartbeat cadence.
	ProbeInterval time.Duration
	// BreakerThreshold and BreakerCooldown tune the per-lane circuit
	// breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// PoolJobs bounds the shared worker pool that jobs without a private
	// Jobs setting draw from (default GOMAXPROCS).
	PoolJobs int
	// MaxRetries is how many times a transiently failing job is re-run
	// (default 2; negative disables retries).
	MaxRetries int
	// RetryBase is the first backoff delay (default 25ms).
	RetryBase time.Duration
	// JournalDir, when set, enables the crash-safe job journal.
	JournalDir string
	// DefaultSolver is the RAP solver backend applied to jobs that name
	// none: "milp" (the default when empty), "rap" or "greedy".
	DefaultSolver string
	// CacheEntries bounds the content-addressed solve cache; 0 (the
	// default) disables caching, which keeps every explicitly-constructed
	// server — tests above all — byte-for-byte reproducing the pre-cache
	// behaviour unless it opts in.
	CacheEntries int
	// ResultCapacity bounds the terminal-outcome store (0 selects the
	// store default).
	ResultCapacity int
	// Logger receives the server's structured diagnostics. Nil discards
	// them.
	Logger *slog.Logger
}

// Server runs placement jobs from a bounded queue behind an HTTP API.
type Server struct {
	sched *scheduler.Scheduler
	api   *transport.API
}

// New starts a server with opt.Workers worker goroutines. When a journal
// directory is configured, jobs the journal shows accepted but unfinished
// are re-queued, with their original IDs, before the workers start. Call
// Shutdown to stop it.
func New(opt Options) (*Server, error) {
	sched, err := scheduler.New(scheduler.Options{
		Workers:          opt.Workers,
		QueueDepth:       opt.QueueDepth,
		Backends:         opt.Backends,
		Remotes:          opt.Remotes,
		RemoteWorkers:    opt.RemoteWorkers,
		LeaseDuration:    opt.LeaseDuration,
		RerouteMax:       opt.RerouteMax,
		ProbeInterval:    opt.ProbeInterval,
		BreakerThreshold: opt.BreakerThreshold,
		BreakerCooldown:  opt.BreakerCooldown,
		PoolJobs:         opt.PoolJobs,
		MaxRetries:       opt.MaxRetries,
		RetryBase:        opt.RetryBase,
		JournalDir:       opt.JournalDir,
		DefaultSolver:    opt.DefaultSolver,
		CacheEntries:     opt.CacheEntries,
		ResultCapacity:   opt.ResultCapacity,
		Logger:           opt.Logger,
	})
	if err != nil {
		return nil, err
	}
	return &Server{sched: sched, api: transport.New(sched)}, nil
}

// Handler returns the service's HTTP routes (/v1/ plus legacy aliases).
func (s *Server) Handler() http.Handler { return s.api.Handler() }

// MetricsHandler returns the /metrics endpoint standalone, for mounting on
// a separate debug listener alongside pprof.
func (s *Server) MetricsHandler() http.Handler { return s.api.MetricsHandler() }

// Scheduler exposes the execution layer for callers that need more than
// the HTTP surface (the CLI's shutdown path, tests).
func (s *Server) Scheduler() *scheduler.Scheduler { return s.sched }

// Shutdown gracefully stops the server; see scheduler.Scheduler.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error { return s.sched.Shutdown(ctx) }

// setExec swaps the job-execution function, adapting the pre-split
// metrics-only stub signature. Test seam.
func (s *Server) setExec(fn func(context.Context, *Job) (map[flow.ID]flow.Metrics, error)) {
	s.sched.SetExec(func(ctx context.Context, jb *Job) (*scheduler.ExecResult, error) {
		m, err := fn(ctx, jb)
		if err != nil {
			return nil, err
		}
		return &scheduler.ExecResult{Metrics: m}, nil
	})
}

// job looks a job up by ID. Test seam.
func (s *Server) job(id string) *Job { return s.sched.Job(id) }

// resilience returns the degraded/retries/panics counters. Test seam.
func (s *Server) resilience() (degraded, retries, panics int64) {
	return s.sched.Resilience()
}
