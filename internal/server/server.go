// Package server exposes the placement flows as a long-running HTTP/JSON
// service: clients submit a synthesis spec plus flow IDs, poll job status,
// fetch the resulting flow.Metrics, and can cancel mid-solve. The service
// is a thin ownership layer over the context-aware flow API — every job
// runs under its own context.CancelFunc, and parallelism is budgeted by a
// shared par.Pool unless a job asks for a private bound, so concurrent
// jobs with different Jobs settings never interfere (see DESIGN.md §8).
//
// Endpoints:
//
//	POST   /jobs              submit (202 + id; 429 queue full; 400 bad request)
//	GET    /jobs              list all jobs
//	GET    /jobs/{id}         job status
//	GET    /jobs/{id}/result  metrics (409 until terminal; 422/504/499 on failure)
//	POST   /jobs/{id}/cancel  cancel queued or running job (also DELETE /jobs/{id})
//	GET    /healthz           liveness + intake state
//	GET    /stats             queue depth, per-flow latency percentiles, utilization
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mthplace/internal/core"
	"mthplace/internal/errs"
	"mthplace/internal/flow"
	"mthplace/internal/journal"
	"mthplace/internal/obs"
	"mthplace/internal/par"
)

// StatusClientClosedRequest is the nginx-convention status for a request
// whose work was canceled by the client; net/http has no constant for it.
const StatusClientClosedRequest = 499

// Options tunes the service.
type Options struct {
	// Workers is the number of jobs run concurrently (default 2).
	Workers int
	// QueueDepth bounds the number of jobs waiting behind the workers
	// (default 16); submissions beyond it get 429.
	QueueDepth int
	// PoolJobs bounds the shared worker pool that jobs without a private
	// Jobs setting draw from (default GOMAXPROCS).
	PoolJobs int
	// MaxRetries is how many times a job failing with errs.ErrTransient is
	// re-run before the failure is reported (default 2; negative disables
	// retries). Panics, timeouts, cancels and infeasibility never retry.
	MaxRetries int
	// RetryBase is the first backoff delay; attempt n waits
	// RetryBase·2ⁿ plus a deterministic jitter (default 25ms).
	RetryBase time.Duration
	// JournalDir, when set, enables the crash-safe job journal: accepted
	// jobs are recorded before queueing, and on startup any job the
	// journal shows unfinished is re-queued with its original ID.
	JournalDir string
	// DefaultSolver is the RAP solver backend applied to jobs that name
	// none: "milp" (the default when empty), "rap" or "greedy".
	DefaultSolver string
	// Logger receives the server's structured diagnostics (journal replay,
	// job lifecycle). Nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.PoolJobs <= 0 {
		o.PoolJobs = runtime.GOMAXPROCS(0)
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	return o
}

// Server runs placement jobs from a bounded queue.
type Server struct {
	opt   Options
	pool  *par.Pool // shared budget for jobs without a private bound
	stats *stats
	jrnl  *journal.Journal // nil when journaling is off
	log   *slog.Logger

	// reg is this server's private metric registry: job-lifecycle series
	// live here (not in obs.Default) so multiple servers in one process —
	// the normal situation in tests — never cross-accumulate. GET /metrics
	// renders reg first, then the process-wide obs.Default.
	reg       *obs.Registry
	mStarted  *obs.Counter
	mFinished *obs.Counter
	mDegraded *obs.Counter
	mRetries  *obs.Counter
	mPanics   *obs.Counter
	mInflight *obs.Gauge

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	mu        sync.Mutex // guards jobs/order and the queue-close handshake
	jobs      map[string]*Job
	order     []string // submission order, for stable GET /jobs listings
	queue     chan *Job
	accepting bool
	seq       atomic.Int64

	// execFn runs a job's flows; tests swap it for a controllable stub.
	execFn func(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error)

	wg sync.WaitGroup // worker goroutines
}

// New starts a server with opt.Workers worker goroutines. When a journal
// directory is configured, jobs the journal shows accepted but unfinished
// (a previous process crashed under them) are re-queued, with their
// original IDs, before the workers start. Call Shutdown to stop it.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	switch opt.DefaultSolver {
	case "", core.BackendMILP, core.BackendRAP, core.BackendGreedy:
	default:
		return nil, fmt.Errorf("server: unknown default solver %q (want %s, %s or %s)",
			opt.DefaultSolver, core.BackendMILP, core.BackendRAP, core.BackendGreedy)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:        opt,
		pool:       par.NewPool(opt.PoolJobs),
		stats:      newStats(opt.Workers),
		log:        opt.Logger,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		accepting:  true,
	}
	if s.log == nil {
		s.log = obs.Nop()
	}
	s.reg = obs.NewRegistry()
	s.mStarted = s.reg.Counter("jobs_started_total", "Jobs handed to a worker since server start.", nil)
	s.mFinished = s.reg.Counter("jobs_finished_total", "Jobs that reached a terminal state since server start.", nil)
	s.mDegraded = s.reg.Counter("jobs_degraded", "Jobs that settled below the ILP-optimum solve rung.", nil)
	s.mRetries = s.reg.Counter("job_retries", "Transient-failure re-executions.", nil)
	s.mPanics = s.reg.Counter("job_panics", "Panics recovered at the worker boundary.", nil)
	s.mInflight = s.reg.Gauge("jobs_inflight", "Jobs currently running (started minus finished).", nil)
	s.execFn = s.execute

	var pending []journal.PendingJob
	if opt.JournalDir != "" {
		entries, skipped, err := journal.ReadAll(opt.JournalDir)
		if err != nil {
			cancel()
			return nil, err
		}
		if skipped > 0 {
			s.log.Warn("journal: skipped unparseable lines", "dir", opt.JournalDir, "lines", skipped)
		}
		var maxSeq int64
		pending, maxSeq = journal.Pending(entries)
		s.seq.Store(maxSeq)
		if len(pending) > 0 {
			s.log.Info("journal: replaying unfinished jobs", "dir", opt.JournalDir, "jobs", len(pending))
		}
		if s.jrnl, err = journal.Open(opt.JournalDir); err != nil {
			cancel()
			return nil, err
		}
	}
	// Replayed jobs must all fit ahead of live traffic, so the queue is
	// sized past its configured depth by however many the journal owes us.
	s.queue = make(chan *Job, opt.QueueDepth+len(pending))
	s.replay(pending)

	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// replay re-queues journaled jobs. A request that no longer validates —
// possible only if the journal was edited or the format drifted — is
// journaled as failed rather than wedging recovery.
func (s *Server) replay(pending []journal.PendingJob) {
	for _, p := range pending {
		jb := &Job{ID: p.ID, state: StateQueued, submitted: time.Now(), replayed: true}
		var err error
		if uerr := json.Unmarshal(p.Request, &jb.req); uerr != nil {
			err = fmt.Errorf("journal replay: %w", uerr)
		} else if jb.spec, jb.flows, err = jb.req.validate(); err != nil {
			err = fmt.Errorf("journal replay: %w", err)
		}
		if err != nil {
			jb.state = StateFailed
			jb.err = err
			jb.finished = time.Now()
			_ = s.jrnl.Append(journal.Entry{Seq: p.Seq, Job: jb.ID, Event: journal.EventFailed, Error: err.Error()})
			s.log.Warn("journal: replayed job failed validation", "job", jb.ID, "err", err)
		} else {
			s.log.Info("journal: re-queued job", "job", jb.ID, "testcase", jb.spec.Name())
		}
		s.jobs[jb.ID] = jb
		s.order = append(s.order, jb.ID)
		if jb.state == StateQueued {
			s.queue <- jb
		}
	}
}

// Shutdown gracefully stops the server: intake closes immediately (new
// submissions get 503), jobs still waiting in the queue are canceled, and
// in-flight jobs are drained to completion. If ctx expires first, the
// in-flight jobs' contexts are canceled and Shutdown waits for them to
// unwind (bounded by one solver/Lloyd iteration), returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.accepting = false
	close(s.queue) // safe: submissions check accepting under mu
	// Queued jobs will still be popped by workers, but cancel them now so
	// the workers skip straight past them.
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		canceled := j.state == StateQueued
		if canceled {
			j.state = StateCanceled
			j.err = errs.ErrCanceled
			j.finished = time.Now()
		}
		j.mu.Unlock()
		if canceled {
			s.journal(j, journal.EventCanceled, errs.ErrCanceled)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		_ = s.jrnl.Close()
		return nil
	case <-ctx.Done():
		s.baseCancel() // abort in-flight jobs
		<-done
		_ = s.jrnl.Close()
		return ctx.Err()
	}
}

// worker pops jobs until the queue closes at shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		s.runJob(jb)
	}
}

// runJob executes one job's flows sequentially on a shared Runner, exactly
// like a direct flow.Runner caller would — which is what makes HTTP results
// byte-identical to library results. Transient failures are retried with
// exponential backoff; a panic anywhere under the job is converted to a
// typed error so the daemon survives it.
func (s *Server) runJob(jb *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	if jb.req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(jb.req.TimeoutMS)*time.Millisecond)
	}
	defer cancel()
	if !jb.begin(cancel) {
		return // canceled while queued
	}
	s.journal(jb, journal.EventStarted, nil)
	s.stats.jobStarted()
	s.mStarted.Inc()
	s.log.Debug("job started", "job", jb.ID, "testcase", jb.spec.Name())
	start := time.Now()

	var results map[flow.ID]flow.Metrics
	var err error
	for attempt := 0; ; attempt++ {
		jb.noteAttempt()
		results, err = s.safeExec(ctx, jb)
		if err == nil {
			err = errs.FromContext(ctx) // classify deadline vs cancel post-hoc
		}
		if !s.shouldRetry(ctx, err, attempt) {
			break
		}
		s.stats.jobRetried()
		s.mRetries.Inc()
		s.log.Warn("job retrying after transient failure", "job", jb.ID, "attempt", attempt+1, "err", err)
		select {
		case <-time.After(backoff(s.opt.RetryBase, jb.ID, attempt)):
		case <-ctx.Done():
		}
	}
	if err == nil && degradedResults(results) {
		jb.noteDegraded()
		s.stats.jobDegraded()
		s.mDegraded.Inc()
	}
	jb.finish(results, err)
	s.journal(jb, terminalEvent(jb), err)
	s.stats.jobFinished(time.Since(start))
	s.mFinished.Inc()
	if err != nil {
		s.log.Warn("job finished with error", "job", jb.ID, "state", terminalEvent(jb), "err", err, "dur", time.Since(start))
	} else {
		s.log.Info("job done", "job", jb.ID, "dur", time.Since(start))
	}
}

// safeExec runs the job's flows behind a recover boundary. The flow layer
// has its own boundary, so this one catches what remains: bugs in the
// server itself, test stubs, and anything a future execFn does wrong. One
// panicking job must cost exactly one 500, never the daemon.
func (s *Server) safeExec(ctx context.Context, jb *Job) (results map[flow.ID]flow.Metrics, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.stats.jobPanicked()
			s.mPanics.Inc()
			err = errs.FromPanic(rec, "server: job %s", jb.ID)
		}
	}()
	return s.execFn(ctx, jb)
}

// shouldRetry allows another attempt only for transient failures, within
// the retry budget, while the job's context is still live. Panics are
// excluded even when the panic value carried a transient error: a panic
// means a bug, and re-running bugs is chaos of the wrong kind.
func (s *Server) shouldRetry(ctx context.Context, err error, attempt int) bool {
	return attempt < s.opt.MaxRetries &&
		err != nil &&
		errors.Is(err, errs.ErrTransient) &&
		!errors.Is(err, errs.ErrPanic) &&
		ctx.Err() == nil
}

// backoff is the delay before retry attempt+1: base·2ᵃᵗᵗᵉᵐᵖᵗ plus a jitter
// in [0, base) derived from the job ID, so concurrent retries de-correlate
// without the schedule becoming nondeterministic for a given job.
func backoff(base time.Duration, jobID string, attempt int) time.Duration {
	h := fnv.New64a()
	_, _ = h.Write([]byte(jobID))
	_, _ = h.Write([]byte{byte(attempt)})
	jitter := time.Duration(h.Sum64() % uint64(base))
	return base<<uint(attempt) + jitter
}

// degradedResults reports whether any flow in the job settled on a lower
// rung of the solve ladder than the proven ILP optimum.
func degradedResults(results map[flow.ID]flow.Metrics) bool {
	for _, m := range results {
		if m.SolveDegraded {
			return true
		}
	}
	return false
}

// journal appends a lifecycle event for jb; a nil journal is a no-op.
// Post-acceptance events are best-effort: losing one means a deterministic
// job may be re-run after a crash, which is safe.
func (s *Server) journal(jb *Job, event string, err error) {
	if s.jrnl == nil {
		return
	}
	e := journal.Entry{Seq: jb.seqn, Job: jb.ID, Event: event}
	if err != nil {
		e.Error = err.Error()
	}
	_ = s.jrnl.Append(e)
}

// terminalEvent maps a finished job's state to its journal event.
func terminalEvent(jb *Job) string {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	switch jb.state {
	case StateCanceled:
		return journal.EventCanceled
	case StateFailed:
		return journal.EventFailed
	default:
		return journal.EventDone
	}
}

func (s *Server) execute(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error) {
	// Solver progress (stage transitions, MILP incumbents, k-means
	// iterations) streams into the job's live view; the job's logger is
	// scoped with its ID so concurrent jobs' diagnostics stay attributable.
	ctx = obs.WithProgress(ctx, jb.noteProgress)
	ctx = obs.WithLogger(ctx, s.log.With("job", jb.ID))
	cfg := jb.req.config(s.pool, s.opt.DefaultSolver)
	r, err := flow.NewRunner(ctx, jb.spec, cfg)
	if err != nil {
		return nil, err
	}
	results := make(map[flow.ID]flow.Metrics, len(jb.flows))
	for _, id := range jb.flows {
		t0 := time.Now()
		res, err := r.Run(ctx, id, jb.req.Route)
		if err != nil {
			return nil, err
		}
		results[id] = res.Metrics
		s.stats.recordFlow(id, time.Since(t0))
	}
	return results, nil
}

// Submit enqueues a job, returning it, or an error: errBadRequest-wrapped
// validation failures, errQueueFull, or errNotAccepting.
var (
	errQueueFull    = errors.New("job queue full")
	errNotAccepting = errors.New("server is shutting down")
	errJournal      = errors.New("job journal write failed")
)

func (s *Server) submit(req JobRequest) (*Job, error) {
	spec, ids, err := req.validate()
	if err != nil {
		return nil, err
	}
	seq := s.seq.Add(1)
	jb := &Job{
		ID:        fmt.Sprintf("job-%d", seq),
		seqn:      seq,
		state:     StateQueued,
		req:       req,
		flows:     ids,
		spec:      spec,
		submitted: time.Now(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.accepting {
		return nil, errNotAccepting
	}
	// Reject over-capacity before journaling: a 429'd job must leave no
	// acceptance record, or a later restart would replay work the client
	// was told we refused. Only submit (under mu) adds to the queue, so the
	// room observed here cannot vanish before the send below.
	if len(s.queue) >= cap(s.queue) {
		return nil, errQueueFull
	}
	if s.jrnl != nil {
		// The acceptance record must be durable before the job is visible:
		// this is the one journal write whose failure rejects the request,
		// because a job we cannot promise to replay is a job we must not
		// accept.
		raw, err := json.Marshal(req)
		if err == nil {
			err = s.jrnl.Append(journal.Entry{Seq: seq, Job: jb.ID, Event: journal.EventSubmitted, Request: raw})
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %s", errJournal, err)
		}
	}
	select {
	case s.queue <- jb:
	default:
		return nil, errQueueFull
	}
	s.jobs[jb.ID] = jb
	s.order = append(s.order, jb.ID)
	return jb, nil
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	jb, err := s.submit(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, jb.view())
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, errNotAccepting):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, errJournal):
		writeError(w, http.StatusInternalServerError, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	views := make([]JobView, 0, len(ids))
	for _, id := range ids {
		if j := s.job(id); j != nil {
			views = append(views, j.view())
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb := s.job(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, jb.view())
}

// errStatus maps a flow failure to its HTTP status: infeasible instances
// are a client problem (422), deadline expiry is 504, client-requested
// cancellation is 499, anything else is a 500.
func errStatus(err error) int {
	switch {
	case errors.Is(err, errs.ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, errs.ErrTimeout):
		return http.StatusGatewayTimeout
	case errors.Is(err, errs.ErrCanceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	jb := s.job(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	state, results, err := jb.snapshot()
	if !state.terminal() {
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; poll again later", state))
		return
	}
	if err != nil {
		writeError(w, errStatus(err), err.Error())
		return
	}
	keyed := make(map[string]flow.Metrics, len(results))
	for id, m := range results {
		keyed[fmt.Sprintf("%d", int(id))] = m
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": jb.ID, "metrics": keyed})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb := s.job(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if !jb.requestCancel() {
		writeError(w, http.StatusConflict, "job already finished")
		return
	}
	// A job canceled while still queued goes terminal right here, with no
	// worker to journal it; a running one is journaled when it unwinds.
	if state, _, _ := jb.snapshot(); state.terminal() {
		s.journal(jb, journal.EventCanceled, errs.ErrCanceled)
	}
	writeJSON(w, http.StatusOK, jb.view())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	accepting := s.accepting
	s.mu.Unlock()
	status := http.StatusOK
	if !accepting {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ok": accepting, "accepting": accepting})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	busy, util, perFlow := s.stats.snapshot()
	degraded, retries, panics := s.stats.resilience()
	started, finished, inflight := s.stats.inflight()
	s.mu.Lock()
	depth := len(s.queue)
	counts := map[State]int{}
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds":     s.stats.uptime().Seconds(),
		"queue_depth":        depth,
		"queue_capacity":     s.opt.QueueDepth,
		"workers":            s.opt.Workers,
		"busy_workers":       busy,
		"worker_utilization": util,
		"pool_jobs":          s.pool.Jobs(),
		"jobs":               counts,
		"jobs_started":       started,
		"jobs_finished":      finished,
		"jobs_inflight":      inflight,
		"jobs_degraded":      degraded,
		"job_retries":        retries,
		"job_panics":         panics,
		"flow_latency":       perFlow,
	})
}

// MetricsHandler returns the /metrics endpoint standalone, for mounting on
// a separate debug listener alongside pprof.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(s.handleMetrics)
}

// handleMetrics renders the server's registry followed by the process-wide
// default registry (flow stage histograms, solve counters) in Prometheus
// text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	_, _, inflight := s.stats.inflight()
	s.mInflight.Set(float64(inflight))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteProm(w)
	_ = obs.Default.WriteProm(w)
}
