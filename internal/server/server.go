// Package server exposes the placement flows as a long-running HTTP/JSON
// service: clients submit a synthesis spec plus flow IDs, poll job status,
// fetch the resulting flow.Metrics, and can cancel mid-solve. The service
// is a thin ownership layer over the context-aware flow API — every job
// runs under its own context.CancelFunc, and parallelism is budgeted by a
// shared par.Pool unless a job asks for a private bound, so concurrent
// jobs with different Jobs settings never interfere (see DESIGN.md §8).
//
// Endpoints:
//
//	POST   /jobs              submit (202 + id; 429 queue full; 400 bad request)
//	GET    /jobs              list all jobs
//	GET    /jobs/{id}         job status
//	GET    /jobs/{id}/result  metrics (409 until terminal; 422/504/499 on failure)
//	POST   /jobs/{id}/cancel  cancel queued or running job (also DELETE /jobs/{id})
//	GET    /healthz           liveness + intake state
//	GET    /stats             queue depth, per-flow latency percentiles, utilization
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mthplace/internal/errs"
	"mthplace/internal/flow"
	"mthplace/internal/par"
)

// StatusClientClosedRequest is the nginx-convention status for a request
// whose work was canceled by the client; net/http has no constant for it.
const StatusClientClosedRequest = 499

// Options tunes the service.
type Options struct {
	// Workers is the number of jobs run concurrently (default 2).
	Workers int
	// QueueDepth bounds the number of jobs waiting behind the workers
	// (default 16); submissions beyond it get 429.
	QueueDepth int
	// PoolJobs bounds the shared worker pool that jobs without a private
	// Jobs setting draw from (default GOMAXPROCS).
	PoolJobs int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.PoolJobs <= 0 {
		o.PoolJobs = runtime.GOMAXPROCS(0)
	}
	return o
}

// Server runs placement jobs from a bounded queue.
type Server struct {
	opt   Options
	pool  *par.Pool // shared budget for jobs without a private bound
	stats *stats

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	mu        sync.Mutex // guards jobs/order and the queue-close handshake
	jobs      map[string]*Job
	order     []string // submission order, for stable GET /jobs listings
	queue     chan *Job
	accepting bool
	seq       atomic.Int64

	// execFn runs a job's flows; tests swap it for a controllable stub.
	execFn func(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error)

	wg sync.WaitGroup // worker goroutines
}

// New starts a server with opt.Workers worker goroutines. Call Shutdown to
// stop it.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:        opt,
		pool:       par.NewPool(opt.PoolJobs),
		stats:      newStats(opt.Workers),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		queue:      make(chan *Job, opt.QueueDepth),
		accepting:  true,
	}
	s.execFn = s.execute
	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s
}

// Shutdown gracefully stops the server: intake closes immediately (new
// submissions get 503), jobs still waiting in the queue are canceled, and
// in-flight jobs are drained to completion. If ctx expires first, the
// in-flight jobs' contexts are canceled and Shutdown waits for them to
// unwind (bounded by one solver/Lloyd iteration), returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.accepting = false
	close(s.queue) // safe: submissions check accepting under mu
	// Queued jobs will still be popped by workers, but cancel them now so
	// the workers skip straight past them.
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateCanceled
			j.err = errs.ErrCanceled
			j.finished = time.Now()
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel() // abort in-flight jobs
		<-done
		return ctx.Err()
	}
}

// worker pops jobs until the queue closes at shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		s.runJob(jb)
	}
}

// runJob executes one job's flows sequentially on a shared Runner, exactly
// like a direct flow.Runner caller would — which is what makes HTTP results
// byte-identical to library results.
func (s *Server) runJob(jb *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	if jb.req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(jb.req.TimeoutMS)*time.Millisecond)
	}
	defer cancel()
	if !jb.begin(cancel) {
		return // canceled while queued
	}
	s.stats.jobStarted()
	start := time.Now()
	results, err := s.execFn(ctx, jb)
	if err == nil {
		err = errs.FromContext(ctx) // classify deadline vs cancel post-hoc
	}
	jb.finish(results, err)
	s.stats.jobFinished(time.Since(start))
}

func (s *Server) execute(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error) {
	cfg := jb.req.config(s.pool)
	r, err := flow.NewRunner(ctx, jb.spec, cfg)
	if err != nil {
		return nil, err
	}
	results := make(map[flow.ID]flow.Metrics, len(jb.flows))
	for _, id := range jb.flows {
		t0 := time.Now()
		res, err := r.Run(ctx, id, jb.req.Route)
		if err != nil {
			return nil, err
		}
		results[id] = res.Metrics
		s.stats.recordFlow(id, time.Since(t0))
	}
	return results, nil
}

// Submit enqueues a job, returning it, or an error: errBadRequest-wrapped
// validation failures, errQueueFull, or errNotAccepting.
var (
	errQueueFull    = errors.New("job queue full")
	errNotAccepting = errors.New("server is shutting down")
)

func (s *Server) submit(req JobRequest) (*Job, error) {
	spec, ids, err := req.validate()
	if err != nil {
		return nil, err
	}
	jb := &Job{
		ID:        fmt.Sprintf("job-%d", s.seq.Add(1)),
		state:     StateQueued,
		req:       req,
		flows:     ids,
		spec:      spec,
		submitted: time.Now(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.accepting {
		return nil, errNotAccepting
	}
	select {
	case s.queue <- jb:
	default:
		return nil, errQueueFull
	}
	s.jobs[jb.ID] = jb
	s.order = append(s.order, jb.ID)
	return jb, nil
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	jb, err := s.submit(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, jb.view())
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, errNotAccepting):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	views := make([]JobView, 0, len(ids))
	for _, id := range ids {
		if j := s.job(id); j != nil {
			views = append(views, j.view())
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb := s.job(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, jb.view())
}

// errStatus maps a flow failure to its HTTP status: infeasible instances
// are a client problem (422), deadline expiry is 504, client-requested
// cancellation is 499, anything else is a 500.
func errStatus(err error) int {
	switch {
	case errors.Is(err, errs.ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, errs.ErrTimeout):
		return http.StatusGatewayTimeout
	case errors.Is(err, errs.ErrCanceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	jb := s.job(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	state, results, err := jb.snapshot()
	if !state.terminal() {
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; poll again later", state))
		return
	}
	if err != nil {
		writeError(w, errStatus(err), err.Error())
		return
	}
	keyed := make(map[string]flow.Metrics, len(results))
	for id, m := range results {
		keyed[fmt.Sprintf("%d", int(id))] = m
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": jb.ID, "metrics": keyed})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb := s.job(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if !jb.requestCancel() {
		writeError(w, http.StatusConflict, "job already finished")
		return
	}
	writeJSON(w, http.StatusOK, jb.view())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	accepting := s.accepting
	s.mu.Unlock()
	status := http.StatusOK
	if !accepting {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ok": accepting, "accepting": accepting})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	busy, util, perFlow := s.stats.snapshot()
	s.mu.Lock()
	depth := len(s.queue)
	counts := map[State]int{}
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"queue_depth":        depth,
		"queue_capacity":     s.opt.QueueDepth,
		"workers":            s.opt.Workers,
		"busy_workers":       busy,
		"worker_utilization": util,
		"pool_jobs":          s.pool.Jobs(),
		"jobs":               counts,
		"flow_latency":       perFlow,
	})
}
