package scheduler

import (
	"sort"
	"sync"
	"time"

	"mthplace/internal/flow"
)

// maxLatencySamples bounds the per-flow latency history; older samples are
// overwritten ring-buffer style so stats stay O(1) in memory no matter how
// long the scheduler runs.
const maxLatencySamples = 512

// latencyRing keeps the most recent completion latencies of one flow.
type latencyRing struct {
	samples []time.Duration
	next    int
	total   int
}

func (r *latencyRing) add(d time.Duration) {
	if len(r.samples) < maxLatencySamples {
		r.samples = append(r.samples, d)
	} else {
		r.samples[r.next] = d
		r.next = (r.next + 1) % maxLatencySamples
	}
	r.total++
}

// percentile returns the p-th percentile (0 < p <= 100) of the retained
// samples with nearest-rank interpolation.
func (r *latencyRing) percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// FlowLatency summarises one flow's recent completion latencies.
type FlowLatency struct {
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P90ms float64 `json:"p90_ms"`
	P99ms float64 `json:"p99_ms"`
}

// stats aggregates the scheduler's observability counters. All methods are
// safe for concurrent use.
type stats struct {
	start   time.Time
	workers int

	mu        sync.Mutex
	started   int64         // jobs ever started (monotonic)
	finished  int64         // jobs ever finished (monotonic)
	busyNanos time.Duration // accumulated busy time of finished jobs
	perFlow   map[flow.ID]*latencyRing
	degraded  int64 // jobs that settled below the ILP-optimum rung
	retries   int64 // transient-failure re-executions
	panics    int64 // panics recovered at the worker boundary
	reroutes  int64 // jobs moved to another lane after dispatch failure
	leaseExp  int64 // remote leases that expired without a result
}

func newStats(workers int) *stats {
	return &stats{start: time.Now(), workers: workers, perFlow: map[flow.ID]*latencyRing{}}
}

func (s *stats) jobStarted() {
	s.mu.Lock()
	s.started++
	s.mu.Unlock()
}

func (s *stats) jobFinished(busyFor time.Duration) {
	s.mu.Lock()
	s.finished++
	s.busyNanos += busyFor
	s.mu.Unlock()
}

// uptime is the wall clock since scheduler start.
func (s *stats) uptime() time.Duration { return time.Since(s.start) }

// inflight derives the jobs-in-flight gauge from the two monotonic
// start/finish counters, so it can never go negative or drift: the gauge is
// a difference of monotones, not an up/down counter that a missed decrement
// could corrupt.
func (s *stats) inflight() (started, finished, inflight int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started, s.finished, s.started - s.finished
}

func (s *stats) jobDegraded() {
	s.mu.Lock()
	s.degraded++
	s.mu.Unlock()
}

func (s *stats) jobRetried() {
	s.mu.Lock()
	s.retries++
	s.mu.Unlock()
}

func (s *stats) jobPanicked() {
	s.mu.Lock()
	s.panics++
	s.mu.Unlock()
}

func (s *stats) jobRerouted() {
	s.mu.Lock()
	s.reroutes++
	s.mu.Unlock()
}

func (s *stats) leaseExpired() {
	s.mu.Lock()
	s.leaseExp++
	s.mu.Unlock()
}

// resilience returns the degradation/retry/panic counters.
func (s *stats) resilience() (degraded, retries, panics int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded, s.retries, s.panics
}

// faults returns the remote-dispatch failure counters.
func (s *stats) faults() (reroutes, leaseExp int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reroutes, s.leaseExp
}

func (s *stats) recordFlow(id flow.ID, d time.Duration) {
	s.mu.Lock()
	r := s.perFlow[id]
	if r == nil {
		r = &latencyRing{}
		s.perFlow[id] = r
	}
	r.add(d)
	s.mu.Unlock()
}

// snapshot renders the counters. Utilization is the busy-time fraction of
// the worker pool since start; jobs still in flight contribute their elapsed
// time so a long solve shows up immediately.
func (s *stats) snapshot() (busyWorkers int, utilization float64, perFlow map[string]FlowLatency) {
	s.mu.Lock()
	defer s.mu.Unlock()
	elapsed := time.Since(s.start)
	capacity := elapsed * time.Duration(s.workers)
	busyTime := s.busyNanos
	// Approximation for in-flight work: each busy worker has been busy at
	// most `elapsed`; counting from its job start would need per-job state
	// here, so in-flight jobs are credited on completion only — except the
	// busy count itself, reported live.
	util := 0.0
	if capacity > 0 {
		util = float64(busyTime) / float64(capacity)
		if util > 1 {
			util = 1
		}
	}
	out := make(map[string]FlowLatency, len(s.perFlow))
	for id, r := range s.perFlow {
		sorted := append([]time.Duration(nil), r.samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		out[id.String()] = FlowLatency{
			Count: r.total,
			P50ms: float64(r.percentile(sorted, 50)) / float64(time.Millisecond),
			P90ms: float64(r.percentile(sorted, 90)) / float64(time.Millisecond),
			P99ms: float64(r.percentile(sorted, 99)) / float64(time.Millisecond),
		}
	}
	return int(s.started - s.finished), util, out
}
