package scheduler

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"mthplace/internal/core"
	"mthplace/internal/flow"
)

func newSched(t *testing.T, opt Options) *Scheduler {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// submitWait submits and polls the job to a terminal state.
func submitWait(t *testing.T, s *Scheduler, req JobRequest) *Job {
	t.Helper()
	jb, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := jb.Snapshot()
		if st.Terminal() {
			if st != StateDone {
				t.Fatalf("job %s finished %q (%v), want done", jb.ID, st, err)
			}
			return jb
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", jb.ID, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCacheHitBitIdentical is the cache acceptance check, run for every
// solver backend: resubmitting an identical instance is served from the
// cache without executing, and the metrics AND the placement digest are
// bit-identical to the cold solve — not merely equivalent.
func TestCacheHitBitIdentical(t *testing.T) {
	for _, solver := range []string{core.BackendMILP, core.BackendRAP, core.BackendGreedy} {
		t.Run(solver, func(t *testing.T) {
			s := newSched(t, Options{Workers: 1, CacheEntries: 16})
			req := JobRequest{Testcase: "aes_300", Scale: 0.02, Flows: []int{2, 5}, Solver: solver}

			cold := submitWait(t, s, req)
			coldOut, ok := s.Outcome(cold.ID)
			if !ok {
				t.Fatal("cold solve stored no outcome")
			}
			if coldOut.CacheHit {
				t.Fatal("cold solve claims a cache hit")
			}
			if cold.View().CacheHit {
				t.Fatal("cold job view claims a cache hit")
			}

			warm := submitWait(t, s, req)
			warmOut, ok := s.Outcome(warm.ID)
			if !ok {
				t.Fatal("cache hit stored no outcome")
			}
			if !warmOut.CacheHit || !warm.View().CacheHit {
				t.Fatal("resubmission of identical instance was not a cache hit")
			}
			if warm.View().Backend != "" {
				t.Errorf("cache hit reports backend %q, want none", warm.View().Backend)
			}
			for _, id := range []flow.ID{flow.Flow2, flow.Flow5} {
				if coldOut.Metrics[id] != warmOut.Metrics[id] {
					t.Errorf("%v: cached metrics diverge from cold solve:\n cold %+v\n warm %+v",
						id, coldOut.Metrics[id], warmOut.Metrics[id])
				}
				if coldOut.Placements[id] == "" {
					t.Fatalf("%v: cold solve produced no placement digest", id)
				}
				if coldOut.Placements[id] != warmOut.Placements[id] {
					t.Errorf("%v: cached placement digest diverges: %s vs %s",
						id, coldOut.Placements[id], warmOut.Placements[id])
				}
			}
			if hits, misses := s.Cache().Stats(); hits != 1 || misses != 1 {
				t.Errorf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
			}
			// The warm job never reached a worker: started counts only the
			// cold solve.
			if snap := s.Stats(); snap.Started != 1 {
				t.Errorf("jobs_started = %d after a hit, want 1", snap.Started)
			}
		})
	}
}

// TestCacheControlDirectives: bypass always re-solves but refreshes the
// cache; no-store reads but never writes; off does neither.
func TestCacheControlDirectives(t *testing.T) {
	s := newSched(t, Options{Workers: 1, CacheEntries: 16, DefaultSolver: core.BackendGreedy})
	base := JobRequest{Testcase: "aes_300", Scale: 0.02, Flows: []int{5}}

	noStore := base
	noStore.Cache = CacheNoStore
	jb := submitWait(t, s, noStore)
	if out, _ := s.Outcome(jb.ID); out.CacheHit {
		t.Fatal("first no-store submission hit an empty cache")
	}
	if s.Cache().Len() != 0 {
		t.Fatalf("no-store populated the cache (%d entries)", s.Cache().Len())
	}

	// Populate via the default directive, then prove bypass re-solves.
	submitWait(t, s, base)
	bypass := base
	bypass.Cache = CacheBypass
	jb = submitWait(t, s, bypass)
	if out, _ := s.Outcome(jb.ID); out.CacheHit {
		t.Error("bypass was served from cache")
	}

	off := base
	off.Cache = CacheOff
	jb = submitWait(t, s, off)
	if out, _ := s.Outcome(jb.ID); out.CacheHit {
		t.Error("off was served from cache")
	}

	// The resident entry still hits for a default submission.
	jb = submitWait(t, s, base)
	if out, _ := s.Outcome(jb.ID); !out.CacheHit {
		t.Error("default submission missed a resident entry")
	}
}

// TestCacheDisabledByDefault: a zero-valued Options runs cacheless, so
// identical submissions always execute.
func TestCacheDisabledByDefault(t *testing.T) {
	s := newSched(t, Options{Workers: 1, DefaultSolver: core.BackendGreedy})
	if s.Cache() != nil {
		t.Fatal("cache enabled without opting in")
	}
	req := JobRequest{Testcase: "aes_300", Scale: 0.02, Flows: []int{5}}
	submitWait(t, s, req)
	jb := submitWait(t, s, req)
	if out, _ := s.Outcome(jb.ID); out.CacheHit {
		t.Error("cacheless scheduler reported a hit")
	}
	if snap := s.Stats(); snap.Started != 2 {
		t.Errorf("jobs_started = %d, want 2 (both executed)", snap.Started)
	}
}

// TestSubmitBatch: N requests yield N slots in order, invalid members are
// rejected individually, and the valid remainder still runs.
func TestSubmitBatch(t *testing.T) {
	s := newSched(t, Options{Workers: 2, QueueDepth: 8, DefaultSolver: core.BackendGreedy})
	items := s.SubmitBatch([]JobRequest{
		{Testcase: "aes_300", Scale: 0.02, Flows: []int{5}},
		{Testcase: "no_such_testcase"},
		{Testcase: "aes_300", Scale: 0.02, Flows: []int{1}},
	})
	if len(items) != 3 {
		t.Fatalf("batch returned %d slots, want 3", len(items))
	}
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("valid members rejected: %v / %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("invalid member accepted")
	}
	if items[0].Job.ID == items[2].Job.ID {
		t.Fatal("batch members share an ID")
	}
	for _, idx := range []int{0, 2} {
		jb := items[idx].Job
		deadline := time.Now().Add(120 * time.Second)
		for {
			if st, err := jb.Snapshot(); st.Terminal() {
				if st != StateDone {
					t.Fatalf("batch member %d finished %q (%v)", idx, st, err)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("batch member %d never finished", idx)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestMultiBackendRouting: with several lanes, jobs spread by instance key,
// identical instances always route to the same lane, and every lane's
// queue shows up in the stats snapshot.
func TestMultiBackendRouting(t *testing.T) {
	s := newSched(t, Options{Workers: 4, QueueDepth: 32, Backends: 4, DefaultSolver: core.BackendGreedy})
	snap := s.Stats()
	if len(snap.Backends) != 4 {
		t.Fatalf("stats report %d backends, want 4", len(snap.Backends))
	}
	totalWorkers, totalCap := 0, 0
	for _, b := range snap.Backends {
		totalWorkers += b.Workers
		totalCap += b.Capacity
	}
	if totalWorkers != 4 || totalCap != 32 {
		t.Errorf("lane totals workers=%d cap=%d, want 4/32", totalWorkers, totalCap)
	}

	// Routing is a pure function of the instance keys.
	keysA := s.instanceKeys(&JobRequest{Testcase: "aes_300", Flows: []int{5}})
	keysB := s.instanceKeys(&JobRequest{Testcase: "aes_300", Flows: []int{5}})
	if routingKey(keysA) != routingKey(keysB) {
		t.Fatal("identical requests produced different routing keys")
	}
	if s.ring.pick(routingKey(keysA)) != s.ring.pick(routingKey(keysB)) {
		t.Fatal("identical routing keys landed on different lanes")
	}

	// Distinct seeds must not all collapse onto one lane (vnode spread).
	lanes := map[int]bool{}
	for seed := int64(1); seed <= 32; seed++ {
		keys := s.instanceKeys(&JobRequest{Testcase: "aes_300", Seed: seed, Flows: []int{5}})
		lanes[s.ring.pick(routingKey(keys))] = true
	}
	if len(lanes) < 2 {
		t.Errorf("32 distinct instances all routed to one lane")
	}

	// And real jobs across lanes all complete.
	for seed := int64(1); seed <= 4; seed++ {
		jb := submitWait(t, s, JobRequest{Testcase: "aes_300", Scale: 0.02, Seed: seed, Flows: []int{5}})
		if jb.View().Backend == "" {
			t.Errorf("executed job %s reports no backend", jb.ID)
		}
	}
}

// TestInstanceKeyJournalRoundTrip: a request that goes through JSON — the
// exact transformation the journal applies — hashes to the same per-flow
// keys on replay, so a recovered job hits the same cache entries and the
// same lane.
func TestInstanceKeyJournalRoundTrip(t *testing.T) {
	s := newSched(t, Options{Workers: 1})
	orig := JobRequest{Testcase: "des3_210", Flows: []int{2, 5}, Scale: 0.5, Seed: 7,
		FencePasses: 4, Route: true, Solver: core.BackendRAP, Cache: CacheNoStore}
	raw, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var replayed JobRequest
	if err := json.Unmarshal(raw, &replayed); err != nil {
		t.Fatal(err)
	}
	k1, k2 := s.instanceKeys(&orig), s.instanceKeys(&replayed)
	if len(k1) != 2 || len(k2) != 2 {
		t.Fatalf("key counts %d/%d, want 2/2", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Errorf("flow %d: key changed across JSON round-trip: %s vs %s", i, k1[i], k2[i])
		}
	}
	// Execution-shape fields must NOT shift the identity.
	shaped := orig
	shaped.Jobs = 7
	shaped.TimeoutMS = 60_000
	shaped.Cache = CacheBypass
	k3 := s.instanceKeys(&shaped)
	for i := range k1 {
		if k1[i] != k3[i] {
			t.Errorf("flow %d: jobs/timeout/cache directive leaked into the key", i)
		}
	}
}

// TestDegradedResultNotCached: a result that settled below the ILP optimum
// is time-dependent, so it must never populate the cache.
func TestDegradedResultNotCached(t *testing.T) {
	s := newSched(t, Options{Workers: 1, CacheEntries: 16})
	s.SetExec(func(ctx context.Context, jb *Job) (*ExecResult, error) {
		return &ExecResult{
			Metrics:    map[flow.ID]flow.Metrics{flow.Flow5: {Flow: flow.Flow5, SolveDegraded: true, SolveRung: "anytime"}},
			Placements: map[flow.ID]string{flow.Flow5: "digest"},
		}, nil
	})
	jb := submitWait(t, s, JobRequest{Testcase: "aes_300", Flows: []int{5}})
	if !jb.View().Degraded {
		t.Fatal("stub job not marked degraded")
	}
	if s.Cache().Len() != 0 {
		t.Errorf("degraded result cached (%d entries)", s.Cache().Len())
	}
}
