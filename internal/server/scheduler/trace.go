// Coordinator-side distributed tracing: per-job span accumulation, the
// terminal root span, instant events for fabric incidents (reroutes, lease
// expiries, retries, cache hits), and the merged Chrome trace_event export
// behind GET /v1/jobs/{id}/trace. Span records arrive from three sources —
// the per-attempt coordinator tracer, WireResult piggybacks, and the
// prober's /worker/v1/spans drain — and all land in the bounded store.Traces
// keyed by job ID.
package scheduler

import (
	"io"
	"time"

	"mthplace/internal/obs"
)

// procCoordinator labels coordinator-produced span records in the merged
// timeline; worker records are re-labelled with their lane name on ingest.
const procCoordinator = "coordinator"

// TraceRecords returns the job's accumulated span records (nil when the job
// is unknown or its trace was evicted).
func (s *Scheduler) TraceRecords(id string) []obs.SpanRecord {
	return s.traces.Get(id)
}

// WriteTrace renders the job's merged multi-process timeline as Chrome
// trace_event JSON. ok is false when no records exist for the job.
func (s *Scheduler) WriteTrace(w io.Writer, id string) (ok bool, err error) {
	recs := s.traces.Get(id)
	if len(recs) == 0 {
		return false, nil
	}
	return true, obs.WriteChromeTrace(w, recs)
}

// ingestAttempt stores one attempt's coordinator-side records.
func (s *Scheduler) ingestAttempt(jb *Job, recs []obs.SpanRecord) {
	s.traces.Add(jb.ID, recs...)
}

// traceInstant records a point-in-time fabric incident (reroute, lease
// expiry, cache hit) on the job's timeline, parented under the root span.
func (s *Scheduler) traceInstant(jb *Job, name string, args map[string]any) {
	sc := jb.rootSpan()
	s.traces.Add(jb.ID, obs.SpanRecord{
		TraceID: sc.TraceID,
		Parent:  sc.SpanID,
		Name:    name,
		Proc:    procCoordinator,
		Kind:    "instant",
		StartUS: time.Now().UnixMicro(),
		Args:    args,
	})
}

// traceRoot records the job's single terminal root span — "job", spanning
// submitted→finished, parented under the client's span when the submission
// carried a traceparent. Every terminal path calls it; the rootTraced latch
// makes the first caller the only writer, so a merged trace has exactly one
// root whatever raced.
func (s *Scheduler) traceRoot(jb *Job) {
	if !jb.markRootTraced() {
		return
	}
	jb.mu.Lock()
	rec := obs.SpanRecord{
		TraceID: jb.trace.TraceID,
		SpanID:  jb.trace.SpanID,
		Parent:  jb.traceParent,
		Name:    "job",
		Proc:    procCoordinator,
		Kind:    "span",
		StartUS: jb.submitted.UnixMicro(),
		Args: map[string]any{
			"job":   jb.ID,
			"state": string(jb.state),
		},
	}
	if jb.spec.Circuit != "" { // zero when the request never validated (bad replay)
		rec.Args["testcase"] = jb.spec.Name()
	}
	if !jb.finished.IsZero() {
		rec.DurUS = jb.finished.Sub(jb.submitted).Microseconds()
	}
	if jb.backend != "" {
		rec.Args["backend"] = jb.backend
	}
	if jb.reroutes > 0 {
		rec.Args["reroutes"] = jb.reroutes
	}
	if jb.cacheHit {
		rec.Args["cache_hit"] = true
	}
	jb.mu.Unlock()
	s.traces.Add(jb.ID, rec)
}

// Per-lane RED metrics: request rate (by outcome), errors, and duration.
// Series live in the scheduler's private registry next to the job counters.
const (
	laneRequestsName = "mth_lane_requests_total"
	laneSecondsName  = "mth_lane_seconds"
)

// laneRequests counts one lane attempt with its outcome ("ok", "error",
// "rerouted").
func (s *Scheduler) laneRequests(backend, outcome string) *obs.Counter {
	return s.reg.Counter(laneRequestsName,
		"Job attempts per execution lane, by outcome (ok, error, rerouted).",
		obs.Labels{"backend": backend, "outcome": outcome})
}

// laneSeconds observes one lane attempt's wall-clock duration.
func (s *Scheduler) laneSeconds(backend string) *obs.Histogram {
	return s.reg.Histogram(laneSecondsName,
		"Wall-clock seconds per job attempt, by execution lane.",
		obs.StageBuckets, obs.Labels{"backend": backend})
}

// recordLaneAttempt folds one lane attempt into the RED series. Exactly one
// call per runJobOn invocation, whatever path it exits through, so the lane
// histogram count equals the lane request count by construction — the
// agreement invariant the replay regression test pins.
func (s *Scheduler) recordLaneAttempt(backend, outcome string, dur time.Duration) {
	s.laneRequests(backend, outcome).Inc()
	s.laneSeconds(backend).Observe(dur.Seconds())
}

// ingestWorkerSpans is the Remote lanes' OnSpans sink: worker records for
// job land here, already skew-corrected and lane-labelled by the Remote.
func (s *Scheduler) ingestWorkerSpans(job string, spans []obs.SpanRecord) {
	s.traces.Add(job, spans...)
}
