package scheduler

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"mthplace/internal/journal"
	"mthplace/internal/obs"
)

// clientTP is a fixed, valid W3C traceparent standing in for an upstream
// caller's span.
const clientTP = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

// traceTopology indexes a job's span records for structural assertions.
type traceTopology struct {
	recs    []obs.SpanRecord
	byID    map[string]obs.SpanRecord
	roots   []obs.SpanRecord // "job" spans
	orphans []obs.SpanRecord // non-empty parent that no local span resolves
}

func topo(t *testing.T, recs []obs.SpanRecord) traceTopology {
	t.Helper()
	tt := traceTopology{recs: recs, byID: map[string]obs.SpanRecord{}}
	for _, r := range recs {
		if r.SpanID != "" {
			tt.byID[r.SpanID] = r
		}
	}
	for _, r := range recs {
		if r.Name == "job" {
			tt.roots = append(tt.roots, r)
		}
	}
	rootParent := ""
	if len(tt.roots) > 0 {
		rootParent = tt.roots[0].Parent
	}
	for _, r := range recs {
		if r.Parent == "" || r.Parent == rootParent {
			continue // top-level, or parented under the external client span
		}
		if _, ok := tt.byID[r.Parent]; !ok {
			tt.orphans = append(tt.orphans, r)
		}
	}
	return tt
}

// TestTraceLifecycleLocal: a locally executed job submitted with a client
// traceparent yields one merged timeline — a single "job" root parented
// under the client's span, a dispatch span under the root, and every record
// sharing the client's TraceID.
func TestTraceLifecycleLocal(t *testing.T) {
	s := newSched(t, Options{Workers: 1})
	s.SetExec(func(ctx context.Context, jb *Job) (*ExecResult, error) {
		// A span from inside execution, as flow stages would record.
		sp := obs.StartSpan(ctx, "flow.solve")
		sp.End()
		return stubResult(jb.Request()), nil
	})
	jb := submitWait(t, s, JobRequest{Testcase: "aes_300", Scale: 0.02, Solver: "greedy", Traceparent: clientTP})

	if got := jb.TraceID(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("job trace ID = %q, want the client's", got)
	}
	if v := jb.View(); v.TraceID != jb.TraceID() {
		t.Errorf("view trace ID %q != job trace ID %q", v.TraceID, jb.TraceID())
	}
	recs := s.TraceRecords(jb.ID)
	tt := topo(t, recs)
	if len(tt.roots) != 1 {
		t.Fatalf("got %d root job spans, want 1 (records: %+v)", len(tt.roots), recs)
	}
	root := tt.roots[0]
	if root.Parent != "b7ad6b7169203331" {
		t.Errorf("root parent = %q, want the client span", root.Parent)
	}
	if root.DurUS <= 0 {
		t.Errorf("root span has no duration: %+v", root)
	}
	if len(tt.orphans) != 0 {
		t.Errorf("orphan spans: %+v", tt.orphans)
	}
	var dispatch, solve bool
	for _, r := range recs {
		if r.TraceID != root.TraceID {
			t.Errorf("record %q has trace %q, want %q", r.Name, r.TraceID, root.TraceID)
		}
		switch r.Name {
		case "dispatch":
			dispatch = true
			if r.Parent != root.SpanID {
				t.Errorf("dispatch parented under %q, want root %q", r.Parent, root.SpanID)
			}
		case "flow.solve":
			solve = true
		}
	}
	if !dispatch || !solve {
		t.Errorf("missing spans: dispatch=%v flow.solve=%v in %+v", dispatch, solve, recs)
	}

	// The merged export must be valid Chrome trace_event JSON.
	var buf bytes.Buffer
	ok, err := s.WriteTrace(&buf, jb.ID)
	if !ok || err != nil {
		t.Fatalf("WriteTrace: ok=%v err=%v", ok, err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(recs) {
		t.Errorf("export has %d events for %d records", len(doc.TraceEvents), len(recs))
	}
}

// TestTraceRemoteMerge: a remotely executed job's merged trace contains the
// worker's solver span, lane-labelled and parented under the coordinator's
// dispatch span, sharing one TraceID end to end.
func TestTraceRemoteMerge(t *testing.T) {
	w := newStubWorker(t)
	s := newSched(t, remoteOptions(w.URL()))
	jb, err := s.Submit(JobRequest{Testcase: "aes_300", Scale: 0.02, Solver: "greedy", Traceparent: clientTP})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st, jerr := waitTerminal(t, jb, 10*time.Second); st != StateDone {
		t.Fatalf("job finished %q (%v), want done", st, jerr)
	}
	recs := s.TraceRecords(jb.ID)
	tt := topo(t, recs)
	if len(tt.roots) != 1 {
		t.Fatalf("got %d root spans, want 1", len(tt.roots))
	}
	if len(tt.orphans) != 0 {
		t.Errorf("orphan spans: %+v", tt.orphans)
	}
	var worker *obs.SpanRecord
	for i, r := range recs {
		if r.Name == "worker.solve" {
			worker = &recs[i]
		}
	}
	if worker == nil {
		t.Fatalf("no worker span in merged trace: %+v", recs)
	}
	if worker.Proc != "remote-0" {
		t.Errorf("worker span proc = %q, want the lane name", worker.Proc)
	}
	if worker.TraceID != jb.TraceID() {
		t.Errorf("worker span trace %q, want %q", worker.TraceID, jb.TraceID())
	}
	if parent, ok := tt.byID[worker.Parent]; !ok || parent.Name != "dispatch" {
		t.Errorf("worker span parented under %q (%s), want the dispatch span", worker.Parent, parent.Name)
	}
}

// TestTraceCacheHit: a cache-served job still gets a closed timeline — root
// span flagged cache_hit plus a cache_hit instant — under the client trace.
func TestTraceCacheHit(t *testing.T) {
	s := newSched(t, Options{Workers: 1, CacheEntries: 16})
	s.SetExec(func(_ context.Context, jb *Job) (*ExecResult, error) { return stubResult(jb.Request()), nil })
	req := JobRequest{Testcase: "aes_300", Scale: 0.02, Solver: "greedy"}
	submitWait(t, s, req)
	req.Traceparent = clientTP
	warm := submitWait(t, s, req)
	if !warm.View().CacheHit {
		t.Fatal("second submission was not a cache hit")
	}
	recs := s.TraceRecords(warm.ID)
	tt := topo(t, recs)
	if len(tt.roots) != 1 {
		t.Fatalf("cache hit recorded %d root spans, want 1 (%+v)", len(tt.roots), recs)
	}
	if hit, _ := tt.roots[0].Args["cache_hit"].(bool); !hit {
		t.Errorf("root span args lack cache_hit: %+v", tt.roots[0].Args)
	}
	var instant bool
	for _, r := range recs {
		if r.Name == "cache_hit" && r.Kind == "instant" {
			instant = true
			if r.Parent != tt.roots[0].SpanID {
				t.Errorf("cache_hit instant parented under %q, want root", r.Parent)
			}
		}
	}
	if !instant {
		t.Errorf("no cache_hit instant in %+v", recs)
	}
}

// TestInflightExactAfterRequeueCancel is the accounting regression test: a
// job that started, was re-queued off its lane (as a reroute or lease
// expiry does), and was then canceled while Queued must still count exactly
// one finish — previously this path leaked jobs_inflight forever.
func TestInflightExactAfterRequeueCancel(t *testing.T) {
	s := newSched(t, Options{Workers: 1, RerouteMax: 4})
	release := make(chan struct{})
	s.SetExec(func(ctx context.Context, jb *Job) (*ExecResult, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return stubResult(jb.Request()), nil
	})
	jb, err := s.Submit(JobRequest{Testcase: "aes_300", Scale: 0.02, Solver: "greedy"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, _ := jb.Snapshot(); st == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Force the job back to Queued under the running attempt's epoch, the
	// way the lease monitor strands it mid-reroute.
	if _, ok := jb.requeue(1, 4); !ok {
		t.Fatal("requeue refused")
	}
	if _, ok := s.Cancel(jb.ID); !ok {
		t.Fatal("cancel refused")
	}
	close(release)
	// The abandoned attempt must drain without committing anything.
	time.Sleep(20 * time.Millisecond)

	snap := s.Stats()
	if snap.Started != 1 || snap.Finished != 1 || snap.Inflight != 0 {
		t.Errorf("started=%d finished=%d inflight=%d, want 1/1/0",
			snap.Started, snap.Finished, snap.Inflight)
	}
	tt := topo(t, s.TraceRecords(jb.ID))
	if len(tt.roots) != 1 {
		t.Errorf("canceled-while-requeued job recorded %d root spans, want 1", len(tt.roots))
	}
}

// TestLaneMetricsAgreeAfterReplayReroute is the satellite regression pin:
// after a journal replay whose job reroutes from a dead lane to a live one,
// jobs_inflight (started−finished) must be zero and every lane's request
// counter must equal its latency-histogram count — one recordLaneAttempt
// per attempt, whatever path the attempt exits through.
func TestLaneMetricsAgreeAfterReplayReroute(t *testing.T) {
	dir := t.TempDir()
	req := JobRequest{Testcase: "aes_300", Scale: 0.02, Solver: "greedy", Traceparent: clientTP}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for _, e := range []journal.Entry{
		{Seq: 1, Job: "job-1", Event: journal.EventSubmitted, Request: raw, Backend: "remote-0", Trace: "0af7651916cd43dd8448eb211c80319c"},
		{Seq: 1, Job: "job-1", Event: journal.EventStarted},
		{Seq: 1, Job: "job-1", Event: journal.EventLeased, Backend: "remote-0", Deadline: &deadline},
	} {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	dead := newStubWorker(t)
	dead.setMode(modePartition)
	live := newStubWorker(t)
	opt := remoteOptions(dead.URL(), live.URL())
	opt.JournalDir = dir
	s := newSched(t, opt)
	jb := s.Job("job-1")
	if jb == nil {
		t.Fatal("replayed job not found")
	}
	if got := jb.TraceID(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("replayed job trace %q, want the journaled request's", got)
	}
	if st, _ := waitTerminal(t, jb, 30*time.Second); !st.Terminal() {
		t.Fatalf("replayed job stuck in %q", st)
	}

	// The finish counter lands moments after the state flips terminal; poll
	// briefly rather than racing it.
	var snap StatsSnapshot
	agreeBy := time.Now().Add(5 * time.Second)
	for {
		snap = s.Stats()
		if snap.Inflight == 0 && snap.Started == snap.Finished {
			break
		}
		if time.Now().After(agreeBy) {
			t.Errorf("started=%d finished=%d inflight=%d after replay, want equal and 0",
				snap.Started, snap.Finished, snap.Inflight)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, b := range s.backends {
		var reqs int64
		for _, outcome := range []string{"ok", "error", "rerouted"} {
			reqs += s.laneRequests(b.Name(), outcome).Value()
		}
		if hist := s.laneSeconds(b.Name()).Count(); hist != reqs {
			t.Errorf("lane %s: %d requests vs %d histogram observations, want equal",
				b.Name(), reqs, hist)
		}
	}
}
