package scheduler

import (
	"sync"
	"testing"
	"time"

	"mthplace/internal/flow"
)

// TestStatsPercentiles: known latency samples produce the documented
// nearest-rank percentiles, monotone p50 ≤ p90 ≤ p99.
func TestStatsPercentiles(t *testing.T) {
	st := newStats(2)
	for i := 1; i <= 100; i++ {
		st.recordFlow(flow.Flow5, time.Duration(i)*time.Millisecond)
	}
	_, _, perFlow := st.snapshot()
	fl, ok := perFlow[flow.Flow5.String()]
	if !ok {
		t.Fatalf("no latency entry for %v: %v", flow.Flow5, perFlow)
	}
	if fl.Count != 100 {
		t.Errorf("Count = %d, want 100", fl.Count)
	}
	if fl.P50ms != 50 || fl.P90ms != 90 || fl.P99ms != 99 {
		t.Errorf("percentiles = %v/%v/%v, want 50/90/99", fl.P50ms, fl.P90ms, fl.P99ms)
	}
	if !(fl.P50ms <= fl.P90ms && fl.P90ms <= fl.P99ms) {
		t.Errorf("percentiles not monotone: %+v", fl)
	}
}

// TestStatsRingBound: the ring retains only the newest maxLatencySamples
// but keeps counting, so Count reflects lifetime completions while the
// percentiles reflect recent behaviour.
func TestStatsRingBound(t *testing.T) {
	st := newStats(1)
	// Old slow samples that should age out entirely...
	for i := 0; i < maxLatencySamples; i++ {
		st.recordFlow(flow.Flow2, time.Hour)
	}
	// ...displaced by fast recent ones.
	for i := 0; i < maxLatencySamples; i++ {
		st.recordFlow(flow.Flow2, time.Millisecond)
	}
	_, _, perFlow := st.snapshot()
	fl := perFlow[flow.Flow2.String()]
	if fl.Count != 2*maxLatencySamples {
		t.Errorf("Count = %d, want %d", fl.Count, 2*maxLatencySamples)
	}
	if fl.P99ms != 1 {
		t.Errorf("P99 = %vms: old samples still retained", fl.P99ms)
	}
}

// TestLatencyRingConcurrentLoad hammers the per-flow latency ring from many
// goroutines while stats snapshots run, checking totals and bounds hold.
func TestLatencyRingConcurrentLoad(t *testing.T) {
	s := newStats(4)
	const (
		writers = 8
		perW    = 400 // 3200 total: far past maxLatencySamples
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader: must never race or panic
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				s.snapshot()
				s.inflight()
				// Yield so the writers make progress on small hosts: the
				// point is interleaving, not starvation.
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				s.jobStarted()
				s.recordFlow(flow.Flow5, time.Duration(w*perW+i)*time.Microsecond)
				s.jobFinished(time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	started, finished, inflight := s.inflight()
	if started != writers*perW || finished != writers*perW || inflight != 0 {
		t.Errorf("started/finished/inflight = %d/%d/%d, want %d/%d/0",
			started, finished, inflight, writers*perW, writers*perW)
	}
	_, _, perFlow := s.snapshot()
	lat := perFlow[flow.Flow5.String()]
	if lat.Count != writers*perW {
		t.Errorf("ring total = %d, want %d", lat.Count, writers*perW)
	}
	// The ring retains at most maxLatencySamples; percentiles must still be
	// ordered.
	if !(lat.P50ms <= lat.P90ms && lat.P90ms <= lat.P99ms) {
		t.Errorf("percentiles out of order: %+v", lat)
	}
}
